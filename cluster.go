package baps

import (
	"fmt"
	"net/http/httptest"

	"baps/internal/browser"
	"baps/internal/origin"
	"baps/internal/proxy"
)

// Re-exported live-system types.
type (
	// ProxyConfig parameterizes the live browsers-aware proxy.
	ProxyConfig = proxy.Config
	// ProxyStats is the live proxy's metric snapshot.
	ProxyStats = proxy.Stats
	// AgentConfig parameterizes a live browser agent.
	AgentConfig = browser.Config
	// Agent is a live browser client.
	Agent = browser.Agent
	// Source classifies where a live Get was satisfied.
	Source = browser.Source
)

// Live source values.
const (
	SourceLocal  = browser.SourceLocal
	SourceProxy  = browser.SourceProxy
	SourceRemote = browser.SourceRemote
	SourceOrigin = browser.SourceOrigin
)

// Live delivery modes for remote-browser hits (§2's alternatives plus the
// §6.2 covert-path variant).
const (
	ForwardFetch  = proxy.FetchForward
	ForwardDirect = proxy.DirectForward
	ForwardOnion  = proxy.OnionForward
)

// Cluster is an in-process deployment of the live system: a synthetic
// origin, one browsers-aware proxy, and N browser agents, all on loopback
// HTTP. It exists for examples, demos and end-to-end tests; production
// deployments run cmd/bapsorigin, cmd/bapsproxy and cmd/bapsbrowser
// separately.
type Cluster struct {
	Origin   *origin.Server
	OriginTS *httptest.Server
	Proxy    *proxy.Server
	Agents   []*Agent
}

// ClusterConfig assembles a Cluster.
type ClusterConfig struct {
	// Agents is the number of browser agents (default 3).
	Agents int
	// Proxy overrides the proxy configuration (zero value → defaults
	// with a 1024-bit test key is NOT applied here; set KeyBits yourself
	// for fast startup).
	Proxy ProxyConfig
	// MutateAgent edits each agent's config before start.
	MutateAgent func(i int, cfg *AgentConfig)
	// OriginSeed seeds the synthetic origin's content.
	OriginSeed int64
}

// StartCluster brings the live system up. Call Close when done.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Agents <= 0 {
		cfg.Agents = 3
	}
	if cfg.Proxy.CacheCapacity == 0 {
		cfg.Proxy = proxy.DefaultConfig()
	}
	c := &Cluster{Origin: origin.New(cfg.OriginSeed)}
	c.OriginTS = httptest.NewServer(c.Origin.Handler())

	p, err := proxy.New(cfg.Proxy)
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := p.Start(""); err != nil {
		c.Close()
		return nil, err
	}
	c.Proxy = p

	for i := 0; i < cfg.Agents; i++ {
		acfg := browser.DefaultConfig(p.BaseURL())
		if cfg.MutateAgent != nil {
			cfg.MutateAgent(i, &acfg)
		}
		a, err := browser.New(acfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("baps: agent %d: %w", i, err)
		}
		c.Agents = append(c.Agents, a)
	}
	return c, nil
}

// DocURL forms an origin document URL for a path like "/docs/a".
func (c *Cluster) DocURL(path string) string { return c.OriginTS.URL + path }

// Close tears the cluster down in reverse order.
func (c *Cluster) Close() {
	for _, a := range c.Agents {
		a.Close()
	}
	if c.Proxy != nil {
		c.Proxy.Close()
	}
	if c.OriginTS != nil {
		c.OriginTS.Close()
	}
}
