package baps

// The benchmark harness: one benchmark per table and figure of the paper
// (regenerating it at a reduced workload scale and reporting the headline
// metrics via b.ReportMetric), plus micro-benchmarks of every substrate on
// the hot path (LRU cache, browser index, Bloom filters, trace generation,
// watermarks, onions, and the live HTTP pipeline end-to-end).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks accept the full-scale workloads too; regenerating
// paper-scale numbers is what cmd/bapsim is for.

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"baps/internal/anonymity"
	"baps/internal/bloom"
	"baps/internal/cache"
	"baps/internal/core"
	"baps/internal/index"
	"baps/internal/integrity"
	"baps/internal/intern"
	"baps/internal/sim"
	"baps/internal/stats"
	"baps/internal/synth"
	"baps/internal/trace"
)

// statsHistogram and bytesReader keep the benchmark bodies terse.
type statsHistogram = stats.Histogram

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }

// benchOpts shrinks the workloads so a full -bench=. pass stays in minutes.
var benchOpts = Options{Scale: 0.10}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := Table1(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 5 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		hit, _, err := Figure2(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		var baps, palb []float64
		for _, l := range hit.Lines {
			switch l.Name {
			case "browsers-aware-proxy-server":
				baps = l.Y
			case "proxy-and-local-browser":
				palb = l.Y
			}
		}
		for j := range baps {
			if d := baps[j] - palb[j]; d > gain {
				gain = d
			}
		}
	}
	b.ReportMetric(gain, "maxHRgain_pp")
}

func BenchmarkFig3(b *testing.B) {
	var remote float64
	for i := 0; i < b.N; i++ {
		hit, _, err := Figure3(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range hit.Lines {
			if l.Name == "remote-browsers" {
				for _, y := range l.Y {
					if y > remote {
						remote = y
					}
				}
			}
		}
	}
	b.ReportMetric(remote, "maxRemoteHR_pct")
}

func benchFigureVs(b *testing.B, f func(Options) (*Series, *Series, error)) {
	b.Helper()
	var gain float64
	for i := 0; i < b.N; i++ {
		hit, _, err := f(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		d := hit.Lines[0].Y[2] - hit.Lines[1].Y[2] // BAPS − P+LB at the 10% point
		if d > gain || i == 0 {
			gain = d
		}
	}
	b.ReportMetric(gain, "HRgain@10%_pp")
}

func BenchmarkFig4(b *testing.B) { benchFigureVs(b, Figure4) }
func BenchmarkFig5(b *testing.B) { benchFigureVs(b, Figure5) }
func BenchmarkFig6(b *testing.B) { benchFigureVs(b, Figure6) }
func BenchmarkFig7(b *testing.B) { benchFigureVs(b, Figure7) }

func BenchmarkFig8(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		hr, _, err := Figure8(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		for _, l := range hr.Lines {
			if y := l.Y[len(l.Y)-1]; y > last {
				last = y
			}
		}
	}
	b.ReportMetric(last, "maxIncrement@100%_pct")
}

func BenchmarkMemoryStudy(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		tr, err := GenerateTraceScaled("nlanr-uc", 0, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		cfg := DefaultSimConfig(BrowsersAware)
		cfg.Sizing = SizingMinimum
		cfg.BrowserMemFraction = 1.0
		ms, err := MemoryStudy(tr, 0.10, 0, cfg)
		if err != nil {
			b.Fatal(err)
		}
		delta = (ms.BAPS.MemoryByteHitRatio() - ms.PALB.MemoryByteHitRatio()) * 100
	}
	b.ReportMetric(delta, "memBHRdelta_pp")
}

func BenchmarkOverhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		tr, err := GenerateTraceScaled("nlanr-bo1", 0, 0.10)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Run(tr, DefaultSimConfig(BrowsersAware))
		if err != nil {
			b.Fatal(err)
		}
		if f := res.RemoteCommFraction() * 100; f > worst {
			worst = f
		}
	}
	b.ReportMetric(worst, "remoteComm_pctOfService")
}

func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := AblationReport(Options{Scale: 0.05}, "nlanr-bo1")
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatal("empty ablation")
		}
	}
}

func BenchmarkCooperative(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := CooperativeReport(Options{Scale: 0.05}, "nlanr-bo1", []int{4})
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 2 {
			b.Fatal("wrong rows")
		}
	}
}

func BenchmarkIndexCompression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := IndexCompressionReport(Options{Scale: 0.03}, "nlanr-bo1", 1<<13); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Simulator core throughput ---

func benchTraceOnce(b *testing.B) *Trace {
	b.Helper()
	tr, err := GenerateTraceScaled("nlanr-bo1", 0, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

func BenchmarkSimulatorBAPS(b *testing.B) {
	tr := benchTraceOnce(b)
	st := trace.Compute(tr)
	cfg := DefaultSimConfig(BrowsersAware)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, &st, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Requests)), "requests/op")
}

func BenchmarkSimulatorProxyOnly(b *testing.B) {
	tr := benchTraceOnce(b)
	st := trace.Compute(tr)
	cfg := DefaultSimConfig(ProxyCacheOnly)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, &st, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceGeneration(b *testing.B) {
	p := synth.Profiles()[1] // nlanr-bo1
	p = synth.Scaled(p, 0.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceStats(b *testing.B) {
	tr := benchTraceOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Compute(tr)
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkLRUGetHit(b *testing.B) {
	c := cache.MustNew(cache.LRU, 1<<30)
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://bench/doc%d", i)
		c.Put(cache.Doc{Key: keys[i], Size: 8192})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i%len(keys)])
	}
}

func BenchmarkLRUPutEvict(b *testing.B) {
	c := cache.MustNew(cache.LRU, 1<<20) // forces steady eviction
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(cache.Doc{Key: fmt.Sprintf("k%d", i), Size: 8192})
	}
}

func BenchmarkGDSFPutEvict(b *testing.B) {
	c := cache.MustNew(cache.GDSF, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(cache.Doc{Key: fmt.Sprintf("k%d", i), Size: 8192})
	}
}

func BenchmarkTwoTierGet(b *testing.B) {
	tt, err := cache.NewTwoTier(cache.LRU, 1<<30, 1<<26)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://bench/doc%d", i)
		tt.Put(cache.Doc{Key: keys[i], Size: 8192})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.GetTier(keys[i%len(keys)])
	}
}

func BenchmarkIndexAddRemove(b *testing.B) {
	x := index.New(index.SelectMostRecent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := intern.ID(i % 8192)
		x.Add(index.Entry{Client: i % 64, Doc: doc, Size: 8192, Stamp: float64(i)})
		if i%3 == 0 {
			x.Remove(i%64, doc)
		}
	}
}

func BenchmarkIndexSelect(b *testing.B) {
	x := index.New(index.SelectMostRecent)
	for i := 0; i < 8192; i++ {
		x.Add(index.Entry{Client: i % 64, Doc: intern.ID(i % 1024), Size: 8192, Stamp: float64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Select(intern.ID(i%1024), i%64)
	}
}

func BenchmarkBloomAddContains(b *testing.B) {
	f, err := bloom.NewFilterForFPR(100_000, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("http://bench/doc%d", i%100_000)
		f.Add(key)
		f.Contains(key)
	}
}

func BenchmarkCountingBloom(b *testing.B) {
	c, err := bloom.NewCounting(1<<20, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("http://bench/doc%d", i%65536)
		c.Add(key)
		if i%2 == 1 {
			c.Remove(key)
		}
	}
}

func BenchmarkHierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := HierarchyReport(Options{Scale: 0.05}, "nlanr-bo1")
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 6 {
			b.Fatal("wrong rows")
		}
	}
}

func BenchmarkPartitionedCache(b *testing.B) {
	p, err := cache.NewPartitioned(cache.LRU, []int64{1 << 20, 1 << 20, 1 << 20},
		cache.SizeClassifier(4096, 32768))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%4096)
		p.Put(cache.Doc{Key: key, Size: int64(1 + (i*977)%60000)})
		p.Get(key)
	}
}

func BenchmarkHistogram(b *testing.B) {
	var h struct{ hist statsHistogram }
	for i := 0; i < b.N; i++ {
		h.hist.Add(float64(i%1000)/500 + 0.001)
	}
	if h.hist.N() != int64(b.N) {
		b.Fatal("count wrong")
	}
}

func BenchmarkCLFParse(b *testing.B) {
	var sb []byte
	for i := 0; i < 2000; i++ {
		sb = append(sb, []byte(fmt.Sprintf(
			"host%d - - [10/Oct/1998:13:55:%02d -0700] \"GET /d/%d HTTP/1.0\" 200 %d\n",
			i%50, i%60, i%300, 500+i%9000))...)
	}
	b.SetBytes(int64(len(sb)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := trace.ParseCLF(bytesReader(sb), "bench")
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Requests) != 2000 {
			b.Fatal("lost requests")
		}
	}
}

func BenchmarkLiveOnionHit(b *testing.B) {
	pcfg := ProxyConfig{CacheCapacity: 10_000, MemFraction: 0.1, KeyBits: 1024,
		Forward: ForwardOnion, OnionRelays: 1}
	c, err := StartCluster(ClusterConfig{Agents: 3, Proxy: pcfg, MutateAgent: func(i int, cfg *AgentConfig) {
		cfg.CacheCapacity = 64 << 20
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	u := c.DocURL("/bench/onion?size=20000")
	if _, _, err := c.Agents[0].Get(ctx, u); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Agents[1].Evict(u)
		if _, src, err := c.Agents[1].Get(ctx, u); err != nil || src != SourceRemote {
			b.Fatalf("src=%v err=%v", src, err)
		}
	}
}

// --- §6 security overheads ---

func BenchmarkIntegritySign(b *testing.B) {
	signer, err := integrity.NewSigner(2048)
	if err != nil {
		b.Fatal(err)
	}
	doc := make([]byte, 8192)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := signer.Watermark(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrityVerify(b *testing.B) {
	signer, err := integrity.NewSigner(2048)
	if err != nil {
		b.Fatal(err)
	}
	doc := make([]byte, 8192)
	mark, _ := signer.Watermark(doc)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := integrity.Verify(signer.Public(), doc, mark); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnonymityOnion3Hop(b *testing.B) {
	keys := map[int][]byte{}
	path := make([]anonymity.Hop, 3)
	for i := range path {
		k, err := anonymity.NewKey()
		if err != nil {
			b.Fatal(err)
		}
		keys[i] = k
		path[i] = anonymity.Hop{ID: i, Key: k}
	}
	doc := make([]byte, 8192)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onion, err := anonymity.BuildOnion(path, doc)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := anonymity.Route(keys, 0, onion); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Live system end-to-end ---

func BenchmarkLiveProxyHit(b *testing.B) {
	pcfg := ProxyConfig{CacheCapacity: 64 << 20, MemFraction: 0.1, CachePeerDocs: true, KeyBits: 1024}
	c, err := StartCluster(ClusterConfig{Agents: 2, Proxy: pcfg})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	u := c.DocURL("/bench/doc?size=8192")
	if _, _, err := c.Agents[0].Get(ctx, u); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate agents so neither serves purely from local cache…
		// agent 1 keeps evicting to force proxy hits.
		c.Agents[1].Evict(u)
		if _, src, err := c.Agents[1].Get(ctx, u); err != nil || src != SourceProxy {
			b.Fatalf("src=%v err=%v", src, err)
		}
	}
}

func BenchmarkLiveRemoteHit(b *testing.B) {
	pcfg := ProxyConfig{CacheCapacity: 10_000 /* too small to cache the doc's neighbors */, MemFraction: 0.1, KeyBits: 1024}
	c, err := StartCluster(ClusterConfig{Agents: 2, Proxy: pcfg, MutateAgent: func(i int, cfg *AgentConfig) {
		cfg.CacheCapacity = 64 << 20
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	u := c.DocURL("/bench/peer?size=20000") // larger than the proxy cache
	if _, _, err := c.Agents[0].Get(ctx, u); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Agents[1].Evict(u)
		if _, src, err := c.Agents[1].Get(ctx, u); err != nil || src != SourceRemote {
			b.Fatalf("src=%v err=%v", src, err)
		}
	}
}

// BenchmarkAllExperiments measures the whole bapsim-all driver suite at a
// reduced scale — the wall-clock regression gate for the driver layer (see
// make bench-replay). Each iteration models a fresh bapsim process: the
// cross-driver trace memo is reset up front, so the measured win from
// memoization is the within-run dedup of trace generation, never warm-cache
// carry-over between iterations.
func BenchmarkAllExperiments(b *testing.B) {
	o := Options{Scale: 0.1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resetTraceMemo()
		if err := AllReports(o, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplayStream measures out-of-core replay throughput end to end: a
// .btr trace file is streamed through the stats pass and then the replay
// pass, exactly as bapsim's replay experiment does, with the trace never
// resident. The req/s metric is the replay-throughput number recorded in
// BENCH_*_replay.json.
func BenchmarkReplayStream(b *testing.B) {
	p := synth.Scaled(synth.Profiles()[1], 0.25) // nlanr-bo1 shape at 40k requests
	g, err := synth.NewStream(p)
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.btr")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	bw, err := trace.NewBTRWriter(f, p.Name)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]trace.Request, trace.StreamBatchSize)
	for {
		n, err := g.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := bw.WriteRequest(buf[i]); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := bw.Finish(g.NumClients(), g.NumDocs(), nil); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}

	cfg := sim.DefaultConfig(core.BrowsersAware)
	open := func() *trace.BTRReader {
		rf, err := os.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { rf.Close() })
		br, err := trace.OpenBTR(bufio.NewReaderSize(rf, 1<<20))
		if err != nil {
			b.Fatal(err)
		}
		return br
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := trace.StreamStats(open())
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.RunStream(open(), &st, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Requests != int64(p.Requests) {
			b.Fatalf("replayed %d, want %d", res.Requests, p.Requests)
		}
	}
	b.ReportMetric(float64(b.N*p.Requests)/b.Elapsed().Seconds(), "req/s")
}
