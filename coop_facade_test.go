package baps

import (
	"strconv"
	"strings"
	"testing"
)

func TestDriverErrorPaths(t *testing.T) {
	if _, err := CooperativeReport(Options{Scale: 0.02}, "no-such-profile", []int{2}); err == nil {
		t.Error("unknown profile accepted by CooperativeReport")
	}
	if _, err := HierarchyReport(Options{Scale: 0.02}, "no-such-profile"); err == nil {
		t.Error("unknown profile accepted by HierarchyReport")
	}
	if _, err := LatencyReport(Options{Scale: 0.02}, "no-such-profile"); err == nil {
		t.Error("unknown profile accepted by LatencyReport")
	}
	if _, err := AblationReport(Options{Scale: 0.02}, "no-such-profile"); err == nil {
		t.Error("unknown profile accepted by AblationReport")
	}
	if _, err := IndexCompressionReport(Options{Scale: 0.02}, "no-such-profile", 64); err == nil {
		t.Error("unknown profile accepted by IndexCompressionReport")
	}
	if _, err := SecurityReport(100, 0); err == nil {
		t.Error("tiny key accepted by SecurityReport")
	}
}

func TestSweepFacade(t *testing.T) {
	tr, err := GenerateTraceScaled("canet2", 0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Sweep(tr, []Organization{BrowsersAware}, []float64{0.01, 0.10}, DefaultSimConfig(BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.ByOrg[BrowsersAware]) != 2 {
		t.Fatalf("sweep results: %d", len(sw.ByOrg[BrowsersAware]))
	}
	if len(PaperSizes) != 4 || len(PaperClientFractions) != 4 {
		t.Fatal("paper sweep constants wrong")
	}
}

func TestHierarchyDriver(t *testing.T) {
	tab, err := HierarchyReport(Options{Scale: 0.05}, "nlanr-bo1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 orgs × 3 parent sizes)", len(tab.Rows))
	}
	// Rows with a parent must show parent hits; the parentless ones none.
	if tab.Rows[0][4] != "0" || tab.Rows[1][4] != "0" {
		t.Errorf("parentless rows show parent hits: %v", tab.Rows[:2])
	}
	if tab.Rows[4][4] == "0" {
		t.Errorf("50%%-parent row shows no parent hits: %v", tab.Rows[4])
	}
}

func TestReplicationDriver(t *testing.T) {
	tab, err := ReplicationReport(Options{Scale: 0.02}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if _, err := ReplicationReport(Options{Scale: 0.02}, 1); err == nil {
		t.Error("1 seed accepted")
	}
}

func TestLatencyDriver(t *testing.T) {
	tab, err := LatencyReport(Options{Scale: 0.05}, "nlanr-bo1")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for i, cell := range row {
			if cell == "" {
				t.Errorf("empty cell %d in %v", i, row)
			}
		}
	}
}

func TestCooperativeDriver(t *testing.T) {
	tab, err := CooperativeReport(Options{Scale: 0.05}, "nlanr-bo1", []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (BAPS + M=2 + M=4)", len(tab.Rows))
	}
	// The browsers-aware row must post the highest hit ratio: that is
	// the comparison's point.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", s)
		}
		return v
	}
	baps := parse(tab.Rows[0][1])
	for _, row := range tab.Rows[1:] {
		if coopHR := parse(row[1]); coopHR >= baps {
			t.Errorf("cooperative %s HR %.2f >= browsers-aware %.2f", row[0], coopHR, baps)
		}
	}
}
