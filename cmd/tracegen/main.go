// Command tracegen generates a synthetic web trace from one of the
// calibrated paper profiles (or prints its statistics) in the repository's
// native trace format, replayable by bapsim-style tooling and the library's
// trace.Read.
//
// Usage:
//
//	tracegen -profile nlanr-uc [-seed N] [-scale F] [-o trace.txt] [-stats]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"baps"
	"baps/internal/stats"
	"baps/internal/trace"
)

func main() {
	profile := flag.String("profile", "", "profile name ("+strings.Join(baps.ProfileNames(), ", ")+")")
	seed := flag.Int64("seed", 0, "seed override (0 = calibrated)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	out := flag.String("o", "", "output file (default stdout)")
	statsOnly := flag.Bool("stats", false, "print trace statistics instead of the trace")
	flag.Parse()

	if *profile == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -profile is required")
		flag.Usage()
		os.Exit(2)
	}
	tr, err := baps.GenerateTraceScaled(*profile, *seed, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *statsOnly {
		s := baps.ComputeStats(tr)
		fmt.Printf("trace %s: %d requests, %d clients\n", s.Name, s.NumRequests, s.NumClients)
		fmt.Printf("  total bytes        %s\n", stats.Bytes(s.TotalBytes))
		fmt.Printf("  unique documents   %d\n", s.UniqueDocs)
		fmt.Printf("  infinite cache     %s\n", stats.Bytes(s.InfiniteCacheBytes))
		fmt.Printf("  avg client inf.    %s\n", stats.Bytes(s.AvgClientInfiniteBytes()))
		fmt.Printf("  max hit ratio      %s\n", stats.Pct(s.MaxHitRatio))
		fmt.Printf("  max byte hit ratio %s\n", stats.Pct(s.MaxByteHitRatio))
		fmt.Printf("  cross-client reqs  %d\n", s.SharedRequests)
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, tr); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: write: %v\n", err)
		os.Exit(1)
	}
}
