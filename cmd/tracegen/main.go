// Command tracegen generates a synthetic web trace from one of the
// calibrated paper profiles (or prints its statistics) in the repository's
// native text format or the compact binary .btr format, replayable by
// bapsim and the library's trace.Read / trace.OpenBTR.
//
// Usage:
//
//	tracegen -profile nlanr-uc [-seed N] [-scale F] [-o trace.txt] [-stats]
//	tracegen -profile synth-1m -stream -btr -o synth-1m.btr
//
// The default path materializes the whole trace in memory before writing.
// -stream switches to the constant-memory generator (DESIGN.md §16): the
// trace is produced and written incrementally, so request count no longer
// bounds memory — this is the only practical path at 10^6 clients. The
// streamed output is bit-identical to the in-memory path for the same
// profile. -clients / -requests override the profile's population and
// volume (the CI smoke runs synth-1m at 10^5 clients this way).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"baps"
	"baps/internal/stats"
	"baps/internal/synth"
	"baps/internal/trace"
)

func main() {
	profile := flag.String("profile", "", "profile name ("+strings.Join(baps.ProfileNames(), ", ")+", synth-1m)")
	seed := flag.Int64("seed", 0, "seed override (0 = calibrated)")
	scale := flag.Float64("scale", 1, "workload scale factor")
	clients := flag.Int("clients", 0, "client-count override (0 = profile default)")
	requests := flag.Int("requests", 0, "request-count override (0 = profile default)")
	out := flag.String("o", "", "output file (default stdout; -btr requires a file)")
	btr := flag.Bool("btr", false, "write the compact binary .btr format")
	stream := flag.Bool("stream", false, "constant-memory streaming generation (bit-identical output)")
	statsOnly := flag.Bool("stats", false, "print trace statistics instead of the trace")
	flag.Parse()

	if *profile == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -profile is required")
		flag.Usage()
		os.Exit(2)
	}
	p, err := synth.ByName(*profile)
	if err != nil {
		fail(err)
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *scale != 0 && *scale != 1 {
		p = synth.Scaled(p, *scale)
	}
	if *clients > 0 {
		p.Clients = *clients
	}
	if *requests > 0 {
		p.Requests = *requests
	}

	if *stream {
		runStreaming(p, *out, *btr, *statsOnly)
		return
	}

	tr, err := synth.Generate(p)
	if err != nil {
		fail(err)
	}
	if *statsOnly {
		printStats(trace.Compute(tr))
		return
	}
	w, closeOut := openOut(*out)
	defer closeOut()
	if *btr {
		if err := trace.WriteBTR(w, tr); err != nil {
			fail(fmt.Errorf("write: %w", err))
		}
		return
	}
	if err := trace.Write(w, tr); err != nil {
		fail(fmt.Errorf("write: %w", err))
	}
}

// runStreaming drives the constant-memory generator straight into the
// requested sink; the trace is never resident.
func runStreaming(p synth.Profile, out string, btr, statsOnly bool) {
	g, err := synth.NewStream(p)
	if err != nil {
		fail(err)
	}
	switch {
	case statsOnly:
		st, err := trace.StreamStats(g)
		if err != nil {
			fail(err)
		}
		printStats(st)
	case btr:
		if out == "" {
			fail(fmt.Errorf("-btr -stream needs -o FILE (the writer back-patches the header)"))
		}
		f, err := os.Create(out)
		if err != nil {
			fail(err)
		}
		bw, err := trace.NewBTRWriter(f, p.Name)
		if err != nil {
			fail(err)
		}
		buf := make([]trace.Request, trace.StreamBatchSize)
		for {
			n, err := g.Next(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			for i := 0; i < n; i++ {
				if err := bw.WriteRequest(buf[i]); err != nil {
					fail(fmt.Errorf("write: %w", err))
				}
			}
		}
		if err := bw.Finish(g.NumClients(), g.NumDocs(), g.URLAt); err != nil {
			fail(fmt.Errorf("finish: %w", err))
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %s: %d requests, %d clients, %d docs -> %s\n",
			p.Name, p.Requests, g.NumClients(), g.NumDocs(), out)
	default:
		// Text output: regenerate each URL as its line is written.
		w, closeOut := openOut(out)
		defer closeOut()
		bw := bufio.NewWriterSize(w, 1<<20)
		fmt.Fprintf(bw, "# baps trace %s clients=%d requests=%d\n", p.Name, p.Clients, p.Requests)
		buf := make([]trace.Request, trace.StreamBatchSize)
		var line []byte
		for {
			n, err := g.Next(buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				fail(err)
			}
			for i := 0; i < n; i++ {
				r := buf[i]
				line = line[:0]
				line = strconv.AppendFloat(line, r.Time, 'f', 3, 64)
				line = append(line, ' ')
				line = strconv.AppendInt(line, int64(r.Client), 10)
				line = append(line, ' ')
				line = strconv.AppendInt(line, r.Size, 10)
				line = append(line, ' ')
				line = append(line, g.URLAt(int(r.Doc))...)
				line = append(line, '\n')
				if _, err := bw.Write(line); err != nil {
					fail(fmt.Errorf("write: %w", err))
				}
			}
		}
		if err := bw.Flush(); err != nil {
			fail(fmt.Errorf("write: %w", err))
		}
	}
}

func openOut(path string) (io.Writer, func()) {
	if path == "" {
		return os.Stdout, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	return f, func() {
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

func printStats(s trace.Stats) {
	fmt.Printf("trace %s: %d requests, %d clients\n", s.Name, s.NumRequests, s.NumClients)
	fmt.Printf("  total bytes        %s\n", stats.Bytes(s.TotalBytes))
	fmt.Printf("  unique documents   %d\n", s.UniqueDocs)
	fmt.Printf("  infinite cache     %s\n", stats.Bytes(s.InfiniteCacheBytes))
	fmt.Printf("  avg client inf.    %s\n", stats.Bytes(s.AvgClientInfiniteBytes()))
	fmt.Printf("  max hit ratio      %s\n", stats.Pct(s.MaxHitRatio))
	fmt.Printf("  max byte hit ratio %s\n", stats.Pct(s.MaxByteHitRatio))
	fmt.Printf("  cross-client reqs  %d\n", s.SharedRequests)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
