// Command bapsload is a closed-loop load generator for the live
// browsers-aware proxy: N client goroutines issue GET /fetch requests over a
// Zipf-distributed document population and report throughput, latency
// percentiles, and the per-source hit breakdown as JSON.
//
// Usage:
//
//	bapsload -proxy http://127.0.0.1:8081 -origin http://127.0.0.1:8080 \
//	         [-clients 32] [-docs 20000] [-zipf 1.2] [-duration 30s] [-rps 0]
//	bapsload -inprocess [-clients 32] ...   # self-contained loopback cluster
//	bapsload -proxysweep "1,2,4" [-proxyrps 1200] [-digestinterval 250ms] ...
//	                                        # federated scale-out sweep (§13)
//
// Closed loop: each client waits for its response before issuing the next
// request, so offered load adapts to the system's capacity. -rps > 0 adds a
// global pacer that caps the aggregate request rate. -inprocess brings up an
// origin and a proxy on loopback inside this process, so a single command
// measures the stack end to end.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"time"

	"baps/internal/browser"
	"baps/internal/origin"
	"baps/internal/proxy"
)

// result is the JSON report printed on stdout.
type result struct {
	Config struct {
		Proxy    string  `json:"proxy"`
		Origin   string  `json:"origin"`
		Clients  int     `json:"clients"`
		Docs     int     `json:"docs"`
		Zipf     float64 `json:"zipf"`
		Duration string  `json:"duration"`
		TargetRPS
	} `json:"config"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Bytes     int64   `json:"bytes"`
	WallSec   float64 `json:"wall_sec"`
	RPS       float64 `json:"rps"`
	MBPerSec  float64 `json:"mb_per_sec"`
	LatencyMS latency `json:"latency_ms"`
	// Sources breaks completed requests down by X-BAPS-Source (proxy /
	// remote / origin) as reported per response.
	Sources map[string]int64 `json:"sources"`
	// ProxyStats is the proxy's own /stats snapshot after the run
	// (coalescing, cache, and breaker counters), when reachable.
	ProxyStats *proxy.Stats `json:"proxy_stats,omitempty"`
	// OriginFetches is the origin's served-request count after the run
	// (in-process mode only): with coalescing and caching working, this
	// stays far below Requests.
	OriginFetches int64 `json:"origin_fetches,omitempty"`

	// Index-maintenance accounting (agent-driven runs, -indexmode set).
	// IndexRequests sums every index-maintenance HTTP request the agents
	// issued (immediate ops + full syncs + batches), snapshotted after the
	// agents close so drained final batches are included.
	IndexMode            string `json:"index_mode,omitempty"`
	IndexRequests        int64  `json:"index_requests,omitempty"`
	IndexPublishFailures int64  `json:"index_publish_failures,omitempty"`
	// NonLocalFetches counts requests that left the browser cache — each
	// one can mutate the directory, so it is the natural denominator for
	// index-maintenance overhead.
	NonLocalFetches   int64   `json:"non_local_fetches,omitempty"`
	IndexReqsPerFetch float64 `json:"index_requests_per_fetch,omitempty"`
	AgentLocalHits    int64   `json:"agent_local_hits,omitempty"`

	// Restart carries the kill/restart acceptance numbers (-restartat runs).
	Restart *restartReport `json:"restart,omitempty"`
}

// TargetRPS keeps the zero value out of the report when unlimited.
type TargetRPS struct {
	RPS float64 `json:"target_rps,omitempty"`
}

type latency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

// clientStats is one worker goroutine's tally; merged after the run so the
// hot loop never takes a shared lock.
type clientStats struct {
	lat     []time.Duration
	errs    int64
	bytes   int64
	sources map[string]int64
}

func main() {
	proxyURL := flag.String("proxy", "", "proxy base URL (required unless -inprocess)")
	originURL := flag.String("origin", "", "origin base URL (required unless -inprocess)")
	clients := flag.Int("clients", 32, "concurrent closed-loop clients")
	docs := flag.Int("docs", 20000, "distinct documents in the workload")
	zipfS := flag.Float64("zipf", 1.2, "Zipf skew (s > 1; higher = hotter head)")
	duration := flag.Duration("duration", 30*time.Second, "measurement window")
	targetRPS := flag.Float64("rps", 0, "aggregate request-rate cap (0 = unlimited)")
	inprocess := flag.Bool("inprocess", false, "run origin + proxy on loopback inside this process")
	seed := flag.Uint64("seed", 1, "workload PRNG seed")
	indexMode := flag.String("indexmode", "", "drive full browser agents with this index protocol: immediate, periodic, or batched (default: raw /fetch clients, no index traffic)")
	agentCache := flag.Int64("agentcache", 2<<20, "per-agent browser cache bytes (-indexmode runs; small caches force evictions)")
	dataDir := flag.String("datadir", "", "in-process proxy disk-tier directory (enables crash-safe persistence)")
	capacity := flag.Int64("capacity", 256<<20, "in-process proxy cache capacity in bytes")
	restartAt := flag.Duration("restartat", 0, "SIGKILL the in-process proxy this far into the run, then restart it (0 disables; requires -inprocess and -datadir)")
	restartDown := flag.Duration("restartdown", 2*time.Second, "downtime between the kill and the restart")
	proxies := flag.Int("proxies", 0, "federation mode: in-process cluster of N digest-exchanging proxies (clients are per proxy)")
	proxySweep := flag.String("proxysweep", "", "federation sweep: comma-separated cluster widths, e.g. \"1,2,4\" (implies -proxies)")
	proxyRPS := flag.Float64("proxyrps", 1200, "federation mode: per-proxy fetch admission cap, modeling one machine per proxy")
	digestInterval := flag.Duration("digestinterval", 250*time.Millisecond, "federation mode: sibling Bloom-digest push period")
	modRate := flag.Float64("modrate", 0, "churn mode: origin modifications per second; runs the workload against a federated cluster twice (pipeline off, then on) and gates the stale-serve reduction")
	agentHosts := flag.Int("agenthosts", 0, "lean agent mode: multiplex -indexmode agents across N AgentHosts instead of one server per agent (0 = standalone agents)")
	agentsPerHost := flag.Int("agentsperhost", 0, "-soak: hosted agents per AgentHost (default 6250)")
	soak := flag.Bool("soak", false, "soak mode: AgentHost fleet under sustained load with churn; gates hit-ratio parity and RSS per agent (see -agenthosts/-agentsperhost/-churn)")
	churnFrac := flag.Float64("churn", 0.3, "-soak: fraction of the fleet killed and replaced over the run")
	docSize := flag.Int("docsize", 1024, "-soak: document body size in bytes")
	parityAgents := flag.Int("parityagents", 48, "-soak: client count for the standalone-vs-hosted hit-ratio parity legs")
	soakCompare := flag.String("soakcompare", "", "-soak: previous soak report JSON to gate RPS/p99/RSS-per-agent against")
	flag.Parse()

	if *soak {
		if *zipfS <= 1 || *docs <= 0 {
			fmt.Fprintln(os.Stderr, "bapsload: -zipf must be > 1 and -docs positive")
			os.Exit(2)
		}
		opts := soakOpts{
			hosts:      *agentHosts,
			perHost:    *agentsPerHost,
			parity:     *parityAgents,
			workers:    *clients,
			docs:       *docs,
			zipfS:      *zipfS,
			docSize:    *docSize,
			duration:   *duration,
			churn:      *churnFrac,
			modRate:    *modRate,
			capacity:   *capacity,
			agentCache: *agentCache,
			seed:       *seed,
			compare:    *soakCompare,
		}
		if opts.hosts <= 0 {
			opts.hosts = 8
		}
		if opts.perHost <= 0 {
			opts.perHost = 6250
		}
		rep := runSoak(opts)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		if !rep.OK {
			os.Exit(1)
		}
		return
	}

	if *modRate > 0 {
		n := *proxies
		if n <= 0 {
			n = 2
		}
		if *zipfS <= 1 || *clients <= 0 || *docs <= 0 {
			fmt.Fprintln(os.Stderr, "bapsload: -zipf must be > 1 and -clients/-docs positive")
			os.Exit(2)
		}
		rep := runInvalidationScenario(n, *clients, *docs, *zipfS, *duration, *modRate, *capacity, *seed)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
		if !rep.StaleOK || !rep.OriginOK {
			os.Exit(1)
		}
		return
	}

	if *proxies > 0 || *proxySweep != "" {
		counts := []int{*proxies}
		if *proxySweep != "" {
			var err error
			if counts, err = parseSweep(*proxySweep); err != nil {
				fmt.Fprintf(os.Stderr, "bapsload: %v\n", err)
				os.Exit(2)
			}
		}
		if *zipfS <= 1 || *clients <= 0 || *docs <= 0 {
			fmt.Fprintln(os.Stderr, "bapsload: -zipf must be > 1 and -clients/-docs positive")
			os.Exit(2)
		}
		sw := runFederationSweep(counts, *clients, *docs, *zipfS, *duration, *proxyRPS, *digestInterval, *capacity, *seed)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sw)
		if !sw.ScalingOK || !sw.HitRatioOK {
			os.Exit(1)
		}
		return
	}

	if *indexMode != "" {
		if _, err := parseIndexMode(*indexMode); err != nil {
			fmt.Fprintf(os.Stderr, "bapsload: %v\n", err)
			os.Exit(2)
		}
	}

	var plan *restartPlan
	if *restartAt > 0 {
		if !*inprocess || *dataDir == "" {
			fmt.Fprintln(os.Stderr, "bapsload: -restartat requires -inprocess and -datadir")
			os.Exit(2)
		}
		if *restartAt+*restartDown >= *duration {
			fmt.Fprintln(os.Stderr, "bapsload: -restartat + -restartdown must leave a recovery window inside -duration")
			os.Exit(2)
		}
		plan = &restartPlan{at: *restartAt, down: *restartDown}
	}

	if *inprocess {
		oURL, pURL, shutdown, err := startCluster(*dataDir, *capacity)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bapsload: in-process cluster: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		*originURL, *proxyURL = oURL, pURL
	}
	if *proxyURL == "" || *originURL == "" {
		fmt.Fprintln(os.Stderr, "bapsload: -proxy and -origin are required (or use -inprocess)")
		os.Exit(2)
	}
	if *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "bapsload: -zipf must be > 1")
		os.Exit(2)
	}
	if *clients <= 0 || *docs <= 0 {
		fmt.Fprintln(os.Stderr, "bapsload: -clients and -docs must be positive")
		os.Exit(2)
	}

	if *agentHosts > 0 && *indexMode == "" {
		fmt.Fprintln(os.Stderr, "bapsload: -agenthosts requires -indexmode (hosted clients are full browser agents)")
		os.Exit(2)
	}

	res := run(*proxyURL, *originURL, *clients, *docs, *zipfS, *duration, *targetRPS, *seed, *indexMode, *agentCache, *agentHosts, plan)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(res)
	if res.Errors > 0 && res.Requests == res.Errors {
		os.Exit(1) // nothing succeeded; the exit code should say so
	}
}

// startCluster brings up a loopback origin and proxy, returning their URLs
// and a shutdown func. A non-empty datadir enables the proxy's crash-safe
// disk tier (and makes -restartat possible).
func startCluster(datadir string, capacity int64) (originURL, proxyURL string, shutdown func(), err error) {
	o := origin.New(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", "", nil, err
	}
	originSrv := &http.Server{Handler: o.Handler()}
	go originSrv.Serve(ln)
	originURL = "http://" + ln.Addr().String()

	cfg := proxy.DefaultConfig()
	cfg.KeyBits = 2048
	cfg.CacheCapacity = capacity
	cfg.DataDir = datadir
	p, err := proxy.New(cfg)
	if err != nil {
		originSrv.Close()
		return "", "", nil, err
	}
	if err := p.Start("127.0.0.1:0"); err != nil {
		originSrv.Close()
		return "", "", nil, err
	}
	inproc.origin = o
	inproc.pcfg = cfg
	inproc.setProxy(p)
	return originURL, p.BaseURL(), func() {
		inproc.getProxy().Close()
		originSrv.Close()
	}, nil
}

// inprocState exposes the in-process servers to the reporter and the
// restart controller (zero outside -inprocess runs). The proxy handle is
// swapped on restart, so access goes through the mutex.
type inprocState struct {
	mu     sync.Mutex
	origin *origin.Server
	proxy  *proxy.Server
	pcfg   proxy.Config
}

var inproc inprocState

func (i *inprocState) setProxy(p *proxy.Server) {
	i.mu.Lock()
	i.proxy = p
	i.mu.Unlock()
}

func (i *inprocState) getProxy() *proxy.Server {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.proxy
}

// parseIndexMode maps the -indexmode flag to a browser protocol.
func parseIndexMode(s string) (browser.IndexMode, error) {
	switch s {
	case "immediate":
		return browser.Immediate, nil
	case "periodic":
		return browser.Periodic, nil
	case "batched":
		return browser.Batched, nil
	}
	return 0, fmt.Errorf("unknown -indexmode %q (want immediate, periodic, or batched)", s)
}

func run(proxyURL, originURL string, clients, docs int, zipfS float64, duration time.Duration, targetRPS float64, seed uint64, indexMode string, agentCache int64, agentHosts int, plan *restartPlan) *result {
	// One shared keep-alive transport: all clients hit the same proxy
	// host, so the pool depth scales with the client count.
	transport := proxy.NewTransport(clients)
	httpClient := &http.Client{Timeout: 30 * time.Second, Transport: transport}

	// Agent-driven mode: every closed-loop client is a full browser agent
	// (cache + peer server + index maintenance), so the run measures the
	// index protocol's overhead, not just raw /fetch throughput.
	var agents []*browser.Agent
	var hosts []*browser.AgentHost
	if indexMode != "" {
		mode, err := parseIndexMode(indexMode)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bapsload: %v\n", err)
			os.Exit(2)
		}
		cfg := browser.DefaultConfig(proxyURL)
		cfg.IndexMode = mode
		cfg.CacheCapacity = agentCache
		cfg.Timeout = 30 * time.Second
		// Skip RSA watermark verification: the run isolates index-
		// maintenance cost, and per-document signature checks would
		// dominate the client CPU budget.
		cfg.Verify = false
		if agentHosts > 0 {
			// Lean agent mode: clients ride round-robin on shared
			// AgentHosts — one listener, one transport, one batched index
			// publisher per host instead of per agent.
			for h := 0; h < agentHosts; h++ {
				host, err := browser.NewHost(browser.HostConfig{Agent: cfg})
				if err != nil {
					fmt.Fprintf(os.Stderr, "bapsload: agent host %d: %v\n", h, err)
					os.Exit(1)
				}
				hosts = append(hosts, host)
			}
			for c := 0; c < clients; c++ {
				ag, err := hosts[c%agentHosts].Spawn()
				if err != nil {
					fmt.Fprintf(os.Stderr, "bapsload: hosted agent %d: %v\n", c, err)
					os.Exit(1)
				}
				agents = append(agents, ag)
			}
		} else {
			for c := 0; c < clients; c++ {
				ag, err := browser.New(cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bapsload: agent %d: %v\n", c, err)
					os.Exit(1)
				}
				agents = append(agents, ag)
			}
		}
	}

	// Global pacer for -rps: a token drops every 1/rps seconds; each
	// request consumes one. Closed-loop clients block on it.
	var pace <-chan time.Time
	var pacer *time.Ticker
	if targetRPS > 0 {
		pacer = time.NewTicker(time.Duration(float64(time.Second) / targetRPS))
		pace = pacer.C
		defer pacer.Stop()
	}

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	var rc *restartController
	if plan != nil {
		rc = newRestartController(*plan)
		go rc.run(ctx)
	}

	stats := make([]clientStats, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &stats[c]
			st.sources = make(map[string]int64)
			// Per-client PRNG; distinct seeds keep the clients'
			// request sequences decorrelated but reproducible.
			rng := rand.New(rand.NewPCG(seed, uint64(c)*0x9E3779B9+1))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(docs-1))
			for ctx.Err() == nil {
				if pace != nil {
					select {
					case <-pace:
					case <-ctx.Done():
						return
					}
				}
				doc := zipf.Uint64()
				var ok bool
				if agents != nil {
					ok = st.doAgent(ctx, agents[c], originURL, doc)
				} else {
					ok = st.do(ctx, httpClient, proxyURL, originURL, doc)
				}
				if !ok && plan != nil {
					// Proxy downtime mid-restart: back off instead of
					// spinning a connection-refused error storm.
					select {
					case <-time.After(100 * time.Millisecond):
					case <-ctx.Done():
					}
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	res := &result{Sources: make(map[string]int64)}
	if agents != nil {
		// Close first (drains the Batched publish queues), then snapshot,
		// so the index-request totals include the final flushed batches.
		var sum browser.Metrics
		for _, ag := range agents {
			ag.Close()
			m := ag.Snapshot()
			sum.Requests += m.Requests
			sum.LocalHits += m.LocalHits
			sum.IndexOps += m.IndexOps
			sum.IndexSyncs += m.IndexSyncs
			sum.IndexBatches += m.IndexBatches
			sum.IndexPublishFailures += m.IndexPublishFailures
		}
		for _, h := range hosts {
			h.Close() // agents are already removed; stops listener + publisher
		}
		res.IndexMode = indexMode
		res.IndexRequests = sum.IndexOps + sum.IndexSyncs + sum.IndexBatches
		res.IndexPublishFailures = sum.IndexPublishFailures
		res.AgentLocalHits = sum.LocalHits
		res.NonLocalFetches = sum.Requests - sum.LocalHits
		if res.NonLocalFetches > 0 {
			res.IndexReqsPerFetch = float64(res.IndexRequests) / float64(res.NonLocalFetches)
		}
	}
	res.Config.Proxy = proxyURL
	res.Config.Origin = originURL
	res.Config.Clients = clients
	res.Config.Docs = docs
	res.Config.Zipf = zipfS
	res.Config.Duration = duration.String()
	res.Config.RPS = targetRPS

	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		all = append(all, st.lat...)
		res.Errors += st.errs
		res.Bytes += st.bytes
		for s, n := range st.sources {
			res.Sources[s] += n
		}
	}
	res.Requests = int64(len(all)) + res.Errors
	res.WallSec = wall.Seconds()
	if res.WallSec > 0 {
		res.RPS = float64(res.Requests) / res.WallSec
		res.MBPerSec = float64(res.Bytes) / (1 << 20) / res.WallSec
	}
	res.LatencyMS = summarize(all)
	if st := fetchProxyStats(proxyURL); st != nil {
		res.ProxyStats = st
	}
	if inproc.origin != nil {
		res.OriginFetches = inproc.origin.Fetches()
	}
	if rc != nil {
		res.Restart = rc.report(res.ProxyStats)
	}
	return res
}

// do issues one /fetch and records its latency, source, and byte count.
// false means the request failed (the restart harness backs off on it).
func (st *clientStats) do(ctx context.Context, c *http.Client, proxyURL, originURL string, doc uint64) bool {
	docURL := fmt.Sprintf("%s/doc/%d", originURL, doc)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		proxyURL+"/fetch?url="+url.QueryEscape(docURL), nil)
	if err != nil {
		st.errs++
		return false
	}
	t0 := time.Now()
	resp, err := c.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			st.errs++
		}
		return false
	}
	n, err := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		if ctx.Err() == nil {
			st.errs++
		}
		return false
	}
	st.lat = append(st.lat, time.Since(t0))
	st.bytes += n
	src := resp.Header.Get(proxy.HeaderSource)
	if src == "" {
		src = "unknown"
	}
	st.sources[src]++
	return true
}

// doAgent issues one document request through a full browser agent,
// recording the resolution source (local / proxy / remote / origin).
func (st *clientStats) doAgent(ctx context.Context, ag *browser.Agent, originURL string, doc uint64) bool {
	docURL := fmt.Sprintf("%s/doc/%d", originURL, doc)
	t0 := time.Now()
	body, src, err := ag.Get(ctx, docURL)
	if err != nil {
		if ctx.Err() == nil {
			st.errs++
		}
		return false
	}
	st.lat = append(st.lat, time.Since(t0))
	st.bytes += int64(len(body))
	st.sources[string(src)]++
	return true
}

// summarize sorts the merged latencies and extracts the report percentiles.
func summarize(lat []time.Duration) latency {
	if len(lat) == 0 {
		return latency{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return latency{
		Mean: ms(sum / time.Duration(len(lat))),
		P50:  ms(pct(0.50)),
		P90:  ms(pct(0.90)),
		P95:  ms(pct(0.95)),
		P99:  ms(pct(0.99)),
		Max:  ms(lat[len(lat)-1]),
	}
}

// fetchProxyStats snapshots the proxy's /stats after the run (best-effort).
func fetchProxyStats(proxyURL string) *proxy.Stats {
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(proxyURL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return nil
	}
	defer resp.Body.Close()
	var st proxy.Stats
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil
	}
	st.PeerHealth = nil // per-peer detail is noise in a load report
	return &st
}
