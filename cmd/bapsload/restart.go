package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"baps/internal/proxy"
)

// restartPlan schedules a mid-run SIGKILL + restart of the in-process
// proxy: Crash() (no journal flush, no state save, listener torn down) at
// `at`, a fresh proxy on the same address and data directory after `down`.
type restartPlan struct {
	at   time.Duration
	down time.Duration
}

// restartReport is the `restart` section of the JSON result: the warm-
// restart acceptance numbers.
type restartReport struct {
	KilledAfterSec float64 `json:"killed_after_sec"`
	DownSec        float64 `json:"down_sec"`
	// RestoredDocs is the cache skeleton replayed from the journal by the
	// restarted proxy; RestartToWarmSec is its own warm gauge.
	RestoredDocs     int     `json:"restored_docs"`
	RestartToWarmSec float64 `json:"restart_to_warm_sec"`
	// Hit ratios over equal windows: the last steadyWindow before the kill
	// vs the last steadyWindow of the run. Recovered means the post ratio
	// reached >= 90% of the pre ratio.
	PreHitRatio  float64 `json:"pre_hit_ratio"`
	PostHitRatio float64 `json:"post_hit_ratio"`
	Recovered    bool    `json:"recovered"`
	// Origin rates: steady state measured just before the kill, peak
	// 1-second rate after the restart. SpikeOK means the peak stayed
	// within 2x steady (no thundering herd onto the origin).
	SteadyOriginRPS   float64 `json:"steady_origin_rps"`
	PeakPostOriginRPS float64 `json:"peak_post_origin_rps"`
	OriginSpikeRatio  float64 `json:"origin_spike_ratio"`
	SpikeOK           bool    `json:"origin_spike_ok"`
}

// steadyWindow is the measurement window on each side of the restart.
const steadyWindow = 5 * time.Second

// sample is one per-second observation of the origin and proxy counters.
type sample struct {
	t      time.Time
	origin int64
	reqs   int64
	hits   int64
	up     bool // proxy was alive when sampled
}

type restartController struct {
	plan restartPlan

	mu       sync.Mutex
	samples  []sample
	killedAt time.Time
	backAt   time.Time
	restored int
	warmSec  float64
}

func newRestartController(plan restartPlan) *restartController {
	return &restartController{plan: plan}
}

// run samples counters once a second and executes the kill/restart schedule.
// It owns the inproc proxy handle swap; workers keep hammering the (dead,
// then reborn) address throughout.
func (rc *restartController) run(ctx context.Context) {
	start := time.Now()
	tick := time.NewTicker(1 * time.Second)
	defer tick.Stop()
	killed := false
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		rc.sample(!killed || !rc.backAt.IsZero())
		if !killed && time.Since(start) >= rc.plan.at {
			killed = true
			rc.killRestart()
		}
	}
}

func (rc *restartController) sample(proxyUp bool) {
	s := sample{t: time.Now(), origin: inproc.origin.Fetches(), up: proxyUp}
	if proxyUp {
		st := inproc.getProxy().Snapshot()
		s.reqs, s.hits = st.Requests, st.ProxyHits
	}
	rc.mu.Lock()
	rc.samples = append(rc.samples, s)
	rc.mu.Unlock()
}

func (rc *restartController) killRestart() {
	old := inproc.getProxy()
	addr := strings.TrimPrefix(old.BaseURL(), "http://")
	rc.mu.Lock()
	rc.killedAt = time.Now()
	rc.mu.Unlock()
	old.Crash()
	time.Sleep(rc.plan.down)

	p, err := proxy.New(inproc.pcfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bapsload: restart: %v\n", err)
		os.Exit(1)
	}
	for i := 0; ; i++ {
		if err = p.Start(addr); err == nil {
			break
		}
		if i == 20 {
			fmt.Fprintf(os.Stderr, "bapsload: rebind %s: %v\n", addr, err)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
	inproc.setProxy(p)
	st := p.Snapshot()
	rc.mu.Lock()
	rc.backAt = time.Now()
	rc.restored = st.RestoredDocs
	rc.mu.Unlock()
}

// windowRates extracts (hit ratio, origin RPS) over the samples inside
// [from, to]; ok is false when the window has fewer than two usable samples.
func windowRates(samples []sample, from, to time.Time) (ratio, originRPS float64, ok bool) {
	var in []sample
	for _, s := range samples {
		if s.up && !s.t.Before(from) && !s.t.After(to) {
			in = append(in, s)
		}
	}
	if len(in) < 2 {
		return 0, 0, false
	}
	first, last := in[0], in[len(in)-1]
	dt := last.t.Sub(first.t).Seconds()
	dreq := last.reqs - first.reqs
	if dt <= 0 || dreq <= 0 {
		return 0, 0, false
	}
	return float64(last.hits-first.hits) / float64(dreq),
		float64(last.origin-first.origin) / dt, true
}

// report folds the samples into the restart section. finalStats, when
// non-nil, supplies the authoritative warm gauge from the restarted proxy's
// own /stats.
func (rc *restartController) report(finalStats *proxy.Stats) *restartReport {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	r := &restartReport{
		KilledAfterSec: rc.plan.at.Seconds(),
		DownSec:        rc.plan.down.Seconds(),
		RestoredDocs:   rc.restored,
	}
	if finalStats != nil {
		r.RestartToWarmSec = finalStats.RestartToWarmSec
		if finalStats.RestoredDocs > r.RestoredDocs {
			r.RestoredDocs = finalStats.RestoredDocs
		}
	}
	if rc.killedAt.IsZero() || len(rc.samples) == 0 {
		return r
	}
	var preOK, postOK bool
	r.PreHitRatio, r.SteadyOriginRPS, preOK =
		windowRates(rc.samples, rc.killedAt.Add(-steadyWindow), rc.killedAt)
	lastT := rc.samples[len(rc.samples)-1].t
	r.PostHitRatio, _, postOK = windowRates(rc.samples, lastT.Add(-steadyWindow), lastT)
	if preOK && postOK {
		r.Recovered = r.PostHitRatio >= 0.9*r.PreHitRatio
	}
	// Peak post-restart origin rate over consecutive 1s samples.
	var prev *sample
	for i := range rc.samples {
		s := rc.samples[i]
		if !s.up || s.t.Before(rc.backAt) {
			continue
		}
		if prev != nil {
			if dt := s.t.Sub(prev.t).Seconds(); dt > 0 {
				if rps := float64(s.origin-prev.origin) / dt; rps > r.PeakPostOriginRPS {
					r.PeakPostOriginRPS = rps
				}
			}
		}
		prev = &rc.samples[i]
	}
	if r.SteadyOriginRPS > 0 {
		r.OriginSpikeRatio = r.PeakPostOriginRPS / r.SteadyOriginRPS
		r.SpikeOK = r.PeakPostOriginRPS <= 2*r.SteadyOriginRPS
	}
	return r
}
