// Invalidation-churn mode (-modrate): measure what the background pipeline
// buys under document modification churn. The same closed-loop Zipf workload
// runs twice against a fresh in-process federated cluster — once with the
// pipeline disabled (the request-coupled §2 baseline: a modification is only
// discovered when a request happens to miss) and once with background
// revalidation + invalidation fan-out enabled — while a modifier goroutine
// bumps Zipf-chosen document versions at -modrate per second.
//
// A stale serve is a 200 whose X-BAPS-Version is below the origin's version
// as snapshotted BEFORE the request was issued, so the count is a race-free
// lower bound and is computed identically for both runs. The report gates:
//
//   - stale_ok: the pipeline run's stale-serve rate is ≥ 5x below baseline;
//   - origin_ok: the pipeline run's origin fetches per modification stay
//     ≤ 2.0 — steady state is one conditional refetch per modification
//     (304s are free; sibling invalidation makes the second proxy re-pull
//     through the digest tier, not the origin), so 2x bounds the thrash.
package main

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"baps/internal/federation"
	"baps/internal/origin"
	"baps/internal/proxy"
)

// invalRun is one half (baseline or pipeline) of the churn report.
type invalRun struct {
	Pipeline bool    `json:"pipeline"`
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	WallSec  float64 `json:"wall_sec"`
	RPS      float64 `json:"rps"`

	Modifications    int64   `json:"modifications"`
	StaleServesTotal int64   `json:"stale_serves_total"`
	StaleServeRate   float64 `json:"stale_serve_rate"` // per completed request

	// OriginFetches counts measurement-window origin document serves (304
	// revalidation answers are not fetches). Per modification ≈ 1 is the
	// pipeline's steady state: each modified resident doc refetched once.
	OriginFetches                int64   `json:"origin_fetches"`
	OriginFetchesPerModification float64 `json:"origin_fetches_per_modification"`

	// Pipeline-side accounting summed over the cluster (zero in baseline).
	Revalidations         int64 `json:"revalidations"`
	RevalidationsChanged  int64 `json:"revalidations_changed"`
	InvalidationsSent     int64 `json:"invalidations_sent"`
	InvalidationsReceived int64 `json:"invalidations_received"`
	CrossProxyFetches     int64 `json:"cross_proxy_fetches"`
	DeadLettered          int64 `json:"dead_lettered"`
}

// invalReport is the combined -modrate report with the acceptance gates.
type invalReport struct {
	Config struct {
		Proxies         int     `json:"proxies"`
		Clients         int     `json:"clients"`
		Docs            int     `json:"docs"`
		Zipf            float64 `json:"zipf"`
		Duration        string  `json:"duration"`
		ModRate         float64 `json:"mod_rate"`
		RevalidateAfter string  `json:"revalidate_after"`
		Seed            uint64  `json:"seed"`
	} `json:"config"`
	Baseline *invalRun `json:"baseline"`
	Pipeline *invalRun `json:"pipeline"`

	// StaleReduction is baseline stale rate over pipeline stale rate (0 when
	// the pipeline run served nothing stale at all — the best outcome).
	StaleReduction float64 `json:"stale_reduction,omitempty"`
	StaleOK        bool    `json:"stale_ok"`
	OriginOK       bool    `json:"origin_ok"`
}

// runInvalidationScenario executes the churn workload twice and gates.
func runInvalidationScenario(n, clients, docs int, zipfS float64, duration time.Duration, modRate float64, capacity int64, seed uint64) *invalReport {
	rep := &invalReport{}
	rep.Config.Proxies = n
	rep.Config.Clients = clients
	rep.Config.Docs = docs
	rep.Config.Zipf = zipfS
	rep.Config.Duration = duration.String()
	rep.Config.ModRate = modRate
	rep.Config.RevalidateAfter = invalRevalidateAfter.String()
	rep.Config.Seed = seed

	for _, pipeline := range []bool{false, true} {
		label := "baseline (pipeline off)"
		if pipeline {
			label = "pipeline (revalidation + invalidation on)"
		}
		fmt.Fprintf(os.Stderr, "bapsload: churn run: %s, %d proxies, %d clients, %s\n",
			label, n, clients, duration)
		run, err := runInvalidationOnce(pipeline, n, clients, docs, zipfS, duration, modRate, capacity, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bapsload: churn run (%s): %v\n", label, err)
			os.Exit(1)
		}
		if pipeline {
			rep.Pipeline = run
		} else {
			rep.Baseline = run
		}
	}

	base, pipe := rep.Baseline, rep.Pipeline
	if pipe.StaleServeRate > 0 {
		rep.StaleReduction = base.StaleServeRate / pipe.StaleServeRate
	}
	rep.StaleOK = pipe.StaleServeRate*5 <= base.StaleServeRate && base.StaleServesTotal > 0
	rep.OriginOK = pipe.Modifications > 0 && pipe.OriginFetchesPerModification <= 2.0
	return rep
}

const (
	invalRevalidateAfter = 200 * time.Millisecond
	invalRevalidateEvery = 75 * time.Millisecond
	invalDigestInterval  = 100 * time.Millisecond
)

// runInvalidationOnce drives one warm-then-measure churn run against a fresh
// n-proxy federated cluster over a fresh origin.
func runInvalidationOnce(pipeline bool, n, clients, docs int, zipfS float64, duration time.Duration, modRate float64, capacity int64, seed uint64) (*invalRun, error) {
	o := origin.New(int64(seed))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	originSrv := &http.Server{Handler: o.Handler()}
	go originSrv.Serve(ln)
	originURL := "http://" + ln.Addr().String()
	defer originSrv.Close()

	proxies := make([]*proxy.Server, n)
	for i := range proxies {
		cfg := proxy.DefaultConfig()
		cfg.KeyBits = 1024
		cfg.CacheCapacity = capacity
		cfg.DigestInterval = invalDigestInterval
		if pipeline {
			cfg.RevalidateAfter = invalRevalidateAfter
			cfg.RevalidateEvery = invalRevalidateEvery
			cfg.RevalidateRPS = 2048
		}
		p, err := proxy.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := p.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		defer p.Close()
		proxies[i] = p
	}
	nodes := make([]string, n)
	for i, p := range proxies {
		nodes[i] = p.BaseURL()
	}
	if n > 1 {
		for i, p := range proxies {
			peers := make([]string, 0, n-1)
			for j, u := range nodes {
				if j != i {
					peers = append(peers, u)
				}
			}
			if err := p.JoinCluster(peers); err != nil {
				return nil, err
			}
		}
	}

	httpClient := &http.Client{Timeout: 30 * time.Second, Transport: proxy.NewTransport(clients)}

	// Warm: same workload, no churn, nothing counted. Half the measurement
	// window is enough for the Zipf head to go resident on every proxy and
	// for at least one digest round to cover it cluster-wide.
	warmCtx, cancelWarm := context.WithTimeout(context.Background(), duration/2)
	driveChurnClients(warmCtx, httpClient, o, nodes, originURL, clients, docs, zipfS, seed, nil)
	cancelWarm()

	fetchesWarm := o.Fetches()
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	// Modifier: bump Zipf-chosen documents (same skew, decorrelated stream)
	// so churn lands mostly on resident, actively requested documents.
	var mods int64
	var modWG sync.WaitGroup
	modWG.Add(1)
	go func() {
		defer modWG.Done()
		rng := rand.New(rand.NewPCG(seed, 0xC0FFEE))
		zipf := rand.NewZipf(rng, zipfS, 1, uint64(docs-1))
		tick := time.NewTicker(time.Duration(float64(time.Second) / modRate))
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				o.Modify(fmt.Sprintf("/doc/%d", zipf.Uint64()))
				atomic.AddInt64(&mods, 1)
			}
		}
	}()

	run := &invalRun{Pipeline: pipeline}
	start := time.Now()
	driveChurnClients(ctx, httpClient, o, nodes, originURL, clients, docs, zipfS, seed+1, run)
	run.WallSec = time.Since(start).Seconds()
	modWG.Wait()

	// Let in-flight background refetches land before the origin snapshot:
	// they are part of this run's cost, not the shutdown's.
	if pipeline {
		time.Sleep(2 * invalRevalidateEvery)
	}
	run.Modifications = atomic.LoadInt64(&mods)
	run.OriginFetches = o.Fetches() - fetchesWarm
	if run.Modifications > 0 {
		run.OriginFetchesPerModification = float64(run.OriginFetches) / float64(run.Modifications)
	}
	if completed := run.Requests - run.Errors; completed > 0 {
		run.StaleServeRate = float64(run.StaleServesTotal) / float64(completed)
	}
	if run.WallSec > 0 {
		run.RPS = float64(run.Requests) / run.WallSec
	}
	for _, p := range proxies {
		st := p.Snapshot()
		run.Revalidations += st.Revalidations
		run.RevalidationsChanged += st.RevalidationsChanged
		run.InvalidationsSent += st.InvalidationsSent
		run.InvalidationsReceived += st.InvalidationsReceived
		run.CrossProxyFetches += st.ClusterFetches
		if st.Workqueue != nil {
			run.DeadLettered += st.Workqueue.DeadLettered
		}
	}
	return run, nil
}

// driveChurnClients runs the closed loop until ctx expires. With run non-nil
// it tallies requests, errors, and stale serves (response version below the
// origin version snapshotted before the request went out).
func driveChurnClients(ctx context.Context, c *http.Client, o *origin.Server, nodes []string, originURL string, clients, docs int, zipfS float64, seed uint64, run *invalRun) {
	type tally struct{ requests, errs, stale int64 }
	tallies := make([]tally, clients)
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		w := w
		home := federation.Owner(nodes, fmt.Sprintf("client-%d", w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl := &tallies[w]
			rng := rand.New(rand.NewPCG(seed, uint64(w)*0x9E3779B9+1))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(docs-1))
			for ctx.Err() == nil {
				path := fmt.Sprintf("/doc/%d", zipf.Uint64())
				var expected int64
				if run != nil {
					expected = o.Version(path)
				}
				req, err := http.NewRequestWithContext(ctx, http.MethodGet,
					home+"/fetch?url="+url.QueryEscape(originURL+path), nil)
				if err != nil {
					tl.errs++
					continue
				}
				resp, err := c.Do(req)
				if err != nil {
					if ctx.Err() == nil {
						tl.requests++
						tl.errs++
					}
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if ctx.Err() != nil {
					return
				}
				tl.requests++
				if cerr != nil || resp.StatusCode != http.StatusOK {
					tl.errs++
					continue
				}
				if run != nil {
					got, _ := strconv.ParseInt(resp.Header.Get(proxy.HeaderVersion), 10, 64)
					if got < expected {
						tl.stale++
					}
				}
			}
		}()
	}
	wg.Wait()
	if run == nil {
		return
	}
	for i := range tallies {
		run.Requests += tallies[i].requests
		run.Errors += tallies[i].errs
		run.StaleServesTotal += tallies[i].stale
	}
}
