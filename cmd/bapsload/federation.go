// Federation sweep mode: bring up an in-process cluster of N federated
// proxies sharing one origin, pin each closed-loop client to its
// rendezvous-hash home proxy, and report aggregate throughput, the
// aggregate hit ratio, and the cross-proxy resolution economics (sibling
// relays, Bloom false positives, digest traffic). -proxysweep runs the
// same workload at several cluster widths and gates the scaling claim:
// aggregate RPS must grow with proxy count while the aggregate hit ratio
// holds, because the digest tier turns N private caches into one
// population-wide document pool.
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"baps/internal/federation"
	"baps/internal/origin"
	"baps/internal/proxy"
)

// fedProxyBrief is one proxy's corner of a federation run report.
type fedProxyBrief struct {
	Proxy            string  `json:"proxy"`
	Clients          int     `json:"clients"`
	Requests         int64   `json:"requests"`
	HitRatio         float64 `json:"hit_ratio"`
	ClusterFetches   int64   `json:"cluster_fetches"` // docs pulled FROM siblings
	ClusterServes    int64   `json:"cluster_serves"`  // sibling relay requests served
	ClusterServeHits int64   `json:"cluster_serve_hits"`
	LocateConfirms   int64   `json:"locate_confirms"`
	LocateFPs        int64   `json:"locate_fps"`
	DigestsSent      int64   `json:"digests_sent"`
	DigestsReceived  int64   `json:"digests_received"`
	QuarantinedSibs  int     `json:"quarantined_siblings,omitempty"`
	OriginFetchShare float64 `json:"origin_share"`
}

// fedRun is the report for one cluster width.
type fedRun struct {
	Proxies           int              `json:"proxies"`
	ClientsTotal      int              `json:"clients_total"`
	Requests          int64            `json:"requests"`
	Errors            int64            `json:"errors"`
	WallSec           float64          `json:"wall_sec"`
	AggregateRPS      float64          `json:"aggregate_rps"`
	AggregateHitRatio float64          `json:"aggregate_hit_ratio"`
	Sources           map[string]int64 `json:"sources"`
	LatencyMS         latency          `json:"latency_ms"`
	OriginFetches     int64            `json:"origin_fetches"`
	OriginFetchRate   float64          `json:"origin_fetch_rate"` // per completed request
	CrossProxyFetches int64            `json:"cross_proxy_fetches"`
	CrossProxyRate    float64          `json:"cross_proxy_rate"` // per completed request
	BloomConfirms     int64            `json:"bloom_confirms"`
	BloomFPs          int64            `json:"bloom_fps"`
	BloomFPRate       float64          `json:"bloom_fp_rate"` // FPs / (FPs + confirms)
	DigestsSent       int64            `json:"digests_sent"`
	DigestsReceived   int64            `json:"digests_received"`
	PerProxy          []fedProxyBrief  `json:"per_proxy"`
}

// fedSweep is the combined -proxysweep report with the scaling gates.
type fedSweep struct {
	Config struct {
		Sweep           []int   `json:"sweep"`
		ClientsPerProxy int     `json:"clients_per_proxy"`
		Docs            int     `json:"docs"`
		Zipf            float64 `json:"zipf"`
		Duration        string  `json:"duration"`
		PerProxyRPS     float64 `json:"per_proxy_rps"`
		DigestInterval  string  `json:"digest_interval"`
		Seed            uint64  `json:"seed"`
	} `json:"config"`
	Runs []*fedRun `json:"runs"`
	// RPSScaling is last-run aggregate RPS over first-run aggregate RPS.
	RPSScaling float64 `json:"rps_scaling"`
	// ScalingPerDoubling normalizes RPSScaling by the number of cluster
	// doublings between the first and last run (1→8 proxies = 3 doublings).
	ScalingPerDoubling float64 `json:"scaling_per_doubling"`
	// ScalingOK gates throughput scale-out. Short sweeps (up to one
	// doubling deep, e.g. 1→4) must at least double end to end; deeper
	// sweeps (1→8 and beyond) are gated per doubling at ≥1.7×, since
	// digest-exchange overhead and the shared origin eat into each
	// successive doubling.
	ScalingOK bool `json:"scaling_ok"`
	// HitRatioOK gates the widest cluster's aggregate hit ratio to within
	// 3 points of the single proxy's — federation must not trade hits for
	// throughput.
	HitRatioOK    bool    `json:"hit_ratio_ok"`
	HitRatioDelta float64 `json:"hit_ratio_delta"`
}

// parseSweep parses "1,2,4" into cluster widths.
func parseSweep(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -proxysweep element %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-proxysweep is empty")
	}
	return out, nil
}

// runFederationSweep executes the workload at each cluster width and
// computes the scaling gates against the first (narrowest) run.
func runFederationSweep(counts []int, clientsPerProxy, docs int, zipfS float64, duration time.Duration, perProxyRPS float64, digestInterval time.Duration, capacity int64, seed uint64) *fedSweep {
	sw := &fedSweep{}
	sw.Config.Sweep = counts
	sw.Config.ClientsPerProxy = clientsPerProxy
	sw.Config.Docs = docs
	sw.Config.Zipf = zipfS
	sw.Config.Duration = duration.String()
	sw.Config.PerProxyRPS = perProxyRPS
	sw.Config.DigestInterval = digestInterval.String()
	sw.Config.Seed = seed
	for _, n := range counts {
		fmt.Fprintf(os.Stderr, "bapsload: federation run: %d proxies, %d clients, %s\n",
			n, n*clientsPerProxy, duration)
		run, err := runFederationOnce(n, clientsPerProxy, docs, zipfS, duration, perProxyRPS, digestInterval, capacity, seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bapsload: federation run (%d proxies): %v\n", n, err)
			os.Exit(1)
		}
		sw.Runs = append(sw.Runs, run)
	}
	first, last := sw.Runs[0], sw.Runs[len(sw.Runs)-1]
	if first.AggregateRPS > 0 {
		sw.RPSScaling = last.AggregateRPS / first.AggregateRPS
	}
	doublings := 0.0
	if first.Proxies > 0 && last.Proxies > first.Proxies {
		doublings = math.Log2(float64(last.Proxies) / float64(first.Proxies))
	}
	if doublings > 0 {
		sw.ScalingPerDoubling = math.Pow(sw.RPSScaling, 1/doublings)
	}
	if doublings >= 3 {
		sw.ScalingOK = sw.ScalingPerDoubling >= 1.7
	} else {
		sw.ScalingOK = len(sw.Runs) == 1 || sw.RPSScaling >= 2.0
	}
	sw.HitRatioDelta = last.AggregateHitRatio - first.AggregateHitRatio
	sw.HitRatioOK = sw.HitRatioDelta >= -0.03
	return sw
}

// runFederationOnce runs the closed loop against an n-proxy federated
// cluster and one shared origin, all in-process on loopback.
func runFederationOnce(n, clientsPerProxy, docs int, zipfS float64, duration time.Duration, perProxyRPS float64, digestInterval time.Duration, capacity int64, seed uint64) (*fedRun, error) {
	o := origin.New(int64(seed))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	originSrv := &http.Server{Handler: o.Handler()}
	go originSrv.Serve(ln)
	originURL := "http://" + ln.Addr().String()
	defer originSrv.Close()

	proxies := make([]*proxy.Server, n)
	for i := range proxies {
		cfg := proxy.DefaultConfig()
		cfg.KeyBits = 1024
		cfg.CacheCapacity = capacity
		cfg.MaxFetchRPS = int(perProxyRPS)
		cfg.DigestInterval = digestInterval
		p, err := proxy.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := p.Start("127.0.0.1:0"); err != nil {
			return nil, err
		}
		defer p.Close()
		proxies[i] = p
	}
	nodes := make([]string, n)
	byNode := make(map[string]*proxy.Server, n)
	for i, p := range proxies {
		nodes[i] = p.BaseURL()
		byNode[p.BaseURL()] = p
	}
	if n > 1 {
		for i, p := range proxies {
			peers := make([]string, 0, n-1)
			for j, u := range nodes {
				if j != i {
					peers = append(peers, u)
				}
			}
			if err := p.JoinCluster(peers); err != nil {
				return nil, err
			}
		}
	}

	// Each client is pinned to its rendezvous-hash home proxy — the same
	// placement a client-side stub or front balancer would compute — so
	// adding proxies re-shards the population instead of mirroring it.
	total := n * clientsPerProxy
	clientProxy := make([]string, total)
	clientCount := make(map[string]int, n)
	for c := range clientProxy {
		owner := federation.Owner(nodes, fmt.Sprintf("client-%d", c))
		clientProxy[c] = owner
		clientCount[owner]++
	}

	transport := proxy.NewTransport(total)
	httpClient := &http.Client{Timeout: 30 * time.Second, Transport: transport}
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	stats := make([]clientStats, total)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < total; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &stats[c]
			st.sources = make(map[string]int64)
			rng := rand.New(rand.NewPCG(seed, uint64(c)*0x9E3779B9+1))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(docs-1))
			for ctx.Err() == nil {
				st.do(ctx, httpClient, clientProxy[c], originURL, zipf.Uint64())
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	run := &fedRun{
		Proxies:      n,
		ClientsTotal: total,
		Sources:      make(map[string]int64),
		WallSec:      wall.Seconds(),
	}
	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		all = append(all, st.lat...)
		run.Errors += st.errs
		for s, cnt := range st.sources {
			run.Sources[s] += cnt
		}
	}
	run.Requests = int64(len(all)) + run.Errors
	if run.WallSec > 0 {
		run.AggregateRPS = float64(run.Requests) / run.WallSec
	}
	run.LatencyMS = summarize(all)
	run.OriginFetches = o.Fetches()

	completed := run.Requests - run.Errors
	if completed > 0 {
		run.AggregateHitRatio = float64(completed-run.Sources[proxy.SourceOrigin]) / float64(completed)
		run.OriginFetchRate = float64(run.OriginFetches) / float64(completed)
	}

	for _, p := range proxies {
		st := p.Snapshot()
		brief := fedProxyBrief{
			Proxy:            p.BaseURL(),
			Clients:          clientCount[p.BaseURL()],
			Requests:         st.Requests,
			ClusterFetches:   st.ClusterFetches,
			ClusterServes:    st.ClusterServes,
			ClusterServeHits: st.ClusterServeHits,
			LocateConfirms:   st.ClusterLocateConfirms,
			LocateFPs:        st.ClusterLocateFPs,
			DigestsSent:      st.DigestsSent,
			DigestsReceived:  st.DigestsReceived,
		}
		if st.Requests > 0 {
			hits := st.ProxyHits + st.RemoteHits + st.ClusterFetches
			brief.HitRatio = float64(hits) / float64(st.Requests)
			brief.OriginFetchShare = float64(st.OriginFetches) / float64(st.Requests)
		}
		if st.Federation != nil {
			for _, sib := range st.Federation.Siblings {
				if sib.Stale || sib.Breaker == "open" {
					brief.QuarantinedSibs++
				}
			}
		}
		run.CrossProxyFetches += st.ClusterFetches
		run.BloomConfirms += st.ClusterLocateConfirms
		run.BloomFPs += st.ClusterLocateFPs
		run.DigestsSent += st.DigestsSent
		run.DigestsReceived += st.DigestsReceived
		run.PerProxy = append(run.PerProxy, brief)
	}
	sort.Slice(run.PerProxy, func(i, j int) bool { return run.PerProxy[i].Proxy < run.PerProxy[j].Proxy })
	if completed > 0 {
		run.CrossProxyRate = float64(run.CrossProxyFetches) / float64(completed)
	}
	if lookups := run.BloomConfirms + run.BloomFPs; lookups > 0 {
		run.BloomFPRate = float64(run.BloomFPs) / float64(lookups)
	}
	return run, nil
}
