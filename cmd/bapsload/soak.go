// Soak mode (-soak): the scale gate for the lean agent plane. One process
// brings up origin + proxy + an AgentHost fleet of tens of thousands of
// hosted browser agents on loopback, then:
//
//  1. runs two short parity legs at equal client count — standalone
//     per-agent servers vs hosted agents — and gates the hosted aggregate
//     hit ratio within two points of the per-agent-server baseline;
//  2. runs the sustained soak leg: the full fleet under closed-loop load
//     with churn (individual agent kills AND whole-host kills) and optional
//     origin modification churn, sampling RSS / goroutines / RPS / p99
//     every second;
//  3. gates peak RSS per agent against the 50 KiB budget and, with
//     -soakcompare, gates RPS / p99 / RSS-per-agent against a previous
//     soak report (the CI regression gate).
//
// The report (LOAD_*_soak.json) is the scale evidence: live agent count,
// per-second samples across the churning run, and the gate verdicts.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"baps/internal/browser"
	"baps/internal/origin"
	"baps/internal/proxy"
)

// soakOpts carries the -soak flag set.
type soakOpts struct {
	hosts      int
	perHost    int
	parity     int
	workers    int
	docs       int
	zipfS      float64
	docSize    int
	duration   time.Duration
	churn      float64
	modRate    float64
	capacity   int64
	agentCache int64
	seed       uint64
	compare    string
}

// soakSample is one 1 Hz measurement during the soak leg.
type soakSample struct {
	T          float64 `json:"t_sec"`
	RSSBytes   int64   `json:"rss_bytes"`
	Goroutines int     `json:"goroutines"`
	RPS        float64 `json:"rps"`
	P99MS      float64 `json:"p99_ms"`
	Live       int     `json:"live_agents"`
}

// churnReport tallies the soak leg's induced failures.
type churnReport struct {
	TargetFraction float64 `json:"target_fraction"`
	AgentKills     int     `json:"agent_kills"`
	HostKills      int     `json:"host_kills"`
	HostKillAgents int     `json:"host_kill_agents"`
	SpawnErrors    int     `json:"spawn_errors"`
}

// soakLeg is one measured drive: the two parity legs and the soak leg share
// this shape (parity legs omit samples and churn).
type soakLeg struct {
	Mode           string           `json:"mode"` // "standalone" | "hosted"
	Hosts          int              `json:"hosts,omitempty"`
	Agents         int              `json:"agents"`
	WallSec        float64          `json:"wall_sec"`
	Requests       int64            `json:"requests"`
	Errors         int64            `json:"errors"`
	RPS            float64          `json:"rps"`
	LatencyMS      latency          `json:"latency_ms"`
	Sources        map[string]int64 `json:"sources"`
	HitRatio       float64          `json:"hit_ratio"` // non-origin fraction of completed requests
	AgentLocalHits int64            `json:"agent_local_hits"`
	OriginFetches  int64            `json:"origin_fetches"`
	BaseRSSBytes   int64            `json:"base_rss_bytes,omitempty"`
	PeakRSSBytes   int64            `json:"peak_rss_bytes,omitempty"`
	PeakGoroutines int              `json:"peak_goroutines,omitempty"`
	Samples        []soakSample     `json:"samples,omitempty"`
	Churn          *churnReport     `json:"churn,omitempty"`
}

// soakCompare gates this run against a previous report (-soakcompare).
type soakCompare struct {
	Baseline         string  `json:"baseline"`
	RPSRatio         float64 `json:"rps_ratio"`           // this / baseline (≥ soakRPSFloor passes)
	P99Ratio         float64 `json:"p99_ratio"`           // this / baseline (≤ soakP99Ceiling passes)
	RSSPerAgentRatio float64 `json:"rss_per_agent_ratio"` // this / baseline (≤ soakRSSCeiling passes)
	RPSOK            bool    `json:"rps_ok"`
	P99OK            bool    `json:"p99_ok"`
	RSSOK            bool    `json:"rss_ok"`
}

// Regression-gate thresholds for -soakcompare.
const (
	soakRPSFloor    = 0.60
	soakP99Ceiling  = 2.5
	soakRSSCeiling  = 1.4
	soakHitDeltaMin = -0.02 // hosted hit ratio within 2 points of standalone
	rssPerAgentMax  = 50 << 10
)

// soakReport is the JSON written for a -soak run.
type soakReport struct {
	Config struct {
		Hosts      int     `json:"agent_hosts"`
		PerHost    int     `json:"agents_per_host"`
		Agents     int     `json:"agents"`
		Parity     int     `json:"parity_agents"`
		Workers    int     `json:"workers"`
		Docs       int     `json:"docs"`
		Zipf       float64 `json:"zipf"`
		DocSize    int     `json:"doc_size"`
		Duration   string  `json:"duration"`
		Churn      float64 `json:"churn"`
		ModRate    float64 `json:"mod_rate,omitempty"`
		AgentCache int64   `json:"agent_cache_bytes"`
	} `json:"config"`

	Standalone *soakLeg `json:"standalone_parity"`
	Hosted     *soakLeg `json:"hosted_parity"`
	// HitRatioDelta = hosted − standalone at equal client count.
	HitRatioDelta float64 `json:"hit_ratio_delta"`
	HitRatioOK    bool    `json:"hit_ratio_ok"`

	Soak *soakLeg `json:"soak"`
	// RSSPerAgentBytes is peak process RSS over the soak fleet size — the
	// whole-box view the 50 KiB budget is written against. The delta
	// variant subtracts the pre-spawn baseline (origin + proxy + driver),
	// isolating the marginal cost per agent.
	RSSPerAgentBytes      int64 `json:"rss_per_agent_bytes"`
	RSSPerAgentDeltaBytes int64 `json:"rss_per_agent_delta_bytes"`
	RSSPerAgentOK         bool  `json:"rss_per_agent_ok"`

	Compare *soakCompare `json:"compare,omitempty"`
	OK      bool         `json:"ok"`
}

// rssBytes reads the process resident set from /proc/self/statm.
func rssBytes() int64 {
	b, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	f := strings.Fields(string(b))
	if len(f) < 2 {
		return 0
	}
	pages, _ := strconv.ParseInt(f[1], 10, 64)
	return pages * int64(os.Getpagesize())
}

// soakWindow collects completed-request latencies between sampler ticks.
type soakWindow struct {
	mu   sync.Mutex
	lats []time.Duration
}

func (w *soakWindow) add(d time.Duration) {
	w.mu.Lock()
	w.lats = append(w.lats, d)
	w.mu.Unlock()
}

// drain hands the window's contents over and resets it.
func (w *soakWindow) drain() []time.Duration {
	w.mu.Lock()
	out := w.lats
	w.lats = nil
	w.mu.Unlock()
	return out
}

// poolEntry pairs a live agent with its host (nil for standalone legs).
type poolEntry struct {
	a *browser.Agent
	h *browser.AgentHost
}

// agentPool is the churn-mutable set of agents the driver picks from.
type agentPool struct {
	mu      sync.RWMutex
	entries []poolEntry
}

func (p *agentPool) pick(i int) *browser.Agent {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.entries) == 0 {
		return nil
	}
	return p.entries[i%len(p.entries)].a
}

func (p *agentPool) len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.entries)
}

func (p *agentPool) get(i int) poolEntry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.entries[i%len(p.entries)]
}

func (p *agentPool) set(i int, e poolEntry) {
	p.mu.Lock()
	p.entries[i%len(p.entries)] = e
	p.mu.Unlock()
}

// replaceHost swaps every entry belonging to host old for the corresponding
// entry of the replacement fleet (paired by arrival order).
func (p *agentPool) replaceHost(old *browser.AgentHost, repl []poolEntry) []poolEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	var displaced []poolEntry
	j := 0
	for i := range p.entries {
		if p.entries[i].h == old && j < len(repl) {
			displaced = append(displaced, p.entries[i])
			p.entries[i] = repl[j]
			j++
		}
	}
	return displaced
}

// retiredMetrics accumulates the metric sums of churned-out agents so the
// leg totals cover the whole population, not just the survivors.
type retiredMetrics struct {
	mu  sync.Mutex
	sum browser.Metrics
}

func (r *retiredMetrics) add(m browser.Metrics) {
	r.mu.Lock()
	r.sum.Requests += m.Requests
	r.sum.LocalHits += m.LocalHits
	r.mu.Unlock()
}

// soakAgentConfig is the shared agent template for every soak leg.
func soakAgentConfig(proxyURL string, opts soakOpts) browser.Config {
	cfg := browser.DefaultConfig(proxyURL)
	cfg.IndexMode = browser.Batched
	cfg.CacheCapacity = opts.agentCache
	cfg.Timeout = 30 * time.Second
	cfg.Verify = false // isolate transport + index cost, not RSA throughput
	// No heartbeats: the soak proxy runs with the silence sweeper disabled
	// (HeartbeatTimeout 0) and learns churn through failed fetches and
	// register-supersede, so beacons would only burn the one-core budget.
	cfg.HeartbeatInterval = 0
	return cfg
}

// spawnHosted spawns n agents on h with bounded concurrency, returning the
// successfully spawned set.
func spawnHosted(h *browser.AgentHost, n, conc int) ([]*browser.Agent, int) {
	if conc <= 0 {
		conc = 16
	}
	out := make([]*browser.Agent, n)
	var errs atomic.Int64
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			a, err := h.Spawn()
			if err != nil {
				errs.Add(1)
				return
			}
			out[i] = a
		}(i)
	}
	wg.Wait()
	live := out[:0]
	for _, a := range out {
		if a != nil {
			live = append(live, a)
		}
	}
	return live, int(errs.Load())
}

// driveAgents runs the closed-loop worker pool over the pool until ctx ends.
// Latencies land both in the per-worker tallies (final percentiles) and in
// win (per-second sampling), when win is non-nil.
func driveAgents(ctx context.Context, pool *agentPool, workers int, originURL, prefix string, docs, docSize int, zipfS float64, seed uint64, win *soakWindow) ([]clientStats, float64) {
	stats := make([]clientStats, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < workers; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := &stats[c]
			st.sources = make(map[string]int64)
			rng := rand.New(rand.NewPCG(seed, uint64(c)*0x9E3779B9+1))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(docs-1))
			for ctx.Err() == nil {
				ag := pool.pick(rng.IntN(1 << 30))
				if ag == nil {
					return
				}
				docURL := fmt.Sprintf("%s%s/doc/%d?size=%d", originURL, prefix, zipf.Uint64(), docSize)
				t0 := time.Now()
				body, src, err := ag.Get(ctx, docURL)
				if err != nil {
					if ctx.Err() == nil {
						st.errs++
					}
					continue
				}
				d := time.Since(t0)
				st.lat = append(st.lat, d)
				st.bytes += int64(len(body))
				st.sources[string(src)]++
				if win != nil {
					win.add(d)
				}
			}
		}()
	}
	wg.Wait()
	return stats, time.Since(start).Seconds()
}

// legFromStats folds worker tallies + agent metric sums into a soakLeg.
func legFromStats(mode string, hosts, agents int, stats []clientStats, wall float64, sum browser.Metrics, originFetches int64) *soakLeg {
	leg := &soakLeg{Mode: mode, Hosts: hosts, Agents: agents, WallSec: wall, Sources: make(map[string]int64)}
	var all []time.Duration
	for i := range stats {
		st := &stats[i]
		all = append(all, st.lat...)
		leg.Errors += st.errs
		for s, n := range st.sources {
			leg.Sources[s] += n
		}
	}
	leg.Requests = int64(len(all)) + leg.Errors
	if wall > 0 {
		leg.RPS = float64(leg.Requests) / wall
	}
	leg.LatencyMS = summarize(all)
	completed := leg.Requests - leg.Errors
	if completed > 0 {
		leg.HitRatio = 1 - float64(leg.Sources[string(browser.SourceOrigin)])/float64(completed)
	}
	leg.AgentLocalHits = sum.LocalHits
	leg.OriginFetches = originFetches
	return leg
}

// sumAgentMetrics totals the population's per-agent counters.
func sumAgentMetrics(agents []*browser.Agent) browser.Metrics {
	var sum browser.Metrics
	for _, a := range agents {
		m := a.Snapshot()
		sum.Requests += m.Requests
		sum.LocalHits += m.LocalHits
	}
	return sum
}

// runSoak is the -soak entry point.
func runSoak(opts soakOpts) *soakReport {
	// Trade GC slack for footprint: the 50 KiB/agent budget is a resident-
	// memory budget, and the default 100% headroom doubles it for free.
	debug.SetGCPercent(50)

	rep := &soakReport{}
	rep.Config.Hosts = opts.hosts
	rep.Config.PerHost = opts.perHost
	rep.Config.Agents = opts.hosts * opts.perHost
	rep.Config.Parity = opts.parity
	rep.Config.Workers = opts.workers
	rep.Config.Docs = opts.docs
	rep.Config.Zipf = opts.zipfS
	rep.Config.DocSize = opts.docSize
	rep.Config.Duration = opts.duration.String()
	rep.Config.Churn = opts.churn
	rep.Config.ModRate = opts.modRate
	rep.Config.AgentCache = opts.agentCache

	// -- Cluster ----------------------------------------------------------
	o := origin.New(1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("soak: origin listen: %v", err)
	}
	originSrv := &http.Server{Handler: o.Handler()}
	go originSrv.Serve(ln)
	originURL := "http://" + ln.Addr().String()
	defer originSrv.Close()

	pcfg := proxy.DefaultConfig()
	pcfg.KeyBits = 1024 // fleet-scale runs: key strength is not under test
	pcfg.CacheCapacity = opts.capacity
	// No heartbeat sweeper: soak agents do not beat (see soakAgentConfig),
	// and churned agents are retired through breakers and re-registration.
	pcfg.HeartbeatTimeout = 0
	if opts.modRate > 0 {
		pcfg.RevalidateAfter = 5 * time.Second
	}
	p, err := proxy.New(pcfg)
	if err != nil {
		fatalf("soak: proxy: %v", err)
	}
	if err := p.Start("127.0.0.1:0"); err != nil {
		fatalf("soak: proxy start: %v", err)
	}
	defer p.Close()
	proxyURL := p.BaseURL()

	parityDur := opts.duration / 10
	if parityDur < 15*time.Second {
		parityDur = 15 * time.Second
	}
	parityWorkers := opts.workers
	if parityWorkers > opts.parity {
		parityWorkers = opts.parity
	}

	// -- Leg 1: hosted parity ---------------------------------------------
	// Hosted runs FIRST, against a cold proxy cache; the standalone
	// baseline then enjoys whatever cache warmth leg 1 left behind (its own
	// document namespace keeps document state separate, but any shared-
	// plane advantage lands on the baseline side). The ±2-point gate is
	// therefore conservative for the hosted plane.
	{
		h, err := browser.NewHost(browser.HostConfig{Agent: soakAgentConfig(proxyURL, opts)})
		if err != nil {
			fatalf("soak: parity host: %v", err)
		}
		agents, spawnErrs := spawnHosted(h, opts.parity, 16)
		if spawnErrs > 0 || len(agents) == 0 {
			fatalf("soak: parity spawn: %d errors, %d live", spawnErrs, len(agents))
		}
		pool := &agentPool{}
		for _, a := range agents {
			pool.entries = append(pool.entries, poolEntry{a: a, h: h})
		}
		ctx, cancel := context.WithTimeout(context.Background(), parityDur)
		fetches0 := o.Fetches()
		stats, wall := driveAgents(ctx, pool, parityWorkers, originURL, "/hp", opts.docs, opts.docSize, opts.zipfS, opts.seed, nil)
		cancel()
		sum := sumAgentMetrics(agents)
		rep.Hosted = legFromStats("hosted", 1, len(agents), stats, wall, sum, o.Fetches()-fetches0)
		h.Close()
	}

	// -- Leg 2: standalone parity (the per-agent-server baseline) ---------
	{
		var agents []*browser.Agent
		cfg := soakAgentConfig(proxyURL, opts)
		for i := 0; i < opts.parity; i++ {
			a, err := browser.New(cfg)
			if err != nil {
				fatalf("soak: standalone agent %d: %v", i, err)
			}
			agents = append(agents, a)
		}
		pool := &agentPool{}
		for _, a := range agents {
			pool.entries = append(pool.entries, poolEntry{a: a})
		}
		ctx, cancel := context.WithTimeout(context.Background(), parityDur)
		fetches0 := o.Fetches()
		stats, wall := driveAgents(ctx, pool, parityWorkers, originURL, "/sp", opts.docs, opts.docSize, opts.zipfS, opts.seed, nil)
		cancel()
		sum := sumAgentMetrics(agents)
		rep.Standalone = legFromStats("standalone", 0, len(agents), stats, wall, sum, o.Fetches()-fetches0)
		for _, a := range agents {
			a.Close()
		}
	}
	rep.HitRatioDelta = rep.Hosted.HitRatio - rep.Standalone.HitRatio
	rep.HitRatioOK = rep.HitRatioDelta >= soakHitDeltaMin

	// -- Leg 3: the soak fleet --------------------------------------------
	runtime.GC()
	baseRSS := rssBytes()

	// Hold the process to the per-agent budget the gate is written
	// against: the measured pre-spawn base plus ~40 KiB per agent of soft
	// heap limit. Without this, GC slack and lazily-scavenged arenas
	// inflate RSS to whatever the allocation RATE was, not what the fleet
	// actually retains — the limit makes the runtime work inside the
	// budget, and if the fleet genuinely cannot fit, GC pressure shows up
	// as an RPS/p99 collapse the compare gates catch.
	softBudget := baseRSS + int64(opts.hosts*opts.perHost)*(40<<10)
	if min := baseRSS + 64<<20; softBudget < min {
		softBudget = min
	}
	debug.SetMemoryLimit(softBudget)

	hosts := make([]*browser.AgentHost, 0, opts.hosts)
	pool := &agentPool{}
	churn := &churnReport{TargetFraction: opts.churn}
	for i := 0; i < opts.hosts; i++ {
		h, err := browser.NewHost(browser.HostConfig{Agent: soakAgentConfig(proxyURL, opts)})
		if err != nil {
			fatalf("soak: host %d: %v", i, err)
		}
		hosts = append(hosts, h)
		agents, spawnErrs := spawnHosted(h, opts.perHost, 32)
		churn.SpawnErrors += spawnErrs
		for _, a := range agents {
			pool.entries = append(pool.entries, poolEntry{a: a, h: h})
		}
	}
	fleet := pool.len()
	fmt.Fprintf(os.Stderr, "soak: %d live agents across %d hosts (%d spawn errors), base rss %d MiB\n",
		fleet, len(hosts), churn.SpawnErrors, baseRSS>>20)

	retired := &retiredMetrics{}
	win := &soakWindow{}
	ctx, cancel := context.WithTimeout(context.Background(), opts.duration)
	defer cancel()

	// Sampler: 1 Hz RSS / goroutines / windowed RPS + p99.
	var samples []soakSample
	var samplesMu sync.Mutex
	peakRSS, peakGoroutines := baseRSS, 0
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	livePool := func() int {
		n := 0
		for _, h := range hosts {
			n += h.Live()
		}
		return n
	}
	soakStart := time.Now()
	go func() {
		defer samplerWG.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				lats := win.drain()
				s := soakSample{
					T:          time.Since(soakStart).Seconds(),
					RSSBytes:   rssBytes(),
					Goroutines: runtime.NumGoroutine(),
					RPS:        float64(len(lats)),
					Live:       livePool(),
				}
				if len(lats) > 0 {
					sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
					s.P99MS = float64(lats[int(0.99*float64(len(lats)-1))].Microseconds()) / 1e3
				}
				samplesMu.Lock()
				samples = append(samples, s)
				if s.RSSBytes > peakRSS {
					peakRSS = s.RSSBytes
				}
				if s.Goroutines > peakGoroutines {
					peakGoroutines = s.Goroutines
				}
				samplesMu.Unlock()
			}
		}
	}()

	// Modifier: origin churn at -modrate (drives the revalidation →
	// invalidation pipeline against the hosted fleet).
	if opts.modRate > 0 {
		go func() {
			rng := rand.New(rand.NewPCG(opts.seed, 0xC0FFEE))
			zipf := rand.NewZipf(rng, opts.zipfS, 1, uint64(opts.docs-1))
			t := time.NewTicker(time.Duration(float64(time.Second) / opts.modRate))
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					o.Modify(fmt.Sprintf("/soak/doc/%d", zipf.Uint64()))
				}
			}
		}()
	}

	// Churn controller: kill ~churn × fleet agents over the run. Two of the
	// kills are whole hosts (at t/3 and 2t/3) when the budget covers them;
	// the rest are individual agents, killed abruptly and replaced on the
	// SAME host so slot reuse re-advertises the same /a/<slot> URL and the
	// proxy's register-supersede path retires the dead registration.
	var churnWG sync.WaitGroup
	budget := int(opts.churn * float64(fleet))
	hostKills := 0
	if len(hosts) > 1 {
		hostKills = budget / opts.perHost
		if hostKills > 2 {
			hostKills = 2
		}
	}
	individual := budget - hostKills*opts.perHost
	if individual < 0 {
		individual = 0
	}
	if individual > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			rng := rand.New(rand.NewPCG(opts.seed, 0xDEAD))
			t := time.NewTicker(opts.duration / time.Duration(individual+1))
			defer t.Stop()
			for killed := 0; killed < individual; {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					idx := rng.IntN(1 << 30)
					e := pool.get(idx)
					if e.a == nil || e.h == nil {
						continue
					}
					retired.add(e.a.Snapshot())
					e.a.Kill() // abrupt: no unregister, index entries go stale
					killed++
					repl, err := e.h.Spawn() // reuses the freed slot → supersede
					if err != nil {
						samplesMu.Lock()
						churn.SpawnErrors++
						samplesMu.Unlock()
						continue
					}
					pool.set(idx, poolEntry{a: repl, h: e.h})
					samplesMu.Lock()
					churn.AgentKills++
					samplesMu.Unlock()
				}
			}
		}()
	}
	if hostKills > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for k := 1; k <= hostKills; k++ {
				select {
				case <-ctx.Done():
					return
				case <-time.After(opts.duration / time.Duration(hostKills+1)):
				}
				victim := hosts[k-1] // parity host is long gone; these are fleet hosts
				nh, err := browser.NewHost(browser.HostConfig{Agent: soakAgentConfig(proxyURL, opts)})
				if err != nil {
					samplesMu.Lock()
					churn.SpawnErrors++
					samplesMu.Unlock()
					continue
				}
				// Replacement fleet first, then the swap, then the kill: the
				// driver never sees a window with the population missing.
				agents, spawnErrs := spawnHosted(nh, opts.perHost, 32)
				repl := make([]poolEntry, 0, len(agents))
				for _, a := range agents {
					repl = append(repl, poolEntry{a: a, h: nh})
				}
				displaced := pool.replaceHost(victim, repl)
				for _, e := range displaced {
					retired.add(e.a.Snapshot())
				}
				victim.Kill()
				hosts[k-1] = nh
				samplesMu.Lock()
				churn.HostKills++
				churn.HostKillAgents += len(displaced)
				churn.SpawnErrors += spawnErrs
				samplesMu.Unlock()
			}
		}()
	}

	fetches0 := o.Fetches()
	stats, wall := driveAgents(ctx, pool, opts.workers, originURL, "/soak", opts.docs, opts.docSize, opts.zipfS, opts.seed+7, win)
	cancel()
	churnWG.Wait()
	samplerWG.Wait()

	var liveAgents []*browser.Agent
	for _, h := range hosts {
		liveAgents = append(liveAgents, h.Agents()...)
	}
	sum := sumAgentMetrics(liveAgents)
	retired.mu.Lock()
	sum.Requests += retired.sum.Requests
	sum.LocalHits += retired.sum.LocalHits
	retired.mu.Unlock()

	leg := legFromStats("hosted", len(hosts), fleet, stats, wall, sum, o.Fetches()-fetches0)
	leg.AgentLocalHits = sum.LocalHits
	leg.BaseRSSBytes = baseRSS
	leg.PeakRSSBytes = peakRSS
	leg.PeakGoroutines = peakGoroutines
	leg.Samples = samples
	leg.Churn = churn
	rep.Soak = leg

	if fleet > 0 {
		rep.RSSPerAgentBytes = peakRSS / int64(fleet)
		rep.RSSPerAgentDeltaBytes = (peakRSS - baseRSS) / int64(fleet)
	}
	// The 50 KiB budget is a whole-box number: at real fleet scale
	// (>= 10k agents) the fixed cost of origin + proxy + driver amortizes
	// into it, so peak RSS over fleet size is the honest gate. Scaled-down
	// smokes gate the marginal (post-spawn) cost per agent instead —
	// dividing a ~75 MiB fixed base by a few thousand agents would measure
	// the harness, not the agents.
	if fleet >= 10000 {
		rep.RSSPerAgentOK = rep.RSSPerAgentBytes <= rssPerAgentMax
	} else {
		rep.RSSPerAgentOK = rep.RSSPerAgentDeltaBytes <= rssPerAgentMax
	}

	// Teardown without ceremony: the report is computed; 50k graceful
	// unregisters would only stretch CI.
	for _, h := range hosts {
		h.Kill()
	}

	rep.OK = rep.HitRatioOK && rep.RSSPerAgentOK
	if opts.compare != "" {
		cmp, err := compareSoak(opts.compare, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "soak: compare: %v\n", err)
			rep.OK = false
		} else {
			rep.Compare = cmp
			rep.OK = rep.OK && cmp.RPSOK && cmp.P99OK && cmp.RSSOK
		}
	}
	return rep
}

// compareSoak gates this run's soak leg against a previous report.
func compareSoak(path string, cur *soakReport) (*soakCompare, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base soakReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if base.Soak == nil || base.Soak.RPS <= 0 || base.Soak.LatencyMS.P99 <= 0 || base.RSSPerAgentBytes <= 0 {
		return nil, fmt.Errorf("%s: no usable soak leg", path)
	}
	c := &soakCompare{Baseline: path}
	c.RPSRatio = cur.Soak.RPS / base.Soak.RPS
	c.P99Ratio = cur.Soak.LatencyMS.P99 / base.Soak.LatencyMS.P99
	c.RSSPerAgentRatio = float64(cur.RSSPerAgentBytes) / float64(base.RSSPerAgentBytes)
	c.RPSOK = c.RPSRatio >= soakRPSFloor
	c.P99OK = c.P99Ratio <= soakP99Ceiling
	c.RSSOK = c.RSSPerAgentRatio <= soakRSSCeiling
	return c, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bapsload: "+format+"\n", args...)
	os.Exit(1)
}
