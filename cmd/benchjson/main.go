// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so benchmark baselines can be
// checked in (BENCH_<date>.json) and diffed across PRs.
//
// Each benchmark line is parsed into its metrics (ns/op, B/op, allocs/op and
// any b.ReportMetric extras) and the raw line is preserved verbatim, so the
// original benchstat-compatible text can be reconstructed with
//
//	jq -r '.benchmarks[].runs[].raw' BENCH_2026-01-02.json | benchstat /dev/stdin
//
// Usage:
//
//	go test -bench=. -benchmem -count=5 ./... | go run ./cmd/benchjson > BENCH_$(date +%F).json
//
// With -compare OLD.json, instead of emitting JSON it prints a per-benchmark
// geomean comparison (old/new ratio for ns/op and allocs/op) of stdin against
// the recorded baseline and exits non-zero if parsing fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Run is one benchmark execution line.
type Run struct {
	Iters   int                `json:"iters"`
	Metrics map[string]float64 `json:"metrics"`
	Raw     string             `json:"raw"`
}

// Benchmark groups the -count runs of one benchmark in one package.
type Benchmark struct {
	Name string `json:"name"`
	Pkg  string `json:"pkg,omitempty"`
	Runs []Run  `json:"runs"`
}

// File is the checked-in baseline document.
type File struct {
	Date       string       `json:"date"`
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []*Benchmark `json:"benchmarks"`
}

func parse(r *bufio.Scanner) (*File, error) {
	f := &File{Date: time.Now().Format("2006-01-02")}
	byKey := map[string]*Benchmark{}
	pkg := ""
	for r.Scan() {
		line := strings.TrimRight(r.Text(), "\r\n")
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.Goos = strings.TrimSpace(line[len("goos:"):])
		case strings.HasPrefix(line, "goarch:"):
			f.Goarch = strings.TrimSpace(line[len("goarch:"):])
		case strings.HasPrefix(line, "cpu:"):
			f.CPU = strings.TrimSpace(line[len("cpu:"):])
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(line[len("pkg:"):])
		case len(fields) >= 4 && strings.HasPrefix(fields[0], "Benchmark"):
			iters, err := strconv.Atoi(fields[1])
			if err != nil {
				continue
			}
			run := Run{Iters: iters, Metrics: map[string]float64{}, Raw: line}
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				run.Metrics[fields[i+1]] = v
			}
			key := pkg + " " + fields[0]
			b := byKey[key]
			if b == nil {
				b = &Benchmark{Name: fields[0], Pkg: pkg}
				byKey[key] = b
				f.Benchmarks = append(f.Benchmarks, b)
			}
			b.Runs = append(b.Runs, run)
		}
	}
	return f, r.Err()
}

// geomean of metric m across runs; ok is false when no run carries it.
func geomean(b *Benchmark, m string) (float64, bool) {
	sum, n := 0.0, 0
	for _, r := range b.Runs {
		if v, have := r.Metrics[m]; have && v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return math.Exp(sum / float64(n)), true
}

// zeroSafe treats an all-zero metric (e.g. 0 allocs/op) as present.
func zeroSafe(b *Benchmark, m string) (float64, bool) {
	if v, ok := geomean(b, m); ok {
		return v, true
	}
	for _, r := range b.Runs {
		if _, have := r.Metrics[m]; have {
			return 0, true
		}
	}
	return 0, false
}

// loadFile reads a checked-in BENCH_*.json document.
func loadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// compare prints the per-benchmark comparison table and returns each
// benchmark's old/new ns/op geomean ratio keyed by bare benchmark name
// (>1 means the new side is faster).
func compare(oldPath string, cur *File) (map[string]float64, error) {
	old, err := loadFile(oldPath)
	if err != nil {
		return nil, err
	}
	ratios := map[string]float64{}
	oldBy := map[string]*Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Pkg+" "+b.Name] = b
	}
	keys := make([]string, 0, len(cur.Benchmarks))
	curBy := map[string]*Benchmark{}
	for _, b := range cur.Benchmarks {
		k := b.Pkg + " " + b.Name
		curBy[k] = b
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("%-60s %14s %14s\n", "benchmark (old "+old.Date+" -> new "+cur.Date+")", "ns/op ratio", "allocs ratio")
	for _, k := range keys {
		ob, nb := oldBy[k], curBy[k]
		if ob == nil {
			fmt.Printf("%-60s %14s %14s\n", nb.Name, "new", "new")
			continue
		}
		line := fmt.Sprintf("%-60s", nb.Pkg+"."+strings.TrimPrefix(nb.Name, "Benchmark"))
		if ov, ook := geomean(ob, "ns/op"); ook {
			if nv, nok := geomean(nb, "ns/op"); nok && nv > 0 {
				line += fmt.Sprintf(" %13.2fx", ov/nv)
				ratios[nb.Name] = ov / nv
			}
		}
		if ov, ook := zeroSafe(ob, "allocs/op"); ook {
			nv, nok := zeroSafe(nb, "allocs/op")
			switch {
			case nok && nv > 0:
				line += fmt.Sprintf(" %13.2fx", ov/nv)
			case nok:
				line += fmt.Sprintf(" %10.0f->0", ov)
			}
		}
		fmt.Println(line)
	}
	return ratios, nil
}

// checkMinGains enforces a "-mingain Name=ratio[,Name=ratio...]" spec
// against the measured old/new ns/op ratios, returning an error naming the
// first benchmark that missed its floor (or was absent from the comparison).
func checkMinGains(spec string, ratios map[string]float64) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, want, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("-mingain: bad entry %q (want Name=ratio)", entry)
		}
		floor, err := strconv.ParseFloat(want, 64)
		if err != nil {
			return fmt.Errorf("-mingain: bad ratio in %q: %v", entry, err)
		}
		got, have := ratios[name]
		if !have {
			return fmt.Errorf("-mingain: benchmark %s missing from comparison", name)
		}
		if got < floor {
			return fmt.Errorf("-mingain: %s speedup %.2fx below required %.2fx", name, got, floor)
		}
		fmt.Printf("gate ok: %s %.2fx >= %.2fx\n", name, got, floor)
	}
	return nil
}

func main() {
	comparePath := flag.String("compare", "", "baseline BENCH_*.json to compare stdin against instead of emitting JSON")
	inputPath := flag.String("input", "", "read the current side from this BENCH_*.json record instead of parsing bench text on stdin")
	minGain := flag.String("mingain", "", "with -compare: fail unless each Name=ratio entry's old/new ns/op speedup holds (comma-separated)")
	flag.Parse()
	var f *File
	var err error
	if *inputPath != "" {
		f, err = loadFile(*inputPath)
	} else {
		sc := bufio.NewScanner(os.Stdin)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		f, err = parse(sc)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *comparePath != "" {
		ratios, err := compare(*comparePath, f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if *minGain != "" {
			if err := checkMinGains(*minGain, ratios); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
