// Command bapsorigin runs the synthetic origin web server used by the live
// browsers-aware proxy system.
//
// Usage:
//
//	bapsorigin [-addr 127.0.0.1:8080] [-seed N] [-logjson]
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"baps/internal/origin"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 1, "content seed")
	logjson := flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	var logger *slog.Logger
	if *logjson {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := origin.New(*seed)
	srv.SetLogger(logger)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// Serve until SIGINT/SIGTERM, then drain in-flight responses.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("bapsorigin serving", "addr", *addr, "seed", *seed)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("listen failed", "addr", *addr, "err", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		logger.Info("shutting down", "signal", sig.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			logger.Error("shutdown incomplete", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("bapsorigin stopped")
}
