// Command bapsorigin runs the synthetic origin web server used by the live
// browsers-aware proxy system.
//
// Usage:
//
//	bapsorigin [-addr 127.0.0.1:8080] [-seed N] [-logjson]
package main

import (
	"flag"
	"log/slog"
	"net/http"
	"os"

	"baps/internal/origin"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 1, "content seed")
	logjson := flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	var logger *slog.Logger
	if *logjson {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := origin.New(*seed)
	srv.SetLogger(logger)
	logger.Info("bapsorigin serving", "addr", *addr, "seed", *seed)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
}
