// Command bapsorigin runs the synthetic origin web server used by the live
// browsers-aware proxy system.
//
// Usage:
//
//	bapsorigin [-addr 127.0.0.1:8080] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"baps/internal/origin"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	seed := flag.Int64("seed", 1, "content seed")
	flag.Parse()

	srv := origin.New(*seed)
	fmt.Printf("bapsorigin: serving deterministic documents on http://%s (seed %d)\n", *addr, *seed)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
