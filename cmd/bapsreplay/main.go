// Command bapsreplay replays a web trace file through the trace-driven
// simulator under any of the five caching organizations, printing the
// paper's metrics. It accepts the repository's native trace format, Squid
// access logs, and NCSA Common Log Format — so real logs can be analyzed
// when available.
//
// Usage:
//
//	bapsreplay -trace access.log -format squid -org browsers-aware-proxy-server
//	bapsreplay -trace t.txt [-format native] [-size 0.10] [-sizing average]
//	           [-org all] [-warmup 0.0] [-parent 0] [-ttl 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"baps"
	"baps/internal/core"
	"baps/internal/sim"
	"baps/internal/stats"
	"baps/internal/trace"
)

func main() {
	path := flag.String("trace", "", "trace file path (required)")
	format := flag.String("format", "native", "trace format: native, squid, clf")
	orgName := flag.String("org", "all", "organization name, or 'all'")
	size := flag.Float64("size", 0.10, "relative proxy cache size (fraction of infinite)")
	sizing := flag.String("sizing", "average", "browser sizing: minimum, average, per-client")
	warmup := flag.Float64("warmup", 0, "fraction of requests excluded as warm-up")
	parent := flag.Float64("parent", 0, "upper-level proxy relative size (0 = none)")
	ttl := flag.Float64("ttl", 0, "index entry TTL in seconds (0 = none)")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "bapsreplay: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var tr *trace.Trace
	switch *format {
	case "native":
		tr, err = trace.Read(f, *path)
	case "squid":
		tr, err = trace.ParseSquid(f, *path)
	case "clf":
		tr, err = trace.ParseCLF(f, *path)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	st := trace.Compute(tr)
	fmt.Printf("trace %s: %d requests, %d clients, %s total, infinite cache %s, ceiling %s / %s bytes\n\n",
		tr.Name, st.NumRequests, st.NumClients, stats.Bytes(st.TotalBytes),
		stats.Bytes(st.InfiniteCacheBytes), stats.Pct(st.MaxHitRatio), stats.Pct(st.MaxByteHitRatio))

	var orgs []core.Organization
	if *orgName == "all" {
		orgs = core.Organizations()
	} else {
		org, err := core.ParseOrganization(*orgName)
		if err != nil {
			fatal(err)
		}
		orgs = []core.Organization{org}
	}
	table := stats.NewTable(fmt.Sprintf("Replay @ %.1f%% relative size (%s sizing, warmup %.0f%%)",
		*size*100, *sizing, *warmup*100),
		"Organization", "Hit ratio", "Byte hit ratio", "Local", "Proxy", "Remote", "Parent", "p95 latency")
	for _, org := range orgs {
		cfg := baps.DefaultSimConfig(org)
		cfg.RelativeSize = *size
		cfg.WarmupFraction = *warmup
		cfg.ParentRelativeSize = *parent
		cfg.DocTTLSec = *ttl
		switch *sizing {
		case "minimum":
			cfg.Sizing = sim.SizingMinimum
		case "average":
			cfg.Sizing = sim.SizingAverage
		case "per-client":
			cfg.Sizing = sim.SizingPerClient
		default:
			fatal(fmt.Errorf("unknown sizing %q", *sizing))
		}
		res, err := sim.Run(tr, &st, cfg)
		if err != nil {
			fatal(err)
		}
		if err := res.Check(); err != nil {
			fatal(err)
		}
		table.AddRow(org.String(),
			stats.Pct(res.HitRatio()),
			stats.Pct(res.ByteHitRatio()),
			stats.Pct(res.LocalHitRatio()),
			stats.Pct(res.ProxyHitRatio()),
			stats.Pct(res.RemoteHitRatio()),
			fmt.Sprintf("%d", res.ParentHits),
			fmt.Sprintf("%.3fs", res.ServiceP95))
	}
	fmt.Println(table.String())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bapsreplay: %v\n", err)
	os.Exit(1)
}
