package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"baps/internal/core"
	"baps/internal/sim"
	"baps/internal/trace"
)

// replayOpts carries the replay-experiment flags.
type replayOpts struct {
	path     string        // -stream: trace file (.btr or text)
	parallel int           // -parallel: shard workers (0 = GOMAXPROCS)
	maxRSS   int64         // -maxrss: peak-RSS budget in bytes (0 = unlimited)
	progress time.Duration // -progress: progress-report interval (0 = off)
}

// runReplay is the out-of-core replay experiment (DESIGN.md §16): two
// sequential passes over a trace file — a streaming stats pass that sizes
// the caches, then a (possibly sharded) streaming replay — with the trace
// never resident. Between the passes the allocator returns the stats pass's
// transient state to the OS so the process peak RSS is the larger pass, not
// the sum. Reports per-pass wall clock and throughput, the replay result,
// and the process peak RSS; a -maxrss budget turns the report into a gate.
func runReplay(o replayOpts) error {
	if o.path == "" {
		return fmt.Errorf("replay needs -stream FILE (generate one with tracegen -stream -btr)")
	}
	if o.maxRSS > 0 {
		// An RSS budget implies a heap ceiling: under the default GOGC the
		// heap grows to 2x its live size between collections, so a replay
		// whose live state is just over half the budget still blows it.
		// Cap the runtime's memory at 7/8 of the budget — the remainder
		// covers stacks, the .btr read buffers, and GC pacing overshoot.
		debug.SetMemoryLimit(o.maxRSS - o.maxRSS/8)
	}

	statsStart := time.Now()
	s, closeStream, err := openTraceStream(o.path)
	if err != nil {
		return err
	}
	st, err := trace.StreamStats(s)
	closeStream()
	if err != nil {
		return err
	}
	statsDur := time.Since(statsStart)
	fmt.Printf("replay %s: %d requests, %d clients, %d docs, %.2f GB\n",
		st.Name, st.NumRequests, st.NumClients, st.UniqueDocs, float64(st.TotalBytes)/1e9)
	fmt.Printf("  stats pass   %8.2fs  %6.2fM req/s  (streaming, %s)\n",
		statsDur.Seconds(), reqRate(st.NumRequests, statsDur), rssString(readProcStatusKB("VmRSS")))

	// Return the stats pass's transient pages before the replay allocates
	// its own peak, so VmHWM reflects max(passes), not their sum.
	debug.FreeOSMemory()

	cfg := sim.DefaultConfig(core.BrowsersAware)
	shards := sim.ShardCount(o.parallel, st.NumClients)
	prog := sim.NewShardProgress(shards)

	s, closeStream, err = openTraceStream(o.path)
	if err != nil {
		return err
	}
	defer closeStream()

	done := make(chan struct{})
	if o.progress > 0 {
		go reportProgress(prog, int64(st.NumRequests), o.progress, done)
	}
	replayStart := time.Now()
	res, err := sim.RunShardedOpts(s, &st, cfg, sim.ShardedOptions{Shards: shards, Progress: prog})
	replayDur := time.Since(replayStart)
	close(done)
	if err != nil {
		return err
	}
	if err := res.Check(); err != nil {
		return err
	}

	fmt.Printf("  replay pass  %8.2fs  %6.2fM req/s  (shards=%d)\n",
		replayDur.Seconds(), reqRate(st.NumRequests, replayDur), shards)
	fmt.Printf("  HR %.4f  BHR %.4f  (local %.4f, proxy %.4f, remote %.4f)\n",
		res.HitRatio(), res.ByteHitRatio(),
		res.LocalHitRatio(), res.ProxyHitRatio(), res.RemoteHitRatio())

	peakKB := readProcStatusKB("VmHWM")
	if o.maxRSS > 0 {
		fmt.Printf("  peak RSS     %s (budget %s)\n", rssString(peakKB), rssString(o.maxRSS/1024))
		if peakKB > 0 && peakKB*1024 > o.maxRSS {
			return fmt.Errorf("peak RSS %s exceeds budget %s", rssString(peakKB), rssString(o.maxRSS/1024))
		}
	} else {
		fmt.Printf("  peak RSS     %s\n", rssString(peakKB))
	}
	return nil
}

// reportProgress prints replay progress at each tick: requests done, current
// throughput, resident set, and shard balance (min/max shard progress).
func reportProgress(p *sim.ShardProgress, total int64, every time.Duration, done chan struct{}) {
	t := time.NewTicker(every)
	defer t.Stop()
	start := time.Now()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			n := p.Total()
			minP, maxP := int64(-1), int64(0)
			for i := 0; i < p.Shards(); i++ {
				c := p.Shard(i)
				if minP < 0 || c < minP {
					minP = c
				}
				if c > maxP {
					maxP = c
				}
			}
			balance := 1.0
			if maxP > 0 {
				balance = float64(minP) / float64(maxP)
			}
			fmt.Fprintf(os.Stderr, "bapsim: replay %5.1f%%  %d/%d req  %6.2fM req/s  rss %s  shard balance %.2f\n",
				100*float64(n)/float64(total), n, total,
				float64(n)/1e6/time.Since(start).Seconds(),
				rssString(readProcStatusKB("VmRSS")), balance)
		}
	}
}

// openTraceStream opens a trace file as a stream, sniffing the binary magic
// and falling back to the text decoder.
func openTraceStream(path string) (trace.Stream, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	closeF := func() { f.Close() }
	br, err := trace.OpenBTR(bufio.NewReaderSize(f, 1<<20))
	if err == nil {
		return br, closeF, nil
	}
	if !errors.Is(err, trace.ErrBadMagic) {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	name := strings.TrimSuffix(baseName(path), ".txt")
	return trace.NewTextStream(bufio.NewReaderSize(f, 1<<20), name), closeF, nil
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func reqRate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / 1e6 / d.Seconds()
}

// readProcStatusKB reads a VmHWM/VmRSS-style field from /proc/self/status in
// kB; 0 when unavailable (non-Linux).
func readProcStatusKB(field string) int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, field+":") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

func rssString(kb int64) string {
	switch {
	case kb <= 0:
		return "n/a"
	case kb >= 1<<20:
		return fmt.Sprintf("%.2f GiB", float64(kb)/(1<<20))
	default:
		return fmt.Sprintf("%.1f MiB", float64(kb)/(1<<10))
	}
}
