// Command bapsim regenerates every table and figure of "On Reliable and
// Scalable Peer-to-Peer Web Document Sharing" (IPDPS 2002) from the
// synthetic stand-in traces, plus the repository's ablation studies.
//
// Usage:
//
//	bapsim [flags] <experiment> [experiment...]
//
// Experiments:
//
//	table1      Table 1: selected web traces
//	fig2        Figure 2: five organizations, NLANR-uc, minimum browser caches
//	fig3        Figure 3: browsers-aware hit breakdowns, NLANR-uc
//	fig4        Figure 4: BAPS vs P+LB, NLANR-bo1
//	fig5        Figure 5: BAPS vs P+LB, BU-95
//	fig6        Figure 6: BAPS vs P+LB, BU-98
//	fig7        Figure 7: BAPS vs P+LB, CA*netII (3 clients)
//	fig8        Figure 8: hit/byte-hit increments vs client population
//	memory      §4.2 memory byte hit ratio study
//	overhead    §5 overhead estimation
//	compression §5 index compression trade-off (exact vs counting Bloom)
//	security    §6 integrity + anonymity overheads
//	ablation    design-choice ablations
//	metrics     per-policy observability dumps (see -metricsout)
//	replay      out-of-core streaming replay of a trace file (-stream, §16)
//	all         everything above except replay (which needs -stream)
//
// Flags:
//
//	-scale f        scale every workload by f (default 1; benchmarks use ~0.1)
//	-seed n         override the calibrated profile seeds
//	-profile p      profile for compression/ablation/metrics (default nlanr-bo1)
//	-chart          also print ASCII charts for figures
//	-metricsout f   write per-policy Prometheus expositions to f (metrics experiment)
//	-stream f       trace file for the replay experiment (.btr or text)
//	-parallel n     replay shard workers (0 = GOMAXPROCS)
//	-maxrss n       replay peak-RSS budget in bytes (exceeding it fails the run)
//	-progress d     replay progress-report interval (e.g. 2s; 0 = off)
//	-cpuprofile f   write a CPU profile of the run to f (go tool pprof)
//	-memprofile f   write a heap profile on exit to f
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"baps"
)

// runLiveCheck replays a small workload through the live HTTP system and
// the simulator, printing both hit ratios and the residual — the
// cross-validation of the repository's two halves.
func runLiveCheck() error {
	tr, err := baps.Generate(baps.Profile{
		Name: "livecheck", Clients: 8, Requests: 1_500, DurationSec: 600,
		SharedDocs: 300, PrivateDocs: 30,
		SharedFraction: 0.75, ZipfAlpha: 0.8, PrivateZipfAlpha: 0.8,
		RecencyFraction: 0.2, RecencyWindow: 32, RecencyGeomP: 0.3,
		MeanDocKB: 6, SizeSigma: 1.0, MinDocBytes: 256, MaxDocBytes: 1 << 18,
		ModifyRate: 0.01, ClientZipfAlpha: 0.4, Seed: 4242,
	})
	if err != nil {
		return err
	}
	res, err := baps.LiveReplay(tr, baps.LiveReplayConfig{RelativeSize: 0.10, Verify: true})
	if err != nil {
		return err
	}
	fmt.Printf("live replay over %d real HTTP requests (8 agents):\n", res.Requests)
	fmt.Printf("  live:      HR %.4f (local %d, proxy %d, remote %d, origin %d)\n",
		res.LiveHitRatio(), res.LiveLocalHits, res.LiveProxyHits, res.LiveRemoteHits, res.LiveMisses)
	fmt.Printf("  simulator: HR %.4f\n", res.Sim.HitRatio())
	fmt.Printf("  residual:  %+.4f\n", res.HitRatioGap())
	return nil
}

func main() {
	scale := flag.Float64("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 0, "seed override (0 = calibrated)")
	profile := flag.String("profile", "nlanr-bo1", "profile for compression/ablation")
	chart := flag.Bool("chart", false, "print ASCII charts for figures")
	metricsout := flag.String("metricsout", "", "write per-policy Prometheus expositions to this file (metrics experiment)")
	streamFile := flag.String("stream", "", "trace file for the replay experiment (.btr or text; see tracegen -stream)")
	parallel := flag.Int("parallel", 0, "replay shard workers (0 = GOMAXPROCS)")
	maxRSS := flag.Int64("maxrss", 0, "replay peak-RSS budget in bytes (0 = report only)")
	progressEvery := flag.Duration("progress", 0, "replay progress-report interval (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bapsim [flags] <experiment>...\nexperiments: table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 memory overhead compression security ablation cooperative metrics all\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bapsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bapsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bapsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bapsim: -memprofile: %v\n", err)
			}
		}()
	}
	opts := baps.Options{Scale: *scale, Seed: *seed}

	printSeries := func(ss ...*baps.Series) {
		for _, s := range ss {
			fmt.Println(s.Table().String())
			if *chart {
				fmt.Println(s.Chart(48))
			}
		}
	}
	printTable := func(t *baps.Table) { fmt.Println(t.String()) }

	runOne := func(name string) error {
		switch name {
		case "table1":
			t, err := baps.Table1(opts)
			if err != nil {
				return err
			}
			printTable(t)
		case "fig2":
			h, b, err := baps.Figure2(opts)
			if err != nil {
				return err
			}
			printSeries(h, b)
		case "fig3":
			h, b, err := baps.Figure3(opts)
			if err != nil {
				return err
			}
			printSeries(h, b)
		case "fig4", "fig5", "fig6", "fig7":
			f := map[string]func(baps.Options) (*baps.Series, *baps.Series, error){
				"fig4": baps.Figure4, "fig5": baps.Figure5, "fig6": baps.Figure6, "fig7": baps.Figure7,
			}[name]
			h, b, err := f(opts)
			if err != nil {
				return err
			}
			printSeries(h, b)
		case "fig8":
			h, b, err := baps.Figure8(opts)
			if err != nil {
				return err
			}
			printSeries(h, b)
		case "memory":
			t, err := baps.MemoryStudyReport(opts)
			if err != nil {
				return err
			}
			printTable(t)
		case "overhead":
			t, err := baps.OverheadReport(opts)
			if err != nil {
				return err
			}
			printTable(t)
		case "compression":
			t, err := baps.IndexCompressionReport(opts, *profile, 0 /* auto-size */)
			if err != nil {
				return err
			}
			printTable(t)
		case "security":
			t, err := baps.SecurityReport(2048, 8<<10)
			if err != nil {
				return err
			}
			printTable(t)
		case "ablation":
			t, err := baps.AblationReport(opts, *profile)
			if err != nil {
				return err
			}
			printTable(t)
		case "cooperative":
			t, err := baps.CooperativeReport(opts, *profile, []int{2, 4, 8})
			if err != nil {
				return err
			}
			printTable(t)
		case "hierarchy":
			t, err := baps.HierarchyReport(opts, *profile)
			if err != nil {
				return err
			}
			printTable(t)
		case "latency":
			t, err := baps.LatencyReport(opts, *profile)
			if err != nil {
				return err
			}
			printTable(t)
		case "metrics":
			var dump io.Writer
			if *metricsout != "" {
				f, err := os.Create(*metricsout)
				if err != nil {
					return err
				}
				defer f.Close()
				dump = f
			}
			t, err := baps.MetricsReport(opts, *profile, dump)
			if err != nil {
				return err
			}
			printTable(t)
			if *metricsout != "" {
				fmt.Printf("wrote per-policy expositions to %s\n", *metricsout)
			}
		case "livecheck":
			if err := runLiveCheck(); err != nil {
				return err
			}
		case "replay":
			if err := runReplay(replayOpts{
				path:     *streamFile,
				parallel: *parallel,
				maxRSS:   *maxRSS,
				progress: *progressEvery,
			}); err != nil {
				return err
			}
		case "replicate":
			t, err := baps.ReplicationReport(opts, 5)
			if err != nil {
				return err
			}
			printTable(t)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = strings.Fields("table1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 memory overhead compression security ablation cooperative hierarchy latency metrics livecheck replicate")
	}
	for _, name := range names {
		if err := runOne(name); err != nil {
			fmt.Fprintf(os.Stderr, "bapsim: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
