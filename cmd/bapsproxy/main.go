// Command bapsproxy runs the live browsers-aware proxy server.
//
// Usage:
//
//	bapsproxy [-addr 127.0.0.1:8081] [-capacity 268435456] [-policy LRU]
//	          [-forward fetch|direct] [-no-peer] [-keybits 2048]
//	          [-breaker-threshold 3] [-breaker-cooldown 10s]
//	          [-heartbeat-timeout 30s] [-peer-soft-deadline 2.5s]
//	          [-origin-retries 2] [-logjson]
//	          [-datadir DIR] [-fsync interval|always|never]
//	          [-disk-max-bytes N] [-disk-retention D]
//
// Browser agents (cmd/bapsbrowser or internal/browser) register at
// POST /register and then resolve documents through GET /fetch.
//
// With -datadir the proxy cache is crash-safe: demoted documents spill to a
// journaled disk store under DIR and a restart replays it, warm-starting the
// cache, the /stats counters, and the client/generation tables. SIGINT and
// SIGTERM shut down gracefully (in-flight requests drain, the journal
// flushes); SIGKILL loses at most the last fsync interval.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"baps/internal/cache"
	"baps/internal/diskstore"
	"baps/internal/proxy"
)

// newLogger builds the process logger: text to stderr by default, JSON when
// the operator asks for machine-readable logs.
func newLogger(json bool) *slog.Logger {
	if json {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "listen address")
	capacity := flag.Int64("capacity", 256<<20, "proxy cache capacity in bytes")
	policyName := flag.String("policy", "LRU", "replacement policy (LRU, FIFO, LFU, SIZE, GDSF)")
	forward := flag.String("forward", "fetch", "remote-hit delivery: fetch (proxy relays) or direct (anonymous drop)")
	noPeer := flag.Bool("no-peer", false, "disable the browsers-aware layer (plain proxy baseline)")
	keyBits := flag.Int("keybits", 2048, "watermark RSA key size")
	peerTimeout := flag.Duration("peer-timeout", 5*time.Second, "holder contact / relay wait bound")
	softDeadline := flag.Duration("peer-soft-deadline", 2500*time.Millisecond, "hedge the origin when the peer path exceeds this (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that trip a peer's circuit breaker (0 disables)")
	breakerCooldown := flag.Duration("breaker-cooldown", 10*time.Second, "open-breaker cooldown before a half-open probe")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", 30*time.Second, "quarantine peers silent this long (0 disables the sweep)")
	originRetries := flag.Int("origin-retries", 2, "retries for transient origin failures (backoff + jitter)")
	logjson := flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
	dataDir := flag.String("datadir", "", "crash-safe disk tier directory (empty: memory only)")
	fsync := flag.String("fsync", "interval", "disk durability: interval, always, or never")
	diskMaxBytes := flag.Int64("disk-max-bytes", 0, "disk tier live-byte bound (0: same as -capacity)")
	diskRetention := flag.Duration("disk-retention", 0, "evict disk documents untouched this long (0 disables)")
	peers := flag.String("peers", "", "comma-separated sibling proxy base URLs to federate with (empty: standalone)")
	digestInterval := flag.Duration("digest-interval", time.Second, "sibling Bloom-digest push period (federated runs)")
	maxRPS := flag.Int("max-rps", 0, "fetch admission cap in requests/sec (0: unlimited)")
	revalidateAfter := flag.Duration("revalidate-after", 0, "background-revalidate cached documents older than this (0 disables)")
	revalidateEvery := flag.Duration("revalidate-every", 0, "revalidation scan period (0: revalidate-after/4)")
	prefetchInterval := flag.Duration("prefetch-interval", 0, "popularity-scan period for pushing hot docs into browser caches (0 disables)")
	prefetchMinHits := flag.Int("prefetch-min-hits", 0, "access count that makes a document a prefetch candidate (0: default 3)")
	flag.Parse()

	logger := newLogger(*logjson)
	policy, err := cache.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bapsproxy: %v\n", err)
		os.Exit(2)
	}
	fsyncPolicy, err := diskstore.ParseFsyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bapsproxy: %v\n", err)
		os.Exit(2)
	}
	cfg := proxy.DefaultConfig()
	cfg.Logger = logger
	cfg.CacheCapacity = *capacity
	cfg.Policy = policy
	cfg.KeyBits = *keyBits
	cfg.PeerTimeout = *peerTimeout
	cfg.PeerSoftDeadline = *softDeadline
	cfg.BreakerThreshold = *breakerThreshold
	cfg.BreakerCooldown = *breakerCooldown
	cfg.HeartbeatTimeout = *heartbeatTimeout
	cfg.OriginRetries = *originRetries
	cfg.DisablePeer = *noPeer
	cfg.DataDir = *dataDir
	cfg.DiskFsync = fsyncPolicy
	cfg.DiskMaxBytes = *diskMaxBytes
	cfg.DiskRetention = *diskRetention
	cfg.DigestInterval = *digestInterval
	cfg.MaxFetchRPS = *maxRPS
	cfg.RevalidateAfter = *revalidateAfter
	cfg.RevalidateEvery = *revalidateEvery
	cfg.PrefetchInterval = *prefetchInterval
	cfg.PrefetchMinHits = *prefetchMinHits
	switch *forward {
	case "fetch":
		cfg.Forward = proxy.FetchForward
	case "direct":
		cfg.Forward = proxy.DirectForward
	default:
		fmt.Fprintf(os.Stderr, "bapsproxy: unknown forward mode %q\n", *forward)
		os.Exit(2)
	}
	s, err := proxy.New(cfg)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	if err := s.Start(*addr); err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	if *peers != "" {
		var sibs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				sibs = append(sibs, p)
			}
		}
		if err := s.JoinCluster(sibs); err != nil {
			logger.Error("federation join failed", "err", err)
			s.Close()
			os.Exit(1)
		}
		logger.Info("federated", "siblings", len(sibs), "digest_interval", *digestInterval)
	}
	logger.Info("bapsproxy serving",
		"url", s.BaseURL(), "cache_bytes", *capacity, "policy", policy.String(),
		"forward", *forward, "datadir", *dataDir,
		"metrics", s.BaseURL()+"/metrics", "trace", s.BaseURL()+"/trace")

	// Serve until SIGINT/SIGTERM, then drain in-flight requests, flush the
	// disk journal and persist the state blob (Server.Close does all three).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	logger.Info("shutting down", "signal", sig.String())
	if err := s.Close(); err != nil {
		logger.Error("shutdown incomplete", "err", err)
		os.Exit(1)
	}
	logger.Info("bapsproxy stopped")
}
