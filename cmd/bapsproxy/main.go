// Command bapsproxy runs the live browsers-aware proxy server.
//
// Usage:
//
//	bapsproxy [-addr 127.0.0.1:8081] [-capacity 268435456] [-policy LRU]
//	          [-forward fetch|direct] [-no-peer] [-keybits 2048]
//
// Browser agents (cmd/bapsbrowser or internal/browser) register at
// POST /register and then resolve documents through GET /fetch.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"baps/internal/cache"
	"baps/internal/proxy"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "listen address")
	capacity := flag.Int64("capacity", 256<<20, "proxy cache capacity in bytes")
	policyName := flag.String("policy", "LRU", "replacement policy (LRU, FIFO, LFU, SIZE, GDSF)")
	forward := flag.String("forward", "fetch", "remote-hit delivery: fetch (proxy relays) or direct (anonymous drop)")
	noPeer := flag.Bool("no-peer", false, "disable the browsers-aware layer (plain proxy baseline)")
	keyBits := flag.Int("keybits", 2048, "watermark RSA key size")
	peerTimeout := flag.Duration("peer-timeout", 5*time.Second, "holder contact / relay wait bound")
	flag.Parse()

	policy, err := cache.ParsePolicy(*policyName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bapsproxy: %v\n", err)
		os.Exit(2)
	}
	cfg := proxy.DefaultConfig()
	cfg.CacheCapacity = *capacity
	cfg.Policy = policy
	cfg.KeyBits = *keyBits
	cfg.PeerTimeout = *peerTimeout
	cfg.DisablePeer = *noPeer
	switch *forward {
	case "fetch":
		cfg.Forward = proxy.FetchForward
	case "direct":
		cfg.Forward = proxy.DirectForward
	default:
		fmt.Fprintf(os.Stderr, "bapsproxy: unknown forward mode %q\n", *forward)
		os.Exit(2)
	}
	s, err := proxy.New(cfg)
	if err != nil {
		log.Fatalf("bapsproxy: %v", err)
	}
	if err := s.Start(*addr); err != nil {
		log.Fatalf("bapsproxy: %v", err)
	}
	fmt.Printf("bapsproxy: browsers-aware proxy on %s (cache %d bytes, %s, %s-forward)\n",
		s.BaseURL(), *capacity, policy, *forward)
	select {} // serve forever
}
