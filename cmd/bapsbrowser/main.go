// Command bapsbrowser runs a live browser agent connected to a
// browsers-aware proxy. It reads document URLs from stdin (one per line),
// resolves each through the local cache → proxy → peer/origin pipeline, and
// reports where every document came from.
//
// Usage:
//
//	echo http://127.0.0.1:8080/docs/a | bapsbrowser -proxy http://127.0.0.1:8081
//
// Flags:
//
//	-proxy URL     browsers-aware proxy base URL (required)
//	-cache N       browser cache capacity in bytes (default 8 MiB)
//	-index MODE    immediate | periodic (default immediate)
//	-threshold F   periodic re-sync threshold (default 0.05)
//	-no-verify     skip watermark verification
//	-heartbeat D   liveness beacon period (default 5s; 0 disables)
//	-logjson       emit structured logs as JSON instead of text
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"baps/internal/browser"
)

func main() {
	proxyURL := flag.String("proxy", "", "browsers-aware proxy base URL")
	cacheCap := flag.Int64("cache", 8<<20, "browser cache capacity in bytes")
	indexMode := flag.String("index", "immediate", "index update protocol: immediate, periodic, or batched")
	threshold := flag.Float64("threshold", 0.05, "periodic re-sync threshold")
	noVerify := flag.Bool("no-verify", false, "skip watermark verification")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "liveness beacon period (0 disables)")
	logjson := flag.Bool("logjson", false, "emit structured logs as JSON instead of text")
	flag.Parse()

	var logger *slog.Logger
	if *logjson {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	if *proxyURL == "" {
		fmt.Fprintln(os.Stderr, "bapsbrowser: -proxy is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := browser.DefaultConfig(*proxyURL)
	cfg.Logger = logger
	cfg.CacheCapacity = *cacheCap
	cfg.Threshold = *threshold
	cfg.Verify = !*noVerify
	cfg.HeartbeatInterval = *heartbeat
	switch *indexMode {
	case "immediate":
		cfg.IndexMode = browser.Immediate
	case "periodic":
		cfg.IndexMode = browser.Periodic
	case "batched":
		cfg.IndexMode = browser.Batched
	default:
		fmt.Fprintf(os.Stderr, "bapsbrowser: unknown index mode %q\n", *indexMode)
		os.Exit(2)
	}
	a, err := browser.New(cfg)
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	defer a.Close()
	logger.Info("bapsbrowser ready",
		"client", a.ID(), "proxy", *proxyURL, "peer_url", a.PeerURL(),
		"metrics", a.PeerURL()+"/metrics")

	// SIGINT/SIGTERM while blocked on stdin: close gracefully (unregister,
	// drain the batch publisher, stop the peer server) instead of dying with
	// updates still queued.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		logger.Info("shutting down", "signal", sig.String())
		a.Close()
		os.Exit(0)
	}()

	sc := bufio.NewScanner(os.Stdin)
	ctx := context.Background()
	for sc.Scan() {
		u := strings.TrimSpace(sc.Text())
		if u == "" || strings.HasPrefix(u, "#") {
			continue
		}
		body, src, err := a.Get(ctx, u)
		if err != nil {
			fmt.Printf("ERR   %-8s %s: %v\n", "-", u, err)
			continue
		}
		fmt.Printf("OK    %-8s %s (%d bytes)\n", src, u, len(body))
	}
	m := a.Snapshot()
	fmt.Printf("done: %d requests — local %d, proxy %d, remote %d, origin %d; served %d peer transfers\n",
		m.Requests, m.LocalHits, m.ProxyHits, m.RemoteHits, m.OriginMiss, m.PeerServes)
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "bapsbrowser: stdin: %v\n", err)
		os.Exit(1)
	}
}
