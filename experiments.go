package baps

import (
	"fmt"
	"io"
	"sync"
	"time"

	"baps/internal/anonymity"
	"baps/internal/cache"
	"baps/internal/coop"
	"baps/internal/core"
	"baps/internal/index"
	"baps/internal/integrity"
	"baps/internal/intern"
	"baps/internal/obs"
	"baps/internal/sim"
	"baps/internal/stats"
	"baps/internal/synth"
	"baps/internal/trace"
)

// Short names for ablation variants.
const (
	cacheLFU      = cache.LFU
	cacheGDSF     = cache.GDSF
	cacheSIZE     = cache.SIZE
	indexPeriodic = index.Periodic
)

// Options tunes the experiment drivers. The zero value reproduces the
// paper-scale experiments.
type Options struct {
	// Scale shrinks (or grows) every workload proportionally; 0 and 1
	// mean full scale. Benchmarks use ~0.1 for quick regeneration.
	Scale float64
	// Seed overrides profile seeds when non-zero.
	Seed int64
}

// traceKey identifies a memoized workload. The drivers ask for the same
// (profile, seed, scale) traces over and over — `bapsim all` regenerates
// nlanr-bo1 nine times — so generation (and the Compute stats pass) is
// cached per process. Cached traces are safe to share: the simulator and
// every driver treat a generated trace as read-only.
type traceKey struct {
	profile string
	seed    int64
	scale   float64
}

type traceEntry struct {
	tr *Trace
	st *trace.Stats // lazily filled by traceStats
}

var traceMemo = struct {
	sync.Mutex
	m map[traceKey]*traceEntry
}{m: make(map[traceKey]*traceEntry)}

// resetTraceMemo drops the cross-driver trace cache (benchmarks call it so
// each iteration models a fresh process).
func resetTraceMemo() {
	traceMemo.Lock()
	traceMemo.m = make(map[traceKey]*traceEntry)
	traceMemo.Unlock()
}

func (o Options) memoEntry(profile string) (*traceEntry, error) {
	scale := o.Scale
	if scale == 0 {
		scale = 1
	}
	key := traceKey{profile, o.Seed, scale}
	traceMemo.Lock()
	defer traceMemo.Unlock()
	if e, ok := traceMemo.m[key]; ok {
		return e, nil
	}
	tr, err := GenerateTraceScaled(profile, o.Seed, scale)
	if err != nil {
		return nil, err
	}
	tr.Intern() // intern once, before the trace is shared across drivers
	e := &traceEntry{tr: tr}
	traceMemo.m[key] = e
	return e, nil
}

func (o Options) trace(profile string) (*Trace, error) {
	e, err := o.memoEntry(profile)
	if err != nil {
		return nil, err
	}
	return e.tr, nil
}

// traceStats returns the memoized trace together with its Compute stats.
// Stats are computed once per cached trace; callers must not mutate them.
func (o Options) traceStats(profile string) (*Trace, *trace.Stats, error) {
	e, err := o.memoEntry(profile)
	if err != nil {
		return nil, nil, err
	}
	traceMemo.Lock()
	defer traceMemo.Unlock()
	if e.st == nil {
		st := trace.Compute(e.tr)
		e.st = &st
	}
	return e.tr, e.st, nil
}

// Table1 regenerates the paper's Table 1 ("Selected Web Traces") over the
// five synthetic stand-in profiles.
func Table1(o Options) (*Table, error) {
	t := stats.NewTable("Table 1: Selected Web Traces (synthetic stand-ins)",
		"Trace", "Requests", "Total", "Infinite Cache", "Clients", "Max Hit Ratio", "Max Byte Hit Ratio")
	for _, p := range synth.Profiles() {
		_, s, err := o.traceStats(p.Name)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Name,
			fmt.Sprintf("%d", s.NumRequests),
			stats.Bytes(s.TotalBytes),
			stats.Bytes(s.InfiniteCacheBytes),
			fmt.Sprintf("%d", s.NumClients),
			stats.Pct(s.MaxHitRatio),
			stats.Pct(s.MaxByteHitRatio))
	}
	return t, nil
}

// figureConfig is the shared base for the figure sweeps.
func figureConfig(sizing sim.Sizing) SimConfig {
	cfg := sim.DefaultConfig(core.BrowsersAware)
	cfg.Sizing = sizing
	return cfg
}

// Figure2 regenerates Figure 2: hit and byte hit ratios of all five caching
// organizations on the NLANR-uc stand-in with minimum browser caches, across
// the relative proxy cache sizes. It returns the hit-ratio series and the
// byte-hit-ratio series (percent).
func Figure2(o Options) (hit, byteHit *Series, err error) {
	tr, err := o.trace("nlanr-uc")
	if err != nil {
		return nil, nil, err
	}
	sw, err := sim.Sweep(tr, core.Organizations(), sim.PaperSizes, figureConfig(sim.SizingMinimum))
	if err != nil {
		return nil, nil, err
	}
	x := sizesPct(sw.Sizes)
	hit = stats.NewSeries("Figure 2 (left): hit ratios, NLANR-uc, minimum browser caches",
		"size%", "hit ratio %", x...)
	byteHit = stats.NewSeries("Figure 2 (right): byte hit ratios, NLANR-uc, minimum browser caches",
		"size%", "byte hit ratio %", x...)
	for _, org := range core.Organizations() {
		rs := sw.ByOrg[org]
		h := make([]float64, len(rs))
		b := make([]float64, len(rs))
		for i, r := range rs {
			h[i] = r.HitRatio() * 100
			b[i] = r.ByteHitRatio() * 100
		}
		hit.MustAdd(org.String(), h...)
		byteHit.MustAdd(org.String(), b...)
	}
	return hit, byteHit, nil
}

// Figure3 regenerates Figure 3: the breakdown of the browsers-aware proxy's
// hit ratio and byte hit ratio into local-browser, proxy and remote-browsers
// components (NLANR-uc, minimum browser caches).
func Figure3(o Options) (hit, byteHit *Series, err error) {
	tr, err := o.trace("nlanr-uc")
	if err != nil {
		return nil, nil, err
	}
	sw, err := sim.Sweep(tr, []core.Organization{core.BrowsersAware}, sim.PaperSizes, figureConfig(sim.SizingMinimum))
	if err != nil {
		return nil, nil, err
	}
	rs := sw.ByOrg[core.BrowsersAware]
	x := sizesPct(sw.Sizes)
	hit = stats.NewSeries("Figure 3 (left): hit ratio breakdown, browsers-aware proxy, NLANR-uc",
		"size%", "hit ratio %", x...)
	byteHit = stats.NewSeries("Figure 3 (right): byte hit ratio breakdown, browsers-aware proxy, NLANR-uc",
		"size%", "byte hit ratio %", x...)
	buckets := []struct {
		name string
		h    func(*Result) float64
		b    func(*Result) float64
	}{
		{"local-browser", (*Result).LocalHitRatio, (*Result).LocalByteHitRatio},
		{"proxy", (*Result).ProxyHitRatio, (*Result).ProxyByteHitRatio},
		{"remote-browsers", (*Result).RemoteHitRatio, (*Result).RemoteByteHitRatio},
	}
	for _, bk := range buckets {
		h := make([]float64, len(rs))
		b := make([]float64, len(rs))
		for i := range rs {
			h[i] = bk.h(&rs[i]) * 100
			b[i] = bk.b(&rs[i]) * 100
		}
		hit.MustAdd(bk.name, h...)
		byteHit.MustAdd(bk.name, b...)
	}
	return hit, byteHit, nil
}

// FigureVs regenerates the Figure 4/5/6/7 comparisons: browsers-aware proxy
// vs proxy-and-local-browser on the named profile with average browser
// sizing. Figure4–Figure7 are fixed-profile conveniences.
func FigureVs(o Options, profile, figure string) (hit, byteHit *Series, err error) {
	tr, err := o.trace(profile)
	if err != nil {
		return nil, nil, err
	}
	orgs := []core.Organization{core.BrowsersAware, core.ProxyAndLocalBrowser}
	sw, err := sim.Sweep(tr, orgs, sim.PaperSizes, figureConfig(sim.SizingAverage))
	if err != nil {
		return nil, nil, err
	}
	x := sizesPct(sw.Sizes)
	hit = stats.NewSeries(fmt.Sprintf("%s (left): hit ratios, %s, average browser caches", figure, profile),
		"size%", "hit ratio %", x...)
	byteHit = stats.NewSeries(fmt.Sprintf("%s (right): byte hit ratios, %s, average browser caches", figure, profile),
		"size%", "byte hit ratio %", x...)
	for _, org := range orgs {
		rs := sw.ByOrg[org]
		h := make([]float64, len(rs))
		b := make([]float64, len(rs))
		for i, r := range rs {
			h[i] = r.HitRatio() * 100
			b[i] = r.ByteHitRatio() * 100
		}
		hit.MustAdd(org.String(), h...)
		byteHit.MustAdd(org.String(), b...)
	}
	return hit, byteHit, nil
}

// Figure4 compares the two schemes on NLANR-bo1 (average browser caches).
func Figure4(o Options) (*Series, *Series, error) { return FigureVs(o, "nlanr-bo1", "Figure 4") }

// Figure5 compares the two schemes on BU-95.
func Figure5(o Options) (*Series, *Series, error) { return FigureVs(o, "bu-95", "Figure 5") }

// Figure6 compares the two schemes on BU-98.
func Figure6(o Options) (*Series, *Series, error) { return FigureVs(o, "bu-98", "Figure 6") }

// Figure7 compares the two schemes on CA*netII — the paper's limit case
// with only 3 clients, where the gain drops below one percent.
func Figure7(o Options) (*Series, *Series, error) { return FigureVs(o, "canet2", "Figure 7") }

// Figure8 regenerates the §4.4 client-scaling experiment: hit-ratio and
// byte-hit-ratio increments of the browsers-aware proxy over
// proxy-and-local-browser as the client population grows from 25 % to 100 %,
// on the NLANR-bo1, BU-95 and BU-98 stand-ins.
func Figure8(o Options) (hrInc, bhrInc *Series, err error) {
	profiles := []string{"nlanr-bo1", "bu-95", "bu-98"}
	x := make([]float64, len(sim.PaperClientFractions))
	for i, f := range sim.PaperClientFractions {
		x[i] = f * 100
	}
	hrInc = stats.NewSeries("Figure 8 (left): hit ratio increment vs number of clients",
		"clients%", "increment %", x...)
	bhrInc = stats.NewSeries("Figure 8 (right): byte hit ratio increment vs number of clients",
		"clients%", "increment %", x...)
	base := figureConfig(sim.SizingAverage)
	for _, name := range profiles {
		tr, err := o.trace(name)
		if err != nil {
			return nil, nil, err
		}
		sc, err := sim.Scaling(tr, sim.PaperClientFractions, base, 42)
		if err != nil {
			return nil, nil, err
		}
		hrInc.MustAdd(name, sc.HRIncrementPct...)
		bhrInc.MustAdd(name, sc.BHRIncrementPct...)
	}
	return hrInc, bhrInc, nil
}

// MemoryStudyReport regenerates the §4.2 memory-byte-hit-ratio comparison on
// the NLANR-uc stand-in: the browsers-aware proxy at 10 % against
// proxy-and-local-browser at the byte-hit-matched size (and, as the paper
// pinned it, at 20 %). Browser caches are memory-resident (§1's browser
// cache in memory technique), the proxy keeps the 1/10 memory tier.
func MemoryStudyReport(o Options) (*Table, error) {
	tr, err := o.trace("nlanr-uc")
	if err != nil {
		return nil, err
	}
	base := figureConfig(sim.SizingMinimum)
	base.BrowserMemFraction = 1.0
	t := stats.NewTable("§4.2 memory byte hit ratio study (NLANR-uc, minimum browser caches)",
		"Scheme", "Rel. size", "Hit ratio", "Byte hit ratio", "Memory byte hit ratio", "Hit latency (s)")
	add := func(label string, r Result) {
		t.AddRow(label,
			fmt.Sprintf("%.1f%%", r.RelativeSize*100),
			stats.Pct(r.HitRatio()),
			stats.Pct(r.ByteHitRatio()),
			stats.Pct(r.MemoryByteHitRatio()),
			fmt.Sprintf("%.1f", r.HitLatencySec))
	}
	matched, err := sim.MemoryStudy(tr, 0.10, 0, base)
	if err != nil {
		return nil, err
	}
	add("browsers-aware-proxy-server", matched.BAPS)
	add("proxy-and-local-browser (byte-hit matched)", matched.PALB)
	pinned, err := sim.MemoryStudy(tr, 0.10, 0.20, base)
	if err != nil {
		return nil, err
	}
	add("proxy-and-local-browser (paper's 20%)", pinned.PALB)
	t.AddRow("hit-latency reduction vs matched", "", "", "",
		fmt.Sprintf("%+.2f%%", matched.HitLatencyReductionPct), "")
	return t, nil
}

// OverheadReport regenerates the §5 overhead estimation for every trace:
// the share of total workload service time spent on remote-browser
// communication, the bus-contention share of that communication, index
// staleness, and the index space estimates (exact MD5 directory vs
// Summary-Cache-style Bloom compression).
func OverheadReport(o Options) (*Table, error) {
	t := stats.NewTable("§5 overhead estimation (browsers-aware proxy, 10% relative size, average browser caches)",
		"Trace", "Remote comm / service time", "Contention / comm time", "Remote transfers",
		"False index hits", "Index entries", "Exact index", "Bloom index (16c/doc)")
	var rn sim.Runner // pooled across the per-profile runs
	for _, p := range synth.Profiles() {
		tr, st, err := o.traceStats(p.Name)
		if err != nil {
			return nil, err
		}
		cfg := figureConfig(sim.SizingAverage)
		res, err := rn.Run(tr, st, cfg)
		if err != nil {
			return nil, err
		}
		// Index size at end of run: entries ≈ resident docs across
		// browsers; use the §5 estimators.
		entries := int(res.Requests) // upper bound fallback
		if res.BrowserCapTotal > 0 {
			// Approximate entries by browser capacity over mean doc size.
			meanDoc := res.TotalBytes / res.Requests
			if meanDoc > 0 {
				entries = int(res.BrowserCapTotal / meanDoc)
			}
		}
		t.AddRow(p.Name,
			stats.Pct(res.RemoteCommFraction()),
			stats.Pct(res.ContentionShare()),
			fmt.Sprintf("%d", res.RemoteConnections),
			fmt.Sprintf("%d", res.FalseIndexHits),
			fmt.Sprintf("~%d", entries),
			stats.Bytes(index.SpaceEstimate(entries)),
			stats.Bytes(index.BloomSpaceEstimate(1, entries, 16)))
	}
	return t, nil
}

// IndexCompressionReport quantifies the §5 compression trade-off on real
// index contents: it replays a trace through the browsers-aware pipeline
// while mirroring every browser-cache change into per-client counting Bloom
// filters, then compares space and the wasted-probe rate of the compressed
// index against the exact directory. countersPerClient == 0 auto-sizes the
// filters at Summary Cache's recommended ≈16 counters per expected cached
// document.
func IndexCompressionReport(o Options, profile string, countersPerClient uint64) (*Table, error) {
	tr, st, err := o.traceStats(profile)
	if err != nil {
		return nil, err
	}
	cfg := figureConfig(sim.SizingAverage)
	ccfg := coreConfigFor(st, cfg)
	if countersPerClient == 0 {
		// Measuring pre-pass: replay once to learn the steady-state
		// directory size, then apply Summary Cache's ≈16 counters per
		// cached document.
		pre, err := core.New(ccfg)
		if err != nil {
			return nil, err
		}
		for _, r := range tr.Requests {
			pre.Access(r)
		}
		docsPerClient := pre.Index().Len()/st.NumClients + 1
		countersPerClient = uint64(16 * docsPerClient)
	}
	sys, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	bidx, err := index.NewBloomIndex(countersPerClient, 4)
	if err != nil {
		return nil, err
	}
	exact := sys.Index()
	var probesExact, probesBloom, falseBloom int64
	for _, r := range tr.Requests {
		// Query both indexes the way the proxy would on a proxy miss;
		// measure before Access mutates state.
		holders := exact.Ordered(r.Doc, r.Client)
		cands := bidx.Candidates(r.URL, r.Client)
		probesExact += int64(len(holders))
		probesBloom += int64(len(cands))
		real := map[int]bool{}
		for _, h := range holders {
			real[h.Client] = true
		}
		for _, c := range cands {
			if !real[c] {
				falseBloom++
			}
		}
		before := snapshotBrowser(sys, r.Client)
		sys.Access(r)
		after := snapshotBrowser(sys, r.Client)
		// Mirror this client's index delta into the Bloom filters (the
		// Bloom index stays URL-keyed: it hashes document names, so it
		// needs the symbol table to spell IDs back out).
		for doc := range after {
			if !before[doc] {
				bidx.Add(r.Client, tr.Syms.String(doc))
			}
		}
		for doc := range before {
			if !after[doc] {
				bidx.Remove(r.Client, tr.Syms.String(doc))
			}
		}
	}
	t := stats.NewTable(fmt.Sprintf("§5 index compression trade-off (%s)", profile),
		"Index", "Space", "Candidate probes", "False candidates")
	t.AddRow("exact (16B MD5 + meta)",
		stats.Bytes(index.SpaceEstimate(exact.Len())),
		fmt.Sprintf("%d", probesExact), "0")
	t.AddRow(fmt.Sprintf("counting Bloom (%d counters/client)", countersPerClient),
		stats.Bytes(bidx.SizeBytes()),
		fmt.Sprintf("%d", probesBloom),
		fmt.Sprintf("%d", falseBloom))
	return t, nil
}

// snapshotBrowser captures the set of documents client currently publishes.
// Under the immediate index mode this experiment runs, the exact directory
// mirrors the browser cache one-to-one, and reading the cache is O(cached
// docs) where Index.ClientDocs would scan every document slot.
func snapshotBrowser(s *core.System, client int) map[intern.ID]bool {
	ids := s.Browser(client).IDs()
	out := make(map[intern.ID]bool, len(ids))
	for _, id := range ids {
		out[id] = true
	}
	return out
}

// coreConfigFor mirrors sim's capacity derivation for drivers that need a
// raw core.System.
func coreConfigFor(st *trace.Stats, c SimConfig) core.Config {
	// Re-derive through a one-request dry run of sim's own builder by
	// reusing its exported surface: run with zero requests is cheap.
	// (sim keeps the derivation internal; replicate the average rule.)
	per := int64(c.RelativeSize * float64(st.AvgClientInfiniteBytes()))
	caps := make([]int64, st.NumClients)
	for i := range caps {
		caps[i] = per
	}
	return core.Config{
		Organization:        core.BrowsersAware,
		NumClients:          st.NumClients,
		NumDocs:             st.UniqueDocs,
		ProxyCapacity:       int64(c.RelativeSize * float64(st.InfiniteCacheBytes)),
		BrowserCapacity:     caps,
		ProxyPolicy:         c.ProxyPolicy,
		BrowserPolicy:       c.BrowserPolicy,
		MemFraction:         c.Latency.MemFraction,
		BrowserMemFraction:  c.BrowserMemFraction,
		IndexMode:           c.IndexMode,
		IndexThreshold:      c.IndexThreshold,
		IndexStrategy:       c.IndexStrategy,
		ForwardMode:         c.ForwardMode,
		ProxyCachesPeerDocs: c.ProxyCachesPeerDocs,
		CacheRemoteHits:     c.CacheRemoteHits,
	}
}

// SecurityReport measures the §6 protocol overheads the paper calls
// "trivial": watermark generation/verification throughput and the
// anonymous-path (onion) build/peel cost.
func SecurityReport(keyBits int, docBytes int) (*Table, error) {
	if keyBits == 0 {
		keyBits = 2048
	}
	if docBytes == 0 {
		docBytes = 8 << 10
	}
	signer, err := integrity.NewSigner(keyBits)
	if err != nil {
		return nil, err
	}
	doc := make([]byte, docBytes)
	for i := range doc {
		doc[i] = byte(i)
	}
	timeOp := func(n int, f func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < n; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(n), nil
	}
	signT, err := timeOp(20, func() error { _, e := signer.Watermark(doc); return e })
	if err != nil {
		return nil, err
	}
	mark, _ := signer.Watermark(doc)
	verifyT, err := timeOp(200, func() error { return integrity.Verify(signer.Public(), doc, mark) })
	if err != nil {
		return nil, err
	}
	keys := map[int][]byte{}
	path := make([]anonymity.Hop, 3)
	for i := range path {
		k, err := anonymity.NewKey()
		if err != nil {
			return nil, err
		}
		keys[i] = k
		path[i] = anonymity.Hop{ID: i, Key: k}
	}
	onionT, err := timeOp(200, func() error {
		onion, e := anonymity.BuildOnion(path, doc)
		if e != nil {
			return e
		}
		_, _, e = anonymity.Route(keys, 0, onion)
		return e
	})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("§6 security overheads (RSA-%d, MD5, %d-byte document)", keyBits, docBytes),
		"Operation", "Latency", "Relative to a 0.1s LAN connection setup")
	rel := func(d time.Duration) string {
		return fmt.Sprintf("%.3f%%", float64(d)/float64(100*time.Millisecond)*100)
	}
	t.AddRow("watermark sign (proxy, once per document)", signT.String(), rel(signT))
	t.AddRow("watermark verify (per peer transfer)", verifyT.String(), rel(verifyT))
	t.AddRow("anonymous 3-hop onion build+route", onionT.String(), rel(onionT))
	return t, nil
}

// AblationReport exercises the design choices DESIGN.md calls out, on one
// profile at 10 % relative size with average browser sizing: replacement
// policy, forward mode (and proxy caching of relayed documents), caching of
// remote hits at the requester, and the §2 index-update protocol (immediate
// vs periodic at several staleness thresholds — the Fan et al. delay
// discussion of §5).
func AblationReport(o Options, profile string) (*Table, error) {
	tr, st, err := o.traceStats(profile)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Ablations (%s, browsers-aware proxy @10%%, average browser caches)", profile),
		"Variant", "Hit ratio", "Byte hit ratio", "Remote hit ratio", "False index hits")
	var rn sim.Runner // pooled across the variant runs
	run := func(label string, mutate func(*SimConfig)) error {
		cfg := figureConfig(sim.SizingAverage)
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := rn.Run(tr, st, cfg)
		if err != nil {
			return err
		}
		if err := res.Check(); err != nil {
			return err
		}
		t.AddRow(label,
			stats.Pct(res.HitRatio()),
			stats.Pct(res.ByteHitRatio()),
			stats.Pct(res.RemoteHitRatio()),
			fmt.Sprintf("%d", res.FalseIndexHits))
		return nil
	}
	variants := []struct {
		label  string
		mutate func(*SimConfig)
	}{
		{"baseline (LRU, fetch-forward, immediate index)", nil},
		{"policy: LFU", func(c *SimConfig) { c.ProxyPolicy, c.BrowserPolicy = cacheLFU, cacheLFU }},
		{"policy: GDSF", func(c *SimConfig) { c.ProxyPolicy, c.BrowserPolicy = cacheGDSF, cacheGDSF }},
		{"policy: SIZE", func(c *SimConfig) { c.ProxyPolicy, c.BrowserPolicy = cacheSIZE, cacheSIZE }},
		{"forward: direct (no proxy caching of peer docs)", func(c *SimConfig) {
			c.ForwardMode = core.DirectForward
			c.ProxyCachesPeerDocs = false
		}},
		{"forward: fetch, proxy does not cache peer docs", func(c *SimConfig) { c.ProxyCachesPeerDocs = false }},
		{"requester does not cache remote hits", func(c *SimConfig) { c.CacheRemoteHits = false }},
		{"index: periodic, threshold 1%", func(c *SimConfig) { c.IndexMode = indexPeriodic; c.IndexThreshold = 0.01 }},
		{"index: periodic, threshold 10%", func(c *SimConfig) { c.IndexMode = indexPeriodic; c.IndexThreshold = 0.10 }},
		{"index: periodic, threshold 50%", func(c *SimConfig) { c.IndexMode = indexPeriodic; c.IndexThreshold = 0.50 }},
		{"holder selection: least-loaded", func(c *SimConfig) { c.IndexStrategy = index.SelectLeastLoaded }},
		{"browser sizing: minimum", func(c *SimConfig) { c.Sizing = sim.SizingMinimum }},
		{"browser sizing: per-client", func(c *SimConfig) { c.Sizing = sim.SizingPerClient }},
	}
	for _, v := range variants {
		if err := run(v.label, v.mutate); err != nil {
			return nil, fmt.Errorf("ablation %q: %w", v.label, err)
		}
	}
	return t, nil
}

// MetricsReport replays one profile through the browsers-aware organization
// once per replacement policy, each run exporting onto its own obs.Registry,
// and tabulates the per-policy counters. Every row is cross-checked against
// the simulator's own Result accounting, so the table doubles as an
// end-to-end test of the metrics pipeline. When dump is non-nil, each
// registry's full Prometheus exposition is appended to it behind a
// "# policy: <name>" comment line (bapsim's -metricsout flag).
func MetricsReport(o Options, profile string, dump io.Writer) (*Table, error) {
	tr, st, err := o.traceStats(profile)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Per-policy metrics dumps (%s, browsers-aware proxy @10%%)", profile),
		"Policy", "Requests", "Local", "Proxy", "Remote", "Miss", "False index hits", "LAN bytes")
	policies := []cache.Policy{cache.LRU, cache.FIFO, cache.LFU, cache.SIZE, cache.GDSF}
	var rn sim.Runner
	for _, pol := range policies {
		reg := obs.NewRegistry()
		cfg := figureConfig(sim.SizingAverage)
		cfg.ProxyPolicy, cfg.BrowserPolicy = pol, pol
		cfg.Metrics = reg
		res, err := rn.Run(tr, st, cfg)
		if err != nil {
			return nil, fmt.Errorf("metrics %s: %w", pol, err)
		}
		if err := res.Check(); err != nil {
			return nil, fmt.Errorf("metrics %s: %w", pol, err)
		}
		byClass := func(h core.HitClass) int64 {
			return reg.VecValue("baps_sim_requests_by_class_total", h.String())
		}
		// The registry and the Result account the same events through
		// independent paths; disagreement means the pipeline is broken.
		if got := reg.CounterValue("baps_sim_requests_total"); got != res.Requests {
			return nil, fmt.Errorf("metrics %s: registry counted %d requests, result %d", pol, got, res.Requests)
		}
		if got := byClass(core.HitRemoteBrowser); got != res.RemoteHits {
			return nil, fmt.Errorf("metrics %s: registry counted %d remote hits, result %d", pol, got, res.RemoteHits)
		}
		t.AddRow(pol.String(),
			fmt.Sprintf("%d", reg.CounterValue("baps_sim_requests_total")),
			fmt.Sprintf("%d", byClass(core.HitLocalBrowser)),
			fmt.Sprintf("%d", byClass(core.HitProxy)),
			fmt.Sprintf("%d", byClass(core.HitRemoteBrowser)),
			fmt.Sprintf("%d", byClass(core.Miss)),
			fmt.Sprintf("%d", reg.CounterValue("baps_sim_false_index_hits_total")),
			stats.Bytes(reg.CounterValue("baps_sim_bus_bytes_total")))
		if dump != nil {
			fmt.Fprintf(dump, "# policy: %s\n", pol)
			if err := reg.WriteText(dump); err != nil {
				return nil, fmt.Errorf("metrics %s: dump: %w", pol, err)
			}
			fmt.Fprintln(dump)
		}
	}
	return t, nil
}

// CooperativeReport compares the browsers-aware proxy against the
// conventional alternative the paper's introduction sketches — sibling
// proxies cooperating via Summary-Cache compressed summaries (reference
// [4]) — at equal total cache hardware: the cooperative cluster's aggregate
// proxy capacity equals the browsers-aware proxy's, and both sides have the
// same browser caches. The comparison isolates the paper's contribution:
// harvesting the browser caches clients already own instead of adding proxy
// machinery.
func CooperativeReport(o Options, profile string, siblings []int) (*Table, error) {
	tr, st, err := o.traceStats(profile)
	if err != nil {
		return nil, err
	}
	cfg := figureConfig(sim.SizingAverage)
	proxyCap := int64(cfg.RelativeSize * float64(st.InfiniteCacheBytes))
	browserCap := int64(cfg.RelativeSize * float64(st.AvgClientInfiniteBytes()))
	caps := make([]int64, st.NumClients)
	for i := range caps {
		caps[i] = browserCap
	}

	t := stats.NewTable(fmt.Sprintf("Browsers-aware vs Summary-Cache cooperative proxies (%s, equal hardware)", profile),
		"System", "Hit ratio", "Byte hit ratio", "P2P/sibling hits", "Wasted probes", "Extra state")

	bres, err := sim.Run(tr, st, cfg)
	if err != nil {
		return nil, err
	}
	t.AddRow("browsers-aware proxy (1 proxy + browser index)",
		stats.Pct(bres.HitRatio()),
		stats.Pct(bres.ByteHitRatio()),
		stats.Pct(bres.RemoteHitRatio()),
		fmt.Sprintf("%d", bres.FalseIndexHits),
		stats.Bytes(index.SpaceEstimate(int(bres.BrowserCapTotal/(st.TotalBytes/int64(st.NumRequests)+1)))))

	for _, m := range siblings {
		ccfg := coop.Config{
			NumProxies:            m,
			TotalProxyCapacity:    proxyCap,
			BrowserCapacity:       caps,
			Policy:                cfg.ProxyPolicy,
			MemFraction:           cfg.Latency.MemFraction,
			SummaryCountersPerDoc: 16,
			SummaryThreshold:      0.05,
		}
		cres, err := coop.Run(tr, ccfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("cooperative proxies (M=%d, summary cache)", m),
			stats.Pct(cres.HitRatio()),
			stats.Pct(cres.ByteHitRatio()),
			stats.Pct(cres.SiblingHitRatio()),
			fmt.Sprintf("%d", cres.FalseProbes),
			stats.Bytes(cres.SummaryBytes))
	}
	return t, nil
}

// HierarchyReport runs the hierarchy extension: the browsers-aware proxy
// and proxy-and-local-browser under an upper-level parent proxy of varying
// size. The paper forwards misses "to an upper level proxy or the web
// server" without evaluating one; this quantifies how much of the
// browsers-aware gain survives when a parent cache also absorbs misses
// (answer: all of the hit-ratio gain — the parent only intercepts traffic
// both schemes already missed — while total service time drops for both).
func HierarchyReport(o Options, profile string) (*Table, error) {
	tr, st, err := o.traceStats(profile)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Hierarchy extension (%s, 10%% proxy, average browser caches)", profile),
		"Scheme", "Parent size", "Hit ratio", "Origin fetches", "Parent hits", "Total service (s)")
	var rn sim.Runner // pooled across the parent-size × organization grid
	for _, parent := range []float64{0, 0.25, 0.50} {
		for _, org := range []core.Organization{core.BrowsersAware, core.ProxyAndLocalBrowser} {
			cfg := figureConfig(sim.SizingAverage)
			cfg.Organization = org
			cfg.ParentRelativeSize = parent
			res, err := rn.Run(tr, st, cfg)
			if err != nil {
				return nil, err
			}
			if err := res.Check(); err != nil {
				return nil, err
			}
			t.AddRow(org.String(),
				fmt.Sprintf("%.0f%%", parent*100),
				stats.Pct(res.HitRatio()),
				fmt.Sprintf("%d", res.Misses),
				fmt.Sprintf("%d", res.ParentHits),
				fmt.Sprintf("%.0f", res.TotalServiceSec))
		}
	}
	return t, nil
}

// LatencyReport tabulates the per-request service-time distribution of
// every organization at 10 % relative size — an operational view (median
// and tail latency under the §4.2/§5 timing model) the paper's aggregate
// metrics imply but never show.
func LatencyReport(o Options, profile string) (*Table, error) {
	tr, st, err := o.traceStats(profile)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable(fmt.Sprintf("Service-time distribution (%s, 10%% relative size, average browser caches)", profile),
		"Organization", "Hit ratio", "Mean (s)", "p50 (s)", "p95 (s)", "p99 (s)", "Max (s)")
	var rn sim.Runner // pooled across the organization runs
	for _, org := range core.Organizations() {
		cfg := figureConfig(sim.SizingAverage)
		cfg.Organization = org
		res, err := rn.Run(tr, st, cfg)
		if err != nil {
			return nil, err
		}
		mean := 0.0
		if res.Requests > 0 {
			mean = res.TotalServiceSec / float64(res.Requests)
		}
		t.AddRow(org.String(),
			stats.Pct(res.HitRatio()),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", res.ServiceP50),
			fmt.Sprintf("%.3f", res.ServiceP95),
			fmt.Sprintf("%.3f", res.ServiceP99),
			fmt.Sprintf("%.2f", res.ServiceMax))
	}
	return t, nil
}

// ReplicationReport reruns the headline comparison (browsers-aware vs
// proxy-and-local-browser at 10 % relative size, average sizing) across
// seeds independent replications of every profile's workload and reports
// the gain as mean ± sample standard deviation — the statistical robustness
// check a single-trace study (like the paper's) cannot provide.
func ReplicationReport(o Options, seeds int) (*Table, error) {
	if seeds < 2 {
		return nil, fmt.Errorf("baps: need at least 2 seeds, got %d", seeds)
	}
	t := stats.NewTable(fmt.Sprintf("Replication study: BAPS−P+LB gain across %d seeds (10%% relative size)", seeds),
		"Trace", "HR gain (pp, mean±std)", "Byte-HR gain (pp, mean±std)", "min HR gain", "all positive")
	scale := o.Scale
	if scale == 0 {
		scale = 1
	}
	var rn sim.Runner // pooled across all profile × seed × organization runs
	for _, p := range synth.Profiles() {
		var hrGains, bhrGains []float64
		for s := 0; s < seeds; s++ {
			pp := synth.Scaled(p, scale)
			pp.Seed = p.Seed + int64(s)*0x9E37
			tr, err := synth.Generate(pp)
			if err != nil {
				return nil, err
			}
			st := trace.Compute(tr)
			cfg := figureConfig(sim.SizingAverage)
			bres, err := rn.Run(tr, &st, cfg)
			if err != nil {
				return nil, err
			}
			cfg.Organization = core.ProxyAndLocalBrowser
			pres, err := rn.Run(tr, &st, cfg)
			if err != nil {
				return nil, err
			}
			hrGains = append(hrGains, (bres.HitRatio()-pres.HitRatio())*100)
			bhrGains = append(bhrGains, (bres.ByteHitRatio()-pres.ByteHitRatio())*100)
		}
		min := hrGains[0]
		positive := true
		for _, g := range hrGains {
			if g < min {
				min = g
			}
			if g <= 0 {
				positive = false
			}
		}
		t.AddRow(p.Name,
			fmt.Sprintf("%.2f±%.2f", stats.Mean(hrGains), stats.Std(hrGains)),
			fmt.Sprintf("%.2f±%.2f", stats.Mean(bhrGains), stats.Std(bhrGains)),
			fmt.Sprintf("%.2f", min),
			fmt.Sprintf("%v", positive))
	}
	return t, nil
}

func sizesPct(sizes []float64) []float64 {
	out := make([]float64, len(sizes))
	for i, s := range sizes {
		out[i] = s * 100
	}
	return out
}
