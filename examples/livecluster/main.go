// Livecluster: the browsers-aware proxy system running for real — an
// in-process origin server, a live proxy with a browser index, and three
// browser agents on loopback HTTP. The demo walks through the paper's
// Figure 1 flow (local hit → proxy hit → remote-browser hit → origin),
// then demonstrates §6: a tampering peer is caught by the MD5+RSA
// watermark, and peer identities stay hidden behind the proxy.
//
//	go run ./examples/livecluster
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"

	"baps"
)

func main() {
	pcfg := baps.ProxyConfig{
		CacheCapacity: 300_000, // small proxy so evictions actually happen
		MemFraction:   0.1,
		Forward:       0, // FetchForward
		CachePeerDocs: true,
		KeyBits:       1024,
	}
	cluster, err := baps.StartCluster(baps.ClusterConfig{
		Agents: 3,
		Proxy:  pcfg,
		MutateAgent: func(i int, cfg *baps.AgentConfig) {
			cfg.CacheCapacity = 4 << 20 // browsers retain generously
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	alice, bob, carol := cluster.Agents[0], cluster.Agents[1], cluster.Agents[2]

	fetch := func(who string, a *baps.Agent, url string) baps.Source {
		body, src, err := a.Get(ctx, url)
		if err != nil {
			log.Fatalf("%s: %v", who, err)
		}
		fmt.Printf("  %-6s GET %-34s → %-7s (%5d bytes)\n", who, url[len(cluster.DocURL("")):], src, len(body))
		return src
	}

	fmt.Println("1) Cold start: Alice fetches a page — it comes from the origin,")
	fmt.Println("   gets watermarked by the proxy, and lands in both caches.")
	doc := cluster.DocURL("/news/today?size=120000")
	fetch("alice", alice, doc)

	fmt.Println("\n2) Alice again: local browser hit. Bob: proxy hit.")
	fetch("alice", alice, doc)
	fetch("bob", bob, doc)

	fmt.Println("\n3) Carol churns through other pages until the proxy evicts /news/today…")
	for i := 0; i < 4; i++ {
		fetch("carol", carol, cluster.DocURL(fmt.Sprintf("/feed/%c?size=90000", 'a'+i)))
	}

	fmt.Println("\n4) Carol now asks for /news/today. The proxy cache has dropped it, but")
	fmt.Println("   the browser index knows Alice and Bob still hold it → peer-to-peer hit:")
	if src := fetch("carol", carol, doc); src != baps.SourceRemote {
		fmt.Println("   (note: expected a remote hit; cache sizes may need tuning)")
	}

	fmt.Println("\n5) Anonymity (§6.2): peers can never talk to each other directly —")
	fmt.Println("   the holder's peer server only answers the proxy's token:")
	resp, err := http.Get(alice.PeerURL() + "/peer/doc?url=" + doc)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("   unauthenticated probe of Alice's peer server → HTTP %d\n", resp.StatusCode)

	fmt.Println("\n6) Integrity (§6.1): Alice turns malicious and corrupts everything she")
	fmt.Println("   serves. The proxy checks the MD5 watermark, rejects her copy, prunes")
	fmt.Println("   her index entry, and falls back to the origin:")
	alice.Tamper = func(_ string, b []byte) []byte {
		bad := append([]byte(nil), b...)
		bad[0] ^= 0xFF
		return bad
	}
	doc2 := cluster.DocURL("/private/report?size=150000")
	fetch("alice", alice, doc2)
	for i := 0; i < 4; i++ { // push it out of the proxy again
		fetch("carol", carol, cluster.DocURL(fmt.Sprintf("/feed/x%d?size=90000", i)))
	}
	if src := fetch("bob", bob, doc2); src == baps.SourceOrigin {
		fmt.Println("   → tampered peer copy rejected; Bob received the authentic document.")
	}

	st := cluster.Proxy.Snapshot()
	fmt.Printf("\nproxy stats: %d requests — %d proxy hits, %d remote-browser hits, %d origin fetches,\n",
		st.Requests, st.ProxyHits, st.RemoteHits, st.OriginFetches)
	fmt.Printf("             %d tamper rejections, %d index entries over %d clients\n",
		st.TamperRejected, st.IndexEntries, st.Clients)
}
