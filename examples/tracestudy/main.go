// Tracestudy: the paper's §4.1 question — "how much is browser cache data
// sharable?" — answered over all five caching organizations with minimum
// browser caches, plus the Figure-3 hit breakdown of the browsers-aware
// proxy, on a configurable profile.
//
//	go run ./examples/tracestudy [-profile nlanr-uc] [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"baps"
)

func main() {
	profile := flag.String("profile", "nlanr-uc", "trace profile")
	scale := flag.Float64("scale", 0.25, "workload scale")
	flag.Parse()

	tr, err := baps.GenerateTraceScaled(*profile, 0, *scale)
	if err != nil {
		log.Fatal(err)
	}

	base := baps.DefaultSimConfig(baps.BrowsersAware)
	base.Sizing = baps.SizingMinimum // the §4.1 conservative setting
	sw, err := baps.Sweep(tr, baps.Organizations(), baps.PaperSizes, base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Five caching organizations on %s (minimum browser caches)\n\n", tr.Name)
	fmt.Printf("%-28s", "relative cache size")
	for _, s := range sw.Sizes {
		fmt.Printf("  %6.1f%%", s*100)
	}
	fmt.Println()
	for _, org := range baps.Organizations() {
		fmt.Printf("%-28s", org)
		for _, r := range sw.ByOrg[org] {
			fmt.Printf("  %6.2f%%", r.HitRatio()*100)
		}
		fmt.Println()
	}

	fmt.Println("\nBrowsers-aware hit breakdown (the paper's Figure 3):")
	fmt.Printf("%-10s  %-14s  %-8s  %-16s\n", "size", "local-browser", "proxy", "remote-browsers")
	for i, r := range sw.ByOrg[baps.BrowsersAware] {
		fmt.Printf("%9.1f%%  %13.2f%%  %7.2f%%  %15.2f%%\n",
			sw.Sizes[i]*100, r.LocalHitRatio()*100, r.ProxyHitRatio()*100, r.RemoteHitRatio()*100)
	}
	fmt.Println("\nRemote-browser hits exist at every cache size: sharable data locality is real,")
	fmt.Println("even when browser caches are set to their conservative minimum.")
}
