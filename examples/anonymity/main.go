// Anonymity: the §6.2 protocols live. Documents travel browser-to-browser
// over an onion-routed covert path: the holder learns one relay address,
// each relay learns only its neighbors, the requester learns nothing, and
// the body never enters the proxy — yet the MD5+RSA watermark still
// verifies end-to-end at the requester.
//
//	go run ./examples/anonymity
package main

import (
	"context"
	"fmt"
	"log"

	"baps"
)

func main() {
	cluster, err := baps.StartCluster(baps.ClusterConfig{
		Agents: 5, // holder + requester + three possible relays
		Proxy: baps.ProxyConfig{
			CacheCapacity: 250_000, // small proxy: evictions create P2P traffic
			MemFraction:   0.1,
			Forward:       baps.ForwardOnion,
			OnionRelays:   2, // two intermediate hops
			KeyBits:       1024,
		},
		MutateAgent: func(i int, cfg *baps.AgentConfig) {
			cfg.CacheCapacity = 8 << 20
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	ctx := context.Background()
	names := []string{"alice", "bob", "carol", "dave", "erin"}

	fmt.Println("Setting: five browsers behind one browsers-aware proxy; delivery mode is")
	fmt.Println("onion-forward with two relay hops.")

	doc := cluster.DocURL("/medical/record?size=100000")
	fmt.Println("\n1) Alice fetches a sensitive page (origin → proxy → Alice):")
	if _, src, err := cluster.Agents[0].Get(ctx, doc); err != nil || src != baps.SourceOrigin {
		log.Fatalf("alice: %v %v", src, err)
	}
	fmt.Println("   alice ← origin (proxy watermarked and cached it)")

	fmt.Println("\n2) Erin churns the proxy cache until the page is evicted there…")
	for i := 0; i < 4; i++ {
		if _, _, err := cluster.Agents[4].Get(ctx, cluster.DocURL(fmt.Sprintf("/noise/%d?size=80000", i))); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n3) Bob requests the page. The index knows Alice still holds it, so the")
	fmt.Println("   proxy builds a covert path: alice → relay → relay → bob. Watch who")
	fmt.Println("   relays (neither learns what, for whom, or from whom):")
	body, src, err := cluster.Agents[1].Get(ctx, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   bob ← %s (%d bytes, watermark verified)\n", src, len(body))
	for i, a := range cluster.Agents {
		m := a.Snapshot()
		if m.OnionRelayed > 0 {
			fmt.Printf("   %s relayed %d sealed hop(s) — opaque to them\n", names[i], m.OnionRelayed)
		}
	}

	st := cluster.Proxy.Snapshot()
	fmt.Printf("\n4) The proxy brokered the hit without ever seeing the body:\n")
	fmt.Printf("   proxy stats: %d remote hits, 0 bytes of it through the proxy cache\n", st.RemoteHits)

	fmt.Println("\n5) Peer servers refuse everyone but the proxy (token) and refuse onions")
	fmt.Println("   not addressed to them (AES-GCM layer), so nobody can probe who holds what.")
	fmt.Println("\nThe paper's §6.2 properties hold end-to-end: mutual requester/holder")
	fmt.Println("anonymity with only 'limited centralized control' at the proxy.")
}
