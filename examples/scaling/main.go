// Scaling: the paper's §4.4 scalability argument — the browsers-aware
// proxy's advantage grows with the number of connected clients, because
// every new client brings browser cache capacity and sharable locality with
// it. Also runs the §4.2 memory study: at an equivalent byte hit ratio the
// browsers-aware system serves more bytes from memory.
//
//	go run ./examples/scaling [-profile bu-98] [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"baps"
)

func main() {
	profile := flag.String("profile", "bu-98", "trace profile")
	scale := flag.Float64("scale", 0.25, "workload scale")
	flag.Parse()

	tr, err := baps.GenerateTraceScaled(*profile, 0, *scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Client-scaling experiment on %s (proxy pinned at 10%% of the full trace's\n", tr.Name)
	fmt.Println("infinite cache size; browser caches sized per the average rule):")
	base := baps.DefaultSimConfig(baps.BrowsersAware)
	sc, err := baps.Scaling(tr, baps.PaperClientFractions, base, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s  %-12s  %-12s  %-14s  %-14s\n",
		"clients", "BAPS HR", "P+LB HR", "HR increment", "byte increment")
	for i, f := range sc.Fractions {
		fmt.Printf("%9.0f%%  %11.2f%%  %11.2f%%  %+13.2f%%  %+13.2f%%\n",
			f*100, sc.BAPS[i].HitRatio()*100, sc.PALB[i].HitRatio()*100,
			sc.HRIncrementPct[i], sc.BHRIncrementPct[i])
	}
	fmt.Println("\nThe increment grows with the client population: browsers-aware proxying")
	fmt.Println("converts added clients into added, already-paid-for cache capacity.")

	fmt.Println("\nMemory study (§4.2) on nlanr-uc — equivalent byte hit ratios,")
	fmt.Println("different memory byte hit ratios:")
	mtr, err := baps.GenerateTraceScaled("nlanr-uc", 0, *scale)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := baps.DefaultSimConfig(baps.BrowsersAware)
	mcfg.Sizing = baps.SizingMinimum
	mcfg.BrowserMemFraction = 1.0 // §1's "browser cache in memory" technique
	ms, err := baps.MemoryStudy(mtr, 0.10, 0, mcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  browsers-aware @%4.1f%%: byte HR %.2f%%, memory byte HR %.2f%%\n",
		ms.BAPS.RelativeSize*100, ms.BAPS.ByteHitRatio()*100, ms.BAPS.MemoryByteHitRatio()*100)
	fmt.Printf("  proxy+local    @%4.1f%%: byte HR %.2f%%, memory byte HR %.2f%%\n",
		ms.MatchedPALBSize*100, ms.PALB.ByteHitRatio()*100, ms.PALB.MemoryByteHitRatio()*100)
	fmt.Printf("  hit-latency reduction: %+.2f%% of total service time\n", ms.HitLatencyReductionPct)
}
