// Quickstart: generate a synthetic web trace, run the browsers-aware proxy
// organization against the conventional proxy-and-local-browser arrangement,
// and print the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"baps"
)

func main() {
	// The "nlanr-bo1" profile stands in for the paper's NLANR bo1 proxy
	// trace; scale 0.25 keeps the demo under a second.
	tr, err := baps.GenerateTraceScaled("nlanr-bo1", 0, 0.25)
	if err != nil {
		log.Fatal(err)
	}
	st := baps.ComputeStats(tr)
	fmt.Printf("trace %s: %d requests from %d clients, infinite cache ceiling %.1f%% hits / %.1f%% bytes\n\n",
		st.Name, st.NumRequests, st.NumClients, st.MaxHitRatio*100, st.MaxByteHitRatio*100)

	for _, org := range []baps.Organization{baps.ProxyAndLocalBrowser, baps.BrowsersAware} {
		cfg := baps.DefaultSimConfig(org) // LRU, 10% relative size, average browser caches
		res, err := baps.Run(tr, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s hit ratio %6.2f%%   byte hit ratio %6.2f%%\n",
			org, res.HitRatio()*100, res.ByteHitRatio()*100)
		if org == baps.BrowsersAware {
			fmt.Printf("%-28s  └ breakdown: local %.2f%% + proxy %.2f%% + remote browsers %.2f%%\n",
				"", res.LocalHitRatio()*100, res.ProxyHitRatio()*100, res.RemoteHitRatio()*100)
			fmt.Printf("%-28s  └ remote-transfer overhead: %.3f%% of service time (contention %.3f%% of comm)\n",
				"", res.RemoteCommFraction()*100, res.ContentionShare()*100)
		}
	}
	fmt.Println("\nThe remote-browsers component is the paper's peer-to-peer gain: documents")
	fmt.Println("already evicted from the proxy but still held in other clients' browser caches.")
}
