package baps_test

import (
	"fmt"

	"baps"
)

// ExampleRun reproduces the paper's headline comparison on one synthetic
// trace: the browsers-aware proxy versus the conventional arrangement.
func ExampleRun() {
	tr, err := baps.GenerateTraceScaled("canet2", 0, 0.1)
	if err != nil {
		panic(err)
	}
	for _, org := range []baps.Organization{baps.ProxyAndLocalBrowser, baps.BrowsersAware} {
		res, err := baps.Run(tr, baps.DefaultSimConfig(org))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: hits+misses=%d (conservation %v)\n",
			org, res.Hits()+res.Misses, res.Check() == nil)
	}
	// Output:
	// proxy-and-local-browser: hits+misses=6000 (conservation true)
	// browsers-aware-proxy-server: hits+misses=6000 (conservation true)
}

// ExampleComputeStats derives the Table-1 statistics of a trace.
func ExampleComputeStats() {
	tr := &baps.Trace{
		Name:       "tiny",
		NumClients: 2,
		Requests: []baps.Request{
			{Time: 0, Client: 0, URL: "http://a/x", Size: 100},
			{Time: 1, Client: 1, URL: "http://a/x", Size: 100}, // shared re-request
			{Time: 2, Client: 0, URL: "http://a/y", Size: 300},
		},
	}
	st := baps.ComputeStats(tr)
	fmt.Printf("requests=%d unique=%d maxHR=%.2f shared=%d\n",
		st.NumRequests, st.UniqueDocs, st.MaxHitRatio, st.SharedRequests)
	// Output:
	// requests=3 unique=2 maxHR=0.33 shared=1
}

// ExampleGenerateTrace shows trace generation determinism: the same profile
// and seed always produce the same workload.
func ExampleGenerateTrace() {
	a, _ := baps.GenerateTraceScaled("bu-95", 0, 0.01)
	b, _ := baps.GenerateTraceScaled("bu-95", 0, 0.01)
	fmt.Println(len(a.Requests) == len(b.Requests) && a.Requests[0] == b.Requests[0])
	// Output:
	// true
}

// ExampleSweep runs the Figure-2-style sweep on one organization.
func ExampleSweep() {
	tr, _ := baps.GenerateTraceScaled("nlanr-bo1", 0, 0.02)
	sw, err := baps.Sweep(tr, []baps.Organization{baps.BrowsersAware},
		[]float64{0.01, 0.10}, baps.DefaultSimConfig(baps.BrowsersAware))
	if err != nil {
		panic(err)
	}
	rs := sw.ByOrg[baps.BrowsersAware]
	fmt.Println(len(rs) == 2 && rs[1].HitRatio() > rs[0].HitRatio())
	// Output:
	// true
}
