package baps

import (
	"math"
	"testing"

	"baps/internal/proxy"
	"baps/internal/synth"
)

// liveTrace builds a small sharing-rich trace suitable for HTTP replay.
func liveTrace(t *testing.T) *Trace {
	t.Helper()
	p := Profile{
		Name: "live-replay", Clients: 8, Requests: 1_200, DurationSec: 600,
		SharedDocs: 250, PrivateDocs: 30,
		SharedFraction: 0.75, ZipfAlpha: 0.8, PrivateZipfAlpha: 0.8,
		RecencyFraction: 0.2, RecencyWindow: 32, RecencyGeomP: 0.3,
		MeanDocKB: 6, SizeSigma: 1.0, MinDocBytes: 256, MaxDocBytes: 1 << 18,
		ModifyRate: 0.01, ClientZipfAlpha: 0.4, Seed: 2024,
	}
	tr, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestLiveReplayMatchesSimulator is the cross-validation of the repository's
// two halves: the live HTTP implementation and the trace-driven simulator
// implement the same §2 protocol on the same LRU substrate, so replaying
// one workload through both must produce closely matching hit ratios.
func TestLiveReplayMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("live replay drives ~1200 real HTTP requests")
	}
	res, err := LiveReplay(liveTrace(t), LiveReplayConfig{
		RelativeSize: 0.10,
		Forward:      proxy.FetchForward,
		Verify:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1_200 {
		t.Fatalf("replayed %d requests", res.Requests)
	}
	t.Logf("live: local=%d proxy=%d remote=%d miss=%d (HR %.4f) | sim HR %.4f | gap %+.4f",
		res.LiveLocalHits, res.LiveProxyHits, res.LiveRemoteHits, res.LiveMisses,
		res.LiveHitRatio(), res.Sim.HitRatio(), res.HitRatioGap())
	if gap := math.Abs(res.HitRatioGap()); gap > 0.02 {
		t.Errorf("live vs simulated hit ratio diverge by %.4f (>2%%)", gap)
	}
	// Component-level agreement: local hits are fully deterministic in
	// both implementations.
	simLocal := float64(res.Sim.LocalHits) / float64(res.Sim.Requests)
	liveLocal := float64(res.LiveLocalHits) / float64(res.Requests)
	if d := math.Abs(simLocal - liveLocal); d > 0.02 {
		t.Errorf("local-hit ratios diverge by %.4f", d)
	}
	if res.LiveRemoteHits == 0 {
		t.Error("live replay produced no peer-to-peer hits")
	}
	if res.ProxyStats.TamperRejected != 0 {
		t.Errorf("unexpected tamper rejections: %d", res.ProxyStats.TamperRejected)
	}
}

func TestLiveReplayOnionMode(t *testing.T) {
	if testing.Short() {
		t.Skip("live replay drives real HTTP requests")
	}
	tr := liveTrace(t)
	tr.Requests = tr.Requests[:400]
	res, err := LiveReplay(tr, LiveReplayConfig{
		RelativeSize: 0.10,
		Forward:      proxy.OnionForward,
		Verify:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LiveRemoteHits == 0 {
		t.Error("onion replay produced no peer hits")
	}
	if gap := math.Abs(res.HitRatioGap()); gap > 0.03 {
		t.Errorf("onion live vs sim hit ratio gap %.4f", gap)
	}
}

func TestFreezeSizes(t *testing.T) {
	tr := &Trace{Name: "f", NumClients: 1, Requests: []Request{
		{Time: 0, Client: 0, URL: "u", Size: 100},
		{Time: 1, Client: 0, URL: "u", Size: 200}, // modified → frozen back to 100
		{Time: 2, Client: 0, URL: "v", Size: 50},
	}}
	fz := freezeSizes(tr)
	if fz.Requests[1].Size != 100 || fz.Requests[0].Size != 100 || fz.Requests[2].Size != 50 {
		t.Fatalf("freeze wrong: %+v", fz.Requests)
	}
	// The original is untouched.
	if tr.Requests[1].Size != 200 {
		t.Fatal("freezeSizes mutated its input")
	}
}
