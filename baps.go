// Package baps is the public facade of the browsers-aware proxy server
// reproduction ("On Reliable and Scalable Peer-to-Peer Web Document
// Sharing", IPDPS 2002): one import that exposes the synthetic trace
// generator, the five-organization trace-driven simulator, the experiment
// drivers that regenerate every table and figure of the paper, and a helper
// to stand up the live HTTP system (origin + browsers-aware proxy + browser
// agents) in-process.
//
// Quick start:
//
//	tr, _ := baps.GenerateTrace("nlanr-uc", 0)
//	res, _ := baps.Run(tr, baps.DefaultSimConfig(baps.BrowsersAware))
//	fmt.Printf("hit ratio %.2f%%\n", res.HitRatio()*100)
//
// The experiment drivers (Table1, Figure2 … Figure8, MemoryStudyReport,
// OverheadReport, AblationReport) return printable tables/series; the
// bapsim command and the repository benchmarks are thin wrappers over them.
package baps

import (
	"baps/internal/core"
	"baps/internal/sim"
	"baps/internal/stats"
	"baps/internal/synth"
	"baps/internal/trace"
)

// Re-exported types: the library's public surface over the internal
// packages.
type (
	// Trace is an ordered web request trace.
	Trace = trace.Trace
	// Request is one trace record.
	Request = trace.Request
	// TraceStats summarizes a trace (the paper's Table 1 columns).
	TraceStats = trace.Stats
	// Profile parameterizes the synthetic trace generator.
	Profile = synth.Profile
	// Organization is one of the paper's five caching organizations.
	Organization = core.Organization
	// SimConfig parameterizes a simulation run.
	SimConfig = sim.Config
	// Result carries one run's metrics.
	Result = sim.Result
	// SweepResult carries a cache-size sweep.
	SweepResult = sim.SweepResult
	// ScalingResult carries the §4.4 client-scaling experiment.
	ScalingResult = sim.ScalingResult
	// MemoryStudyResult carries the §4.2 memory comparison.
	MemoryStudyResult = sim.MemoryStudyResult
	// Table is a printable text table.
	Table = stats.Table
	// Series is a printable figure (x axis + named lines).
	Series = stats.Series
)

// Sizing selects the browser-cache sizing rule.
type Sizing = sim.Sizing

// The browser-cache sizing rules of §4.
const (
	SizingMinimum   = sim.SizingMinimum
	SizingAverage   = sim.SizingAverage
	SizingPerClient = sim.SizingPerClient
)

// The five organizations, in the paper's order.
const (
	ProxyCacheOnly          = core.ProxyCacheOnly
	LocalBrowserCacheOnly   = core.LocalBrowserCacheOnly
	GlobalBrowsersCacheOnly = core.GlobalBrowsersCacheOnly
	ProxyAndLocalBrowser    = core.ProxyAndLocalBrowser
	BrowsersAware           = core.BrowsersAware
)

// Organizations lists all five organizations in the paper's order.
func Organizations() []Organization { return core.Organizations() }

// Profiles returns the five calibrated trace profiles in Table 1 order.
func Profiles() []Profile { return synth.Profiles() }

// ProfileNames returns the available profile names, sorted.
func ProfileNames() []string { return synth.ProfileNames() }

// GenerateTrace builds the synthetic trace for a named profile. A non-zero
// seed overrides the profile's calibrated seed (for replication studies);
// scale != 0 and != 1 scales the workload size proportionally.
func GenerateTrace(profile string, seed int64) (*Trace, error) {
	return GenerateTraceScaled(profile, seed, 1)
}

// GenerateTraceScaled is GenerateTrace with a workload scale factor.
func GenerateTraceScaled(profile string, seed int64, scale float64) (*Trace, error) {
	p, err := synth.ByName(profile)
	if err != nil {
		return nil, err
	}
	if seed != 0 {
		p.Seed = seed
	}
	if scale != 0 && scale != 1 {
		p = synth.Scaled(p, scale)
	}
	return synth.Generate(p)
}

// Generate builds a trace from an explicit profile.
func Generate(p Profile) (*Trace, error) { return synth.Generate(p) }

// ComputeStats derives Table 1 statistics from a trace.
func ComputeStats(tr *Trace) TraceStats { return trace.Compute(tr) }

// DefaultSimConfig returns the paper's simulator configuration for an
// organization (LRU, immediate index updates, fetch-forward, 1/10 proxy
// memory, average browser sizing at 10 % relative size).
func DefaultSimConfig(org Organization) SimConfig { return sim.DefaultConfig(org) }

// Run replays a trace through one configured organization.
func Run(tr *Trace, cfg SimConfig) (Result, error) { return sim.Run(tr, nil, cfg) }

// Sweep runs organizations across relative cache sizes (the Figures 2–7
// harness).
func Sweep(tr *Trace, orgs []Organization, sizes []float64, base SimConfig) (*SweepResult, error) {
	return sim.Sweep(tr, orgs, sizes, base)
}

// Scaling runs the §4.4 client-scaling experiment.
func Scaling(tr *Trace, fractions []float64, base SimConfig, seed int64) (*ScalingResult, error) {
	return sim.Scaling(tr, fractions, base, seed)
}

// MemoryStudy runs the §4.2 memory-byte-hit-ratio comparison; sizePALB == 0
// bisects for the byte-hit-matched proxy-and-local-browser size.
func MemoryStudy(tr *Trace, sizeBAPS, sizePALB float64, base SimConfig) (*MemoryStudyResult, error) {
	return sim.MemoryStudy(tr, sizeBAPS, sizePALB, base)
}

// PaperSizes is the relative cache-size sweep of Figures 2–7.
var PaperSizes = sim.PaperSizes

// PaperClientFractions is the §4.4 client-population sweep.
var PaperClientFractions = sim.PaperClientFractions
