package baps

import (
	"context"
	"fmt"
	"net/url"

	"baps/internal/browser"
	"baps/internal/core"
	"baps/internal/proxy"
	"baps/internal/sim"
	"baps/internal/trace"
)

// LiveReplayConfig parameterizes LiveReplay.
type LiveReplayConfig struct {
	// RelativeSize sizes the proxy cache as a fraction of the trace's
	// infinite cache size; browser caches follow the average sizing rule
	// at the same fraction (default 0.10).
	RelativeSize float64
	// Forward selects the live delivery mode (default FetchForward).
	Forward proxy.ForwardMode
	// KeyBits sizes the watermark key (default 1024 — replays are about
	// caching behaviour, not cryptographic margin).
	KeyBits int
	// Verify enables watermark verification at the agents (default on).
	Verify bool
}

// LiveReplayResult compares the live system against the simulator on the
// same frozen workload.
type LiveReplayResult struct {
	Requests int64

	// Live counters, classified exactly like the simulator's.
	LiveLocalHits  int64
	LiveProxyHits  int64
	LiveRemoteHits int64
	LiveMisses     int64

	// Sim is the simulator's prediction under the matched configuration.
	Sim Result

	ProxyStats ProxyStats
}

// LiveHitRatio is the live system's overall hit ratio.
func (r *LiveReplayResult) LiveHitRatio() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.LiveLocalHits+r.LiveProxyHits+r.LiveRemoteHits) / float64(r.Requests)
}

// HitRatioGap is live minus simulated hit ratio — the validation residual
// between the two implementations of the same protocol.
func (r *LiveReplayResult) HitRatioGap() float64 {
	return r.LiveHitRatio() - r.Sim.HitRatio()
}

// LiveReplay drives a trace through the *live* browsers-aware system — a
// real origin, proxy and one browser agent per client, all over loopback
// HTTP — and runs the trace-driven simulator under the matched
// configuration. Because both sides implement the same §2 protocol on the
// same LRU substrate, their hit ratios should agree closely; the result
// reports both, and the test suite asserts the residual.
//
// Document modifications are frozen to each URL's first observed size (the
// live system, like a real 2001 proxy, has no consistency mechanism, while
// the simulator applies §3.2 staleness — freezing removes the semantic
// difference so the comparison is exact). Keep the trace small: every
// client becomes a live HTTP agent and every request a real round trip.
func LiveReplay(tr *Trace, cfg LiveReplayConfig) (*LiveReplayResult, error) {
	if cfg.RelativeSize == 0 {
		cfg.RelativeSize = 0.10
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 1024
	}

	frozen := freezeSizes(tr)
	st := trace.Compute(frozen)

	proxyCap := int64(cfg.RelativeSize * float64(st.InfiniteCacheBytes))
	browserCap := int64(cfg.RelativeSize * float64(st.AvgClientInfiniteBytes()))

	pcfg := proxy.DefaultConfig()
	pcfg.CacheCapacity = proxyCap
	pcfg.KeyBits = cfg.KeyBits
	pcfg.Forward = cfg.Forward
	cluster, err := StartCluster(ClusterConfig{
		Agents: frozen.NumClients,
		Proxy:  pcfg,
		MutateAgent: func(i int, ac *AgentConfig) {
			ac.CacheCapacity = browserCap
			ac.MemFraction = 0.5
			ac.Verify = cfg.Verify
			ac.IndexMode = browser.Immediate
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	out := &LiveReplayResult{Requests: int64(len(frozen.Requests))}
	ctx := context.Background()
	for _, r := range frozen.Requests {
		liveURL := fmt.Sprintf("%s?size=%d", cluster.DocURL("/t/"+url.PathEscape(r.URL)), r.Size)
		_, src, err := cluster.Agents[r.Client].Get(ctx, liveURL)
		if err != nil {
			return nil, fmt.Errorf("baps: live replay: client %d, %s: %w", r.Client, r.URL, err)
		}
		switch src {
		case SourceLocal:
			out.LiveLocalHits++
		case SourceProxy:
			out.LiveProxyHits++
		case SourceRemote:
			out.LiveRemoteHits++
		default:
			out.LiveMisses++
		}
	}
	out.ProxyStats = cluster.Proxy.Snapshot()

	scfg := sim.DefaultConfig(BrowsersAware)
	scfg.RelativeSize = cfg.RelativeSize
	scfg.Sizing = sim.SizingAverage
	if cfg.Forward == proxy.FetchForward {
		scfg.ForwardMode = core.FetchForward
		scfg.ProxyCachesPeerDocs = true
	} else {
		// Direct and onion forwarding bypass the proxy cache.
		scfg.ForwardMode = core.DirectForward
		scfg.ProxyCachesPeerDocs = false
	}
	res, err := sim.Run(frozen, &st, scfg)
	if err != nil {
		return nil, err
	}
	out.Sim = res
	return out, nil
}

// freezeSizes pins every URL to its first observed size, removing origin
// modifications from the workload.
func freezeSizes(tr *Trace) *Trace {
	first := make(map[string]int64)
	out := &Trace{Name: tr.Name + "-frozen", NumClients: tr.NumClients}
	out.Requests = make([]Request, len(tr.Requests))
	for i, r := range tr.Requests {
		if s, ok := first[r.URL]; ok {
			r.Size = s
		} else {
			first[r.URL] = r.Size
		}
		out.Requests[i] = r
	}
	return out
}
