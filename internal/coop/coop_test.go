package coop

import (
	"testing"
	"testing/quick"

	"baps/internal/cache"
	"baps/internal/synth"
	"baps/internal/trace"
)

func testConfig(clients int, proxyCap, browserCap int64, m int) Config {
	caps := make([]int64, clients)
	for i := range caps {
		caps[i] = browserCap
	}
	return Config{
		NumProxies:            m,
		TotalProxyCapacity:    proxyCap,
		BrowserCapacity:       caps,
		Policy:                cache.LRU,
		MemFraction:           0.1,
		SummaryCountersPerDoc: 16,
		SummaryThreshold:      0.05,
	}
}

func req(tm float64, c int, url string, size int64) trace.Request {
	return trace.Request{Time: tm, Client: c, URL: url, Size: size}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.NumProxies = 0 },
		func(c *Config) { c.TotalProxyCapacity = -1 },
		func(c *Config) { c.BrowserCapacity = nil },
		func(c *Config) { c.MemFraction = 0 },
		func(c *Config) { c.SummaryCountersPerDoc = 0 },
		func(c *Config) { c.SummaryThreshold = 0 },
		func(c *Config) { c.SummaryThreshold = 1.5 },
	}
	for i, mut := range muts {
		cfg := testConfig(4, 1000, 100, 2)
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestBasicFlow(t *testing.T) {
	s, err := New(testConfig(4, 100_000, 10_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Client 0 (proxy 0) fetches: miss.
	s.Access(req(0, 0, "u", 1000))
	// Client 0 again: local browser hit.
	s.Access(req(1, 0, "u", 1000))
	// Client 2 (also proxy 0): own-proxy hit.
	s.Access(req(2, 2, "u", 1000))
	// Client 1 (proxy 1): sibling hit via proxy 0's summary.
	s.Access(req(3, 1, "u", 1000))
	r := s.res
	if r.Misses != 1 || r.LocalHits != 1 || r.OwnHits != 1 || r.SiblingHits != 1 {
		t.Fatalf("flow wrong: %+v", r)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
	// After the sibling fetch, proxy 1 has its own copy (ICP behaviour):
	// client 3 (proxy 1) gets an own-proxy hit… via its browser? client 3
	// hasn't seen it, so own proxy.
	s.Access(req(4, 3, "u", 1000))
	if s.res.OwnHits != 2 {
		t.Fatalf("ICP copy not cached at fetching proxy: %+v", s.res)
	}
}

func TestSummaryStaleness(t *testing.T) {
	cfg := testConfig(2, 10_000 /* both docs fit per proxy */, 100, 2)
	cfg.SummaryThreshold = 1.0 // republish only after everything changed
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Client 0 fetches u (proxy 0 caches; its published summary still
	// empty because republish threshold is high… but the first insert
	// into a 1-doc cache crosses threshold 1.0: changes=1 ≥ 1.0×1). Use a
	// second doc to create staleness instead.
	s.Access(req(0, 0, "u", 1000)) // may republish
	s.Access(req(1, 0, "v", 1000)) // pending change (changes=1 < 1.0×2)
	// Client 1 (proxy 1) asks for v: proxy 0 HAS v, but its published
	// summary predates it → missed sibling hit.
	s.Access(req(2, 1, "v", 1000))
	if s.res.SiblingHits != 0 {
		t.Fatalf("stale summary should hide v: %+v", s.res)
	}
	if s.res.MissedSiblingHits != 1 {
		t.Fatalf("missed sibling hit not accounted: %+v", s.res)
	}
}

func TestSingleProxyDegeneratesToNoSiblings(t *testing.T) {
	s, err := New(testConfig(3, 50_000, 1_000, 1))
	if err != nil {
		t.Fatal(err)
	}
	s.Access(req(0, 0, "u", 500))
	s.Access(req(1, 1, "u", 500))
	if s.res.SiblingHits != 0 || s.res.OwnHits != 1 {
		t.Fatalf("M=1: %+v", s.res)
	}
}

func TestModifiedDocIsMiss(t *testing.T) {
	s, err := New(testConfig(2, 50_000, 10_000, 2))
	if err != nil {
		t.Fatal(err)
	}
	s.Access(req(0, 0, "u", 500))
	s.Access(req(1, 0, "u", 900)) // modified: both browser and proxy copies stale
	if s.res.Misses != 2 {
		t.Fatalf("stale copies served: %+v", s.res)
	}
}

func TestRunOnSyntheticTrace(t *testing.T) {
	p := synth.Profile{
		Name: "coop-test", Clients: 12, Requests: 6_000, DurationSec: 600,
		SharedDocs: 1_000, PrivateDocs: 60,
		SharedFraction: 0.7, ZipfAlpha: 0.8, PrivateZipfAlpha: 0.8,
		RecencyFraction: 0.2, RecencyWindow: 32, RecencyGeomP: 0.3,
		MeanDocKB: 6, SizeSigma: 1.2, MinDocBytes: 128, MaxDocBytes: 1 << 19,
		ModifyRate: 0.01, ClientZipfAlpha: 0.3, Seed: 99,
	}
	tr, err := synth.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Compute(tr)
	cfg := testConfig(12, int64(0.1*float64(st.InfiniteCacheBytes)),
		int64(0.1*float64(st.AvgClientInfiniteBytes())), 4)
	res, err := Run(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio() <= 0 || res.HitRatio() > st.MaxHitRatio+1e-9 {
		t.Fatalf("hit ratio %.4f implausible (ceiling %.4f)", res.HitRatio(), st.MaxHitRatio)
	}
	if res.SiblingHits == 0 {
		t.Error("no cooperative hits on a sharing-rich trace")
	}
	if res.SummaryRepublished == 0 {
		t.Error("summaries never republished")
	}
}

// TestQuickConservation: invariants hold across random small workloads and
// cluster shapes.
func TestQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		u := seed
		if u < 0 {
			u = -u
		}
		p := synth.Profile{
			Name: "q", Clients: int(u%5) + 2, Requests: 1_000, DurationSec: 100,
			SharedDocs: 200, PrivateDocs: 20,
			SharedFraction: 0.7, ZipfAlpha: 0.8, PrivateZipfAlpha: 0.8,
			RecencyFraction: 0.1, RecencyWindow: 16, RecencyGeomP: 0.3,
			MeanDocKB: 4, SizeSigma: 1.0, MinDocBytes: 64, MaxDocBytes: 1 << 18,
			ModifyRate: 0.03, ClientZipfAlpha: 0.2, Seed: seed,
		}
		tr, err := synth.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig(p.Clients, 200_000, 20_000, int(u%3)+1)
		res, err := Run(tr, cfg)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if err := res.Check(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if res.ByteHitRatio() < 0 || res.ByteHitRatio() > 1 {
			t.Errorf("seed %d: byte HR %g", seed, res.ByteHitRatio())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
