// Package coop implements the conventional alternative the paper positions
// itself against (§1: on a proxy miss "the proxy server will immediately
// send the request to its cooperative caches, if any"): a cluster of sibling
// proxies sharing their contents via Summary-Cache-style compressed
// summaries (Fan et al., SIGCOMM 1998 — the paper's reference [4]).
//
// Clients are partitioned across M sibling proxies. Each proxy publishes a
// counting-Bloom summary of its cache to its siblings, republished only
// after a threshold fraction of its content has changed (the delay that
// makes Summary Cache scale). A request flows browser → own proxy → sibling
// proxies (probed only when a summary claims the document, so stale
// summaries cost false probes or missed hits) → origin.
//
// The package exists as a baseline: comparing it against the browsers-aware
// proxy at equal total cache hardware isolates the paper's actual
// contribution — sharing the *browser* caches instead of adding more proxy
// machinery.
package coop

import (
	"fmt"

	"baps/internal/bloom"
	"baps/internal/cache"
	"baps/internal/stats"
	"baps/internal/trace"
)

// Config assembles a cooperative-proxy cluster simulation.
type Config struct {
	// NumProxies is the number of sibling proxies (M ≥ 1).
	NumProxies int
	// TotalProxyCapacity is split evenly across the siblings, so the
	// cluster's aggregate proxy hardware matches a single-proxy setup.
	TotalProxyCapacity int64
	// BrowserCapacity holds per-client browser cache sizes (clients are
	// assigned to proxies round-robin: client i → proxy i mod M).
	BrowserCapacity []int64
	// Policy is the replacement policy for all caches.
	Policy cache.Policy
	// MemFraction is the memory tier share.
	MemFraction float64
	// SummaryCountersPerDoc sizes each proxy's Bloom summary (Summary
	// Cache recommends ≈16 counters per cached document).
	SummaryCountersPerDoc int
	// SummaryThreshold is the changed fraction of a proxy's cache that
	// triggers republishing its summary to siblings (Fan et al. studied
	// 1–10 %).
	SummaryThreshold float64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NumProxies < 1 {
		return fmt.Errorf("coop: NumProxies must be >= 1")
	}
	if c.TotalProxyCapacity < 0 {
		return fmt.Errorf("coop: negative proxy capacity")
	}
	if len(c.BrowserCapacity) == 0 {
		return fmt.Errorf("coop: no clients")
	}
	if c.MemFraction <= 0 || c.MemFraction > 1 {
		return fmt.Errorf("coop: MemFraction %g out of (0,1]", c.MemFraction)
	}
	if c.SummaryCountersPerDoc < 1 {
		return fmt.Errorf("coop: SummaryCountersPerDoc must be >= 1")
	}
	if c.SummaryThreshold <= 0 || c.SummaryThreshold > 1 {
		return fmt.Errorf("coop: SummaryThreshold %g out of (0,1]", c.SummaryThreshold)
	}
	return nil
}

// Result carries the cooperative cluster's metrics.
type Result struct {
	Requests   int64
	TotalBytes int64

	LocalHits   int64 // requester's browser
	OwnHits     int64 // the client's own proxy
	SiblingHits int64 // a sibling proxy, found via summaries
	Misses      int64

	LocalBytes, OwnBytes, SiblingBytes int64

	// FalseProbes counts sibling contacts whose summary was stale or a
	// Bloom false positive; MissedSiblingHits counts documents a sibling
	// actually held while every published summary denied it (stale the
	// other way).
	FalseProbes       int64
	MissedSiblingHits int64
	// SummaryRepublished counts summary broadcasts.
	SummaryRepublished int64
	// SummaryBytes is the steady-state size of all summaries a proxy
	// stores (M−1 sibling summaries each).
	SummaryBytes int64
}

// HitRatio is total hits over requests.
func (r *Result) HitRatio() float64 {
	return stats.Ratio(float64(r.LocalHits+r.OwnHits+r.SiblingHits), float64(r.Requests))
}

// ByteHitRatio is hit bytes over requested bytes.
func (r *Result) ByteHitRatio() float64 {
	return stats.Ratio(float64(r.LocalBytes+r.OwnBytes+r.SiblingBytes), float64(r.TotalBytes))
}

// SiblingHitRatio is the cooperative component.
func (r *Result) SiblingHitRatio() float64 {
	return stats.Ratio(float64(r.SiblingHits), float64(r.Requests))
}

// Check verifies conservation invariants.
func (r *Result) Check() error {
	if r.LocalHits+r.OwnHits+r.SiblingHits+r.Misses != r.Requests {
		return fmt.Errorf("coop: hit classes don't sum to requests")
	}
	if hr := r.HitRatio(); hr < 0 || hr > 1 {
		return fmt.Errorf("coop: hit ratio %g out of range", hr)
	}
	return nil
}

// proxyNode is one sibling: its cache plus the summary it last published.
type proxyNode struct {
	cache     *cache.TwoTier
	summary   *bloom.Counting // live view of own contents
	published *bloom.Counting // what siblings currently see
	changes   int
}

// System is a cooperative-proxy cluster processing a request stream.
type System struct {
	cfg      Config
	browsers []*cache.TwoTier
	proxies  []*proxyNode
	res      Result
}

// New builds a cluster.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	per := cfg.TotalProxyCapacity / int64(cfg.NumProxies)
	// Summary sizing: expected docs per proxy ≈ capacity / 8 KB.
	expDocs := per/8192 + 16
	counters := uint64(int64(cfg.SummaryCountersPerDoc) * expDocs)
	for i := 0; i < cfg.NumProxies; i++ {
		pc, err := cache.NewTwoTier(cfg.Policy, per, int64(float64(per)*cfg.MemFraction))
		if err != nil {
			return nil, err
		}
		live, err := bloom.NewCounting(counters, 4)
		if err != nil {
			return nil, err
		}
		pub, err := bloom.NewCounting(counters, 4)
		if err != nil {
			return nil, err
		}
		s.proxies = append(s.proxies, &proxyNode{cache: pc, summary: live, published: pub})
	}
	for i, capBytes := range cfg.BrowserCapacity {
		bc, err := cache.NewTwoTier(cfg.Policy, capBytes, int64(float64(capBytes)*cfg.MemFraction))
		if err != nil {
			return nil, fmt.Errorf("coop: browser %d: %w", i, err)
		}
		s.browsers = append(s.browsers, bc)
	}
	s.res.SummaryBytes = int64(cfg.NumProxies) * int64(counters)
	return s, nil
}

// proxyOf maps a client to its proxy.
func (s *System) proxyOf(client int) int { return client % s.cfg.NumProxies }

// putProxy inserts into a proxy cache, maintaining its live summary and the
// republish threshold.
func (s *System) putProxy(pi int, doc cache.Doc) {
	p := s.proxies[pi]
	had := false
	if _, ok := p.cache.Peek(doc.Key); ok {
		had = true
	}
	evicted, admitted := p.cache.Put(doc)
	if admitted && !had {
		p.summary.Add(doc.Key)
		p.changes++
	}
	for _, d := range evicted {
		p.summary.Remove(d.Key)
		p.changes++
	}
	if float64(p.changes) >= s.cfg.SummaryThreshold*float64(max(p.cache.Len(), 1)) {
		s.republish(pi)
	}
}

// republish snapshots the proxy's live summary for its siblings.
func (s *System) republish(pi int) {
	p := s.proxies[pi]
	p.published.Reset()
	for _, key := range p.cache.Keys() {
		p.published.Add(key)
	}
	p.changes = 0
	s.res.SummaryRepublished++
}

// Access resolves one request.
func (s *System) Access(r trace.Request) {
	s.res.Requests++
	s.res.TotalBytes += r.Size

	// 1. Browser cache.
	b := s.browsers[r.Client]
	if doc, _, ok := b.GetTier(r.URL); ok {
		if doc.Size == r.Size {
			s.res.LocalHits++
			s.res.LocalBytes += r.Size
			return
		}
		b.Remove(r.URL)
	}
	deliver := func() {
		b.Put(cache.Doc{Key: r.URL, Size: r.Size})
	}

	// 2. Own proxy.
	own := s.proxyOf(r.Client)
	if doc, _, ok := s.proxies[own].cache.GetTier(r.URL); ok {
		if doc.Size == r.Size {
			s.res.OwnHits++
			s.res.OwnBytes += r.Size
			deliver()
			return
		}
		s.proxies[own].cache.Remove(r.URL)
		s.proxies[own].summary.Remove(r.URL)
		s.proxies[own].changes++
	}

	// 3. Siblings, guided by their *published* summaries.
	holder := -1
	for j := range s.proxies {
		if j == own {
			continue
		}
		if !s.proxies[j].published.Contains(r.URL) {
			continue
		}
		doc, _, ok := s.proxies[j].cache.GetTier(r.URL)
		if ok && doc.Size == r.Size {
			holder = j
			break
		}
		s.res.FalseProbes++ // summary claimed it; contact was wasted
	}
	if holder >= 0 {
		s.res.SiblingHits++
		s.res.SiblingBytes += r.Size
		// ICP behaviour: the fetching proxy caches the sibling's copy.
		s.putProxy(own, cache.Doc{Key: r.URL, Size: r.Size})
		deliver()
		return
	}
	// Account missed opportunities: a sibling held it but no published
	// summary admitted it.
	for j := range s.proxies {
		if j == own {
			continue
		}
		if doc, ok := s.proxies[j].cache.Peek(r.URL); ok && doc.Size == r.Size {
			s.res.MissedSiblingHits++
			break
		}
	}

	// 4. Origin.
	s.res.Misses++
	s.putProxy(own, cache.Doc{Key: r.URL, Size: r.Size})
	deliver()
}

// Run replays a whole trace and returns the metrics.
func Run(tr *trace.Trace, cfg Config) (Result, error) {
	s, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	for _, r := range tr.Requests {
		s.Access(r)
	}
	if err := s.res.Check(); err != nil {
		return Result{}, err
	}
	return s.res, nil
}
