package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"testing"
	"time"

	"baps/internal/browser"
	"baps/internal/proxy"
)

// restartProxyConfig shapes a proxy whose memory tier holds only a handful
// of documents, so the bulk of the working set lives (journaled) on disk —
// the configuration under which a SIGKILL has something real to lose.
func restartProxyConfig(dir string) proxy.Config {
	cfg := proxy.DefaultConfig()
	cfg.KeyBits = 1024
	cfg.CacheCapacity = 2 << 20
	cfg.MemFraction = 0.03 // ~7 docs of 8 KB in memory, the rest on disk
	cfg.DataDir = dir
	cfg.StateSaveEvery = 100 * time.Millisecond
	cfg.HeartbeatTimeout = 0
	cfg.PeerTimeout = 2 * time.Second
	cfg.PeerSoftDeadline = 250 * time.Millisecond
	return cfg
}

// proxyFetch resolves u through the proxy's /fetch over plain HTTP (no
// browser cache in the way), so the proxy-side hit ratio is what's measured.
func proxyFetch(t *testing.T, base, u string) {
	t.Helper()
	resp, err := http.Get(base + "/fetch?url=" + url.QueryEscape(u))
	if err != nil {
		t.Fatalf("fetch %s: %v", u, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s: status %d", u, resp.StatusCode)
	}
}

// TestProxyKillRestartUnderChurn is the crash-recovery headline: a 10-agent
// cluster loses 30% of its peers, then the proxy itself is SIGKILLed
// mid-workload (no flush, no goodbye) and restarted on the same address.
// The restarted proxy must warm-start from its disk journal: hit ratio over
// the recovery window >= 90% of the steady-state window, origin traffic
// <= 2x the steady-state window (no thundering herd), client registrations
// and counters re-seated, and surviving agents never re-register.
func TestProxyKillRestartUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	const n = 10
	dir := t.TempDir()
	c, err := NewChurnCluster(n, restartProxyConfig(dir), func(ac *browser.Config) {
		ac.HeartbeatInterval = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	base := c.Proxy.BaseURL()

	docs := make([]string, 50)
	for i := range docs {
		docs[i] = c.DocURL(fmt.Sprintf("/doc%02d", i), 8000)
	}
	// window drives one measurement pass: every working-set document twice
	// (back-to-back access admits it past the spill filter) plus `fresh`
	// never-seen one-offs, so the steady state keeps a nonzero origin rate
	// to compare the recovery window against.
	window := func(tag string) {
		for _, u := range docs {
			proxyFetch(t, base, u)
			proxyFetch(t, base, u)
		}
		for i := 0; i < 10; i++ {
			proxyFetch(t, base, c.DocURL(fmt.Sprintf("/%s-one-off%d", tag, i), 8000))
		}
	}

	window("cold") // populate: misses + admissions, demotions spill to disk

	// Steady-state measurement window.
	pre := c.Proxy.Snapshot()
	window("steady")
	mid := c.Proxy.Snapshot()
	steadyReqs := mid.Requests - pre.Requests
	steadyHits := mid.ProxyHits - pre.ProxyHits
	steadyOrigin := mid.OriginFetches - pre.OriginFetches
	steadyRatio := float64(steadyHits) / float64(steadyReqs)
	if steadyRatio < 0.8 {
		t.Fatalf("steady-state hit ratio %.2f too low for the test to mean anything", steadyRatio)
	}

	// 30% churn: three peers die abruptly. The proxy only learns through
	// failed contact; their registrations are still in the persisted state.
	for i := 0; i < 3; i++ {
		c.KillAgent(i)
	}
	// Let the interval fsync and the state-save loop land, then SIGKILL.
	time.Sleep(500 * time.Millisecond)
	if err := c.RestartProxy(false); err != nil {
		t.Fatal(err)
	}
	base = c.Proxy.BaseURL()

	st := c.Proxy.Snapshot()
	if st.RestoredDocs < 40 {
		t.Fatalf("restored_docs=%d, want >=40 of the 50-doc working set", st.RestoredDocs)
	}
	if st.Clients != n {
		t.Fatalf("restored clients=%d, want %d", st.Clients, n)
	}
	if st.Requests < steadyReqs {
		t.Fatalf("restored request counter %d lost the pre-kill history (>=%d expected)", st.Requests, steadyReqs)
	}

	// Recovery measurement window, same shape as the steady one.
	pre = c.Proxy.Snapshot()
	window("recovery")
	post := c.Proxy.Snapshot()
	recReqs := post.Requests - pre.Requests
	recHits := post.ProxyHits - pre.ProxyHits
	recOrigin := post.OriginFetches - pre.OriginFetches
	recRatio := float64(recHits) / float64(recReqs)
	t.Logf("steady: ratio=%.3f origin=%d | recovery: ratio=%.3f origin=%d | restored=%d disk_hits=%d",
		steadyRatio, steadyOrigin, recRatio, recOrigin, st.RestoredDocs, post.DiskHits)
	if recRatio < 0.9*steadyRatio {
		t.Fatalf("recovery hit ratio %.3f < 90%% of steady %.3f", recRatio, steadyRatio)
	}
	if recOrigin > 2*steadyOrigin {
		t.Fatalf("recovery origin fetches %d > 2x steady %d (thundering herd)", recOrigin, steadyOrigin)
	}
	if post.DiskHits == 0 {
		t.Fatal("recovery window never touched the disk tier")
	}
	if post.RestartToWarmSec <= 0 {
		t.Fatal("restart_to_warm_sec still zero after the recovery window")
	}

	// A surviving agent keeps working against the restarted proxy without
	// re-registering: its restored token authenticates, and the startup
	// resync re-learns directories from live peers.
	if _, _, err := c.Agents[9].Get(ctx, c.DocURL("/post-restart", 8000)); err != nil {
		t.Fatalf("surviving agent against restarted proxy: %v", err)
	}
}
