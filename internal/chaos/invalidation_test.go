package chaos

import (
	"io"
	"net/http"
	"net/url"
	"strconv"
	"testing"
	"time"

	"baps/internal/proxy"
)

// fetchVersion issues one /fetch through the given proxy and returns the
// served document version.
func (fc *fedCluster) fetchVersion(t *testing.T, node, docURL string) int64 {
	t.Helper()
	resp, err := fc.client.Get(node + "/fetch?url=" + url.QueryEscape(docURL))
	if err != nil {
		t.Fatalf("fetch %s via %s: %v", docURL, node, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s via %s: status %d", docURL, node, resp.StatusCode)
	}
	v, _ := strconv.ParseInt(resp.Header.Get(proxy.HeaderVersion), 10, 64)
	return v
}

// TestInvalidationSurvivesSiblingKill SIGKILLs a federation sibling while
// the background pipeline is fanning invalidations out to it. The acceptance
// claim: the workqueue must not wedge — the undeliverable sibling jobs
// exhaust their retries into the dead-letter counter, the queue drains back
// to empty, revalidation keeps running, and the survivor still shuts down
// promptly.
func TestInvalidationSurvivesSiblingKill(t *testing.T) {
	if testing.Short() {
		t.Skip("invalidation chaos test skipped in -short")
	}
	fc := newFedCluster(t, 2, func(c *proxy.Config) {
		c.DigestInterval = 100 * time.Millisecond
		c.RevalidateAfter = 200 * time.Millisecond
		c.RevalidateEvery = 75 * time.Millisecond
		// Fail fast against the corpse: short attempts, two tries, then
		// dead-letter. Without these a dead sibling would pin a worker for
		// the full PeerTimeout per retry.
		c.QueueJobTimeout = 300 * time.Millisecond
		c.QueueRetryBackoff = 100 * time.Millisecond
		c.QueueMaxAttempts = 2
	})
	alive, dead := fc.proxies[0], fc.proxies[1]
	docURL := fc.originURL + "/doc/churn"

	// Both proxies cache the document, then wait until each has pushed a
	// digest covering it — the sibling fan-out only targets siblings whose
	// digest may hold the URL.
	if v := fc.fetchVersion(t, alive.BaseURL(), docURL); v != 0 {
		t.Fatalf("initial version via alive = %d, want 0", v)
	}
	fc.fetchVersion(t, dead.BaseURL(), docURL)
	digestsBefore := alive.Snapshot().DigestsReceived
	deadline := time.Now().Add(5 * time.Second)
	for alive.Snapshot().DigestsReceived < digestsBefore+2 {
		if time.Now().After(deadline) {
			t.Fatal("alive proxy never received post-cache digests from sibling")
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Kill the sibling hard (listener gone, queue killed, nothing drains),
	// then modify the document. The survivor's revalidator finds the new
	// version and enqueues a sibling invalidation that can only fail.
	dead.Crash()
	fc.origin.Modify("/doc/churn")

	deadline = time.Now().Add(10 * time.Second)
	for {
		st := alive.Snapshot()
		if st.Workqueue != nil && st.Workqueue.DeadLettered >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sibling invalidation never dead-lettered: %+v", st.Workqueue)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The queue must drain back to empty — a wedged worker would hold
	// Running or Depth above zero forever.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st := alive.Snapshot().Workqueue
		if st != nil && st.Depth == 0 && st.Running == 0 && st.Waiting == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workqueue never drained after sibling death: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Not wedged: the survivor serves the refreshed copy from cache, and a
	// second modification round-trips through the pipeline too.
	if v := fc.fetchVersion(t, alive.BaseURL(), docURL); v != 1 {
		t.Fatalf("post-kill version via alive = %d, want 1 (revalidated)", v)
	}
	changedBefore := alive.Snapshot().RevalidationsChanged
	fc.origin.Modify("/doc/churn")
	deadline = time.Now().Add(10 * time.Second)
	for alive.Snapshot().RevalidationsChanged <= changedBefore {
		if time.Now().After(deadline) {
			t.Fatal("pipeline stopped revalidating after sibling death")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if v := fc.fetchVersion(t, alive.BaseURL(), docURL); v != 2 {
		t.Fatalf("second-round version via alive = %d, want 2", v)
	}

	// Graceful drain stays prompt: Close must not wait out retries against
	// the corpse. (The t.Cleanup Close on an already-closed proxy is a
	// no-op.)
	start := time.Now()
	alive.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("survivor Close took %v; queue drain is wedged", d)
	}
}

// TestInvalidationChurnUnderLoad runs modification churn against a live
// 2-proxy cluster with the pipeline enabled and checks the end state every
// copy converges to: after the churn stops and the revalidation window
// passes, both proxies serve the final version with no origin trip on the
// client path.
func TestInvalidationChurnUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("invalidation churn test skipped in -short")
	}
	fc := newFedCluster(t, 2, func(c *proxy.Config) {
		c.DigestInterval = 100 * time.Millisecond
		c.RevalidateAfter = 150 * time.Millisecond
		c.RevalidateEvery = 50 * time.Millisecond
	})
	const rounds = 5
	docURL := fc.originURL + "/doc/hot"
	for _, p := range fc.proxies {
		fc.fetchVersion(t, p.BaseURL(), docURL)
	}
	for r := 1; r <= rounds; r++ {
		fc.origin.Modify("/doc/hot")
		// Keep the document hot on both proxies while the pipeline chases
		// the new version.
		for i := 0; i < 10; i++ {
			for _, p := range fc.proxies {
				fc.fetchVersion(t, p.BaseURL(), docURL)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		for _, p := range fc.proxies {
			if v := fc.fetchVersion(t, p.BaseURL(), docURL); v != rounds {
				converged = false
			}
		}
		if converged {
			break
		}
		if time.Now().After(deadline) {
			for i, p := range fc.proxies {
				t.Logf("proxy %d: version %d", i, fc.fetchVersion(t, p.BaseURL(), docURL))
			}
			t.Fatalf("cluster never converged to version %d", rounds)
		}
		time.Sleep(50 * time.Millisecond)
	}
	for i, p := range fc.proxies {
		st := p.Snapshot()
		if st.Revalidations == 0 {
			t.Errorf("proxy %d: no revalidations ran", i)
		}
		if st.Workqueue == nil || st.Workqueue.Submitted == 0 {
			t.Errorf("proxy %d: workqueue saw no jobs", i)
		}
	}
}
