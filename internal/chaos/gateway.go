package chaos

import (
	"io"
	"net"
	"net/http"
	"sync"
	"time"
)

// Gateway fronts one browser agent's peer server with a fault-injecting
// reverse proxy. The agent registers the gateway's URL with the proxy
// (browser.Config.AdvertisePeerURL), so every proxy→peer request crosses
// the gateway and can be crashed, stalled, or corrupted at will — without
// tearing down the agent itself. That makes "the peer crashed and later
// came back at the same identity" a one-line operation: SetFault(FaultDown)
// … SetFault(FaultNone).
type Gateway struct {
	ln  net.Listener
	srv *http.Server

	mu      sync.Mutex
	backend string
	fault   Fault
	stall   time.Duration

	client *http.Client
}

// NewGateway starts a gateway on a loopback port. The backend is set later
// (the fronted agent usually starts after the gateway, since it needs the
// gateway's URL to register).
func NewGateway() (*Gateway, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		ln:     ln,
		client: &http.Client{Timeout: 30 * time.Second},
	}
	g.srv = &http.Server{Handler: http.HandlerFunc(g.serve)}
	go g.srv.Serve(ln)
	return g, nil
}

// URL is the gateway's base URL (what the agent advertises to the proxy).
func (g *Gateway) URL() string { return "http://" + g.ln.Addr().String() }

// SetBackend points the gateway at the fronted peer server.
func (g *Gateway) SetBackend(baseURL string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.backend = baseURL
}

// SetFault switches the gateway's failure mode.
func (g *Gateway) SetFault(f Fault) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.fault = f
}

// SetStall sets the FaultStall delay (default: hold until the caller gives
// up).
func (g *Gateway) SetStall(d time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stall = d
}

// Fault reports the current failure mode.
func (g *Gateway) Fault() Fault {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fault
}

// Close shuts the gateway down.
func (g *Gateway) Close() error { return g.srv.Close() }

func (g *Gateway) serve(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	backend, fault, stall := g.backend, g.fault, g.stall
	g.mu.Unlock()

	switch fault {
	case FaultDown:
		// Abort the connection with no HTTP response — to the proxy this
		// is indistinguishable from a crashed peer process.
		panic(http.ErrAbortHandler)
	case FaultStall:
		if stall <= 0 {
			// Hold forever (until the caller's deadline fires).
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		select {
		case <-time.After(stall):
		case <-r.Context().Done():
			panic(http.ErrAbortHandler)
		}
	}
	if backend == "" {
		http.Error(w, "chaos: gateway has no backend", http.StatusBadGateway)
		return
	}

	req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, "chaos: bad gateway request", http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := g.client.Do(req)
	if err != nil {
		// Backend gone (e.g. the agent was killed for real).
		panic(http.ErrAbortHandler)
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if fault == FaultCorrupt {
		io.Copy(w, &corruptingReader{rc: resp.Body})
		return
	}
	io.Copy(w, resp.Body)
}
