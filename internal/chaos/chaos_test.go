package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"baps/internal/proxy"
)

func TestInjectorDeterministic(t *testing.T) {
	a, b := NewInjector(7), NewInjector(7)
	a.Probabilities(0.3, 0.2, 0.1)
	b.Probabilities(0.3, 0.2, 0.1)
	for i := 0; i < 200; i++ {
		if fa, fb := a.Next(), b.Next(); fa != fb {
			t.Fatalf("draw %d: %v != %v (same seed must give same schedule)", i, fa, fb)
		}
	}
	c := NewInjector(8)
	c.Probabilities(0.3, 0.2, 0.1)
	diverged := false
	d := NewInjector(7)
	d.Probabilities(0.3, 0.2, 0.1)
	for i := 0; i < 200; i++ {
		if c.Next() != d.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical 200-draw schedules")
	}
}

func TestInjectorForcedScheduleFirst(t *testing.T) {
	in := NewInjector(1)
	in.Force(FaultDown, FaultCorrupt)
	if f := in.Next(); f != FaultDown {
		t.Fatalf("first forced fault = %v", f)
	}
	if f := in.Next(); f != FaultCorrupt {
		t.Fatalf("second forced fault = %v", f)
	}
	// No probabilities configured: the rest of the schedule is clean.
	for i := 0; i < 50; i++ {
		if f := in.Next(); f != FaultNone {
			t.Fatalf("draw %d after forced schedule = %v, want none", i, f)
		}
	}
}

func TestCorruptingReaderFlipsBytes(t *testing.T) {
	orig := make([]byte, 300)
	for i := range orig {
		orig[i] = byte(i)
	}
	cp := append([]byte(nil), orig...)
	CorruptBody(cp)
	if string(cp) == string(orig) {
		t.Fatal("CorruptBody changed nothing")
	}
	diff := 0
	for i := range orig {
		if cp[i] != orig[i] {
			diff++
		}
	}
	if want := (len(orig) + corruptStride - 1) / corruptStride; diff != want {
		t.Fatalf("corrupted %d bytes, want %d", diff, want)
	}
}

// TestTransportDropRetried proves the proxy's retry/backoff path end to end:
// a fault-injecting transport drops the first origin connection, the
// retry succeeds, the client never sees the failure.
func TestTransportDropRetried(t *testing.T) {
	originTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("retried body"))
	}))
	defer originTS.Close()

	in := NewInjector(3)
	in.Force(FaultDown)
	cfg := proxy.DefaultConfig()
	cfg.KeyBits = 1024
	cfg.OriginRetries = 2
	cfg.RetryBaseDelay = 10 * time.Millisecond
	cfg.Transport = &RoundTripper{Injector: in}
	s, err := proxy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + url.QueryEscape(originTS.URL+"/doc"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "retried body" {
		t.Fatalf("status %d body %q after injected drop", resp.StatusCode, body)
	}
	if st := s.Snapshot(); st.OriginRetries < 1 {
		t.Fatalf("retries not recorded: %+v", st)
	}
}

// TestTransportDropExhaustsRetries: a schedule longer than the retry budget
// surfaces as 502 — the proxy gives up rather than looping forever.
func TestTransportDropExhaustsRetries(t *testing.T) {
	originTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("never seen"))
	}))
	defer originTS.Close()

	in := NewInjector(3)
	in.Force(FaultDown, FaultDown, FaultDown)
	cfg := proxy.DefaultConfig()
	cfg.KeyBits = 1024
	cfg.OriginRetries = 2
	cfg.RetryBaseDelay = 5 * time.Millisecond
	cfg.Transport = &RoundTripper{Injector: in}
	s, err := proxy.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + url.QueryEscape(originTS.URL+"/doc"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 after exhausted retries", resp.StatusCode)
	}
	if st := s.Snapshot(); st.OriginRetries != 2 {
		t.Fatalf("retries = %d, want 2: %+v", st.OriginRetries, st)
	}
}
