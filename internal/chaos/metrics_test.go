package chaos

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"baps/internal/browser"
)

// scrapeProxyMetrics pulls the proxy's /metrics exposition and parses sample
// lines into name{label} → value.
func scrapeProxyMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape: status %d", resp.StatusCode)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("scrape: bad value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestChurnBreakerMetricDeltas is the observability companion to
// TestChurnGracefulDegradation: a 10-agent cluster loses 30% of its peers,
// and the whole failure story — breaker trips, quarantine, origin fallbacks,
// eventual re-admission — must be readable as metric deltas from the proxy's
// registry and its /metrics exposition, without consulting Snapshot.
func TestChurnBreakerMetricDeltas(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	const n = 10
	cfg := churnProxyConfig()
	cfg.BreakerCooldown = 300 * time.Millisecond // allow the revival probe
	c, err := NewChurnCluster(n, cfg, func(ac *browser.Config) {
		ac.HeartbeatInterval = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	reg := c.Proxy.Obs()

	// Seed: every agent holds two documents of its own.
	for i := 0; i < n; i++ {
		for j := 0; j < 2; j++ {
			u := c.DocURL(fmt.Sprintf("/a%d/d%d", i, j), churnDocSize)
			if _, _, err := c.Agents[i].Get(ctx, u); err != nil {
				t.Fatalf("seed agent %d doc %d: %v", i, j, err)
			}
		}
	}

	// Cross-traffic: agent 9 pulls three documents held by live peers, so
	// the peer-serve path is on record before the churn.
	for i := 4; i < 7; i++ {
		u := c.DocURL(fmt.Sprintf("/a%d/d0", i), churnDocSize)
		if _, src, err := c.Agents[9].Get(ctx, u); err != nil || src != browser.SourceRemote {
			t.Fatalf("cross-traffic fetch of a%d/d0: src=%v err=%v", i, src, err)
		}
	}

	openBefore := reg.VecValue("baps_proxy_breaker_transitions_total", "open")
	closedBefore := reg.VecValue("baps_proxy_breaker_transitions_total", "closed")
	falseBefore := reg.CounterValue("baps_proxy_false_peer_total")
	originBefore := reg.VecValue("baps_proxy_fetch_outcomes_total", "origin")

	// Churn: 3 of 10 peers go dark abruptly; one fetch against each trips
	// its breaker and falls back to the origin. Peer 0 only loses its
	// network (the agent survives), so it can revive at the same identity
	// for the re-admission half of the story.
	c.CrashPeer(0)
	c.KillAgent(1)
	c.KillAgent(2)
	for i := 0; i < 3; i++ {
		u := c.DocURL(fmt.Sprintf("/a%d/d0", i), churnDocSize)
		if _, src, err := c.Agents[9].Get(ctx, u); err != nil || src != browser.SourceOrigin {
			t.Fatalf("post-kill fetch of a%d/d0: src=%v err=%v", i, src, err)
		}
	}

	if d := reg.VecValue("baps_proxy_breaker_transitions_total", "open") - openBefore; d < 3 {
		t.Fatalf("breaker open transitions delta = %d, want >= 3 (one per killed peer)", d)
	}
	if d := reg.CounterValue("baps_proxy_false_peer_total") - falseBefore; d < 3 {
		t.Fatalf("false peer delta = %d, want >= 3", d)
	}
	if d := reg.VecValue("baps_proxy_fetch_outcomes_total", "origin") - originBefore; d < 3 {
		t.Fatalf("origin outcome delta = %d, want >= 3", d)
	}

	// The same story must be visible on the wire.
	m := scrapeProxyMetrics(t, c.Proxy.BaseURL())
	if got := m[`baps_proxy_breaker_peers{state="open"}`]; got < 3 {
		t.Fatalf("exposition open-breaker gauge = %g, want >= 3", got)
	}
	if got := m["baps_proxy_index_quarantined_entries"]; got != 3 {
		t.Fatalf("exposition quarantined entries = %g, want 3 (1 remaining doc x 3 dead peers)", got)
	}
	if got := m[`baps_proxy_fetch_outcomes_total{outcome="peer_fetch_forward"}`]; got < 3 {
		t.Fatalf("exposition peer_fetch_forward = %g, want >= 3 (cross-traffic)", got)
	}
	var serves, serveBytes float64
	for k, v := range m {
		if strings.HasPrefix(k, "baps_proxy_peer_serves_total{") {
			serves += v
		}
		if strings.HasPrefix(k, "baps_proxy_peer_serve_bytes_total{") {
			serveBytes += v
		}
	}
	if serves < 3 {
		t.Fatalf("exposition per-peer serves sum = %g, want >= 3", serves)
	}
	if serveBytes < 3*churnDocSize {
		t.Fatalf("exposition per-peer serve bytes sum = %g, want >= %d", serveBytes, 3*churnDocSize)
	}

	// Revive peer 0 at the same identity and wait out the cooldown. Its d1
	// is still held only by it, so a fresh agent's fetch runs the half-open
	// probe and the re-admission must appear as a closed transition.
	c.RevivePeer(0)
	time.Sleep(cfg.BreakerCooldown + 50*time.Millisecond)
	u := c.DocURL("/a0/d1", churnDocSize)
	if _, src, err := fetchViaFreshAgent(t, c, u); err != nil || src != browser.SourceRemote {
		t.Fatalf("post-revival fetch: src=%v err=%v", src, err)
	}
	if d := reg.VecValue("baps_proxy_breaker_transitions_total", "closed") - closedBefore; d < 1 {
		t.Fatalf("breaker closed transitions delta = %d, want >= 1 (re-admission)", d)
	}
}
