package chaos

import (
	"context"
	"fmt"
	"testing"

	"baps/internal/browser"
)

// hostedMutate configures hosted agents for deterministic churn tests.
func hostedMutate(ac *browser.Config) {
	ac.HeartbeatInterval = 0
}

// TestHostChurnKillsAgentsAndWholeHosts exercises the two failure
// granularities the lean agent plane introduces: an individual hosted agent
// dying inside a healthy host, and an entire host — listener, shared
// transport, multiplexed publisher, every resident agent — vanishing at
// once. In both cases the surviving fleet must keep answering, the proxy's
// breakers must absorb the dead registrations, and a replacement spawned
// into a freed slot must re-advertise the dead agent's URL and serve again.
func TestHostChurnKillsAgentsAndWholeHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	c, err := NewChurnCluster(1, churnProxyConfig(), func(ac *browser.Config) {
		ac.HeartbeatInterval = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	witness := c.Agents[0]
	ctx := context.Background()

	h0, err := c.AddHost(4, hostedMutate)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := c.AddHost(3, hostedMutate)
	if err != nil {
		t.Fatal(err)
	}

	// Seed: every hosted agent owns two documents (cached + indexed). The
	// proxy cache is below the doc size, so later requests MUST resolve
	// through the peer plane or fall back to the origin.
	docURL := func(h, i, j int) string {
		return c.DocURL(fmt.Sprintf("/h%d/a%d/d%d", h, i, j), churnDocSize)
	}
	for h, agents := range c.Hosted {
		for i, a := range agents {
			for j := 0; j < 2; j++ {
				if _, _, err := a.Get(ctx, docURL(h, i, j)); err != nil {
					t.Fatalf("seed host %d agent %d: %v", h, i, err)
				}
			}
		}
	}

	// Sanity: the multiplexed /a/<slot> URLs serve peers — a doc owned by a
	// hosted agent reaches the witness as a remote hit.
	if _, src, err := witness.Get(ctx, docURL(0, 0, 0)); err != nil || src != browser.SourceRemote {
		t.Fatalf("hosted peer serve: src=%v err=%v", src, err)
	}

	// -- Individual hosted agent dies inside a live host ------------------
	victimURL := c.Hosted[h0][1].PeerURL()
	c.KillHostedAgent(h0, 1)
	if _, _, err := witness.Get(ctx, docURL(0, 1, 0)); err != nil {
		t.Fatalf("request for dead hosted agent's doc must fall back: %v", err)
	}
	st := c.Proxy.Snapshot()
	if st.BreakerTrips < 1 {
		t.Fatalf("breaker trips = %d after hosted agent kill, want >= 1", st.BreakerTrips)
	}
	// Siblings on the same host are untouched.
	if _, src, err := witness.Get(ctx, docURL(0, 2, 0)); err != nil || src != browser.SourceRemote {
		t.Fatalf("sibling of killed hosted agent: src=%v err=%v", src, err)
	}

	// -- A whole host dies -------------------------------------------------
	c.KillHost(h1)
	for i := 0; i < 3; i++ {
		if _, _, err := witness.Get(ctx, docURL(1, i, 1)); err != nil {
			t.Fatalf("request for dead host's doc %d must fall back: %v", i, err)
		}
	}
	st = c.Proxy.Snapshot()
	if st.BreakerTrips < 2 {
		t.Fatalf("breaker trips = %d after host kill, want >= 2", st.BreakerTrips)
	}
	// The other host keeps serving.
	if _, src, err := witness.Get(ctx, docURL(0, 3, 0)); err != nil || src != browser.SourceRemote {
		t.Fatalf("surviving host after sibling host died: src=%v err=%v", src, err)
	}

	// -- Replacement reuses the freed slot ---------------------------------
	repl, err := c.SpawnHostedAgent(h0)
	if err != nil {
		t.Fatal(err)
	}
	if repl.PeerURL() != victimURL {
		t.Fatalf("replacement advertises %s, want the dead agent's %s (slot reuse → register-supersede)",
			repl.PeerURL(), victimURL)
	}
	u := c.DocURL("/repl/doc", churnDocSize)
	if _, _, err := repl.Get(ctx, u); err != nil {
		t.Fatalf("replacement Get: %v", err)
	}
	if _, src, err := witness.Get(ctx, u); err != nil || src != browser.SourceRemote {
		t.Fatalf("replacement not serving at reused URL: src=%v err=%v", src, err)
	}
}
