// Package chaos is the fault-injection harness for the live BAPS cluster:
// deterministic, seeded fault schedules applied either on the proxy's
// outbound transport (Injector + RoundTripper, plugged into
// proxy.Config.Transport) or in front of a browser's peer server (Gateway,
// a reverse proxy that can crash, stall, drop connections, or corrupt
// bodies on command). ChurnCluster wires an origin, a proxy, and a fleet of
// agents — each fronted by a Gateway — so tests can kill and revive peers
// mid-workload and assert the churn-resilience machinery (circuit breakers,
// quarantine, hedged origin fallback, retries) degrades gracefully.
//
// Everything here is production code style but test-facing: no randomness
// outside the seeded schedule, loopback listeners only, stdlib only.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// Fault is one injected failure mode.
type Fault int

const (
	// FaultNone passes the request through untouched.
	FaultNone Fault = iota
	// FaultDown aborts the request as a dead peer would: the connection
	// drops with no HTTP response.
	FaultDown
	// FaultStall delays the request (a peer that accepts the connection
	// but grinds); the stall duration is the injector's or gateway's.
	FaultStall
	// FaultCorrupt lets the request through but flips bytes in the
	// response body (a malicious or corrupting holder).
	FaultCorrupt
)

// String names the fault for logs.
func (f Fault) String() string {
	switch f {
	case FaultDown:
		return "down"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	default:
		return "none"
	}
}

// Injector produces a deterministic, seeded fault schedule. Faults queued
// with Force are served first (exact scripts for unit tests); after that
// each Next draws independently from the configured probabilities.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	pDown    float64
	pStall   float64
	pCorrupt float64
	forced   []Fault
	drawn    int64
}

// NewInjector creates an injector whose probabilistic schedule derives
// entirely from seed (same seed → same schedule).
func NewInjector(seed uint64) *Injector {
	return &Injector{rng: rand.New(rand.NewPCG(seed, seed^0x9E3779B97F4A7C15))}
}

// Probabilities sets the per-request fault rates (summing ≤ 1; the
// remainder is FaultNone).
func (in *Injector) Probabilities(down, stall, corrupt float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.pDown, in.pStall, in.pCorrupt = down, stall, corrupt
}

// Force queues exact faults to be served before the probabilistic schedule.
func (in *Injector) Force(faults ...Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.forced = append(in.forced, faults...)
}

// Next draws the next fault in the schedule.
func (in *Injector) Next() Fault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.drawn++
	if len(in.forced) > 0 {
		f := in.forced[0]
		in.forced = in.forced[1:]
		return f
	}
	v := in.rng.Float64()
	switch {
	case v < in.pDown:
		return FaultDown
	case v < in.pDown+in.pStall:
		return FaultStall
	case v < in.pDown+in.pStall+in.pCorrupt:
		return FaultCorrupt
	default:
		return FaultNone
	}
}

// Drawn reports how many faults the schedule has produced.
func (in *Injector) Drawn() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drawn
}

// errInjectedDown is the transport error produced by FaultDown.
var errInjectedDown = errors.New("chaos: connection dropped by fault injector")

// RoundTripper wraps an http.RoundTripper with an Injector's schedule —
// plug it into proxy.Config.Transport to inject faults on every outbound
// proxy request (peer and origin alike).
type RoundTripper struct {
	// Inner is the real transport (nil = http.DefaultTransport).
	Inner http.RoundTripper
	// Injector supplies the fault schedule (nil = no faults).
	Injector *Injector
	// Stall is the FaultStall delay (default 50ms).
	Stall time.Duration
}

// RoundTrip applies the next scheduled fault to the request.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := rt.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if rt.Injector == nil {
		return inner.RoundTrip(req)
	}
	switch rt.Injector.Next() {
	case FaultDown:
		return nil, errInjectedDown
	case FaultStall:
		d := rt.Stall
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return inner.RoundTrip(req)
	case FaultCorrupt:
		resp, err := inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &corruptingReader{rc: resp.Body}
		return resp, nil
	default:
		return inner.RoundTrip(req)
	}
}

// corruptingReader flips one byte out of every corruptStride read, so any
// digest or watermark check downstream must fail.
type corruptingReader struct {
	rc  io.ReadCloser
	off int64
}

const corruptStride = 64

func (c *corruptingReader) Read(p []byte) (int, error) {
	n, err := c.rc.Read(p)
	for i := 0; i < n; i++ {
		if (c.off+int64(i))%corruptStride == 0 {
			p[i] ^= 0xFF
		}
	}
	c.off += int64(n)
	return n, err
}

func (c *corruptingReader) Close() error { return c.rc.Close() }

// CorruptBody flips bytes in place with the same stride the reader uses
// (helper for handler-level corruption).
func CorruptBody(b []byte) []byte {
	for i := 0; i < len(b); i += corruptStride {
		b[i] ^= 0xFF
	}
	return b
}

// describeFault is used in Gateway error bodies.
func describeFault(f Fault) string { return fmt.Sprintf("chaos: injected %s", f) }
