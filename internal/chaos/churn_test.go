package chaos

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"baps/internal/browser"
	"baps/internal/proxy"
)

// churnProxyConfig tunes the resilience machinery for fast live tests:
// one failure trips a breaker, the peer soft deadline is short so hedges
// fire quickly, and the proxy cache is too small to admit any test document
// (forcing the peer path on every request).
func churnProxyConfig() proxy.Config {
	cfg := proxy.DefaultConfig()
	cfg.KeyBits = 1024
	cfg.CacheCapacity = 2048 // below every test doc size: always peer/origin
	cfg.Forward = proxy.FetchForward
	cfg.PeerTimeout = 2 * time.Second
	cfg.PeerSoftDeadline = 250 * time.Millisecond
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = 5 * time.Second // no half-open probes mid-test
	cfg.HeartbeatTimeout = 0              // sweeps covered by their own test
	cfg.OriginRetries = 1
	cfg.RetryBaseDelay = 20 * time.Millisecond
	return cfg
}

const churnDocSize = 8000

// TestChurnGracefulDegradation is the headline chaos test: a 10-agent
// cluster loses 30% of its peers abruptly (plus one stalled peer) in the
// middle of a workload, and every surviving request must still complete —
// within the soft deadline budget, never a full PeerTimeout — while the
// breaker quarantines each dead peer's entries in one step.
func TestChurnGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	const n = 10
	c, err := NewChurnCluster(n, churnProxyConfig(), func(ac *browser.Config) {
		ac.HeartbeatInterval = 0 // deterministic: no background beacons
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Seed: every agent caches (and indexes) three documents of its own.
	docs := make([]string, 0, 3*n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			u := c.DocURL(fmt.Sprintf("/a%d/d%d", i, j), churnDocSize)
			if _, _, err := c.Agents[i].Get(ctx, u); err != nil {
				t.Fatalf("seed agent %d doc %d: %v", i, j, err)
			}
			docs = append(docs, u)
		}
	}

	// Churn: 3 of 10 agents die abruptly, one more stalls every request.
	for i := 0; i < 3; i++ {
		c.KillAgent(i)
	}
	c.StallPeer(3, 0) // hangs until the caller's deadline

	// One request against each dead peer trips its breaker; the peer's
	// remaining entries must be quarantined in that single step, not one
	// failed fetch at a time.
	for i := 0; i < 3; i++ {
		u := c.DocURL(fmt.Sprintf("/a%d/d0", i), churnDocSize)
		if _, _, err := c.Agents[9].Get(ctx, u); err != nil {
			t.Fatalf("post-kill fetch of a%d/d0: %v", i, err)
		}
	}
	st := c.Proxy.Snapshot()
	if st.BreakerTrips < 3 {
		t.Fatalf("breaker trips = %d, want >= 3 (one per killed peer): %+v", st.BreakerTrips, st)
	}
	if st.QuarantinedEntries != 6 {
		t.Fatalf("quarantined entries = %d, want 6 (2 remaining docs x 3 dead peers)", st.QuarantinedEntries)
	}
	if st.BreakerOpen < 3 {
		t.Fatalf("open breakers = %d, want >= 3", st.BreakerOpen)
	}

	// Workload: every survivor walks the full document set concurrently.
	// The budget per request is PeerSoftDeadline + origin time + slack —
	// far below PeerTimeout, proving no request waits out a dead or
	// stalled peer.
	const budget = 1500 * time.Millisecond
	var wg sync.WaitGroup
	errCh := make(chan error, (n-4)*len(docs))
	var maxMu sync.Mutex
	var maxElapsed time.Duration
	for i := 4; i < n; i++ {
		wg.Add(1)
		go func(agent *browser.Agent, id int) {
			defer wg.Done()
			for _, u := range docs {
				start := time.Now()
				if _, _, err := agent.Get(ctx, u); err != nil {
					errCh <- fmt.Errorf("agent %d get %s: %w", id, u, err)
					return
				}
				elapsed := time.Since(start)
				maxMu.Lock()
				if elapsed > maxElapsed {
					maxElapsed = elapsed
				}
				maxMu.Unlock()
			}
		}(c.Agents[i], i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if maxElapsed > budget {
		t.Fatalf("slowest request took %v, budget %v (PeerTimeout %v must never be awaited)",
			maxElapsed, budget, 2*time.Second)
	}
	t.Logf("churn workload: slowest request %v; stats %+v", maxElapsed, c.Proxy.Snapshot())
}

// TestHalfOpenProbeReadmitsRevivedPeer: a crashed peer that comes back at
// the same identity is re-admitted by a single successful half-open probe,
// restoring all its quarantined entries in one step.
func TestHalfOpenProbeReadmitsRevivedPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	cfg := churnProxyConfig()
	cfg.BreakerCooldown = 150 * time.Millisecond
	c, err := NewChurnCluster(2, cfg, func(ac *browser.Config) {
		ac.HeartbeatInterval = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	ux := c.DocURL("/hold/x", churnDocSize)
	uy := c.DocURL("/hold/y", churnDocSize)
	uz := c.DocURL("/hold/z", churnDocSize)
	for _, u := range []string{ux, uy, uz} {
		if _, _, err := c.Agents[0].Get(ctx, u); err != nil {
			t.Fatal(err)
		}
	}

	c.CrashPeer(0)
	// Trips on the first failure; entry x is pruned, y and z are
	// quarantined together.
	if _, src, err := c.Agents[1].Get(ctx, ux); err != nil || src != browser.SourceOrigin {
		t.Fatalf("fetch against crashed peer: src=%v err=%v", src, err)
	}
	st := c.Proxy.Snapshot()
	if st.BreakerTrips != 1 || st.QuarantinedEntries != 2 {
		t.Fatalf("after crash: trips=%d quarantined=%d, want 1/2", st.BreakerTrips, st.QuarantinedEntries)
	}

	// While the breaker is open (cooldown not yet elapsed) the quarantined
	// entries are invisible: the fetch goes straight to the origin, fast.
	start := time.Now()
	if _, src, err := c.Agents[1].Get(ctx, uy); err != nil || src != browser.SourceOrigin {
		t.Fatalf("open-breaker fetch: src=%v err=%v", src, err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("open-breaker fetch took %v — the dead peer was contacted", elapsed)
	}

	// Revive at the same identity and wait out the cooldown. z is still
	// held only by the revived peer (agent 1 picked up y on its origin
	// fallback, but never z), so a fresh agent's fetch of z must run the
	// half-open probe against the quarantined holder and re-admit it.
	c.RevivePeer(0)
	time.Sleep(cfg.BreakerCooldown + 50*time.Millisecond)
	body, src, err := fetchViaFreshAgent(t, c, uz)
	if err != nil {
		t.Fatalf("post-revival fetch: %v", err)
	}
	if src != browser.SourceRemote {
		t.Fatalf("post-revival source = %v, want remote (probe re-admission)", src)
	}
	if len(body) != churnDocSize {
		t.Fatalf("post-revival body size = %d", len(body))
	}
	st = c.Proxy.Snapshot()
	if st.BreakerReadmits != 1 {
		t.Fatalf("readmits = %d, want 1: %+v", st.BreakerReadmits, st)
	}
	if st.QuarantinedEntries != 0 {
		t.Fatalf("quarantined entries = %d after re-admission, want 0", st.QuarantinedEntries)
	}
}

// fetchViaFreshAgent runs one Get through a brand-new agent (empty local
// cache) and tears it down again.
func fetchViaFreshAgent(t *testing.T, c *ChurnCluster, u string) ([]byte, browser.Source, error) {
	t.Helper()
	acfg := browser.DefaultConfig(c.Proxy.BaseURL())
	acfg.HeartbeatInterval = 0
	a, err := browser.New(acfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	return a.Get(context.Background(), u)
}

// TestHeartbeatSilenceQuarantinesSilentPeer: an abruptly killed agent stops
// heartbeating; the proxy's silence sweep trips its breaker and quarantines
// its entries without waiting for a fetch against it to fail. The surviving
// agent keeps beating and stays closed.
func TestHeartbeatSilenceQuarantinesSilentPeer(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	cfg := churnProxyConfig()
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	c, err := NewChurnCluster(2, cfg, func(ac *browser.Config) {
		ac.HeartbeatInterval = 50 * time.Millisecond
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	u1 := c.DocURL("/hb/1", churnDocSize)
	u2 := c.DocURL("/hb/2", churnDocSize)
	for _, u := range []string{u1, u2} {
		if _, _, err := c.Agents[0].Get(ctx, u); err != nil {
			t.Fatal(err)
		}
	}

	c.KillAgent(0) // heartbeats stop; no unregister
	deadline := time.Now().Add(3 * time.Second)
	for {
		st := c.Proxy.Snapshot()
		if st.HeartbeatMisses >= 1 && st.QuarantinedEntries == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("silence sweep never quarantined the dead peer: %+v", st)
		}
		time.Sleep(25 * time.Millisecond)
	}
	st := c.Proxy.Snapshot()
	if st.BreakerOpen < 1 {
		t.Fatalf("dead peer's breaker not open: %+v", st)
	}
	if st.Heartbeats == 0 {
		t.Fatalf("surviving agent's heartbeats not recorded: %+v", st)
	}
	if st.BreakerClosed < 1 {
		t.Fatalf("surviving agent should stay closed: %+v", st)
	}

	// A fetch for the dead peer's document never touches it: the breaker
	// is already open, so the proxy goes straight to the origin.
	start := time.Now()
	if _, src, err := c.Agents[1].Get(ctx, u1); err != nil || src != browser.SourceOrigin {
		t.Fatalf("post-sweep fetch: src=%v err=%v", src, err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("post-sweep fetch took %v — dead peer was contacted", elapsed)
	}
}

// TestGracefulCloseUnregisters: Close departs cleanly — the proxy drops the
// agent's registration and index entries immediately.
func TestGracefulCloseUnregisters(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	c, err := NewChurnCluster(2, churnProxyConfig(), func(ac *browser.Config) {
		ac.HeartbeatInterval = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	u := c.DocURL("/bye/doc", churnDocSize)
	if _, _, err := c.Agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	if got := c.Proxy.Index().Len(); got != 1 {
		t.Fatalf("index len before close = %d", got)
	}
	if err := c.Agents[0].Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st := c.Proxy.Snapshot()
	if st.Unregisters != 1 {
		t.Fatalf("unregisters = %d, want 1", st.Unregisters)
	}
	if st.IndexEntries != 0 {
		t.Fatalf("index entries after unregister = %d, want 0", st.IndexEntries)
	}
	if st.Clients != 1 {
		t.Fatalf("clients after unregister = %d, want 1", st.Clients)
	}
	// The departed peer is never consulted: the next fetch goes origin.
	if _, src, err := c.Agents[1].Get(ctx, u); err != nil || src != browser.SourceOrigin {
		t.Fatalf("post-unregister fetch: src=%v err=%v", src, err)
	}
}

// TestCorruptPeerDetectedAndBypassed: a holder serving corrupted bodies is
// caught by the proxy's digest check; the requester still gets the
// authentic document from the origin.
func TestCorruptPeerDetectedAndBypassed(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos: skipped in -short mode")
	}
	c, err := NewChurnCluster(2, churnProxyConfig(), func(ac *browser.Config) {
		ac.HeartbeatInterval = 0
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	u := c.DocURL("/evil/doc", churnDocSize)
	authentic, _, err := c.Agents[0].Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	c.CorruptPeer(0)
	body, _, err := c.Agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("fetch past corrupting peer: %v", err)
	}
	if !bytes.Equal(body, authentic) {
		t.Fatal("corrupted body reached the requester")
	}
	st := c.Proxy.Snapshot()
	if st.TamperRejected < 1 {
		t.Fatalf("tamper not recorded: %+v", st)
	}
}
