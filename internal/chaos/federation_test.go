package chaos

import (
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"sync"
	"testing"
	"time"

	"baps/internal/federation"
	"baps/internal/origin"
	"baps/internal/proxy"
)

// fedCluster is a full-mesh federated proxy cluster over one origin, with
// raw closed-loop clients pinned to their rendezvous-hash home proxy.
type fedCluster struct {
	origin    *origin.Server
	originSrv *http.Server
	originURL string
	proxies   []*proxy.Server
	nodes     []string
	client    *http.Client
}

func newFedCluster(t *testing.T, n int, mutate func(*proxy.Config)) *fedCluster {
	t.Helper()
	fc := &fedCluster{origin: origin.New(99)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("origin listen: %v", err)
	}
	fc.originURL = "http://" + ln.Addr().String()
	fc.originSrv = &http.Server{Handler: fc.origin.Handler()}
	go fc.originSrv.Serve(ln)
	t.Cleanup(func() { fc.originSrv.Close() })

	for i := 0; i < n; i++ {
		cfg := proxy.DefaultConfig()
		cfg.KeyBits = 1024
		cfg.CacheCapacity = 64 << 20
		if mutate != nil {
			mutate(&cfg)
		}
		p, err := proxy.New(cfg)
		if err != nil {
			t.Fatalf("proxy %d: %v", i, err)
		}
		if err := p.Start(""); err != nil {
			t.Fatalf("proxy %d start: %v", i, err)
		}
		t.Cleanup(func() { p.Close() })
		fc.proxies = append(fc.proxies, p)
		fc.nodes = append(fc.nodes, p.BaseURL())
	}
	for i, p := range fc.proxies {
		peers := make([]string, 0, n-1)
		for j, u := range fc.nodes {
			if j != i {
				peers = append(peers, u)
			}
		}
		if err := p.JoinCluster(peers); err != nil {
			t.Fatalf("proxy %d join: %v", i, err)
		}
	}
	fc.client = &http.Client{Timeout: 10 * time.Second, Transport: proxy.NewTransport(16)}
	return fc
}

// drive issues total Zipf-distributed fetches across workers clients, each
// pinned by rendezvous hash to a proxy in nodes. Returns per-source counts
// and the error count.
func (fc *fedCluster) drive(t *testing.T, nodes []string, workers, total, docs int, seed uint64) (map[string]int64, int64) {
	t.Helper()
	type tally struct {
		sources map[string]int64
		errs    int64
	}
	per := total / workers
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		home := federation.Owner(nodes, fmt.Sprintf("client-%d", w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			tl := &tallies[w]
			tl.sources = make(map[string]int64)
			rng := rand.New(rand.NewPCG(seed, uint64(w)+1))
			zipf := rand.NewZipf(rng, 1.3, 1, uint64(docs-1))
			for i := 0; i < per; i++ {
				docURL := fmt.Sprintf("%s/doc/%d", fc.originURL, zipf.Uint64())
				resp, err := fc.client.Get(home + "/fetch?url=" + url.QueryEscape(docURL))
				if err != nil {
					tl.errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					tl.errs++
					continue
				}
				src := resp.Header.Get(proxy.HeaderSource)
				tl.sources[src]++
			}
		}()
	}
	wg.Wait()
	sources := make(map[string]int64)
	var errs int64
	for i := range tallies {
		errs += tallies[i].errs
		for s, n := range tallies[i].sources {
			sources[s] += n
		}
	}
	return sources, errs
}

func hitRatio(sources map[string]int64, errs int64) float64 {
	var completed int64
	for _, n := range sources {
		completed += n
	}
	if completed == 0 {
		return 0
	}
	return float64(completed-sources[proxy.SourceOrigin]) / float64(completed)
}

// TestFederationSiblingDeath kills one of four federated proxies mid-run:
// its digests stop, the survivors quarantine it (staleness or tripped
// breaker), its clients re-home by rendezvous hash, and the surviving
// cluster's hit ratio must hold at >= 90% of steady state — the paper's
// resilience claim extended to the proxy tier itself.
func TestFederationSiblingDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("federation chaos test skipped in -short")
	}
	const (
		docs    = 500
		workers = 8
	)
	fc := newFedCluster(t, 4, func(c *proxy.Config) {
		c.DigestInterval = 100 * time.Millisecond
		c.BreakerThreshold = 2
		c.BreakerCooldown = 10 * time.Second // a dead sibling stays out
	})

	// Warm every proxy's cache, then measure the steady-state hit ratio.
	fc.drive(t, fc.nodes, workers, 1600, docs, 7)
	steadySrc, steadyErrs := fc.drive(t, fc.nodes, workers, 800, docs, 8)
	steady := hitRatio(steadySrc, steadyErrs)
	if steady < 0.5 {
		t.Fatalf("steady-state hit ratio %.3f too low for a meaningful kill test", steady)
	}

	// Kill one proxy hard: listener down, digest pushes stop.
	dead := fc.proxies[3]
	deadURL := fc.nodes[3]
	dead.Crash()
	survivors := fc.nodes[:3]

	// Give staleness (4x digest interval) room to quarantine the corpse.
	time.Sleep(600 * time.Millisecond)

	postSrc, postErrs := fc.drive(t, survivors, workers, 800, docs, 9)
	post := hitRatio(postSrc, postErrs)
	if postErrs > 0 {
		t.Fatalf("post-crash errors = %d: survivors must absorb the dead proxy's clients", postErrs)
	}
	if post < 0.9*steady {
		t.Fatalf("post-crash hit ratio %.3f < 90%% of steady %.3f (sources %v)", post, steady, postSrc)
	}

	// Every survivor must have quarantined the dead sibling.
	for i, p := range fc.proxies[:3] {
		st := p.Snapshot()
		if st.Federation == nil {
			t.Fatalf("survivor %d: no federation stats", i)
		}
		found := false
		for _, sib := range st.Federation.Siblings {
			if sib.URL != deadURL {
				continue
			}
			found = true
			if !sib.Stale && sib.Breaker != "open" {
				t.Fatalf("survivor %d still trusts dead sibling: %+v", i, sib)
			}
		}
		if !found {
			t.Fatalf("survivor %d: dead sibling missing from stats", i)
		}
	}
}
