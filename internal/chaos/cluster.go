package chaos

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"baps/internal/browser"
	"baps/internal/origin"
	"baps/internal/proxy"
)

// ChurnCluster is a live BAPS deployment built for killing: a synthetic
// origin, a browsers-aware proxy, and n agents each fronted by a fault
// Gateway. Peers can crash (gateway down), stall, corrupt, revive at the
// same identity, or die for real (agent killed), while workloads keep
// running against the surviving fleet.
type ChurnCluster struct {
	Origin   *origin.Server
	Proxy    *proxy.Server
	Agents   []*browser.Agent
	Gateways []*Gateway
	// Hosts are lean multiplexed agent fleets (AddHost): churn can kill
	// individual hosted agents or a whole host — one listener, one
	// transport, one publisher — in a single blow.
	Hosts  []*browser.AgentHost
	Hosted [][]*browser.Agent

	originLn  net.Listener
	originSrv *http.Server
	originURL string
	pcfg      proxy.Config
}

// NewChurnCluster brings the whole deployment up on loopback. pcfg
// parameterizes the proxy (zero KeyBits gets a fast 1024-bit test key);
// mutate, when non-nil, adjusts each agent's config before start.
func NewChurnCluster(n int, pcfg proxy.Config, mutate func(*browser.Config)) (*ChurnCluster, error) {
	c := &ChurnCluster{Origin: origin.New(4242)}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: origin listen: %w", err)
	}
	c.originLn = ln
	c.originURL = "http://" + ln.Addr().String()
	c.originSrv = &http.Server{Handler: c.Origin.Handler()}
	go c.originSrv.Serve(ln)

	if pcfg.KeyBits == 0 {
		pcfg.KeyBits = 1024
	}
	c.pcfg = pcfg
	p, err := proxy.New(pcfg)
	if err != nil {
		c.Close()
		return nil, err
	}
	if err := p.Start(""); err != nil {
		c.Close()
		return nil, err
	}
	c.Proxy = p

	for i := 0; i < n; i++ {
		g, err := NewGateway()
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Gateways = append(c.Gateways, g)
		acfg := browser.DefaultConfig(p.BaseURL())
		acfg.CacheCapacity = 1 << 20
		acfg.AdvertisePeerURL = g.URL()
		if mutate != nil {
			mutate(&acfg)
		}
		a, err := browser.New(acfg)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("chaos: agent %d: %w", i, err)
		}
		g.SetBackend(a.PeerURL())
		c.Agents = append(c.Agents, a)
	}
	return c, nil
}

// DocURL builds an origin URL for path, forcing a fixed body size so tests
// control cache admission.
func (c *ChurnCluster) DocURL(path string, size int) string {
	return fmt.Sprintf("%s%s?size=%d", c.originURL, path, size)
}

// OriginURL is the synthetic origin's base URL.
func (c *ChurnCluster) OriginURL() string { return c.originURL }

// CrashPeer makes peer i unreachable (its gateway drops every connection)
// without killing the agent — the peer can later revive at the same
// identity with RevivePeer.
func (c *ChurnCluster) CrashPeer(i int) { c.Gateways[i].SetFault(FaultDown) }

// StallPeer makes peer i hang every request for d (0 = until the caller's
// deadline).
func (c *ChurnCluster) StallPeer(i int, d time.Duration) {
	c.Gateways[i].SetStall(d)
	c.Gateways[i].SetFault(FaultStall)
}

// CorruptPeer makes peer i serve corrupted bodies.
func (c *ChurnCluster) CorruptPeer(i int) { c.Gateways[i].SetFault(FaultCorrupt) }

// RevivePeer heals peer i's gateway.
func (c *ChurnCluster) RevivePeer(i int) { c.Gateways[i].SetFault(FaultNone) }

// KillAgent terminates agent i abruptly — no unregister, no drain — and
// downs its gateway. The proxy discovers the departure only through failed
// fetches or missed heartbeats.
func (c *ChurnCluster) KillAgent(i int) {
	c.Gateways[i].SetFault(FaultDown)
	c.Agents[i].Kill()
}

// AddHost attaches a lean AgentHost to the cluster's proxy and spawns
// perHost hosted agents on it, returning the host's index. Hosted agents
// talk to the proxy directly (no per-agent gateway): host-level churn is
// injected by killing agents or the whole host, not by fronting faults.
func (c *ChurnCluster) AddHost(perHost int, mutate func(*browser.Config)) (int, error) {
	acfg := browser.DefaultConfig(c.Proxy.BaseURL())
	acfg.CacheCapacity = 1 << 20
	if mutate != nil {
		mutate(&acfg)
	}
	h, err := browser.NewHost(browser.HostConfig{Agent: acfg})
	if err != nil {
		return 0, fmt.Errorf("chaos: host: %w", err)
	}
	var agents []*browser.Agent
	for i := 0; i < perHost; i++ {
		a, err := h.Spawn()
		if err != nil {
			h.Close()
			return 0, fmt.Errorf("chaos: hosted agent %d: %w", i, err)
		}
		agents = append(agents, a)
	}
	c.Hosts = append(c.Hosts, h)
	c.Hosted = append(c.Hosted, agents)
	return len(c.Hosts) - 1, nil
}

// KillHostedAgent abruptly kills agent i of host h: its slot frees for
// reuse, its share of the multiplexed publisher is dropped, and its
// /a/<slot> route answers 410 until a replacement takes the slot.
func (c *ChurnCluster) KillHostedAgent(h, i int) { c.Hosted[h][i].Kill() }

// SpawnHostedAgent adds one agent to host h (churn replacement: freed slots
// are reused LIFO, so the newcomer re-advertises a dead agent's URL and the
// proxy's register-supersede retires the stale registration).
func (c *ChurnCluster) SpawnHostedAgent(h int) (*browser.Agent, error) {
	a, err := c.Hosts[h].Spawn()
	if err != nil {
		return nil, err
	}
	c.Hosted[h] = append(c.Hosted[h], a)
	return a, nil
}

// KillHost takes down host h whole — listener, shared transport, publisher,
// and every hosted agent at once, with no unregisters — the box-level
// failure mode a lean fleet introduces.
func (c *ChurnCluster) KillHost(h int) { c.Hosts[h].Kill() }

// RestartProxy replaces the proxy with a fresh instance on the same address
// and config. graceful=false models SIGKILL (Crash: no journal flush, no
// state save); graceful=true models SIGTERM (Close: drain and flush). With
// a DataDir in the proxy config the replacement warm-starts from disk;
// agents keep their registrations and talk to the same base URL throughout.
func (c *ChurnCluster) RestartProxy(graceful bool) error {
	addr := strings.TrimPrefix(c.Proxy.BaseURL(), "http://")
	if graceful {
		c.Proxy.Close()
	} else {
		c.Proxy.Crash()
	}
	p, err := proxy.New(c.pcfg)
	if err != nil {
		return fmt.Errorf("chaos: restart proxy: %w", err)
	}
	// The freed port can lag a beat on some kernels; retry briefly.
	for i := 0; ; i++ {
		if err = p.Start(addr); err == nil {
			break
		}
		if i == 20 {
			return fmt.Errorf("chaos: rebind %s: %w", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.Proxy = p
	return nil
}

// Close tears the whole cluster down (survivors depart gracefully).
func (c *ChurnCluster) Close() {
	for _, a := range c.Agents {
		a.Close()
	}
	for _, h := range c.Hosts {
		h.Close()
	}
	for _, g := range c.Gateways {
		g.Close()
	}
	if c.Proxy != nil {
		c.Proxy.Close()
	}
	if c.originSrv != nil {
		c.originSrv.Close()
	}
}
