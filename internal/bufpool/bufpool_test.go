package bufpool

import (
	"bytes"
	"crypto/rand"
	"io"
	"sync"
	"testing"
)

func TestTierSelection(t *testing.T) {
	cases := []struct {
		hint int
		want int
	}{
		{hint: 1, want: TierSmall},
		{hint: TierSmall, want: TierSmall},
		{hint: TierSmall + 1, want: TierMed},
		{hint: TierMed, want: TierMed},
		{hint: TierMed + 1, want: TierLarge},
		{hint: 512 << 20, want: TierLarge}, // clamped
		{hint: 0, want: TierMed},           // default tier
		{hint: -1, want: TierMed},
	}
	for _, c := range cases {
		b := Get(c.hint)
		if len(*b) != c.want {
			t.Errorf("Get(%d) len = %d, want %d", c.hint, len(*b), c.want)
		}
		Put(b)
	}
}

func TestPutForeignBufferDropped(t *testing.T) {
	b := make([]byte, 1234)
	Put(&b) // must not panic or poison a tier
	got := Get(TierSmall)
	if len(*got) != TierSmall {
		t.Fatalf("tier polluted: len = %d", len(*got))
	}
	Put(got)
}

func TestPutRestoresLength(t *testing.T) {
	b := Get(TierMed)
	*b = (*b)[:10]
	Put(b)
	// Whether or not we get the same buffer back, its length must be full.
	b2 := Get(TierMed)
	if len(*b2) != TierMed {
		t.Fatalf("recycled buffer len = %d, want %d", len(*b2), TierMed)
	}
	Put(b2)
}

func TestCopyCorrectness(t *testing.T) {
	for _, n := range []int{0, 1, TierSmall, TierMed - 1, TierMed, TierMed + 1, 3 * TierMed} {
		src := make([]byte, n)
		if _, err := rand.Read(src); err != nil {
			t.Fatal(err)
		}
		var dst bytes.Buffer
		written, err := CopySized(&dst, bytes.NewReader(src), int64(n))
		if err != nil {
			t.Fatalf("CopySized(%d): %v", n, err)
		}
		if written != int64(n) || !bytes.Equal(dst.Bytes(), src) {
			t.Fatalf("CopySized(%d): wrote %d, content match=%v", n, written, bytes.Equal(dst.Bytes(), src))
		}
	}
}

func TestCopyDefault(t *testing.T) {
	src := bytes.Repeat([]byte("abc"), 50000)
	var dst bytes.Buffer
	if _, err := Copy(&dst, bytes.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.Bytes(), src) {
		t.Fatal("Copy corrupted content")
	}
}

// TestConcurrentGetPut exercises the pools under the race detector.
func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			hints := []int{1, TierSmall + 1, TierMed + 1}
			for j := 0; j < 200; j++ {
				b := Get(hints[(i+j)%3])
				(*b)[0] = byte(j)
				Put(b)
			}
		}()
	}
	wg.Wait()
}

func BenchmarkCopyPooled(b *testing.B) {
	src := make([]byte, 256<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CopySized(io.Discard, bytes.NewReader(src), int64(len(src))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopyPlain(b *testing.B) {
	src := make([]byte, 256<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := make([]byte, 64<<10)
		if _, err := io.CopyBuffer(onlyWriter{io.Discard}, onlyReader{bytes.NewReader(src)}, buf); err != nil {
			b.Fatal(err)
		}
	}
}
