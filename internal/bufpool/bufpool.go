// Package bufpool provides tiered, recycled byte buffers for the live
// serving path. Every streamed copy (origin relay, direct-forward relay,
// body drains) borrows a buffer from a size-classed sync.Pool instead of
// allocating, so sustained load stops churning the garbage collector with
// short-lived 64 KiB copy buffers.
//
// Three tiers cover the live system's shapes: 4 KiB for header-ish drains,
// 64 KiB for document copies (the sweet spot for loopback and LAN sockets),
// and 1 MiB for large-document relays. Get rounds a size hint up to the
// smallest sufficient tier; hints beyond the largest tier are clamped to it
// (callers loop their copies, so a bigger buffer is a throughput knob, not a
// correctness one).
package bufpool

import (
	"io"
	"sync"
)

// Tier sizes, smallest to largest.
const (
	TierSmall = 4 << 10
	TierMed   = 64 << 10
	TierLarge = 1 << 20
)

// pool is one size class. Buffers travel as *[]byte so sync.Pool never
// allocates an interface box per Put (staticcheck SA6002).
type pool struct {
	size int
	p    sync.Pool
}

func (t *pool) get() *[]byte {
	if b, ok := t.p.Get().(*[]byte); ok {
		return b
	}
	b := make([]byte, t.size)
	return &b
}

var pools = [3]pool{
	{size: TierSmall},
	{size: TierMed},
	{size: TierLarge},
}

// Get borrows a buffer of at least min(sizeHint, TierLarge) bytes, choosing
// the smallest tier that covers the hint. Hints <= 0 get the medium tier
// (the general-purpose copy size). Return it with Put.
func Get(sizeHint int) *[]byte {
	return tierFor(sizeHint).get()
}

// Put returns a buffer obtained from Get. Buffers of foreign capacities are
// dropped rather than pooled, so a resliced or hand-made buffer can't poison
// a tier.
func Put(b *[]byte) {
	if b == nil {
		return
	}
	for i := range pools {
		if cap(*b) == pools[i].size {
			*b = (*b)[:pools[i].size]
			pools[i].p.Put(b)
			return
		}
	}
}

// Copy is io.CopyBuffer with a pooled medium-tier buffer: the allocation-free
// way to stream a document between sockets.
func Copy(dst io.Writer, src io.Reader) (int64, error) {
	return CopySized(dst, src, -1)
}

// CopySized is Copy with a size hint selecting the buffer tier (use the
// expected body length when known; -1 for the default tier).
func CopySized(dst io.Writer, src io.Reader, sizeHint int64) (int64, error) {
	hint := TierMed
	if sizeHint >= 0 && sizeHint < TierMed {
		hint = int(sizeHint)
	} else if sizeHint > TierMed {
		hint = TierLarge
	}
	buf := Get(hint)
	defer Put(buf)
	// Wrappers mask ReadFrom/WriteTo so io.CopyBuffer actually uses the
	// pooled buffer instead of delegating (and then ignoring it).
	return io.CopyBuffer(onlyWriter{dst}, onlyReader{src}, *buf)
}

type onlyWriter struct{ io.Writer }
type onlyReader struct{ io.Reader }

func tierFor(sizeHint int) *pool {
	switch {
	case sizeHint > 0 && sizeHint <= TierSmall:
		return &pools[0]
	case sizeHint > TierMed:
		return &pools[2]
	default:
		return &pools[1]
	}
}
