package sim

import (
	"testing"

	"baps/internal/core"
	"baps/internal/trace"
)

// TestRevalidationPolicyRescuesStaleProxy: with the revalidation policy on,
// a proxy copy past the freshness age absorbs an origin-side modification
// as a (revalidated) proxy hit instead of a stale miss.
func TestRevalidationPolicyRescuesStaleProxy(t *testing.T) {
	req := func(tm float64, client int, url string, size int64) trace.Request {
		return trace.Request{Time: tm, Client: client, URL: url, Size: size}
	}
	tr := &trace.Trace{
		Name:       "reval-policy",
		NumClients: 2,
		Requests: []trace.Request{
			req(1, 0, "a", 100),  // origin miss; proxy caches a@100
			req(50, 1, "a", 120), // modified at the origin meanwhile
		},
	}
	base := DefaultConfig(core.BrowsersAware)
	base.Sizing = SizingMinimum
	base.MinBrowserDivisor = 0.25
	base.ProxyCapOverride = 1000

	rb, err := Run(tr, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if rb.StaleProxy != 1 || rb.Misses != 2 || rb.Revalidations != 0 {
		t.Fatalf("baseline: stale=%d misses=%d reval=%d, want 1/2/0",
			rb.StaleProxy, rb.Misses, rb.Revalidations)
	}

	reval := base
	reval.RevalidateAfterSec = 10 // copy is 49s old at the second access
	rr, err := Run(tr, nil, reval)
	if err != nil {
		t.Fatal(err)
	}
	if rr.StaleProxy != 0 || rr.Misses != 1 || rr.ProxyHits != 1 || rr.Revalidations != 1 {
		t.Fatalf("revalidated: stale=%d misses=%d proxyHits=%d reval=%d, want 0/1/1/1",
			rr.StaleProxy, rr.Misses, rr.ProxyHits, rr.Revalidations)
	}

	// A copy younger than the freshness age is NOT rescued: the background
	// checker has not been due yet, so the stale miss stands.
	young := base
	young.RevalidateAfterSec = 100
	ry, err := Run(tr, nil, young)
	if err != nil {
		t.Fatal(err)
	}
	if ry.StaleProxy != 1 || ry.Revalidations != 0 {
		t.Fatalf("young copy rescued: stale=%d reval=%d, want 1/0", ry.StaleProxy, ry.Revalidations)
	}
}

// TestPrefetchPolicySeedsBrowserCaches: once a document's access count
// reaches the threshold, a copy is pushed into an idle browser cache and
// that browser's next request for it is a local hit.
func TestPrefetchPolicySeedsBrowserCaches(t *testing.T) {
	req := func(tm float64, client int, url string, size int64) trace.Request {
		return trace.Request{Time: tm, Client: client, URL: url, Size: size}
	}
	tr := &trace.Trace{
		Name:       "prefetch-policy",
		NumClients: 3,
		Requests: []trace.Request{
			req(1, 0, "a", 100), // miss: count(a)=1
			req(2, 1, "a", 100), // proxy hit: count=2 → push into client 2
			req(3, 2, "a", 100), // the planted copy serves locally
		},
	}
	base := DefaultConfig(core.BrowsersAware)
	base.Sizing = SizingMinimum
	base.MinBrowserDivisor = 0.25
	base.ProxyCapOverride = 1000

	rb, err := Run(tr, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if rb.PrefetchPushes != 0 || rb.LocalHits != 0 {
		t.Fatalf("baseline: pushes=%d localHits=%d, want 0/0", rb.PrefetchPushes, rb.LocalHits)
	}

	pf := base
	pf.PrefetchMinHits = 2
	rp, err := Run(tr, nil, pf)
	if err != nil {
		t.Fatal(err)
	}
	if rp.PrefetchPushes != 1 {
		t.Fatalf("pushes = %d, want 1", rp.PrefetchPushes)
	}
	if rp.LocalHits != 1 {
		t.Fatalf("client 2 local hits = %d, want 1 (planted copy)", rp.LocalHits)
	}
}
