package sim

import (
	"fmt"
	"runtime"
	"sync"

	"baps/internal/core"
	"baps/internal/trace"
)

// PaperSizes is the relative cache-size sweep of Figures 2–7 (fractions of
// the infinite cache size; the paper's garbled axis restored to
// 0.5 %, 1 %, 10 %, 20 %).
var PaperSizes = []float64{0.005, 0.01, 0.10, 0.20}

// PaperClientFractions is the §4.4 relative-number-of-clients sweep.
var PaperClientFractions = []float64{0.25, 0.50, 0.75, 1.00}

// SweepResult holds one organization's results across the size sweep.
type SweepResult struct {
	Trace string
	Sizes []float64
	// ByOrg maps each simulated organization to one Result per size, in
	// Sizes order.
	ByOrg map[core.Organization][]Result
}

// Sweep runs the given organizations across the relative-size sweep,
// fanning runs out over GOMAXPROCS workers. base supplies every Config field
// except Organization and RelativeSize.
func Sweep(tr *trace.Trace, orgs []core.Organization, sizes []float64, base Config) (*SweepResult, error) {
	st := trace.Compute(tr)
	out := &SweepResult{
		Trace: tr.Name,
		Sizes: sizes,
		ByOrg: make(map[core.Organization][]Result, len(orgs)),
	}
	for _, org := range orgs {
		out.ByOrg[org] = make([]Result, len(sizes))
	}
	type job struct {
		org core.Organization
		si  int
	}
	jobs := make(chan job)
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rn Runner // pooled System/bus/histogram, reused across this worker's runs
			for j := range jobs {
				cfg := base
				cfg.Organization = j.org
				cfg.RelativeSize = sizes[j.si]
				res, err := rn.Run(tr, &st, cfg)
				if err == nil {
					err = res.Check()
				}
				if err != nil {
					select {
					case errs <- fmt.Errorf("sweep %v@%g: %w", j.org, sizes[j.si], err):
					default:
					}
					continue
				}
				out.ByOrg[j.org][j.si] = res
			}
		}()
	}
	for _, org := range orgs {
		for si := range sizes {
			jobs <- job{org, si}
		}
	}
	close(jobs)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return out, nil
}

// ScalingResult holds the §4.4 client-scaling experiment: hit-ratio and
// byte-hit-ratio increments of the browsers-aware proxy over
// proxy-and-local-browser as the client population grows.
type ScalingResult struct {
	Trace     string
	Fractions []float64
	BAPS      []Result
	PALB      []Result
	// HRIncrementPct[i] = (HR_baps − HR_palb)/HR_palb × 100 at
	// Fractions[i]; likewise for bytes.
	HRIncrementPct  []float64
	BHRIncrementPct []float64
}

// Scaling runs the §4.4 experiment: for each client fraction the trace is
// restricted to a nested subset of clients, the proxy capacity stays fixed
// at base.RelativeSize of the *full* trace's infinite size, and browser
// caches follow the sizing rule on the subset. subsetSeed makes the client
// subsets reproducible and nested.
func Scaling(tr *trace.Trace, fractions []float64, base Config, subsetSeed int64) (*ScalingResult, error) {
	// Compute also interns the parent trace, so the workers' SubsetClients
	// calls below only read it.
	fullStats := trace.Compute(tr)
	proxyCap := int64(base.RelativeSize * float64(fullStats.InfiniteCacheBytes))
	out := &ScalingResult{
		Trace:           tr.Name,
		Fractions:       fractions,
		BAPS:            make([]Result, len(fractions)),
		PALB:            make([]Result, len(fractions)),
		HRIncrementPct:  make([]float64, len(fractions)),
		BHRIncrementPct: make([]float64, len(fractions)),
	}
	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	// One job per scaling point; the subset extraction and its statistics
	// pass run inside the worker pool rather than serially on the caller,
	// and both organizations replay the same worker's subset so each worker
	// pools its System/bus/histogram across all its runs.
	jobs := make(chan int)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(fractions) {
		workers = len(fractions)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rn Runner
			for fi := range jobs {
				sub := trace.SubsetClients(tr, fractions[fi], subsetSeed)
				st := trace.Compute(sub)
				for _, org := range []core.Organization{core.BrowsersAware, core.ProxyAndLocalBrowser} {
					cfg := base
					cfg.Organization = org
					cfg.ProxyCapOverride = proxyCap
					res, err := rn.Run(sub, &st, cfg)
					if err == nil {
						err = res.Check()
					}
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("scaling %v@%g: %w", org, fractions[fi], err)
						}
						mu.Unlock()
						continue
					}
					if org == core.BrowsersAware {
						out.BAPS[fi] = res
					} else {
						out.PALB[fi] = res
					}
					mu.Unlock()
				}
			}
		}()
	}
	for fi := range fractions {
		jobs <- fi
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	for i := range fractions {
		b, p := out.BAPS[i], out.PALB[i]
		if p.HitRatio() > 0 {
			out.HRIncrementPct[i] = (b.HitRatio() - p.HitRatio()) / p.HitRatio() * 100
		}
		if p.ByteHitRatio() > 0 {
			out.BHRIncrementPct[i] = (b.ByteHitRatio() - p.ByteHitRatio()) / p.ByteHitRatio() * 100
		}
	}
	return out, nil
}

// MemoryStudyResult holds the §4.2 comparison: the browsers-aware proxy at a
// small relative size against proxy-and-local-browser at a (usually larger)
// size chosen so that the two achieve comparable byte hit ratios — under
// which condition the paper found BAPS serves far more of those bytes from
// memory and thus cuts total hit latency.
type MemoryStudyResult struct {
	Trace string
	BAPS  Result
	PALB  Result
	// MatchedPALBSize is the relative size at which proxy-and-local-
	// browser reaches the browsers-aware byte hit ratio (the paper's
	// traces matched 10 % BAPS against 20 % P+LB).
	MatchedPALBSize float64
	// HitLatencyReductionPct is (PALB hit latency − BAPS hit latency) /
	// PALB total service time × 100: the total-latency saving from the
	// higher memory byte hit ratio at equivalent byte hit ratio.
	HitLatencyReductionPct float64
}

// MemoryStudy runs the §4.2 experiment. sizeBAPS fixes the browsers-aware
// configuration; sizePALB > 0 pins the comparison size directly (the paper
// uses 20 %), while sizePALB == 0 bisects for the proxy-and-local-browser
// size whose byte hit ratio matches (the paper's "for an equivalent byte hit
// ratio" condition made precise).
func MemoryStudy(tr *trace.Trace, sizeBAPS, sizePALB float64, base Config) (*MemoryStudyResult, error) {
	st := trace.Compute(tr)
	cfgB := base
	cfgB.Organization = core.BrowsersAware
	cfgB.RelativeSize = sizeBAPS
	resB, err := Run(tr, &st, cfgB)
	if err != nil {
		return nil, err
	}
	cfgP := base
	cfgP.Organization = core.ProxyAndLocalBrowser

	var resP Result
	if sizePALB > 0 {
		cfgP.RelativeSize = sizePALB
		if resP, err = Run(tr, &st, cfgP); err != nil {
			return nil, err
		}
	} else {
		// Bisect for the matching byte hit ratio; BHR is monotone in
		// cache size for the stack-based LRU organizations. Every probe
		// has the same shape, so one Runner pools the System across the
		// whole bisection.
		var rn Runner
		target := resB.ByteHitRatio()
		lo, hi := sizeBAPS/4, 0.95
		for iter := 0; iter < 12; iter++ {
			mid := (lo + hi) / 2
			cfgP.RelativeSize = mid
			if resP, err = rn.Run(tr, &st, cfgP); err != nil {
				return nil, err
			}
			if resP.ByteHitRatio() < target {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	out := &MemoryStudyResult{
		Trace:           tr.Name,
		BAPS:            resB,
		PALB:            resP,
		MatchedPALBSize: resP.RelativeSize,
	}
	if resP.TotalServiceSec > 0 {
		out.HitLatencyReductionPct = (resP.HitLatencySec - resB.HitLatencySec) / resP.TotalServiceSec * 100
	}
	return out, nil
}
