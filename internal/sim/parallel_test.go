package sim

import (
	"math"
	"testing"

	"baps/internal/obs"
	"baps/internal/trace"
)

// With one shard the partition is the identity, the capacity slices reduce
// to the global ones, and RunSharded must be bit-identical to Run on every
// golden configuration.
func TestShardedOneShardBitIdentical(t *testing.T) {
	tr := goldenTrace(t)
	st := trace.Compute(tr)
	for i, cfg := range goldenCases() {
		want, err := Run(tr, &st, cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := RunSharded(trace.NewSliceStream(tr), &st, cfg, 1)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		compareResults(t, i, want, got)
	}
}

// Sharding genuinely changes the simulated organization (peer hits come only
// from same-shard browsers; the proxy splits into independent slices), so
// shards > 1 carries a small epsilon against the sequential run. Gate that
// epsilon on canet2: aggregate ratios within 0.05 absolute, conservation
// invariants intact, and repeated sharded runs bit-identical to each other.
func TestShardedEpsilonAgainstSequential(t *testing.T) {
	tr := goldenTrace(t)
	st := trace.Compute(tr)
	for _, shards := range []int{2, 4} {
		for i, cfg := range goldenCases() {
			want, err := Run(tr, &st, cfg)
			if err != nil {
				t.Fatalf("shards=%d case %d: %v", shards, i, err)
			}
			got, err := RunSharded(trace.NewSliceStream(tr), &st, cfg, shards)
			if err != nil {
				t.Fatalf("shards=%d case %d: %v", shards, i, err)
			}
			if err := got.Check(); err != nil {
				t.Fatalf("shards=%d case %d: %v", shards, i, err)
			}
			// With no warm-up every request is counted exactly once
			// regardless of the partition; with warm-up each shard
			// skips its own prefix, so the counted set (not just its
			// size) legitimately differs.
			if cfg.WarmupFraction == 0 {
				if got.Requests != want.Requests {
					t.Fatalf("shards=%d case %d: replayed %d requests, want %d",
						shards, i, got.Requests, want.Requests)
				}
				if got.TotalBytes != want.TotalBytes {
					t.Fatalf("shards=%d case %d: total bytes %d, want %d",
						shards, i, got.TotalBytes, want.TotalBytes)
				}
			}
			const eps = 0.05
			checks := []struct {
				name      string
				want, got float64
			}{
				{"HitRatio", want.HitRatio(), got.HitRatio()},
				{"ByteHitRatio", want.ByteHitRatio(), got.ByteHitRatio()},
				{"LocalHitRatio", want.LocalHitRatio(), got.LocalHitRatio()},
				{"MemoryByteHitRatio", want.MemoryByteHitRatio(), got.MemoryByteHitRatio()},
			}
			for _, c := range checks {
				if d := math.Abs(c.want - c.got); d > eps {
					t.Errorf("shards=%d case %d (%v): %s diverged by %.4f (seq %.4f, sharded %.4f)",
						shards, i, cfg.Organization, c.name, d, c.want, c.got)
				}
			}
			again, err := RunSharded(trace.NewSliceStream(tr), &st, cfg, shards)
			if err != nil {
				t.Fatalf("shards=%d case %d rerun: %v", shards, i, err)
			}
			compareResults(t, i, got, again)
		}
	}
}

// Exercise the router/worker/merge machinery under the race detector with
// metrics and progress plumbing active (run with -race via make check).
func TestShardedMergeRace(t *testing.T) {
	tr := goldenTrace(t)
	st := trace.Compute(tr)
	cfg := goldenCases()[len(goldenCases())-2] // periodic + TTL + warm-up variant
	cfg.Metrics = obs.NewRegistry()
	shards := ShardCount(4, st.NumClients)
	progress := NewShardProgress(shards)
	got, err := RunShardedOpts(trace.NewSliceStream(tr), &st, cfg,
		ShardedOptions{Shards: shards, Progress: progress})
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Check(); err != nil {
		t.Fatal(err)
	}
	if total := progress.Total(); total != int64(len(tr.Requests)) {
		t.Fatalf("progress total %d, want %d", total, len(tr.Requests))
	}
	var perShard int64
	for i := 0; i < progress.Shards(); i++ {
		perShard += progress.Shard(i)
	}
	if perShard != progress.Total() {
		t.Fatalf("per-shard progress sums to %d, total %d", perShard, progress.Total())
	}
}

// Progress boards sized for the wrong shard count must be rejected, not
// silently misread.
func TestShardedProgressSizeMismatch(t *testing.T) {
	tr := goldenTrace(t)
	st := trace.Compute(tr)
	cfg := DefaultConfig(goldenCases()[0].Organization)
	_, err := RunShardedOpts(trace.NewSliceStream(tr), &st, cfg,
		ShardedOptions{Shards: 2, Progress: NewShardProgress(3)})
	if err == nil {
		t.Fatal("mismatched progress size accepted")
	}
}

func TestShardCount(t *testing.T) {
	if got := ShardCount(8, 3); got != 3 {
		t.Fatalf("ShardCount(8, 3) = %d, want 3", got)
	}
	if got := ShardCount(2, 100); got != 2 {
		t.Fatalf("ShardCount(2, 100) = %d, want 2", got)
	}
	if got := ShardCount(0, 100); got < 1 {
		t.Fatalf("ShardCount(0, 100) = %d, want >= 1", got)
	}
}
