package sim

import (
	"testing"

	"baps/internal/core"
)

func TestHierarchyParentServesMisses(t *testing.T) {
	tr := testTrace(t, 14)
	cfg := DefaultConfig(core.BrowsersAware)
	cfg.ParentRelativeSize = 0.5 // big parent
	res, err := Run(tr, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if res.ParentHits == 0 {
		t.Fatal("parent proxy never hit")
	}
	// Parent hits are not cache hits: hit ratio must match the
	// parent-less run exactly (the parent only intercepts misses).
	base, err := Run(tr, nil, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio() != base.HitRatio() {
		t.Errorf("parent changed the hit ratio: %.4f vs %.4f", res.HitRatio(), base.HitRatio())
	}
	// But it absorbs origin traffic…
	if res.Misses >= base.Misses {
		t.Errorf("parent did not reduce origin fetches: %d vs %d", res.Misses, base.Misses)
	}
	// …and total service time (parent fetches are cheaper than origin).
	if res.TotalServiceSec >= base.TotalServiceSec {
		t.Errorf("parent did not cut service time: %.0f vs %.0f", res.TotalServiceSec, base.TotalServiceSec)
	}
}

func TestHierarchyValidation(t *testing.T) {
	cfg := DefaultConfig(core.BrowsersAware)
	cfg.ParentRelativeSize = -0.1
	if err := cfg.Validate(); err == nil {
		t.Error("negative parent size accepted")
	}
	cfg.ParentRelativeSize = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("parent size > 1 accepted")
	}
}

func TestHierarchyZeroDisabled(t *testing.T) {
	tr := testTrace(t, 15)
	res, err := Run(tr, nil, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if res.ParentHits != 0 || res.ParentBytes != 0 {
		t.Fatalf("parent hits without a parent: %+v", res)
	}
}
