// Package sim is the trace-driven simulator of §3–§5: it replays a request
// trace through a configured caching organization (internal/core), accounts
// the paper's metrics — hit ratio, byte hit ratio, the Figure 3 hit-location
// breakdown, memory byte hit ratio (§4.2), and the data-transfer /
// bus-contention overhead of remote-browser hits (§5) — and provides the
// sweep harnesses behind every figure.
package sim

import (
	"fmt"
	"io"

	"baps/internal/cache"
	"baps/internal/core"
	"baps/internal/index"
	"baps/internal/latency"
	"baps/internal/obs"
	"baps/internal/stats"
	"baps/internal/trace"
)

// Sizing selects how browser cache sizes derive from the trace (§4).
type Sizing int

const (
	// SizingMinimum sets every browser cache to
	// S_proxy / (MinBrowserDivisor · N) — the paper's conservative
	// "minimum browser cache size" derived from the proxy configuration
	// study it cites.
	SizingMinimum Sizing = iota
	// SizingAverage sets every browser cache to RelativeSize of the
	// average per-client infinite cache size ("each browser cache is
	// also set to …% of the average infinite browser cache size
	// calculated from all the browsers", §4.2) — the sizing used from
	// Figure 4 on.
	SizingAverage
	// SizingPerClient is an ablation variant of SizingAverage that sizes
	// browser i at RelativeSize of client i's own infinite cache size
	// instead of the population average.
	SizingPerClient
)

// String names the sizing rule.
func (s Sizing) String() string {
	switch s {
	case SizingMinimum:
		return "minimum"
	case SizingPerClient:
		return "per-client"
	default:
		return "average"
	}
}

// Config parameterizes one simulation run.
type Config struct {
	// Organization is the caching organization to simulate.
	Organization core.Organization

	// RelativeSize is the proxy cache size as a fraction of the trace's
	// infinite cache size (the x-axis of Figures 2–7); browser caches
	// scale with it per Sizing.
	RelativeSize float64

	// Sizing selects the browser-cache sizing rule.
	Sizing Sizing

	// MinBrowserDivisor is the divisor d in the minimum sizing rule
	// S_browser = S_proxy / (d·N). The default d = 1 makes the
	// aggregate minimum browser capacity equal the proxy capacity,
	// consistent with the paper's remark that the average sizing works
	// out to 2–10× the minimum.
	MinBrowserDivisor float64

	// ProxyCapOverride, when positive, fixes the proxy capacity in bytes
	// regardless of RelativeSize — used by the §4.4 client-scaling
	// experiment, which pins the proxy at 10 % of the full trace's
	// infinite size while the client population shrinks.
	ProxyCapOverride int64

	// ProxyPolicy and BrowserPolicy select replacement policies (the
	// paper uses LRU; others are ablations).
	ProxyPolicy   cache.Policy
	BrowserPolicy cache.Policy

	// IndexMode, IndexThreshold and IndexStrategy configure the browser
	// index (§2).
	IndexMode      index.Mode
	IndexThreshold float64
	IndexStrategy  index.Strategy

	// ForwardMode selects the §2 delivery alternative for remote hits;
	// ProxyCachesPeerDocs and CacheRemoteHits refine it.
	ForwardMode         core.ForwardMode
	ProxyCachesPeerDocs bool
	CacheRemoteHits     bool

	// BrowserMemFraction is the memory portion of each browser cache
	// (the paper's §4.2 sets it separately and conservatively; §1 argues
	// real browsers keep much or all of their cache in memory). The
	// default is 0.5 — half the browser cache memory-resident.
	BrowserMemFraction float64

	// WarmupFraction excludes the first fraction of requests from the
	// metrics while still exercising the caches — a steady-state view
	// the paper does not take (it counts cold-start misses) but that a
	// downstream user usually wants. 0 reproduces the paper.
	WarmupFraction float64

	// DocTTLSec stamps index entries with a time-to-live (§2's "TTL
	// provided by the data source"); expired entries stop serving
	// remote hits. 0 (the paper's evaluation setting) disables it.
	DocTTLSec float64

	// RevalidateAfterSec, when positive, enables the background
	// revalidation policy (DESIGN.md §14): proxy copies older than this
	// age are kept fresh against origin modifications by background
	// conditional fetches, converting stale-proxy misses into proxy hits
	// at the cost of counted background origin fetches. 0 reproduces the
	// paper.
	RevalidateAfterSec float64

	// PrefetchMinHits, when positive under the browsers-aware
	// organization, enables popularity-driven prefetch: documents whose
	// proxy-level access count reaches the threshold are pushed into idle
	// browser caches, seeding future remote-browser (or even local) hits.
	// 0 disables.
	PrefetchMinHits int

	// ParentRelativeSize, when positive, adds an upper-level proxy of
	// that fraction of the infinite cache size between the organization
	// and the origin (the hierarchy extension; the paper's evaluation
	// has none).
	ParentRelativeSize float64

	// Latency is the timing model (§4.2/§5).
	Latency latency.Model

	// Metrics, when non-nil, exports per-request resolution counters and
	// bus-transfer summaries onto the registry (baps_sim_* families).
	// Counter registration is idempotent, so sweeps can hand the same
	// registry to consecutive runs to accumulate, or a fresh one per run
	// to isolate.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's configuration for an organization:
// LRU everywhere, immediate index updates, most-recent holder selection,
// fetch-forward delivery with proxy caching of relayed documents, 1/10
// memory tiers, and the restored latency constants.
func DefaultConfig(org core.Organization) Config {
	return Config{
		Organization:        org,
		RelativeSize:        0.10,
		Sizing:              SizingAverage,
		MinBrowserDivisor:   1,
		ProxyPolicy:         cache.LRU,
		BrowserPolicy:       cache.LRU,
		IndexMode:           index.Immediate,
		IndexThreshold:      0.05,
		IndexStrategy:       index.SelectMostRecent,
		ForwardMode:         core.FetchForward,
		ProxyCachesPeerDocs: true,
		CacheRemoteHits:     true,
		BrowserMemFraction:  0.5,
		Latency:             latency.Default(),
	}
}

// Validate reports configuration errors not already caught by core.
func (c *Config) Validate() error {
	if c.RelativeSize <= 0 && c.ProxyCapOverride <= 0 {
		return fmt.Errorf("sim: RelativeSize must be > 0 (or ProxyCapOverride set)")
	}
	if c.RelativeSize < 0 || c.RelativeSize > 1 {
		return fmt.Errorf("sim: RelativeSize %g out of (0,1]", c.RelativeSize)
	}
	if c.MinBrowserDivisor <= 0 {
		return fmt.Errorf("sim: MinBrowserDivisor must be > 0")
	}
	if c.WarmupFraction < 0 || c.WarmupFraction >= 1 {
		return fmt.Errorf("sim: WarmupFraction %g out of [0,1)", c.WarmupFraction)
	}
	if c.ParentRelativeSize < 0 || c.ParentRelativeSize > 1 {
		return fmt.Errorf("sim: ParentRelativeSize %g out of [0,1]", c.ParentRelativeSize)
	}
	return c.Latency.Validate()
}

// buildCoreConfig derives cache capacities from the trace statistics.
func buildCoreConfig(st *trace.Stats, c Config) core.Config {
	proxyCap := int64(c.RelativeSize * float64(st.InfiniteCacheBytes))
	if c.ProxyCapOverride > 0 {
		proxyCap = c.ProxyCapOverride
	}
	n := st.NumClients
	caps := make([]int64, n)
	switch c.Sizing {
	case SizingMinimum:
		per := int64(float64(proxyCap) / (c.MinBrowserDivisor * float64(n)))
		for i := range caps {
			caps[i] = per
		}
	case SizingPerClient:
		for i := range caps {
			caps[i] = int64(c.RelativeSize * float64(st.ClientInfiniteBytes[i]))
		}
	default: // SizingAverage
		per := int64(c.RelativeSize * float64(st.AvgClientInfiniteBytes()))
		for i := range caps {
			caps[i] = per
		}
	}
	return core.Config{
		Organization:        c.Organization,
		NumClients:          n,
		NumDocs:             st.UniqueDocs,
		ProxyCapacity:       proxyCap,
		BrowserCapacity:     caps,
		ProxyPolicy:         c.ProxyPolicy,
		BrowserPolicy:       c.BrowserPolicy,
		MemFraction:         c.Latency.MemFraction,
		BrowserMemFraction:  c.BrowserMemFraction,
		IndexMode:           c.IndexMode,
		IndexThreshold:      c.IndexThreshold,
		IndexStrategy:       c.IndexStrategy,
		ForwardMode:         c.ForwardMode,
		ProxyCachesPeerDocs: c.ProxyCachesPeerDocs,
		CacheRemoteHits:     c.CacheRemoteHits,
		DocTTLSec:           c.DocTTLSec,
		RevalidateAfterSec:  c.RevalidateAfterSec,
		PrefetchMinHits:     c.PrefetchMinHits,
		ParentCapacity:      int64(c.ParentRelativeSize * float64(st.InfiniteCacheBytes)),
	}
}

// Runner replays traces while pooling the heavyweight per-run state — the
// core.System (caches, index, publishers), the contention bus, and the
// latency histogram — across consecutive runs. The zero value is ready to
// use. A Runner is not safe for concurrent use; sweep drivers give each
// worker goroutine its own.
type Runner struct {
	sys  *core.System
	bus  *latency.Bus
	hist stats.Histogram
}

// Run replays tr through the configured organization. st may carry
// precomputed trace statistics (to share across the runs of a sweep); pass
// nil to compute them here.
func Run(tr *trace.Trace, st *trace.Stats, c Config) (Result, error) {
	var rn Runner
	return rn.Run(tr, st, c)
}

// RunStream is Run for an out-of-core source: it replays a trace.Stream
// (binary or text) without the trace ever being resident. st must come from
// a prior stats pass over the same source (trace.StreamStats); on an
// in-memory trace the result is bit-identical to Run.
func RunStream(s trace.Stream, st *trace.Stats, c Config) (Result, error) {
	var rn Runner
	return rn.RunStream(s, st, c)
}

// Run is like the package-level Run but reuses the Runner's pooled system,
// bus, and histogram when the previous run's shape allows it.
func (rn *Runner) Run(tr *trace.Trace, st *trace.Stats, c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	if st == nil {
		s := trace.Compute(tr)
		st = &s
	}
	return rn.runStream(trace.NewSliceStream(tr), st, len(tr.Requests), c)
}

// RunStream is the pooled-state counterpart of the package-level RunStream.
func (rn *Runner) RunStream(s trace.Stream, st *trace.Stats, c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	return rn.runStream(s, st, st.NumRequests, c)
}

// runStream builds (or reuses) the simulated system and drives the replay
// engine over the stream. totalRequests anchors the warm-up cutoff.
func (rn *Runner) runStream(s trace.Stream, st *trace.Stats, totalRequests int, c Config) (Result, error) {
	ccfg := buildCoreConfig(st, c)
	if c.Metrics != nil {
		ccfg.Metrics = core.NewAccessMetrics(c.Metrics)
	}
	sys := rn.sys
	if sys == nil || !sys.Reset(ccfg) {
		var err error
		if sys, err = core.New(ccfg); err != nil {
			return Result{}, err
		}
		rn.sys = sys
	}
	if rn.bus == nil {
		rn.bus = latency.NewBus(c.Latency)
	} else {
		rn.bus.ResetModel(c.Latency)
	}
	bus := rn.bus
	if c.Metrics != nil {
		busWait := c.Metrics.Summary("baps_sim_bus_wait_seconds",
			"Bus-contention wait per remote-hit LAN transfer.")
		busDur := c.Metrics.Summary("baps_sim_bus_transfer_seconds",
			"Raw LAN transfer time per remote-hit leg.")
		busBytes := c.Metrics.Counter("baps_sim_bus_bytes_total",
			"Bytes moved over the shared LAN by remote hits.")
		bus.SetObserver(func(wait, duration float64, size int64) {
			busWait.Observe(wait)
			busDur.Observe(duration)
			busBytes.Add(size)
		})
	} else {
		bus.SetObserver(nil)
	}
	rn.hist.Reset()
	warmup := int(c.WarmupFraction * float64(totalRequests))
	rp := newReplay(sys, bus, &rn.hist, c, warmup)
	rp.res.Trace = s.Name()
	rp.res.ProxyCap = ccfg.ProxyCapacity
	for _, cap := range ccfg.BrowserCapacity {
		rp.res.BrowserCapTotal += cap
	}
	buf := make([]trace.Request, trace.StreamBatchSize)
	for {
		n, err := s.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < n; i++ {
			rp.step(buf[i])
		}
	}
	return rp.finish(), nil
}

// readTime is the storage read time at the serving cache.
func readTime(m latency.Model, tier cache.Tier, size int64) float64 {
	if tier == cache.TierMemory {
		return m.MemRead(size)
	}
	return m.DiskRead(size)
}
