package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"baps/internal/core"
	"baps/internal/index"
	"baps/internal/synth"
	"baps/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden simulation fixtures")

// goldenCases pins the exact simulation outputs of the canet2 profile at
// 5 % workload scale: all five organizations under the paper's default
// configuration, plus a periodic-protocol + TTL + warm-up variant that
// exercises false index hits and the stale counters. Any hot-path
// representation change (string keys -> interned doc IDs, map -> slice
// caches) must keep every Result field bit-identical.
func goldenCases() []Config {
	var cases []Config
	for _, org := range core.Organizations() {
		cases = append(cases, DefaultConfig(org))
	}
	periodic := DefaultConfig(core.BrowsersAware)
	periodic.IndexMode = index.Periodic
	periodic.IndexThreshold = 0.05
	periodic.IndexStrategy = index.SelectLeastLoaded
	periodic.DocTTLSec = 1800
	periodic.WarmupFraction = 0.10
	cases = append(cases, periodic)
	direct := DefaultConfig(core.BrowsersAware)
	direct.ForwardMode = core.DirectForward
	direct.ProxyCachesPeerDocs = false
	direct.ParentRelativeSize = 0.15
	cases = append(cases, direct)
	return cases
}

func goldenTrace(t *testing.T) *trace.Trace {
	t.Helper()
	var prof synth.Profile
	for _, p := range synth.Profiles() {
		if p.Name == "canet2" {
			prof = p
		}
	}
	if prof.Name == "" {
		t.Fatal("canet2 profile missing")
	}
	tr, err := synth.Generate(synth.Scaled(prof, 0.05))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGoldenEquivalence(t *testing.T) {
	tr := goldenTrace(t)
	st := trace.Compute(tr)
	var got []Result
	for i, cfg := range goldenCases() {
		res, err := Run(tr, &st, cfg)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if err := res.Check(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got = append(got, res)
	}

	path := filepath.Join("testdata", "golden_canet2.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		raw, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d cases)", path, len(got))
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to record): %v", err)
	}
	var want []Result
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d cases, produced %d", len(want), len(got))
	}
	for i := range got {
		compareResults(t, i, want[i], got[i])
	}
}

// compareResults asserts field-by-field bit-identical equality, naming the
// first diverging field for debuggability.
func compareResults(t *testing.T, caseIdx int, want, got Result) {
	t.Helper()
	if want == got {
		return
	}
	wv, gv := reflect.ValueOf(want), reflect.ValueOf(got)
	tt := wv.Type()
	for f := 0; f < tt.NumField(); f++ {
		if wf, gf := wv.Field(f).Interface(), gv.Field(f).Interface(); wf != gf {
			t.Errorf("case %d (%v): field %s diverged: fixture %v, got %v",
				caseIdx, got.Organization, tt.Field(f).Name, wf, gf)
		}
	}
	if !t.Failed() {
		t.Errorf("case %d: results differ: %s", caseIdx, diffHint(want, got))
	}
}

func diffHint(want, got Result) string {
	return fmt.Sprintf("want %+v, got %+v", want, got)
}
