package sim

import (
	"baps/internal/cache"
	"baps/internal/core"
	"baps/internal/latency"
	"baps/internal/stats"
	"baps/internal/trace"
)

// replay is the per-request accounting engine shared by the sequential and
// sharded drivers: it feeds requests through a core.System, prices each
// resolution with the latency model and contention bus, and accumulates the
// Result. One replay owns its system/bus/histogram for the duration of a
// run; the sharded driver builds one per shard.
type replay struct {
	sys  *core.System
	bus  *latency.Bus
	hist *stats.Histogram
	m    latency.Model
	fwd  core.ForwardMode

	// warmup is the number of leading requests excluded from metrics; idx
	// counts requests replayed so far. The bus totals are snapshotted the
	// instant idx reaches warmup so warm-up transfers are excluded from
	// the Remote* wire totals.
	warmup int
	idx    int

	warmTransferSec   float64
	warmContentionSec float64
	warmTransfers     int64
	warmBytes         int64

	res Result
}

// newReplay readies an engine over an already-reset system and bus. The
// caller stamps res.Trace / res.ProxyCap / res.BrowserCapTotal.
func newReplay(sys *core.System, bus *latency.Bus, hist *stats.Histogram, c Config, warmup int) *replay {
	return &replay{
		sys:    sys,
		bus:    bus,
		hist:   hist,
		m:      c.Latency,
		fwd:    c.ForwardMode,
		warmup: warmup,
		res: Result{
			Organization: c.Organization,
			RelativeSize: c.RelativeSize,
			Sizing:       c.Sizing,
		},
	}
}

// step replays one request.
func (rp *replay) step(r trace.Request) {
	if rp.idx == rp.warmup {
		// Metrics start here; remote-bus totals accumulated during
		// warm-up are excluded in finish.
		rp.warmTransferSec = rp.bus.TransferSec
		rp.warmContentionSec = rp.bus.ContentionSec
		rp.warmTransfers = rp.bus.Transfers
		rp.warmBytes = rp.bus.Bytes
	}
	counted := rp.idx >= rp.warmup
	rp.idx++
	out := rp.sys.Access(r)

	m := rp.m
	res := &rp.res
	var lat float64
	var remoteHops int64
	switch out.Class {
	case core.HitLocalBrowser:
		lat = readTime(m, out.Tier, r.Size)
	case core.HitProxy:
		lat = readTime(m, out.Tier, r.Size) + m.LANTransfer(r.Size)
	case core.HitRemoteBrowser:
		lat = readTime(m, out.Tier, r.Size)
		// Browser→proxy→browser under fetch-forward (two LAN legs),
		// browser→browser under direct-forward (one).
		hops := 1
		if rp.fwd == core.FetchForward {
			hops = 2
		}
		at := r.Time
		for h := 0; h < hops; h++ {
			wait, dur := rp.bus.Transfer(at, r.Size)
			at += wait + dur
			lat += wait + dur
		}
		remoteHops = int64(hops)
	case core.HitParent:
		// The parent sits partway up the WAN path.
		lat = readTime(m, out.Tier, r.Size) +
			m.ParentCostFactor*m.UpstreamFetch(r.Size) + m.LANTransfer(r.Size)
	case core.Miss:
		lat = m.UpstreamFetch(r.Size) + m.LANTransfer(r.Size)
	}
	// A wasted contact with a stale index holder costs one LAN connection
	// setup each way.
	lat += 2 * m.ConnSetupSec * float64(out.FalseIndexHits)
	if !counted {
		return
	}
	res.Requests++
	res.TotalBytes += r.Size
	switch out.Class {
	case core.HitLocalBrowser:
		res.LocalHits++
		res.LocalBytes += r.Size
	case core.HitProxy:
		res.ProxyHits++
		res.ProxyBytes += r.Size
	case core.HitRemoteBrowser:
		res.RemoteHits++
		res.RemoteBytes += r.Size
		res.RemoteConnections += remoteHops
	case core.HitParent:
		res.ParentHits++
		res.ParentBytes += r.Size
	case core.Miss:
		res.Misses++
	}
	// Parent hits are upstream traffic in the paper's metrics: only
	// browser/proxy/remote-browser hits count as cache hits.
	if out.Class != core.Miss && out.Class != core.HitParent {
		res.HitLatencySec += lat
		if out.Tier == cache.TierMemory {
			res.MemoryHitBytes += r.Size
		}
	}
	res.FalseIndexHits += int64(out.FalseIndexHits)
	if out.StaleLocal {
		res.StaleLocal++
	}
	if out.StaleProxy {
		res.StaleProxy++
	}
	if out.Revalidated {
		res.Revalidations++
	}
	if out.PrefetchPushed {
		res.PrefetchPushes++
	}
	res.TotalServiceSec += lat
	rp.hist.Add(lat)
}

// finish folds the post-warm-up bus deltas, index-traffic totals, and
// latency quantiles into the Result and returns it.
func (rp *replay) finish() Result {
	res := rp.res
	res.IndexMessages, res.IndexEntriesShipped = rp.sys.IndexMessageStats()
	res.RemoteTransferSec = rp.bus.TransferSec - rp.warmTransferSec
	res.RemoteContentionSec = rp.bus.ContentionSec - rp.warmContentionSec
	res.RemoteBytesOnWire = rp.bus.Bytes - rp.warmBytes
	res.RemoteConnectionsOnWire = rp.bus.Transfers - rp.warmTransfers
	res.ServiceP50 = rp.hist.Quantile(0.50)
	res.ServiceP95 = rp.hist.Quantile(0.95)
	res.ServiceP99 = rp.hist.Quantile(0.99)
	res.ServiceMax = rp.hist.Max()
	return res
}
