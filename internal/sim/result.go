package sim

import (
	"fmt"

	"baps/internal/core"
	"baps/internal/stats"
)

// Result accumulates the metrics of one simulation run.
type Result struct {
	Trace        string
	Organization core.Organization
	RelativeSize float64
	Sizing       Sizing

	// Derived capacities, for reporting.
	ProxyCap        int64
	BrowserCapTotal int64

	// Request and byte accounting.
	Requests   int64
	TotalBytes int64

	LocalHits, ProxyHits, RemoteHits, Misses int64
	LocalBytes, ProxyBytes, RemoteBytes      int64

	// ParentHits counts requests served by the optional upper-level
	// proxy (the hierarchy extension). Per the paper's metrics these are
	// upstream traffic, not cache hits: they are excluded from HitRatio.
	ParentHits  int64
	ParentBytes int64

	// MemoryHitBytes counts hit bytes served from a memory tier at the
	// serving cache (browser, proxy or remote browser) — the §4.2 metric.
	MemoryHitBytes int64

	// Index staleness and document modification accounting.
	FalseIndexHits int64
	StaleLocal     int64
	StaleProxy     int64

	// Background-pipeline accounting (zero with the policies disabled):
	// stale proxy copies rescued by background revalidation (each cost one
	// background origin fetch) and popularity-driven pushes into browser
	// caches.
	Revalidations  int64
	PrefetchPushes int64

	// Index-maintenance traffic (§5): protocol messages from browsers to
	// the proxy's index and the entries they carried, summed over clients
	// for the whole replay (warm-up included — protocol chatter does not
	// pause during warm-up). Immediate ships one entry per message;
	// Periodic re-ships the full directory per flush; Batched ships only
	// the net deltas per flush.
	IndexMessages       int64
	IndexEntriesShipped int64

	// Latency accounting (seconds).
	TotalServiceSec     float64
	HitLatencySec       float64
	RemoteTransferSec   float64
	RemoteContentionSec float64
	RemoteConnections   int64
	RemoteBytesOnWire   int64
	// RemoteConnectionsOnWire counts bus-level transfers after warm-up
	// (equals RemoteConnections when WarmupFraction is 0).
	RemoteConnectionsOnWire int64

	// Per-request service-time distribution (seconds): median, tail
	// percentiles and maximum, from a streaming log-scale histogram.
	ServiceP50 float64
	ServiceP95 float64
	ServiceP99 float64
	ServiceMax float64
}

// Hits is the total number of cache hits at any layer.
func (r *Result) Hits() int64 { return r.LocalHits + r.ProxyHits + r.RemoteHits }

// HitBytes is the total bytes served from any cache layer.
func (r *Result) HitBytes() int64 { return r.LocalBytes + r.ProxyBytes + r.RemoteBytes }

// HitRatio is hits over requests (the paper's primary metric).
func (r *Result) HitRatio() float64 {
	return stats.Ratio(float64(r.Hits()), float64(r.Requests))
}

// ByteHitRatio is hit bytes over requested bytes.
func (r *Result) ByteHitRatio() float64 {
	return stats.Ratio(float64(r.HitBytes()), float64(r.TotalBytes))
}

// MemoryByteHitRatio is memory-tier hit bytes over requested bytes (§4.2).
func (r *Result) MemoryByteHitRatio() float64 {
	return stats.Ratio(float64(r.MemoryHitBytes), float64(r.TotalBytes))
}

// LocalHitRatio, ProxyHitRatio and RemoteHitRatio are the Figure 3
// breakdown components (fractions of all requests).
func (r *Result) LocalHitRatio() float64 {
	return stats.Ratio(float64(r.LocalHits), float64(r.Requests))
}

// ProxyHitRatio is the proxy component of the hit-ratio breakdown.
func (r *Result) ProxyHitRatio() float64 {
	return stats.Ratio(float64(r.ProxyHits), float64(r.Requests))
}

// RemoteHitRatio is the remote-browsers component of the breakdown.
func (r *Result) RemoteHitRatio() float64 {
	return stats.Ratio(float64(r.RemoteHits), float64(r.Requests))
}

// LocalByteHitRatio is the local-browser component of the byte breakdown.
func (r *Result) LocalByteHitRatio() float64 {
	return stats.Ratio(float64(r.LocalBytes), float64(r.TotalBytes))
}

// ProxyByteHitRatio is the proxy component of the byte breakdown.
func (r *Result) ProxyByteHitRatio() float64 {
	return stats.Ratio(float64(r.ProxyBytes), float64(r.TotalBytes))
}

// RemoteByteHitRatio is the remote-browsers component of the byte breakdown.
func (r *Result) RemoteByteHitRatio() float64 {
	return stats.Ratio(float64(r.RemoteBytes), float64(r.TotalBytes))
}

// RemoteCommSec is the total communication time spent on remote-browser
// transfers, including contention (§5).
func (r *Result) RemoteCommSec() float64 {
	return r.RemoteTransferSec + r.RemoteContentionSec
}

// RemoteCommFraction is remote communication time over total workload
// service time — the paper reports < 1.2 % across all traces.
func (r *Result) RemoteCommFraction() float64 {
	return stats.Ratio(r.RemoteCommSec(), r.TotalServiceSec)
}

// ContentionShare is bus contention over total remote communication time —
// the paper reports up to 0.12 %, i.e. no bursty hits to remote browsers.
func (r *Result) ContentionShare() float64 {
	return stats.Ratio(r.RemoteContentionSec, r.RemoteCommSec())
}

// Check verifies the run's conservation invariants; tests and the harness
// call it after every run.
func (r *Result) Check() error {
	if r.LocalHits+r.ProxyHits+r.RemoteHits+r.ParentHits+r.Misses != r.Requests {
		return fmt.Errorf("sim: hit classes sum %d != requests %d",
			r.LocalHits+r.ProxyHits+r.RemoteHits+r.ParentHits+r.Misses, r.Requests)
	}
	if r.HitBytes() > r.TotalBytes {
		return fmt.Errorf("sim: hit bytes %d exceed total %d", r.HitBytes(), r.TotalBytes)
	}
	if r.MemoryHitBytes > r.HitBytes() {
		return fmt.Errorf("sim: memory hit bytes %d exceed hit bytes %d", r.MemoryHitBytes, r.HitBytes())
	}
	if hr := r.HitRatio(); hr < 0 || hr > 1 {
		return fmt.Errorf("sim: hit ratio %g out of range", hr)
	}
	if r.TotalServiceSec < 0 || r.HitLatencySec < 0 || r.RemoteContentionSec < 0 {
		return fmt.Errorf("sim: negative time accounting")
	}
	if r.HitLatencySec > r.TotalServiceSec+1e-9 {
		return fmt.Errorf("sim: hit latency %g exceeds total service %g", r.HitLatencySec, r.TotalServiceSec)
	}
	if r.IndexMessages < 0 || r.IndexEntriesShipped < 0 {
		return fmt.Errorf("sim: negative index-message accounting")
	}
	if r.IndexEntriesShipped < r.IndexMessages {
		// Every counted message carries at least one entry.
		return fmt.Errorf("sim: %d index messages shipped only %d entries",
			r.IndexMessages, r.IndexEntriesShipped)
	}
	return nil
}
