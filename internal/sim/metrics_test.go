package sim

import (
	"testing"

	"baps/internal/core"
	"baps/internal/obs"
)

// TestRunExportsMetrics replays a trace with a registry attached and checks
// the exported counters agree with the simulator's own Result accounting —
// the two count the same events through independent paths.
func TestRunExportsMetrics(t *testing.T) {
	tr := testTrace(t, 3)
	reg := obs.NewRegistry()
	cfg := DefaultConfig(core.BrowsersAware)
	cfg.Metrics = reg
	res, err := Run(tr, nil, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := res.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}

	byClass := func(h core.HitClass) int64 {
		return reg.VecValue("baps_sim_requests_by_class_total", h.String())
	}
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"requests", reg.CounterValue("baps_sim_requests_total"), res.Requests},
		{"local", byClass(core.HitLocalBrowser), res.LocalHits},
		{"proxy", byClass(core.HitProxy), res.ProxyHits},
		{"remote", byClass(core.HitRemoteBrowser), res.RemoteHits},
		{"miss", byClass(core.Miss), res.Misses},
		{"false index hits", reg.CounterValue("baps_sim_false_index_hits_total"), res.FalseIndexHits},
		{"bytes", reg.CounterValue("baps_sim_bytes_requested_total"), res.TotalBytes},
		{"bus bytes", reg.CounterValue("baps_sim_bus_bytes_total"), res.RemoteBytesOnWire},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s: registry %d, result %d", c.name, c.got, c.want)
		}
	}
	if res.RemoteHits == 0 {
		t.Fatal("trace produced no remote hits; test exercises nothing")
	}

	// A second run on the same pooled runner with metrics disabled must not
	// keep feeding the old registry (the bus observer must be cleared).
	before := reg.CounterValue("baps_sim_bus_bytes_total")
	var rn Runner
	cfg.Metrics = reg
	if _, err := rn.Run(tr, nil, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Metrics = nil
	if _, err := rn.Run(tr, nil, cfg); err != nil {
		t.Fatalf("Run: %v", err)
	}
	after := reg.CounterValue("baps_sim_bus_bytes_total")
	if after != 2*before {
		t.Errorf("bus bytes after disabled run = %d, want %d (observer not cleared?)", after, 2*before)
	}
}
