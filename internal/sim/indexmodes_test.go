package sim

import (
	"testing"

	"baps/internal/core"
	"baps/internal/index"
)

// TestIndexModeMessageVolume replays one trace under all three §2/§5 index
// protocols and pins their ordering:
//
//   - Immediate sends one message per cache change (most messages);
//   - Periodic sends few messages but each re-ships the full directory
//     (most entries);
//   - Batched sends Periodic's message count while shipping only the net
//     deltas — strictly fewer messages than Immediate AND strictly fewer
//     entries than Periodic.
//
// Hit ratios must not depend on the wire encoding: Periodic and Batched
// flush at the same threshold, so their staleness — and therefore their hit
// counts — are identical.
func TestIndexModeMessageVolume(t *testing.T) {
	tr := testTrace(t, 42)
	run := func(mode index.Mode) Result {
		c := DefaultConfig(core.BrowsersAware)
		c.IndexMode = mode
		// Coarse threshold: the small test-trace browser caches make 0.05
		// flush on nearly every change, hiding the batching.
		c.IndexThreshold = 0.25
		res, err := Run(tr, nil, c)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := res.Check(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		return res
	}
	imm := run(index.Immediate)
	per := run(index.Periodic)
	bat := run(index.Batched)

	if imm.IndexMessages == 0 || per.IndexMessages == 0 || bat.IndexMessages == 0 {
		t.Fatalf("a mode sent no index messages: imm=%d per=%d bat=%d",
			imm.IndexMessages, per.IndexMessages, bat.IndexMessages)
	}
	// Immediate: exactly one entry per message.
	if imm.IndexMessages != imm.IndexEntriesShipped {
		t.Errorf("immediate: messages %d != entries %d", imm.IndexMessages, imm.IndexEntriesShipped)
	}
	// Same flush trigger → same message count and identical staleness.
	if bat.IndexMessages != per.IndexMessages {
		t.Errorf("batched messages %d != periodic %d (same threshold must flush identically)",
			bat.IndexMessages, per.IndexMessages)
	}
	if bat.HitRatio() != per.HitRatio() {
		t.Errorf("batched hit ratio %g != periodic %g (wire encoding changed cache behavior)",
			bat.HitRatio(), per.HitRatio())
	}
	// The §5 claims: far fewer messages than Immediate, far fewer entries
	// than Periodic. 2× is a loose floor — the measured gap is much larger.
	if bat.IndexMessages*2 >= imm.IndexMessages {
		t.Errorf("batched messages %d not well below immediate %d",
			bat.IndexMessages, imm.IndexMessages)
	}
	if bat.IndexEntriesShipped*2 >= per.IndexEntriesShipped {
		t.Errorf("batched entries %d not well below periodic %d",
			bat.IndexEntriesShipped, per.IndexEntriesShipped)
	}
	t.Logf("messages: imm=%d per=%d bat=%d; entries: imm=%d per=%d bat=%d",
		imm.IndexMessages, per.IndexMessages, bat.IndexMessages,
		imm.IndexEntriesShipped, per.IndexEntriesShipped, bat.IndexEntriesShipped)
}
