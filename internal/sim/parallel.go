package sim

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"baps/internal/core"
	"baps/internal/latency"
	"baps/internal/stats"
	"baps/internal/trace"
)

// Sharded replay (DESIGN.md §16): the client population is partitioned
// round-robin across S shard workers (global client g lands on shard g mod S
// as local client g div S), each shard simulating an independent slice of the
// organization — its own browsers, a 1/S slice of the proxy and parent
// capacity, its own contention bus. A router goroutine drives the trace
// stream once, fanning each request to its owner shard in trace order, so
// every shard sees its clients' requests in the original global order and is
// therefore deterministic regardless of scheduling. Results merge in shard
// index order.
//
// Determinism contract: with Shards == 1 the result is bit-identical to Run /
// RunStream (the partition is the identity and the capacity slices reduce to
// the global ones). With Shards > 1 the simulated organization genuinely
// changes — peer-browser hits can only come from same-shard peers and each
// proxy slice evicts independently — so aggregate ratios carry a small,
// population-dependent epsilon against the sequential run (gated by test at
// canet2's scale). Repeated runs at the same shard count are bit-identical to
// each other.

// shardChunkSize is the number of requests per router→worker hand-off; large
// enough to amortize channel overhead, small enough to keep buffered memory
// per shard trivial.
const shardChunkSize = 2048

// ShardProgress publishes live replay progress from shard workers; safe for
// concurrent use. Obtain one from NewShardProgress and pass it via
// ShardedOptions; a progress ticker can read it while the replay runs.
type ShardProgress struct {
	counts []atomic.Int64
}

// NewShardProgress readies a progress board for the given shard count.
func NewShardProgress(shards int) *ShardProgress {
	return &ShardProgress{counts: make([]atomic.Int64, shards)}
}

// Shards reports the number of shards tracked.
func (p *ShardProgress) Shards() int { return len(p.counts) }

// Shard reports the requests replayed so far by shard i.
func (p *ShardProgress) Shard(i int) int64 { return p.counts[i].Load() }

// Total reports the requests replayed so far across all shards.
func (p *ShardProgress) Total() int64 {
	var t int64
	for i := range p.counts {
		t += p.counts[i].Load()
	}
	return t
}

// ShardedOptions tunes RunShardedOpts.
type ShardedOptions struct {
	// Shards is the worker count; 0 means GOMAXPROCS. Clamped to the
	// client population.
	Shards int

	// Progress, when non-nil, receives live per-shard replay counts. It
	// must have been created with NewShardProgress(Shards) after clamping;
	// ShardCount reports the clamped value up front.
	Progress *ShardProgress
}

// ShardCount reports the effective shard count RunShardedOpts would use for
// a population of numClients: opts.Shards defaulted to GOMAXPROCS and
// clamped to [1, numClients].
func ShardCount(requested, numClients int) int {
	s := requested
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if numClients > 0 && s > numClients {
		s = numClients
	}
	if s < 1 {
		s = 1
	}
	return s
}

// RunSharded replays a trace stream across the given number of shard workers
// (0 = GOMAXPROCS) and merges the per-shard results deterministically. st
// must come from a stats pass over the same source and must carry per-client
// request counts (trace.Compute and trace.StreamStats both provide them).
func RunSharded(s trace.Stream, st *trace.Stats, c Config, shards int) (Result, error) {
	return RunShardedOpts(s, st, c, ShardedOptions{Shards: shards})
}

// RunShardedOpts is RunSharded with live-progress plumbing.
func RunShardedOpts(s trace.Stream, st *trace.Stats, c Config, opts ShardedOptions) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	nshards := ShardCount(opts.Shards, st.NumClients)
	if opts.Progress != nil && opts.Progress.Shards() != nshards {
		return Result{}, fmt.Errorf("sim: progress sized for %d shards, replay uses %d (use ShardCount)",
			opts.Progress.Shards(), nshards)
	}
	if c.WarmupFraction > 0 && len(st.ClientRequests) < st.NumClients {
		return Result{}, fmt.Errorf("sim: sharded warm-up needs per-client request counts; recompute trace stats")
	}
	global := buildCoreConfig(st, c)
	var metrics *core.AccessMetrics
	if c.Metrics != nil {
		metrics = core.NewAccessMetrics(c.Metrics)
	}
	busObserver := busObserverFor(c)

	// Build the shard engines sequentially up front: shard construction
	// mutates no shared state afterwards, and a deterministic build order
	// keeps any interned side effects reproducible.
	engines := make([]*replay, nshards)
	for sh := 0; sh < nshards; sh++ {
		ccfg := shardCoreConfig(global, sh, nshards)
		ccfg.Metrics = metrics
		sys, err := core.New(ccfg)
		if err != nil {
			return Result{}, err
		}
		bus := latency.NewBus(c.Latency)
		bus.SetObserver(busObserver)
		// Per-shard warm-up: the same fraction of the shard's own
		// request subsequence that the sequential replay would skip of
		// the whole trace.
		var shardReqs int64
		for g := sh; g < st.NumClients; g += nshards {
			shardReqs += st.ClientRequests[g]
		}
		warmup := int(c.WarmupFraction * float64(shardReqs))
		engines[sh] = newReplay(sys, bus, &stats.Histogram{}, c, warmup)
	}

	if err := routeShards(s, engines, nshards, opts.Progress); err != nil {
		return Result{}, err
	}

	// Deterministic merge in shard index order.
	merged := Result{
		Trace:        s.Name(),
		Organization: c.Organization,
		RelativeSize: c.RelativeSize,
		Sizing:       c.Sizing,
		ProxyCap:     global.ProxyCapacity,
	}
	for _, cap := range global.BrowserCapacity {
		merged.BrowserCapTotal += cap
	}
	var hist stats.Histogram
	for _, rp := range engines {
		r := rp.finish()
		merged.Requests += r.Requests
		merged.TotalBytes += r.TotalBytes
		merged.LocalHits += r.LocalHits
		merged.ProxyHits += r.ProxyHits
		merged.RemoteHits += r.RemoteHits
		merged.ParentHits += r.ParentHits
		merged.Misses += r.Misses
		merged.LocalBytes += r.LocalBytes
		merged.ProxyBytes += r.ProxyBytes
		merged.RemoteBytes += r.RemoteBytes
		merged.ParentBytes += r.ParentBytes
		merged.MemoryHitBytes += r.MemoryHitBytes
		merged.FalseIndexHits += r.FalseIndexHits
		merged.StaleLocal += r.StaleLocal
		merged.StaleProxy += r.StaleProxy
		merged.Revalidations += r.Revalidations
		merged.PrefetchPushes += r.PrefetchPushes
		merged.IndexMessages += r.IndexMessages
		merged.IndexEntriesShipped += r.IndexEntriesShipped
		merged.TotalServiceSec += r.TotalServiceSec
		merged.HitLatencySec += r.HitLatencySec
		merged.RemoteTransferSec += r.RemoteTransferSec
		merged.RemoteContentionSec += r.RemoteContentionSec
		merged.RemoteConnections += r.RemoteConnections
		merged.RemoteBytesOnWire += r.RemoteBytesOnWire
		merged.RemoteConnectionsOnWire += r.RemoteConnectionsOnWire
		hist.Merge(rp.hist)
	}
	merged.ServiceP50 = hist.Quantile(0.50)
	merged.ServiceP95 = hist.Quantile(0.95)
	merged.ServiceP99 = hist.Quantile(0.99)
	merged.ServiceMax = hist.Max()
	return merged, nil
}

// busObserverFor builds the shared metrics observer for shard buses; obs
// summaries and counters are internally synchronized, so one observer can
// serve every shard. Returns nil when metrics are off.
func busObserverFor(c Config) func(wait, duration float64, size int64) {
	if c.Metrics == nil {
		return nil
	}
	busWait := c.Metrics.Summary("baps_sim_bus_wait_seconds",
		"Bus-contention wait per remote-hit LAN transfer.")
	busDur := c.Metrics.Summary("baps_sim_bus_transfer_seconds",
		"Raw LAN transfer time per remote-hit leg.")
	busBytes := c.Metrics.Counter("baps_sim_bus_bytes_total",
		"Bytes moved over the shared LAN by remote hits.")
	return func(wait, duration float64, size int64) {
		busWait.Observe(wait)
		busDur.Observe(duration)
		busBytes.Add(size)
	}
}

// shardCoreConfig derives shard sh's slice of the global core configuration:
// the shard's clients keep their globally derived browser capacities, and the
// shared tiers (proxy, parent) split evenly. Integer division drops at most
// S-1 bytes of each shared capacity in total — and is exact for S == 1, which
// the bit-identity guarantee relies on.
func shardCoreConfig(global core.Config, sh, nshards int) core.Config {
	ccfg := global
	n := 0
	if global.NumClients > sh {
		n = (global.NumClients - sh + nshards - 1) / nshards
	}
	caps := make([]int64, n)
	for i := 0; i < n; i++ {
		caps[i] = global.BrowserCapacity[sh+i*nshards]
	}
	ccfg.NumClients = n
	ccfg.BrowserCapacity = caps
	ccfg.ProxyCapacity = global.ProxyCapacity / int64(nshards)
	ccfg.ParentCapacity = global.ParentCapacity / int64(nshards)
	return ccfg
}

// routeShards drives the stream once, fanning each request to its owner
// shard over a bounded channel; shard workers replay their subsequence
// concurrently. Chunks are pooled, so steady-state routing allocates
// nothing.
func routeShards(s trace.Stream, engines []*replay, nshards int, progress *ShardProgress) error {
	chans := make([]chan []trace.Request, nshards)
	for i := range chans {
		chans[i] = make(chan []trace.Request, 4)
	}
	pool := sync.Pool{New: func() any {
		return make([]trace.Request, 0, shardChunkSize)
	}}
	var wg sync.WaitGroup
	for sh := 0; sh < nshards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			rp := engines[sh]
			for chunk := range chans[sh] {
				for i := range chunk {
					rp.step(chunk[i])
				}
				if progress != nil {
					progress.counts[sh].Add(int64(len(chunk)))
				}
				pool.Put(chunk[:0])
			}
		}(sh)
	}

	pending := make([][]trace.Request, nshards)
	for i := range pending {
		pending[i] = pool.Get().([]trace.Request)
	}
	flush := func(sh int) {
		if len(pending[sh]) == 0 {
			return
		}
		chans[sh] <- pending[sh]
		pending[sh] = pool.Get().([]trace.Request)
	}

	buf := make([]trace.Request, trace.StreamBatchSize)
	var streamErr error
	for {
		n, err := s.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil {
			streamErr = err
			break
		}
		for i := 0; i < n; i++ {
			r := buf[i]
			sh := int(r.Client) % nshards
			r.Client /= nshards // shard-local client ID
			pending[sh] = append(pending[sh], r)
			if len(pending[sh]) == shardChunkSize {
				flush(sh)
			}
		}
	}
	for sh := 0; sh < nshards; sh++ {
		flush(sh)
		close(chans[sh])
	}
	wg.Wait()
	return streamErr
}
