package sim

import (
	"testing"

	"baps/internal/cache"
	"baps/internal/core"
	"baps/internal/index"
	"baps/internal/trace"
)

// TestRunnerReuseMatchesFreshRuns drives one pooled Runner through a sequence
// of configurations that alternately exercise the in-place System.Reset path
// (same shape, different capacities/thresholds) and the rebuild path (changed
// organization, policy, or index mode), asserting every pooled run is
// bit-identical to a fresh package-level Run. Guards the object-pooling
// fast path the sweep drivers depend on.
func TestRunnerReuseMatchesFreshRuns(t *testing.T) {
	tr := testTrace(t, 21)
	st := trace.Compute(tr)

	mk := func(mut func(*Config)) Config {
		c := DefaultConfig(core.BrowsersAware)
		c.RelativeSize = 0.05
		mut(&c)
		return c
	}
	configs := []Config{
		mk(func(c *Config) {}),
		// Same shape: capacity change → Reset path.
		mk(func(c *Config) { c.RelativeSize = 0.10 }),
		// Shape change: different organization → rebuild.
		mk(func(c *Config) { c.Organization = core.ProxyAndLocalBrowser }),
		// Shape change: browser policy → rebuild.
		mk(func(c *Config) { c.BrowserPolicy = cache.GDSF }),
		// Shape change: periodic index → rebuild, with threshold state.
		mk(func(c *Config) {
			c.IndexMode = index.Periodic
			c.IndexThreshold = 0.05
		}),
		// Back to the first shape: Reset must clear periodic residue.
		mk(func(c *Config) {}),
		// Warm-up and TTL flags flip freely within one shape.
		mk(func(c *Config) { c.WarmupFraction = 0.25 }),
		mk(func(c *Config) { c.DocTTLSec = 600 }),
	}

	var rn Runner
	for i, cfg := range configs {
		fresh, err := Run(tr, &st, cfg)
		if err != nil {
			t.Fatalf("case %d: fresh run: %v", i, err)
		}
		pooled, err := rn.Run(tr, &st, cfg)
		if err != nil {
			t.Fatalf("case %d: pooled run: %v", i, err)
		}
		compareResults(t, i, fresh, pooled)
	}
}
