package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"baps/internal/core"
	"baps/internal/synth"
	"baps/internal/trace"
)

// testTrace builds a small synthetic trace with healthy sharing.
func testTrace(t testing.TB, seed int64) *trace.Trace {
	t.Helper()
	p := synth.Profile{
		Name: "sim-test", Clients: 12, Requests: 8_000, DurationSec: 3600,
		SharedDocs: 1_500, PrivateDocs: 80,
		SharedFraction: 0.7, ZipfAlpha: 0.8, PrivateZipfAlpha: 0.8,
		RecencyFraction: 0.2, RecencyWindow: 64, RecencyGeomP: 0.3,
		MeanDocKB: 8, SizeSigma: 1.3, MinDocBytes: 128, MaxDocBytes: 1 << 20,
		ModifyRate: 0.01, ClientZipfAlpha: 0.3, Seed: seed,
	}
	tr, err := synth.Generate(p)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

func TestDefaultConfigValid(t *testing.T) {
	for _, org := range core.Organizations() {
		c := DefaultConfig(org)
		if err := c.Validate(); err != nil {
			t.Errorf("%v: %v", org, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	c := DefaultConfig(core.BrowsersAware)
	c.RelativeSize = 0
	if err := c.Validate(); err == nil {
		t.Error("RelativeSize=0 accepted without override")
	}
	c.ProxyCapOverride = 1000
	if err := c.Validate(); err != nil {
		t.Errorf("override should satisfy validation: %v", err)
	}
	c = DefaultConfig(core.BrowsersAware)
	c.MinBrowserDivisor = 0
	if err := c.Validate(); err == nil {
		t.Error("MinBrowserDivisor=0 accepted")
	}
	c = DefaultConfig(core.BrowsersAware)
	c.Latency.MemBlockSec = 0
	if err := c.Validate(); err == nil {
		t.Error("invalid latency model accepted")
	}
}

func TestSizingString(t *testing.T) {
	if SizingMinimum.String() != "minimum" || SizingAverage.String() != "average" {
		t.Error("Sizing strings wrong")
	}
}

func TestRunAllOrganizations(t *testing.T) {
	tr := testTrace(t, 1)
	for _, org := range core.Organizations() {
		org := org
		t.Run(org.String(), func(t *testing.T) {
			res, err := Run(tr, nil, DefaultConfig(org))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.Check(); err != nil {
				t.Fatalf("Check: %v", err)
			}
			if res.Requests != int64(len(tr.Requests)) {
				t.Fatalf("Requests = %d", res.Requests)
			}
			if res.HitRatio() <= 0 {
				t.Fatalf("hit ratio %g not positive", res.HitRatio())
			}
			// Organizations without a layer never hit there.
			if org == core.ProxyCacheOnly && res.LocalHits+res.RemoteHits != 0 {
				t.Error("proxy-only produced browser hits")
			}
			if org == core.LocalBrowserCacheOnly && res.ProxyHits+res.RemoteHits != 0 {
				t.Error("local-only produced proxy/remote hits")
			}
			if org == core.GlobalBrowsersCacheOnly && res.ProxyHits != 0 {
				t.Error("global-browsers produced proxy hits")
			}
			if org == core.ProxyAndLocalBrowser && res.RemoteHits != 0 {
				t.Error("proxy-and-local produced remote hits")
			}
			if org != core.BrowsersAware && org != core.GlobalBrowsersCacheOnly && res.RemoteConnections != 0 {
				t.Error("remote transfers without an index")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(t, 2)
	a, err := Run(tr, nil, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, nil, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same trace+config, different results:\n%+v\n%+v", a, b)
	}
}

// TestBAPSDominatesPaperShape is the headline golden-shape test: on a
// sharing-rich trace the browsers-aware proxy beats proxy-and-local-browser,
// which beats proxy-cache-only; local-browser-cache-only is worst (its
// minimum-sized private caches are tiny).
func TestBAPSDominatesPaperShape(t *testing.T) {
	tr := testTrace(t, 3)
	base := DefaultConfig(core.BrowsersAware)
	base.RelativeSize = 0.05
	base.Sizing = SizingMinimum
	sw, err := Sweep(tr, core.Organizations(), []float64{0.05}, base)
	if err != nil {
		t.Fatal(err)
	}
	hr := func(o core.Organization) float64 { return sw.ByOrg[o][0].HitRatio() }

	if hr(core.BrowsersAware) <= hr(core.ProxyAndLocalBrowser) {
		t.Errorf("BAPS %.4f <= P+LB %.4f", hr(core.BrowsersAware), hr(core.ProxyAndLocalBrowser))
	}
	if hr(core.ProxyAndLocalBrowser) < hr(core.ProxyCacheOnly) {
		t.Errorf("P+LB %.4f < proxy-only %.4f", hr(core.ProxyAndLocalBrowser), hr(core.ProxyCacheOnly))
	}
	if hr(core.LocalBrowserCacheOnly) >= hr(core.ProxyAndLocalBrowser) {
		t.Errorf("local-only %.4f >= P+LB %.4f", hr(core.LocalBrowserCacheOnly), hr(core.ProxyAndLocalBrowser))
	}
	if sw.ByOrg[core.BrowsersAware][0].RemoteHits == 0 {
		t.Error("BAPS produced no remote-browser hits on a sharing-rich trace")
	}
}

func TestSweepSizesImproveHitRatio(t *testing.T) {
	tr := testTrace(t, 4)
	base := DefaultConfig(core.BrowsersAware)
	sw, err := Sweep(tr, []core.Organization{core.BrowsersAware}, PaperSizes, base)
	if err != nil {
		t.Fatal(err)
	}
	rs := sw.ByOrg[core.BrowsersAware]
	first, last := rs[0].HitRatio(), rs[len(rs)-1].HitRatio()
	if last <= first {
		t.Errorf("hit ratio did not grow with cache size: %.4f → %.4f", first, last)
	}
	for i, r := range rs {
		if r.RelativeSize != PaperSizes[i] {
			t.Errorf("result %d has size %g, want %g", i, r.RelativeSize, PaperSizes[i])
		}
	}
}

func TestScalingIncrementsGrow(t *testing.T) {
	tr := testTrace(t, 5)
	base := DefaultConfig(core.BrowsersAware)
	base.RelativeSize = 0.10
	sc, err := Scaling(tr, PaperClientFractions, base, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := len(PaperClientFractions)
	if sc.HRIncrementPct[0] > sc.HRIncrementPct[n-1] {
		t.Errorf("HR increment fell with more clients: %v", sc.HRIncrementPct)
	}
	for i, inc := range sc.HRIncrementPct {
		if inc < -1 { // tiny noise tolerated; BAPS must not lose
			t.Errorf("fraction %g: negative increment %.2f%%", sc.Fractions[i], inc)
		}
	}
	// The fixed proxy capacity must hold across fractions.
	for i := range sc.BAPS {
		if sc.BAPS[i].ProxyCap != sc.BAPS[0].ProxyCap {
			t.Error("proxy capacity drifted across client fractions")
		}
	}
}

func TestMemoryStudyShape(t *testing.T) {
	tr := testTrace(t, 6)
	// The §4.2 setting: minimum browser sizing continued from Figure 2,
	// with browser caches memory-resident (the §1 "browser cache in
	// memory" technique; the paper itself notes its browser-memory
	// setting is deliberately un-favorable and real deployments are
	// memory-heavy).
	base := DefaultConfig(core.BrowsersAware)
	base.Sizing = SizingMinimum
	base.BrowserMemFraction = 1.0
	ms, err := MemoryStudy(tr, 0.10, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	// Matched byte hit ratios: the bisection must land close.
	if d := ms.BAPS.ByteHitRatio() - ms.PALB.ByteHitRatio(); d < -0.02 || d > 0.02 {
		t.Fatalf("byte hit ratios not matched: BAPS %.4f vs PALB %.4f",
			ms.BAPS.ByteHitRatio(), ms.PALB.ByteHitRatio())
	}
	if ms.MatchedPALBSize <= ms.BAPS.RelativeSize {
		t.Errorf("PALB matched at %.3f, not larger than BAPS size %.3f",
			ms.MatchedPALBSize, ms.BAPS.RelativeSize)
	}
	// The §4.2 claim: at comparable byte hit ratios, BAPS serves more
	// bytes from memory than the bigger conventional setup.
	if ms.BAPS.MemoryByteHitRatio() <= ms.PALB.MemoryByteHitRatio() {
		t.Errorf("BAPS memory BHR %.4f <= PALB %.4f",
			ms.BAPS.MemoryByteHitRatio(), ms.PALB.MemoryByteHitRatio())
	}
}

func TestMemoryStudyPinnedSize(t *testing.T) {
	tr := testTrace(t, 6)
	ms, err := MemoryStudy(tr, 0.10, 0.20, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if ms.MatchedPALBSize != 0.20 {
		t.Errorf("pinned size ignored: %g", ms.MatchedPALBSize)
	}
	if ms.PALB.RelativeSize != 0.20 || ms.BAPS.RelativeSize != 0.10 {
		t.Errorf("sizes wrong: %g/%g", ms.BAPS.RelativeSize, ms.PALB.RelativeSize)
	}
}

func TestOverheadSmall(t *testing.T) {
	tr := testTrace(t, 7)
	res, err := Run(tr, nil, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	// §5: remote communication is a small share of total service time
	// (paper: <1.2 %; allow slack for the synthetic workload), and
	// contention is a small share of communication time.
	if f := res.RemoteCommFraction(); f > 0.10 {
		t.Errorf("remote comm fraction %.4f implausibly high", f)
	}
	if cs := res.ContentionShare(); cs > 0.25 {
		t.Errorf("contention share %.4f implausibly high", cs)
	}
}

func TestMinimumSizingUsesDivisor(t *testing.T) {
	tr := testTrace(t, 8)
	st := trace.Compute(tr)
	c := DefaultConfig(core.BrowsersAware)
	c.Sizing = SizingMinimum
	c.RelativeSize = 0.10
	cc := buildCoreConfig(&st, c)
	wantProxy := int64(0.10 * float64(st.InfiniteCacheBytes))
	if cc.ProxyCapacity != wantProxy {
		t.Errorf("proxy cap %d, want %d", cc.ProxyCapacity, wantProxy)
	}
	wantBrowser := int64(float64(wantProxy) / float64(st.NumClients))
	for i, b := range cc.BrowserCapacity {
		if b != wantBrowser {
			t.Errorf("browser %d cap %d, want %d", i, b, wantBrowser)
		}
	}
}

func TestAverageSizingUniform(t *testing.T) {
	tr := testTrace(t, 9)
	st := trace.Compute(tr)
	c := DefaultConfig(core.BrowsersAware)
	c.Sizing = SizingAverage
	c.RelativeSize = 0.20
	cc := buildCoreConfig(&st, c)
	want := int64(0.20 * float64(st.AvgClientInfiniteBytes()))
	for i, b := range cc.BrowserCapacity {
		if b != want {
			t.Errorf("browser %d cap %d, want %d", i, b, want)
		}
	}
}

func TestPerClientSizing(t *testing.T) {
	tr := testTrace(t, 9)
	st := trace.Compute(tr)
	c := DefaultConfig(core.BrowsersAware)
	c.Sizing = SizingPerClient
	c.RelativeSize = 0.20
	cc := buildCoreConfig(&st, c)
	for i, b := range cc.BrowserCapacity {
		want := int64(0.20 * float64(st.ClientInfiniteBytes[i]))
		if b != want {
			t.Errorf("browser %d cap %d, want %d", i, b, want)
		}
	}
}

func TestProxyCapOverride(t *testing.T) {
	tr := testTrace(t, 10)
	st := trace.Compute(tr)
	c := DefaultConfig(core.BrowsersAware)
	c.ProxyCapOverride = 123_456
	cc := buildCoreConfig(&st, c)
	if cc.ProxyCapacity != 123_456 {
		t.Errorf("override ignored: %d", cc.ProxyCapacity)
	}
}

// TestQuickConservation runs random small traces through random
// organizations and checks every Result invariant.
func TestQuickConservation(t *testing.T) {
	orgs := core.Organizations()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := synth.Profile{
			Name: "q", Clients: rng.Intn(6) + 2, Requests: 1_500, DurationSec: 600,
			SharedDocs: 300, PrivateDocs: 40,
			SharedFraction: 0.6, ZipfAlpha: 0.8, PrivateZipfAlpha: 0.8,
			RecencyFraction: 0.2, RecencyWindow: 32, RecencyGeomP: 0.3,
			MeanDocKB: 6, SizeSigma: 1.2, MinDocBytes: 64, MaxDocBytes: 1 << 19,
			ModifyRate: 0.05, ClientZipfAlpha: 0.3, Seed: seed,
		}
		tr, err := synth.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(orgs[rng.Intn(len(orgs))])
		cfg.RelativeSize = []float64{0.005, 0.05, 0.5}[rng.Intn(3)]
		if rng.Intn(2) == 0 {
			cfg.Sizing = SizingMinimum
		}
		if rng.Intn(2) == 0 {
			cfg.ForwardMode = core.DirectForward
		}
		res, err := Run(tr, nil, cfg)
		if err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		if err := res.Check(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
