package sim

import (
	"testing"

	"baps/internal/core"
	"baps/internal/index"
	"baps/internal/trace"
)

func TestWarmupValidation(t *testing.T) {
	c := DefaultConfig(core.BrowsersAware)
	c.WarmupFraction = -0.1
	if err := c.Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
	c.WarmupFraction = 1.0
	if err := c.Validate(); err == nil {
		t.Error("warmup = 1 accepted")
	}
}

func TestWarmupExcludesColdStart(t *testing.T) {
	tr := testTrace(t, 11)
	cold := DefaultConfig(core.BrowsersAware)
	warm := cold
	warm.WarmupFraction = 0.5

	rc, err := Run(tr, nil, cold)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(tr, nil, warm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Check(); err != nil {
		t.Fatal(err)
	}
	if rw.Requests >= rc.Requests {
		t.Fatalf("warmup did not reduce counted requests: %d vs %d", rw.Requests, rc.Requests)
	}
	want := int64(len(tr.Requests)) - int64(0.5*float64(len(tr.Requests)))
	if rw.Requests != want {
		t.Fatalf("counted %d requests, want %d", rw.Requests, want)
	}
	// Steady-state hit ratio exceeds the cold-start-inclusive one (the
	// caches are already populated when counting starts).
	if rw.HitRatio() <= rc.HitRatio() {
		t.Errorf("warm HR %.4f <= cold HR %.4f", rw.HitRatio(), rc.HitRatio())
	}
}

func TestServicePercentilesPopulated(t *testing.T) {
	tr := testTrace(t, 12)
	res, err := Run(tr, nil, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceP50 <= 0 || res.ServiceP95 <= 0 || res.ServiceP99 <= 0 || res.ServiceMax <= 0 {
		t.Fatalf("percentiles not populated: %+v", res)
	}
	if !(res.ServiceP50 <= res.ServiceP95 && res.ServiceP95 <= res.ServiceP99 && res.ServiceP99 <= res.ServiceMax*1.07) {
		t.Fatalf("percentiles not ordered: p50=%g p95=%g p99=%g max=%g",
			res.ServiceP50, res.ServiceP95, res.ServiceP99, res.ServiceMax)
	}
	// Mean service time must lie within the distribution's range.
	mean := res.TotalServiceSec / float64(res.Requests)
	if mean > res.ServiceMax {
		t.Fatalf("mean %g above max %g", mean, res.ServiceMax)
	}
}

func TestWarmupBusAccounting(t *testing.T) {
	tr := testTrace(t, 13)
	warm := DefaultConfig(core.BrowsersAware)
	warm.WarmupFraction = 0.5
	cold := DefaultConfig(core.BrowsersAware)

	rw, err := Run(tr, nil, warm)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(tr, nil, cold)
	if err != nil {
		t.Fatal(err)
	}
	if rw.RemoteTransferSec > rc.RemoteTransferSec {
		t.Errorf("warmup remote transfer %g exceeds full-run %g", rw.RemoteTransferSec, rc.RemoteTransferSec)
	}
	if rw.RemoteConnectionsOnWire != rw.RemoteConnections {
		t.Errorf("on-wire connections %d != counted %d", rw.RemoteConnectionsOnWire, rw.RemoteConnections)
	}
}

// TestWarmupExcludesStaleAndFalseHitCounters replays a hand-built trace whose
// only false index hit and stale-document events all fall in the first half,
// and checks that a run with WarmupFraction = 0.5 reports none of them while
// a cold run reports each at least once. Guards the snapshot logic that
// resets metrics — including FalseIndexHits / StaleLocal / StaleProxy — at
// the warm-up boundary.
func TestWarmupExcludesStaleAndFalseHitCounters(t *testing.T) {
	// Two clients; browser caches hold four 100-byte docs (450 B), the
	// proxy holds one (180 B). With a periodic index at threshold 1.0 a
	// flush fires every ~4 changes, so the fill order is arranged to put a
	// flush boundary just before t=8: client 0's eviction of "a" there
	// stays pending, and client 1's request for "a" at t=9 contacts a
	// holder that no longer has it (false index hit). t=10 re-requests "a"
	// at a new size while both client 1's browser and the proxy hold the
	// old copy (stale local + stale proxy). The second half touches only
	// fresh one-shot docs, so it can produce none of these events by
	// construction.
	req := func(tm float64, client int, url string, size int64) trace.Request {
		return trace.Request{Time: tm, Client: client, URL: url, Size: size}
	}
	tr := &trace.Trace{
		Name:       "warmup-counters",
		NumClients: 2,
		Requests: []trace.Request{
			req(1, 0, "b", 100),
			req(2, 0, "c", 100),
			req(3, 0, "d", 100),
			req(4, 0, "a", 100),  // cache full: b,c,d,a; index insert of "a" pending
			req(5, 0, "e", 100),  // evicts b → flush: index lists {c,d,a}
			req(6, 0, "f", 100),  // evicts c (pending)
			req(7, 0, "g", 100),  // evicts d → flush: index lists {a,e,f}
			req(8, 0, "h", 100),  // evicts "a"; invalidation stays pending
			req(9, 1, "a", 100),  // index still lists client 0 → false hit
			req(10, 1, "a", 150), // modified: stale local + stale proxy
			req(11, 1, "a", 150),
			req(12, 1, "a", 150),
			// Second half: fresh one-shot docs only.
			req(13, 0, "m1", 100),
			req(14, 0, "m2", 100),
			req(15, 0, "m3", 100),
			req(16, 0, "m4", 100),
			req(17, 0, "m5", 100),
			req(18, 0, "m6", 100),
			req(19, 1, "n1", 100),
			req(20, 1, "n2", 100),
			req(21, 1, "n3", 100),
			req(22, 1, "n4", 100),
			req(23, 1, "n5", 100),
			req(24, 1, "n6", 100),
		},
	}
	cold := DefaultConfig(core.BrowsersAware)
	cold.Sizing = SizingMinimum
	cold.MinBrowserDivisor = 0.2 // browser cap = 180/(0.2·2) = 450 B
	cold.ProxyCapOverride = 180
	cold.IndexMode = index.Periodic
	cold.IndexThreshold = 1.0
	warm := cold
	warm.WarmupFraction = 0.5

	rc, err := Run(tr, nil, cold)
	if err != nil {
		t.Fatal(err)
	}
	if rc.FalseIndexHits < 1 || rc.StaleLocal < 1 || rc.StaleProxy < 1 {
		t.Fatalf("cold run missed the engineered events: false=%d staleLocal=%d staleProxy=%d",
			rc.FalseIndexHits, rc.StaleLocal, rc.StaleProxy)
	}
	rw, err := Run(tr, nil, warm)
	if err != nil {
		t.Fatal(err)
	}
	if rw.FalseIndexHits != 0 || rw.StaleLocal != 0 || rw.StaleProxy != 0 {
		t.Errorf("warm-up events leaked into the snapshot: false=%d staleLocal=%d staleProxy=%d",
			rw.FalseIndexHits, rw.StaleLocal, rw.StaleProxy)
	}
	if rw.Requests != 12 {
		t.Errorf("warm run counted %d requests, want 12", rw.Requests)
	}
}
