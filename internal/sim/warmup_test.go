package sim

import (
	"testing"

	"baps/internal/core"
)

func TestWarmupValidation(t *testing.T) {
	c := DefaultConfig(core.BrowsersAware)
	c.WarmupFraction = -0.1
	if err := c.Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
	c.WarmupFraction = 1.0
	if err := c.Validate(); err == nil {
		t.Error("warmup = 1 accepted")
	}
}

func TestWarmupExcludesColdStart(t *testing.T) {
	tr := testTrace(t, 11)
	cold := DefaultConfig(core.BrowsersAware)
	warm := cold
	warm.WarmupFraction = 0.5

	rc, err := Run(tr, nil, cold)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Run(tr, nil, warm)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Check(); err != nil {
		t.Fatal(err)
	}
	if rw.Requests >= rc.Requests {
		t.Fatalf("warmup did not reduce counted requests: %d vs %d", rw.Requests, rc.Requests)
	}
	want := int64(len(tr.Requests)) - int64(0.5*float64(len(tr.Requests)))
	if rw.Requests != want {
		t.Fatalf("counted %d requests, want %d", rw.Requests, want)
	}
	// Steady-state hit ratio exceeds the cold-start-inclusive one (the
	// caches are already populated when counting starts).
	if rw.HitRatio() <= rc.HitRatio() {
		t.Errorf("warm HR %.4f <= cold HR %.4f", rw.HitRatio(), rc.HitRatio())
	}
}

func TestServicePercentilesPopulated(t *testing.T) {
	tr := testTrace(t, 12)
	res, err := Run(tr, nil, DefaultConfig(core.BrowsersAware))
	if err != nil {
		t.Fatal(err)
	}
	if res.ServiceP50 <= 0 || res.ServiceP95 <= 0 || res.ServiceP99 <= 0 || res.ServiceMax <= 0 {
		t.Fatalf("percentiles not populated: %+v", res)
	}
	if !(res.ServiceP50 <= res.ServiceP95 && res.ServiceP95 <= res.ServiceP99 && res.ServiceP99 <= res.ServiceMax*1.07) {
		t.Fatalf("percentiles not ordered: p50=%g p95=%g p99=%g max=%g",
			res.ServiceP50, res.ServiceP95, res.ServiceP99, res.ServiceMax)
	}
	// Mean service time must lie within the distribution's range.
	mean := res.TotalServiceSec / float64(res.Requests)
	if mean > res.ServiceMax {
		t.Fatalf("mean %g above max %g", mean, res.ServiceMax)
	}
}

func TestWarmupBusAccounting(t *testing.T) {
	tr := testTrace(t, 13)
	warm := DefaultConfig(core.BrowsersAware)
	warm.WarmupFraction = 0.5
	cold := DefaultConfig(core.BrowsersAware)

	rw, err := Run(tr, nil, warm)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := Run(tr, nil, cold)
	if err != nil {
		t.Fatal(err)
	}
	if rw.RemoteTransferSec > rc.RemoteTransferSec {
		t.Errorf("warmup remote transfer %g exceeds full-run %g", rw.RemoteTransferSec, rc.RemoteTransferSec)
	}
	if rw.RemoteConnectionsOnWire != rw.RemoteConnections {
		t.Errorf("on-wire connections %d != counted %d", rw.RemoteConnectionsOnWire, rw.RemoteConnections)
	}
}
