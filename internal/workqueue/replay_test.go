package workqueue

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// failNTimes returns a Run that fails its first n attempts, then succeeds,
// counting total invocations.
func failNTimes(n int, calls *atomic.Int64) func(context.Context) error {
	var failed atomic.Int64
	return func(context.Context) error {
		calls.Add(1)
		if failed.Add(1) <= int64(n) {
			return errors.New("induced failure")
		}
		return nil
	}
}

// TestDeadLetterSnapshot: the ring retains the last deadLetterRing entries
// in order (oldest first), each carrying kind/key/attempts/error, and the
// snapshot is stable against further queue activity.
func TestDeadLetterSnapshot(t *testing.T) {
	q := New(Config{Workers: 2, MaxAttempts: 2, RetryBackoff: time.Millisecond})
	defer q.Close()
	const n = deadLetterRing + 5
	for i := 0; i < n; i++ {
		key := string(rune('a' + i%26)) + string(rune('0'+i/26))
		if err := q.Submit(Job{Kind: "doomed", Key: key, Run: func(context.Context) error {
			return errors.New("always fails")
		}}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return q.Stats().DeadLettered == n }, "jobs to dead-letter")

	dl := q.DeadLetters()
	if len(dl) != deadLetterRing {
		t.Fatalf("ring holds %d, want %d", len(dl), deadLetterRing)
	}
	for _, d := range dl {
		if d.Kind != "doomed" || d.Attempts != 2 || d.Err != "always fails" || d.At.IsZero() {
			t.Fatalf("bad dead letter record: %+v", d)
		}
	}

	// The snapshot is a copy: mutating queue state afterwards must not
	// reach into it.
	before := dl[0]
	q.Replay(1)
	if dl[0] != before {
		t.Fatal("DeadLetters snapshot aliased queue state")
	}
}

// TestReplayRerunsDeadLetters: a replayed job runs again with a fresh
// attempt budget and can complete; it leaves the ring.
func TestReplayRerunsDeadLetters(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 2, RetryBackoff: time.Millisecond})
	defer q.Close()
	var calls atomic.Int64
	// Fails attempts 1 and 2 (dead-letters), succeeds on the replayed run.
	if err := q.Submit(Job{Kind: "fixable", Key: "k", Run: failNTimes(2, &calls)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return q.Stats().DeadLettered == 1 }, "job to dead-letter")

	replayed, skipped := q.Replay(10)
	if replayed != 1 || skipped != 0 {
		t.Fatalf("Replay = (%d, %d), want (1, 0)", replayed, skipped)
	}
	waitFor(t, 5*time.Second, func() bool { return q.Stats().Completed == 1 }, "replayed job to complete")
	if calls.Load() != 3 {
		t.Fatalf("job ran %d times, want 3 (2 failures + 1 replayed success)", calls.Load())
	}
	if len(q.DeadLetters()) != 0 {
		t.Fatal("replayed job still in the dead-letter ring")
	}
}

// TestReplayDedupAgainstPending: a dead letter whose (Kind, Key) is pending
// again is skipped — the live job supersedes it — and dropped from the ring
// so it cannot shadow future replays.
func TestReplayDedupAgainstPending(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 1, RetryBackoff: time.Millisecond})
	defer q.Close()

	// Block the only worker so submitted jobs stay pending.
	gate := make(chan struct{})
	if err := q.Submit(Job{Kind: "blocker", Run: func(ctx context.Context) error {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return q.Stats().Running == 1 }, "blocker to start")

	// Dead-letter a (kind, key) job: let it run by opening the gate after
	// queueing it alone.
	if err := q.Submit(Job{Kind: "dup", Key: "k1", Run: func(context.Context) error {
		return errors.New("fails once, no retries")
	}}); err != nil {
		t.Fatal(err)
	}
	close(gate)
	waitFor(t, 5*time.Second, func() bool { return q.Stats().DeadLettered == 1 }, "dup job to dead-letter")

	// Wedge the worker again, then submit a LIVE job with the same identity.
	gate2 := make(chan struct{})
	defer close(gate2)
	if err := q.Submit(Job{Kind: "blocker", Run: func(ctx context.Context) error {
		select {
		case <-gate2:
		case <-ctx.Done():
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return q.Stats().Running == 1 }, "second blocker to start")
	if err := q.Submit(Job{Kind: "dup", Key: "k1", Run: func(context.Context) error { return nil }}); err != nil {
		t.Fatal(err)
	}

	replayed, skipped := q.Replay(10)
	if replayed != 0 || skipped != 1 {
		t.Fatalf("Replay = (%d, %d), want (0, 1): pending job must supersede", replayed, skipped)
	}
	if len(q.DeadLetters()) != 0 {
		t.Fatal("superseded dead letter should leave the ring")
	}
}

// TestReplayOnClosedQueue: a draining queue replays nothing.
func TestReplayOnClosedQueue(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 1})
	if err := q.Submit(Job{Kind: "doomed", Run: func(context.Context) error {
		return errors.New("fails")
	}}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return q.Stats().DeadLettered == 1 }, "job to dead-letter")
	q.Close()
	if replayed, skipped := q.Replay(10); replayed != 0 || skipped != 0 {
		t.Fatalf("Replay on closed queue = (%d, %d), want (0, 0)", replayed, skipped)
	}
}
