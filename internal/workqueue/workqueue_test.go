package workqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baps/internal/obs"
)

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

func TestSubmitRunsJobs(t *testing.T) {
	q := New(Config{Workers: 2})
	defer q.Close()
	var ran atomic.Int64
	for i := 0; i < 20; i++ {
		if err := q.Submit(Job{Kind: "noop", Run: func(context.Context) error {
			ran.Add(1)
			return nil
		}}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return ran.Load() == 20 }, "jobs to run")
	st := q.Stats()
	if st.Submitted != 20 || st.Completed != 20 {
		t.Fatalf("stats = %+v, want 20 submitted/completed", st)
	}
}

// TestPriorityUnderFullQueue is the priority-inversion edge case: with the
// low lane at capacity and blocking the single worker, high-priority jobs
// must still be admitted (each lane has its own bound) and must run before
// the queued low-priority backlog.
func TestPriorityUnderFullQueue(t *testing.T) {
	const capacity = 8
	gate := make(chan struct{})
	var order []string
	var mu sync.Mutex
	record := func(tag string) func(context.Context) error {
		return func(context.Context) error {
			<-gate
			mu.Lock()
			order = append(order, tag)
			mu.Unlock()
			return nil
		}
	}

	q := New(Config{Workers: 1, Capacity: capacity})
	defer q.Close()

	// One job occupies the worker; fill the low lane behind it.
	if err := q.Submit(Job{Kind: "plug", Priority: Low, Run: record("plug")}); err != nil {
		t.Fatalf("plug: %v", err)
	}
	waitFor(t, time.Second, func() bool { return q.Stats().Running == 1 }, "worker busy")
	for i := 0; i < capacity; i++ {
		if err := q.Submit(Job{Kind: "low", Priority: Low, Run: record("low")}); err != nil {
			t.Fatalf("low %d: %v", i, err)
		}
	}
	// The low lane is now full: further low jobs drop...
	if err := q.Submit(Job{Kind: "low", Priority: Low, Run: record("low")}); !errors.Is(err, ErrFull) {
		t.Fatalf("overflow low submit = %v, want ErrFull", err)
	}
	// ...but high-priority work is still admitted.
	for i := 0; i < 3; i++ {
		if err := q.Submit(Job{Kind: "high", Priority: High, Run: record("high")}); err != nil {
			t.Fatalf("high admission under full low lane: %v", err)
		}
	}
	st := q.Stats()
	if st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", st.Dropped)
	}

	close(gate)
	waitFor(t, 2*time.Second, func() bool { return q.Stats().Completed == 1+capacity+3 }, "drain")
	mu.Lock()
	defer mu.Unlock()
	// order[0] is the plug; the three high jobs must precede every low job.
	for i, tag := range order[1:4] {
		if tag != "high" {
			t.Fatalf("order[%d] = %q, want high (full order %v)", i+1, tag, order)
		}
	}
}

// TestRetryExhaustionDeadLetters verifies a persistently failing job is
// retried MaxAttempts-1 times and then dead-lettered with its last error.
func TestRetryExhaustionDeadLetters(t *testing.T) {
	reg := obs.NewRegistry()
	q := New(Config{Workers: 1, MaxAttempts: 3, RetryBackoff: time.Millisecond, Metrics: reg})
	defer q.Close()
	var attempts atomic.Int64
	err := q.Submit(Job{Kind: "doomed", Key: "k", Run: func(context.Context) error {
		attempts.Add(1)
		return errors.New("sibling unreachable")
	}})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitFor(t, 2*time.Second, func() bool { return q.Stats().DeadLettered == 1 }, "dead letter")
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	st := q.Stats()
	if st.Retries != 2 || st.Completed != 0 {
		t.Fatalf("stats = %+v, want 2 retries 0 completed", st)
	}
	dl := q.DeadLetters()
	if len(dl) != 1 || dl[0].Kind != "doomed" || dl[0].Attempts != 3 || dl[0].Err != "sibling unreachable" {
		t.Fatalf("dead letters = %+v", dl)
	}
	if v := reg.VecValue("baps_wq_dead_letters_total", "doomed"); v != 1 {
		t.Fatalf("dead letter metric = %d, want 1", v)
	}
}

// TestDrainLosesNothing is the zero-loss drain edge case: every accepted
// job must be accounted for (completed or dead-lettered) by the time Close
// returns, including jobs that fail once and are sitting in retry backoff
// when Close fires.
func TestDrainLosesNothing(t *testing.T) {
	q := New(Config{Workers: 4, Capacity: 4096, MaxAttempts: 3, RetryBackoff: 500 * time.Millisecond})
	var ran sync.Map
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("%d-%d", g, i)
				flaky := i%5 == 0
				first := new(atomic.Bool)
				err := q.Submit(Job{Kind: "work", Priority: Priority(i % 3), Run: func(context.Context) error {
					if flaky && first.CompareAndSwap(false, true) {
						return errors.New("transient")
					}
					ran.Store(id, true)
					return nil
				}})
				if err == nil {
					accepted.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	// Close while retries are pending: backoff is 500ms, so flaky jobs'
	// second attempts are almost certainly still parked.
	q.Close()
	st := q.Stats()
	if st.Submitted != accepted.Load() {
		t.Fatalf("submitted = %d, accepted = %d", st.Submitted, accepted.Load())
	}
	if st.Completed+st.DeadLettered != st.Submitted {
		t.Fatalf("drain lost jobs: completed %d + deadlettered %d != submitted %d",
			st.Completed, st.DeadLettered, st.Submitted)
	}
	if st.DeadLettered != 0 {
		t.Fatalf("dead lettered = %d, want 0 (jobs fail only once)", st.DeadLettered)
	}
	var n int64
	ran.Range(func(any, any) bool { n++; return true })
	if n != st.Submitted {
		t.Fatalf("ran %d distinct jobs, want %d", n, st.Submitted)
	}
	if err := q.Submit(Job{Kind: "late", Run: func(context.Context) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit = %v, want ErrClosed", err)
	}
}

func TestPerKindRateLimit(t *testing.T) {
	// "slow" gets 50/s with a 50-token burst: 60 jobs need ~200ms of
	// accrual beyond the burst. "fast" is unlimited and must not be
	// held up behind the throttled kind.
	q := New(Config{Workers: 4, RateLimits: map[string]float64{"slow": 50}})
	defer q.Close()
	var slow, fast atomic.Int64
	start := time.Now()
	for i := 0; i < 60; i++ {
		if err := q.Submit(Job{Kind: "slow", Priority: High, Run: func(context.Context) error {
			slow.Add(1)
			return nil
		}}); err != nil {
			t.Fatalf("slow %d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		if err := q.Submit(Job{Kind: "fast", Priority: Low, Run: func(context.Context) error {
			fast.Add(1)
			return nil
		}}); err != nil {
			t.Fatalf("fast %d: %v", i, err)
		}
	}
	waitFor(t, time.Second, func() bool { return fast.Load() == 20 }, "unlimited kind to finish")
	if got := slow.Load(); got >= 60 {
		t.Fatalf("slow kind finished (%d) before its bucket could have refilled", got)
	}
	waitFor(t, 3*time.Second, func() bool { return slow.Load() == 60 }, "throttled kind to finish")
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("throttled kind finished in %v, want >= 150ms", el)
	}
}

func TestDedupPendingJobs(t *testing.T) {
	gate := make(chan struct{})
	q := New(Config{Workers: 1})
	defer q.Close()
	var ran atomic.Int64
	job := func() Job {
		return Job{Kind: "reval", Key: "http://o/doc", Run: func(context.Context) error {
			<-gate
			ran.Add(1)
			return nil
		}}
	}
	if err := q.Submit(job()); err != nil {
		t.Fatalf("first: %v", err)
	}
	waitFor(t, time.Second, func() bool { return q.Stats().Running == 1 }, "worker busy")
	// Queued (not yet started) duplicate is rejected.
	if err := q.Submit(job()); err != nil {
		t.Fatalf("second (first is running, not pending): %v", err)
	}
	if err := q.Submit(job()); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("third = %v, want ErrDuplicate", err)
	}
	if st := q.Stats(); st.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1", st.Deduped)
	}
	close(gate)
	waitFor(t, time.Second, func() bool { return ran.Load() == 2 }, "both distinct jobs")
}

func TestJobPanicIsRetriedNotFatal(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 2, RetryBackoff: time.Millisecond})
	defer q.Close()
	var calls atomic.Int64
	q.Submit(Job{Kind: "panicky", Run: func(context.Context) error {
		if calls.Add(1) == 1 {
			panic("boom")
		}
		return nil
	}})
	waitFor(t, 2*time.Second, func() bool { return q.Stats().Completed == 1 }, "panic retried then completed")
}

func TestJobTimeoutFailsAttempt(t *testing.T) {
	q := New(Config{Workers: 1, MaxAttempts: 1, JobTimeout: 20 * time.Millisecond})
	defer q.Close()
	q.Submit(Job{Kind: "hung", Run: func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	}})
	waitFor(t, 2*time.Second, func() bool { return q.Stats().DeadLettered == 1 }, "hung job to dead-letter")
}

func BenchmarkWorkqueueSubmit(b *testing.B) {
	q := New(Config{Workers: 4, Capacity: 1 << 20})
	defer q.Close()
	noop := func(context.Context) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Submit(Job{Kind: "bench", Run: noop})
	}
}

func BenchmarkWorkqueueThroughput(b *testing.B) {
	q := New(Config{Workers: 8, Capacity: 1 << 20})
	noop := func(context.Context) error { return nil }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Submit(Job{Kind: "bench", Run: noop})
	}
	q.Close()
	if st := q.Stats(); st.Completed != st.Submitted {
		b.Fatalf("lost jobs: %+v", st)
	}
}
