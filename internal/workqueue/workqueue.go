// Package workqueue is the proxy's background work plane: a bounded,
// prioritized, multi-worker job queue with per-kind rate limits, retry with
// exponential backoff, dead-letter accounting, and a graceful drain that
// loses no accepted job. The request path stays synchronous and fast; the
// queue absorbs everything that can happen later — origin revalidation,
// popularity-driven prefetch into browser caches, and cluster-wide
// invalidation fan-out (DESIGN.md §14).
//
// Design points, in the house idiom of the persist.go spill worker but
// generalized:
//
//   - Admission is bounded per priority level. Submit never blocks the
//     caller: a full level drops the job and counts it. Retries of already
//     accepted jobs bypass the bound — acceptance is a promise.
//   - Workers always run the highest-priority runnable job. A job whose
//     kind is over its rate limit is skipped in place (it does not block
//     lower-priority kinds), and a timer wakes a worker when the earliest
//     throttled kind has budget again.
//   - A failing job retries with doubling backoff + jitter up to
//     MaxAttempts, then dead-letters: the queue counts it, remembers the
//     last few for inspection, and moves on. A sibling that was SIGKILLed
//     mid-fan-out therefore costs a bounded number of timed-out attempts,
//     never a wedged queue.
//   - Close drains: intake stops, pending retry timers collapse to
//     "now", rate limits stop applying, and Close returns only when every
//     accepted job has either completed or dead-lettered.
package workqueue

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"baps/internal/obs"
)

// Priority orders jobs: lower value runs first.
type Priority int

const (
	// High is for work a client is about to observe (invalidation purges).
	High Priority = iota
	// Normal is for consistency upkeep (revalidation, holder notifies).
	Normal
	// Low is for opportunistic placement (prefetch pushes).
	Low
	numPriorities
)

func (p Priority) String() string {
	switch p {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Low:
		return "low"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// Job is one unit of background work.
type Job struct {
	// Kind groups jobs for rate limiting and metrics ("revalidate",
	// "prefetch", "invalidate_peer", ...). Must be non-empty and match
	// the Prometheus label charset in practice.
	Kind string
	// Key, when non-empty, dedups: a job with the same (Kind, Key)
	// already queued (not yet started) is not enqueued again.
	Key string
	// Priority selects the admission lane. Out-of-range values clamp
	// to Low.
	Priority Priority
	// Run does the work. A nil error completes the job; a non-nil error
	// schedules a retry until MaxAttempts, then dead-letters.
	Run func(ctx context.Context) error
}

// Config parameterizes a Queue. Zero values take the documented defaults.
type Config struct {
	// Workers is the number of concurrent job runners (default 4).
	Workers int
	// Capacity bounds each priority level's pending list (default 1024).
	Capacity int
	// MaxAttempts is the total number of tries per job including the
	// first (default 3). 1 means no retries.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry; it doubles per
	// subsequent attempt with ±25% jitter (default 100ms).
	RetryBackoff time.Duration
	// MaxBackoff caps the doubling (default 5s).
	MaxBackoff time.Duration
	// JobTimeout bounds each attempt's context (default 10s). This is
	// what keeps a dead sibling from wedging drain: the attempt times
	// out, fails, and eventually dead-letters.
	JobTimeout time.Duration
	// RateLimits maps job kind → jobs/second (token bucket with a one
	// second burst). Kinds absent from the map are unlimited. Limits
	// stop applying once Close begins draining.
	RateLimits map[string]float64
	// Metrics receives the queue's instrumentation; nil uses a private
	// registry.
	Metrics *obs.Registry
}

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("workqueue: closed")

// ErrFull is returned by Submit when the job's priority level is at
// capacity. The job was not accepted.
var ErrFull = errors.New("workqueue: queue full")

// ErrDuplicate is returned by Submit when an identical (Kind, Key) job is
// already pending. The earlier job stands.
var ErrDuplicate = errors.New("workqueue: duplicate job")

// job is the queued form of a Job. Dead-lettered jobs are retained whole —
// Run closure included — so the admin replay path can re-enqueue them with a
// fresh attempt budget; lastErr/deadAt record why and when they died.
type job struct {
	Job
	attempts int
	accepted time.Time
	lastErr  string
	deadAt   time.Time
}

// limiter is a per-kind token bucket: rate tokens/sec, burst = one second
// of rate (min 1).
type limiter struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// reserve takes a token if available, else reports how long until one
// accrues. Called with the queue lock held.
func (l *limiter) reserve(now time.Time) (ok bool, wait time.Duration) {
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	l.last = now
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	if l.tokens >= 1 {
		l.tokens--
		return true, 0
	}
	return false, time.Duration((1 - l.tokens) / l.rate * float64(time.Second))
}

// DeadLetter records one retry-exhausted job.
type DeadLetter struct {
	Kind     string    `json:"kind"`
	Key      string    `json:"key,omitempty"`
	Attempts int       `json:"attempts"`
	Err      string    `json:"err"`
	At       time.Time `json:"at"`
}

// Stats is a point-in-time snapshot of queue accounting.
type Stats struct {
	Depth        int   `json:"depth"`         // queued, not yet running
	Running      int   `json:"running"`       // attempts in flight
	Waiting      int   `json:"waiting"`       // accepted, in retry backoff
	Submitted    int64 `json:"submitted"`     // accepted jobs
	Completed    int64 `json:"completed"`     // jobs that returned nil
	Dropped      int64 `json:"dropped"`       // rejected: level full
	Deduped      int64 `json:"deduped"`       // rejected: duplicate pending
	Retries      int64 `json:"retries"`       // failed attempts retried
	DeadLettered int64 `json:"dead_lettered"` // jobs that exhausted retries
}

// Queue is the background work plane. Create with New, feed with Submit,
// stop with Close.
type Queue struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [numPriorities][]*job
	pending  map[string]struct{} // (kind, key) dedup of queued jobs
	limiters map[string]*limiter
	timers   map[*time.Timer]*job // retry timers not yet fired
	closed   bool
	killed   bool // Kill: drop instead of retrying failed attempts
	running  int
	waiting  int // jobs parked in retry timers
	rng      *rand.Rand

	stats   Stats
	recent  []*job // ring of the last few dead letters (oldest first)
	wg      sync.WaitGroup
	baseCtx context.Context
	cancel  context.CancelFunc

	submitted    *obs.CounterVec
	completed    *obs.CounterVec
	dropped      *obs.CounterVec
	deduped      *obs.CounterVec
	retried      *obs.CounterVec
	deadLettered *obs.CounterVec
	runSeconds   *obs.Summary
	waitSeconds  *obs.Summary
}

const deadLetterRing = 32

// New starts a queue with cfg's workers running.
func New(cfg Config) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.JobTimeout <= 0 {
		cfg.JobTimeout = 10 * time.Second
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	q := &Queue{
		cfg:      cfg,
		pending:  make(map[string]struct{}),
		limiters: make(map[string]*limiter),
		timers:   make(map[*time.Timer]*job),
		rng:      rand.New(rand.NewPCG(0x9E3779B9, uint64(time.Now().UnixNano()))),
	}
	q.cond = sync.NewCond(&q.mu)
	q.baseCtx, q.cancel = context.WithCancel(context.Background())
	for kind, rate := range cfg.RateLimits {
		if rate > 0 {
			burst := rate
			if burst < 1 {
				burst = 1
			}
			q.limiters[kind] = &limiter{rate: rate, burst: burst, tokens: burst, last: time.Now()}
		}
	}

	reg := cfg.Metrics
	q.submitted = reg.CounterVec("baps_wq_submitted_total", "Jobs accepted into the work queue.", "kind")
	q.completed = reg.CounterVec("baps_wq_completed_total", "Jobs that finished successfully.", "kind")
	q.dropped = reg.CounterVec("baps_wq_dropped_total", "Jobs rejected because their priority level was full.", "kind")
	q.deduped = reg.CounterVec("baps_wq_deduped_total", "Jobs rejected because an identical job was pending.", "kind")
	q.retried = reg.CounterVec("baps_wq_retries_total", "Failed attempts scheduled for retry.", "kind")
	q.deadLettered = reg.CounterVec("baps_wq_dead_letters_total", "Jobs abandoned after exhausting retries.", "kind")
	q.runSeconds = reg.Summary("baps_wq_run_seconds", "Job attempt run latency.")
	q.waitSeconds = reg.Summary("baps_wq_wait_seconds", "Queue wait from acceptance to first run.")
	for p := High; p < numPriorities; p++ {
		pr := p
		reg.LabeledGaugeFunc("baps_wq_depth", "Jobs queued per priority level.", "priority", pr.String(), func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return float64(len(q.queues[pr]))
		})
	}
	reg.GaugeFunc("baps_wq_running", "Job attempts currently executing.", func() float64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return float64(q.running)
	})
	reg.GaugeFunc("baps_wq_waiting_retry", "Accepted jobs parked in retry backoff.", func() float64 {
		q.mu.Lock()
		defer q.mu.Unlock()
		return float64(q.waiting)
	})

	q.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go q.worker()
	}
	return q
}

func dedupKey(kind, key string) string { return kind + "\x00" + key }

// Submit offers a job. It never blocks: the job is accepted (nil), or
// rejected with ErrClosed, ErrFull, or ErrDuplicate.
func (q *Queue) Submit(j Job) error {
	if j.Run == nil || j.Kind == "" {
		return errors.New("workqueue: job needs Kind and Run")
	}
	if j.Priority < High || j.Priority >= numPriorities {
		j.Priority = Low
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if j.Key != "" {
		if _, dup := q.pending[dedupKey(j.Kind, j.Key)]; dup {
			q.stats.Deduped++
			q.deduped.With(j.Kind).Inc()
			return ErrDuplicate
		}
	}
	if len(q.queues[j.Priority]) >= q.cfg.Capacity {
		q.stats.Dropped++
		q.dropped.With(j.Kind).Inc()
		return ErrFull
	}
	jb := &job{Job: j, accepted: time.Now()}
	q.queues[j.Priority] = append(q.queues[j.Priority], jb)
	if j.Key != "" {
		q.pending[dedupKey(j.Kind, j.Key)] = struct{}{}
	}
	q.stats.Submitted++
	q.submitted.With(j.Kind).Inc()
	q.cond.Signal()
	return nil
}

// next pops the best runnable job, or reports the wait until a throttled
// kind has budget (-1 when nothing is queued). Called with q.mu held.
func (q *Queue) next(now time.Time) (*job, time.Duration) {
	soonest := time.Duration(-1)
	for p := High; p < numPriorities; p++ {
		lane := q.queues[p]
		for i, jb := range lane {
			if lim := q.limiters[jb.Kind]; lim != nil && !q.closed {
				ok, wait := lim.reserve(now)
				if !ok {
					if soonest < 0 || wait < soonest {
						soonest = wait
					}
					continue // skip in place; try other kinds/levels
				}
			}
			q.queues[p] = append(lane[:i:i], lane[i+1:]...)
			return jb, 0
		}
	}
	return nil, soonest
}

// worker runs jobs until the queue is closed and fully drained.
func (q *Queue) worker() {
	defer q.wg.Done()
	q.mu.Lock()
	for {
		jb, wait := q.next(time.Now())
		if jb == nil {
			if q.closed && q.depthLocked() == 0 && q.waiting == 0 && q.running == 0 {
				q.mu.Unlock()
				q.cond.Broadcast() // release siblings parked in Wait
				return
			}
			if wait >= 0 {
				// Everything queued is throttled: park until the
				// earliest bucket refills.
				t := time.AfterFunc(wait, q.cond.Broadcast)
				q.cond.Wait()
				t.Stop()
			} else {
				q.cond.Wait()
			}
			continue
		}
		if jb.Key != "" && jb.attempts == 0 {
			delete(q.pending, dedupKey(jb.Kind, jb.Key))
		}
		q.running++
		q.mu.Unlock()

		if jb.attempts == 0 {
			q.waitSeconds.Observe(time.Since(jb.accepted).Seconds())
		}
		start := time.Now()
		ctx, cancel := context.WithTimeout(q.baseCtx, q.cfg.JobTimeout)
		err := runAttempt(ctx, jb.Run)
		cancel()
		q.runSeconds.Observe(time.Since(start).Seconds())
		jb.attempts++

		q.mu.Lock()
		q.running--
		if err == nil {
			q.stats.Completed++
			q.completed.With(jb.Kind).Inc()
			continue
		}
		if jb.attempts >= q.cfg.MaxAttempts {
			q.stats.DeadLettered++
			q.deadLettered.With(jb.Kind).Inc()
			jb.lastErr = err.Error()
			jb.deadAt = time.Now()
			q.recent = append(q.recent, jb)
			if len(q.recent) > deadLetterRing {
				q.recent = q.recent[len(q.recent)-deadLetterRing:]
			}
			continue
		}
		if q.killed {
			// Abrupt shutdown: the failed attempt is not retried.
			q.stats.Dropped++
			continue
		}
		q.stats.Retries++
		q.retried.With(jb.Kind).Inc()
		if q.closed {
			// Draining: skip the backoff, requeue immediately so
			// Close terminates as fast as the remaining attempts.
			q.requeueLocked(jb)
			continue
		}
		backoff := q.cfg.RetryBackoff << (jb.attempts - 1)
		if backoff > q.cfg.MaxBackoff {
			backoff = q.cfg.MaxBackoff
		}
		backoff += time.Duration((q.rng.Float64() - 0.5) * 0.5 * float64(backoff))
		q.waiting++
		var t *time.Timer
		t = time.AfterFunc(backoff, func() {
			q.mu.Lock()
			if _, live := q.timers[t]; live {
				delete(q.timers, t)
				q.waiting--
				q.requeueLocked(jb)
			}
			q.mu.Unlock()
		})
		q.timers[t] = jb
	}
}

// runAttempt isolates a job panic to the attempt: a panicking job fails
// (and may retry) instead of killing the worker.
func runAttempt(ctx context.Context, run func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("workqueue: job panic: %v", r)
		}
	}()
	return run(ctx)
}

// requeueLocked puts an already-accepted job at the front of its lane,
// bypassing the admission bound. Called with q.mu held.
func (q *Queue) requeueLocked(jb *job) {
	q.queues[jb.Priority] = append([]*job{jb}, q.queues[jb.Priority]...)
	q.cond.Signal()
}

func (q *Queue) depthLocked() int {
	n := 0
	for p := High; p < numPriorities; p++ {
		n += len(q.queues[p])
	}
	return n
}

// Close stops intake and drains: every accepted job runs to completion or
// dead-letters (retry backoffs collapse to immediate, rate limits lift).
// It returns once the workers have exited.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	// Collapse pending retries to "now" so drain doesn't sit out backoff.
	for t, jb := range q.timers {
		t.Stop()
		delete(q.timers, t)
		q.waiting--
		q.requeueLocked(jb)
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
	q.cancel()
}

// Kill stops the queue abruptly — the crash stand-in counterpart of Close:
// queued and backoff-parked jobs are discarded (counted as dropped), in-
// flight attempts have their contexts canceled and are not retried, and Kill
// returns once the workers exit.
func (q *Queue) Kill() {
	q.cancel() // fail in-flight attempts fast
	q.mu.Lock()
	q.closed = true
	q.killed = true
	for t := range q.timers {
		t.Stop()
		delete(q.timers, t)
		q.waiting--
		q.stats.Dropped++
	}
	for p := High; p < numPriorities; p++ {
		q.stats.Dropped += int64(len(q.queues[p]))
		q.queues[p] = nil
	}
	q.cond.Broadcast()
	q.mu.Unlock()
	q.wg.Wait()
}

// Stats snapshots the queue's accounting.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Depth = q.depthLocked()
	s.Running = q.running
	s.Waiting = q.waiting
	return s
}

// DeadLetters returns the most recent retry-exhausted jobs (newest last).
func (q *Queue) DeadLetters() []DeadLetter {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DeadLetter, 0, len(q.recent))
	for _, jb := range q.recent {
		out = append(out, DeadLetter{
			Kind: jb.Kind, Key: jb.Key, Attempts: jb.attempts,
			Err: jb.lastErr, At: jb.deadAt,
		})
	}
	return out
}

// Replay re-enqueues up to n retained dead letters, oldest first, each with
// a fresh attempt budget (the operator fixed whatever was failing; the jobs
// should run as if newly submitted). A dead letter whose (Kind, Key) is
// pending again is skipped AND dropped from the ring — the live job
// supersedes it; one whose lane is full is skipped but retained for a later
// replay. Returns how many were re-enqueued and how many skipped. A closed
// queue replays nothing.
func (q *Queue) Replay(n int) (replayed, skipped int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || n <= 0 {
		return 0, 0
	}
	if n > len(q.recent) {
		n = len(q.recent)
	}
	keep := q.recent[n:]
	remainder := make([]*job, 0, n)
	for _, jb := range q.recent[:n] {
		if jb.Key != "" {
			if _, dup := q.pending[dedupKey(jb.Kind, jb.Key)]; dup {
				skipped++
				q.stats.Deduped++
				q.deduped.With(jb.Kind).Inc()
				continue
			}
		}
		if len(q.queues[jb.Priority]) >= q.cfg.Capacity {
			skipped++
			remainder = append(remainder, jb)
			continue
		}
		jb.attempts = 0
		jb.lastErr = ""
		jb.deadAt = time.Time{}
		jb.accepted = time.Now()
		q.queues[jb.Priority] = append(q.queues[jb.Priority], jb)
		if jb.Key != "" {
			q.pending[dedupKey(jb.Kind, jb.Key)] = struct{}{}
		}
		q.stats.Submitted++
		q.submitted.With(jb.Kind).Inc()
		replayed++
	}
	q.recent = append(remainder, keep...)
	if replayed > 0 {
		q.cond.Broadcast()
	}
	return replayed, skipped
}
