package latency

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	muts := []func(*Model){
		func(m *Model) { m.MemBlockSec = 0 },
		func(m *Model) { m.DiskPageSec = -1 },
		func(m *Model) { m.LANBandwidthBps = 0 },
		func(m *Model) { m.ConnSetupSec = -0.1 },
		func(m *Model) { m.WANBandwidthBps = 0 },
		func(m *Model) { m.WANSetupSec = -1 },
		func(m *Model) { m.MemFraction = 0 },
		func(m *Model) { m.MemFraction = 1.1 },
	}
	for i, mut := range muts {
		m := Default()
		mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMemRead(t *testing.T) {
	m := Default()
	if got := m.MemRead(16); !almost(got, 2e-6) {
		t.Errorf("MemRead(16) = %g", got)
	}
	if got := m.MemRead(17); !almost(got, 4e-6) {
		t.Errorf("MemRead(17) = %g, want 2 blocks", got)
	}
	if got := m.MemRead(0); !almost(got, 0) {
		t.Errorf("MemRead(0) = %g", got)
	}
}

func TestDiskRead(t *testing.T) {
	m := Default()
	if got := m.DiskRead(4096); !almost(got, 10e-3) {
		t.Errorf("DiskRead(4096) = %g", got)
	}
	if got := m.DiskRead(4097); !almost(got, 20e-3) {
		t.Errorf("DiskRead(4097) = %g, want 2 pages", got)
	}
}

func TestMemoryMuchFasterThanDisk(t *testing.T) {
	// The §4.2 argument: for typical 8 KB documents, memory access is
	// much faster than disk (≈20x under the paper's constants).
	m := Default()
	if m.MemRead(8192)*10 > m.DiskRead(8192) {
		t.Errorf("mem %g vs disk %g: memory should be >10x faster", m.MemRead(8192), m.DiskRead(8192))
	}
}

func TestLANTransfer(t *testing.T) {
	m := Default()
	// 10 Mbps: 1.25 MB takes 1 s; plus 0.1 s setup.
	if got := m.LANTransfer(1_250_000); !almost(got, 1.1) {
		t.Errorf("LANTransfer = %g, want 1.1", got)
	}
}

func TestUpstreamSlowerThanLAN(t *testing.T) {
	m := Default()
	for _, size := range []int64{1024, 8192, 1 << 20} {
		if m.UpstreamFetch(size) <= m.LANTransfer(size) {
			t.Errorf("size %d: upstream %g <= LAN %g", size, m.UpstreamFetch(size), m.LANTransfer(size))
		}
	}
}

func TestBusNoContentionWhenIdle(t *testing.T) {
	b := NewBus(Default())
	wait, dur := b.Transfer(0, 1_250_000)
	if wait != 0 {
		t.Errorf("idle bus gave wait %g", wait)
	}
	if !almost(dur, 1.1) {
		t.Errorf("duration %g", dur)
	}
	// A transfer starting after the first completes also waits 0.
	wait, _ = b.Transfer(2.0, 1000)
	if wait != 0 {
		t.Errorf("post-completion transfer waited %g", wait)
	}
}

func TestBusContention(t *testing.T) {
	b := NewBus(Default())
	b.Transfer(0, 1_250_000) // busy until 1.1
	wait, _ := b.Transfer(0.5, 1000)
	if !almost(wait, 0.6) {
		t.Errorf("wait = %g, want 0.6", wait)
	}
	if b.Transfers != 2 || b.Bytes != 1_251_000 {
		t.Errorf("totals: %d transfers %d bytes", b.Transfers, b.Bytes)
	}
	if !almost(b.ContentionSec, 0.6) {
		t.Errorf("ContentionSec = %g", b.ContentionSec)
	}
	b.Reset()
	if b.Transfers != 0 || b.TransferSec != 0 || b.ContentionSec != 0 || b.Bytes != 0 {
		t.Error("Reset incomplete")
	}
}

// TestQuickBusCausality: for any arrival sequence, completions never overlap
// and waits are never negative.
func TestQuickBusCausality(t *testing.T) {
	f := func(arrivalGaps []uint16, sizes []uint16) bool {
		b := NewBus(Default())
		now, lastEnd := 0.0, 0.0
		n := len(arrivalGaps)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			now += float64(arrivalGaps[i]) / 1000
			wait, dur := b.Transfer(now, int64(sizes[i])+1)
			if wait < 0 || dur <= 0 {
				t.Errorf("wait %g dur %g", wait, dur)
				return false
			}
			start := now + wait
			if start+1e-9 < lastEnd {
				t.Errorf("transfer %d started at %g before previous end %g", i, start, lastEnd)
				return false
			}
			lastEnd = start + dur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
