// Package latency implements the timing and overhead models of the paper's
// §4.2 (memory byte hit ratios and hit latency) and §5 (data-transfer and
// bus-contention overhead of remote-browser hits).
//
// The paper's constants, with the OCR-garbled digits restored to the values
// its era and §5 prose imply (documented in DESIGN.md):
//
//   - one memory access of a 16-byte cache block costs 2 µs;
//   - one disk access of a 4 KB page costs 10 ms;
//   - browsers and proxy share a 10 Mbps Ethernet; a network connection
//     costs 0.1 s to set up;
//   - the memory portion of each cache is 1/10 of its size.
//
// Upstream (origin / upper-level proxy) fetches are not parameterized in the
// paper; this model uses a 1 s connection setup and 1.5 Mbps effective WAN
// bandwidth (a T1, typical for a 2001 institutional uplink). Only relative
// comparisons depend on it, and it can be overridden.
package latency

import "fmt"

// Model holds the timing parameters. The zero value is not useful; start
// from Default.
type Model struct {
	// MemBlockSec is the time per 16-byte memory block.
	MemBlockSec float64
	// DiskPageSec is the time per 4 KB disk page.
	DiskPageSec float64
	// LANBandwidthBps is the shared Ethernet bandwidth in bits/second.
	LANBandwidthBps float64
	// ConnSetupSec is the LAN connection establishment time.
	ConnSetupSec float64
	// WANBandwidthBps is the effective upstream bandwidth in bits/second.
	WANBandwidthBps float64
	// WANSetupSec is the upstream connection/latency overhead per miss.
	WANSetupSec float64
	// MemFraction is the memory portion of each cache (1/MemDivisor in
	// the paper; expressed here as a fraction, 0.1).
	MemFraction float64
	// ParentCostFactor scales the upstream cost for a hit in an
	// upper-level (parent) proxy relative to a full origin fetch: the
	// parent sits partway up the WAN path. Default 0.5.
	ParentCostFactor float64
}

// Default returns the paper's restored constants.
func Default() Model {
	return Model{
		MemBlockSec:      2e-6,
		DiskPageSec:      10e-3,
		LANBandwidthBps:  10e6,
		ConnSetupSec:     0.1,
		WANBandwidthBps:  1.5e6,
		WANSetupSec:      1.0,
		MemFraction:      0.10,
		ParentCostFactor: 0.5,
	}
}

// Validate reports parameter errors.
func (m Model) Validate() error {
	if m.MemBlockSec <= 0 || m.DiskPageSec <= 0 || m.LANBandwidthBps <= 0 ||
		m.ConnSetupSec < 0 || m.WANBandwidthBps <= 0 || m.WANSetupSec < 0 ||
		m.MemFraction <= 0 || m.MemFraction > 1 ||
		m.ParentCostFactor <= 0 || m.ParentCostFactor > 1 {
		return fmt.Errorf("latency: invalid model %+v", m)
	}
	return nil
}

// MemRead is the time to read size bytes from a memory cache.
func (m Model) MemRead(size int64) float64 {
	blocks := (size + 15) / 16
	return float64(blocks) * m.MemBlockSec
}

// DiskRead is the time to read size bytes from a disk cache.
func (m Model) DiskRead(size int64) float64 {
	pages := (size + 4095) / 4096
	return float64(pages) * m.DiskPageSec
}

// LANTransfer is the time to move size bytes across the LAN, including
// connection setup but excluding contention (see Bus).
func (m Model) LANTransfer(size int64) float64 {
	return m.ConnSetupSec + float64(size)*8/m.LANBandwidthBps
}

// UpstreamFetch is the time to obtain size bytes from the origin or an
// upper-level proxy.
func (m Model) UpstreamFetch(size int64) float64 {
	return m.WANSetupSec + float64(size)*8/m.WANBandwidthBps
}

// Bus serializes transfers over the shared Ethernet segment, accounting the
// §5 "bus contention time": a transfer arriving while the bus is busy waits
// for the in-flight transfers to finish.
type Bus struct {
	model     Model
	busyUntil float64

	// Totals for the §5 overhead report.
	TransferSec   float64 // raw transfer (incl. setup) time
	ContentionSec float64 // waiting time due to a busy bus
	Transfers     int64
	Bytes         int64

	// observer, when set, sees every transfer (metrics export). It
	// survives Reset and ResetModel so a pooled bus keeps reporting.
	observer func(wait, duration float64, size int64)
}

// SetObserver installs a per-transfer callback (nil disables). The callback
// runs inline on the simulation thread; it must be cheap and must not call
// back into the bus.
func (b *Bus) SetObserver(fn func(wait, duration float64, size int64)) {
	b.observer = fn
}

// NewBus creates a bus over the model's LAN parameters.
func NewBus(model Model) *Bus {
	return &Bus{model: model}
}

// Transfer schedules a size-byte transfer arriving at time now (seconds) and
// returns (wait, duration): the contention delay and the transfer time. The
// caller's completion time is now + wait + duration.
func (b *Bus) Transfer(now float64, size int64) (wait, duration float64) {
	duration = b.model.LANTransfer(size)
	if b.busyUntil > now {
		wait = b.busyUntil - now
	}
	start := now + wait
	b.busyUntil = start + duration
	b.TransferSec += duration
	b.ContentionSec += wait
	b.Transfers++
	b.Bytes += size
	if b.observer != nil {
		b.observer(wait, duration, size)
	}
	return wait, duration
}

// Reset clears the bus state and totals.
func (b *Bus) Reset() {
	b.busyUntil = 0
	b.TransferSec, b.ContentionSec = 0, 0
	b.Transfers, b.Bytes = 0, 0
}

// ResetModel clears the bus and adopts a new timing model, re-arming a
// pooled bus for the next simulation run.
func (b *Bus) ResetModel(m Model) {
	b.model = m
	b.Reset()
}
