package core

import (
	"testing"

	"baps/internal/cache"
	"baps/internal/index"
	"baps/internal/obs"
	"baps/internal/synth"
	"baps/internal/trace"
)

// benchTrace generates a deterministic mid-size workload with real sharing
// structure (the nlanr-bo1 profile at 10 % scale).
func benchTrace(b *testing.B) (*trace.Trace, trace.Stats) {
	b.Helper()
	var prof synth.Profile
	for _, p := range synth.Profiles() {
		if p.Name == "nlanr-bo1" {
			prof = p
		}
	}
	tr, err := synth.Generate(synth.Scaled(prof, 0.10))
	if err != nil {
		b.Fatal(err)
	}
	return tr, trace.Compute(tr)
}

// benchSystem builds a System sized as the paper sizes it (proxy at 10 % of
// the infinite cache size, browsers at 10 % of the average infinite browser
// size).
func benchSystem(b *testing.B, org Organization, tr *trace.Trace, st trace.Stats) *System {
	b.Helper()
	caps := make([]int64, st.NumClients)
	per := int64(0.10 * float64(st.AvgClientInfiniteBytes()))
	for i := range caps {
		caps[i] = per
	}
	sys, err := New(Config{
		Organization:        org,
		NumClients:          st.NumClients,
		NumDocs:             st.UniqueDocs,
		ProxyCapacity:       int64(0.10 * float64(st.InfiniteCacheBytes)),
		BrowserCapacity:     caps,
		ProxyPolicy:         cache.LRU,
		BrowserPolicy:       cache.LRU,
		MemFraction:         0.10,
		BrowserMemFraction:  0.5,
		IndexMode:           index.Immediate,
		IndexStrategy:       index.SelectMostRecent,
		ForwardMode:         FetchForward,
		ProxyCachesPeerDocs: true,
		CacheRemoteHits:     true,
		// Benchmarks run with metrics enabled: the 0 allocs/op numbers
		// below therefore prove the instrumented hot path.
		Metrics: NewAccessMetrics(obs.NewRegistry()),
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkAccess drives the full browsers-aware resolution pipeline — the
// innermost loop of every trace-driven experiment.
func BenchmarkAccess(b *testing.B) {
	tr, st := benchTrace(b)
	sys := benchSystem(b, BrowsersAware, tr, st)
	reqs := tr.Requests
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Access(reqs[i%len(reqs)])
	}
}

// BenchmarkAccessProxyOnly isolates the cache-substrate cost without the
// index layer.
func BenchmarkAccessProxyOnly(b *testing.B) {
	tr, st := benchTrace(b)
	sys := benchSystem(b, ProxyCacheOnly, tr, st)
	reqs := tr.Requests
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Access(reqs[i%len(reqs)])
	}
}
