package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"baps/internal/index"
	"baps/internal/intern"
	"baps/internal/trace"
)

// TestQuickImmediateIndexMirrorsBrowsers: under the immediate update
// protocol the browser index is always exact — after any request sequence,
// the index's view of every client equals that client's actual cache
// contents, and vice versa.
func TestQuickImmediateIndexMirrorsBrowsers(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clients := rng.Intn(4) + 2
		c := cfg(BrowsersAware, clients, int64(rng.Intn(3000)+200), int64(rng.Intn(2000)+200))
		c.ForwardMode = ForwardMode(rng.Intn(2))
		c.CacheRemoteHits = rng.Intn(2) == 0
		s := mustNew(t, c)
		tm := 0.0
		for i := 0; i < 600; i++ {
			tm += rng.Float64()
			u := fmt.Sprintf("u%d", rng.Intn(30))
			s.Access(trace.Request{
				Time:   tm,
				Client: rng.Intn(clients),
				URL:    u,
				Doc:    did(u),
				Size:   int64(rng.Intn(400) + 50),
			})
		}
		for ci := 0; ci < clients; ci++ {
			cached := map[intern.ID]bool{}
			for _, k := range s.Browser(ci).IDs() {
				cached[k] = true
			}
			docs := s.Index().ClientDocs(ci)
			if len(docs) != len(cached) {
				t.Errorf("seed %d client %d: index %d docs, cache %d", seed, ci, len(docs), len(cached))
				return false
			}
			for _, e := range docs {
				if !cached[e.Doc] {
					t.Errorf("seed %d client %d: index lists doc %d not in cache", seed, ci, e.Doc)
					return false
				}
				// Entry metadata matches the cached document.
				if d, ok := s.Browser(ci).Peek(e.Doc); !ok || d.Size != e.Size {
					t.Errorf("seed %d client %d: index size %d vs cache %v", seed, ci, e.Size, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickBAPSNeverLosesToPALB: on identical request streams the
// browsers-aware organization's hit count is at least
// proxy-and-local-browser's. This holds by construction — BAPS adds a
// lookup layer without disturbing the proxy-path caching decisions — and
// guards the comparison experiments against implementation drift.
func TestQuickBAPSNeverLosesToPALB(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clients := rng.Intn(5) + 2
		proxyCap := int64(rng.Intn(4000) + 500)
		browserCap := int64(rng.Intn(2000) + 200)

		count := func(org Organization) int {
			c := cfg(org, clients, proxyCap, browserCap)
			s := mustNew(t, c)
			r2 := rand.New(rand.NewSource(seed + 1))
			hits := 0
			tm := 0.0
			for i := 0; i < 800; i++ {
				tm += r2.Float64()
				u := fmt.Sprintf("u%d", r2.Intn(40))
				out := s.Access(trace.Request{
					Time:   tm,
					Client: r2.Intn(clients),
					URL:    u,
					Doc:    did(u),
					Size:   int64(r2.Intn(300) + 20),
				})
				if out.Class != Miss {
					hits++
				}
			}
			return hits
		}
		baps := count(BrowsersAware)
		palb := count(ProxyAndLocalBrowser)
		if baps < palb {
			t.Errorf("seed %d: BAPS %d hits < P+LB %d", seed, baps, palb)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickPeriodicConvergesAfterFlush: the periodic protocol's index view
// equals the immediate protocol's after a forced flush.
func TestQuickPeriodicConvergesAfterFlush(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		clients := rng.Intn(3) + 2
		c := cfg(BrowsersAware, clients, 2000, 1000)
		c.IndexMode = index.Periodic
		c.IndexThreshold = 0.3
		s := mustNew(t, c)
		tm := 0.0
		for i := 0; i < 400; i++ {
			tm += rng.Float64()
			u := fmt.Sprintf("u%d", rng.Intn(25))
			s.Access(trace.Request{
				Time: tm, Client: rng.Intn(clients),
				URL: u, Doc: did(u), Size: int64(rng.Intn(300) + 20),
			})
		}
		s.FlushIndex()
		for ci := 0; ci < clients; ci++ {
			inIndex := map[intern.ID]bool{}
			for _, e := range s.Index().ClientDocs(ci) {
				inIndex[e.Doc] = true
			}
			ids := s.Browser(ci).IDs()
			if len(ids) != len(inIndex) {
				t.Errorf("seed %d client %d: %d cached vs %d indexed after flush", seed, ci, len(ids), len(inIndex))
				return false
			}
			for _, k := range ids {
				if !inIndex[k] {
					t.Errorf("seed %d client %d: doc %d cached but unindexed after flush", seed, ci, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
