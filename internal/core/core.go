// Package core implements the paper's primary contribution: the
// browsers-aware request-resolution pipeline, expressed so that all five web
// caching organizations of §3.2 are configurations of the same machine.
// Comparisons between organizations therefore cannot diverge by accident of
// implementation — they differ only in which layers exist:
//
//	local browser cache  →  proxy cache  →  browser index (remote browsers)  →  upstream
//
// Organization selects the layers; everything else (LRU caches, two-tier
// memory/disk split, the index-update protocol, holder selection, document
// modification handling) is shared. The package is consumed by the
// trace-driven simulator (internal/sim) and mirrors the protocol the live
// HTTP system (internal/proxy, internal/browser) speaks on real sockets.
package core

import (
	"fmt"

	"baps/internal/cache"
	"baps/internal/index"
	"baps/internal/intern"
	"baps/internal/trace"
)

// Organization is one of the paper's five web caching organizations (§3.2).
type Organization int

const (
	// ProxyCacheOnly: no browser caches; every request goes to the proxy.
	ProxyCacheOnly Organization = iota
	// LocalBrowserCacheOnly: private browser caches, no proxy.
	LocalBrowserCacheOnly
	// GlobalBrowsersCacheOnly: browser caches shared through an index,
	// no proxy cache. Per the paper, a browser does not cache documents
	// fetched from another browser's cache.
	GlobalBrowsersCacheOnly
	// ProxyAndLocalBrowser: the conventional arrangement — private
	// browser caches in front of a proxy cache.
	ProxyAndLocalBrowser
	// BrowsersAware: the paper's contribution — ProxyAndLocalBrowser
	// plus the browser index consulted between a proxy miss and the
	// upstream fetch.
	BrowsersAware
)

// Organizations lists all five in the paper's order.
func Organizations() []Organization {
	return []Organization{ProxyCacheOnly, LocalBrowserCacheOnly, GlobalBrowsersCacheOnly, ProxyAndLocalBrowser, BrowsersAware}
}

// String names the organization as the paper does.
func (o Organization) String() string {
	switch o {
	case ProxyCacheOnly:
		return "proxy-cache-only"
	case LocalBrowserCacheOnly:
		return "local-browser-cache-only"
	case GlobalBrowsersCacheOnly:
		return "global-browsers-cache-only"
	case ProxyAndLocalBrowser:
		return "proxy-and-local-browser"
	case BrowsersAware:
		return "browsers-aware-proxy-server"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// ParseOrganization resolves a paper-style organization name.
func ParseOrganization(s string) (Organization, error) {
	for _, o := range Organizations() {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("core: unknown organization %q", s)
}

// hasLocal reports whether clients have browser caches.
func (o Organization) hasLocal() bool { return o != ProxyCacheOnly }

// hasProxy reports whether a proxy cache exists.
func (o Organization) hasProxy() bool {
	return o == ProxyCacheOnly || o == ProxyAndLocalBrowser || o == BrowsersAware
}

// hasIndex reports whether remote browser caches are reachable via an index.
func (o Organization) hasIndex() bool {
	return o == GlobalBrowsersCacheOnly || o == BrowsersAware
}

// ForwardMode selects how a remote-browser hit is delivered under the
// browsers-aware organization (§2's two implementation alternatives).
type ForwardMode int

const (
	// DirectForward: the proxy informs the holder, which forwards the
	// document to the requester (anonymized in the live system); the
	// document does not pass through the proxy cache.
	DirectForward ForwardMode = iota
	// FetchForward: the proxy fetches the document from the holder and
	// forwards it to the requester, optionally caching it on the way
	// (Config.ProxyCachesPeerDocs).
	FetchForward
)

// String names the mode.
func (f ForwardMode) String() string {
	if f == DirectForward {
		return "direct-forward"
	}
	return "fetch-forward"
}

// HitClass classifies where a request was satisfied. The first three are
// the paper's Figure 3 breakdown buckets.
type HitClass int

const (
	// HitLocalBrowser: served by the requester's own browser cache.
	HitLocalBrowser HitClass = iota
	// HitProxy: served by the proxy cache.
	HitProxy
	// HitRemoteBrowser: served peer-to-peer from another client's
	// browser cache.
	HitRemoteBrowser
	// HitParent: served by the upper-level (parent) proxy, when the
	// hierarchy extension is configured.
	HitParent
	// Miss: fetched from the origin.
	Miss
)

// String names the hit class.
func (h HitClass) String() string {
	switch h {
	case HitLocalBrowser:
		return "local-browser"
	case HitProxy:
		return "proxy"
	case HitRemoteBrowser:
		return "remote-browsers"
	case HitParent:
		return "parent-proxy"
	case Miss:
		return "miss"
	default:
		return fmt.Sprintf("HitClass(%d)", int(h))
	}
}

// Config assembles a System.
type Config struct {
	// Organization selects which layers exist.
	Organization Organization

	// NumClients is the number of browsers.
	NumClients int

	// NumDocs, when positive, pre-sizes the browser index for interned
	// document IDs in [0, NumDocs) (the trace's distinct-document count),
	// sparing the hot path incremental growth. Optional.
	NumDocs int

	// ProxyCapacity is the proxy cache size in bytes (ignored when the
	// organization has no proxy).
	ProxyCapacity int64

	// BrowserCapacity holds the per-client browser cache sizes in bytes
	// (ignored when the organization has no browser caches). Length must
	// equal NumClients.
	BrowserCapacity []int64

	// ProxyPolicy and BrowserPolicy select replacement policies; the
	// paper uses LRU for both.
	ProxyPolicy   cache.Policy
	BrowserPolicy cache.Policy

	// MemFraction is the memory portion of the proxy cache (paper: 1/10
	// of the proxy cache size, after the Squid configuration study it
	// cites).
	MemFraction float64

	// BrowserMemFraction is the memory portion of each browser cache.
	// The paper sets it separately from the proxy's and notes the choice
	// is conservative because "the memory cache portion in a browser can
	// be much larger than that for the proxy cache in practice" — §1
	// even describes fully memory-resident browser caches. Zero means
	// "use MemFraction".
	BrowserMemFraction float64

	// IndexMode selects the §2 update protocol; IndexThreshold is the
	// periodic-mode changed-fraction trigger.
	IndexMode      index.Mode
	IndexThreshold float64

	// IndexStrategy selects the remote-holder preference order.
	IndexStrategy index.Strategy

	// ForwardMode selects §2's delivery alternative for remote hits.
	ForwardMode ForwardMode

	// ProxyCachesPeerDocs: under FetchForward, the proxy also caches the
	// document it relayed from a browser.
	ProxyCachesPeerDocs bool

	// CacheRemoteHits: the requester's browser caches documents received
	// from remote browsers (always false for GlobalBrowsersCacheOnly,
	// where the paper forbids it).
	CacheRemoteHits bool

	// DocTTLSec, when positive, stamps every index entry with a TTL
	// ("provided by the data source", §2): after it expires the entry is
	// no longer offered as a remote holder and is pruned on contact.
	// Zero disables expiry.
	DocTTLSec float64

	// RevalidateAfterSec, when positive, models the live system's
	// background revalidation producer (DESIGN.md §14): a proxy copy whose
	// last known-fresh contact is older than this age has been
	// conditionally re-checked in the background, so an origin-side
	// modification surfaces as a fresh proxy hit (plus a background origin
	// fetch, counted via Outcome.Revalidated) instead of a user-visible
	// stale miss. Zero reproduces the paper (no revalidation).
	RevalidateAfterSec float64

	// PrefetchMinHits, when positive under the browsers-aware
	// organization, models the popularity-driven prefetch producer: once a
	// document's proxy-level access count reaches this threshold, the
	// proxy pushes a copy into one browser cache that does not yet hold it
	// (round-robin over clients), publishing the index entry. Zero
	// disables prefetch.
	PrefetchMinHits int

	// ParentCapacity, when positive, inserts an upper-level proxy cache
	// between the organization and the origin (the paper's "upper level
	// proxy" that misses are forwarded to). It is consulted after every
	// other layer and caches everything passing through it.
	ParentCapacity int64

	// SparseBrowserSlots selects hash-based docID→slot tables for the
	// browser caches instead of dense per-instance slices, bounding browser
	// memory by resident documents rather than the document-ID space.
	// Replacement behavior is identical (property-tested); it is also
	// auto-enabled when NumClients × NumDocs crosses sparseAutoThreshold,
	// which is what lets a 10^6-client replay fit in bounded RSS. The proxy
	// and parent caches always stay dense (two instances, O(NumDocs) is
	// the cheap and faster choice there).
	SparseBrowserSlots bool

	// Metrics, when non-nil, receives per-request observability counters
	// (see NewAccessMetrics). The counters are pre-resolved so Access
	// stays allocation-free with metrics enabled.
	Metrics *AccessMetrics
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.NumClients <= 0 {
		return fmt.Errorf("core: NumClients must be > 0")
	}
	if c.Organization.hasProxy() && c.ProxyCapacity < 0 {
		return fmt.Errorf("core: negative ProxyCapacity")
	}
	if c.Organization.hasLocal() {
		if len(c.BrowserCapacity) != c.NumClients {
			return fmt.Errorf("core: BrowserCapacity has %d entries for %d clients", len(c.BrowserCapacity), c.NumClients)
		}
		for i, b := range c.BrowserCapacity {
			if b < 0 {
				return fmt.Errorf("core: negative BrowserCapacity[%d]", i)
			}
		}
	}
	if c.MemFraction <= 0 || c.MemFraction > 1 {
		return fmt.Errorf("core: MemFraction %g out of (0,1]", c.MemFraction)
	}
	if c.BrowserMemFraction < 0 || c.BrowserMemFraction > 1 {
		return fmt.Errorf("core: BrowserMemFraction %g out of [0,1]", c.BrowserMemFraction)
	}
	if (c.IndexMode == index.Periodic || c.IndexMode == index.Batched) &&
		(c.IndexThreshold <= 0 || c.IndexThreshold > 1) {
		return fmt.Errorf("core: IndexThreshold %g out of (0,1] for %s mode", c.IndexThreshold, c.IndexMode)
	}
	if c.DocTTLSec < 0 {
		return fmt.Errorf("core: negative DocTTLSec")
	}
	if c.ParentCapacity < 0 {
		return fmt.Errorf("core: negative ParentCapacity")
	}
	if c.RevalidateAfterSec < 0 {
		return fmt.Errorf("core: negative RevalidateAfterSec")
	}
	if c.PrefetchMinHits < 0 {
		return fmt.Errorf("core: negative PrefetchMinHits")
	}
	return nil
}

// Outcome reports how one request was resolved.
type Outcome struct {
	// Class is where the request was satisfied.
	Class HitClass
	// Tier is the storage tier at the serving cache (meaningful for
	// hits; misses report TierDisk).
	Tier cache.Tier
	// Provider is the holder's client id for remote-browser hits, -1
	// otherwise.
	Provider int
	// Size is the delivered body size in bytes.
	Size int64
	// FalseIndexHits counts stale index entries contacted before this
	// request resolved (only possible under the periodic protocol).
	FalseIndexHits int
	// StaleLocal and StaleProxy report that a cached copy existed at the
	// respective layer but the document had been modified at the origin,
	// so the copy could not be used (counted as a miss there, §3.2).
	StaleLocal bool
	StaleProxy bool
	// Revalidated reports a proxy hit that only exists because background
	// revalidation refreshed a modified copy before this access (one
	// background origin fetch was spent on it).
	Revalidated bool
	// PrefetchPushed reports that this access tripped the popularity
	// threshold and pushed a copy into an idle browser cache.
	PrefetchPushed bool
}

// System is one configured caching organization processing a request
// stream. It is not safe for concurrent use: the simulator drives one
// System per goroutine.
type System struct {
	cfg      Config
	proxy    *cache.IDTwoTier
	parent   *cache.IDTwoTier
	browsers []*cache.IDTwoTier
	idx      *index.Index
	pubs     []*index.Publisher
	now      float64

	// ordBuf is the reused holder-candidate buffer for remoteLookup, so a
	// proxy miss costs no allocation.
	ordBuf []index.Entry

	// Background-pipeline policy state (nil/empty when disabled).
	// revalStamp[doc] is the proxy copy's last known-fresh time;
	// popCount[doc] is the proxy-level access count driving prefetch;
	// prefetchCursor round-robins push placement over clients.
	revalStamp     []float64
	popCount       []int32
	prefetchCursor int
}

// sparseAutoThreshold is the NumClients × NumDocs product beyond which the
// browser caches switch to sparse slot tables automatically. Dense slices
// cost 4 bytes per browser per addressable doc ID: beyond ~1 MiB of total
// slot tables the zeroing and cache misses of the dense layout cost more
// than the sparse table's hashing — measured on the experiment suite, where
// flipping the paper profiles (clients × docs ≈ 10^6 at benchmark scale) to
// sparse cuts `bapsim all` allocation by ~40%. Dense survives only for tiny
// organizations (e.g. the 3-client CA*netII stand-in) whose tables stay
// resident in cache anyway.
const sparseAutoThreshold = 1 << 18

// sparseBrowsers reports whether browser caches use sparse slot tables.
func (c *Config) sparseBrowsers() bool {
	return c.SparseBrowserSlots ||
		(c.NumClients > 0 && c.NumDocs > 0 && int64(c.NumClients)*int64(c.NumDocs) > sparseAutoThreshold)
}

// New builds a System from cfg.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{cfg: cfg}
	if cfg.Organization.hasIndex() {
		s.idx = index.New(cfg.IndexStrategy)
		if cfg.NumDocs > 0 {
			s.idx.Grow(cfg.NumDocs)
		}
	}
	if cfg.Organization.hasProxy() {
		mem := int64(float64(cfg.ProxyCapacity) * cfg.MemFraction)
		p, err := cache.NewIDTwoTier(cfg.ProxyPolicy, cfg.ProxyCapacity, mem)
		if err != nil {
			return nil, fmt.Errorf("core: proxy cache: %w", err)
		}
		s.proxy = p
	}
	if cfg.ParentCapacity > 0 {
		mem := int64(float64(cfg.ParentCapacity) * cfg.MemFraction)
		p, err := cache.NewIDTwoTier(cfg.ProxyPolicy, cfg.ParentCapacity, mem)
		if err != nil {
			return nil, fmt.Errorf("core: parent cache: %w", err)
		}
		s.parent = p
	}
	if cfg.Organization.hasLocal() {
		s.browsers = make([]*cache.IDTwoTier, cfg.NumClients)
		if s.idx != nil {
			s.pubs = make([]*index.Publisher, cfg.NumClients)
		}
		browserMem := cfg.BrowserMemFraction
		if browserMem == 0 {
			browserMem = cfg.MemFraction
		}
		sparse := cfg.sparseBrowsers()
		for i := 0; i < cfg.NumClients; i++ {
			i := i
			capacity := cfg.BrowserCapacity[i]
			mem := int64(float64(capacity) * browserMem)
			opts := cache.IDOptions{Sparse: sparse}
			if s.idx != nil {
				pub, err := index.NewPublisher(s.idx, i, cfg.IndexMode, cfg.IndexThreshold)
				if err != nil {
					return nil, err
				}
				s.pubs[i] = pub
				opts.OnEvict = func(d cache.IDDoc) {
					// Browser cache capacity eviction → §2
					// invalidation message (or batched change).
					pub.OnEvict(d.ID, s.browsers[i].Len())
				}
			}
			b, err := cache.NewIDTwoTier(cfg.BrowserPolicy, capacity, mem, opts)
			if err != nil {
				return nil, fmt.Errorf("core: browser cache %d: %w", i, err)
			}
			s.browsers[i] = b
		}
	}
	s.armPipelinePolicies()
	return s, nil
}

// armPipelinePolicies (re)allocates the background-policy state to match the
// current configuration: revalidation needs a proxy; prefetch needs the full
// browsers-aware triple (proxy + index + browser caches).
func (s *System) armPipelinePolicies() {
	s.revalStamp, s.popCount, s.prefetchCursor = nil, nil, 0
	if s.cfg.RevalidateAfterSec > 0 && s.proxy != nil {
		s.revalStamp = make([]float64, s.cfg.NumDocs)
	}
	if s.cfg.PrefetchMinHits > 0 && s.proxy != nil && s.idx != nil && s.browsers != nil {
		s.popCount = make([]int32, s.cfg.NumDocs)
	}
}

// Access resolves one request through the organization's layers and returns
// where it was satisfied. Requests must be presented in trace order.
func (s *System) Access(r trace.Request) Outcome {
	out := s.access(r)
	// Popularity accounting mirrors the live proxy: every request that
	// reached the proxy layer (anything but a local-browser hit) counts.
	if s.popCount != nil && out.Class != HitLocalBrowser {
		out.PrefetchPushed = s.notePrefetch(r)
	}
	if m := s.cfg.Metrics; m != nil {
		m.Requests.Inc()
		m.Outcomes[out.Class].Inc()
		m.BytesRequested.Add(out.Size)
		if out.FalseIndexHits > 0 {
			m.FalseIndexHits.Add(int64(out.FalseIndexHits))
		}
		if out.Revalidated {
			m.Revalidations.Inc()
		}
		if out.PrefetchPushed {
			m.PrefetchPushes.Inc()
		}
	}
	return out
}

func (s *System) access(r trace.Request) Outcome {
	s.now = r.Time
	out := Outcome{Provider: -1, Size: r.Size, Class: Miss}

	// 1. Local browser cache.
	if s.cfg.Organization.hasLocal() {
		b := s.browsers[r.Client]
		if doc, tier, ok := b.GetTier(r.Doc); ok {
			if doc.Size == r.Size {
				out.Class = HitLocalBrowser
				out.Tier = tier
				return out
			}
			// Modified at the origin: unusable copy (§3.2).
			out.StaleLocal = true
			b.Remove(r.Doc)
			if s.pubs != nil {
				s.pubs[r.Client].OnEvict(r.Doc, b.Len())
			}
		}
	}

	// 2. Proxy cache.
	if s.cfg.Organization.hasProxy() {
		if doc, tier, ok := s.proxy.GetTier(r.Doc); ok {
			if doc.Size == r.Size {
				s.stampFresh(r.Doc)
				out.Class = HitProxy
				out.Tier = tier
				s.deliverToBrowser(r)
				return out
			}
			// Modified at the origin. With the revalidation producer
			// enabled, a copy past the freshness age has already been
			// conditionally re-fetched in the background: the request
			// sees a current proxy hit at the price of one background
			// origin fetch instead of a stale miss.
			if s.revalStamp != nil && s.now-s.freshStamp(r.Doc) >= s.cfg.RevalidateAfterSec {
				s.proxy.Put(cache.IDDoc{ID: r.Doc, Size: r.Size})
				s.stampFresh(r.Doc)
				out.Class = HitProxy
				out.Tier = cache.TierMemory // refetched bodies land in memory
				out.Revalidated = true
				s.deliverToBrowser(r)
				return out
			}
			out.StaleProxy = true
			s.proxy.Remove(r.Doc)
		}
	}

	// 3. Browser index → remote browser caches.
	if s.cfg.Organization.hasIndex() {
		provider, tier, falseHits, ok := s.remoteLookup(r)
		out.FalseIndexHits = falseHits
		if ok {
			out.Class = HitRemoteBrowser
			out.Provider = provider
			out.Tier = tier
			if s.cfg.Organization == BrowsersAware {
				if s.cfg.ForwardMode == FetchForward && s.cfg.ProxyCachesPeerDocs {
					s.proxy.Put(cache.IDDoc{ID: r.Doc, Size: r.Size})
				}
				if s.cfg.CacheRemoteHits {
					s.deliverToBrowser(r)
				}
			}
			// GlobalBrowsersCacheOnly: the paper forbids caching
			// documents fetched from another browser.
			return out
		}
	}

	// 4. Upper-level (parent) proxy, when configured.
	if s.parent != nil {
		if doc, tier, ok := s.parent.GetTier(r.Doc); ok && doc.Size == r.Size {
			out.Class = HitParent
			out.Tier = tier
			if s.cfg.Organization.hasProxy() {
				s.proxy.Put(cache.IDDoc{ID: r.Doc, Size: r.Size})
			}
			s.deliverToBrowser(r)
			return out
		} else if ok {
			s.parent.Remove(r.Doc)
		}
	}

	// 5. Origin fetch.
	if s.parent != nil {
		s.parent.Put(cache.IDDoc{ID: r.Doc, Size: r.Size})
	}
	if s.cfg.Organization.hasProxy() {
		s.proxy.Put(cache.IDDoc{ID: r.Doc, Size: r.Size})
		s.stampFresh(r.Doc)
	}
	s.deliverToBrowser(r)
	return out
}

// stampFresh records the proxy copy's last known-fresh time (no-op with
// revalidation disabled). The slice grows lazily for traces that did not
// pre-declare NumDocs.
func (s *System) stampFresh(doc intern.ID) {
	if s.revalStamp == nil {
		return
	}
	for int(doc) >= len(s.revalStamp) {
		s.revalStamp = append(s.revalStamp, 0)
	}
	s.revalStamp[int(doc)] = s.now
}

// freshStamp reads the last known-fresh time for doc (zero when unseen).
func (s *System) freshStamp(doc intern.ID) float64 {
	if int(doc) >= len(s.revalStamp) {
		return 0
	}
	return s.revalStamp[int(doc)]
}

// notePrefetch advances doc's proxy-level access count and, exactly at the
// popularity threshold, pushes a copy into the next browser cache (round-
// robin) that does not already hold it, publishing the index entry so the
// placement is immediately resolvable. Reports whether a push happened.
func (s *System) notePrefetch(r trace.Request) bool {
	for int(r.Doc) >= len(s.popCount) {
		s.popCount = append(s.popCount, 0)
	}
	s.popCount[int(r.Doc)]++
	if int(s.popCount[int(r.Doc)]) != s.cfg.PrefetchMinHits {
		return false
	}
	n := s.cfg.NumClients
	for i := 0; i < n; i++ {
		c := (s.prefetchCursor + i) % n
		if c == r.Client {
			continue
		}
		b := s.browsers[c]
		if _, held := b.Peek(r.Doc); held {
			continue
		}
		if _, admitted := b.Put(cache.IDDoc{ID: r.Doc, Size: r.Size}); !admitted {
			continue
		}
		if s.pubs != nil {
			e := index.Entry{Doc: r.Doc, Size: r.Size, Stamp: s.now}
			if s.cfg.DocTTLSec > 0 {
				e.Expire = s.now + s.cfg.DocTTLSec
			}
			s.pubs[c].OnInsert(e, b.Len())
		}
		s.prefetchCursor = (c + 1) % n
		return true
	}
	return false
}

// deliverToBrowser stores the delivered document in the requester's browser
// cache and publishes the index update.
func (s *System) deliverToBrowser(r trace.Request) {
	if !s.cfg.Organization.hasLocal() {
		return
	}
	b := s.browsers[r.Client]
	_, admitted := b.Put(cache.IDDoc{ID: r.Doc, Size: r.Size})
	if admitted && s.pubs != nil {
		e := index.Entry{
			Doc:   r.Doc,
			Size:  r.Size,
			Stamp: s.now,
		}
		if s.cfg.DocTTLSec > 0 {
			e.Expire = s.now + s.cfg.DocTTLSec
		}
		s.pubs[r.Client].OnInsert(e, b.Len())
	}
}

// remoteLookup walks the index's preferred holders for r.Doc, contacting
// each until one actually holds a current copy. Stale index entries (only
// possible under the periodic protocol, or after origin-side modification)
// are pruned and counted as false hits when a contact was wasted. The
// candidate list lands in the system's reused scratch buffer, so the walk
// performs no allocation.
func (s *System) remoteLookup(r trace.Request) (provider int, tier cache.Tier, falseHits int, ok bool) {
	now := 0.0
	if s.cfg.DocTTLSec > 0 {
		now = s.now
	}
	s.ordBuf = s.idx.AppendOrdered(s.ordBuf[:0], r.Doc, r.Client, now)
	for _, e := range s.ordBuf {
		if e.Size != r.Size {
			// The index itself proves the holder's copy predates the
			// modification; no contact is wasted.
			continue
		}
		doc, t, found := s.browsers[e.Client].GetTier(r.Doc)
		if found && doc.Size == r.Size {
			s.idx.AccountServe(e.Client)
			return e.Client, t, falseHits, true
		}
		// Contacted a browser that no longer has a usable copy.
		falseHits++
		s.idx.Remove(e.Client, r.Doc)
	}
	return -1, cache.TierDisk, falseHits, false
}

// Reset re-arms the system for a fresh replay under cfg, reusing the
// allocated cache, index, and publisher storage in place. It reports false —
// leaving the system untouched — when cfg's structure is incompatible with
// the one the system was built with (different organization, client count,
// replacement policies, index mode or strategy, or parent presence); the
// caller then builds a new System. Capacities, memory fractions, thresholds,
// TTLs, and forwarding flags may all change freely, which covers the sweep
// drivers' per-point variation.
func (s *System) Reset(cfg Config) bool {
	if err := cfg.Validate(); err != nil {
		return false
	}
	old := &s.cfg
	if cfg.Organization != old.Organization ||
		cfg.NumClients != old.NumClients ||
		cfg.ProxyPolicy != old.ProxyPolicy ||
		cfg.BrowserPolicy != old.BrowserPolicy ||
		cfg.IndexMode != old.IndexMode ||
		cfg.IndexStrategy != old.IndexStrategy ||
		(cfg.ParentCapacity > 0) != (old.ParentCapacity > 0) ||
		cfg.sparseBrowsers() != old.sparseBrowsers() {
		return false
	}
	if s.proxy != nil {
		mem := int64(float64(cfg.ProxyCapacity) * cfg.MemFraction)
		s.proxy.ResetTiers(cfg.ProxyCapacity, mem)
	}
	if s.parent != nil {
		mem := int64(float64(cfg.ParentCapacity) * cfg.MemFraction)
		s.parent.ResetTiers(cfg.ParentCapacity, mem)
	}
	if s.browsers != nil {
		browserMem := cfg.BrowserMemFraction
		if browserMem == 0 {
			browserMem = cfg.MemFraction
		}
		for i, b := range s.browsers {
			capacity := cfg.BrowserCapacity[i]
			b.ResetTiers(capacity, int64(float64(capacity)*browserMem))
		}
	}
	if s.idx != nil {
		s.idx.Reset()
		if cfg.NumDocs > 0 {
			s.idx.Grow(cfg.NumDocs)
		}
	}
	for _, p := range s.pubs {
		if p != nil {
			p.Reset(cfg.IndexThreshold)
		}
	}
	s.cfg = cfg
	s.now = 0
	s.armPipelinePolicies()
	return true
}

// FlushIndex forces all pending periodic index updates through (end-of-run
// bookkeeping and tests).
func (s *System) FlushIndex() {
	for _, p := range s.pubs {
		if p != nil {
			p.Flush()
		}
	}
}

// IndexMessageStats totals the §5 index-maintenance traffic across all
// publishers: protocol messages sent and the index entries they carried.
// Zero when the organization has no index.
func (s *System) IndexMessageStats() (msgs, entriesShipped int64) {
	for _, p := range s.pubs {
		if p != nil {
			msgs += p.Messages()
			entriesShipped += p.EntriesShipped()
		}
	}
	return msgs, entriesShipped
}

// Proxy exposes the proxy cache (nil when the organization has none).
func (s *System) Proxy() *cache.IDTwoTier { return s.proxy }

// Parent exposes the upper-level proxy cache (nil unless configured).
func (s *System) Parent() *cache.IDTwoTier { return s.parent }

// Browser exposes client i's browser cache (nil when the organization has
// none).
func (s *System) Browser(i int) *cache.IDTwoTier {
	if s.browsers == nil {
		return nil
	}
	return s.browsers[i]
}

// Index exposes the browser index (nil when the organization has none).
func (s *System) Index() *index.Index { return s.idx }

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }
