package core

import "baps/internal/obs"

// AccessMetrics mirrors the request-resolution pipeline onto an obs.Registry
// without touching the Access hot path's allocation profile: every field is a
// pre-resolved counter, so recording an outcome is a handful of atomic adds —
// no map lookups, no strconv, no interface boxing.
type AccessMetrics struct {
	// Requests counts calls to Access.
	Requests *obs.Counter
	// Outcomes is indexed by HitClass (baps_sim_requests_by_class_total).
	Outcomes [5]*obs.Counter
	// FalseIndexHits counts wasted remote-browser contacts.
	FalseIndexHits *obs.Counter
	// BytesRequested sums delivered body sizes.
	BytesRequested *obs.Counter
	// Revalidations counts proxy hits rescued by background revalidation
	// (each cost one background origin fetch).
	Revalidations *obs.Counter
	// PrefetchPushes counts popularity-driven placements into browser
	// caches.
	PrefetchPushes *obs.Counter
}

// NewAccessMetrics registers the simulator-core metric families on reg and
// pre-resolves every child counter.
func NewAccessMetrics(reg *obs.Registry) *AccessMetrics {
	m := &AccessMetrics{
		Requests: reg.Counter("baps_sim_requests_total",
			"Requests resolved through the caching organization."),
		FalseIndexHits: reg.Counter("baps_sim_false_index_hits_total",
			"Remote-browser contacts wasted on stale index entries."),
		BytesRequested: reg.Counter("baps_sim_bytes_requested_total",
			"Body bytes delivered to requesters."),
		Revalidations: reg.Counter("baps_sim_revalidations_total",
			"Stale proxy copies refreshed by background revalidation before access."),
		PrefetchPushes: reg.Counter("baps_sim_prefetch_pushes_total",
			"Popularity-driven pushes into browser caches."),
	}
	vec := reg.CounterVec("baps_sim_requests_by_class_total",
		"Requests by resolution class (Figure 3 breakdown plus parent/miss).", "class")
	for _, h := range []HitClass{HitLocalBrowser, HitProxy, HitRemoteBrowser, HitParent, Miss} {
		m.Outcomes[h] = vec.With(h.String())
	}
	return m
}
