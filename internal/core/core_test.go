package core

import (
	"testing"

	"baps/internal/cache"
	"baps/internal/index"
	"baps/internal/intern"
	"baps/internal/trace"
)

// testSyms interns test URLs to document IDs, as the trace loader would.
var testSyms = intern.NewTable(0)

func did(url string) intern.ID { return testSyms.Intern(url) }

// cfg builds a small BrowsersAware config; tests mutate as needed.
func cfg(org Organization, clients int, proxyCap, browserCap int64) Config {
	caps := make([]int64, clients)
	for i := range caps {
		caps[i] = browserCap
	}
	return Config{
		Organization:        org,
		NumClients:          clients,
		ProxyCapacity:       proxyCap,
		BrowserCapacity:     caps,
		ProxyPolicy:         cache.LRU,
		BrowserPolicy:       cache.LRU,
		MemFraction:         0.1,
		IndexMode:           index.Immediate,
		IndexStrategy:       index.SelectMostRecent,
		ForwardMode:         FetchForward,
		ProxyCachesPeerDocs: true,
		CacheRemoteHits:     true,
	}
}

func mustNew(t *testing.T, c Config) *System {
	t.Helper()
	s, err := New(c)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func req(tm float64, client int, url string, size int64) trace.Request {
	return trace.Request{Time: tm, Client: client, URL: url, Doc: did(url), Size: size}
}

func TestOrganizationNames(t *testing.T) {
	for _, o := range Organizations() {
		got, err := ParseOrganization(o.String())
		if err != nil || got != o {
			t.Errorf("round trip %v failed: %v %v", o, got, err)
		}
	}
	if _, err := ParseOrganization("bogus"); err == nil {
		t.Error("ParseOrganization accepted bogus")
	}
	if Organization(99).String() != "Organization(99)" {
		t.Error("unknown organization String wrong")
	}
	if BrowsersAware.String() != "browsers-aware-proxy-server" {
		t.Error("paper name wrong")
	}
}

func TestForwardModeAndHitClassStrings(t *testing.T) {
	if DirectForward.String() != "direct-forward" || FetchForward.String() != "fetch-forward" {
		t.Error("ForwardMode strings wrong")
	}
	want := map[HitClass]string{HitLocalBrowser: "local-browser", HitProxy: "proxy", HitRemoteBrowser: "remote-browsers", Miss: "miss", HitClass(9): "HitClass(9)"}
	for h, w := range want {
		if h.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(h), h.String(), w)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.NumClients = 0 },
		func(c *Config) { c.ProxyCapacity = -1 },
		func(c *Config) { c.BrowserCapacity = c.BrowserCapacity[:1] },
		func(c *Config) { c.BrowserCapacity[0] = -5 },
		func(c *Config) { c.MemFraction = 0 },
		func(c *Config) { c.MemFraction = 2 },
		func(c *Config) { c.IndexMode = index.Periodic; c.IndexThreshold = 0 },
	}
	for i, mut := range muts {
		c := cfg(BrowsersAware, 3, 1000, 100)
		mut(&c)
		if _, err := New(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestProxyCacheOnlyFlow(t *testing.T) {
	s := mustNew(t, cfg(ProxyCacheOnly, 2, 1000, 0))
	if out := s.Access(req(0, 0, "u", 100)); out.Class != Miss {
		t.Fatalf("first access: %v", out.Class)
	}
	// Same client again: proxy hit, never a local hit (no browser caches).
	if out := s.Access(req(1, 0, "u", 100)); out.Class != HitProxy {
		t.Fatalf("second access: %v", out.Class)
	}
	// Other client benefits from the proxy too.
	if out := s.Access(req(2, 1, "u", 100)); out.Class != HitProxy {
		t.Fatalf("cross-client: %v", out.Class)
	}
	if s.Browser(0) != nil || s.Index() != nil {
		t.Fatal("proxy-only org must have no browsers or index")
	}
}

func TestLocalBrowserCacheOnlyFlow(t *testing.T) {
	s := mustNew(t, cfg(LocalBrowserCacheOnly, 2, 0, 1000))
	s.Access(req(0, 0, "u", 100))
	if out := s.Access(req(1, 0, "u", 100)); out.Class != HitLocalBrowser {
		t.Fatalf("local re-access: %v", out.Class)
	}
	// Another client cannot see client 0's cache: miss.
	if out := s.Access(req(2, 1, "u", 100)); out.Class != Miss {
		t.Fatalf("cross-client without sharing: %v", out.Class)
	}
	if s.Proxy() != nil {
		t.Fatal("local-only org must have no proxy")
	}
}

func TestGlobalBrowsersFlowAndNoPeerCaching(t *testing.T) {
	s := mustNew(t, cfg(GlobalBrowsersCacheOnly, 2, 0, 1000))
	s.Access(req(0, 0, "u", 100)) // miss; client 0 caches
	out := s.Access(req(1, 1, "u", 100))
	if out.Class != HitRemoteBrowser || out.Provider != 0 {
		t.Fatalf("remote hit: %+v", out)
	}
	// Paper: a browser does NOT cache documents fetched from another
	// browser cache, so client 1 misses locally again and re-hits remote.
	out = s.Access(req(2, 1, "u", 100))
	if out.Class != HitRemoteBrowser {
		t.Fatalf("second access should be remote again, got %v", out.Class)
	}
	if _, ok := s.Browser(1).Peek(did("u")); ok {
		t.Fatal("peer-fetched doc cached in requester's browser (forbidden)")
	}
}

func TestProxyAndLocalBrowserFlow(t *testing.T) {
	s := mustNew(t, cfg(ProxyAndLocalBrowser, 2, 1000, 1000))
	s.Access(req(0, 0, "u", 100)) // miss: cached at proxy and browser 0
	if out := s.Access(req(1, 0, "u", 100)); out.Class != HitLocalBrowser {
		t.Fatalf("local hit expected: %v", out.Class)
	}
	if out := s.Access(req(2, 1, "u", 100)); out.Class != HitProxy {
		t.Fatalf("proxy hit expected: %v", out.Class)
	}
	// After the proxy hit, client 1's browser has it too.
	if out := s.Access(req(3, 1, "u", 100)); out.Class != HitLocalBrowser {
		t.Fatalf("browser should have cached proxy hit: %v", out.Class)
	}
}

func TestBrowsersAwareRemoteHit(t *testing.T) {
	// Proxy too small to retain the doc; browsers big enough — the
	// paper's first miss type (replaced in proxy, retained in browsers).
	c := cfg(BrowsersAware, 2, 150, 1000)
	s := mustNew(t, c)
	s.Access(req(0, 0, "u", 100)) // miss; proxy + browser 0 cache it
	s.Access(req(1, 0, "x", 100)) // evicts u from the 150-byte proxy
	out := s.Access(req(2, 1, "u", 100))
	if out.Class != HitRemoteBrowser || out.Provider != 0 {
		t.Fatalf("expected remote-browser hit from client 0: %+v", out)
	}
	// FetchForward + ProxyCachesPeerDocs: the proxy now has u again.
	if _, ok := s.Proxy().Peek(did("u")); !ok {
		t.Fatal("fetch-forward did not repopulate the proxy cache")
	}
	// CacheRemoteHits: requester's browser has it → local hit next.
	if out := s.Access(req(3, 1, "u", 100)); out.Class != HitLocalBrowser {
		t.Fatalf("requester should have cached the peer doc: %v", out.Class)
	}
}

func TestBrowsersAwareDirectForwardSkipsProxy(t *testing.T) {
	c := cfg(BrowsersAware, 2, 150, 1000)
	c.ForwardMode = DirectForward
	s := mustNew(t, c)
	s.Access(req(0, 0, "u", 100))
	s.Access(req(1, 0, "x", 100)) // evict u from proxy
	out := s.Access(req(2, 1, "u", 100))
	if out.Class != HitRemoteBrowser {
		t.Fatalf("remote hit expected: %v", out.Class)
	}
	if _, ok := s.Proxy().Peek(did("u")); ok {
		t.Fatal("direct-forward must not populate the proxy cache")
	}
}

func TestBrowsersAwareNoCacheRemoteHitsOption(t *testing.T) {
	c := cfg(BrowsersAware, 2, 150, 1000)
	c.CacheRemoteHits = false
	s := mustNew(t, c)
	s.Access(req(0, 0, "u", 100))
	s.Access(req(1, 0, "x", 100))
	if out := s.Access(req(2, 1, "u", 100)); out.Class != HitRemoteBrowser {
		t.Fatalf("remote hit expected: %v", out.Class)
	}
	if _, ok := s.Browser(1).Peek(did("u")); ok {
		t.Fatal("CacheRemoteHits=false but requester cached the doc")
	}
}

func TestModifiedDocumentIsMissEverywhere(t *testing.T) {
	s := mustNew(t, cfg(BrowsersAware, 2, 1000, 1000))
	s.Access(req(0, 0, "u", 100))
	s.Access(req(1, 1, "u", 100))
	// Origin modifies the document: new size 200. All cached copies are
	// stale; the request must be a Miss with stale flags set.
	out := s.Access(req(2, 0, "u", 200))
	if out.Class != Miss {
		t.Fatalf("modified doc served from cache: %v", out.Class)
	}
	if !out.StaleLocal {
		t.Error("StaleLocal not reported")
	}
	// Client 1 still has the old copy; the index must not offer it as a
	// remote hit for the new version (entry size mismatch). After client
	// 0's refetch, a request by 1 gets the new version via local-miss →
	// proxy (fresh) path.
	out = s.Access(req(3, 1, "u", 200))
	if out.Class != HitProxy {
		t.Fatalf("client 1 should hit fresh proxy copy: %v", out.Class)
	}
	if !out.StaleLocal {
		t.Error("client 1's stale local copy not flagged")
	}
}

func TestStaleProxyFlag(t *testing.T) {
	s := mustNew(t, cfg(ProxyCacheOnly, 1, 1000, 0))
	s.Access(req(0, 0, "u", 100))
	out := s.Access(req(1, 0, "u", 150))
	if out.Class != Miss || !out.StaleProxy {
		t.Fatalf("stale proxy copy: %+v", out)
	}
	// Fresh copy is now cached.
	if out := s.Access(req(2, 0, "u", 150)); out.Class != HitProxy {
		t.Fatalf("refetch not cached: %v", out.Class)
	}
}

func TestStaleIndexFalseHits(t *testing.T) {
	// Index staleness (a batched/lost invalidation): the index lists a
	// holder whose cache no longer has the document. The contact is
	// wasted (false hit), the entry is pruned, and the request misses.
	c := cfg(BrowsersAware, 2, 50 /* too small for u */, 1000)
	s := mustNew(t, c)
	s.Access(req(0, 0, "u", 100)) // client 0 caches u; index records it
	// Simulate an unflushed eviction: drop u from the browser cache
	// without an invalidation message (Remove bypasses OnEvict).
	s.Browser(0).Remove(did("u"))
	if !s.Index().Has(0, did("u")) {
		t.Fatal("test setup: index entry should still exist")
	}
	out := s.Access(req(1, 1, "u", 100))
	if out.Class != Miss {
		t.Fatalf("stale index entry should lead to a miss, got %v", out.Class)
	}
	if out.FalseIndexHits != 1 {
		t.Fatalf("FalseIndexHits = %d, want 1", out.FalseIndexHits)
	}
	// The wasted contact prunes the entry.
	if s.Index().Has(0, did("u")) {
		t.Fatal("stale entry not pruned after false hit")
	}
}

func TestRemoteLookupFallsThroughStaleToGoodHolder(t *testing.T) {
	c := cfg(BrowsersAware, 3, 50 /* proxy never holds u */, 1000)
	c.IndexStrategy = index.SelectMostRecent
	s := mustNew(t, c)
	s.Access(req(0, 1, "u", 100)) // client 1 caches u (stamp 0)
	s.Access(req(1, 2, "u", 100)) // remote hit; client 2 caches u (stamp 1)
	// Client 2 (the most recent holder) silently loses its copy.
	s.Browser(2).Remove(did("u"))
	out := s.Access(req(2, 0, "u", 100))
	if out.Class != HitRemoteBrowser {
		t.Fatalf("expected remote hit via fallback, got %v (false hits %d)", out.Class, out.FalseIndexHits)
	}
	if out.Provider != 1 {
		t.Fatalf("provider = %d, want 1 (the holder that still has u)", out.Provider)
	}
	if out.FalseIndexHits != 1 {
		t.Fatalf("FalseIndexHits = %d, want 1 (client 2 contacted first)", out.FalseIndexHits)
	}
}

func TestBreakdownBucketsSumToRequests(t *testing.T) {
	s := mustNew(t, cfg(BrowsersAware, 3, 500, 300))
	counts := map[HitClass]int{}
	urls := []string{"a", "b", "c", "d", "e"}
	n := 0
	for i := 0; i < 200; i++ {
		u := urls[i%len(urls)]
		out := s.Access(req(float64(i), i%3, u, int64(50+10*(i%len(urls)))))
		counts[out.Class]++
		n++
	}
	sum := counts[HitLocalBrowser] + counts[HitProxy] + counts[HitRemoteBrowser] + counts[Miss]
	if sum != n {
		t.Fatalf("breakdown sums to %d, want %d: %v", sum, n, counts)
	}
}

func TestMemoryTierReporting(t *testing.T) {
	s := mustNew(t, cfg(ProxyAndLocalBrowser, 1, 10_000, 10_000))
	s.Access(req(0, 0, "u", 100))
	out := s.Access(req(1, 0, "u", 100))
	if out.Class != HitLocalBrowser || out.Tier != cache.TierMemory {
		t.Fatalf("fresh doc should be a memory hit: %+v", out)
	}
}
