package core

import "testing"

func TestDocTTLExpiresRemoteHits(t *testing.T) {
	c := cfg(BrowsersAware, 2, 50 /* proxy never holds u */, 1000)
	c.DocTTLSec = 100
	s := mustNew(t, c)

	s.Access(req(0, 0, "u", 100)) // client 0 caches u; entry expires at t=100

	// Within the TTL: a remote hit.
	out := s.Access(req(50, 1, "u", 100))
	if out.Class != HitRemoteBrowser {
		t.Fatalf("within TTL: %v", out.Class)
	}
	// Drop client 1's fresh copy so the next lookup must use client 0's
	// (now-expired) entry.
	s.Browser(1).Remove(did("u"))
	s.Index().Remove(1, did("u"))

	out = s.Access(req(150, 1, "u", 100))
	if out.Class != Miss {
		t.Fatalf("expired entry still served: %v", out.Class)
	}
	if out.FalseIndexHits != 0 {
		t.Fatalf("expired entry should be skipped without contact, got %d false hits", out.FalseIndexHits)
	}
}

func TestDocTTLValidation(t *testing.T) {
	c := cfg(BrowsersAware, 2, 100, 100)
	c.DocTTLSec = -1
	if _, err := New(c); err == nil {
		t.Fatal("negative TTL accepted")
	}
}

func TestDocTTLZeroMeansImmortal(t *testing.T) {
	c := cfg(BrowsersAware, 2, 50, 1000)
	s := mustNew(t, c)
	s.Access(req(0, 0, "u", 100))
	out := s.Access(req(1e9, 1, "u", 100))
	if out.Class != HitRemoteBrowser {
		t.Fatalf("TTL disabled but entry expired: %v", out.Class)
	}
}
