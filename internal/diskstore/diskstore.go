// Package diskstore is the proxy's crash-safe on-disk document tier: a
// log-structured store of document bodies in segmented append-only data
// files, indexed by an append-only journal of CRC-framed metadata records.
//
// Layout inside the data directory:
//
//	seg-00000001.dat   append-only body records: [magic][len][crc32][body]
//	seg-00000002.dat   ...
//	journal.wal        append-only index records (see journal.go)
//
// The design follows the write-ahead-log discipline of log-structured
// caches: a Put appends the body to the active segment, then appends a put
// record (key, segment, offset, length, meta) to the journal. Nothing is
// ever updated in place, so a crash at any byte boundary leaves at worst a
// torn tail, which replay detects by CRC and truncates. Deletes and
// recency touches are journal records too; segment space is reclaimed when
// a whole segment holds no live bodies (log-structured reclamation) and the
// journal itself is rewritten compactly once dead records dominate it.
//
// Durability is tunable (Config.Fsync): every Put, on a background
// interval, or never (the OS page cache decides). Replay after a crash
// recovers exactly the records that reached the disk; the store is
// consistent at every prefix of the journal, so any fsync policy yields a
// usable (if slightly stale) store.
//
// The store is safe for concurrent use. Body reads go through
// internal/bufpool tiers where the caller streams rather than retains.
package diskstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FsyncPolicy selects when the store forces its writes to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval flushes and syncs on a background interval (default).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs the segment and journal after every Put.
	FsyncAlways
	// FsyncNever never calls fsync; the OS page cache decides. Replay
	// still recovers whatever reached the disk.
	FsyncNever
)

// String names the policy (flag values for -fsync).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy converts a -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("diskstore: unknown fsync policy %q (want interval, always, or never)", s)
}

// Meta is the document metadata persisted alongside each body — everything
// the proxy needs to re-seat a cache entry without refetching the document.
type Meta struct {
	Version   int64
	Size      int64
	Digest    []byte // MD5
	Watermark []byte // RSA signature over Digest
}

// Entry is one live document reported by replay, in journal (roughly
// recency) order.
type Entry struct {
	Key   string
	Meta  Meta
	Stamp int64 // unix nanos of the last journaled touch/put
}

// Config parameterizes Open.
type Config struct {
	// MaxBytes bounds the live bytes held on disk; the retention sweep
	// evicts least-recently-touched documents beyond it. <=0 means 1 GiB.
	MaxBytes int64
	// Retention drops documents not touched for this long, regardless of
	// space (0 disables age-based retention).
	Retention time.Duration
	// Fsync selects the durability policy.
	Fsync FsyncPolicy
	// FsyncEvery is the background flush interval under FsyncInterval
	// (<=0: 100ms).
	FsyncEvery time.Duration
	// SegmentMaxBytes rotates the active segment past this size
	// (<=0: 64 MiB).
	SegmentMaxBytes int64
	// SweepEvery is the retention sweep interval (<=0: 2s).
	SweepEvery time.Duration
	// TouchEvery throttles journaled recency touches per key (<=0: 5s).
	// In-memory recency is always exact; the journal records at most one
	// touch per key per interval, bounding journal growth under read-heavy
	// load at the cost of that much recency precision across a crash.
	TouchEvery time.Duration
	// OnEvict, when non-nil, observes every document the retention sweep
	// drops (not explicit Deletes), so the owning cache can drop its
	// accounting entry. Called without internal locks held.
	OnEvict func(key string)
	// Metrics, when non-nil, receives store event callbacks.
	Metrics MetricsHooks
}

// MetricsHooks lets the owner count store events on its own registry
// without this package importing it.
type MetricsHooks struct {
	Write         func() // one body spilled
	Read          func() // one body read back
	CorruptRecord func() // one journal or body record dropped for CRC/framing
	Eviction      func() // one document evicted by retention
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Docs          int
	LiveBytes     int64 // body bytes of live documents
	SegmentBytes  int64 // total bytes across segment files (live + dead)
	Segments      int
	JournalBytes  int64
	Restored      int   // documents recovered by the last Open
	CorruptTail   bool  // last Open truncated a torn journal tail
	CorruptDrops  int64 // records dropped for CRC/framing damage (lifetime)
	Evictions     int64 // retention evictions (lifetime)
	ReplayElapsed time.Duration
}

// entry is the in-memory index record for one live key.
type entry struct {
	seg     uint32
	off     int64
	length  int64
	meta    Meta
	stamp   int64 // unix nanos, exact
	touched int64 // unix nanos of the last journaled touch
}

// Store is a crash-safe key → body store. See the package comment.
type Store struct {
	dir string
	cfg Config

	mu      sync.Mutex
	index   map[string]*entry
	live    int64            // live body bytes
	segLive map[uint32]int64 // live body bytes per segment
	segs    map[uint32]*segment
	active  *segment
	nextSeg uint32
	journal *journal
	state   []byte // last SaveState blob (replayed or written)

	corruptDrops int64
	evictions    int64
	restored     int
	corruptTail  bool
	replayDur    time.Duration

	stop     chan struct{}
	stopOnce sync.Once
	bg       sync.WaitGroup
	closed   bool
}

// ErrCorrupt reports a body whose stored CRC no longer matches — the entry
// is dropped and the caller should treat the key as a miss.
var ErrCorrupt = errors.New("diskstore: corrupt record")

// ErrNotFound reports a key with no live entry.
var ErrNotFound = errors.New("diskstore: not found")

// Open opens (creating if needed) the store in dir and replays the journal.
func Open(dir string, cfg Config) (*Store, error) {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 30
	}
	if cfg.SegmentMaxBytes <= 0 {
		cfg.SegmentMaxBytes = 64 << 20
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = 100 * time.Millisecond
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = 2 * time.Second
	}
	if cfg.TouchEvery <= 0 {
		cfg.TouchEvery = 5 * time.Second
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	s := &Store{
		dir:     dir,
		cfg:     cfg,
		index:   make(map[string]*entry),
		segLive: make(map[uint32]int64),
		segs:    make(map[uint32]*segment),
		stop:    make(chan struct{}),
	}
	start := time.Now()
	if err := s.loadSegments(); err != nil {
		return nil, err
	}
	if err := s.replayJournal(); err != nil {
		return nil, err
	}
	s.replayDur = time.Since(start)
	s.restored = len(s.index)
	// A fresh active segment per process: never append to a tail that may
	// be torn from the previous crash.
	if err := s.rotateSegment(); err != nil {
		s.closeFiles()
		return nil, err
	}
	s.reclaimDeadSegments()
	s.bg.Add(1)
	go s.background()
	return s, nil
}

// loadSegments discovers existing segment files. Zero-length segments (a
// crash between create and first append) are deleted and ignored.
func (s *Store) loadSegments() error {
	names, err := filepath.Glob(filepath.Join(s.dir, segGlob))
	if err != nil {
		return err
	}
	sort.Strings(names)
	for _, name := range names {
		id, ok := segIDFromName(filepath.Base(name))
		if !ok {
			continue
		}
		fi, err := os.Stat(name)
		if err != nil {
			continue
		}
		if fi.Size() == 0 {
			os.Remove(name)
			continue
		}
		seg, err := openSegment(name, id)
		if err != nil {
			// Unreadable segment: its entries will be dropped during
			// replay validation.
			continue
		}
		s.segs[id] = seg
		if id >= s.nextSeg {
			s.nextSeg = id + 1
		}
	}
	return nil
}

// replayJournal rebuilds the index from the journal, tolerating a torn
// tail, and validates every surviving entry against the segment files.
func (s *Store) replayJournal() error {
	j, res, err := openJournal(filepath.Join(s.dir, journalName))
	if err != nil {
		return err
	}
	s.journal = j
	s.corruptTail = res.truncatedTail
	s.corruptDrops += res.corruptRecords
	if res.corruptRecords > 0 && s.cfg.Metrics.CorruptRecord != nil {
		for i := int64(0); i < res.corruptRecords; i++ {
			s.cfg.Metrics.CorruptRecord()
		}
	}
	for _, rec := range res.records {
		switch rec.kind {
		case jPut:
			s.applyPut(rec)
		case jDel:
			s.applyDel(rec.key)
		case jTouch:
			if e := s.index[rec.key]; e != nil {
				e.stamp = rec.stamp
				e.touched = rec.stamp
			}
		case jState:
			s.state = rec.blob
		}
	}
	// Validate entries against the segment files that actually survived:
	// an entry pointing past a (torn) segment end, or into a missing
	// segment, is dropped rather than trusted.
	for key, e := range s.index {
		seg := s.segs[e.seg]
		if seg == nil || e.off+recordOverhead+e.length > seg.size {
			s.dropEntry(key, e)
			s.corruptDrops++
			if s.cfg.Metrics.CorruptRecord != nil {
				s.cfg.Metrics.CorruptRecord()
			}
		}
	}
	// Rewrite the journal compactly when replay found damage or when dead
	// records dominate (more than ~8× the live set).
	if s.corruptTail || res.corruptRecords > 0 || j.size > 1<<20 && j.size > 8*s.liveJournalEstimate() {
		if err := s.rewriteJournalLocked(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) applyPut(rec record) {
	if old := s.index[rec.key]; old != nil {
		s.live -= old.length
		s.segLive[old.seg] -= old.length
	}
	e := &entry{
		seg:    rec.seg,
		off:    rec.off,
		length: rec.length,
		meta:   Meta{Version: rec.version, Size: rec.length, Digest: rec.digest, Watermark: rec.watermark},
		stamp:  rec.stamp,
	}
	e.touched = rec.stamp
	s.index[rec.key] = e
	s.live += e.length
	s.segLive[e.seg] += e.length
}

func (s *Store) applyDel(key string) {
	if e := s.index[key]; e != nil {
		s.dropEntry(key, e)
	}
}

// dropEntry removes key's index entry and live accounting (caller holds mu
// or is in single-threaded replay).
func (s *Store) dropEntry(key string, e *entry) {
	s.live -= e.length
	s.segLive[e.seg] -= e.length
	delete(s.index, key)
}

// liveJournalEstimate approximates the journal bytes a compact rewrite of
// the live set would need.
func (s *Store) liveJournalEstimate() int64 {
	var n int64
	for key, e := range s.index {
		n += int64(putRecordSize(key, e.meta))
	}
	n += int64(len(s.state)) + recHeaderSize
	return n
}

// Put spills a document body to disk: body bytes to the active segment,
// then a put record to the journal. The caller keeps ownership of body.
func (s *Store) Put(key string, body []byte, meta Meta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("diskstore: closed")
	}
	if s.active.size+recordOverhead+int64(len(body)) > s.cfg.SegmentMaxBytes && s.active.size > 0 {
		if err := s.rotateSegment(); err != nil {
			return err
		}
	}
	off, err := s.active.append(body)
	if err != nil {
		return err
	}
	now := time.Now().UnixNano()
	meta.Size = int64(len(body))
	rec := record{
		kind: jPut, key: key,
		seg: s.active.id, off: off, length: int64(len(body)),
		version: meta.Version, stamp: now,
		digest: meta.Digest, watermark: meta.Watermark,
	}
	if err := s.journal.append(rec); err != nil {
		return err
	}
	s.applyPut(rec)
	if s.cfg.Fsync == FsyncAlways {
		s.active.sync()
		s.journal.sync()
	}
	if s.cfg.Metrics.Write != nil {
		s.cfg.Metrics.Write()
	}
	return nil
}

// Get reads a body back, verifying its CRC, and journals a (throttled)
// recency touch. A corrupt body drops the entry and reports ErrCorrupt.
func (s *Store) Get(key string) ([]byte, Meta, error) {
	s.mu.Lock()
	e := s.index[key]
	if e == nil {
		s.mu.Unlock()
		return nil, Meta{}, ErrNotFound
	}
	seg := s.segOf(e)
	loc := *e
	s.touchLocked(key, e)
	s.mu.Unlock()
	if seg == nil {
		return nil, Meta{}, ErrNotFound
	}
	body, err := seg.read(loc.off, loc.length)
	if err != nil {
		s.discardCorrupt(key)
		return nil, Meta{}, ErrCorrupt
	}
	if s.cfg.Metrics.Read != nil {
		s.cfg.Metrics.Read()
	}
	return body, loc.meta, nil
}

// ReadTo streams a body straight into w through a pooled buffer (no
// per-read body allocation), for serve paths that do not retain the bytes.
// It reports the body length written.
func (s *Store) ReadTo(w io.Writer, key string) (int64, Meta, error) {
	s.mu.Lock()
	e := s.index[key]
	if e == nil {
		s.mu.Unlock()
		return 0, Meta{}, ErrNotFound
	}
	seg := s.segOf(e)
	loc := *e
	s.touchLocked(key, e)
	s.mu.Unlock()
	if seg == nil {
		return 0, Meta{}, ErrNotFound
	}
	n, err := seg.readTo(w, loc.off, loc.length)
	if err != nil {
		if errors.Is(err, errBadRecord) {
			s.discardCorrupt(key)
			return n, Meta{}, ErrCorrupt
		}
		return n, Meta{}, err
	}
	if s.cfg.Metrics.Read != nil {
		s.cfg.Metrics.Read()
	}
	return n, loc.meta, nil
}

// Meta reports a live entry's metadata without touching recency.
func (s *Store) Meta(key string) (Meta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.index[key]; e != nil {
		return e.meta, true
	}
	return Meta{}, false
}

// Has reports whether key has a live entry.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.index[key] != nil
}

// Delete drops key's entry (journaled; space reclaimed when its segment
// dies). Missing keys are a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.index[key] == nil {
		return nil
	}
	if err := s.journal.append(record{kind: jDel, key: key}); err != nil {
		return err
	}
	s.applyDel(key)
	return nil
}

// touchLocked refreshes key's in-memory recency, journaling the touch at
// most once per TouchEvery.
func (s *Store) touchLocked(key string, e *entry) {
	now := time.Now().UnixNano()
	e.stamp = now
	if now-e.touched < int64(s.cfg.TouchEvery) {
		return
	}
	e.touched = now
	s.journal.append(record{kind: jTouch, key: key, stamp: now})
}

// discardCorrupt drops a key whose body failed its CRC.
func (s *Store) discardCorrupt(key string) {
	s.mu.Lock()
	if e := s.index[key]; e != nil {
		s.journal.append(record{kind: jDel, key: key})
		s.dropEntry(key, e)
		s.corruptDrops++
	}
	s.mu.Unlock()
	if s.cfg.Metrics.CorruptRecord != nil {
		s.cfg.Metrics.CorruptRecord()
	}
}

// segOf resolves an entry's segment handle (active or archived).
func (s *Store) segOf(e *entry) *segment {
	if s.active != nil && e.seg == s.active.id {
		return s.active
	}
	return s.segs[e.seg]
}

// rotateSegment opens a fresh active segment (caller holds mu).
func (s *Store) rotateSegment() error {
	id := s.nextSeg
	s.nextSeg++
	seg, err := createSegment(filepath.Join(s.dir, segName(id)), id)
	if err != nil {
		return err
	}
	if s.active != nil {
		s.segs[s.active.id] = s.active
	}
	s.active = seg
	s.segs[id] = seg
	return nil
}

// SaveState journals an opaque owner-state blob (counters, client table,
// generations) and, under any fsync policy except never, forces it to disk.
// The last blob that reached the disk is returned by State after replay.
func (s *Store) SaveState(blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("diskstore: closed")
	}
	b := make([]byte, len(blob))
	copy(b, blob)
	s.state = b
	if err := s.journal.append(record{kind: jState, blob: b}); err != nil {
		return err
	}
	if s.cfg.Fsync != FsyncNever {
		s.journal.flush()
		s.journal.sync()
	}
	return nil
}

// State returns the most recent state blob recovered by replay or written
// by SaveState (nil when none).
func (s *Store) State() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Entries lists the live documents ordered by ascending recency stamp (the
// first entry is the coldest), for re-seating an LRU skeleton on restart.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	out := make([]Entry, 0, len(s.index))
	for key, e := range s.index {
		out = append(out, Entry{Key: key, Meta: e.meta, Stamp: e.stamp})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Stamp < out[j].Stamp })
	return out
}

// Len reports the live document count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Used reports the live body bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live
}

// StatsSnapshot summarizes the store.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Docs:          len(s.index),
		LiveBytes:     s.live,
		Segments:      len(s.segs),
		JournalBytes:  s.journal.size,
		Restored:      s.restored,
		CorruptTail:   s.corruptTail,
		CorruptDrops:  s.corruptDrops,
		Evictions:     s.evictions,
		ReplayElapsed: s.replayDur,
	}
	for _, seg := range s.segs {
		st.SegmentBytes += seg.size
	}
	return st
}

// background runs the interval-fsync flusher and the retention sweep.
func (s *Store) background() {
	defer s.bg.Done()
	flush := time.NewTicker(s.cfg.FsyncEvery)
	sweep := time.NewTicker(s.cfg.SweepEvery)
	defer flush.Stop()
	defer sweep.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-flush.C:
			s.mu.Lock()
			if !s.closed {
				s.journal.flush()
				if s.cfg.Fsync == FsyncInterval {
					s.journal.sync()
					if s.active != nil {
						s.active.sync()
					}
				}
			}
			s.mu.Unlock()
		case <-sweep.C:
			s.sweep()
		}
	}
}

// Sweep runs one retention pass synchronously (exposed for tests; the
// background goroutine calls it on SweepEvery).
func (s *Store) Sweep() { s.sweep() }

// sweep enforces MaxBytes (LRU by journaled-or-live stamp) and Retention
// (age), reclaims dead segments, and compacts a bloated journal.
func (s *Store) sweep() {
	type victim struct {
		key   string
		stamp int64
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	var evicted []string
	if s.live > s.cfg.MaxBytes || s.cfg.Retention > 0 {
		all := make([]victim, 0, len(s.index))
		cutoff := int64(0)
		if s.cfg.Retention > 0 {
			cutoff = time.Now().Add(-s.cfg.Retention).UnixNano()
		}
		for key, e := range s.index {
			all = append(all, victim{key, e.stamp})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].stamp < all[j].stamp })
		for _, v := range all {
			e := s.index[v.key]
			if e == nil {
				continue
			}
			// all is sorted by ascending stamp, so once neither pressure
			// applies, no later entry can be a victim either.
			if s.live <= s.cfg.MaxBytes && (cutoff == 0 || v.stamp >= cutoff) {
				break
			}
			s.journal.append(record{kind: jDel, key: v.key})
			s.dropEntry(v.key, e)
			s.evictions++
			evicted = append(evicted, v.key)
		}
	}
	s.reclaimDeadSegments()
	if s.journal.size > 1<<20 && s.journal.size > 8*s.liveJournalEstimate() {
		s.rewriteJournalLocked()
	}
	s.mu.Unlock()
	for _, key := range evicted {
		if s.cfg.Metrics.Eviction != nil {
			s.cfg.Metrics.Eviction()
		}
		if s.cfg.OnEvict != nil {
			s.cfg.OnEvict(key)
		}
	}
}

// reclaimDeadSegments unlinks archived segments with no live bytes (caller
// holds mu).
func (s *Store) reclaimDeadSegments() {
	for id, seg := range s.segs {
		if s.active != nil && id == s.active.id {
			continue
		}
		if s.segLive[id] > 0 {
			continue
		}
		seg.close()
		os.Remove(seg.path)
		delete(s.segs, id)
		delete(s.segLive, id)
	}
}

// rewriteJournalLocked replaces the journal with a compact one holding one
// put record per live entry plus the latest state blob (caller holds mu).
func (s *Store) rewriteJournalLocked() error {
	path := filepath.Join(s.dir, journalName)
	nj, err := rewriteJournal(path, func(emit func(record) error) error {
		for key, e := range s.index {
			rec := record{
				kind: jPut, key: key,
				seg: e.seg, off: e.off, length: e.length,
				version: e.meta.Version, stamp: e.stamp,
				digest: e.meta.Digest, watermark: e.meta.Watermark,
			}
			if err := emit(rec); err != nil {
				return err
			}
		}
		if s.state != nil {
			return emit(record{kind: jState, blob: s.state})
		}
		return nil
	})
	if err != nil {
		return err
	}
	s.journal.close()
	s.journal = nj
	return nil
}

// Close flushes and syncs everything and stops the background goroutine —
// the graceful-shutdown path.
func (s *Store) Close() error {
	s.stopOnce.Do(func() { close(s.stop) })
	s.bg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if e := s.journal.flush(); e != nil {
		err = e
	}
	s.journal.sync()
	if s.active != nil {
		s.active.sync()
	}
	s.closeFiles()
	return err
}

// Abandon drops the store without flushing buffered writes — the crash
// path, used by tests and the kill/restart harness to model SIGKILL as
// faithfully as an in-process store can (whatever already reached the OS
// survives; buffered tails are torn).
func (s *Store) Abandon() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.bg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.closeFiles()
}

// closeFiles closes every file handle (caller holds mu or is in Open's
// error path).
func (s *Store) closeFiles() {
	if s.journal != nil {
		s.journal.close()
	}
	for _, seg := range s.segs {
		seg.close()
	}
	s.active = nil
}
