package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"baps/internal/bufpool"
)

// Segment data files hold nothing but body records, appended back to back:
//
//	[u32 magic][u32 bodyLen][u32 crc32(body)][body bytes]
//
// Keys and metadata live in the journal; a segment is pure payload, so
// reclaiming one is a single unlink. Bodies are verified against their CRC
// on every read — silent media corruption surfaces as ErrCorrupt, never as
// a wrong document.
//
// Appends write straight through to the file (a record's region is
// immutable once journaled), so concurrent ReadAt-based reads never need a
// lock against the writer; durability beyond the OS page cache is the
// store's fsync policy.
const (
	segMagic       = 0x42415053 // "BAPS"
	recordOverhead = 12         // magic + len + crc
	segGlob        = "seg-*.dat"
)

// errBadRecord reports a body record whose framing or CRC is damaged.
var errBadRecord = errors.New("diskstore: bad segment record")

func segName(id uint32) string { return fmt.Sprintf("seg-%08d.dat", id) }

func segIDFromName(name string) (uint32, bool) {
	var id uint32
	if _, err := fmt.Sscanf(name, "seg-%08d.dat", &id); err != nil {
		return 0, false
	}
	return id, true
}

// segment is one data file. size is owned by the store's mutex (appends
// happen under it); reads are positioned and lock-free.
type segment struct {
	id   uint32
	path string
	f    *os.File
	size int64
}

func createSegment(path string, id uint32) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &segment{id: id, path: path, f: f}, nil
}

func openSegment(path string, id uint32) (*segment, error) {
	f, err := os.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &segment{id: id, path: path, f: f, size: fi.Size()}, nil
}

// append writes one body record, returning the record's offset.
func (s *segment) append(body []byte) (int64, error) {
	off := s.size
	var hdr [recordOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(body))
	if _, err := s.f.WriteAt(hdr[:], off); err != nil {
		return 0, err
	}
	if _, err := s.f.WriteAt(body, off+recordOverhead); err != nil {
		return 0, err
	}
	s.size += recordOverhead + int64(len(body))
	return off, nil
}

func (s *segment) sync() { s.f.Sync() }

// readHeader validates the record framing at off against the journal's
// length claim.
func (s *segment) readHeader(off, length int64) (crc uint32, err error) {
	var hdr [recordOverhead]byte
	if _, err := s.f.ReadAt(hdr[:], off); err != nil {
		return 0, errBadRecord
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segMagic ||
		int64(binary.LittleEndian.Uint32(hdr[4:])) != length {
		return 0, errBadRecord
	}
	return binary.LittleEndian.Uint32(hdr[8:]), nil
}

// read returns the verified body at off (a fresh buffer the caller owns —
// this is the promote-to-memory path, where the bytes live on in the hot
// tier).
func (s *segment) read(off, length int64) ([]byte, error) {
	want, err := s.readHeader(off, length)
	if err != nil {
		return nil, err
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, off+recordOverhead, length), body); err != nil {
		return nil, errBadRecord
	}
	if crc32.ChecksumIEEE(body) != want {
		return nil, errBadRecord
	}
	return body, nil
}

// readTo streams the verified body at off into w through a pooled
// size-classed buffer — the serve-without-promote path allocates nothing
// per read. The CRC is computed as the bytes stream; a mismatch surfaces
// after the copy (the receiving end of an HTTP response detects the abort
// mid-body), and the entry is dropped either way.
func (s *segment) readTo(w io.Writer, off, length int64) (int64, error) {
	want, err := s.readHeader(off, length)
	if err != nil {
		return 0, err
	}
	crc := crc32.NewIEEE()
	src := io.NewSectionReader(s.f, off+recordOverhead, length)
	n, err := bufpool.CopySized(io.MultiWriter(w, crc), src, length)
	if err != nil {
		return n, err
	}
	if n != length || crc.Sum32() != want {
		return n, errBadRecord
	}
	return n, nil
}

func (s *segment) close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}
