package diskstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testConfig() Config {
	return Config{
		MaxBytes:   1 << 20,
		Fsync:      FsyncNever,
		FsyncEvery: time.Hour, // background flush quiesced; tests drive explicitly
		SweepEvery: time.Hour,
		TouchEvery: time.Nanosecond,
	}
}

func mustOpen(t *testing.T, dir string, cfg Config) *Store {
	t.Helper()
	s, err := Open(dir, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func body(i int) []byte {
	return bytes.Repeat([]byte{byte(i)}, 100+i%50)
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testConfig())
	defer s.Close()

	meta := Meta{Version: 7, Digest: []byte("0123456789abcdef"), Watermark: []byte("sig")}
	if err := s.Put("k1", body(1), meta); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, m, err := s.Get("k1")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got, body(1)) {
		t.Fatalf("body mismatch")
	}
	if m.Version != 7 || !bytes.Equal(m.Digest, meta.Digest) || !bytes.Equal(m.Watermark, meta.Watermark) {
		t.Fatalf("meta mismatch: %+v", m)
	}
	if m.Size != int64(len(body(1))) {
		t.Fatalf("size mismatch: %d", m.Size)
	}
	if _, _, err := s.Get("missing"); err != ErrNotFound {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestReadToStreams(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testConfig())
	defer s.Close()
	if err := s.Put("k", body(3), Meta{Version: 1}); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	n, m, err := s.ReadTo(&sink, "k")
	if err != nil {
		t.Fatalf("ReadTo: %v", err)
	}
	if n != int64(len(body(3))) || !bytes.Equal(sink.Bytes(), body(3)) || m.Version != 1 {
		t.Fatalf("stream mismatch: n=%d", n)
	}
}

func TestReplayRestoresAfterClose(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testConfig())
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), body(i), Meta{Version: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k3"); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveState([]byte(`{"hello":"world"}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir, testConfig())
	defer s2.Close()
	if got := s2.Len(); got != 19 {
		t.Fatalf("restored %d docs, want 19", got)
	}
	if string(s2.State()) != `{"hello":"world"}` {
		t.Fatalf("state blob lost: %q", s2.State())
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		got, m, err := s2.Get(key)
		if i == 3 {
			if err != ErrNotFound {
				t.Fatalf("deleted key came back: %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if !bytes.Equal(got, body(i)) || m.Version != int64(i) {
			t.Fatalf("replayed %s mismatch", key)
		}
	}
}

func TestReplayAfterAbandonKeepsReachedRecords(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s := mustOpen(t, dir, cfg)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), body(i), Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	// Force the journal to the OS, then write more that stays buffered.
	s.mu.Lock()
	s.journal.flush()
	s.mu.Unlock()
	for i := 10; i < 15; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), body(i), Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	s.Abandon() // crash: buffered journal tail is torn away

	s2 := mustOpen(t, dir, cfg)
	defer s2.Close()
	if got := s2.Len(); got < 10 || got >= 15 {
		t.Fatalf("restored %d docs, want [10,15)", got)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := s2.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("flushed record k%d lost: %v", i, err)
		}
	}
}

func TestRetentionSweepEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.MaxBytes = 600 // a few ~100-byte bodies
	var evicted []string
	cfg.OnEvict = func(key string) { evicted = append(evicted, key) }
	s := mustOpen(t, dir, cfg)
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), body(i), Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch an old key so it survives over fresher-but-untouched ones.
	if _, _, err := s.Get("k0"); err != nil {
		t.Fatal(err)
	}
	s.Sweep()
	if s.Used() > 600 {
		t.Fatalf("sweep left %d bytes, budget 600", s.Used())
	}
	if !s.Has("k0") {
		t.Fatalf("recently touched key evicted")
	}
	if len(evicted) == 0 {
		t.Fatalf("no evictions observed")
	}
	for _, key := range evicted {
		if s.Has(key) {
			t.Fatalf("evicted key %s still live", key)
		}
	}
}

func TestSegmentReclaim(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.SegmentMaxBytes = 512 // force frequent rotation
	s := mustOpen(t, dir, cfg)
	defer s.Close()
	for i := 0; i < 12; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), body(i), Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		if err := s.Delete(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Sweep()
	segs, _ := filepath.Glob(filepath.Join(dir, segGlob))
	if len(segs) > 1 { // only the active segment may remain
		t.Fatalf("dead segments not reclaimed: %v", segs)
	}
	if st := s.StatsSnapshot(); st.Docs != 0 || st.LiveBytes != 0 {
		t.Fatalf("stats after full delete: %+v", st)
	}
}

func TestEntriesOrderedByRecency(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testConfig())
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), body(i), Meta{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Get("k1"); err != nil { // k1 becomes hottest
		t.Fatal(err)
	}
	es := s.Entries()
	if len(es) != 5 {
		t.Fatalf("Entries len %d", len(es))
	}
	if es[len(es)-1].Key != "k1" {
		t.Fatalf("hottest entry %s, want k1", es[len(es)-1].Key)
	}
	for i := 1; i < len(es); i++ {
		if es[i].Stamp < es[i-1].Stamp {
			t.Fatalf("entries not ascending by stamp")
		}
	}
}

func TestJournalCompactionPreservesStore(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	s := mustOpen(t, dir, cfg)
	// Churn one key to bloat the journal with dead records, then compact.
	for i := 0; i < 2000; i++ {
		if err := s.Put("hot", body(i%50), Meta{Version: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("cold", body(7), Meta{Version: 42}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	before := s.journal.size
	err := s.rewriteJournalLocked()
	after := s.journal.size
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if after >= before {
		t.Fatalf("journal did not shrink: %d -> %d", before, after)
	}
	s.Close()

	s2 := mustOpen(t, dir, cfg)
	defer s2.Close()
	if _, m, err := s2.Get("cold"); err != nil || m.Version != 42 {
		t.Fatalf("cold lost after compaction: %v", err)
	}
	if _, m, err := s2.Get("hot"); err != nil || m.Version != 1999 {
		t.Fatalf("hot lost after compaction: %v %+v", err, m)
	}
}

func TestZeroLengthSegmentIgnored(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testConfig())
	s.Put("k", body(1), Meta{})
	s.Close()
	// A crash can leave a freshly created, never-written segment behind.
	if err := os.WriteFile(filepath.Join(dir, segName(9999)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, testConfig())
	defer s2.Close()
	if _, _, err := s2.Get("k"); err != nil {
		t.Fatalf("store broken by zero-length segment: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(9999))); !os.IsNotExist(err) {
		t.Fatalf("zero-length segment not cleaned up")
	}
}

// TestFlippedCRCMidFile flips one byte in the middle of the journal: replay
// must stop at the damage (the WAL contract — everything before the first
// bad byte survives as a prefix), count the corruption, and leave a store
// that keeps working and survives another reopen.
func TestFlippedCRCMidFile(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testConfig())
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), body(i), Meta{Version: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	jp := filepath.Join(dir, journalName)
	raw, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(jp, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var corrupt int
	cfg := testConfig()
	cfg.Metrics.CorruptRecord = func() { corrupt++ }
	s2 := mustOpen(t, dir, cfg)
	st := s2.StatsSnapshot()
	if !st.CorruptTail {
		t.Fatal("flipped CRC not reported as a torn tail")
	}
	if st.Restored >= 10 || corrupt == 0 {
		t.Fatalf("restored=%d corrupt=%d; want a strict prefix and a corruption count", st.Restored, corrupt)
	}
	// The surviving set is the write-order prefix: k(i) present => k(j)
	// present for all j < i, with intact bodies.
	present := make(map[string]bool)
	for _, e := range s2.Entries() {
		present[e.Key] = true
	}
	seenGap := false
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("k%02d", i)
		if !present[k] {
			seenGap = true
			continue
		}
		if seenGap {
			t.Fatalf("%s survived past the damage point", k)
		}
		got, m, err := s2.Get(k)
		if err != nil || !bytes.Equal(got, body(i)) || m.Version != int64(i) {
			t.Fatalf("surviving %s unreadable: %v", k, err)
		}
	}
	// The truncated journal accepts new appends cleanly.
	if err := s2.Put("after", body(42), Meta{}); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, testConfig())
	defer s3.Close()
	if _, _, err := s3.Get("after"); err != nil {
		t.Fatalf("post-truncation append lost: %v", err)
	}
}

// TestDuplicateRecordReplay appends a byte-identical copy of a put record:
// replay is idempotent (last write wins over the same body bytes), so the
// duplicate must not double-count live bytes or disturb reads.
func TestDuplicateRecordReplay(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testConfig())
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), body(i), Meta{Version: int64(i)})
	}
	liveBefore := s.StatsSnapshot().LiveBytes
	s.Close()

	jp := filepath.Join(dir, journalName)
	j, res, err := openJournal(jp)
	if err != nil {
		t.Fatal(err)
	}
	var lastPut *record
	for i := range res.records {
		if res.records[i].kind == jPut {
			lastPut = &res.records[i]
		}
	}
	if lastPut == nil {
		t.Fatal("no put record in journal")
	}
	if err := j.append(*lastPut); err != nil {
		t.Fatal(err)
	}
	if err := j.flush(); err != nil {
		t.Fatal(err)
	}
	j.close()

	s2 := mustOpen(t, dir, testConfig())
	defer s2.Close()
	st := s2.StatsSnapshot()
	if st.Docs != 5 {
		t.Fatalf("docs=%d after duplicate record, want 5", st.Docs)
	}
	if st.LiveBytes != liveBefore {
		t.Fatalf("live bytes %d after duplicate record, want %d", st.LiveBytes, liveBefore)
	}
	for i := 0; i < 5; i++ {
		got, _, err := s2.Get(fmt.Sprintf("k%d", i))
		if err != nil || !bytes.Equal(got, body(i)) {
			t.Fatalf("k%d unreadable after duplicate record: %v", i, err)
		}
	}
}

// TestTruncationProperty is the torn-tail property test: for any cut point
// in the journal, Open must succeed, and every restored document must read
// back a body consistent with its journaled meta (body(i) <-> Version i).
func TestTruncationProperty(t *testing.T) {
	src := t.TempDir()
	s := mustOpen(t, src, testConfig())
	const n = 30
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i%10) // overwrite churn: 3 versions per key
		if err := s.Put(key, body(i), Meta{Version: int64(i)}); err != nil {
			t.Fatal(err)
		}
		if i%7 == 3 {
			s.Delete(fmt.Sprintf("k%d", (i+5)%10))
		}
	}
	s.SaveState([]byte(`{"probe":true}`))
	s.Close()

	raw, err := os.ReadFile(filepath.Join(src, journalName))
	if err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(src, segGlob))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		cut := rng.Intn(len(raw) + 1)
		dir := t.TempDir()
		for _, sp := range segs {
			b, err := os.ReadFile(sp)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(sp)), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, journalName), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir, testConfig())
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		for _, e := range s2.Entries() {
			got, m, err := s2.Get(e.Key)
			if err != nil {
				t.Fatalf("cut=%d: restored %s unreadable: %v", cut, e.Key, err)
			}
			if int(m.Version) >= n || !bytes.Equal(got, body(int(m.Version))) {
				t.Fatalf("cut=%d: %s body inconsistent with version %d", cut, e.Key, m.Version)
			}
		}
		if blob := s2.State(); blob != nil && string(blob) != `{"probe":true}` {
			t.Fatalf("cut=%d: state blob corrupted: %q", cut, blob)
		}
		s2.Close()
	}
}
