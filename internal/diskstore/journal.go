package diskstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
)

// The index journal is a flat append-only file of CRC-framed records:
//
//	[u32 payloadLen][u8 kind][u32 crc32(kind||payload)][payload]
//
// Record kinds:
//
//	jPut    key gained (or replaced) a body at (segment, offset, length),
//	        with document meta (version, stamp, digest, watermark)
//	jDel    key's entry was dropped (delete, eviction, or corruption)
//	jTouch  key was read; stamp refreshes its recency
//	jState  opaque owner-state blob (stats counters, client table,
//	        generations) — the latest valid one wins
//
// Replay applies records in order; the store is consistent at every record
// boundary, so a torn tail (crash mid-append) is detected by length/CRC
// and truncated rather than trusted. A CRC mismatch mid-file cannot be
// skipped safely (the framing is length-prefixed, so one bad length loses
// the reader), so replay stops there too — everything before the first
// damaged byte survives, which is the WAL contract.
const (
	jPut   = 1
	jDel   = 2
	jTouch = 3
	jState = 4

	recHeaderSize = 9 // len + kind + crc

	journalName = "journal.wal"

	// maxRecordSize bounds a single journal record; anything claiming to
	// be larger is framing damage, not data.
	maxRecordSize = 64 << 20
)

// record is one decoded journal record (a union over the kinds).
type record struct {
	kind byte
	key  string

	// jPut fields.
	seg       uint32
	off       int64
	length    int64
	version   int64
	digest    []byte
	watermark []byte

	// jPut and jTouch.
	stamp int64

	// jState payload.
	blob []byte
}

// putRecordSize estimates the journal bytes of a put record for key.
func putRecordSize(key string, meta Meta) int {
	return recHeaderSize + 2 + len(key) + 4 + 8 + 8 + 8 + 8 + 2 + len(meta.Digest) + 2 + len(meta.Watermark)
}

// encodePayload renders a record's payload (everything after the header).
func encodePayload(rec record) []byte {
	var b []byte
	putStr := func(s string) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	putBytes := func(p []byte) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(p)))
		b = append(b, p...)
	}
	switch rec.kind {
	case jPut:
		putStr(rec.key)
		b = binary.LittleEndian.AppendUint32(b, rec.seg)
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.off))
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.length))
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.version))
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.stamp))
		putBytes(rec.digest)
		putBytes(rec.watermark)
	case jDel:
		putStr(rec.key)
	case jTouch:
		putStr(rec.key)
		b = binary.LittleEndian.AppendUint64(b, uint64(rec.stamp))
	case jState:
		b = append(b, rec.blob...)
	}
	return b
}

// errShortPayload reports a record whose payload is too small for its kind
// — framing damage caught after the CRC (a corrupted length that still
// checksummed is astronomically unlikely, but decode stays defensive).
var errShortPayload = errors.New("diskstore: short journal payload")

// decodePayload parses a payload back into rec (kind already set).
func decodePayload(kind byte, p []byte) (record, error) {
	rec := record{kind: kind}
	getStr := func() (string, error) {
		if len(p) < 2 {
			return "", errShortPayload
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return "", errShortPayload
		}
		s := string(p[:n])
		p = p[n:]
		return s, nil
	}
	getBytes := func() ([]byte, error) {
		if len(p) < 2 {
			return nil, errShortPayload
		}
		n := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		if len(p) < n {
			return nil, errShortPayload
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]byte, n)
		copy(out, p[:n])
		p = p[n:]
		return out, nil
	}
	getU64 := func() (uint64, error) {
		if len(p) < 8 {
			return 0, errShortPayload
		}
		v := binary.LittleEndian.Uint64(p)
		p = p[8:]
		return v, nil
	}
	var err error
	switch kind {
	case jPut:
		if rec.key, err = getStr(); err != nil {
			return rec, err
		}
		if len(p) < 4 {
			return rec, errShortPayload
		}
		rec.seg = binary.LittleEndian.Uint32(p)
		p = p[4:]
		var v uint64
		if v, err = getU64(); err != nil {
			return rec, err
		}
		rec.off = int64(v)
		if v, err = getU64(); err != nil {
			return rec, err
		}
		rec.length = int64(v)
		if v, err = getU64(); err != nil {
			return rec, err
		}
		rec.version = int64(v)
		if v, err = getU64(); err != nil {
			return rec, err
		}
		rec.stamp = int64(v)
		if rec.digest, err = getBytes(); err != nil {
			return rec, err
		}
		if rec.watermark, err = getBytes(); err != nil {
			return rec, err
		}
	case jDel:
		if rec.key, err = getStr(); err != nil {
			return rec, err
		}
	case jTouch:
		if rec.key, err = getStr(); err != nil {
			return rec, err
		}
		var v uint64
		if v, err = getU64(); err != nil {
			return rec, err
		}
		rec.stamp = int64(v)
	case jState:
		rec.blob = make([]byte, len(p))
		copy(rec.blob, p)
	default:
		return rec, errShortPayload
	}
	return rec, nil
}

// journal is the append handle. Appends are buffered (flushed by the
// store's fsync policy); the file is only ever read at Open.
type journal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	size int64 // logical size including buffered bytes
}

// replayResult is what openJournal recovered.
type replayResult struct {
	records        []record
	truncatedTail  bool
	corruptRecords int64
}

// openJournal reads every valid record, truncates any torn tail, and
// returns an append handle positioned after the last good record.
func openJournal(path string) (*journal, replayResult, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, replayResult{}, err
	}
	var res replayResult
	r := bufio.NewReaderSize(f, 1<<20)
	var good int64 // offset after the last fully valid record
	for {
		var hdr [recHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err != io.EOF {
				res.truncatedTail = true
			}
			break
		}
		plen := int64(binary.LittleEndian.Uint32(hdr[0:]))
		kind := hdr[4]
		want := binary.LittleEndian.Uint32(hdr[5:])
		if plen > maxRecordSize || kind < jPut || kind > jState {
			res.truncatedTail = true
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			res.truncatedTail = true
			break
		}
		crc := crc32.NewIEEE()
		crc.Write([]byte{kind})
		crc.Write(payload)
		if crc.Sum32() != want {
			res.truncatedTail = true
			break
		}
		rec, err := decodePayload(kind, payload)
		if err != nil {
			// Structurally invalid but checksummed: a writer bug, not
			// media damage. Skip just this record — framing is intact.
			res.corruptRecords++
			good += recHeaderSize + plen
			continue
		}
		res.records = append(res.records, rec)
		good += recHeaderSize + plen
	}
	if res.truncatedTail {
		res.corruptRecords++
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, res, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, res, err
	}
	return &journal{path: path, f: f, w: bufio.NewWriterSize(f, 256<<10), size: good}, res, nil
}

// append stages one record (buffered; flush per the store's fsync policy).
func (j *journal) append(rec record) error {
	payload := encodePayload(rec)
	var hdr [recHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	hdr[4] = rec.kind
	crc := crc32.NewIEEE()
	crc.Write([]byte{rec.kind})
	crc.Write(payload)
	binary.LittleEndian.PutUint32(hdr[5:], crc.Sum32())
	if _, err := j.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.w.Write(payload); err != nil {
		return err
	}
	j.size += recHeaderSize + int64(len(payload))
	return nil
}

func (j *journal) flush() error { return j.w.Flush() }

func (j *journal) sync() {
	j.f.Sync()
}

// close drops the handle without flushing — the crash path. Graceful
// shutdown flushes explicitly first (Store.Close).
func (j *journal) close() {
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// rewriteJournal writes a compact journal via a temp file + atomic rename.
// emitAll streams the records to keep; the new handle is returned.
func rewriteJournal(path string, emitAll func(emit func(record) error) error) (*journal, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	nj := &journal{path: path, f: f, w: bufio.NewWriterSize(f, 256<<10)}
	if err := emitAll(nj.append); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := nj.flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	return nj, nil
}
