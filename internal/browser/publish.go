package browser

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"baps/internal/bloom"
	"baps/internal/proxy"
)

// indexSink is the Batched-mode publish abstraction: standalone agents own a
// dedicated publisher goroutine; hosted agents share their AgentHost's
// hostPublisher, which multiplexes every hosted agent's deltas onto one
// /index/multibatch stream while keeping per-client generations intact.
type indexSink interface {
	enqueue(sd seqDelta)
	syncNow()
	stop(graceful bool)
}

// publisher is the Batched-mode publish queue: a dedicated goroutine that
// owns all index network I/O so store() and Evict() only enqueue. Deltas
// coalesce per URL (last write wins — a document cached and evicted between
// flushes ships as a single removal, or nothing if the proxy never saw it),
// and a flush is triggered by count, estimated wire bytes, or the interval
// ticker, whichever trips first.
//
// Reliability model: enqueue blocks when the channel is full (lossless
// backpressure, bounded memory), a failed flush keeps the pending map and
// the generation number intact so the retry is either the normal successor
// (proxy never saw it) or an idempotent retransmit (proxy saw it, reply was
// lost), and every DigestEvery-th batch carries a Bloom digest of the full
// directory so drift the generation numbers cannot see (a proxy restart)
// still triggers the proxy's /peer/resync pull.
type publisher struct {
	a *Agent

	ch      chan seqDelta
	syncReq chan chan struct{}
	quit    chan struct{} // graceful: drain + final flush
	abort   chan struct{} // abrupt (Kill): stop without flushing
	done    chan struct{}

	// mu guards closed. enqueue holds the read lock across its channel
	// send, so stop()'s write lock cannot be acquired while a send is in
	// flight — once stop holds it, no further sends can race the drain.
	mu     sync.RWMutex
	closed bool

	// Loop-owned state; never touched outside the loop goroutine.
	pending      map[string]seqDelta
	pendingBytes int64
	gen          uint64
	batches      uint64
}

// seqDelta orders deltas by the cache mutation they describe. The sequence
// number is assigned under the agent lock at mutation time, but the channel
// send happens after unlock — so two goroutines' deltas for the same URL can
// arrive inverted, and "last received wins" would resurrect an evicted
// document. Coalescing by highest seq instead makes arrival order
// irrelevant.
type seqDelta struct {
	seq uint64
	d   proxy.IndexDelta
}

// deltaOverhead approximates the per-delta JSON framing beyond the URL.
const deltaOverhead = 48

func newPublisher(a *Agent) *publisher {
	return &publisher{
		a:       a,
		ch:      make(chan seqDelta, 256),
		syncReq: make(chan chan struct{}),
		quit:    make(chan struct{}),
		abort:   make(chan struct{}),
		done:    make(chan struct{}),
		pending: make(map[string]seqDelta),
	}
}

// enqueue hands a delta to the publish goroutine. It blocks if the queue is
// full — backpressure instead of loss — and is a no-op after stop. Callers
// must NOT hold a.mu: the loop takes that lock for digests and full syncs,
// and a blocked send under it would deadlock.
func (p *publisher) enqueue(sd seqDelta) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return
	}
	p.ch <- sd
}

// syncNow asks the loop to replace the pending deltas with a full
// /index/sync and waits for it to finish (no-op after stop).
func (p *publisher) syncNow() {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return
	}
	ack := make(chan struct{})
	select {
	case p.syncReq <- ack:
	case <-p.quit:
		p.mu.RUnlock()
		return
	case <-p.abort:
		p.mu.RUnlock()
		return
	}
	p.mu.RUnlock()
	<-ack
}

// stop shuts the loop down. graceful drains the queue and flushes what is
// pending (Close); otherwise queued deltas are dropped (Kill). Safe to call
// more than once; every call waits for the loop to exit.
func (p *publisher) stop(graceful bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	p.mu.Unlock()
	if graceful {
		close(p.quit)
	} else {
		close(p.abort)
	}
	<-p.done
}

// loop is the publish goroutine.
func (p *publisher) loop() {
	defer close(p.done)
	t := time.NewTicker(p.a.cfg.BatchMaxDelay)
	defer t.Stop()
	for {
		select {
		case sd := <-p.ch:
			p.absorb(sd)
			if len(p.pending) >= p.a.cfg.BatchMaxCount || p.pendingBytes >= p.a.cfg.BatchMaxBytes {
				p.flush()
			}
		case <-t.C:
			if len(p.pending) > 0 {
				p.flush()
			}
		case ack := <-p.syncReq:
			p.drainQueued()
			p.fullSync()
			close(ack)
		case <-p.quit:
			p.drainQueued()
			if len(p.pending) > 0 {
				p.flush()
			}
			return
		case <-p.abort:
			return
		}
	}
}

// absorb folds one delta into the pending map: the delta describing the
// newest cache mutation (highest seq) wins, regardless of arrival order.
func (p *publisher) absorb(sd seqDelta) {
	if sd.d.URL == "" {
		return
	}
	prev, dup := p.pending[sd.d.URL]
	if dup && prev.seq > sd.seq {
		return // a newer mutation for this URL already arrived
	}
	if !dup {
		p.pendingBytes += int64(len(sd.d.URL)) + deltaOverhead
	}
	p.pending[sd.d.URL] = sd
}

// drainQueued empties the ingress channel into pending without blocking.
// Callers (final flush, full sync, pre-digest) want the batch to reflect
// every delta produced so far.
func (p *publisher) drainQueued() {
	for {
		select {
		case sd := <-p.ch:
			p.absorb(sd)
		default:
			return
		}
	}
}

// flush ships the pending deltas as one generation-numbered batch. On
// success the pending map clears and the generation advances; on failure
// both stay put, so the retry reuses the same generation (the proxy treats
// gen==last as an idempotent retransmit).
func (p *publisher) flush() {
	gen := p.gen + 1
	batch := proxy.IndexBatch{ClientID: p.a.id, Gen: gen}
	p.batches++
	if every := p.a.cfg.DigestEvery; every > 0 && p.batches%uint64(every) == 0 {
		// Pull in any deltas still queued first: the digest covers the
		// directory as of now, so the batch should too, or the proxy
		// compares against a view missing the in-flight tail.
		p.drainQueued()
		batch.Digest = p.a.directoryDigest()
	}
	batch.Deltas = make([]proxy.IndexDelta, 0, len(p.pending))
	for _, sd := range p.pending {
		batch.Deltas = append(batch.Deltas, sd.d)
	}
	if !p.a.postBatch(batch) {
		return
	}
	p.gen = gen
	clear(p.pending)
	p.pendingBytes = 0
}

// fullSync replaces the pending deltas with a full directory re-sync (the
// /peer/resync recovery path and SyncIndexNow). The sync carries the next
// generation so the proxy re-seats its counter and the following batch is
// not misread as a gap. On failure the directory is re-queued as pending
// adds — nothing is lost; removals the proxy still believes in are healed
// by the next digest-triggered resync.
func (p *publisher) fullSync() {
	a := p.a
	now := nowStamp()
	a.mu.Lock()
	entries := a.directoryLocked(now)
	a.changes = 0
	// The snapshot seq: deltas for mutations after this point carry a
	// higher seq and must survive being absorbed alongside the snapshot.
	snapSeq := a.deltaSeq
	a.mu.Unlock()
	gen := p.gen + 1
	if a.indexSync(entries, gen) {
		p.gen = gen
		clear(p.pending)
		p.pendingBytes = 0
		return
	}
	for _, e := range entries {
		p.absorb(seqDelta{seq: snapSeq, d: proxy.IndexDelta{
			URL: e.URL, Size: e.Size, Version: e.Version, Stamp: e.Stamp,
		}})
	}
}

// directoryDigest builds the Bloom digest of the agent's full cache
// directory: the base64 MarshalBinary of a filter sized for the resident
// count at 1% FPR. The proxy rebuilds the same geometry over its believed
// directory and compares bit-for-bit.
func (a *Agent) directoryDigest() string {
	a.mu.Lock()
	keys := a.cache.Keys()
	f, err := bloom.NewFilterForFPR(max(len(keys), 1), 0.01)
	if err != nil {
		a.mu.Unlock()
		return ""
	}
	for _, k := range keys {
		f.Add(k)
	}
	a.mu.Unlock()
	raw, err := f.MarshalBinary()
	if err != nil {
		return ""
	}
	return base64.StdEncoding.EncodeToString(raw)
}

// postBatch POSTs one /index/batch and reports acceptance (2xx).
func (a *Agent) postBatch(batch proxy.IndexBatch) bool {
	body, _ := json.Marshal(batch)
	req, err := http.NewRequest(http.MethodPost, a.cfg.ProxyURL+"/index/batch", bytes.NewReader(body))
	if err != nil {
		return false
	}
	a.authHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.httpClient.Do(req)
	if err != nil {
		a.indexPublishFailure("batch", err, 0)
		return false
	}
	proxy.DrainClose(resp)
	if resp.StatusCode/100 != 2 {
		a.indexPublishFailure("batch", nil, resp.StatusCode)
		return false
	}
	a.addMetric(func(m *Metrics) { m.IndexBatches++ })
	return true
}
