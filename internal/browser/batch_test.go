package browser

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"testing"
	"time"

	"baps/internal/proxy"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// batchedCluster starts one Batched-mode agent with a fast flush interval.
func batchedCluster(t *testing.T, mutate func(*Config)) *cluster {
	t.Helper()
	return startCluster(t, 1, proxy.Config{}, func(cfg *Config) {
		cfg.IndexMode = Batched
		cfg.BatchMaxDelay = 10 * time.Millisecond
		cfg.DigestEvery = 0
		cfg.Verify = false
		if mutate != nil {
			mutate(cfg)
		}
	})
}

// proxyDirectory returns the sorted URLs the proxy's index believes the
// client holds.
func proxyDirectory(c *cluster, client int) []string {
	var urls []string
	for _, e := range c.proxy.Index().ClientDocs(client) {
		urls = append(urls, c.proxy.Syms().String(e.Doc))
	}
	sort.Strings(urls)
	return urls
}

// agentDirectory returns the agent's sorted cache directory.
func agentDirectory(a *Agent) []string {
	a.mu.Lock()
	keys := append([]string(nil), a.cache.Keys()...)
	a.mu.Unlock()
	sort.Strings(keys)
	return keys
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBatchedPublishReachesProxy(t *testing.T) {
	c := batchedCluster(t, nil)
	ag := c.agents[0]
	for i := 0; i < 3; i++ {
		if _, _, err := ag.Get(context.Background(), c.url(fmt.Sprintf("/doc/b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 3*time.Second, "batched deltas to reach the proxy index", func() bool {
		return equalStrings(proxyDirectory(c, ag.ID()), agentDirectory(ag))
	})
	if m := ag.Snapshot(); m.IndexBatches == 0 || m.IndexOps != 0 || m.IndexSyncs != 0 {
		t.Fatalf("batched agent sent batches=%d ops=%d syncs=%d; want only batches", m.IndexBatches, m.IndexOps, m.IndexSyncs)
	}
	st := c.proxy.Snapshot()
	if st.IndexBatches == 0 || st.IndexBatchDeltas < 3 {
		t.Fatalf("proxy counted batches=%d deltas=%d", st.IndexBatches, st.IndexBatchDeltas)
	}
	if st.IndexGenGaps != 0 || st.IndexDigestMismatches != 0 || st.IndexResyncPulls != 0 {
		t.Fatalf("clean run reported drift: %+v", st)
	}
}

func TestBatchedCountTriggersFlush(t *testing.T) {
	c := batchedCluster(t, func(cfg *Config) {
		cfg.BatchMaxDelay = time.Hour // only the count threshold may flush
		cfg.BatchMaxCount = 4
	})
	ag := c.agents[0]
	for i := 0; i < 4; i++ {
		if _, _, err := ag.Get(context.Background(), c.url(fmt.Sprintf("/doc/c%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 3*time.Second, "count-triggered flush", func() bool {
		return len(proxyDirectory(c, ag.ID())) == 4
	})
}

func TestBatchedDrainOnClose(t *testing.T) {
	c := batchedCluster(t, func(cfg *Config) {
		cfg.BatchMaxDelay = time.Hour
		cfg.BatchMaxCount = 1 << 20 // nothing flushes during the run
	})
	ag := c.agents[0]
	for i := 0; i < 3; i++ {
		if _, _, err := ag.Get(context.Background(), c.url(fmt.Sprintf("/doc/d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Give the enqueues a moment, then confirm nothing has flushed yet.
	time.Sleep(50 * time.Millisecond)
	if n := len(proxyDirectory(c, ag.ID())); n != 0 {
		t.Fatalf("deltas flushed before Close (%d entries) — thresholds not honored", n)
	}
	if err := ag.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.proxy.Snapshot()
	if st.IndexBatches != 1 || st.IndexBatchDeltas != 3 {
		t.Fatalf("drain-on-close: batches=%d deltas=%d, want 1/3", st.IndexBatches, st.IndexBatchDeltas)
	}
	// The unregister that follows the drain drops the entries themselves.
	if n := len(proxyDirectory(c, ag.ID())); n != 0 {
		t.Fatalf("%d index entries survived unregister", n)
	}
}

func TestGenGapTriggersResyncPull(t *testing.T) {
	c := batchedCluster(t, nil)
	ag := c.agents[0]
	if _, _, err := ag.Get(context.Background(), c.url("/doc/g0")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "first batch", func() bool {
		return len(proxyDirectory(c, ag.ID())) == 1
	})

	// Forge a far-future generation (a lost-batch window the proxy cannot
	// see into): it must count a gap and pull a full re-sync.
	body, _ := json.Marshal(proxy.IndexBatch{ClientID: ag.ID(), Gen: 999})
	req, _ := http.NewRequest(http.MethodPost, ag.cfg.ProxyURL+"/index/batch", bytes.NewReader(body))
	ag.authHeaders(req)
	resp, err := ag.httpClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	proxy.DrainClose(resp)
	if resp.StatusCode/100 != 2 {
		t.Fatalf("forged batch status %s", resp.Status)
	}

	waitUntil(t, 3*time.Second, "gap-triggered resync pull", func() bool {
		st := c.proxy.Snapshot()
		return st.IndexGenGaps >= 1 && st.IndexResyncPulls >= 1 && ag.Snapshot().IndexSyncs >= 1
	})
	// The recovery sync must restore the exact directory and re-seat the
	// generation so subsequent batches apply cleanly.
	if _, _, err := ag.Get(context.Background(), c.url("/doc/g1")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "post-recovery batch to apply", func() bool {
		return equalStrings(proxyDirectory(c, ag.ID()), agentDirectory(ag))
	})
	if gaps := c.proxy.Snapshot().IndexGenGaps; gaps != 1 {
		t.Fatalf("post-recovery batches counted as gaps (%d)", gaps)
	}
}

func TestDigestMismatchTriggersResync(t *testing.T) {
	c := batchedCluster(t, func(cfg *Config) {
		cfg.DigestEvery = 1 // every batch carries a digest
	})
	ag := c.agents[0]
	if _, _, err := ag.Get(context.Background(), c.url("/doc/h0")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "first digest batch", func() bool {
		return len(proxyDirectory(c, ag.ID())) == 1
	})

	// Inject drift the generation numbers cannot see: a forged immediate
	// /index/add makes the proxy believe the agent holds a bogus URL.
	bogus := c.url("/doc/never-cached")
	body, _ := json.Marshal(proxy.IndexUpdate{ClientID: ag.ID(), Entry: proxy.IndexEntry{URL: bogus, Size: 1}})
	req, _ := http.NewRequest(http.MethodPost, ag.cfg.ProxyURL+"/index/add", bytes.NewReader(body))
	ag.authHeaders(req)
	resp, err := ag.httpClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	proxy.DrainClose(resp)
	if !c.proxy.Index().Has(ag.ID(), c.proxy.Syms().Intern(bogus)) {
		t.Fatal("drift injection failed")
	}

	// The next digest-carrying batch must expose the drift and heal it.
	if _, _, err := ag.Get(context.Background(), c.url("/doc/h1")); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "digest mismatch and heal", func() bool {
		st := c.proxy.Snapshot()
		return st.IndexDigestMismatches >= 1 && st.IndexResyncPulls >= 1 &&
			!c.proxy.Index().Has(ag.ID(), c.proxy.Syms().Intern(bogus)) &&
			equalStrings(proxyDirectory(c, ag.ID()), agentDirectory(ag))
	})
}

// TestBatchedConcurrentStoreLosesNoDelta is the -race proof of the tentpole
// invariant: concurrent store/evict churn during flushes — coalescing, a
// full cache forcing evictions, out-of-order enqueues — converges to a proxy
// view identical to the browser's directory, with no digest or resync
// healing to hide a lost delta (DigestEvery=0, and the test asserts no
// resync happened).
func TestBatchedConcurrentStoreLosesNoDelta(t *testing.T) {
	c := startCluster(t, 1, proxy.Config{}, func(cfg *Config) {
		cfg.IndexMode = Batched
		cfg.BatchMaxDelay = 5 * time.Millisecond
		cfg.BatchMaxCount = 8
		cfg.DigestEvery = 0
		cfg.Verify = false
		cfg.CacheCapacity = 64 << 10 // tiny: constant evictions
	})
	ag := c.agents[0]
	const (
		workers = 8
		gets    = 60
		docs    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(w), 99))
			for i := 0; i < gets; i++ {
				u := c.url(fmt.Sprintf("/doc/r%d", rng.IntN(docs)))
				if _, _, err := ag.Get(context.Background(), u); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if i%7 == 0 {
					ag.Evict(u)
				}
			}
		}()
	}
	wg.Wait()
	waitUntil(t, 5*time.Second, "proxy view to converge on the browser directory", func() bool {
		return equalStrings(proxyDirectory(c, ag.ID()), agentDirectory(ag))
	})
	st := c.proxy.Snapshot()
	if st.IndexGenGaps != 0 || st.IndexDigestMismatches != 0 || st.IndexResyncPulls != 0 {
		t.Fatalf("convergence needed recovery (gaps=%d mismatches=%d pulls=%d) — deltas were lost or misordered",
			st.IndexGenGaps, st.IndexDigestMismatches, st.IndexResyncPulls)
	}
	if m := ag.Snapshot(); m.IndexPublishFailures != 0 {
		t.Fatalf("publish failures during clean run: %d", m.IndexPublishFailures)
	}
}

// TestIndexOpCountsOnlyAcceptedResponses pins the satellite bugfix: an
// index message the proxy rejects (bad token → 4xx) must count as a publish
// failure, not as a sent op.
func TestIndexOpCountsOnlyAcceptedResponses(t *testing.T) {
	c := startCluster(t, 1, proxy.Config{}, func(cfg *Config) {
		cfg.IndexMode = Immediate
		cfg.Verify = false
	})
	ag := c.agents[0]
	goodToken := ag.token
	ag.token = "corrupted"
	ag.indexOp(true, proxy.IndexEntry{URL: c.url("/doc/x"), Size: 1})
	m := ag.Snapshot()
	if m.IndexOps != 0 {
		t.Fatalf("rejected op counted as sent (IndexOps=%d)", m.IndexOps)
	}
	if m.IndexPublishFailures != 1 {
		t.Fatalf("rejected op not counted as failure (failures=%d)", m.IndexPublishFailures)
	}
	ag.token = goodToken
	ag.indexOp(true, proxy.IndexEntry{URL: c.url("/doc/x"), Size: 1})
	m = ag.Snapshot()
	if m.IndexOps != 1 || m.IndexPublishFailures != 1 {
		t.Fatalf("accepted op miscounted: ops=%d failures=%d", m.IndexOps, m.IndexPublishFailures)
	}
}
