package browser

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"baps/internal/proxy"
)

// hostSink adapts one hosted agent onto the host's multiplexed publisher; it
// satisfies indexSink so store()/Evict()/SyncIndexNow work identically in
// both agent shapes.
type hostSink struct {
	p *hostPublisher
	a *Agent
}

func (s *hostSink) enqueue(sd seqDelta) { s.p.enqueue(hostDelta{a: s.a, sd: sd}) }
func (s *hostSink) syncNow()            { s.p.syncAgent(s.a) }
func (s *hostSink) stop(graceful bool)  { s.p.leave(s.a, graceful) }

// hostDelta is one agent's delta in the shared ingress channel.
type hostDelta struct {
	a  *Agent
	sd seqDelta
}

// agentPending is the publisher's per-agent ledger: the coalesced delta map
// and the agent's OWN generation counter — multiplexing changes the carrier,
// not the per-client protocol, so the proxy's gap/digest drift detection
// keeps working unchanged.
type agentPending struct {
	pending map[string]seqDelta
	bytes   int64
	gen     uint64
	batches uint64
}

// hostPublisher replaces N per-agent publish goroutines with ONE: every
// hosted agent's deltas funnel into a shared channel, coalesce per (agent,
// URL), and ship as a single POST /index/multibatch carrying one
// generation-numbered sub-batch per dirty agent, each authenticated by that
// agent's own token.
//
// Reliability matches the per-agent publisher: a transport failure keeps
// every pending map and generation intact (the retry is an idempotent
// retransmit), while a per-sub-batch rejection (the proxy refused that
// agent's token — it unregistered or was superseded) drops only that agent's
// pending set. Per-agent Bloom digests ride every DigestEvery-th sub-batch
// exactly as before.
type hostPublisher struct {
	h *AgentHost

	ch       chan hostDelta
	syncReq  chan hostSyncReq
	leaveReq chan hostLeaveReq
	quit     chan struct{} // graceful: drain + final flush
	abort    chan struct{} // abrupt (Kill): stop without flushing
	done     chan struct{}

	// mu guards closed; same discipline as publisher: senders hold the
	// read lock across their channel send, so stop()'s write lock cannot
	// land mid-send.
	mu     sync.RWMutex
	closed bool

	// Loop-owned state; never touched outside the loop goroutine.
	state        map[*Agent]*agentPending
	totalPending int
	totalBytes   int64
}

type hostSyncReq struct {
	a   *Agent
	ack chan struct{}
}

type hostLeaveReq struct {
	a        *Agent
	graceful bool
	ack      chan struct{}
}

func newHostPublisher(h *AgentHost) *hostPublisher {
	return &hostPublisher{
		h:        h,
		ch:       make(chan hostDelta, 4096),
		syncReq:  make(chan hostSyncReq),
		leaveReq: make(chan hostLeaveReq),
		quit:     make(chan struct{}),
		abort:    make(chan struct{}),
		done:     make(chan struct{}),
		state:    make(map[*Agent]*agentPending),
	}
}

// enqueue hands one agent's delta to the shared loop. Blocks when the
// channel is full (lossless backpressure); no-op after stop. Callers must
// not hold the agent's mu (the loop takes agent locks for digests/syncs).
func (p *hostPublisher) enqueue(hd hostDelta) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return
	}
	p.ch <- hd
}

// syncAgent asks the loop to replace agent a's pending deltas with a full
// /index/sync and waits for it (no-op after stop).
func (p *hostPublisher) syncAgent(a *Agent) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return
	}
	req := hostSyncReq{a: a, ack: make(chan struct{})}
	select {
	case p.syncReq <- req:
	case <-p.quit:
		p.mu.RUnlock()
		return
	case <-p.abort:
		p.mu.RUnlock()
		return
	}
	p.mu.RUnlock()
	<-req.ack
}

// leave detaches agent a: graceful flushes its share of the pending set as a
// final single-agent batch; abrupt drops it. Waits for the loop to process
// the departure (no-op after stop).
func (p *hostPublisher) leave(a *Agent, graceful bool) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return
	}
	req := hostLeaveReq{a: a, graceful: graceful, ack: make(chan struct{})}
	select {
	case p.leaveReq <- req:
	case <-p.quit:
		p.mu.RUnlock()
		return
	case <-p.abort:
		p.mu.RUnlock()
		return
	}
	p.mu.RUnlock()
	<-req.ack
}

// stop shuts the loop down; graceful drains and final-flushes every agent's
// pending deltas. Safe to call more than once.
func (p *hostPublisher) stop(graceful bool) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	p.mu.Unlock()
	if graceful {
		close(p.quit)
	} else {
		close(p.abort)
	}
	<-p.done
}

// loop is the single publish goroutine shared by every hosted agent.
func (p *hostPublisher) loop() {
	defer close(p.done)
	t := time.NewTicker(p.h.cfg.Agent.BatchMaxDelay)
	defer t.Stop()
	for {
		select {
		case hd := <-p.ch:
			p.absorb(hd)
			if p.totalPending >= p.h.cfg.FlushMaxDeltas || p.totalBytes >= p.h.cfg.FlushMaxBytes {
				p.flush()
			}
		case <-t.C:
			if p.totalPending > 0 {
				p.flush()
			}
		case req := <-p.syncReq:
			p.drainQueued()
			p.fullSync(req.a)
			close(req.ack)
		case req := <-p.leaveReq:
			p.drainQueued()
			if req.graceful {
				p.flushAgent(req.a)
			}
			p.dropAgent(req.a)
			close(req.ack)
		case <-p.quit:
			p.drainQueued()
			if p.totalPending > 0 {
				p.flush()
			}
			return
		case <-p.abort:
			return
		}
	}
}

// absorb folds one delta into its agent's pending map (highest seq wins, as
// in the per-agent publisher), creating the ledger entry on first use.
func (p *hostPublisher) absorb(hd hostDelta) {
	if hd.sd.d.URL == "" {
		return
	}
	st := p.state[hd.a]
	if st == nil {
		st = &agentPending{pending: make(map[string]seqDelta)}
		p.state[hd.a] = st
	}
	prev, dup := st.pending[hd.sd.d.URL]
	if dup && prev.seq > hd.sd.seq {
		return
	}
	if !dup {
		n := int64(len(hd.sd.d.URL)) + deltaOverhead
		st.bytes += n
		p.totalBytes += n
		p.totalPending++
	}
	st.pending[hd.sd.d.URL] = hd.sd
}

// drainQueued empties the ingress channel without blocking.
func (p *hostPublisher) drainQueued() {
	for {
		select {
		case hd := <-p.ch:
			p.absorb(hd)
		default:
			return
		}
	}
}

// clearAgent empties one agent's pending set, adjusting the host totals.
func (p *hostPublisher) clearAgent(st *agentPending) {
	p.totalPending -= len(st.pending)
	p.totalBytes -= st.bytes
	clear(st.pending)
	st.bytes = 0
}

// dropAgent removes one agent's ledger entirely (departure).
func (p *hostPublisher) dropAgent(a *Agent) {
	if st, ok := p.state[a]; ok {
		p.totalPending -= len(st.pending)
		p.totalBytes -= st.bytes
		delete(p.state, a)
	}
}

// buildBatch assembles one agent's generation-numbered sub-batch (with its
// periodic Bloom digest) from the pending ledger.
func (p *hostPublisher) buildBatch(a *Agent, st *agentPending) proxy.IndexBatch {
	st.batches++
	b := proxy.IndexBatch{ClientID: a.id, Gen: st.gen + 1}
	if every := a.cfg.DigestEvery; every > 0 && st.batches%uint64(every) == 0 {
		b.Digest = a.directoryDigest()
	}
	b.Deltas = make([]proxy.IndexDelta, 0, len(st.pending))
	for _, sd := range st.pending {
		b.Deltas = append(b.Deltas, sd.d)
	}
	return b
}

// flush ships every dirty agent's sub-batch as one /index/multibatch. On
// transport failure nothing advances (idempotent retransmit); on success
// each accepted agent's generation advances and its pending clears, while
// rejected agents (token refused — unregistered or superseded at the proxy)
// lose their ledger: the proxy no longer believes in them.
func (p *hostPublisher) flush() {
	members := make([]*Agent, 0, len(p.state))
	batches := make([]proxy.HostBatch, 0, len(p.state))
	for a, st := range p.state {
		if len(st.pending) == 0 {
			continue
		}
		members = append(members, a)
		batches = append(batches, proxy.HostBatch{IndexBatch: p.buildBatch(a, st), Token: a.token})
	}
	if len(batches) == 0 {
		return
	}
	resp, ok := p.postMultiBatch(batches)
	if !ok {
		return
	}
	rejected := make(map[int]bool, len(resp.Rejected))
	for _, id := range resp.Rejected {
		rejected[id] = true
	}
	for i, a := range members {
		st := p.state[a]
		if rejected[a.id] {
			a.indexPublishFailure("multibatch", nil, http.StatusForbidden)
			p.dropAgent(a)
			continue
		}
		st.gen = batches[i].Gen
		p.clearAgent(st)
		a.addMetric(func(m *Metrics) { m.IndexBatches++ })
	}
}

// flushAgent final-flushes ONE departing agent's pending deltas as an
// ordinary single-agent /index/batch (the departure path should not force a
// fleet-wide flush).
func (p *hostPublisher) flushAgent(a *Agent) {
	st := p.state[a]
	if st == nil || len(st.pending) == 0 {
		return
	}
	batch := p.buildBatch(a, st)
	if a.postBatch(batch) {
		st.gen = batch.Gen
		p.clearAgent(st)
	}
}

// fullSync replaces one agent's pending deltas with a full directory
// re-sync, exactly like the per-agent publisher's fullSync: the sync carries
// the next generation so the proxy re-seats its counter, and on failure the
// snapshot re-queues as pending adds.
func (p *hostPublisher) fullSync(a *Agent) {
	st := p.state[a]
	if st == nil {
		st = &agentPending{pending: make(map[string]seqDelta)}
		p.state[a] = st
	}
	now := nowStamp()
	a.mu.Lock()
	entries := a.directoryLocked(now)
	a.changes = 0
	snapSeq := a.deltaSeq
	a.mu.Unlock()
	gen := st.gen + 1
	if a.indexSync(entries, gen) {
		st.gen = gen
		p.clearAgent(st)
		return
	}
	for _, e := range entries {
		p.absorb(hostDelta{a: a, sd: seqDelta{seq: snapSeq, d: proxy.IndexDelta{
			URL: e.URL, Size: e.Size, Version: e.Version, Stamp: e.Stamp,
		}}})
	}
}

// postMultiBatch POSTs one /index/multibatch over the host's shared client.
// Transport errors and non-2xx statuses report failure against every member
// agent (the whole carrier failed, not any one client).
func (p *hostPublisher) postMultiBatch(batches []proxy.HostBatch) (proxy.MultiBatchResponse, bool) {
	var out proxy.MultiBatchResponse
	body, _ := json.Marshal(proxy.IndexMultiBatch{Batches: batches})
	req, err := http.NewRequest(http.MethodPost, p.h.cfg.Agent.ProxyURL+"/index/multibatch", bytes.NewReader(body))
	if err != nil {
		return out, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.h.client.Do(req)
	if err != nil {
		p.multiFailure(err, 0)
		return out, false
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		proxy.DrainClose(resp)
		p.multiFailure(nil, resp.StatusCode)
		return out, false
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		p.multiFailure(err, 0)
		return out, false
	}
	return out, true
}

// multiFailure counts one failed carrier POST against the host log (agents'
// pending sets are intact, so this is visibility, not loss).
func (p *hostPublisher) multiFailure(err error, status int) {
	if p.h.logger == nil {
		return
	}
	if err != nil {
		p.h.logger.Warn("multibatch publish failed", "err", err)
	} else {
		p.h.logger.Warn("multibatch publish rejected", "status", status)
	}
}
