package browser

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"baps/internal/proxy"
)

// peerGet performs an authenticated GET /peer/doc against a's peer server
// handler (direct dispatch, so it works even mid-shutdown).
func peerGet(a *Agent, docURL string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, "/peer/doc?url="+url.QueryEscape(docURL), nil)
	req.Header.Set(proxy.HeaderToken, a.token)
	rec := httptest.NewRecorder()
	a.handlePeerDoc(rec, req)
	return rec
}

func invalidatePost(t *testing.T, a *Agent, docURL string, version int64) {
	t.Helper()
	body, _ := json.Marshal(proxy.InvalidateRequest{URL: docURL, Version: version})
	req, _ := http.NewRequest(http.MethodPost, a.PeerURL()+"/cache/invalidate", bytes.NewReader(body))
	req.Header.Set(proxy.HeaderToken, a.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("invalidate status %d", resp.StatusCode)
	}
}

// TestInvalidatedDocNeverServedToPeers: the regression the tombstone plane
// exists for. After a /cache/invalidate, the agent must not serve the doc
// with its (still cryptographically valid) watermark — not from the live
// handler, and not even if a racing stale delivery tries to re-store it.
func TestInvalidatedDocNeverServedToPeers(t *testing.T) {
	c := startCluster(t, 1, proxy.Config{}, nil)
	a := c.agents[0]
	u := c.url("/inval/doc")

	body, _, err := a.Get(context.Background(), u)
	if err != nil {
		t.Fatal(err)
	}
	if rec := peerGet(a, u); rec.Code != http.StatusOK {
		t.Fatalf("pre-invalidate peer serve: %d", rec.Code)
	}
	a.mu.Lock()
	mark := a.docs[u]
	a.mu.Unlock()

	invalidatePost(t, a, u, mark.version+1)
	if a.HasCached(u) {
		t.Fatal("invalidated doc still cached")
	}
	if rec := peerGet(a, u); rec.Code == http.StatusOK {
		t.Fatalf("invalidated doc served to a peer (status %d)", rec.Code)
	}

	// A stale delivery racing the invalidation must not resurrect it.
	a.store(u, body, mark.watermark, mark.version)
	if a.HasCached(u) {
		t.Fatal("stale re-store resurrected an invalidated doc")
	}
	if rec := peerGet(a, u); rec.Code == http.StatusOK {
		t.Fatal("resurrected stale doc served to a peer")
	}

	// A copy at the announced version clears the tombstone.
	a.store(u, body, mark.watermark, mark.version+1)
	if !a.HasCached(u) {
		t.Fatal("current-version store refused after invalidation")
	}
	if rec := peerGet(a, u); rec.Code != http.StatusOK {
		t.Fatalf("current-version peer serve: %d", rec.Code)
	}
	if a.Snapshot().Invalidations != 1 {
		t.Fatalf("invalidations metric = %d, want 1", a.Snapshot().Invalidations)
	}
}

// TestNoPeerServeAfterClose: once Close has begun, the peer handlers
// refuse — the graceful-shutdown window must not hand out watermarked
// bodies the proxy may just have invalidated.
func TestNoPeerServeAfterClose(t *testing.T) {
	c := startCluster(t, 1, proxy.Config{}, nil)
	a := c.agents[0]
	u := c.url("/close/doc")
	if _, _, err := a.Get(context.Background(), u); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if rec := peerGet(a, u); rec.Code != http.StatusGone {
		t.Fatalf("post-Close peer serve status %d, want 410", rec.Code)
	}
}

// TestCacheInvalidateAuthAndValidation: the invalidate endpoint requires
// the registration token and a well-formed body.
func TestCacheInvalidateAuthAndValidation(t *testing.T) {
	c := startCluster(t, 1, proxy.Config{}, nil)
	a := c.agents[0]

	resp, err := http.Post(a.PeerURL()+"/cache/invalidate", "application/json",
		strings.NewReader(`{"url":"http://x/a","version":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless invalidate: %d, want 403", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPost, a.PeerURL()+"/cache/invalidate", strings.NewReader("{"))
	req.Header.Set(proxy.HeaderToken, a.token)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed invalidate: %d, want 400", resp.StatusCode)
	}
}

// TestPrefetchLandsInIdleBrowser: end-to-end push path — two agents make a
// document hot, and the proxy's prefetcher plants it (with a verifying
// watermark) into the third, idle agent's cache without that agent ever
// requesting it.
func TestPrefetchLandsInIdleBrowser(t *testing.T) {
	pcfg := proxy.DefaultConfig()
	pcfg.KeyBits = 1024
	pcfg.CacheCapacity = 1 << 20
	pcfg.PrefetchInterval = 25 * time.Millisecond
	pcfg.PrefetchMinHits = 2
	c := startCluster(t, 3, pcfg, nil)
	u := c.url("/hot/doc")

	ctx := context.Background()
	if _, _, err := c.agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.agents[1].Get(ctx, u); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		var landed *Agent
		for _, a := range c.agents {
			if a.Snapshot().PushesAccepted >= 1 {
				landed = a
				break
			}
		}
		if landed != nil {
			// The planted copy serves its own future request locally.
			body, src, err := landed.Get(ctx, u)
			if err != nil || src != SourceLocal || len(body) == 0 {
				t.Fatalf("planted doc: src=%v err=%v len=%d", src, err, len(body))
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no agent ever accepted a prefetch push")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInvalidationEndToEnd: a modification observed by the proxy's
// revalidator reaches the browser — the stale local copy disappears and
// the next Get returns the new content.
func TestInvalidationEndToEnd(t *testing.T) {
	pcfg := proxy.DefaultConfig()
	pcfg.KeyBits = 1024
	pcfg.CacheCapacity = 1 << 20
	pcfg.RevalidateAfter = 60 * time.Millisecond
	pcfg.RevalidateEvery = 20 * time.Millisecond
	c := startCluster(t, 1, pcfg, nil)
	a := c.agents[0]
	u := c.url("/e2e/doc")

	ctx := context.Background()
	body0, _, err := a.Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	c.origin.Modify("/e2e/doc")

	deadline := time.Now().Add(5 * time.Second)
	for a.HasCached(u) {
		if time.Now().After(deadline) {
			t.Fatal("stale copy never invalidated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	body1, _, err := a.Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(body0, body1) {
		t.Fatal("post-invalidation Get returned the stale body")
	}
	if a.Snapshot().Invalidations < 1 {
		t.Fatal("invalidations metric not counted")
	}
}
