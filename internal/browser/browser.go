// Package browser implements the live browser-side agent of the
// browsers-aware proxy system: a client with a local browser cache that
//
//   - serves its own requests from the local cache first (Figure 1's first
//     lookup);
//   - fetches misses through the browsers-aware proxy;
//   - runs a small peer server so the proxy can retrieve its cached
//     documents (fetch-forward) or instruct it to push a document to an
//     anonymous relay drop (direct-forward) — only callers presenting the
//     registration token are served, so peers can never contact each other
//     directly and identities stay hidden (§6.2);
//   - keeps the proxy's browser index updated under either §2 protocol:
//     immediate add/invalidate messages, or periodic batched re-syncs once
//     a threshold fraction of the cache has changed;
//   - verifies document watermarks with the proxy's public key (§6.1) and
//     reports tampered direct-forward deliveries.
package browser

import (
	"bytes"
	"context"
	"crypto/rsa"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"baps/internal/cache"
	"baps/internal/integrity"
	"baps/internal/obs"
	"baps/internal/proxy"
)

// Source classifies where a Get was satisfied.
type Source string

// Source values.
const (
	SourceLocal  Source = "local"
	SourceProxy  Source = proxy.SourceProxy
	SourceRemote Source = proxy.SourceRemote
	SourceOrigin Source = proxy.SourceOrigin
)

// IndexMode selects the §2 index-update protocol on the wire.
type IndexMode int

const (
	// Immediate sends one index message per cache change.
	Immediate IndexMode = iota
	// Periodic batches changes and re-syncs the full directory when more
	// than Threshold of the cache has changed.
	Periodic
	// Batched coalesces changes in a per-agent publish queue (last write
	// wins per URL) and ships only the net deltas as generation-numbered
	// POST /index/batch messages, flushed by count, bytes, or interval
	// from a dedicated goroutine — store() never does network I/O. Drift
	// (a lost batch, a proxy restart) is detected by generation gaps and
	// periodic Bloom digests and repaired by the proxy's /peer/resync
	// pull.
	Batched
)

// Config parameterizes an agent.
type Config struct {
	// ProxyURL is the browsers-aware proxy's base URL.
	ProxyURL string
	// CacheCapacity is the browser cache size in bytes.
	CacheCapacity int64
	// MemFraction is the memory-tier share of the cache.
	MemFraction float64
	// Policy is the replacement policy (paper: LRU).
	Policy cache.Policy
	// IndexMode and Threshold configure index updates.
	IndexMode IndexMode
	Threshold float64
	// Batched-mode publish-queue tuning (ignored in other modes). A flush
	// is triggered by whichever limit trips first: BatchMaxCount coalesced
	// deltas, BatchMaxBytes of estimated wire size, or BatchMaxDelay since
	// the previous flush. Zero values take the DefaultConfig defaults.
	BatchMaxDelay time.Duration
	BatchMaxCount int
	BatchMaxBytes int64
	// DigestEvery attaches a Bloom digest of the full directory to every
	// n-th batch so the proxy can detect drift; 0 disables digests.
	DigestEvery int
	// Verify enables watermark verification on every non-local document.
	Verify bool
	// Timeout bounds proxy calls.
	Timeout time.Duration
	// HeartbeatInterval is the liveness-beacon period (POST /heartbeat).
	// Zero disables the heartbeat loop (the proxy's silence sweep will
	// eventually quarantine the agent's entries).
	HeartbeatInterval time.Duration
	// AdvertisePeerURL, when non-empty, is registered with the proxy in
	// place of the agent's actual listen address. Fault-injection
	// harnesses front the peer server with a faulty gateway this way.
	AdvertisePeerURL string
	// Metrics is the registry the agent's metrics register on; nil creates
	// a private registry. Served at GET /metrics on the peer server.
	Metrics *obs.Registry
	// Logger, when non-nil, receives structured logs (registration,
	// tamper rejections, heartbeat failures).
	Logger *slog.Logger
}

// DefaultConfig returns sensible agent defaults.
func DefaultConfig(proxyURL string) Config {
	return Config{
		ProxyURL:          proxyURL,
		CacheCapacity:     8 << 20,
		MemFraction:       0.5,
		Policy:            cache.LRU,
		IndexMode:         Immediate,
		Threshold:         0.05,
		Verify:            true,
		Timeout:           10 * time.Second,
		HeartbeatInterval: 5 * time.Second,
		BatchMaxDelay:     100 * time.Millisecond,
		BatchMaxCount:     128,
		BatchMaxBytes:     256 << 10,
		DigestEvery:       8,
	}
}

// Metrics counts agent activity.
type Metrics struct {
	Requests     int64
	LocalHits    int64
	ProxyHits    int64
	RemoteHits   int64
	OriginMiss   int64
	PeerServes   int64
	TamperSeen   int64
	IndexSyncs   int64
	IndexOps     int64
	IndexBatches int64
	// IndexPublishFailures counts index messages (any protocol) that
	// errored or came back non-2xx. Batched-mode failures are retried —
	// the pending deltas stay queued — so a failure here is load-shedding
	// visibility, not data loss.
	IndexPublishFailures int64
	// DirSnapshotMisses counts directory-snapshot entries skipped because
	// the key vanished between Keys() and Peek() (should stay zero: the
	// snapshot runs under the cache lock).
	DirSnapshotMisses int64
	OnionRelayed      int64
	// Background-pipeline traffic (DESIGN.md §14): proxy-initiated cache
	// pushes accepted into / declined by this cache, and proxy-initiated
	// invalidations applied to it.
	PushesAccepted int64
	PushesDeclined int64
	Invalidations  int64
}

// Agent is one live browser client. It runs in one of two shapes: a
// standalone agent owns a listener, HTTP server, transport pool, publish
// goroutine, and heartbeat goroutine; a hosted agent (AgentHost.Spawn) is
// just this struct — the host supplies a shared server, shared transport,
// one multiplexed publisher, and one heartbeat pacer for all its agents, so
// per-agent overhead stays flat at fleet scale.
type Agent struct {
	cfg      Config
	id       int
	token    string
	pub      *rsa.PublicKey
	relayKey []byte // covert-path key issued at registration

	mu    sync.Mutex
	cache *cache.TwoTier
	// docs holds body, watermark, and version per cached URL in one map:
	// one lookup (and at fleet scale, one bucket array) where the old
	// bodies/marks pair cost two.
	docs map[string]cachedDoc
	// Periodic-mode pending change counter.
	changes int
	// deltaSeq orders Batched-mode deltas by cache mutation: assigned
	// under a.mu at mutation time, compared by the publisher when
	// coalescing, so out-of-order channel arrival cannot resurrect an
	// evicted document.
	deltaSeq uint64
	// Waiters for onion-routed deliveries, by document URL.
	pendingOnion map[string]chan onionDeliveryMsg
	// invalidated tombstones proxy-invalidated documents: url → minimum
	// acceptable version. Copies below the floor are never stored and
	// never served to peers (410), even across the Close() window — a
	// stale body must not leave this agent with a valid watermark.
	invalidated map[string]int64
	// closing marks shutdown: peer-serve and push handlers refuse once
	// Close/Kill has begun, so the graceful-shutdown window cannot serve
	// a document the proxy believes withdrawn.
	closing bool

	metrics Metrics
	obs     *obs.Registry
	logger  *slog.Logger

	// httpClient is per-agent for standalone agents; hosted agents share
	// their host's one tuned transport. listener/httpSrv are nil when
	// hosted — the host's shared server routes to this agent by slot.
	httpClient *http.Client
	listener   net.Listener
	httpSrv    *http.Server
	peerURL    string

	// sink is the Batched-mode index publisher (nil in other modes): a
	// dedicated per-agent goroutine when standalone, a thin handle onto the
	// host's multiplexed publisher when hosted.
	sink indexSink

	// Host plumbing (nil/0 when standalone).
	host *AgentHost
	slot int

	stopHeartbeat chan struct{}
	// heartbeatDone is closed when the heartbeat goroutine exits; Close
	// waits on it before unregistering, so a beat in flight cannot land at
	// the proxy after the unregister wiped the agent's health record (a
	// resurrection the silence sweep could never clear). Nil when no
	// heartbeat loop runs (hosted agents, HeartbeatInterval 0).
	heartbeatDone chan struct{}
	closeOnce     sync.Once

	// Tamper is a test hook: when non-nil, bodies served to peers (via
	// either forward mode) pass through it — the "malicious holder".
	Tamper func(url string, body []byte) []byte
}

// cachedDoc is one locally cached document: the body plus the proxy
// watermark and version needed to re-serve it to peers.
type cachedDoc struct {
	body      []byte
	watermark []byte
	version   int64
}

// normalizeConfig validates cfg and fills Batched-mode defaults; shared by
// the standalone and hosted constructors.
func normalizeConfig(cfg Config) (Config, error) {
	if cfg.ProxyURL == "" {
		return cfg, errors.New("browser: missing ProxyURL")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.MemFraction <= 0 || cfg.MemFraction > 1 {
		return cfg, fmt.Errorf("browser: MemFraction %g out of (0,1]", cfg.MemFraction)
	}
	if cfg.IndexMode == Periodic && (cfg.Threshold <= 0 || cfg.Threshold > 1) {
		return cfg, fmt.Errorf("browser: Threshold %g out of (0,1] for periodic mode", cfg.Threshold)
	}
	if cfg.IndexMode == Batched {
		if cfg.BatchMaxDelay <= 0 {
			cfg.BatchMaxDelay = 100 * time.Millisecond
		}
		if cfg.BatchMaxCount <= 0 {
			cfg.BatchMaxCount = 128
		}
		if cfg.BatchMaxBytes <= 0 {
			cfg.BatchMaxBytes = 256 << 10
		}
		if cfg.DigestEvery < 0 {
			return cfg, fmt.Errorf("browser: DigestEvery %d must be >= 0", cfg.DigestEvery)
		}
	}
	return cfg, nil
}

// initAgent fills in the agent core — cache, doc map, tombstones — on a
// caller-allocated struct (hosts place agents in arena chunks) using the
// caller's HTTP client. Config must already be normalized.
func initAgent(a *Agent, cfg Config, client *http.Client) error {
	tc, err := cache.NewTwoTier(cfg.Policy, cfg.CacheCapacity,
		int64(float64(cfg.CacheCapacity)*cfg.MemFraction))
	if err != nil {
		return err
	}
	a.cfg = cfg
	a.cache = tc
	a.docs = make(map[string]cachedDoc)
	a.invalidated = make(map[string]int64)
	a.httpClient = client
	a.stopHeartbeat = make(chan struct{})
	a.logger = cfg.Logger
	return nil
}

// peerPaths is the peer-server route table, shared by the standalone mux
// and the AgentHost path router. Every handler is path-independent — it
// reads only query/body/headers — which is what makes prefix-routed hosting
// possible without touching the wire protocol.
var peerPaths = []string{
	"/peer/doc", "/peer/send", "/peer/onion-send", "/peer/onion",
	"/peer/resync", "/cache/push", "/cache/invalidate",
}

// dispatch maps a peer-server path to its handler (nil when unknown).
func (a *Agent) dispatch(path string) http.HandlerFunc {
	switch path {
	case "/peer/doc":
		return a.handlePeerDoc
	case "/peer/send":
		return a.handlePeerSend
	case "/peer/onion-send":
		return a.handlePeerOnionSend
	case "/peer/onion":
		return a.handlePeerOnion
	case "/peer/resync":
		return a.handlePeerResync
	case "/cache/push":
		return a.handleCachePush
	case "/cache/invalidate":
		return a.handleCacheInvalidate
	}
	return nil
}

// New starts a standalone agent: it brings up the peer server on a loopback
// port and registers with the proxy.
func New(cfg Config) (*Agent, error) {
	cfg, err := normalizeConfig(cfg)
	if err != nil {
		return nil, err
	}
	a := &Agent{}
	// Keep-alive-tuned transport toward the agent's one proxy host: the
	// stock transport's 2 idle connections per host re-dial constantly
	// under concurrent fetch + index-update traffic.
	if err := initAgent(a, cfg, &http.Client{
		Timeout:   cfg.Timeout,
		Transport: proxy.NewTransport(proxy.AgentIdleConnsPerHost),
	}); err != nil {
		return nil, err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("browser: peer listen: %w", err)
	}
	a.listener = ln
	a.peerURL = "http://" + ln.Addr().String()
	a.obs = cfg.Metrics
	if a.obs == nil {
		a.obs = obs.NewRegistry()
	}
	a.registerMetrics()
	mux := http.NewServeMux()
	for _, p := range peerPaths {
		mux.HandleFunc(p, a.dispatch(p))
	}
	mux.Handle("/metrics", a.obs.Handler())
	a.httpSrv = &http.Server{Handler: mux}
	go a.httpSrv.Serve(ln)

	if err := a.register(); err != nil {
		a.Close()
		return nil, err
	}
	// The publish queue needs the registration id/token, so it starts only
	// after a successful register.
	if cfg.IndexMode == Batched {
		pub := newPublisher(a)
		a.sink = pub
		go pub.loop()
	}
	if cfg.HeartbeatInterval > 0 {
		a.heartbeatDone = make(chan struct{})
		go a.heartbeatLoop()
	}
	return a, nil
}

// register joins the proxy and obtains id, token and public key.
func (a *Agent) register() error {
	peerURL := a.peerURL
	if a.cfg.AdvertisePeerURL != "" {
		peerURL = a.cfg.AdvertisePeerURL
	}
	body, _ := json.Marshal(proxy.RegisterRequest{PeerURL: peerURL})
	resp, err := a.httpClient.Post(a.cfg.ProxyURL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("browser: register: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("browser: register status %s", resp.Status)
	}
	var reg proxy.RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return fmt.Errorf("browser: register decode: %w", err)
	}
	pub, err := integrity.ParsePublicKey([]byte(reg.PublicKey))
	if err != nil {
		return err
	}
	relayKey, err := base64.StdEncoding.DecodeString(reg.RelayKey)
	if err != nil || len(relayKey) != 32 {
		return fmt.Errorf("browser: bad relay key from proxy")
	}
	a.id, a.token, a.pub, a.relayKey = reg.ClientID, reg.Token, pub, relayKey
	if a.logger != nil {
		a.logger.Info("registered with proxy", "client", a.id, "peer_url", peerURL)
	}
	return nil
}

// beginClose flips the agent into the closing state exactly once: the
// heartbeat loop is told to stop and the serve/store paths start refusing.
func (a *Agent) beginClose() {
	a.closeOnce.Do(func() {
		close(a.stopHeartbeat)
		a.mu.Lock()
		a.closing = true
		a.mu.Unlock()
	})
}

// isClosing reports whether Close/Kill has begun (host heartbeat pacer).
func (a *Agent) isClosing() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.closing
}

// Close departs gracefully: it stops the heartbeat loop AND waits for it to
// exit (a beat that raced the shutdown has fully completed, so it cannot
// re-animate this agent's health record after the unregister below), drains
// the Batched publish queue (final flush, so no coalesced delta is lost),
// deregisters from the proxy (POST /unregister, so the proxy drops the
// agent's index entries immediately instead of discovering the departure
// through failed fetches), and shuts the peer server down. Hosted agents
// delegate to their host, which frees the slot and flushes their share of
// the multiplexed publisher.
func (a *Agent) Close() error {
	if a.host != nil {
		a.host.remove(a, true)
		return nil
	}
	a.beginClose()
	if a.heartbeatDone != nil {
		<-a.heartbeatDone
	}
	if a.sink != nil {
		a.sink.stop(true)
	}
	if a.token != "" {
		a.unregister()
	}
	if a.httpSrv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return a.httpSrv.Shutdown(ctx)
}

// Kill terminates the agent abruptly — no unregister, no graceful drain —
// simulating a browser that crashes or loses its network. The proxy only
// learns of the departure through failed fetches and missed heartbeats.
func (a *Agent) Kill() {
	if a.host != nil {
		a.host.remove(a, false)
		return
	}
	a.beginClose()
	if a.sink != nil {
		a.sink.stop(false) // abrupt: queued deltas are dropped, no flush
	}
	if a.httpSrv != nil {
		a.httpSrv.Close()
	}
}

// releaseMemory drops the agent's cached bodies and cache accounting after
// close. Hosted fleets churn thousands of agents per run; a dead agent must
// cost a bare struct, not its full cache. Reads of the nil doc map miss and
// deletes no-op, and store() refuses once closing is set, so late handlers
// see an empty-but-valid agent.
func (a *Agent) releaseMemory() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, k := range a.cache.Keys() {
		a.cache.Remove(k)
	}
	a.docs = nil
	a.invalidated = nil
}

// unregister tells the proxy this client is leaving (best-effort).
func (a *Agent) unregister() {
	req, err := http.NewRequest(http.MethodPost, a.cfg.ProxyURL+"/unregister", nil)
	if err != nil {
		return
	}
	a.authHeaders(req)
	if resp, err := a.httpClient.Do(req); err == nil {
		proxy.DrainClose(resp)
	}
}

// heartbeatLoop posts liveness beacons until the agent closes. Closing
// heartbeatDone on exit is what lets Close order the last beat before the
// unregister.
func (a *Agent) heartbeatLoop() {
	defer close(a.heartbeatDone)
	t := time.NewTicker(a.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-a.stopHeartbeat:
			return
		case <-t.C:
			a.heartbeat()
		}
	}
}

// heartbeat posts one liveness beacon (best-effort).
func (a *Agent) heartbeat() {
	req, err := http.NewRequest(http.MethodPost, a.cfg.ProxyURL+"/heartbeat", nil)
	if err != nil {
		return
	}
	a.authHeaders(req)
	if resp, err := a.httpClient.Do(req); err == nil {
		proxy.DrainClose(resp)
	}
}

// registerMetrics exposes the agent's mutex-guarded counters as
// callback-backed families, so the request path keeps its existing single
// lock acquisition and the exposition reads through the same lock.
func (a *Agent) registerMetrics() {
	counter := func(name, help string, get func(*Metrics) int64) {
		a.obs.CounterFunc(name, help, func() int64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return get(&a.metrics)
		})
	}
	counter("baps_browser_requests_total", "Documents requested through Get.",
		func(m *Metrics) int64 { return m.Requests })
	counter("baps_browser_local_hits_total", "Requests served from the local browser cache.",
		func(m *Metrics) int64 { return m.LocalHits })
	counter("baps_browser_proxy_hits_total", "Requests served from the proxy cache.",
		func(m *Metrics) int64 { return m.ProxyHits })
	counter("baps_browser_remote_hits_total", "Requests served from a remote browser cache.",
		func(m *Metrics) int64 { return m.RemoteHits })
	counter("baps_browser_origin_misses_total", "Requests that fell through to the origin.",
		func(m *Metrics) int64 { return m.OriginMiss })
	counter("baps_browser_peer_serves_total", "Documents served to peers from this cache.",
		func(m *Metrics) int64 { return m.PeerServes })
	counter("baps_browser_tamper_seen_total", "Watermark verification failures on received documents.",
		func(m *Metrics) int64 { return m.TamperSeen })
	counter("baps_browser_index_syncs_total", "Full directory re-syncs sent to the proxy.",
		func(m *Metrics) int64 { return m.IndexSyncs })
	counter("baps_browser_index_ops_total", "Immediate index add/remove messages sent.",
		func(m *Metrics) int64 { return m.IndexOps })
	counter("baps_browser_index_batches_total", "Batched delta messages accepted by the proxy.",
		func(m *Metrics) int64 { return m.IndexBatches })
	counter("baps_browser_index_publish_failures_total", "Index messages that errored or came back non-2xx.",
		func(m *Metrics) int64 { return m.IndexPublishFailures })
	counter("baps_browser_dir_snapshot_misses_total", "Directory-snapshot entries skipped by a Keys/Peek race.",
		func(m *Metrics) int64 { return m.DirSnapshotMisses })
	counter("baps_browser_onion_relayed_total", "Onion-path hops relayed for other peers.",
		func(m *Metrics) int64 { return m.OnionRelayed })
	counter("baps_browser_pushes_accepted_total", "Proxy-initiated cache pushes stored locally.",
		func(m *Metrics) int64 { return m.PushesAccepted })
	counter("baps_browser_pushes_declined_total", "Proxy-initiated cache pushes refused (closing or tombstoned).",
		func(m *Metrics) int64 { return m.PushesDeclined })
	counter("baps_browser_invalidations_total", "Proxy-initiated invalidations applied to the local cache.",
		func(m *Metrics) int64 { return m.Invalidations })
	a.obs.GaugeFunc("baps_browser_cache_docs", "Documents in the local cache.", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.cache.Len())
	})
	a.obs.GaugeFunc("baps_browser_cache_bytes", "Bytes in the local cache.", func() float64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return float64(a.cache.Used())
	})
}

// Obs exposes the agent's metrics registry.
func (a *Agent) Obs() *obs.Registry { return a.obs }

// ID reports the proxy-assigned client id.
func (a *Agent) ID() int { return a.id }

// PeerURL reports the agent's peer-server base URL.
func (a *Agent) PeerURL() string { return a.peerURL }

// Snapshot returns a copy of the agent's metrics.
func (a *Agent) Snapshot() Metrics {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.metrics
}

// CacheLen reports the number of locally cached documents.
func (a *Agent) CacheLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.Len()
}

// HasCached reports whether url is in the local cache (no promotion).
func (a *Agent) HasCached(url string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.cache.Peek(url)
	return ok
}

// Get resolves a document: local browser cache, then the browsers-aware
// proxy (which itself tries its cache, remote browsers, and the origin).
func (a *Agent) Get(ctx context.Context, docURL string) ([]byte, Source, error) {
	a.mu.Lock()
	a.metrics.Requests++
	if _, _, ok := a.cache.GetTier(docURL); ok {
		body := a.docs[docURL].body
		a.metrics.LocalHits++
		a.mu.Unlock()
		return body, SourceLocal, nil
	}
	a.mu.Unlock()

	// Pre-register an onion waiter: under OnionForward the delivery can
	// race the /fetch response.
	onionCh, cancelOnion := a.expectOnion(docURL)
	defer cancelOnion()

	body, src, ticket, mark, version, viaOnion, err := a.fetchViaProxy(ctx, docURL, false)
	if err != nil {
		return nil, "", err
	}
	if viaOnion {
		d, derr := a.awaitOnion(onionCh)
		if derr != nil {
			// Covert path failed; retry bypassing peers.
			body, src, _, mark, version, viaOnion, err = a.fetchViaProxy(ctx, docURL, true)
			if err != nil {
				return nil, "", err
			}
			if viaOnion {
				return nil, "", fmt.Errorf("browser: proxy insisted on onion delivery with peers disabled")
			}
		} else {
			body, mark, version = d.body, d.watermark, d.version
			src = SourceRemote
		}
	}
	if a.cfg.Verify {
		if verr := a.verify(body, mark); verr != nil {
			a.mu.Lock()
			a.metrics.TamperSeen++
			a.mu.Unlock()
			if a.logger != nil {
				a.logger.Warn("watermark rejected", "url", docURL, "err", verr)
			}
			// §6.1: reject, report the delivery (the proxy maps the
			// ticket to the hidden holder), and retry bypassing peers.
			a.reportBad(ctx, docURL, ticket)
			body, src, _, mark, version, _, err = a.fetchViaProxy(ctx, docURL, true)
			if err != nil {
				return nil, "", err
			}
			if verr := a.verify(body, mark); verr != nil {
				return nil, "", verr
			}
		}
	}
	a.store(docURL, body, mark, version)
	switch src {
	case SourceProxy:
		a.addMetric(func(m *Metrics) { m.ProxyHits++ })
	case SourceRemote:
		a.addMetric(func(m *Metrics) { m.RemoteHits++ })
	default:
		a.addMetric(func(m *Metrics) { m.OriginMiss++ })
	}
	return body, src, nil
}

func (a *Agent) addMetric(f func(*Metrics)) {
	a.mu.Lock()
	f(&a.metrics)
	a.mu.Unlock()
}

// verify checks the watermark under the proxy's public key.
func (a *Agent) verify(body, mark []byte) error {
	if len(mark) == 0 {
		return errors.New("browser: missing watermark")
	}
	return integrity.Verify(a.pub, body, mark)
}

// fetchViaProxy performs GET /fetch. viaOnion reports that the proxy
// announced an out-of-band onion delivery instead of returning a body.
func (a *Agent) fetchViaProxy(ctx context.Context, docURL string, noPeer bool) (body []byte, src Source, ticket string, mark []byte, version int64, viaOnion bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		a.cfg.ProxyURL+"/fetch?url="+url.QueryEscape(docURL), nil)
	if err != nil {
		return nil, "", "", nil, 0, false, err
	}
	a.authHeaders(req)
	if noPeer {
		req.Header.Set(proxy.HeaderNoPeer, "1")
	}
	resp, err := a.httpClient.Do(req)
	if err != nil {
		return nil, "", "", nil, 0, false, fmt.Errorf("browser: fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, "", "", nil, 0, false, fmt.Errorf("browser: fetch status %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	if resp.Header.Get(proxy.HeaderOnion) == "1" {
		return nil, SourceRemote, "", nil, 0, true, nil
	}
	body, err = readBody(resp)
	if err != nil {
		return nil, "", "", nil, 0, false, err
	}
	src = Source(resp.Header.Get(proxy.HeaderSource))
	ticket = resp.Header.Get("X-BAPS-Ticket")
	if b64 := resp.Header.Get(proxy.HeaderWatermark); b64 != "" {
		mark, _ = base64.StdEncoding.DecodeString(b64)
	}
	version, _ = strconv.ParseInt(resp.Header.Get(proxy.HeaderVersion), 10, 64)
	return body, src, ticket, mark, version, false, nil
}

// reportBad files a §6.1 rejection for a direct-forward delivery.
func (a *Agent) reportBad(ctx context.Context, docURL, ticket string) {
	rep, _ := json.Marshal(proxy.BadContentReport{ClientID: a.id, URL: docURL, Ticket: ticket})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.ProxyURL+"/report-bad", bytes.NewReader(rep))
	if err != nil {
		return
	}
	a.authHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	if resp, err := a.httpClient.Do(req); err == nil {
		proxy.DrainClose(resp)
	}
}

func (a *Agent) authHeaders(req *http.Request) {
	req.Header.Set(proxy.HeaderClient, strconv.Itoa(a.id))
	req.Header.Set(proxy.HeaderToken, a.token)
}

// readBody reads a document response in one pass, pre-sizing the buffer from
// Content-Length when known and enforcing the system-wide proxy.MaxDocBytes
// cap instead of silently truncating.
func readBody(resp *http.Response) ([]byte, error) {
	if resp.ContentLength > proxy.MaxDocBytes {
		return nil, fmt.Errorf("browser: document exceeds %d bytes", proxy.MaxDocBytes)
	}
	if resp.ContentLength >= 0 {
		body := make([]byte, resp.ContentLength)
		if _, err := io.ReadFull(resp.Body, body); err != nil {
			return nil, err
		}
		return body, nil
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, proxy.MaxDocBytes+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > proxy.MaxDocBytes {
		return nil, fmt.Errorf("browser: document exceeds %d bytes", proxy.MaxDocBytes)
	}
	return body, nil
}
