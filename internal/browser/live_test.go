package browser

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"baps/internal/origin"
	"baps/internal/proxy"
)

// cluster wires an origin, a browsers-aware proxy and n agents together on
// loopback HTTP.
type cluster struct {
	origin   *origin.Server
	originTS *httptest.Server
	proxy    *proxy.Server
	agents   []*Agent
}

func startCluster(t *testing.T, n int, pcfg proxy.Config, mutate func(*Config)) *cluster {
	t.Helper()
	c := &cluster{origin: origin.New(1234)}
	c.originTS = httptest.NewServer(c.origin.Handler())
	t.Cleanup(c.originTS.Close)

	if pcfg.KeyBits == 0 {
		pcfg = proxy.DefaultConfig()
		pcfg.KeyBits = 1024 // fast test keys
	}
	p, err := proxy.New(pcfg)
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	if err := p.Start(""); err != nil {
		t.Fatalf("proxy.Start: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	c.proxy = p

	for i := 0; i < n; i++ {
		acfg := DefaultConfig(p.BaseURL())
		acfg.CacheCapacity = 1 << 20
		if mutate != nil {
			mutate(&acfg)
		}
		a, err := New(acfg)
		if err != nil {
			t.Fatalf("browser.New(%d): %v", i, err)
		}
		t.Cleanup(func() { a.Close() })
		c.agents = append(c.agents, a)
	}
	return c
}

func (c *cluster) url(path string) string { return c.originTS.URL + path }

func testProxyConfig(forward proxy.ForwardMode) proxy.Config {
	cfg := proxy.DefaultConfig()
	cfg.KeyBits = 1024
	cfg.CacheCapacity = 1 << 20
	cfg.Forward = forward
	return cfg
}

func TestEndToEndFetchForward(t *testing.T) {
	c := startCluster(t, 2, testProxyConfig(proxy.FetchForward), nil)
	ctx := context.Background()
	u := c.url("/doc/shared")

	// First access: origin fetch.
	body0, src, err := c.agents[0].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if src != SourceOrigin {
		t.Fatalf("first access source = %v, want origin", src)
	}
	// Same client again: local browser hit.
	body1, src, err := c.agents[0].Get(ctx, u)
	if err != nil || src != SourceLocal || !bytes.Equal(body0, body1) {
		t.Fatalf("re-access: src=%v err=%v equal=%v", src, err, bytes.Equal(body0, body1))
	}
	// Other client: proxy hit (the proxy cached the origin fetch).
	_, src, err = c.agents[1].Get(ctx, u)
	if err != nil || src != SourceProxy {
		t.Fatalf("cross-client: src=%v err=%v", src, err)
	}
	if c.origin.Fetches() != 1 {
		t.Fatalf("origin fetched %d times, want 1", c.origin.Fetches())
	}
}

// forceProxyEviction fills the proxy cache with filler documents fetched by
// the given agent until earlier entries are evicted.
func forceProxyEviction(t *testing.T, c *cluster, a *Agent, bytesNeeded int64) {
	t.Helper()
	ctx := context.Background()
	var total int64
	for i := 0; total < bytesNeeded; i++ {
		u := c.url("/filler/"+string(rune('a'+i%26))+string(rune('0'+i/26))) + "?size=60000"
		if _, _, err := a.Get(ctx, u); err != nil {
			t.Fatalf("filler fetch: %v", err)
		}
		total += 60000
	}
}

func TestRemoteBrowserHitFetchForward(t *testing.T) {
	c := startCluster(t, 3, testProxyConfig(proxy.FetchForward), func(ac *Config) {
		ac.CacheCapacity = 8 << 20 // browsers retain everything
	})
	ctx := context.Background()
	u := c.url("/doc/popular?size=10000")

	if _, _, err := c.agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	// Push the document out of the 1 MB proxy cache via another client so
	// agent 0's browser still holds it.
	forceProxyEviction(t, c, c.agents[2], 2<<20)

	_, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if src != SourceRemote {
		t.Fatalf("source = %v, want remote", src)
	}
	st := c.proxy.Snapshot()
	if st.RemoteHits != 1 {
		t.Fatalf("proxy remote hits = %d", st.RemoteHits)
	}
	if m := c.agents[0].Snapshot(); m.PeerServes != 1 {
		t.Fatalf("holder peer serves = %d", m.PeerServes)
	}
	// Origin must have served the doc exactly once.
	// (plus the filler fetches, which hit distinct URLs)
	if got, want := c.origin.Fetches(), int64(1+2<<20/60000+1); got != want {
		t.Logf("origin fetches = %d (want %d); filler accounting differs", got, want)
	}
}

func TestRemoteBrowserHitDirectForward(t *testing.T) {
	c := startCluster(t, 3, testProxyConfig(proxy.DirectForward), func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/direct?size=9000")

	want, _, err := c.agents[0].Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	forceProxyEviction(t, c, c.agents[2], 2<<20)

	got, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if src != SourceRemote {
		t.Fatalf("source = %v, want remote", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("direct-forward body corrupted")
	}
	// Direct-forward must not repopulate the proxy cache with the doc:
	// a third fetch by agent 2 is a remote hit again, not a proxy hit.
	_, src, err = c.agents[2].Get(ctx, u)
	if err != nil || src != SourceRemote {
		t.Fatalf("third fetch: src=%v err=%v (direct-forward must bypass proxy cache)", src, err)
	}
}

func TestWatermarkTamperDetectionFetchForward(t *testing.T) {
	c := startCluster(t, 3, testProxyConfig(proxy.FetchForward), func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/tampered?size=8000")

	want, _, err := c.agents[0].Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	// Agent 0 becomes malicious: flips a byte in everything it serves.
	c.agents[0].Tamper = func(_ string, b []byte) []byte {
		bad := append([]byte(nil), b...)
		bad[0] ^= 0xFF
		return bad
	}
	forceProxyEviction(t, c, c.agents[2], 2<<20)

	// The proxy verifies the MD5 digest, rejects the tampered body,
	// prunes the holder, and falls through to the origin.
	got, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if src != SourceOrigin {
		t.Fatalf("source = %v, want origin (tampered peer rejected)", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("requester received corrupted content")
	}
	st := c.proxy.Snapshot()
	if st.TamperRejected == 0 {
		t.Fatal("proxy did not record the tamper rejection")
	}
	if c.proxy.Index().Has(c.agents[0].ID(), c.proxy.Syms().Intern(u)) {
		t.Fatal("tampering holder still indexed for the doc")
	}
}

func TestWatermarkTamperDetectionDirectForward(t *testing.T) {
	c := startCluster(t, 3, testProxyConfig(proxy.DirectForward), func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/tampered-direct?size=8000")

	want, _, err := c.agents[0].Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	c.agents[0].Tamper = func(_ string, b []byte) []byte {
		bad := append([]byte(nil), b...)
		bad[len(bad)-1] ^= 0x55
		return bad
	}
	forceProxyEviction(t, c, c.agents[2], 2<<20)

	// Direct-forward: the requester itself verifies, reports via the
	// ticket, and retries bypassing peers.
	got, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if src != SourceOrigin {
		t.Fatalf("retry source = %v, want origin", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("requester kept corrupted content")
	}
	if m := c.agents[1].Snapshot(); m.TamperSeen != 1 {
		t.Fatalf("TamperSeen = %d", m.TamperSeen)
	}
	if c.proxy.Index().Has(c.agents[0].ID(), c.proxy.Syms().Intern(u)) {
		t.Fatal("reported holder still indexed")
	}
}

func TestInvalidationRemovesIndexEntry(t *testing.T) {
	c := startCluster(t, 2, testProxyConfig(proxy.FetchForward), nil)
	ctx := context.Background()
	u := c.url("/doc/evictme?size=4000")
	if _, _, err := c.agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	if !c.proxy.Index().Has(c.agents[0].ID(), c.proxy.Syms().Intern(u)) {
		t.Fatal("index entry missing after fetch")
	}
	if !c.agents[0].Evict(u) {
		t.Fatal("Evict = false")
	}
	if c.proxy.Index().Has(c.agents[0].ID(), c.proxy.Syms().Intern(u)) {
		t.Fatal("index entry survived invalidation")
	}
}

func TestCapacityEvictionSendsInvalidation(t *testing.T) {
	c := startCluster(t, 1, testProxyConfig(proxy.FetchForward), func(ac *Config) {
		ac.CacheCapacity = 25_000 // fits two 10 KB docs, not three
	})
	ctx := context.Background()
	u1 := c.url("/doc/a?size=10000")
	for _, u := range []string{u1, c.url("/doc/b?size=10000"), c.url("/doc/c?size=10000")} {
		if _, _, err := c.agents[0].Get(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	if c.agents[0].HasCached(u1) {
		t.Fatal("u1 should have been evicted")
	}
	if c.proxy.Index().Has(c.agents[0].ID(), c.proxy.Syms().Intern(u1)) {
		t.Fatal("index entry for evicted doc not invalidated")
	}
	if c.proxy.Index().Len() != 2 {
		t.Fatalf("index has %d entries, want 2", c.proxy.Index().Len())
	}
}

func TestPeriodicIndexSync(t *testing.T) {
	c := startCluster(t, 1, testProxyConfig(proxy.FetchForward), func(ac *Config) {
		ac.IndexMode = Periodic
		ac.Threshold = 0.9 // sync only after most of the cache changed
		ac.CacheCapacity = 1 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/batched?size=1000")
	if _, _, err := c.agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	// One insert into an empty cache immediately crosses the threshold
	// (1 change ≥ 0.9·1 resident) → a sync must have happened.
	if !c.proxy.Index().Has(c.agents[0].ID(), c.proxy.Syms().Intern(u)) {
		t.Fatal("periodic sync did not publish the directory")
	}
	// Subsequent inserts stay below the threshold until enough changes
	// accumulate.
	u2 := c.url("/doc/batched2?size=1000")
	if _, _, err := c.agents[0].Get(ctx, u2); err != nil {
		t.Fatal(err)
	}
	m := c.agents[0].Snapshot()
	if m.IndexSyncs < 1 {
		t.Fatalf("IndexSyncs = %d", m.IndexSyncs)
	}
	c.agents[0].SyncIndexNow()
	if !c.proxy.Index().Has(c.agents[0].ID(), c.proxy.Syms().Intern(u2)) {
		t.Fatal("forced sync did not publish u2")
	}
}

func TestAnonymityPeerIdentitiesHidden(t *testing.T) {
	// Under both forward modes the holder's peer server only accepts the
	// proxy's token, so a requester cannot contact a holder directly,
	// and the holder sees only proxy-originated requests.
	c := startCluster(t, 2, testProxyConfig(proxy.FetchForward), func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/anon?size=5000")
	if _, _, err := c.agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	// Requester (or any outsider) probing the holder's peer endpoint
	// without the token is refused.
	resp, err := c.agents[1].httpClient.Get(c.agents[0].PeerURL() + "/peer/doc?url=" + u)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("peer served an unauthenticated request: %d", resp.StatusCode)
	}
}

func TestIndexRecoveryAfterProxyAmnesia(t *testing.T) {
	c := startCluster(t, 2, testProxyConfig(proxy.FetchForward), nil)
	ctx := context.Background()
	for i, a := range c.agents {
		for j := 0; j < 3; j++ {
			u := c.url(fmt.Sprintf("/recover/a%dd%d?size=2000", i, j))
			if _, _, err := a.Get(ctx, u); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.proxy.Index().Len() != 6 {
		t.Fatalf("index has %d entries before amnesia", c.proxy.Index().Len())
	}
	// Simulate a proxy restart losing the in-memory index.
	for _, a := range c.agents {
		c.proxy.Index().DropClient(a.ID())
	}
	if c.proxy.Index().Len() != 0 {
		t.Fatal("amnesia setup failed")
	}
	// Recovery: the proxy pulls full directories from every browser.
	if acked := c.proxy.ResyncAll(); acked != 2 {
		t.Fatalf("resync acked by %d peers, want 2", acked)
	}
	if c.proxy.Index().Len() != 6 {
		t.Fatalf("index has %d entries after recovery, want 6", c.proxy.Index().Len())
	}
}

func TestAgentConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := DefaultConfig("http://127.0.0.1:1")
	cfg.MemFraction = 2
	if _, err := New(cfg); err == nil {
		t.Error("bad MemFraction accepted")
	}
	cfg = DefaultConfig("http://127.0.0.1:1")
	cfg.IndexMode = Periodic
	cfg.Threshold = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad Threshold accepted")
	}
	// Unreachable proxy: registration must fail cleanly.
	cfg = DefaultConfig("http://127.0.0.1:1")
	cfg.Timeout = 200 * 1e6 // 200ms
	if _, err := New(cfg); err == nil {
		t.Error("unreachable proxy accepted")
	}
}

func TestProxyCacheOnlyModeDisablePeer(t *testing.T) {
	pcfg := testProxyConfig(proxy.FetchForward)
	pcfg.DisablePeer = true
	c := startCluster(t, 2, pcfg, func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/nopeer?size=10000")
	if _, _, err := c.agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	forceProxyEviction(t, c, c.agents[0], 2<<20)
	_, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceOrigin {
		t.Fatalf("peer layer disabled but source = %v", src)
	}
}
