package browser

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baps/internal/proxy"
)

// startHost attaches an AgentHost to a running cluster's proxy.
func startHost(t *testing.T, c *cluster, mutate func(*Config)) *AgentHost {
	t.Helper()
	acfg := DefaultConfig(c.proxy.BaseURL())
	acfg.CacheCapacity = 1 << 20
	if mutate != nil {
		mutate(&acfg)
	}
	h, err := NewHost(HostConfig{Agent: acfg})
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// TestHostServesManyAgents: hosted agents behind one listener resolve
// documents end to end, and each agent's multiplexed /a/<slot> peer URL is
// registered with the proxy well enough for peer-to-peer resolution: a doc
// cached by one hosted agent is served to a sibling via the peer plane.
func TestHostServesManyAgents(t *testing.T) {
	c := startCluster(t, 0, testProxyConfig(proxy.FetchForward), nil)
	h := startHost(t, c, func(cfg *Config) { cfg.IndexMode = Immediate })

	var agents []*Agent
	for i := 0; i < 4; i++ {
		a, err := h.Spawn()
		if err != nil {
			t.Fatalf("Spawn(%d): %v", i, err)
		}
		agents = append(agents, a)
	}
	if h.Live() != 4 {
		t.Fatalf("Live() = %d, want 4", h.Live())
	}

	ctx := context.Background()
	u := c.url("/host/doc")
	if _, src, err := agents[0].Get(ctx, u); err != nil || src != SourceOrigin {
		t.Fatalf("first Get: src=%v err=%v", src, err)
	}
	// Push the doc out of the proxy's own cache so the sibling's request
	// MUST go through the peer index — proving the hosted agent's
	// multiplexed /a/<slot> callback URL round-trips.
	forceProxyEviction(t, c, agents[3], 2<<20)
	body, src, err := agents[1].Get(ctx, u)
	if err != nil || len(body) == 0 {
		t.Fatalf("sibling Get: %v", err)
	}
	if src != SourceRemote {
		t.Fatalf("sibling resolved via %v, want %v (peer serve through /a/<slot>)", src, SourceRemote)
	}
}

// TestHostBatchedIndexMultiplexed: Batched hosted agents publish through the
// host's single multiplexed publisher; entries still land in the proxy index
// under the right client identity (peer resolution works agent-to-agent).
func TestHostBatchedIndexMultiplexed(t *testing.T) {
	c := startCluster(t, 0, testProxyConfig(proxy.FetchForward), nil)
	h := startHost(t, c, func(cfg *Config) {
		cfg.IndexMode = Batched
		cfg.BatchMaxDelay = 20 * time.Millisecond
	})
	a0, err := h.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	a1, err := h.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	filler, err := h.Spawn()
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	u := c.url("/hostbatch/doc")
	if _, _, err := a0.Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	// Blocking full sync through the host's multiplexed publisher: a0's
	// directory is in the proxy index when this returns.
	a0.SyncIndexNow()
	// Evict the doc from the proxy cache so resolution must use the index.
	forceProxyEviction(t, c, filler, 2<<20)

	_, src, err := a1.Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	if src != SourceRemote {
		t.Fatalf("sibling resolved via %v, want %v (batched index entry under a0's identity)", src, SourceRemote)
	}
}

// TestHostAgentCrashDoesNotStallSiblings: killing one hosted agent abruptly
// must leave its siblings fully live — same listener, same transport, same
// publisher — and its own route answering 410 Gone.
func TestHostAgentCrashDoesNotStallSiblings(t *testing.T) {
	c := startCluster(t, 0, testProxyConfig(proxy.FetchForward), nil)
	h := startHost(t, c, func(cfg *Config) { cfg.IndexMode = Batched })

	var agents []*Agent
	for i := 0; i < 8; i++ {
		a, err := h.Spawn()
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	victim := agents[3]
	victimURL := victim.PeerURL()
	victim.Kill()
	if h.Live() != 7 {
		t.Fatalf("Live() = %d after kill, want 7", h.Live())
	}

	ctx := context.Background()
	for i, a := range agents {
		if i == 3 {
			continue
		}
		u := c.url(fmt.Sprintf("/sibling/doc%d", i))
		if _, _, err := a.Get(ctx, u); err != nil {
			t.Fatalf("sibling %d stalled after crash: %v", i, err)
		}
	}
	resp, err := http.Get(victimURL + "/peer/doc?url=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("dead slot status %d, want 410", resp.StatusCode)
	}
}

// TestHostSlotReuseReAdvertisesURL: a replacement spawned after a kill takes
// the freed slot, so it re-advertises the same /a/<slot> URL and the proxy's
// register-supersede path retires the dead registration instead of leaking
// peers. The arena cell itself must NOT be reused (stale handles stay safe).
func TestHostSlotReuseReAdvertisesURL(t *testing.T) {
	c := startCluster(t, 0, proxy.Config{}, nil)
	h := startHost(t, c, nil)

	old, err := h.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	oldURL := old.PeerURL()
	old.Kill()

	repl, err := h.Spawn()
	if err != nil {
		t.Fatal(err)
	}
	if repl.PeerURL() != oldURL {
		t.Fatalf("replacement advertises %s, want reused %s", repl.PeerURL(), oldURL)
	}
	if repl == old {
		t.Fatal("arena cell reused: stale agent handle now aliases the replacement")
	}
	if repl.isClosing() || !old.isClosing() {
		t.Fatal("kill/spawn state confusion")
	}
}

// TestHostLifecycleConcurrent is the -race exercise: spawns, closed-loop
// Gets, invalidation posts, individual kills, and the final host Close all
// overlap. Nothing may deadlock, panic, or corrupt sibling state.
func TestHostLifecycleConcurrent(t *testing.T) {
	c := startCluster(t, 0, testProxyConfig(proxy.FetchForward), nil)
	h := startHost(t, c, func(cfg *Config) {
		cfg.IndexMode = Batched
		cfg.BatchMaxDelay = 10 * time.Millisecond
	})

	const n = 24
	var (
		mu     sync.Mutex
		agents []*Agent
	)
	pick := func(i int) *Agent {
		mu.Lock()
		defer mu.Unlock()
		if len(agents) == 0 {
			return nil
		}
		return agents[i%len(agents)]
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var gets, kills atomic.Int64

	// Spawners.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				a, err := h.Spawn()
				if err != nil {
					t.Errorf("Spawn: %v", err)
					return
				}
				mu.Lock()
				agents = append(agents, a)
				mu.Unlock()
			}
		}()
	}
	// Drivers: closed-loop Gets against whatever is live.
	ctx := context.Background()
	for d := 0; d < 4; d++ {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a := pick(d*31 + i)
				if a == nil || a.isClosing() {
					continue
				}
				u := c.url(fmt.Sprintf("/conc/doc%d", i%50))
				if _, _, err := a.Get(ctx, u); err == nil {
					gets.Add(1)
				}
			}
		}()
	}
	// Killer: churns agents while the drivers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			time.Sleep(20 * time.Millisecond)
			a := pick(i * 7)
			if a == nil {
				continue
			}
			a.Kill()
			kills.Add(1)
			if repl, err := h.Spawn(); err == nil {
				mu.Lock()
				agents = append(agents, repl)
				mu.Unlock()
			}
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if gets.Load() == 0 {
		t.Fatal("no Gets completed under concurrency")
	}
	if kills.Load() == 0 {
		t.Fatal("killer never ran")
	}
	// Close with live agents still registered: must drain without hanging.
	done := make(chan error, 1)
	go func() { done <- h.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("host Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("host Close hung")
	}
	if h.Live() != 0 {
		t.Fatalf("Live() = %d after Close, want 0", h.Live())
	}
	// Everything afterwards is inert, not panicky.
	if _, err := h.Spawn(); err == nil {
		t.Fatal("Spawn after Close should fail")
	}
}

// TestHostCloseIdempotentWithAgentClose: an individual hosted agent's Close
// racing the host's Close must not double-free or deadlock.
func TestHostCloseIdempotentWithAgentClose(t *testing.T) {
	c := startCluster(t, 0, proxy.Config{}, nil)
	h := startHost(t, c, nil)
	var agents []*Agent
	for i := 0; i < 6; i++ {
		a, err := h.Spawn()
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	var wg sync.WaitGroup
	for _, a := range agents[:3] {
		a := a
		wg.Add(1)
		go func() { defer wg.Done(); a.Close() }()
	}
	wg.Add(1)
	go func() { defer wg.Done(); h.Close() }()
	wg.Wait()
	for _, a := range agents {
		a.Close() // second Close on every agent: must be a no-op
	}
	if h.Live() != 0 {
		t.Fatalf("Live() = %d, want 0", h.Live())
	}
}
