package browser

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"baps/internal/cache"
	"baps/internal/proxy"
)

// store caches a received document locally and publishes the index update
// under the configured §2 protocol. Evictions forced by the insertion are
// published as invalidations (immediate) or batched (periodic).
func (a *Agent) store(docURL string, body []byte, mark []byte, version int64) {
	a.mu.Lock()
	evicted, admitted := a.cache.Put(cache.Doc{Key: docURL, Size: int64(len(body)), Version: version})
	if admitted {
		a.bodies[docURL] = body
		a.marks[docURL] = storedMark{version: version, watermark: mark}
	}
	for _, d := range evicted {
		delete(a.bodies, d.Key)
		delete(a.marks, d.Key)
	}
	resident := a.cache.Len()
	mode := a.cfg.IndexMode
	var syncEntries []proxy.IndexEntry
	if mode == Periodic {
		a.changes += len(evicted)
		if admitted {
			a.changes++
		}
		if float64(a.changes) >= a.cfg.Threshold*float64(max(resident, 1)) {
			syncEntries = a.directoryLocked()
			a.changes = 0
		}
	}
	a.mu.Unlock()

	// Network I/O happens outside the lock.
	switch mode {
	case Immediate:
		if admitted {
			a.indexOp(true, proxy.IndexEntry{
				URL: docURL, Size: int64(len(body)), Version: version,
				Stamp: float64(time.Now().UnixNano()) / 1e9,
			})
		}
		for _, d := range evicted {
			a.indexOp(false, proxy.IndexEntry{URL: d.Key})
		}
	case Periodic:
		if syncEntries != nil {
			a.indexSync(syncEntries)
		}
	}
}

// directoryLocked snapshots the cache directory; the caller holds a.mu.
func (a *Agent) directoryLocked() []proxy.IndexEntry {
	keys := a.cache.Keys()
	entries := make([]proxy.IndexEntry, 0, len(keys))
	now := float64(time.Now().UnixNano()) / 1e9
	for _, k := range keys {
		d, ok := a.cache.Peek(k)
		if !ok {
			continue
		}
		entries = append(entries, proxy.IndexEntry{
			URL: k, Size: d.Size, Version: d.Version, Stamp: now,
		})
	}
	return entries
}

// indexOp sends one immediate add/remove message.
func (a *Agent) indexOp(add bool, entry proxy.IndexEntry) {
	path := "/index/remove"
	if add {
		path = "/index/add"
	}
	body, _ := json.Marshal(proxy.IndexUpdate{ClientID: a.id, Entry: entry})
	req, err := http.NewRequest(http.MethodPost, a.cfg.ProxyURL+path, bytes.NewReader(body))
	if err != nil {
		return
	}
	a.authHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	if resp, err := a.httpClient.Do(req); err == nil {
		proxy.DrainClose(resp)
		a.addMetric(func(m *Metrics) { m.IndexOps++ })
	}
}

// indexSync sends a periodic full re-sync.
func (a *Agent) indexSync(entries []proxy.IndexEntry) {
	body, _ := json.Marshal(proxy.IndexSync{ClientID: a.id, Entries: entries})
	req, err := http.NewRequest(http.MethodPost, a.cfg.ProxyURL+"/index/sync", bytes.NewReader(body))
	if err != nil {
		return
	}
	a.authHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	if resp, err := a.httpClient.Do(req); err == nil {
		proxy.DrainClose(resp)
		a.addMetric(func(m *Metrics) { m.IndexSyncs++ })
	}
}

// handlePeerResync lets the proxy ask this browser for a full directory
// re-sync — the recovery path after a proxy restart loses the index (§2's
// periodic update, pulled on demand). Token-authenticated like every
// proxy→browser call.
func (a *Agent) handlePeerResync(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	a.SyncIndexNow()
	w.WriteHeader(http.StatusOK)
}

// SyncIndexNow forces a full directory re-sync (used at startup/shutdown
// boundaries and by tests of the periodic protocol).
func (a *Agent) SyncIndexNow() {
	a.mu.Lock()
	entries := a.directoryLocked()
	a.changes = 0
	a.mu.Unlock()
	a.indexSync(entries)
}

// Evict drops a document from the local cache (a user clearing an entry),
// publishing the invalidation like any other eviction.
func (a *Agent) Evict(docURL string) bool {
	a.mu.Lock()
	ok := a.cache.Remove(docURL)
	delete(a.bodies, docURL)
	delete(a.marks, docURL)
	mode := a.cfg.IndexMode
	if ok && mode == Periodic {
		a.changes++
	}
	a.mu.Unlock()
	if ok && mode == Immediate {
		a.indexOp(false, proxy.IndexEntry{URL: docURL})
	}
	return ok
}

// handlePeerDoc serves GET /peer/doc?url= to the proxy (fetch-forward).
// Only the proxy knows the agent's token, so peers cannot call this
// directly — the anonymity boundary of §6.2.
func (a *Agent) handlePeerDoc(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	docURL := r.URL.Query().Get("url")
	a.mu.Lock()
	body, ok := a.bodies[docURL]
	mark := a.marks[docURL]
	if ok {
		a.cache.GetTier(docURL) // a peer read references the cache entry
		a.metrics.PeerServes++
	}
	tamper := a.Tamper
	a.mu.Unlock()
	if !ok {
		http.Error(w, "browser: not cached", http.StatusNotFound)
		return
	}
	if tamper != nil {
		body = tamper(docURL, body)
	}
	w.Header().Set(proxy.HeaderVersion, strconv.FormatInt(mark.version, 10))
	w.Header().Set(proxy.HeaderWatermark, base64.StdEncoding.EncodeToString(mark.watermark))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handlePeerSend executes a direct-forward push: the proxy supplies only an
// anonymous relay URL; the agent posts the document there.
func (a *Agent) handlePeerSend(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	var ps proxy.PeerSend
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&ps); err != nil {
		http.Error(w, "browser: bad send body", http.StatusBadRequest)
		return
	}
	if _, err := url.Parse(ps.RelayURL); err != nil || ps.URL == "" {
		http.Error(w, "browser: bad send fields", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	body, ok := a.bodies[ps.URL]
	mark := a.marks[ps.URL]
	if ok {
		a.cache.GetTier(ps.URL)
		a.metrics.PeerServes++
	}
	tamper := a.Tamper
	a.mu.Unlock()
	if !ok {
		http.Error(w, "browser: not cached", http.StatusNotFound)
		return
	}
	if tamper != nil {
		body = tamper(ps.URL, body)
	}
	req, err := http.NewRequest(http.MethodPost, ps.RelayURL, bytes.NewReader(body))
	if err != nil {
		http.Error(w, "browser: relay request", http.StatusInternalServerError)
		return
	}
	req.Header.Set(proxy.HeaderVersion, strconv.FormatInt(mark.version, 10))
	req.Header.Set(proxy.HeaderWatermark, base64.StdEncoding.EncodeToString(mark.watermark))
	resp, err := a.httpClient.Do(req)
	if err != nil {
		http.Error(w, "browser: relay push failed", http.StatusBadGateway)
		return
	}
	proxy.DrainClose(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		http.Error(w, "browser: relay push rejected: "+resp.Status, http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusOK)
}
