package browser

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"baps/internal/cache"
	"baps/internal/proxy"
)

// nowStamp is the index-entry timestamp: seconds since the epoch.
func nowStamp() float64 { return float64(time.Now().UnixNano()) / 1e9 }

// store caches a received document locally and publishes the index update
// under the configured §2 protocol. Evictions forced by the insertion are
// published as invalidations (immediate), folded into the change counter
// (periodic), or coalesced into the publish queue (batched).
func (a *Agent) store(docURL string, body []byte, mark []byte, version int64) {
	now := nowStamp()
	a.mu.Lock()
	// Nothing enters a closing agent's cache: a fetch completing mid-Close
	// would otherwise repopulate a cache the host has already released.
	if a.closing {
		a.mu.Unlock()
		return
	}
	// A tombstoned version must never re-enter the cache: an in-flight
	// fetch that raced a /cache/invalidate would otherwise resurrect the
	// stale body for peer serving. A version at or past the floor clears
	// the tombstone — the document is current again.
	if floor, dead := a.invalidated[docURL]; dead {
		if version < floor {
			a.mu.Unlock()
			return
		}
		delete(a.invalidated, docURL)
	}
	evicted, admitted := a.cache.Put(cache.Doc{Key: docURL, Size: int64(len(body)), Version: version})
	if admitted {
		a.docs[docURL] = cachedDoc{body: body, watermark: mark, version: version}
	}
	for _, d := range evicted {
		delete(a.docs, d.Key)
	}
	resident := a.cache.Len()
	mode := a.cfg.IndexMode
	var deltas []seqDelta
	if mode == Batched {
		// Seq numbers are assigned here, under the same lock as the cache
		// mutation; the enqueue itself happens after unlock.
		if admitted {
			a.deltaSeq++
			deltas = append(deltas, seqDelta{seq: a.deltaSeq, d: proxy.IndexDelta{
				URL: docURL, Size: int64(len(body)), Version: version, Stamp: now,
			}})
		}
		for _, d := range evicted {
			a.deltaSeq++
			deltas = append(deltas, seqDelta{seq: a.deltaSeq, d: proxy.IndexDelta{URL: d.Key, Remove: true}})
		}
	}
	var syncEntries []proxy.IndexEntry
	if mode == Periodic {
		a.changes += len(evicted)
		if admitted {
			a.changes++
		}
		if float64(a.changes) >= a.cfg.Threshold*float64(max(resident, 1)) {
			syncEntries = a.directoryLocked(now)
			a.changes = 0
		}
	}
	a.mu.Unlock()

	// Network I/O happens outside the lock; in Batched mode there is none
	// here at all — the publish goroutine owns it.
	switch mode {
	case Immediate:
		if admitted {
			a.indexOp(true, proxy.IndexEntry{
				URL: docURL, Size: int64(len(body)), Version: version, Stamp: now,
			})
		}
		for _, d := range evicted {
			a.indexOp(false, proxy.IndexEntry{URL: d.Key})
		}
	case Periodic:
		if syncEntries != nil {
			a.indexSync(syncEntries, 0)
		}
	case Batched:
		for _, sd := range deltas {
			a.sink.enqueue(sd)
		}
	}
}

// directoryLocked snapshots the cache directory, stamping every entry with
// the caller-supplied time; the caller holds a.mu. A key returned by Keys()
// that Peek cannot find would mean the snapshot is inconsistent — counted,
// never silently dropped.
func (a *Agent) directoryLocked(now float64) []proxy.IndexEntry {
	keys := a.cache.Keys()
	entries := make([]proxy.IndexEntry, 0, len(keys))
	for _, k := range keys {
		d, ok := a.cache.Peek(k)
		if !ok {
			a.metrics.DirSnapshotMisses++
			continue
		}
		entries = append(entries, proxy.IndexEntry{
			URL: k, Size: d.Size, Version: d.Version, Stamp: now,
		})
	}
	return entries
}

// indexPublishFailure counts one failed index message and logs it.
func (a *Agent) indexPublishFailure(kind string, err error, status int) {
	a.addMetric(func(m *Metrics) { m.IndexPublishFailures++ })
	if a.logger == nil {
		return
	}
	if err != nil {
		a.logger.Warn("index publish failed", "kind", kind, "err", err)
	} else {
		a.logger.Warn("index publish rejected", "kind", kind, "status", status)
	}
}

// indexOp sends one immediate add/remove message. Only a 2xx acceptance
// counts as a sent op; errors and rejections count as publish failures.
func (a *Agent) indexOp(add bool, entry proxy.IndexEntry) {
	path := "/index/remove"
	if add {
		path = "/index/add"
	}
	body, _ := json.Marshal(proxy.IndexUpdate{ClientID: a.id, Entry: entry})
	req, err := http.NewRequest(http.MethodPost, a.cfg.ProxyURL+path, bytes.NewReader(body))
	if err != nil {
		return
	}
	a.authHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.httpClient.Do(req)
	if err != nil {
		a.indexPublishFailure("op", err, 0)
		return
	}
	proxy.DrainClose(resp)
	if resp.StatusCode/100 != 2 {
		a.indexPublishFailure("op", nil, resp.StatusCode)
		return
	}
	a.addMetric(func(m *Metrics) { m.IndexOps++ })
}

// indexSync sends a full directory re-sync and reports acceptance. A
// non-zero gen re-seats the proxy's batch-generation counter (Batched
// mode); Periodic callers pass 0.
func (a *Agent) indexSync(entries []proxy.IndexEntry, gen uint64) bool {
	body, _ := json.Marshal(proxy.IndexSync{ClientID: a.id, Entries: entries, Gen: gen})
	req, err := http.NewRequest(http.MethodPost, a.cfg.ProxyURL+"/index/sync", bytes.NewReader(body))
	if err != nil {
		return false
	}
	a.authHeaders(req)
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.httpClient.Do(req)
	if err != nil {
		a.indexPublishFailure("sync", err, 0)
		return false
	}
	proxy.DrainClose(resp)
	if resp.StatusCode/100 != 2 {
		a.indexPublishFailure("sync", nil, resp.StatusCode)
		return false
	}
	a.addMetric(func(m *Metrics) { m.IndexSyncs++ })
	return true
}

// handlePeerResync lets the proxy ask this browser for a full directory
// re-sync — the recovery path after a proxy restart loses the index (§2's
// periodic update, pulled on demand). Token-authenticated like every
// proxy→browser call.
func (a *Agent) handlePeerResync(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	a.SyncIndexNow()
	w.WriteHeader(http.StatusOK)
}

// SyncIndexNow forces a full directory re-sync (used at startup/shutdown
// boundaries, by the proxy's /peer/resync recovery pull, and by tests). In
// Batched mode it routes through the publish goroutine so the sync
// supersedes the pending deltas and the generation counter stays coherent.
func (a *Agent) SyncIndexNow() {
	if a.sink != nil {
		a.sink.syncNow()
		return
	}
	now := nowStamp()
	a.mu.Lock()
	entries := a.directoryLocked(now)
	a.changes = 0
	a.mu.Unlock()
	a.indexSync(entries, 0)
}

// Evict drops a document from the local cache (a user clearing an entry),
// publishing the invalidation like any other eviction.
func (a *Agent) Evict(docURL string) bool {
	a.mu.Lock()
	ok := a.cache.Remove(docURL)
	delete(a.docs, docURL)
	mode := a.cfg.IndexMode
	var seq uint64
	if ok {
		switch mode {
		case Periodic:
			a.changes++
		case Batched:
			a.deltaSeq++
			seq = a.deltaSeq
		}
	}
	a.mu.Unlock()
	if ok {
		switch mode {
		case Immediate:
			a.indexOp(false, proxy.IndexEntry{URL: docURL})
		case Batched:
			a.sink.enqueue(seqDelta{seq: seq, d: proxy.IndexDelta{URL: docURL, Remove: true}})
		}
	}
	return ok
}

// handlePeerDoc serves GET /peer/doc?url= to the proxy (fetch-forward).
// Only the proxy knows the agent's token, so peers cannot call this
// directly — the anonymity boundary of §6.2.
func (a *Agent) handlePeerDoc(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	docURL := r.URL.Query().Get("url")
	a.mu.Lock()
	d, ok := a.docs[docURL]
	// Never hand out a copy the proxy has withdrawn, or anything once
	// shutdown has begun: a stale-but-validly-watermarked body leaving
	// this agent would verify at the requester and defeat invalidation.
	refused := a.closing || (ok && d.version < a.invalidated[docURL])
	if ok && !refused {
		a.cache.GetTier(docURL) // a peer read references the cache entry
		a.metrics.PeerServes++
	}
	tamper := a.Tamper
	a.mu.Unlock()
	if refused {
		http.Error(w, "browser: gone", http.StatusGone)
		return
	}
	if !ok {
		http.Error(w, "browser: not cached", http.StatusNotFound)
		return
	}
	body := d.body
	if tamper != nil {
		body = tamper(docURL, body)
	}
	w.Header().Set(proxy.HeaderVersion, strconv.FormatInt(d.version, 10))
	w.Header().Set(proxy.HeaderWatermark, base64.StdEncoding.EncodeToString(d.watermark))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// handlePeerSend executes a direct-forward push: the proxy supplies only an
// anonymous relay URL; the agent posts the document there.
func (a *Agent) handlePeerSend(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	var ps proxy.PeerSend
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&ps); err != nil {
		http.Error(w, "browser: bad send body", http.StatusBadRequest)
		return
	}
	if _, err := url.Parse(ps.RelayURL); err != nil || ps.URL == "" {
		http.Error(w, "browser: bad send fields", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	d, ok := a.docs[ps.URL]
	refused := a.closing || (ok && d.version < a.invalidated[ps.URL])
	if ok && !refused {
		a.cache.GetTier(ps.URL)
		a.metrics.PeerServes++
	}
	tamper := a.Tamper
	a.mu.Unlock()
	if refused {
		http.Error(w, "browser: gone", http.StatusGone)
		return
	}
	if !ok {
		http.Error(w, "browser: not cached", http.StatusNotFound)
		return
	}
	body := d.body
	if tamper != nil {
		body = tamper(ps.URL, body)
	}
	req, err := http.NewRequest(http.MethodPost, ps.RelayURL, bytes.NewReader(body))
	if err != nil {
		http.Error(w, "browser: relay request", http.StatusInternalServerError)
		return
	}
	req.Header.Set(proxy.HeaderVersion, strconv.FormatInt(d.version, 10))
	req.Header.Set(proxy.HeaderWatermark, base64.StdEncoding.EncodeToString(d.watermark))
	resp, err := a.httpClient.Do(req)
	if err != nil {
		http.Error(w, "browser: relay push failed", http.StatusBadGateway)
		return
	}
	proxy.DrainClose(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		http.Error(w, "browser: relay push rejected: "+resp.Status, http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusOK)
}
