package browser

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"baps/internal/proxy"
)

// maxTombstones bounds the invalidated-URL tombstone set. At the cap, the
// oldest-by-iteration entry is dropped; an invalidation for a document that
// ever reappears through the proxy arrives with a higher version anyway.
const maxTombstones = 4096

// handleCachePush ingests a proxy-initiated prefetch: the proxy pushes a
// hot document (body + version + watermark) into this cache so future peer
// lookups can resolve here. Token-authenticated like every proxy→browser
// call; the watermark is verified before the body is stored, so a push can
// never plant unsigned content.
func (a *Agent) handleCachePush(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "browser: POST only", http.StatusMethodNotAllowed)
		return
	}
	docURL := r.URL.Query().Get("url")
	if docURL == "" {
		http.Error(w, "browser: missing url", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, proxy.MaxDocBytes+1))
	if err != nil {
		http.Error(w, "browser: short push body", http.StatusBadRequest)
		return
	}
	if int64(len(body)) > proxy.MaxDocBytes {
		http.Error(w, "browser: push too large", http.StatusRequestEntityTooLarge)
		return
	}
	version, _ := strconv.ParseInt(r.Header.Get(proxy.HeaderVersion), 10, 64)
	mark, _ := base64.StdEncoding.DecodeString(r.Header.Get(proxy.HeaderWatermark))
	if a.cfg.Verify {
		if err := a.verify(body, mark); err != nil {
			a.addMetric(func(m *Metrics) { m.TamperSeen++ })
			http.Error(w, "browser: bad watermark", http.StatusBadRequest)
			return
		}
	}
	a.mu.Lock()
	closing := a.closing
	floor := a.invalidated[docURL]
	a.mu.Unlock()
	switch {
	case closing:
		a.addMetric(func(m *Metrics) { m.PushesDeclined++ })
		http.Error(w, "browser: closing", http.StatusConflict)
		return
	case version < floor:
		a.addMetric(func(m *Metrics) { m.PushesDeclined++ })
		http.Error(w, "browser: version invalidated", http.StatusGone)
		return
	}
	a.store(docURL, body, mark, version)
	a.addMetric(func(m *Metrics) { m.PushesAccepted++ })
	w.WriteHeader(http.StatusNoContent)
}

// handleCacheInvalidate withdraws a document the proxy observed modified:
// any local copy older than the announced version is dropped and the URL
// is tombstoned at that floor, so an in-flight stale delivery can neither
// be re-stored nor served to a peer afterwards. The proxy drops this
// agent's index entry itself, so no index message is published back.
func (a *Agent) handleCacheInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "browser: POST only", http.StatusMethodNotAllowed)
		return
	}
	var req proxy.InvalidateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.URL == "" {
		http.Error(w, "browser: bad invalidate body", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	// A closing agent's maps may already be released (hosted agents hand
	// memory back to the arena); there is nothing left worth tombstoning.
	if a.closing {
		a.mu.Unlock()
		http.Error(w, "browser: closing", http.StatusConflict)
		return
	}
	if req.Version > a.invalidated[req.URL] {
		if len(a.invalidated) >= maxTombstones {
			for k := range a.invalidated {
				delete(a.invalidated, k)
				break
			}
		}
		a.invalidated[req.URL] = req.Version
	}
	if d, held := a.docs[req.URL]; held && d.version < req.Version {
		a.cache.Remove(req.URL)
		delete(a.docs, req.URL)
	}
	a.metrics.Invalidations++
	a.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}
