package browser

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"baps/internal/proxy"
)

// TestConcurrentClusterLoad hammers the live system from every agent at
// once: correctness (every response matches the origin's deterministic
// body) and liveness under contention. Run with -race in CI.
func TestConcurrentClusterLoad(t *testing.T) {
	pcfg := testProxyConfig(proxy.FetchForward)
	pcfg.CacheCapacity = 512 << 10 // small: force evictions + peer traffic
	c := startCluster(t, 4, pcfg, func(ac *Config) {
		ac.CacheCapacity = 4 << 20
	})
	ctx := context.Background()

	const perAgent = 60
	const docs = 25
	var wg sync.WaitGroup
	errs := make(chan error, len(c.agents)*perAgent)
	for ai, a := range c.agents {
		wg.Add(1)
		go func(ai int, a *Agent) {
			defer wg.Done()
			for i := 0; i < perAgent; i++ {
				d := (i*7 + ai*3) % docs
				size := 2000 + d*137
				u := c.url(fmt.Sprintf("/load/doc%d?size=%d", d, size))
				body, _, err := a.Get(ctx, u)
				if err != nil {
					errs <- fmt.Errorf("agent %d: %w", ai, err)
					return
				}
				want := c.origin.Body(fmt.Sprintf("/load/doc%d", d), 0, int64(size))
				if !bytes.Equal(body, want) {
					errs <- fmt.Errorf("agent %d: body mismatch for doc%d", ai, d)
					return
				}
			}
		}(ai, a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := c.proxy.Snapshot()
	if st.Requests == 0 {
		t.Fatal("no requests reached the proxy")
	}
	var localTotal int64
	for _, a := range c.agents {
		m := a.Snapshot()
		localTotal += m.LocalHits
		if m.Requests != perAgent {
			t.Errorf("agent recorded %d requests, want %d", m.Requests, perAgent)
		}
	}
	if localTotal == 0 {
		t.Error("no local hits under a looping workload")
	}
	t.Logf("proxy: %+v; local hits %d", st, localTotal)
}

// TestConcurrentLoadDirectForward repeats the hammer under the anonymous
// relay mode, which exercises the ticket store and relay sessions
// concurrently.
func TestConcurrentLoadDirectForward(t *testing.T) {
	pcfg := testProxyConfig(proxy.DirectForward)
	pcfg.CacheCapacity = 256 << 10
	c := startCluster(t, 3, pcfg, func(ac *Config) {
		ac.CacheCapacity = 4 << 20
	})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for ai, a := range c.agents {
		wg.Add(1)
		go func(ai int, a *Agent) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				u := c.url(fmt.Sprintf("/dload/doc%d?size=4000", (i+ai)%12))
				if _, _, err := a.Get(ctx, u); err != nil {
					errs <- fmt.Errorf("agent %d: %w", ai, err)
					return
				}
			}
		}(ai, a)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
