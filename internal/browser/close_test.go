package browser

import (
	"encoding/base64"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"baps/internal/integrity"
	"baps/internal/proxy"
)

// stubProxy is a minimal registration endpoint that records the ORDER of
// heartbeat completions relative to the unregister, with heartbeats slowed
// down so an in-flight beat has every chance to straddle Close.
type stubProxy struct {
	ts *httptest.Server

	mu           sync.Mutex
	beatsDone    []time.Time
	unregisterAt time.Time
}

func newStubProxy(t *testing.T) *stubProxy {
	t.Helper()
	signer, err := integrity.NewSigner(1024)
	if err != nil {
		t.Fatal(err)
	}
	pubPEM, err := integrity.MarshalPublicKey(signer.Public())
	if err != nil {
		t.Fatal(err)
	}
	relayKey := base64.StdEncoding.EncodeToString(make([]byte, 32))

	sp := &stubProxy{}
	mux := http.NewServeMux()
	mux.HandleFunc("/register", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(proxy.RegisterResponse{
			ClientID: 1, Token: "tok", PublicKey: string(pubPEM), RelayKey: relayKey,
		})
	})
	mux.HandleFunc("/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond) // a beat in flight during Close
		w.WriteHeader(http.StatusNoContent)
		sp.mu.Lock()
		sp.beatsDone = append(sp.beatsDone, time.Now())
		sp.mu.Unlock()
	})
	mux.HandleFunc("/unregister", func(w http.ResponseWriter, r *http.Request) {
		sp.mu.Lock()
		sp.unregisterAt = time.Now()
		sp.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	sp.ts = httptest.NewServer(mux)
	t.Cleanup(sp.ts.Close)
	return sp
}

// TestCloseStopsHeartbeatBeforeUnregister is the regression test for the
// shutdown ordering bug: Close must stop the heartbeat loop AND wait for an
// in-flight beat to finish before posting /unregister. A beat that completes
// after the unregister would re-animate the proxy's health record for a
// client that no longer exists, pinning a dead peer in the routing tables
// until the silence sweeper notices.
func TestCloseStopsHeartbeatBeforeUnregister(t *testing.T) {
	sp := newStubProxy(t)

	cfg := DefaultConfig(sp.ts.URL)
	cfg.HeartbeatInterval = 10 * time.Millisecond // beats far faster than the 50ms stall
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Let several beats pile up against the slow endpoint, then close while
	// one is guaranteed to be in flight.
	time.Sleep(120 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Let any straggler beat (one Close failed to wait for) reach the stub:
	// the bug is precisely a beat that lands after Close has returned.
	time.Sleep(150 * time.Millisecond)

	sp.mu.Lock()
	defer sp.mu.Unlock()
	if len(sp.beatsDone) == 0 {
		t.Fatal("no heartbeat ever completed; the test exercised nothing")
	}
	if sp.unregisterAt.IsZero() {
		t.Fatal("Close never unregistered")
	}
	for i, done := range sp.beatsDone {
		if done.After(sp.unregisterAt) {
			t.Fatalf("heartbeat %d completed %v AFTER the unregister — Close did not wait for the heartbeat loop",
				i, done.Sub(sp.unregisterAt))
		}
	}
}
