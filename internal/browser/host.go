package browser

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"baps/internal/proxy"
)

// hostChunk is the arena granularity: agents are placed into fixed-size
// chunks so growing the fleet never moves a live Agent (drivers hold *Agent
// across Spawn calls) and the allocator is a bump pointer, not 50k separate
// heap objects for the GC to trace.
const hostChunk = 256

// HostConfig parameterizes an AgentHost.
type HostConfig struct {
	// Agent is the template config every hosted agent starts from. Its
	// HeartbeatInterval drives the host's shared heartbeat pacer (the
	// per-agent loop is disabled — one goroutine beats the whole fleet);
	// its AdvertisePeerURL is overridden with the host's multiplexed
	// /a/<slot> callback URL.
	Agent Config
	// Addr is the listen address; empty means a loopback ephemeral port.
	Addr string
	// FlushMaxDeltas / FlushMaxBytes bound the host publisher's aggregate
	// pending set across all hosted agents (defaults 2048 / 1 MiB). The
	// per-agent BatchMaxDelay from the template is the flush interval.
	FlushMaxDeltas int
	FlushMaxBytes  int64
	// Logger, when non-nil, receives host-level structured logs.
	Logger *slog.Logger
}

// AgentHost serves N hosted agents behind ONE http.Server, ONE listener, and
// ONE tuned transport to the proxy, with all Batched-mode index traffic
// multiplexed onto a single publisher goroutine. A hosted agent costs a
// struct in a host-owned arena — no per-agent goroutines, sockets, or conn
// pools — which is what lets one box carry tens of thousands of live agents.
//
// On the wire nothing changes for the proxy: each agent registers its own
// /a/<slot>-prefixed callback URL, holds its own token, and keeps its own
// index generation counter, so fetch-forward, direct-forward, onion routing,
// prefetch pushes, and invalidations all work against hosted agents
// unmodified.
type AgentHost struct {
	cfg     HostConfig
	client  *http.Client
	ln      net.Listener
	srv     *http.Server
	baseURL string
	logger  *slog.Logger
	pub     *hostPublisher

	mu sync.RWMutex
	// slots maps the routed <slot> id to the live agent occupying it; nil
	// when vacant. Slot ids are recycled through free so a churn-replaced
	// agent re-advertises the SAME URL and the proxy's register-supersede
	// path retires the predecessor instead of leaking a peer record.
	slots []*Agent
	free  []int
	// chunks is the agent arena. Cells are never reused: a driver may hold
	// a *Agent long after the agent died, and a recycled cell would turn
	// that stale pointer into a live-but-wrong agent. Dead cells cost a
	// bare struct (releaseMemory drops their maps and cache).
	chunks [][]Agent
	fill   int // occupancy of the last chunk
	live   int
	closed bool
	// cursor round-robins the heartbeat pacer across slots.
	cursor int

	stopHB chan struct{}
	hbDone chan struct{}
}

// NewHost starts the shared peer server and publisher; agents are added with
// Spawn.
func NewHost(cfg HostConfig) (*AgentHost, error) {
	agentCfg, err := normalizeConfig(cfg.Agent)
	if err != nil {
		return nil, err
	}
	cfg.Agent = agentCfg
	if cfg.FlushMaxDeltas <= 0 {
		cfg.FlushMaxDeltas = 2048
	}
	if cfg.FlushMaxBytes <= 0 {
		cfg.FlushMaxBytes = 1 << 20
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("browser: host listen: %w", err)
	}
	h := &AgentHost{
		cfg:     cfg,
		ln:      ln,
		baseURL: "http://" + ln.Addr().String(),
		logger:  cfg.Logger,
		// All hosted agents share one pool toward the one proxy host, so
		// it is sized like the proxy's origin pool, not a single agent's.
		client: &http.Client{
			Timeout:   agentCfg.Timeout,
			Transport: proxy.NewTransport(proxy.OriginIdleConnsPerHost),
		},
	}
	h.srv = &http.Server{Handler: http.HandlerFunc(h.route)}
	go h.srv.Serve(ln)
	if agentCfg.IndexMode == Batched {
		h.pub = newHostPublisher(h)
		go h.pub.loop()
	}
	if iv := agentCfg.HeartbeatInterval; iv > 0 {
		h.stopHB = make(chan struct{})
		h.hbDone = make(chan struct{})
		go h.heartbeatLoop(iv)
	}
	return h, nil
}

// BaseURL reports the host's shared peer-server base URL.
func (h *AgentHost) BaseURL() string { return h.baseURL }

// Live reports the number of live hosted agents.
func (h *AgentHost) Live() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.live
}

// Agents snapshots the live hosted agents.
func (h *AgentHost) Agents() []*Agent {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Agent, 0, h.live)
	for _, a := range h.slots {
		if a != nil {
			out = append(out, a)
		}
	}
	return out
}

// Spawn creates one hosted agent: a slot is assigned, the agent registers
// with the proxy advertising the host's /a/<slot> callback URL, and its
// index publishing is attached to the host's multiplexed publisher.
func (h *AgentHost) Spawn() (*Agent, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, errors.New("browser: host closed")
	}
	var slot int
	if n := len(h.free); n > 0 {
		slot = h.free[n-1]
		h.free = h.free[:n-1]
	} else {
		slot = len(h.slots)
		h.slots = append(h.slots, nil)
	}
	if len(h.chunks) == 0 || h.fill == hostChunk {
		h.chunks = append(h.chunks, make([]Agent, hostChunk))
		h.fill = 0
	}
	a := &h.chunks[len(h.chunks)-1][h.fill]
	h.fill++
	h.mu.Unlock()

	cfg := h.cfg.Agent
	cfg.AdvertisePeerURL = h.baseURL + "/a/" + strconv.Itoa(slot)
	// The host pacer beats for everyone; a per-agent loop would undo the
	// goroutine savings.
	cfg.HeartbeatInterval = 0
	if err := initAgent(a, cfg, h.client); err != nil {
		h.releaseSlot(slot)
		return nil, err
	}
	a.host = h
	a.slot = slot
	a.peerURL = cfg.AdvertisePeerURL
	if err := a.register(); err != nil {
		h.releaseSlot(slot)
		return nil, err
	}
	if cfg.IndexMode == Batched {
		a.sink = &hostSink{p: h.pub, a: a}
	}
	h.mu.Lock()
	h.slots[slot] = a
	h.live++
	h.mu.Unlock()
	return a, nil
}

// releaseSlot returns a never-published slot to the free list.
func (h *AgentHost) releaseSlot(slot int) {
	h.mu.Lock()
	h.free = append(h.free, slot)
	h.mu.Unlock()
}

// remove tears one hosted agent down; Agent.Close/Kill delegate here. The
// slot is vacated FIRST so the shared server stops routing to the agent (410
// Gone) before its state unwinds, then the agent's share of the multiplexed
// publisher is flushed (graceful) or dropped, the proxy is told (graceful),
// and the memory goes back to the heap.
func (h *AgentHost) remove(a *Agent, graceful bool) {
	h.mu.Lock()
	if a.slot < len(h.slots) && h.slots[a.slot] == a {
		h.slots[a.slot] = nil
		h.free = append(h.free, a.slot)
		h.live--
	}
	h.mu.Unlock()
	a.beginClose()
	if a.sink != nil {
		a.sink.stop(graceful)
	}
	if graceful && a.token != "" {
		a.unregister()
	}
	a.releaseMemory()
}

// Close shuts the host down gracefully: every hosted agent departs as if
// individually Closed (final index flush + unregister), then the shared
// publisher and server stop.
func (h *AgentHost) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.mu.Unlock()
	if h.stopHB != nil {
		close(h.stopHB)
		<-h.hbDone
	}
	for _, a := range h.Agents() {
		h.remove(a, true)
	}
	if h.pub != nil {
		h.pub.stop(true)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return h.srv.Shutdown(ctx)
}

// Kill terminates the host abruptly — the server drops its listener and
// in-flight connections, nothing unregisters, no index flush — simulating a
// whole machine of hosted browsers going dark at once. The proxy discovers
// the departure through failed fetches and missed heartbeats, agent by
// agent.
func (h *AgentHost) Kill() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	h.mu.Unlock()
	h.srv.Close()
	if h.stopHB != nil {
		close(h.stopHB)
		<-h.hbDone
	}
	if h.pub != nil {
		h.pub.stop(false)
	}
	for _, a := range h.Agents() {
		h.mu.Lock()
		if a.slot < len(h.slots) && h.slots[a.slot] == a {
			h.slots[a.slot] = nil
			h.live--
		}
		h.mu.Unlock()
		a.beginClose()
		a.releaseMemory()
	}
}

// route is the shared server's handler: /a/<slot>/<peer-path> resolves the
// slot under a read lock and dispatches to the hosted agent's ordinary
// handler. A vacant slot answers 410 Gone — exactly what a departed
// standalone agent's dead listener means to the proxy — so churn needs no
// proxy-side changes.
func (h *AgentHost) route(w http.ResponseWriter, r *http.Request) {
	rest, ok := strings.CutPrefix(r.URL.Path, "/a/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 {
		http.NotFound(w, r)
		return
	}
	slot, err := strconv.Atoi(rest[:slash])
	if err != nil || slot < 0 {
		http.NotFound(w, r)
		return
	}
	h.mu.RLock()
	var a *Agent
	if slot < len(h.slots) {
		a = h.slots[slot]
	}
	h.mu.RUnlock()
	if a == nil {
		http.Error(w, "host: agent gone", http.StatusGone)
		return
	}
	fn := a.dispatch(rest[slash:])
	if fn == nil {
		http.NotFound(w, r)
		return
	}
	fn(w, r)
}

// heartbeatLoop is the shared pacer: every tick it beats just enough agents
// (round-robin over the slots) that each one is covered once per interval.
// One goroutine and a smooth beat rate replace N timers firing in lockstep.
func (h *AgentHost) heartbeatLoop(interval time.Duration) {
	defer close(h.hbDone)
	tick := time.Second
	if interval < tick {
		tick = interval
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-h.stopHB:
			return
		case <-t.C:
			for _, a := range h.beatSet(tick, interval) {
				if !a.isClosing() {
					a.heartbeat()
				}
			}
		}
	}
}

// beatSet picks the next round-robin share of live agents to beat this tick:
// ceil(live × tick ∕ interval), so the whole fleet is covered once per
// interval regardless of size.
func (h *AgentHost) beatSet(tick, interval time.Duration) []*Agent {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.live == 0 || len(h.slots) == 0 {
		return nil
	}
	k := (h.live*int(tick) + int(interval) - 1) / int(interval)
	if k < 1 {
		k = 1
	}
	out := make([]*Agent, 0, k)
	for scanned := 0; scanned < len(h.slots) && len(out) < k; scanned++ {
		h.cursor = (h.cursor + 1) % len(h.slots)
		if a := h.slots[h.cursor]; a != nil {
			out = append(out, a)
		}
	}
	return out
}
