package browser

import (
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"baps/internal/anonymity"
	"baps/internal/proxy"
)

// onionDeliveryMsg is what surfaces at the requester after opening the
// sealed payload.
type onionDeliveryMsg struct {
	body      []byte
	watermark []byte
	version   int64
}

// expectOnion registers a waiter for an onion delivery of docURL. Callers
// must invoke the returned cancel func.
func (a *Agent) expectOnion(docURL string) (<-chan onionDeliveryMsg, func()) {
	ch := make(chan onionDeliveryMsg, 1)
	a.mu.Lock()
	if a.pendingOnion == nil {
		a.pendingOnion = make(map[string]chan onionDeliveryMsg)
	}
	a.pendingOnion[docURL] = ch
	a.mu.Unlock()
	return ch, func() {
		a.mu.Lock()
		delete(a.pendingOnion, docURL)
		a.mu.Unlock()
	}
}

// handlePeerOnionSend executes the proxy's instruction to launch a document
// onto a covert path (the agent is the holder). Only the proxy knows the
// agent's token.
func (a *Agent) handlePeerOnionSend(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(proxy.HeaderToken) != a.token {
		http.Error(w, "browser: forbidden", http.StatusForbidden)
		return
	}
	var send proxy.PeerOnionSend
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&send); err != nil || send.URL == "" || send.FirstAddr == "" {
		http.Error(w, "browser: bad onion-send", http.StatusBadRequest)
		return
	}
	route, err := base64.StdEncoding.DecodeString(send.RouteB64)
	if err != nil {
		http.Error(w, "browser: bad route", http.StatusBadRequest)
		return
	}
	ephemeral, err := base64.StdEncoding.DecodeString(send.EphemeralKeyB64)
	if err != nil {
		http.Error(w, "browser: bad key", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	d, ok := a.docs[send.URL]
	refused := a.closing || (ok && d.version < a.invalidated[send.URL])
	if ok && !refused {
		a.cache.GetTier(send.URL)
		a.metrics.PeerServes++
	}
	tamper := a.Tamper
	a.mu.Unlock()
	if refused {
		http.Error(w, "browser: gone", http.StatusGone)
		return
	}
	if !ok {
		http.Error(w, "browser: not cached", http.StatusNotFound)
		return
	}
	body := d.body
	if tamper != nil {
		body = tamper(send.URL, body)
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(proxy.OnionDelivery{
		URL: send.URL, Version: d.version, Watermark: d.watermark, Body: body,
	}); err != nil {
		http.Error(w, "browser: encode", http.StatusInternalServerError)
		return
	}
	sealed, err := anonymity.Seal(ephemeral, payload.Bytes())
	if err != nil {
		http.Error(w, "browser: seal", http.StatusInternalServerError)
		return
	}
	if err := a.forwardOnion(send.FirstAddr, route, sealed); err != nil {
		http.Error(w, fmt.Sprintf("browser: launch: %v", err), http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// forwardOnion posts a (route, sealed-payload) pair to the next hop.
func (a *Agent) forwardOnion(addr string, route, sealed []byte) error {
	req, err := http.NewRequest(http.MethodPost, addr+"/peer/onion", bytes.NewReader(sealed))
	if err != nil {
		return err
	}
	req.Header.Set(proxy.HeaderOnionRoute, base64.StdEncoding.EncodeToString(route))
	resp, err := a.httpClient.Do(req)
	if err != nil {
		return err
	}
	proxy.DrainClose(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("hop status %s", resp.Status)
	}
	return nil
}

// handlePeerOnion receives an onion hop: the agent peels one route layer
// with its relay key. A middle layer names the next hop (the sealed payload
// is forwarded untouched); the terminal layer yields the document URL and
// the ephemeral key that opens the payload, which is handed to the waiting
// Get. Deliveries are authenticated by the route layer's AES-GCM tag — a
// caller without a proxy-built onion for this agent cannot produce one.
func (a *Agent) handlePeerOnion(w http.ResponseWriter, r *http.Request) {
	routeB64 := r.Header.Get(proxy.HeaderOnionRoute)
	route, err := base64.StdEncoding.DecodeString(routeB64)
	if err != nil || len(route) == 0 {
		http.Error(w, "browser: bad onion route", http.StatusBadRequest)
		return
	}
	sealed, err := io.ReadAll(io.LimitReader(r.Body, 192<<20))
	if err != nil {
		http.Error(w, "browser: onion body", http.StatusBadRequest)
		return
	}
	next, rest, final, err := anonymity.PeelRoute(a.relayKey, route)
	if err != nil {
		http.Error(w, "browser: not for me", http.StatusForbidden)
		return
	}
	if !final {
		a.addMetric(func(m *Metrics) { m.OnionRelayed++ })
		if err := a.forwardOnion(next, rest, sealed); err != nil {
			http.Error(w, "browser: forward failed", http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	var fin proxy.OnionFinal
	if err := gob.NewDecoder(bytes.NewReader(rest)).Decode(&fin); err != nil {
		http.Error(w, "browser: bad terminal layer", http.StatusBadRequest)
		return
	}
	plain, err := anonymity.Open(fin.Key, sealed)
	if err != nil {
		http.Error(w, "browser: payload authentication failed", http.StatusForbidden)
		return
	}
	var d proxy.OnionDelivery
	if err := gob.NewDecoder(bytes.NewReader(plain)).Decode(&d); err != nil {
		http.Error(w, "browser: bad delivery", http.StatusBadRequest)
		return
	}
	if d.URL != fin.URL {
		http.Error(w, "browser: delivery URL mismatch", http.StatusBadRequest)
		return
	}
	a.mu.Lock()
	ch := a.pendingOnion[d.URL]
	a.mu.Unlock()
	if ch == nil {
		// Unsolicited (or late) delivery; drop it.
		w.WriteHeader(http.StatusGone)
		return
	}
	select {
	case ch <- onionDeliveryMsg{body: d.Body, watermark: d.Watermark, version: d.Version}:
	default:
	}
	w.WriteHeader(http.StatusOK)
}

// awaitOnion blocks for an announced onion delivery.
func (a *Agent) awaitOnion(ch <-chan onionDeliveryMsg) (onionDeliveryMsg, error) {
	select {
	case d := <-ch:
		return d, nil
	case <-time.After(a.cfg.Timeout):
		return onionDeliveryMsg{}, fmt.Errorf("browser: onion delivery timed out")
	}
}
