package browser

import (
	"bytes"
	"context"
	"encoding/base64"
	"net/http"
	"strings"
	"testing"

	"baps/internal/proxy"
)

func onionProxyConfig(relays int) proxy.Config {
	cfg := testProxyConfig(proxy.OnionForward)
	cfg.OnionRelays = relays
	return cfg
}

func TestOnionForwardEndToEnd(t *testing.T) {
	// 4 agents: holder, requester, and two relay candidates.
	c := startCluster(t, 4, onionProxyConfig(1), func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/onion?size=15000")

	want, _, err := c.agents[0].Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	forceProxyEviction(t, c, c.agents[3], 2<<20)

	got, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if src != SourceRemote {
		t.Fatalf("source = %v, want remote", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("onion delivery corrupted the body")
	}
	// The body must not have entered the proxy cache.
	st := c.proxy.Snapshot()
	if st.RemoteHits != 1 {
		t.Fatalf("remote hits = %d", st.RemoteHits)
	}
	// A relay really participated: exactly one of agents 2/3 relayed.
	relayed := c.agents[2].Snapshot().OnionRelayed + c.agents[3].Snapshot().OnionRelayed
	if relayed != 1 {
		t.Fatalf("relayed hops = %d, want 1", relayed)
	}
	// Holder served; requester cached the doc for later local hits.
	if c.agents[0].Snapshot().PeerServes != 1 {
		t.Fatal("holder did not serve")
	}
	if _, src, _ := c.agents[1].Get(ctx, u); src != SourceLocal {
		t.Fatalf("requester did not cache onion delivery: %v", src)
	}
}

func TestOnionForwardZeroRelays(t *testing.T) {
	c := startCluster(t, 2, onionProxyConfig(0), func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/onion0?size=9000")
	if _, _, err := c.agents[0].Get(ctx, u); err != nil {
		t.Fatal(err)
	}
	forceProxyEviction(t, c, c.agents[0], 2<<20)
	_, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if src != SourceRemote {
		t.Fatalf("source = %v, want remote", src)
	}
}

func TestOnionForwardTamperDetected(t *testing.T) {
	c := startCluster(t, 3, onionProxyConfig(1), func(ac *Config) {
		ac.CacheCapacity = 8 << 20
	})
	ctx := context.Background()
	u := c.url("/doc/onion-tamper?size=8000")
	want, _, err := c.agents[0].Get(ctx, u)
	if err != nil {
		t.Fatal(err)
	}
	c.agents[0].Tamper = func(_ string, b []byte) []byte {
		bad := append([]byte(nil), b...)
		bad[0] ^= 0x01
		return bad
	}
	forceProxyEviction(t, c, c.agents[2], 2<<20)

	got, src, err := c.agents[1].Get(ctx, u)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	// The requester verifies the watermark on the onion payload, rejects
	// it, and retries with peers bypassed.
	if src != SourceOrigin {
		t.Fatalf("source = %v, want origin after tamper rejection", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("requester kept tampered content")
	}
	if c.agents[1].Snapshot().TamperSeen != 1 {
		t.Fatal("tamper not recorded")
	}
}

func TestOnionUnsolicitedDeliveryRejected(t *testing.T) {
	c := startCluster(t, 2, onionProxyConfig(1), nil)
	// A random POST to /peer/onion without a valid route layer for this
	// agent must be refused: outsiders cannot inject documents.
	req, err := http.NewRequest(http.MethodPost, c.agents[0].PeerURL()+"/peer/onion",
		strings.NewReader("garbage-payload"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(proxy.HeaderOnionRoute, base64.StdEncoding.EncodeToString([]byte("not-a-valid-onion-layer-at-all-0123456789")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unsolicited onion accepted: %d", resp.StatusCode)
	}
	// Missing route header is a bad request.
	resp2, err := http.Post(c.agents[0].PeerURL()+"/peer/onion", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing route header: %d", resp2.StatusCode)
	}
}

func TestOnionSendRequiresToken(t *testing.T) {
	c := startCluster(t, 2, onionProxyConfig(1), nil)
	resp, err := http.Post(c.agents[0].PeerURL()+"/peer/onion-send", "application/json",
		strings.NewReader(`{"url":"x","first_addr":"http://y"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("onion-send without token: %d", resp.StatusCode)
	}
}
