package proxy

import (
	"errors"
	"fmt"
	"hash"
	"io"
	"net/http"

	"baps/internal/bufpool"
)

// MaxDocBytes is the largest document body the live system will carry on any
// path — origin fetch, peer fetch-forward, direct-forward relay, or browser
// agent receive. Oversized bodies are rejected with ErrDocTooLarge (and a
// metric) rather than silently truncated.
const MaxDocBytes int64 = 128 << 20

// maxDocBytes is the live limit; tests shrink it to exercise the rejection
// path without moving 128 MiB bodies.
var maxDocBytes = MaxDocBytes

// ErrDocTooLarge reports a body that exceeded MaxDocBytes.
var ErrDocTooLarge = errors.New("proxy: document exceeds max size")

// drainCap bounds how much of a response body a drain will consume to hand
// the connection back to the keep-alive pool. Anything longer is cheaper to
// abandon (closing the connection) than to read.
const drainCap = 256 << 10

// DrainClose discards up to drainCap bytes of resp.Body through a pooled
// buffer and closes it. It is the required way to finish with a response
// whose body is irrelevant: the bounded drain keeps the connection reusable
// without letting a hostile or buggy server feed an unbounded discard
// (io.Copy(io.Discard, body) reads forever). Shared with the browser agent.
func DrainClose(resp *http.Response) {
	if resp == nil || resp.Body == nil {
		return
	}
	buf := bufpool.Get(bufpool.TierSmall)
	io.CopyBuffer(io.Discard, io.LimitReader(resp.Body, drainCap), *buf)
	bufpool.Put(buf)
	resp.Body.Close()
}

// readDoc reads a full document body in one pass, capped at maxDocBytes and
// hashing into h (when non-nil) as bytes arrive — the watermark digest costs
// no second sweep over the body. contentLength, when known (>= 0), pre-sizes
// the destination buffer exactly, replacing io.ReadAll's quadratic-ish grow
// pattern with a single allocation. The returned buffer is freshly owned by
// the caller.
func readDoc(r io.Reader, contentLength int64, h hash.Hash) ([]byte, error) {
	if contentLength > maxDocBytes {
		return nil, fmt.Errorf("%w (%d > %d bytes)", ErrDocTooLarge, contentLength, maxDocBytes)
	}
	if contentLength >= 0 {
		body := make([]byte, contentLength)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, err
		}
		if h != nil {
			h.Write(body)
		}
		return body, nil
	}
	// Unknown length: grow, hashing chunk by chunk through a pooled buffer.
	var body []byte
	chunk := bufpool.Get(bufpool.TierMed)
	defer bufpool.Put(chunk)
	for {
		n, err := r.Read(*chunk)
		if n > 0 {
			if int64(len(body))+int64(n) > maxDocBytes {
				return nil, fmt.Errorf("%w (> %d bytes)", ErrDocTooLarge, maxDocBytes)
			}
			body = append(body, (*chunk)[:n]...)
			if h != nil {
				h.Write((*chunk)[:n])
			}
		}
		if err == io.EOF {
			return body, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// relayStream is a direct-forward document in flight: the holder's push
// request body, handed from handleRelay to the /fetch goroutine that serves
// it straight to the requester through a pooled copy buffer. The proxy never
// buffers the document.
//
// Hand-off protocol: the consumer either claims the stream (and must then
// finish it with the copy result) or finishes it unclaimed (abandonment).
// handleRelay blocks the holder's push until finish, so the body reader
// stays valid for the entire copy.
type relayStream struct {
	r       io.Reader
	length  int64         // Content-Length of the push, -1 when unknown
	claimed chan struct{} // closed by the consumer just before copying
	done    chan error    // buffered(1): copy result or abandonment
}

func newRelayStream(r io.Reader, length int64) *relayStream {
	return &relayStream{
		r:       r,
		length:  length,
		claimed: make(chan struct{}),
		done:    make(chan error, 1),
	}
}

// claim commits this goroutine to copying the stream. Exactly one consumer
// may claim.
func (rs *relayStream) claim() { close(rs.claimed) }

// finish reports the stream's fate (nil: fully copied; non-nil: aborted or
// abandoned), releasing the holder's blocked push. Idempotent under the
// one-consumer protocol: only the first result is kept.
func (rs *relayStream) finish(err error) {
	select {
	case rs.done <- err:
	default:
	}
}

// errRelayAbandoned marks a delivered relay stream nobody served (the
// requester vanished or the origin hedge already won).
var errRelayAbandoned = errors.New("relay stream abandoned")

// cappedReader errors with ErrDocTooLarge once more than limit bytes have
// been read — the streaming backstop for relay pushes that lie about (or
// omit) their Content-Length.
type cappedReader struct {
	r         io.Reader
	remaining int64 // limit+1 at start; hitting 0 means the limit was passed
}

func newCappedReader(r io.Reader, limit int64) *cappedReader {
	return &cappedReader{r: r, remaining: limit + 1}
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, ErrDocTooLarge
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	return n, err
}
