package proxy

// Peer health tracking and the per-peer circuit breaker.
//
// The paper's §2 model has browsers dynamically joining and leaving; the
// original live implementation treated every indexed peer as healthy until a
// fetch against it failed, then pruned a single index entry per failure — a
// dead holder with many cached documents cost one PeerTimeout per document.
// The tracker below keeps one health record per registered peer, fed by
// every fetch/relay/onion outcome and by the browser heartbeat
// (POST /heartbeat), and runs a three-state circuit breaker:
//
//	closed    → normal operation; consecutive transport failures count up.
//	open      → the peer tripped (threshold consecutive failures, or a
//	            heartbeat silence sweep); all its index entries are
//	            quarantined in one step and holder selection skips it.
//	half-open → after the cooldown one probe request is let through; a
//	            success closes the breaker and un-quarantines every entry
//	            at once, a failure re-opens it.
//
// Stale-entry responses (a live peer that already evicted the document) do
// not count against the breaker — only transport-level failures and
// integrity violations do.
//
// The state machine itself lives in internal/breaker (shared with the
// sibling-proxy quarantine in internal/federation); this file keeps the
// per-peer bookkeeping around it.

import (
	"sync"
	"time"

	"baps/internal/breaker"
)

// peerHealth is the mutable health record of one registered peer.
type peerHealth struct {
	br          breaker.Breaker
	lastSeen    time.Time // registration, heartbeat, or successful serve
	ewmaLatency time.Duration
	successes   int64
	failures    int64
	heartbeats  int64
}

// healthTracker owns all peer health records. Safe for concurrent use.
type healthTracker struct {
	mu        sync.Mutex
	peers     map[int]*peerHealth
	threshold int           // consecutive failures that trip the breaker
	cooldown  time.Duration // open → half-open delay
	now       func() time.Time
}

// ewmaAlpha weights the newest latency sample in the moving average.
const ewmaAlpha = 0.2

func newHealthTracker(threshold int, cooldown time.Duration) *healthTracker {
	return &healthTracker{
		peers:     make(map[int]*peerHealth),
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
	}
}

// Track starts (or resets) a peer's record at registration time.
func (h *healthTracker) Track(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.peers[id] = &peerHealth{lastSeen: h.now()}
}

// Forget drops a peer's record (unregistration or departure).
func (h *healthTracker) Forget(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.peers, id)
}

// Beat records a heartbeat, reporting whether the peer is tracked.
func (h *healthTracker) Beat(id int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	if !ok {
		return false
	}
	p.lastSeen = h.now()
	p.heartbeats++
	return true
}

// Allow reports whether a request may be sent to the peer. With the breaker
// open it returns false until the cooldown elapses, then transitions to
// half-open and admits exactly one probe (a stuck probe is replaced after
// another cooldown).
func (h *healthTracker) Allow(id int) bool {
	if h.threshold <= 0 {
		return true // breaker disabled
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	if !ok {
		return true // untracked peers (e.g. pre-breaker entries) pass through
	}
	return p.br.Allow(h.now(), h.threshold, h.cooldown)
}

// Success records a served request with its latency. readmitted is true when
// this success closed a non-closed breaker — the caller then restores the
// peer's quarantined index entries in one step.
func (h *healthTracker) Success(id int, latency time.Duration) (readmitted bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	if !ok {
		return false
	}
	p.successes++
	p.lastSeen = h.now()
	if p.ewmaLatency == 0 {
		p.ewmaLatency = latency
	} else {
		p.ewmaLatency = time.Duration((1-ewmaAlpha)*float64(p.ewmaLatency) + ewmaAlpha*float64(latency))
	}
	return p.br.Success()
}

// Touch refreshes a peer's last-seen time without affecting the breaker —
// used for stale-entry responses, where the peer answered (it is alive) but
// could not serve the document.
func (h *healthTracker) Touch(id int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[id]; ok {
		p.lastSeen = h.now()
	}
}

// Failure records a transport failure or integrity violation. tripped is
// true when this failure opened a previously closed breaker — the caller
// then quarantines the peer's index entries in one step.
func (h *healthTracker) Failure(id int) (tripped bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.peers[id]
	if !ok {
		return false
	}
	p.failures++
	return p.br.Failure(h.now(), h.threshold)
}

// SweepSilent trips the breaker of every closed-state peer not seen for
// longer than maxAge (missed heartbeats), returning the tripped ids so the
// caller can quarantine them.
func (h *healthTracker) SweepSilent(maxAge time.Duration) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	var tripped []int
	for id, p := range h.peers {
		if p.br.State() == breaker.Closed && now.Sub(p.lastSeen) > maxAge {
			p.br.Trip(now)
			tripped = append(tripped, id)
		}
	}
	return tripped
}

// Counts reports how many tracked peers sit in each breaker state.
func (h *healthTracker) Counts() (closed, open, halfOpen int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.peers {
		switch p.br.State() {
		case breaker.Open:
			open++
		case breaker.HalfOpen:
			halfOpen++
		default:
			closed++
		}
	}
	return
}

// PeerHealthStat is the per-peer health record exposed in /stats.
type PeerHealthStat struct {
	Client         int     `json:"client"`
	Breaker        string  `json:"breaker"`
	ConsecFails    int     `json:"consecutive_failures"`
	Successes      int64   `json:"successes"`
	Failures       int64   `json:"failures"`
	Heartbeats     int64   `json:"heartbeats"`
	EWMALatencyMs  float64 `json:"ewma_latency_ms"`
	LastSeenAgeSec float64 `json:"last_seen_age_sec"`
}

// Snapshot returns per-peer health stats, ordered by client id.
func (h *healthTracker) Snapshot() []PeerHealthStat {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	out := make([]PeerHealthStat, 0, len(h.peers))
	for id, p := range h.peers {
		out = append(out, PeerHealthStat{
			Client:         id,
			Breaker:        p.br.State().String(),
			ConsecFails:    p.br.ConsecFails(),
			Successes:      p.successes,
			Failures:       p.failures,
			Heartbeats:     p.heartbeats,
			EWMALatencyMs:  float64(p.ewmaLatency) / float64(time.Millisecond),
			LastSeenAgeSec: now.Sub(p.lastSeen).Seconds(),
		})
	}
	sortPeerStats(out)
	return out
}

func sortPeerStats(s []PeerHealthStat) {
	// Insertion sort: peer counts are small and this avoids an import.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Client < s[j-1].Client; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
