package proxy

import (
	"time"

	"baps/internal/obs"
)

// Fetch decision-path outcomes, one per /fetch request, exposed as
// baps_proxy_fetch_outcomes_total{outcome=...}. Together with the browser
// agent's local-hit counter these cover the paper's full resolution path:
// browser hit → proxy hit → index hit (fetch-forward / direct-forward /
// onion) → origin fallback.
const (
	outProxyHit     = "proxy_hit"
	outDiskHit      = "proxy_disk_hit"
	outPeerFetch    = "peer_fetch_forward"
	outPeerDirect   = "peer_direct_forward"
	outPeerOnion    = "peer_onion"
	outClusterHit   = "cluster_fetch"
	outOrigin       = "origin"
	outOriginHedged = "origin_hedged"
	outError        = "error"
	outCanceled     = "canceled"
)

// serverMetrics holds every proxy metric with the hot-path counters
// pre-resolved, so request handling does one atomic add per event and never
// touches the registry's maps.
type serverMetrics struct {
	reg *obs.Registry

	requests *obs.Counter
	outcomes *obs.CounterVec
	// Pre-resolved outcome children (outcomeCounter maps the string).
	outProxyHit, outDiskHit, outPeerFetch, outPeerDirect, outPeerOnion *obs.Counter
	outClusterHit, outOrigin, outOriginHedged, outError, outCanceled   *obs.Counter

	// Disk-tier plane (registered always; non-zero only with -datadir).
	diskWrites    *obs.Counter
	diskReads     *obs.Counter
	diskReplays   *obs.Counter
	diskCorrupt   *obs.Counter
	diskEvictions *obs.Counter
	spillSkipped  *obs.Counter // demotions shed by admission control
	spillDropped  *obs.Counter // spills shed by backpressure or disk errors

	// coalesced counts requests that attached to another request's
	// in-flight miss resolution instead of resolving themselves, labeled
	// by the outcome they shared.
	coalesced *obs.CounterVec

	falsePeer         *obs.Counter
	watermarkVerified *obs.Counter
	watermarkRejected *obs.Counter
	relayTimeouts     *obs.Counter
	relayStreamErrors *obs.Counter
	docTooLarge       *obs.Counter
	originRetries     *obs.Counter
	heartbeats        *obs.Counter
	heartbeatMisses   *obs.Counter

	breakerTransitions *obs.CounterVec
	breakerOpened      *obs.Counter // transitions{to="open"}
	breakerClosed      *obs.Counter // transitions{to="closed"}

	registers   *obs.Counter
	unregisters *obs.Counter

	peerServes     *obs.CounterVec // {client=...}
	peerServeBytes *obs.CounterVec // {client=...}

	indexUpdates *obs.CounterVec // {op=add|remove|resync|drop|batch}
	idxAdd       *obs.Counter
	idxRemove    *obs.Counter
	idxResync    *obs.Counter
	idxDrop      *obs.Counter
	idxBatch     *obs.Counter

	// Batched delta-protocol plane.
	idxBatchDeltas    *obs.Counter
	idxMultiBatch     *obs.Counter
	idxGenGaps        *obs.Counter
	idxDigestMismatch *obs.Counter
	idxResyncPulls    *obs.Counter

	// Federation plane (all zero on an unfederated proxy).
	clusterFetches        *obs.Counter
	clusterServes         *obs.Counter
	clusterServeHits      *obs.Counter
	clusterLocateConfirms *obs.Counter
	clusterLocateFPs      *obs.Counter
	digestsSent           *obs.Counter
	digestsRecv           *obs.Counter

	// Background pipeline plane (pipeline.go).
	revalidations    *obs.CounterVec // {result=fresh|changed|error}
	revalFresh       *obs.Counter
	revalChanged     *obs.Counter
	revalErrors      *obs.Counter
	prefetchPushes   *obs.Counter
	prefetchDeclined *obs.Counter
	invalidations    *obs.CounterVec // {target=local|browser|sibling}
	invalLocal       *obs.Counter
	invalBrowser     *obs.Counter
	invalSibling     *obs.Counter
	invalRecv        *obs.Counter

	fetchDur     *obs.Summary
	peerFetchDur *obs.Summary
	originFetch  *obs.Summary
}

// newServerMetrics registers the proxy's metric families on reg and wires
// the callback gauges to s's live structures.
func newServerMetrics(reg *obs.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{reg: reg}
	m.requests = reg.Counter("baps_proxy_requests_total",
		"Total /fetch requests accepted.")
	m.outcomes = reg.CounterVec("baps_proxy_fetch_outcomes_total",
		"Fetch decision-path outcomes.", "outcome")
	m.outProxyHit = m.outcomes.With(outProxyHit)
	m.outDiskHit = m.outcomes.With(outDiskHit)
	m.outPeerFetch = m.outcomes.With(outPeerFetch)
	m.outPeerDirect = m.outcomes.With(outPeerDirect)
	m.outPeerOnion = m.outcomes.With(outPeerOnion)
	m.outClusterHit = m.outcomes.With(outClusterHit)
	m.outOrigin = m.outcomes.With(outOrigin)
	m.outOriginHedged = m.outcomes.With(outOriginHedged)
	m.outError = m.outcomes.With(outError)
	m.outCanceled = m.outcomes.With(outCanceled)

	m.coalesced = reg.CounterVec("baps_proxy_coalesced_total",
		"Requests served from another request's in-flight miss resolution.", "outcome")
	// Pre-register the outcomes a coalesced (fetch-forward or origin-only)
	// resolution can produce, so exposition shows them at zero.
	for _, o := range []string{outPeerFetch, outClusterHit, outOrigin, outOriginHedged, outError, outCanceled} {
		m.coalesced.With(o)
	}

	m.diskWrites = reg.Counter("baps_proxy_disk_writes_total",
		"Document bodies spilled to the disk tier.")
	m.diskReads = reg.Counter("baps_proxy_disk_reads_total",
		"Document bodies read back from the disk tier.")
	m.diskReplays = reg.Counter("baps_proxy_disk_replays_total",
		"Documents re-seated from the disk journal at startup.")
	m.diskCorrupt = reg.Counter("baps_proxy_disk_corrupt_records_total",
		"Disk journal/body records dropped for CRC or framing damage.")
	m.diskEvictions = reg.Counter("baps_proxy_disk_evictions_total",
		"Disk-tier documents evicted by the retention sweep.")
	m.spillSkipped = reg.Counter("baps_proxy_disk_spill_skipped_total",
		"Memory-tier demotions shed by spill admission control (one-hit wonders).")
	m.spillDropped = reg.Counter("baps_proxy_disk_spill_dropped_total",
		"Spills shed by queue backpressure or disk write failures.")

	m.falsePeer = reg.Counter("baps_proxy_false_peer_total",
		"Index hits that failed to produce the document from the peer.")
	m.watermarkVerified = reg.Counter("baps_proxy_watermark_verified_total",
		"Peer-served bodies that passed digest/watermark verification.")
	m.watermarkRejected = reg.Counter("baps_proxy_watermark_rejected_total",
		"Peer-served bodies rejected by digest/watermark verification or reported bad.")
	m.relayTimeouts = reg.Counter("baps_proxy_relay_timeouts_total",
		"Direct-forward relays that timed out waiting for the holder push.")
	m.relayStreamErrors = reg.Counter("baps_proxy_relay_stream_errors_total",
		"Direct-forward streamed relays that aborted mid-copy or went unclaimed.")
	m.docTooLarge = reg.Counter("baps_proxy_doc_too_large_total",
		"Document bodies rejected for exceeding MaxDocBytes.")
	m.originRetries = reg.Counter("baps_proxy_origin_retries_total",
		"Backoff retries against the origin.")
	m.heartbeats = reg.Counter("baps_proxy_heartbeats_total",
		"Browser heartbeats received.")
	m.heartbeatMisses = reg.Counter("baps_proxy_heartbeat_misses_total",
		"Peers tripped by the heartbeat-silence sweep.")

	m.breakerTransitions = reg.CounterVec("baps_proxy_breaker_transitions_total",
		"Per-peer circuit-breaker state transitions.", "to")
	m.breakerOpened = m.breakerTransitions.With("open")
	m.breakerClosed = m.breakerTransitions.With("closed")

	m.registers = reg.Counter("baps_proxy_registers_total",
		"Browser registrations.")
	m.unregisters = reg.Counter("baps_proxy_unregisters_total",
		"Graceful browser departures.")

	m.peerServes = reg.CounterVec("baps_proxy_peer_serves_total",
		"Documents served out of each peer's browser cache.", "client")
	m.peerServeBytes = reg.CounterVec("baps_proxy_peer_serve_bytes_total",
		"Bytes served out of each peer's browser cache.", "client")

	m.indexUpdates = reg.CounterVec("baps_proxy_index_updates_total",
		"Browser index mutations by kind.", "op")
	m.idxAdd = m.indexUpdates.With("add")
	m.idxRemove = m.indexUpdates.With("remove")
	m.idxResync = m.indexUpdates.With("resync")
	m.idxDrop = m.indexUpdates.With("drop")
	m.idxBatch = m.indexUpdates.With("batch")

	m.idxBatchDeltas = reg.Counter("baps_proxy_index_batch_deltas_total",
		"Index deltas carried by applied /index/batch requests.")
	m.idxMultiBatch = reg.Counter("baps_proxy_index_multibatch_total",
		"Multiplexed /index/multibatch carriers processed.")
	m.idxGenGaps = reg.Counter("baps_proxy_index_gen_gaps_total",
		"Batch generation gaps observed (triggering a resync pull).")
	m.idxDigestMismatch = reg.Counter("baps_proxy_index_digest_mismatches_total",
		"Bloom directory digests that disagreed with the proxy's view.")
	m.idxResyncPulls = reg.Counter("baps_proxy_index_resync_pulls_total",
		"/peer/resync pulls issued to recover from batch drift.")

	m.clusterFetches = reg.Counter("baps_proxy_cluster_fetches_total",
		"Documents relayed in from sibling proxies (federation tier).")
	m.clusterServes = reg.Counter("baps_proxy_cluster_serves_total",
		"Cluster-hop requests received from sibling proxies.")
	m.clusterServeHits = reg.Counter("baps_proxy_cluster_serve_hits_total",
		"Cluster-hop requests answered with a document body.")
	m.clusterLocateConfirms = reg.Counter("baps_proxy_cluster_locate_confirms_total",
		"Sibling /peer/locate probes answered held.")
	m.clusterLocateFPs = reg.Counter("baps_proxy_cluster_locate_fps_total",
		"Sibling digest claims denied by /peer/locate (Bloom false positives).")
	m.digestsSent = reg.Counter("baps_proxy_digests_sent_total",
		"Federation digests delivered to siblings.")
	m.digestsRecv = reg.Counter("baps_proxy_digests_received_total",
		"Federation digests ingested from siblings.")

	m.revalidations = reg.CounterVec("baps_proxy_revalidations_total",
		"Background origin revalidations by result.", "result")
	m.revalFresh = m.revalidations.With("fresh")
	m.revalChanged = m.revalidations.With("changed")
	m.revalErrors = m.revalidations.With("error")
	m.prefetchPushes = reg.Counter("baps_proxy_prefetch_pushes_total",
		"Hot documents pushed into under-loaded browser caches.")
	m.prefetchDeclined = reg.Counter("baps_proxy_prefetch_declined_total",
		"Prefetch pushes the target browser declined.")
	m.invalidations = reg.CounterVec("baps_proxy_invalidations_total",
		"Invalidation fan-out jobs completed, by target tier.", "target")
	m.invalLocal = m.invalidations.With("local")
	m.invalBrowser = m.invalidations.With("browser")
	m.invalSibling = m.invalidations.With("sibling")
	m.invalRecv = reg.Counter("baps_proxy_peer_invalidations_received_total",
		"Cluster invalidations ingested from federation siblings.")

	m.fetchDur = reg.Summary("baps_proxy_fetch_duration_seconds",
		"End-to-end /fetch latency.")
	m.peerFetchDur = reg.Summary("baps_proxy_peer_fetch_duration_seconds",
		"Successful peer-resolution latency.")
	m.originFetch = reg.Summary("baps_proxy_origin_fetch_duration_seconds",
		"Successful origin round-trip latency.")

	reg.GaugeFunc("baps_proxy_index_entries",
		"Live browser-index entries.", func() float64 { return float64(s.idx.Len()) })
	reg.GaugeFunc("baps_proxy_index_quarantined_entries",
		"Browser-index entries under breaker quarantine.", func() float64 { return float64(s.idx.QuarantinedEntries()) })
	reg.GaugeFunc("baps_proxy_index_docs",
		"Distinct documents currently indexed.", func() float64 { return float64(s.idx.URLCount()) })
	reg.GaugeFunc("baps_proxy_cache_docs",
		"Documents in the proxy cache.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.cache.Len())
		})
	reg.GaugeFunc("baps_proxy_cache_bytes",
		"Bytes in the proxy cache.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.cache.Used())
		})
	reg.GaugeFunc("baps_proxy_clients",
		"Registered browser agents.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.peers))
		})
	for _, st := range []string{"closed", "open", "half_open"} {
		st := st
		reg.LabeledGaugeFunc("baps_proxy_breaker_peers",
			"Peers by circuit-breaker state.", "state", st, func() float64 {
				closed, open, half := s.health.Counts()
				switch st {
				case "open":
					return float64(open)
				case "half_open":
					return float64(half)
				default:
					return float64(closed)
				}
			})
	}
	reg.GaugeFunc("baps_proxy_disk_docs",
		"Documents live in the disk tier.", func() float64 {
			if s.ds == nil {
				return 0
			}
			return float64(s.ds.Len())
		})
	reg.GaugeFunc("baps_proxy_disk_bytes",
		"Live body bytes in the disk tier.", func() float64 {
			if s.ds == nil {
				return 0
			}
			return float64(s.ds.Used())
		})
	reg.GaugeFunc("baps_proxy_restored_docs",
		"Documents re-seated from the disk journal by the last startup.",
		func() float64 { return float64(s.restoredDocs) })
	reg.GaugeFunc("baps_proxy_restart_to_warm_seconds",
		"Seconds from startup until a tenth of the restored set was served locally again (0 until warm).",
		s.restartToWarmSeconds)
	reg.GaugeFunc("baps_proxy_uptime_seconds",
		"Seconds since the proxy started.", func() float64 { return time.Since(s.started).Seconds() })
	return m
}

// outcomeCounter maps an outcome string to its pre-resolved child counter.
func (m *serverMetrics) outcomeCounter(outcome string) *obs.Counter {
	switch outcome {
	case outProxyHit:
		return m.outProxyHit
	case outDiskHit:
		return m.outDiskHit
	case outPeerFetch:
		return m.outPeerFetch
	case outPeerDirect:
		return m.outPeerDirect
	case outPeerOnion:
		return m.outPeerOnion
	case outClusterHit:
		return m.outClusterHit
	case outOrigin:
		return m.outOrigin
	case outOriginHedged:
		return m.outOriginHedged
	case outCanceled:
		return m.outCanceled
	default:
		return m.outError
	}
}

// Obs exposes the proxy's metrics registry (exposition, tests, asserting on
// deltas).
func (s *Server) Obs() *obs.Registry { return s.m.reg }

// Tracer exposes the proxy's request tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }
