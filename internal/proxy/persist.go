package proxy

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"baps/internal/cache"
	"baps/internal/diskstore"
	"baps/internal/integrity"
	"baps/internal/obs"
)

// The disk tier turns the proxy's two-tier cache crash-safe: memory-tier
// demotions spill document bodies into internal/diskstore, and on startup
// the journal replay re-seats the cache skeleton, the /stats counters, and
// the per-client registration + batch-generation tables, so a kill/restart
// recovers its hit ratio without a thundering herd onto the origin.
//
// Residency invariants with the disk tier enabled:
//
//   - s.bodies holds exactly the memory-tier bodies.
//   - A resident key absent from s.bodies has its body either in
//     s.spillStage (demoted, spill in flight) or in s.ds (durable).
//   - s.ds is never called with s.mu held; the spill worker and the
//     disk-store sweep take s.mu from outside any disk-store lock.
//
// Admission control: a body is spilled only once its key has been accessed
// spillMinHits times (storeDoc counts the storing fetch); a one-hit wonder
// demoted from memory is shed from the cache instead of written to disk.
// Reading back promotes to memory on the second post-spill access — the
// first is streamed straight from disk through a pooled buffer.
const spillMinHits = 2

// spillOp is one unit of the spill worker's queue.
type spillOp struct {
	key string
	del bool // drop key from the disk store instead of spilling
	// Write-behind ops carry their own body+meta snapshot: the document
	// stays resident in the memory tier while a durable copy is written.
	wb   bool
	body []byte
	meta docMeta
}

// wbBatchMax bounds how many memory-tier bodies one write-behind tick may
// enqueue, so a big hot set drains over several intervals instead of
// flooding the spill queue.
const wbBatchMax = 128

// stagedDoc parks a demoted body (and the meta it was stored under) between
// demotion and the spill worker's disk write.
type stagedDoc struct {
	body []byte
	meta docMeta
}

// persistClient is one registered browser in the persisted state blob.
type persistClient struct {
	ID       int    `json:"id"`
	PeerURL  string `json:"peer_url"`
	Token    string `json:"token"`
	RelayKey []byte `json:"relay_key"`
}

// persistState is the owner-state blob journaled into the disk store: the
// non-derivable proxy state a restart must re-seat (counters, client
// registrations, batch generations). The cache skeleton itself is derived
// from the store's own entries.
type persistState struct {
	SavedUnix int64               `json:"saved_unix"`
	NextID    int                 `json:"next_id"`
	Clients   []persistClient     `json:"clients,omitempty"`
	Gens      map[int]uint64      `json:"gens,omitempty"`
	Counters  obs.CounterSnapshot `json:"counters"`
}

// loadOrCreateSigner returns the proxy's watermark signer. With a data
// directory the key lives in DIR/key.pem across restarts: watermarks stored
// on disk (and the public key agents fetched before a kill) stay valid on
// the reopened proxy. Without one, every start generates a fresh key.
func loadOrCreateSigner(cfg Config) (*integrity.Signer, error) {
	if cfg.DataDir == "" {
		return integrity.NewSigner(cfg.KeyBits)
	}
	path := filepath.Join(cfg.DataDir, "key.pem")
	if pemBytes, err := os.ReadFile(path); err == nil {
		priv, err := integrity.ParsePrivateKey(pemBytes)
		if err == nil {
			return integrity.NewSignerFromKey(priv)
		}
		// Unreadable key file: fall through and replace it. Disk-resident
		// watermarks made under the lost key fail digest verification on
		// the peer path exactly like any other stale entry.
	}
	signer, err := integrity.NewSigner(cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, signer.MarshalPrivateKey(), 0o600); err != nil {
		return nil, err
	}
	return signer, nil
}

// openDiskTier opens the disk store, replays it into the cache skeleton and
// the proxy's tables, and starts the spill worker + state-save loop. Called
// from New when Config.DataDir is set.
func (s *Server) openDiskTier() error {
	dcfg := diskstore.Config{
		MaxBytes:  s.cfg.DiskMaxBytes,
		Retention: s.cfg.DiskRetention,
		Fsync:     s.cfg.DiskFsync,
		OnEvict:   s.onDiskEvict,
		Metrics: diskstore.MetricsHooks{
			Write:         s.m.diskWrites.Inc,
			Read:          s.m.diskReads.Inc,
			CorruptRecord: s.m.diskCorrupt.Inc,
			Eviction:      s.m.diskEvictions.Inc,
		},
	}
	ds, err := diskstore.Open(s.cfg.DataDir, dcfg)
	if err != nil {
		return err
	}
	s.ds = ds

	// Re-seat the cache skeleton coldest-first, so the restored LRU order
	// matches the journaled recency order. Bodies stay on disk and fault
	// back in on access.
	entries := ds.Entries()
	s.mu.Lock()
	for _, e := range entries {
		s.meta[e.Key] = docMeta{
			version:   e.Meta.Version,
			size:      e.Meta.Size,
			digest:    e.Meta.Digest,
			watermark: e.Meta.Watermark,
		}
		s.cache.Seed(cache.Doc{Key: e.Key, Size: e.Meta.Size, Version: e.Meta.Version})
	}
	s.restoredDocs = len(entries)
	s.mu.Unlock()
	s.m.diskReplays.Add(int64(len(entries)))
	if s.restoredDocs > 0 {
		// Warm once a tenth of the restored set has been served locally.
		s.warmTarget = int64(s.restoredDocs / 10)
		if s.warmTarget < 1 {
			s.warmTarget = 1
		}
	}

	if blob := ds.State(); blob != nil {
		s.restoreState(blob)
	}
	if s.logger != nil {
		st := ds.StatsSnapshot()
		s.logger.Info("disk tier opened",
			"dir", s.cfg.DataDir,
			"restored_docs", st.Restored,
			"live_bytes", st.LiveBytes,
			"corrupt_tail", st.CorruptTail,
			"replay_ms", float64(st.ReplayElapsed.Microseconds())/1e3,
			"restored_clients", s.restoredClients)
	}

	s.diskWG.Add(2)
	go s.spillWorker()
	go s.stateSaveLoop()
	return nil
}

// restoreState re-seats the non-derivable proxy state from a persisted
// blob: client registrations (tokens stay valid across the restart), batch
// generations (a client whose live generation has moved past the snapshot
// is caught as a gap on its next batch, forcing the /peer/resync pull), and
// the counter families behind /stats. A blob from an older build restores
// what it can and skips the rest.
func (s *Server) restoreState(blob []byte) {
	var st persistState
	if err := json.Unmarshal(blob, &st); err != nil {
		if s.logger != nil {
			s.logger.Warn("disk state blob unreadable; starting with fresh tables", "err", err)
		}
		return
	}
	s.mu.Lock()
	if st.NextID > s.nextID {
		s.nextID = st.NextID
	}
	for _, c := range st.Clients {
		s.peers[c.ID] = peerInfo{id: c.ID, baseURL: c.PeerURL, token: c.Token, relayKey: c.RelayKey}
		s.peersByURL[c.PeerURL] = c.ID
		s.tokens[c.Token] = c.ID
	}
	s.restoredClients = len(st.Clients)
	s.mu.Unlock()
	for _, c := range st.Clients {
		s.health.Track(c.ID)
	}
	for id, gen := range st.Gens {
		s.batches.seed(id, gen)
	}
	s.m.reg.RestoreCounters(st.Counters)
}

// saveState journals a fresh state blob into the disk store.
func (s *Server) saveState() {
	if s.ds == nil {
		return
	}
	st := persistState{
		SavedUnix: time.Now().Unix(),
		Counters:  s.m.reg.SnapshotCounters(),
		Gens:      s.batches.snapshotGens(),
	}
	s.mu.Lock()
	st.NextID = s.nextID
	for _, p := range s.peers {
		st.Clients = append(st.Clients, persistClient{ID: p.id, PeerURL: p.baseURL, Token: p.token, RelayKey: p.relayKey})
	}
	s.mu.Unlock()
	blob, err := json.Marshal(st)
	if err != nil {
		return
	}
	s.ds.SaveState(blob)
}

// stateSaveLoop persists the state blob on an interval and write-behinds
// the admitted memory-tier bodies that have no current disk copy. The final
// save on graceful Close makes the snapshot exact; this loop bounds what a
// crash can lose — including the hottest documents, which never demote out
// of the memory tier and so would otherwise only exist in RAM.
func (s *Server) stateSaveLoop() {
	defer s.diskWG.Done()
	t := time.NewTicker(s.cfg.StateSaveEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopDisk:
			return
		case <-t.C:
			s.writeBehind()
			s.saveState()
		}
	}
}

// writeBehind enqueues durable copies of admitted memory-tier bodies whose
// current version is not yet on disk. Bodies are never mutated in place
// (storeDoc replaces the slice), so the op can reference them directly.
func (s *Server) writeBehind() {
	s.mu.Lock()
	var ops []spillOp
	for key, body := range s.bodies {
		if s.durable[key] || s.hits[key] < spillMinHits {
			continue
		}
		if _, staged := s.spillStage[key]; staged {
			continue
		}
		ops = append(ops, spillOp{key: key, wb: true, body: body, meta: s.meta[key]})
		if len(ops) >= wbBatchMax {
			break
		}
	}
	s.mu.Unlock()
	for _, op := range ops {
		select {
		case s.spillq <- op:
		default:
			return // queue saturated; the next tick retries
		}
	}
}

// spillWorker owns every disk-store call the request path needs: demotion
// spills and eviction deletes, serialized off the hot path so no HTTP
// handler ever waits on disk I/O it isn't reading.
func (s *Server) spillWorker() {
	defer s.diskWG.Done()
	for {
		select {
		case op := <-s.spillq:
			s.handleSpill(op)
		case <-s.stopDisk:
			// Drain what's queued so a graceful shutdown spills every
			// staged body before the store's final flush.
			for {
				select {
				case op := <-s.spillq:
					s.handleSpill(op)
				default:
					return
				}
			}
		}
	}
}

func (s *Server) handleSpill(op spillOp) {
	if op.del {
		s.ds.Delete(op.key)
		return
	}
	if op.wb {
		err := s.ds.Put(op.key, op.body, diskstore.Meta{
			Version:   op.meta.version,
			Digest:    op.meta.digest,
			Watermark: op.meta.watermark,
		})
		s.mu.Lock()
		// The disk copy matches the live document only if no newer version
		// was stored while the write was in flight.
		if m, ok := s.meta[op.key]; err == nil && ok && m.version == op.meta.version {
			s.durable[op.key] = true
		}
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	staged, ok := s.spillStage[op.key]
	s.mu.Unlock()
	if !ok {
		return // re-promoted or evicted while queued
	}
	err := s.ds.Put(op.key, staged.body, diskstore.Meta{
		Version:   staged.meta.version,
		Digest:    staged.meta.digest,
		Watermark: staged.meta.watermark,
	})
	s.mu.Lock()
	delete(s.spillStage, op.key)
	if err == nil {
		if m, ok := s.meta[op.key]; ok && m.version == staged.meta.version {
			s.durable[op.key] = true
		}
	}
	if err != nil {
		// The body is gone from every tier; shed the cache entry rather
		// than leave accounting pointing at nothing.
		if _, promoted := s.bodies[op.key]; !promoted {
			s.cache.Remove(op.key)
			delete(s.hits, op.key)
		}
		s.m.spillDropped.Inc()
		if s.logger != nil {
			s.logger.Warn("disk spill failed", "url", op.key, "err", err)
		}
	}
	s.mu.Unlock()
}

// onDemote observes memory-tier demotions (called by the cache under s.mu;
// it must not call back into the cache, so the demoted docs are parked and
// handled by drainSpillsLocked after the cache call returns).
func (s *Server) onDemote(d cache.Doc) {
	s.demoted = append(s.demoted, d.Key)
}

// drainSpillsLocked disposes of the demotions the last cache call produced:
// admitted bodies move to the spill stage and queue for the worker, one-hit
// wonders and backpressure overflow are shed from the cache. Caller holds
// s.mu, outside any cache call.
func (s *Server) drainSpillsLocked() {
	if len(s.demoted) == 0 {
		return
	}
	for _, key := range s.demoted {
		body, ok := s.bodies[key]
		if !ok {
			continue // body already durable on disk (or in the stage)
		}
		delete(s.bodies, key)
		if s.durable[key] {
			// Write-behind already persisted this exact body: the entry
			// just drops to the disk tier, no second write.
			s.hits[key] = 0
			continue
		}
		if s.hits[key] < spillMinHits {
			s.cache.Remove(key)
			delete(s.hits, key)
			s.m.spillSkipped.Inc()
			continue
		}
		// Post-spill accesses count from zero again: the first disk hit
		// streams, the second faults the body back into memory.
		s.hits[key] = 0
		s.spillStage[key] = stagedDoc{body: body, meta: s.meta[key]}
		select {
		case s.spillq <- spillOp{key: key}:
		default:
			// Spill queue saturated: shed instead of stalling the request.
			delete(s.spillStage, key)
			s.cache.Remove(key)
			delete(s.hits, key)
			s.m.spillDropped.Inc()
		}
	}
	s.demoted = s.demoted[:0]
}

// onDiskEvict is the disk store's retention-sweep callback (called from the
// store's background goroutine without its locks held): drop the cache
// accounting for documents whose only copy just left the disk.
func (s *Server) onDiskEvict(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, inMem := s.bodies[key]; inMem {
		return
	}
	if _, staged := s.spillStage[key]; staged {
		return
	}
	s.cache.Remove(key)
	delete(s.hits, key)
	delete(s.durable, key)
}

// noteLocalHit advances the restart-to-warm tracker: the proxy counts as
// warm once a tenth of the restored set has been served locally again.
func (s *Server) noteLocalHit() {
	if s.warmTarget <= 0 || s.warmAt.Load() != 0 {
		return
	}
	if s.warmHits.Add(1) >= s.warmTarget {
		s.warmAt.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// restartToWarmSeconds reports the seconds from start to warm (0 until
// warm, or when nothing was restored).
func (s *Server) restartToWarmSeconds() float64 {
	at := s.warmAt.Load()
	if at == 0 {
		return 0
	}
	return time.Unix(0, at).Sub(s.started).Seconds()
}

// serveLocal resolves a /fetch against the local tiers: memory (and the
// spill stage) first, then the disk store. The first post-spill access
// streams straight from disk through a pooled buffer; the second faults the
// body back into the memory tier. ok=false means not resident anywhere
// local and the caller should run miss resolution.
func (s *Server) serveLocal(w http.ResponseWriter, url string) (string, bool) {
	s.mu.Lock()
	if _, _, resident := s.cache.PeekTier(url); !resident {
		s.mu.Unlock()
		return "", false
	}
	if body, inMem := s.bodies[url]; inMem {
		meta := s.meta[url]
		if s.ds != nil {
			s.hits[url]++
		}
		s.cache.GetTier(url)
		s.drainSpillsLocked()
		s.mu.Unlock()
		s.noteLocalHit()
		s.serveDoc(w, SourceProxy, body, meta)
		return outProxyHit, true
	}
	if staged, ok := s.spillStage[url]; ok {
		// Still parked between demotion and the disk write: promote it
		// straight back (the queued spill op sees the empty stage and
		// skips).
		s.bodies[url] = staged.body
		delete(s.spillStage, url)
		s.hits[url]++
		s.cache.GetTier(url)
		s.drainSpillsLocked()
		s.mu.Unlock()
		s.noteLocalHit()
		s.serveDoc(w, SourceProxy, staged.body, staged.meta)
		return outProxyHit, true
	}
	if s.ds == nil {
		// Accounting and body store disagree; treat as a miss.
		s.cache.Remove(url)
		s.mu.Unlock()
		return "", false
	}
	s.hits[url]++
	promote := s.hits[url] >= spillMinHits
	meta := s.meta[url]
	s.mu.Unlock()

	if promote {
		return s.serveDiskPromote(w, url, meta)
	}
	return s.serveDiskStream(w, url, meta)
}

// serveDiskPromote faults a disk-resident body back into the memory tier
// and serves it.
func (s *Server) serveDiskPromote(w http.ResponseWriter, url string, meta docMeta) (string, bool) {
	body, dmeta, err := s.ds.Get(url)
	if err != nil {
		s.dropLostLocal(url)
		return "", false
	}
	if meta.digest == nil {
		meta = docMeta{version: dmeta.Version, size: dmeta.Size, digest: dmeta.Digest, watermark: dmeta.Watermark}
	}
	s.mu.Lock()
	if _, _, resident := s.cache.PeekTier(url); resident {
		s.bodies[url] = body
		s.durable[url] = true // the promoted body IS the disk copy
		s.cache.GetTier(url)
		s.drainSpillsLocked()
	}
	s.mu.Unlock()
	s.noteLocalHit()
	s.serveDoc(w, SourceProxy, body, meta)
	return outDiskHit, true
}

// serveDiskStream streams a disk-resident body to the response through a
// pooled buffer without promoting it (or buffering it in proxy memory).
// Headers are deferred to the first body byte, so a read that fails before
// any output can still fall back to miss resolution.
func (s *Server) serveDiskStream(w http.ResponseWriter, url string, meta docMeta) (string, bool) {
	lw := &lazyHeaderWriter{w: w, meta: meta}
	_, dmeta, err := s.ds.ReadTo(lw, url)
	if err != nil {
		if !lw.wrote {
			s.dropLostLocal(url)
			return "", false
		}
		// Mid-body failure: the short write aborts the response at the
		// client (Content-Length was already committed).
		return outError, true
	}
	if !lw.wrote {
		lw.meta.size = dmeta.Size
		lw.commit()
	}
	s.noteLocalHit()
	return outDiskHit, true
}

// dropLostLocal sheds a key whose disk copy turned out missing or corrupt,
// unless a live body re-appeared meanwhile.
func (s *Server) dropLostLocal(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, inMem := s.bodies[url]; inMem {
		return
	}
	if _, staged := s.spillStage[url]; staged {
		return
	}
	s.cache.Remove(url)
	delete(s.hits, url)
	delete(s.durable, url)
}

// lazyHeaderWriter defers the response headers until the first body byte,
// so a disk read that fails before producing output leaves the
// ResponseWriter untouched for the miss path.
type lazyHeaderWriter struct {
	w     http.ResponseWriter
	meta  docMeta
	wrote bool
}

func (l *lazyHeaderWriter) commit() {
	writeDocHeaders(l.w, SourceProxy, l.meta)
	l.wrote = true
}

func (l *lazyHeaderWriter) Write(p []byte) (int, error) {
	if !l.wrote {
		l.commit()
	}
	return l.w.Write(p)
}

// Crash abandons the server abruptly — the in-process stand-in for SIGKILL
// used by the chaos and load harnesses: the listener is torn down
// mid-request, no journal flush, no state save. Whatever already reached
// the OS survives for the next Open.
func (s *Server) Crash() {
	s.sweepOnce.Do(func() { close(s.stopSweep) })
	// The background pipeline dies abruptly: queued jobs drop, in-flight
	// attempts are cancelled, nothing retries (workqueue.Kill, not Close).
	s.pipeOnce.Do(func() { close(s.stopPipeline) })
	s.pipelineWG.Wait()
	s.wq.Kill()
	// A killed process stops pushing federation digests; siblings must
	// notice via staleness, so the push loop dies with the listener.
	if fed := s.fed.Load(); fed != nil {
		fed.Stop()
	}
	if s.ds != nil {
		s.diskOnce.Do(func() { close(s.stopDisk) })
		s.ds.Abandon() // queued spill ops fail against the closed store
		s.diskWG.Wait()
	}
	if s.httpSrv != nil {
		s.httpSrv.Close()
	}
}
