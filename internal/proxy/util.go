package proxy

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/url"
)

func urlQueryEscape(s string) string { return url.QueryEscape(s) }

func jsonBytes(v any) ([]byte, error) { return json.Marshal(v) }

func jsonNewDecoder(r io.Reader, v any) error {
	return json.NewDecoder(io.LimitReader(r, 1<<20)).Decode(v)
}

// base64StdDecode decodes standard base64 into dst, returning the byte
// count (helper shared with tests).
func base64StdDecode(dst []byte, src string) (int, error) {
	return base64.StdEncoding.Decode(dst, []byte(src))
}
