package proxy

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"baps/internal/index"
	"baps/internal/integrity"
	"baps/internal/origin"
)

func testServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.KeyBits = 1024
	cfg.CacheCapacity = 1 << 20
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(""); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func register(t *testing.T, s *Server, peerURL string) RegisterResponse {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{PeerURL: peerURL})
	resp, err := http.Post(s.BaseURL()+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status %s", resp.Status)
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return reg
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.CacheCapacity = -1 },
		func(c *Config) { c.MemFraction = 0 },
		func(c *Config) { c.MemFraction = 1.5 },
		func(c *Config) { c.KeyBits = 100 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		cfg.KeyBits = 1024
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	s := testServer(t, nil)
	// Bad JSON.
	resp, _ := http.Post(s.BaseURL()+"/register", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: %d", resp.StatusCode)
	}
	// Bad peer URL.
	body, _ := json.Marshal(RegisterRequest{PeerURL: "ftp://x"})
	resp, _ = http.Post(s.BaseURL()+"/register", "application/json", bytes.NewReader(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad peer URL: %d", resp.StatusCode)
	}
	// GET not allowed.
	resp, _ = http.Get(s.BaseURL() + "/register")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET register: %d", resp.StatusCode)
	}
	// Two registrations get distinct ids and tokens.
	r1 := register(t, s, "http://127.0.0.1:1")
	r2 := register(t, s, "http://127.0.0.1:2")
	if r1.ClientID == r2.ClientID || r1.Token == r2.Token {
		t.Error("registrations not distinct")
	}
	if !strings.Contains(r1.PublicKey, "PUBLIC KEY") {
		t.Error("public key missing")
	}
}

func TestIndexAuthRequired(t *testing.T) {
	s := testServer(t, nil)
	reg := register(t, s, "http://127.0.0.1:1")

	upd, _ := json.Marshal(IndexUpdate{ClientID: reg.ClientID, Entry: IndexEntry{URL: "http://x/a", Size: 10}})
	post := func(token string, clientID int) int {
		req, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/add", bytes.NewReader(upd))
		req.Header.Set(HeaderClient, strconv.Itoa(clientID))
		req.Header.Set(HeaderToken, token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("wrong-token", reg.ClientID); code != http.StatusForbidden {
		t.Errorf("wrong token: %d", code)
	}
	if code := post(reg.Token, reg.ClientID+1); code != http.StatusForbidden {
		t.Errorf("mismatched id: %d", code)
	}
	if code := post(reg.Token, reg.ClientID); code != http.StatusNoContent {
		t.Errorf("valid add: %d", code)
	}
	if !s.Index().Has(reg.ClientID, s.syms.Intern("http://x/a")) {
		t.Error("entry not indexed")
	}
}

func TestIndexBodyMismatchRejected(t *testing.T) {
	s := testServer(t, nil)
	reg := register(t, s, "http://127.0.0.1:1")
	// Body claims a different client than the authenticated one.
	upd, _ := json.Marshal(IndexUpdate{ClientID: reg.ClientID + 5, Entry: IndexEntry{URL: "http://x/a"}})
	req, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/add", bytes.NewReader(upd))
	req.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	req.Header.Set(HeaderToken, reg.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("spoofed client id: %d", resp.StatusCode)
	}
}

func TestFetchValidation(t *testing.T) {
	s := testServer(t, nil)
	resp, _ := http.Get(s.BaseURL() + "/fetch")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing url: %d", resp.StatusCode)
	}
	resp, _ = http.Post(s.BaseURL()+"/fetch?url=http://x", "", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST fetch: %d", resp.StatusCode)
	}
	// Unreachable upstream yields 502.
	resp, _ = http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape("http://127.0.0.1:1/nope"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("dead upstream: %d", resp.StatusCode)
	}
}

func TestFetchCachesAndWatermarks(t *testing.T) {
	o := origin.New(99)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	s := testServer(t, nil)

	u := ots.URL + "/w/doc?size=3000"
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(HeaderSource) != SourceOrigin {
		t.Fatalf("source = %q", resp.Header.Get(HeaderSource))
	}
	markB64 := resp.Header.Get(HeaderWatermark)
	if markB64 == "" {
		t.Fatal("no watermark header")
	}
	pub, err := integrity.ParsePublicKey(fetchPubkey(t, s))
	if err != nil {
		t.Fatal(err)
	}
	mark := decodeB64(t, markB64)
	if err := integrity.Verify(pub, body, mark); err != nil {
		t.Fatalf("watermark invalid: %v", err)
	}

	// Second fetch: proxy hit, same watermark.
	resp2, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get(HeaderSource) != SourceProxy {
		t.Fatalf("second source = %q", resp2.Header.Get(HeaderSource))
	}
	if o.Fetches() != 1 {
		t.Fatalf("origin fetched %d times", o.Fetches())
	}
	st := s.Snapshot()
	if st.Requests != 2 || st.ProxyHits != 1 || st.OriginFetches != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func fetchPubkey(t *testing.T, s *Server) []byte {
	t.Helper()
	resp, err := http.Get(s.BaseURL() + "/pubkey")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	pem, _ := io.ReadAll(resp.Body)
	return pem
}

func decodeB64(t *testing.T, s string) []byte {
	t.Helper()
	out := make([]byte, len(s))
	n, err := base64StdDecode(out, s)
	if err != nil {
		t.Fatal(err)
	}
	return out[:n]
}

func TestRelayRejectsBadTickets(t *testing.T) {
	s := testServer(t, nil)
	resp, _ := http.Post(s.BaseURL()+"/relay/not-a-ticket", "", strings.NewReader("body"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("bad ticket: %d", resp.StatusCode)
	}
	resp, _ = http.Get(s.BaseURL() + "/relay/x")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET relay: %d", resp.StatusCode)
	}
}

func TestStatsAndHealth(t *testing.T) {
	s := testServer(t, nil)
	resp, err := http.Get(s.BaseURL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(s.BaseURL() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
}

func TestIndexSyncEndpoint(t *testing.T) {
	s := testServer(t, nil)
	reg := register(t, s, "http://127.0.0.1:1")
	sync, _ := json.Marshal(IndexSync{ClientID: reg.ClientID, Entries: []IndexEntry{
		{URL: "http://x/1", Size: 10}, {URL: "http://x/2", Size: 20},
	}})
	req, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/sync", bytes.NewReader(sync))
	req.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	req.Header.Set(HeaderToken, reg.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("sync status: %d", resp.StatusCode)
	}
	if s.Index().Len() != 2 {
		t.Fatalf("index len = %d", s.Index().Len())
	}
	// Re-sync with one entry replaces the directory.
	sync2, _ := json.Marshal(IndexSync{ClientID: reg.ClientID, Entries: []IndexEntry{{URL: "http://x/3", Size: 5}}})
	req2, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/sync", bytes.NewReader(sync2))
	req2.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	req2.Header.Set(HeaderToken, reg.Token)
	resp2, _ := http.DefaultClient.Do(req2)
	resp2.Body.Close()
	if s.Index().Len() != 1 || !s.Index().Has(reg.ClientID, s.syms.Intern("http://x/3")) {
		t.Fatal("re-sync did not replace directory")
	}
}

func TestIndexStrategyConfig(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Strategy = index.SelectLeastLoaded })
	if s.Index() == nil {
		t.Fatal("no index")
	}
}
