package proxy

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baps/internal/bloom"
	"baps/internal/index"
)

// postBatch sends one authenticated /index/batch and returns the status code.
func postBatch(t *testing.T, s *Server, reg RegisterResponse, batch IndexBatch) int {
	t.Helper()
	batch.ClientID = reg.ClientID
	body, err := json.Marshal(batch)
	if err != nil {
		t.Fatalf("marshal batch: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/batch", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	req.Header.Set(HeaderToken, reg.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post batch: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestResyncRateLimitConcurrent floods the proxy with concurrent anomalous
// batches — generation gaps and corrupt digests interleaved — and verifies
// the /peer/resync recovery pull stays rate-limited to one per client per
// window: a burst collapses into exactly one pull, and a fresh anomaly after
// the window earns exactly one more.
func TestResyncRateLimitConcurrent(t *testing.T) {
	var resyncs atomic.Int64
	browser := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/peer/resync" {
			resyncs.Add(1)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer browser.Close()

	s := testServer(t, nil)
	reg := register(t, s, browser.URL)

	// 20 concurrent batches, every one a drift trigger: even workers send
	// corrupt digests (unparseable → treated as mismatch), odd workers send
	// wildly jumping generations (gap). All should fold into ONE pull.
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := IndexBatch{Gen: uint64(1000 + i*7)}
			if i%2 == 0 {
				b.Digest = "!!!not-base64!!!"
			}
			if code := postBatch(t, s, reg, b); code != http.StatusNoContent {
				t.Errorf("batch %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()

	// The pull runs on its own goroutine; give it a moment to land, then
	// hold long enough to catch any extras that would violate the limit.
	deadline := time.Now().Add(time.Second)
	for resyncs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := resyncs.Load(); got != 1 {
		t.Fatalf("resync pulls after burst = %d, want exactly 1", got)
	}

	// Past the window a new anomaly is allowed one more pull.
	time.Sleep(resyncRateWindow + 50*time.Millisecond)
	if code := postBatch(t, s, reg, IndexBatch{Gen: 1, Digest: "!!!still-garbage!!!"}); code != http.StatusNoContent {
		t.Fatalf("post-window batch: status %d", code)
	}
	deadline = time.Now().Add(time.Second)
	for resyncs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := resyncs.Load(); got != 2 {
		t.Fatalf("resync pulls after window = %d, want exactly 2", got)
	}
	if pulls := s.Snapshot().IndexResyncPulls; pulls != 2 {
		t.Fatalf("IndexResyncPulls = %d, want 2", pulls)
	}
}

// benchDigestSetup builds a proxy holding docs index entries for one client
// and the matching base64 digest, so every comparison walks the full set and
// lands on "no drift".
func benchDigestSetup(b *testing.B, docs int) (*Server, int, string) {
	b.Helper()
	cfg := DefaultConfig()
	cfg.KeyBits = 1024
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	const client = 7
	f, err := bloom.NewFilterForFPR(docs, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < docs; i++ {
		u := fmt.Sprintf("http://bench.example/doc/%05d", i)
		s.idx.Add(index.Entry{Client: client, Doc: s.syms.Intern(u), Size: 1024, Version: 1})
		f.Add(u)
	}
	raw, err := f.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	return s, client, base64.StdEncoding.EncodeToString(raw)
}

// BenchmarkDigestCompare measures one digest comparison over a 2048-doc
// directory. "pooled" is the live path (per-client scratch filter reused
// across batches); "fresh" allocates the comparison filter every time, the
// behavior the pool replaced — the allocs/op gap is the point.
func BenchmarkDigestCompare(b *testing.B) {
	b.Run("pooled", func(b *testing.B) {
		s, client, digest := benchDigestSetup(b, 2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if s.digestMismatch(client, digest) {
				b.Fatal("unexpected drift")
			}
		}
	})
	b.Run("fresh", func(b *testing.B) {
		s, client, digest := benchDigestSetup(b, 2048)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			raw, err := base64.StdEncoding.DecodeString(digest)
			if err != nil {
				b.Fatal(err)
			}
			theirs, err := bloom.UnmarshalFilter(raw)
			if err != nil {
				b.Fatal(err)
			}
			ours, err := bloom.NewFilter(theirs.Bits(), theirs.K())
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range s.idx.ClientDocs(client) {
				ours.Add(s.syms.String(e.Doc))
			}
			if !ours.Equal(theirs) {
				b.Fatal("unexpected drift")
			}
		}
	})
}
