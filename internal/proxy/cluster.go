package proxy

// Multi-proxy federation: the proxy's cluster tier. A federated proxy owns a
// rendezvous-hash slice of the client population and exchanges periodic Bloom
// digests of its aggregate directory (proxy cache + browser index) with its
// siblings via internal/federation. A miss that the local browsers cannot
// cover then checks the sibling digests before the origin:
//
//	local tiers → own browsers → sibling digest check
//	            → GET  sibling/peer/locate   (confirm; digests lie at FPR)
//	            → GET  sibling/fetch + X-BAPS-Cluster-Hop: 1 (one-hop relay)
//	            → origin
//
// The hop header makes the sibling resolve only its local tiers and its own
// browsers — never its cluster tier or the origin — so relays cannot loop and
// a cluster-wide miss still costs exactly one origin fetch (at the
// requester). Relayed bodies are verified by incremental MD5 and re-signed
// under this proxy's own watermark key (each federated proxy keys its own
// client population).
//
// This file also carries the fetch pacer: MaxFetchRPS models "one proxy
// process = one machine of bounded capacity", which is what makes the
// federation load sweep's aggregate-RPS scaling measurable on a single box.

import (
	"context"
	"crypto/md5"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"baps/internal/federation"
	"baps/internal/intern"
	"baps/internal/obs"
)

// JoinCluster federates this proxy with sibling proxies at the given base
// URLs and starts the digest exchange loop. Call after Start (the proxy's
// own base URL is its cluster identity). Each sibling must list this proxy
// symmetrically in its own JoinCluster call.
func (s *Server) JoinCluster(peers []string) error {
	if s.baseURL == "" {
		return errors.New("proxy: JoinCluster before Start")
	}
	fed, err := federation.New(federation.Config{
		Self:             s.baseURL,
		Peers:            peers,
		Interval:         s.cfg.DigestInterval,
		DriftThreshold:   s.cfg.ClusterDriftThreshold,
		StaleAfter:       s.cfg.DigestStaleAfter,
		FPR:              s.cfg.DigestFPR,
		BreakerThreshold: s.cfg.BreakerThreshold,
		BreakerCooldown:  s.cfg.BreakerCooldown,
		Client:           s.peerClient,
		Logger:           s.logger,
		OnDigestSent:     func() { s.m.digestsSent.Inc() },
		OnDigestReceived: func() { s.m.digestsRecv.Inc() },
	}, s.localDocSet)
	if err != nil {
		return err
	}
	if !s.fed.CompareAndSwap(nil, fed) {
		return errors.New("proxy: already federated")
	}
	fed.Start()
	if s.logger != nil {
		s.logger.Info("joined federation", "self", s.baseURL, "siblings", len(peers))
	}
	return nil
}

// Cluster exposes the federation membership (nil on an unfederated proxy).
func (s *Server) Cluster() *federation.Cluster { return s.fed.Load() }

// localDocSet snapshots every URL this proxy can resolve without leaving the
// building: proxy cache residents (all tiers) plus every document at least
// one of its browsers indexes. This is the set the outbound digest summarizes.
func (s *Server) localDocSet() []string {
	s.mu.Lock()
	keys := s.cache.Keys()
	s.mu.Unlock()
	seen := make(map[string]struct{}, len(keys)*2)
	out := make([]string, 0, len(keys)*2)
	for _, k := range keys {
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	s.idx.ForEachDoc(func(doc intern.ID) {
		u := s.syms.String(doc)
		if _, dup := seen[u]; !dup {
			seen[u] = struct{}{}
			out = append(out, u)
		}
	})
	return out
}

// fedNote feeds local directory mutations to the federation's drift counter
// (no-op on an unfederated proxy).
func (s *Server) fedNote(n int) {
	if n <= 0 {
		return
	}
	if fed := s.fed.Load(); fed != nil {
		fed.NoteMutation(n)
	}
}

// handlePeerDigest ingests POST /peer/digest — a sibling's pushed Bloom
// summary of its resolvable URL set.
func (s *Server) handlePeerDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	fed := s.fed.Load()
	if fed == nil {
		http.Error(w, "proxy: not federated", http.StatusServiceUnavailable)
		return
	}
	var msg federation.DigestMsg
	if err := jsonDecode(io.LimitReader(r.Body, 16<<20), &msg); err != nil {
		http.Error(w, "proxy: bad digest body", http.StatusBadRequest)
		return
	}
	raw, err := base64.StdEncoding.DecodeString(msg.Digest)
	if err != nil {
		http.Error(w, "proxy: bad digest encoding", http.StatusBadRequest)
		return
	}
	if err := fed.ObserveDocs(msg.From, raw, msg.Docs); err != nil {
		// Unknown sender or corrupt filter — not part of this cluster.
		http.Error(w, "proxy: digest rejected", http.StatusForbidden)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handlePeerLocate answers GET /peer/locate?url=U — the sibling's
// membership-check confirmation. It consults residency only (PeekTier and the
// browser index), never touching LRU state or bodies, so a storm of locates
// cannot perturb replacement.
func (s *Server) handlePeerLocate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "proxy: GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.fed.Load() == nil {
		http.Error(w, "proxy: not federated", http.StatusServiceUnavailable)
		return
	}
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "proxy: missing url", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	_, _, resident := s.cache.PeekTier(url)
	s.mu.Unlock()
	if resident {
		s.m.clusterLocateConfirms.Inc()
		writeJSON(w, LocateResponse{Held: true, Via: "cache"})
		return
	}
	if doc, known := s.syms.Lookup(url); known && len(s.idx.Ordered(doc, -1)) > 0 {
		s.m.clusterLocateConfirms.Inc()
		writeJSON(w, LocateResponse{Held: true, Via: "browser"})
		return
	}
	s.m.clusterLocateFPs.Inc()
	http.Error(w, "proxy: not held", http.StatusNotFound)
}

// handleClusterFetch serves a sibling's one-hop relay (/fetch with
// X-BAPS-Cluster-Hop: 1): local tiers, then this proxy's own browsers under
// forced fetch-forward — never the cluster tier or the origin. Accounted
// separately from client traffic so per-proxy hit ratios stay meaningful.
func (s *Server) handleClusterFetch(w http.ResponseWriter, r *http.Request, url string) {
	s.m.clusterServes.Inc()
	if _, ok := s.serveLocal(w, url); ok {
		s.m.clusterServeHits.Inc()
		return
	}
	if !s.cfg.DisablePeer {
		if p := s.resolveRemoteMode(r.Context(), url, -1, FetchForward); p.ok {
			s.m.clusterServeHits.Inc()
			s.serveDoc(w, SourceProxy, p.body, p.meta)
			return
		}
	}
	http.Error(w, "proxy: not held", http.StatusNotFound)
}

// clusterRes is one completed sibling resolution, shared across coalesced
// requesters through clusterFlight. A cluster-wide miss is a *successful*
// negative result (ok=false), not an error: the flight group re-runs leaders
// that fail, and a whole pack of coalesced misses retrying the sibling walk
// is exactly the stampede the group exists to prevent.
type clusterRes struct {
	body []byte
	meta docMeta
	ok   bool
}

// resolveCluster is the fetch path's third tier: check sibling digests,
// confirm with /peer/locate, relay the body over a cluster-hop fetch.
// ok=false sends the caller to the origin.
func (s *Server) resolveCluster(ctx context.Context, url string) (fetchResult, bool) {
	fed := s.fed.Load()
	if fed == nil {
		return fetchResult{}, false
	}
	cands := fed.Candidates(url)
	if len(cands) == 0 {
		return fetchResult{}, false
	}
	obs.SpanFrom(ctx).Event("cluster_digest_hit", strconv.Itoa(len(cands))+" sibling digests claim url")
	res, shared, err := s.clusterFlight.Do(ctx, url, func() (clusterRes, error) {
		return s.clusterWalk(ctx, fed, url, cands), nil
	})
	if err != nil || !res.ok {
		return fetchResult{}, false
	}
	if shared {
		obs.SpanFrom(ctx).Event("coalesced", "attached to in-flight cluster resolution")
	}
	return fetchResult{body: res.body, meta: res.meta, source: SourceCluster, outcome: outClusterHit}, true
}

// clusterWalk tries each digest-claiming sibling in rendezvous order:
// locate (cheap) then relay (body). Locate denials are Bloom false
// positives — accounted, never charged to the breaker. Transport failures
// feed the sibling's breaker exactly like browser-peer failures.
func (s *Server) clusterWalk(ctx context.Context, fed *federation.Cluster, url string, cands []string) clusterRes {
	for _, peer := range cands {
		if ctx.Err() != nil {
			return clusterRes{}
		}
		held, err := s.locateAtSibling(ctx, peer, url)
		if err != nil {
			if ctx.Err() != nil {
				return clusterRes{}
			}
			if fed.NoteFailure(peer) {
				s.m.breakerOpened.Inc()
				if s.logger != nil {
					s.logger.Warn("sibling breaker opened", "sibling", peer, "err", err)
				}
			}
			continue
		}
		if !held {
			fed.NoteFalsePositive(peer)
			obs.SpanFrom(ctx).Event("cluster_fp", "digest claimed, locate denied: "+peer)
			continue
		}
		fed.NoteConfirm(peer)
		body, meta, err := s.fetchFromSibling(ctx, peer, url)
		if err != nil {
			if ctx.Err() != nil {
				return clusterRes{}
			}
			if errors.Is(err, errSiblingGone) {
				// Locate said held, the relay raced an eviction; the
				// sibling answered both times, so no breaker charge.
				continue
			}
			if fed.NoteFailure(peer) {
				s.m.breakerOpened.Inc()
				if s.logger != nil {
					s.logger.Warn("sibling breaker opened", "sibling", peer, "err", err)
				}
			}
			continue
		}
		fed.NoteFetch(peer)
		s.m.clusterFetches.Inc()
		obs.SpanFrom(ctx).Event("cluster_fetch", "relayed from "+peer)
		if s.cfg.CachePeerDocs {
			s.storeDoc(url, body, meta)
		}
		return clusterRes{body: body, meta: meta, ok: true}
	}
	return clusterRes{}
}

// errSiblingGone marks a cluster-hop relay that 404ed after locate confirmed:
// the sibling evicted the document between the two calls. Alive, just empty.
var errSiblingGone = errors.New("sibling no longer holds document")

// locateAtSibling asks one sibling to commit to its digest's claim.
func (s *Server) locateAtSibling(ctx context.Context, peer, url string) (held bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/peer/locate?url="+urlQueryEscape(url), nil)
	if err != nil {
		return false, err
	}
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return false, err
	}
	DrainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("sibling locate status %s", resp.Status)
	}
}

// fetchFromSibling relays url through a confirmed sibling with the
// cluster-hop header set. The body is MD5-hashed as it streams in and
// re-signed under this proxy's own watermark key — the sibling's signature
// belongs to a different key pair and means nothing to our clients.
func (s *Server) fetchFromSibling(ctx context.Context, peer, url string) ([]byte, docMeta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/fetch?url="+urlQueryEscape(url), nil)
	if err != nil {
		return nil, docMeta{}, err
	}
	req.Header.Set(HeaderClusterHop, "1")
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return nil, docMeta{}, err
	}
	if resp.StatusCode == http.StatusNotFound {
		DrainClose(resp)
		return nil, docMeta{}, errSiblingGone
	}
	if resp.StatusCode != http.StatusOK {
		DrainClose(resp)
		return nil, docMeta{}, fmt.Errorf("sibling fetch status %s", resp.Status)
	}
	defer resp.Body.Close()
	h := md5.New()
	body, err := readDoc(resp.Body, resp.ContentLength, h)
	if err != nil {
		if errors.Is(err, ErrDocTooLarge) {
			s.m.docTooLarge.Inc()
		}
		return nil, docMeta{}, err
	}
	digest := h.Sum(nil)
	mark, err := s.signer.WatermarkDigest(digest)
	if err != nil {
		return nil, docMeta{}, err
	}
	version, _ := strconv.ParseInt(resp.Header.Get(HeaderVersion), 10, 64)
	return body, docMeta{
		version:   version,
		size:      int64(len(body)),
		digest:    digest,
		watermark: mark,
	}, nil
}

// fetchPacer is a per-instance admission gate: client-facing fetches are
// spaced to at most rps per second, modeling each proxy process as one
// machine of bounded capacity. On a federated single-box deployment (and the
// load harness) this is what makes aggregate throughput scale with proxy
// count instead of every instance contending for the same core. Cluster-hop
// serves bypass the pacer — relaying for a sibling is backplane traffic.
type fetchPacer struct {
	mu   sync.Mutex
	next time.Time
	step time.Duration
}

func newFetchPacer(rps int) *fetchPacer {
	return &fetchPacer{step: time.Second / time.Duration(rps)}
}

// wait reserves the next send slot and sleeps until it arrives, honoring the
// request context. Each caller gets a distinct slot, so concurrent requests
// serialize to the configured rate without thundering on a single timer.
func (p *fetchPacer) wait(ctx context.Context) error {
	p.mu.Lock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now
	}
	at := p.next
	p.next = p.next.Add(p.step)
	p.mu.Unlock()
	d := at.Sub(now)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
