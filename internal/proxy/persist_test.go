package proxy

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"baps/internal/origin"
)

// diskTestConfig shapes a proxy whose memory tier holds exactly two 16 KiB
// documents, so a third fetch demotes the LRU one toward the disk tier.
func diskTestConfig(dir string) Config {
	cfg := DefaultConfig()
	cfg.KeyBits = 1024
	cfg.CacheCapacity = 200_000
	cfg.MemFraction = 0.2 // mem tier: 40_000 bytes
	cfg.DataDir = dir
	cfg.StateSaveEvery = 50 * time.Millisecond
	return cfg
}

func startDiskProxy(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := s.Start(""); err != nil {
		t.Fatalf("Start: %v", err)
	}
	o := origin.New(11)
	ots := httptest.NewServer(o.Handler())
	return s, ots
}

// fetchDoc GETs url through the proxy and returns (source header, body).
func fetchDoc(t *testing.T, s *Server, url string) (string, []byte) {
	t.Helper()
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(url))
	if err != nil {
		t.Fatalf("fetch %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("fetch %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch %s: status %d", url, resp.StatusCode)
	}
	return resp.Header.Get(HeaderSource), body
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDiskSpillStreamPromote drives the full two-tier disk lifecycle over
// HTTP: admission on second access, spill on demotion, first read-back
// streamed from disk, second read-back promoted to memory.
func TestDiskSpillStreamPromote(t *testing.T) {
	s, ots := startDiskProxy(t, diskTestConfig(t.TempDir()))
	defer s.Close()
	defer ots.Close()

	docA := ots.URL + "/a?size=16384"
	docB := ots.URL + "/b?size=16384"
	docC := ots.URL + "/c?size=16384"

	_, want := fetchDoc(t, s, docA) // origin miss, hits=1
	if src, _ := fetchDoc(t, s, docA); src != SourceProxy {
		t.Fatalf("second access source %q, want proxy", src) // hits=2: admitted
	}
	fetchDoc(t, s, docB) // hits=1
	fetchDoc(t, s, docC) // mem full: A demoted, admitted to disk

	waitFor(t, "spill of A", func() bool { return s.Snapshot().DiskWrites >= 1 })

	// First post-spill access streams from disk (no promote)...
	src, got := fetchDoc(t, s, docA)
	if src != SourceProxy {
		t.Fatalf("disk stream source %q, want proxy", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("disk stream body mismatch (%d bytes, want %d)", len(got), len(want))
	}
	if st := s.Snapshot(); st.DiskHits != 1 || st.DiskReads != 1 {
		t.Fatalf("after stream: disk_hits=%d disk_reads=%d, want 1/1", st.DiskHits, st.DiskReads)
	}
	s.mu.Lock()
	_, promoted := s.bodies[docA]
	s.mu.Unlock()
	if promoted {
		t.Fatal("first disk access promoted the body into memory")
	}

	// ...the second faults it back into the memory tier.
	if src, _ := fetchDoc(t, s, docA); src != SourceProxy {
		t.Fatalf("disk promote source %q, want proxy", src)
	}
	if st := s.Snapshot(); st.DiskHits != 2 {
		t.Fatalf("after promote: disk_hits=%d, want 2", st.DiskHits)
	}
	s.mu.Lock()
	_, promoted = s.bodies[docA]
	s.mu.Unlock()
	if !promoted {
		t.Fatal("second disk access did not promote the body")
	}
	// Disk hits are proxy hits on /stats.
	if st := s.Snapshot(); st.ProxyHits < 3 {
		t.Fatalf("proxy_hits=%d, want >=3 (1 mem + 2 disk)", st.ProxyHits)
	}
}

// TestDiskAdmissionShedsOneHitWonders: a body demoted after a single access
// never reaches the disk.
func TestDiskAdmissionShedsOneHitWonders(t *testing.T) {
	s, ots := startDiskProxy(t, diskTestConfig(t.TempDir()))
	defer s.Close()
	defer ots.Close()

	// Every doc fetched exactly once: each demotion is a one-hit wonder.
	for _, p := range []string{"/w1", "/w2", "/w3", "/w4", "/w5"} {
		fetchDoc(t, s, ots.URL+p+"?size=16384")
	}
	waitFor(t, "one-hit wonders shed", func() bool { return s.m.spillSkipped.Value() >= 3 })
	if w := s.Snapshot().DiskWrites; w != 0 {
		t.Fatalf("disk_writes=%d, want 0 (nothing admitted)", w)
	}
}

// TestDiskWarmRestartGraceful closes a disk-backed proxy and reopens it on
// the same directory: cached documents, /stats counters, client
// registrations (tokens stay valid) and batch generations all survive, and
// restored documents serve without touching the origin.
func TestDiskWarmRestartGraceful(t *testing.T) {
	dir := t.TempDir()
	s, ots := startDiskProxy(t, diskTestConfig(dir))
	defer ots.Close()

	// Register a browser so the client table has something to persist.
	rr, err := http.Post(s.BaseURL()+"/register", "application/json",
		bytes.NewReader([]byte(`{"peer_url":"http://127.0.0.1:1"}`)))
	if err != nil {
		t.Fatalf("register: %v", err)
	}
	var reg RegisterResponse
	if err := json.NewDecoder(rr.Body).Decode(&reg); err != nil {
		t.Fatalf("register decode: %v", err)
	}
	rr.Body.Close()
	s.batches.seed(reg.ClientID, 5)

	// Six documents, each accessed twice (admitted), cycling the mem tier so
	// most spill to disk.
	docs := []string{"/d1", "/d2", "/d3", "/d4", "/d5", "/d6"}
	bodies := make(map[string][]byte)
	for _, p := range docs {
		u := ots.URL + p + "?size=16384"
		_, b := fetchDoc(t, s, u)
		fetchDoc(t, s, u)
		bodies[u] = b
	}
	waitFor(t, "spills to settle", func() bool { return s.Snapshot().DiskWrites >= 3 })
	pre := s.Snapshot()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := New(diskTestConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := s2.Start(""); err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Close()

	if !bytes.Equal(s2.pubPEM, s.pubPEM) {
		t.Fatal("watermark key changed across restart; agents' cached pubkey is dead")
	}
	st := s2.Snapshot()
	if st.RestoredDocs < 3 {
		t.Fatalf("restored_docs=%d, want >=3", st.RestoredDocs)
	}
	if st.Requests != pre.Requests {
		t.Fatalf("restored requests=%d, want %d", st.Requests, pre.Requests)
	}
	if st.ProxyHits != pre.ProxyHits {
		t.Fatalf("restored proxy_hits=%d, want %d", st.ProxyHits, pre.ProxyHits)
	}
	if st.Clients != 1 {
		t.Fatalf("restored clients=%d, want 1", st.Clients)
	}
	s2.mu.Lock()
	tokID, tokOK := s2.tokens[reg.Token]
	s2.mu.Unlock()
	if !tokOK || tokID != reg.ClientID {
		t.Fatalf("restored token maps to (%d,%v), want (%d,true)", tokID, tokOK, reg.ClientID)
	}
	if gens := s2.batches.snapshotGens(); gens[reg.ClientID] != 5 {
		t.Fatalf("restored gen=%d, want 5", gens[reg.ClientID])
	}

	// A restored document serves locally — the origin is never contacted.
	for u, want := range bodies {
		s2.mu.Lock()
		_, _, resident := s2.cache.PeekTier(u)
		s2.mu.Unlock()
		if !resident {
			continue
		}
		before := st.OriginFetches
		src, got := fetchDoc(t, s2, u)
		if src != SourceProxy {
			t.Fatalf("restored doc source %q, want proxy", src)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("restored doc body mismatch for %s", u)
		}
		if after := s2.Snapshot().OriginFetches; after != before {
			t.Fatalf("restored doc hit the origin (%d -> %d)", before, after)
		}
		break
	}
	if warm := s2.Snapshot().RestartToWarmSec; warm <= 0 {
		t.Fatalf("restart_to_warm_sec=%v, want >0 after serving restored docs", warm)
	}
}

// TestDiskCrashRestartRecovers kills the proxy without any flush (the
// SIGKILL stand-in) and reopens the directory: everything the interval
// flush pushed to the OS is recovered.
func TestDiskCrashRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	s, ots := startDiskProxy(t, diskTestConfig(dir))
	defer ots.Close()

	u := ots.URL + "/crash-doc?size=16384"
	_, want := fetchDoc(t, s, u)
	fetchDoc(t, s, u) // admitted
	// Cycle the mem tier to demote and spill it.
	fetchDoc(t, s, ots.URL+"/f1?size=16384")
	fetchDoc(t, s, ots.URL+"/f2?size=16384")
	waitFor(t, "spill before crash", func() bool { return s.Snapshot().DiskWrites >= 1 })
	// Let the disk store's interval flush (100ms) reach the OS.
	time.Sleep(400 * time.Millisecond)
	s.Crash()

	s2, err := New(diskTestConfig(dir))
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if err := s2.Start(""); err != nil {
		t.Fatalf("restart after crash: %v", err)
	}
	defer s2.Close()

	if st := s2.Snapshot(); st.RestoredDocs < 1 {
		t.Fatalf("restored_docs=%d after crash, want >=1", st.RestoredDocs)
	}
	before := s2.Snapshot().OriginFetches
	src, got := fetchDoc(t, s2, u)
	if src != SourceProxy {
		t.Fatalf("post-crash source %q, want proxy", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-crash body mismatch")
	}
	if after := s2.Snapshot().OriginFetches; after != before {
		t.Fatal("post-crash fetch hit the origin")
	}
}

// TestWriteBehindPersistsHotMemTier: a hot document that never demotes out
// of the memory tier still gains a durable disk copy (via the write-behind
// tick) and survives a SIGKILL.
func TestWriteBehindPersistsHotMemTier(t *testing.T) {
	dir := t.TempDir()
	s, ots := startDiskProxy(t, diskTestConfig(dir))
	defer ots.Close()

	u := ots.URL + "/hot?size=16384"
	_, want := fetchDoc(t, s, u)
	fetchDoc(t, s, u) // hits=2: admitted, resident in the mem tier
	// No demotion ever happens; only write-behind can persist it.
	waitFor(t, "write-behind", func() bool { return s.Snapshot().DiskWrites >= 1 })
	s.mu.Lock()
	_, inMem := s.bodies[u]
	dur := s.durable[u]
	s.mu.Unlock()
	if !inMem || !dur {
		t.Fatalf("inMem=%v durable=%v, want both after write-behind", inMem, dur)
	}
	time.Sleep(400 * time.Millisecond) // interval fsync reaches the OS
	s.Crash()

	s2, err := New(diskTestConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Start(""); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	before := s2.Snapshot().OriginFetches
	src, got := fetchDoc(t, s2, u)
	if src != SourceProxy || !bytes.Equal(got, want) {
		t.Fatalf("hot doc lost across crash (source %q)", src)
	}
	if s2.Snapshot().OriginFetches != before {
		t.Fatal("hot doc refetched from origin after crash")
	}
}
