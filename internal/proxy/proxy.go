// Package proxy implements the live browsers-aware proxy server (§2 of the
// paper) on net/http: a caching proxy that additionally maintains the
// browser index of every connected client's cache and resolves proxy misses
// peer-to-peer from remote browser caches before going to the origin.
//
// The server speaks the wire protocol in wire.go:
//
//	POST /register      browser agents join; get id, token, proxy public key
//	POST /unregister    graceful departure; drops the client's index entries
//	POST /heartbeat     browser liveness signal (feeds the circuit breaker)
//	GET  /fetch?url=U   resolve a document (client id in X-BAPS-Client)
//	POST /index/add     immediate index update      (§2 protocol 1)
//	POST /index/remove  invalidation message        (§2 protocol 1)
//	POST /index/sync    periodic full re-sync       (§2 protocol 2)
//	POST /relay/{t}     holder drop point for direct-forward (§6.2 anonymity)
//	POST /report-bad    watermark-rejection report  (§6.1)
//	GET  /pubkey        proxy watermark key (PEM)
//	GET  /stats         JSON metrics
//	GET  /healthz       liveness
//
// Remote hits are delivered in one of the paper's two modes: fetch-forward
// (the proxy fetches from the holder's peer server, verifies the MD5 digest
// against its recorded watermark, optionally caches, forwards) or
// direct-forward (the proxy issues a one-time relay ticket so holder and
// requester exchange the document without learning each other's identity;
// the requester verifies the watermark itself).
package proxy

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"baps/internal/anonymity"
	"baps/internal/cache"
	"baps/internal/diskstore"
	"baps/internal/federation"
	"baps/internal/flight"
	"baps/internal/index"
	"baps/internal/integrity"
	"baps/internal/intern"
	"baps/internal/obs"
	"baps/internal/workqueue"
)

// ForwardMode mirrors core.ForwardMode for the live system.
type ForwardMode int

const (
	// FetchForward relays documents through the proxy.
	FetchForward ForwardMode = iota
	// DirectForward exchanges documents through an anonymous one-time
	// relay drop without entering the proxy cache.
	DirectForward
	// OnionForward delivers documents browser-to-browser over an
	// onion-routed covert path of relay browsers: the holder learns one
	// relay address, relays learn their neighbors, the requester learns
	// nothing, and the body never touches the proxy (§6.2's "no or
	// limited centralized control" variant).
	OnionForward
)

// Config parameterizes the live proxy.
type Config struct {
	// CacheCapacity is the proxy cache size in bytes.
	CacheCapacity int64
	// MemFraction is the memory-tier share (paper: 1/10).
	MemFraction float64
	// Policy is the replacement policy (paper: LRU).
	Policy cache.Policy
	// Forward selects the remote-hit delivery mode.
	Forward ForwardMode
	// CachePeerDocs: under FetchForward, also cache relayed documents.
	CachePeerDocs bool
	// Strategy selects among multiple holders.
	Strategy index.Strategy
	// PeerTimeout bounds holder contact + relay wait.
	PeerTimeout time.Duration
	// PeerSoftDeadline is the hedging threshold: when the peer path has
	// not produced a document after this long, the proxy races the origin
	// in parallel and serves whichever answers first, so a slow holder
	// never makes a request slower than a plain proxy miss. 0 disables
	// hedging (default half of PeerTimeout via DefaultConfig).
	PeerSoftDeadline time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// that trip a peer's circuit breaker, quarantining all its index
	// entries at once. <=0 disables the breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe may re-admit the peer (default 10s).
	BreakerCooldown time.Duration
	// HeartbeatTimeout trips the breaker of any peer with no liveness
	// signal (heartbeat, successful serve, registration) for this long.
	// 0 disables the silence sweep. The sweeper runs from Start.
	HeartbeatTimeout time.Duration
	// OriginRetries is how many times a transient upstream failure is
	// retried with exponential backoff + jitter (default 2).
	OriginRetries int
	// RetryBaseDelay is the first retry's backoff base (default 100ms).
	RetryBaseDelay time.Duration
	// Transport overrides the outbound http.RoundTripper for peer and
	// origin traffic — the chaos harness injects faults here. nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// OnionRelays is the number of intermediate relay browsers on an
	// OnionForward path (default 1; 0 sends holder→requester directly,
	// which exposes the requester's address to the holder).
	OnionRelays int
	// KeyBits sizes the watermark RSA key (default 2048; tests use less).
	KeyBits int
	// IndexShards is the browser index's lock-stripe count; request
	// goroutines touching different documents take different shard locks.
	// <=0 uses index.DefaultShards.
	IndexShards int
	// DisablePeer turns the browsers-aware layer off entirely (a live
	// proxy-and-local-browser baseline for comparisons).
	DisablePeer bool
	// Metrics is the registry all proxy metrics register on; nil creates a
	// private registry (exposed at /metrics and via Obs either way).
	Metrics *obs.Registry
	// Logger, when non-nil, receives structured logs including one
	// request-summary line per /fetch with decision outcome and latency.
	Logger *slog.Logger
	// TraceDepth is the request-trace ring size (finished spans retained
	// for GET /trace). <=0 uses obs.DefaultTraceDepth.
	TraceDepth int
	// TraceSample, when non-nil, receives every TraceSampleEvery-th
	// finished span as one JSON line (a sampled JSONL event log).
	TraceSample io.Writer
	// TraceSampleEvery is the sampling modulus for TraceSample (<=0
	// disables sampling; 1 logs every span).
	TraceSampleEvery int

	// DataDir, when non-empty, enables the crash-safe disk tier: demoted
	// memory-tier bodies spill into a diskstore journaled under this
	// directory, and startup replays it to warm-restart the cache, the
	// /stats counters, and the client/generation tables. Empty keeps the
	// proxy fully in-memory (the previous behavior).
	DataDir string
	// DiskFsync selects the disk tier's durability policy (default
	// interval).
	DiskFsync diskstore.FsyncPolicy
	// DiskMaxBytes bounds the disk tier's live bytes (<=0: CacheCapacity,
	// so the whole two-tier residency survives a restart).
	DiskMaxBytes int64
	// DiskRetention drops disk-tier documents untouched for this long
	// (0 disables age-based retention).
	DiskRetention time.Duration
	// StateSaveEvery is the interval between persisted state-blob
	// snapshots (counters, clients, generations; <=0: 2s).
	StateSaveEvery time.Duration

	// Federation knobs (active once JoinCluster is called; see cluster.go).
	// DigestInterval is the sibling digest push period (<=0: 1s).
	DigestInterval time.Duration
	// DigestStaleAfter quarantines a sibling whose last digest is older
	// than this (<=0: 4×DigestInterval) — pushed digests double as the
	// inter-proxy liveness signal.
	DigestStaleAfter time.Duration
	// DigestFPR is the digest Bloom filter's false-positive target
	// (<=0: 0.01). Every false positive costs one wasted /peer/locate.
	DigestFPR float64
	// ClusterDriftThreshold forces an early digest push after this many
	// local directory mutations (<=0: 256).
	ClusterDriftThreshold int
	// MaxFetchRPS paces client-facing /fetch admission to this rate,
	// modeling one proxy process as one machine of bounded capacity
	// (<=0 disables; cluster-hop serves for siblings are never paced).
	MaxFetchRPS int

	// Background work plane (pipeline.go, DESIGN.md §14). The workqueue
	// itself always runs — invalidation fan-out rides on it whenever a
	// modification is observed — but the two scanning producers are
	// opt-in: RevalidateAfter > 0 enables background origin revalidation,
	// PrefetchInterval > 0 enables popularity-driven pushes into
	// under-loaded browser caches.
	//
	// RevalidateAfter is the age past which a resident document is
	// conditionally re-fetched (If-None-Match + If-Modified-Since) in the
	// background.
	RevalidateAfter time.Duration
	// RevalidateEvery is the revalidation scan period (<=0:
	// RevalidateAfter/4, min 25ms).
	RevalidateEvery time.Duration
	// RevalidateRPS rate-limits revalidate jobs (<=0: 256/s).
	RevalidateRPS float64
	// PrefetchInterval is the popularity scan period; each round the
	// hottest resident documents are pushed to the least-loaded agents.
	PrefetchInterval time.Duration
	// PrefetchMinHits is the access count that makes a document a
	// prefetch candidate (<=0: 3).
	PrefetchMinHits int
	// PrefetchFanout bounds pushes per scan round (<=0: 4).
	PrefetchFanout int
	// PrefetchRPS rate-limits prefetch push jobs (<=0: 64/s).
	PrefetchRPS float64
	// QueueWorkers / QueueCapacity / QueueMaxAttempts / QueueRetryBackoff
	// / QueueJobTimeout tune the workqueue; zero values take the
	// workqueue defaults (4 workers, 1024/level, 3 attempts, 100ms,
	// 10s), except QueueJobTimeout which defaults to PeerTimeout.
	QueueWorkers      int
	QueueCapacity     int
	QueueMaxAttempts  int
	QueueRetryBackoff time.Duration
	QueueJobTimeout   time.Duration
}

// DefaultConfig returns production-ish defaults.
func DefaultConfig() Config {
	return Config{
		CacheCapacity:    256 << 20,
		MemFraction:      0.10,
		Policy:           cache.LRU,
		Forward:          FetchForward,
		CachePeerDocs:    true,
		Strategy:         index.SelectMostRecent,
		PeerTimeout:      5 * time.Second,
		PeerSoftDeadline: 2500 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  10 * time.Second,
		HeartbeatTimeout: 30 * time.Second,
		OriginRetries:    2,
		RetryBaseDelay:   100 * time.Millisecond,
		KeyBits:          2048,
		OnionRelays:      1,
	}
}

type peerInfo struct {
	id       int
	baseURL  string
	token    string
	relayKey []byte // AES-256 covert-path key
}

type docMeta struct {
	version   int64
	size      int64
	digest    []byte // MD5
	watermark []byte // RSA signature over digest
	// Revalidation bookkeeping (pipeline.go): when the body was acquired,
	// when a background conditional GET last confirmed it fresh, and the
	// origin's Last-Modified text for If-Modified-Since.
	storedAt  time.Time
	checkedAt time.Time
	lastMod   string
}

type relaySession struct {
	holder int
	url    string
	ch     chan relayDelivery
}

type relayDelivery struct {
	stream    *relayStream
	watermark string
	version   string
}

// Server is the live browsers-aware proxy.
type Server struct {
	cfg    Config
	signer *integrity.Signer
	pubPEM []byte

	mu      sync.Mutex
	cache   *cache.TwoTier
	bodies  map[string][]byte
	meta    map[string]docMeta
	peers   map[int]peerInfo
	// peersByURL indexes registrations by advertised base URL so the
	// re-register supersede path is a lookup, not a scan — at agent-host
	// scale (tens of thousands of registrations, constant churn) the old
	// O(peers) walk per /register dominated registration cost.
	peersByURL map[string]int
	tokens     map[string]int // token → client id
	nextID  int
	started time.Time

	// Disk-tier plane (nil/unused without Config.DataDir). bodies then
	// holds only memory-tier bodies; spillStage parks demoted bodies until
	// the spill worker lands them in ds; hits counts accesses per resident
	// key for spill admission and read-back promotion; demoted collects
	// the keys the last cache call pushed out of the memory tier. All
	// under mu except ds itself, which is never called with mu held.
	ds              *diskstore.Store
	spillStage      map[string]stagedDoc
	hits            map[string]int
	durable         map[string]bool // current mem body also lives on disk
	demoted         []string
	spillq          chan spillOp
	stopDisk        chan struct{}
	diskOnce        sync.Once
	diskWG          sync.WaitGroup
	restoredDocs    int
	restoredClients int
	warmTarget      int64
	warmHits        atomic.Int64
	warmAt          atomic.Int64 // unix nanos when warm; 0 = not yet

	idx     *index.Sharded
	syms    *intern.Sync
	tickets *anonymity.TicketStore
	health  *healthTracker
	batches *batchState

	relayMu sync.Mutex
	relays  map[anonymity.Ticket]*relaySession
	// usedTickets maps completed relay tickets to the holder that served
	// them so /report-bad can prune the right peer. Bounded by FIFO
	// eviction of the oldest tickets (never wiped wholesale): usedOrder
	// is the arrival queue, usedHead its logical start.
	usedTickets    map[string]int
	usedOrder      []string
	usedHead       int
	maxUsedTickets int

	// Request-coalescing planes: missFlight collapses concurrent /fetch
	// misses for one URL into a single resolution (fetch-forward only;
	// direct/onion deliveries are requester-specific), originFlight
	// collapses concurrent origin acquisitions regardless of mode, and
	// clusterFlight collapses concurrent sibling walks for one URL.
	missFlight    flight.Group[fetchResult]
	originFlight  flight.Group[upstreamDoc]
	clusterFlight flight.Group[clusterRes]

	// Federation plane: fed is set by JoinCluster (after Start, while
	// requests may already be flowing — hence the atomic pointer); pacer
	// gates client-facing fetch admission under Config.MaxFetchRPS.
	fed   atomic.Pointer[federation.Cluster]
	pacer *fetchPacer

	// Background work plane (pipeline.go): wq runs the revalidation,
	// prefetch, and invalidation jobs; pop counts per-doc accesses for
	// prefetch nomination (under mu); pushed dedups recent pushes so one
	// hot document is not re-pushed to the same agent every round.
	wq           *workqueue.Queue
	pop          map[string]int64
	pushed       map[string]time.Time
	stopPipeline chan struct{}
	pipelineWG   sync.WaitGroup
	pipeOnce     sync.Once

	// peerClient carries proxy→browser traffic (shallow per-host pools,
	// many hosts); originClient carries proxy→origin traffic (deep pool,
	// few hosts, no overall timeout — request contexts bound it).
	peerClient   *http.Client
	originClient *http.Client

	listener  net.Listener
	httpSrv   *http.Server
	baseURL   string
	stopSweep chan struct{}
	sweepOnce sync.Once

	// Observability plane: all counters live in m's registry (served at
	// /metrics, snapshotted into the /stats wire shape), spans in tracer.
	m      *serverMetrics
	tracer *obs.Tracer
	logger *slog.Logger
}

// New builds a proxy server (not yet listening; call Start).
func New(cfg Config) (*Server, error) {
	if cfg.CacheCapacity < 0 {
		return nil, errors.New("proxy: negative cache capacity")
	}
	if cfg.MemFraction <= 0 || cfg.MemFraction > 1 {
		return nil, fmt.Errorf("proxy: MemFraction %g out of (0,1]", cfg.MemFraction)
	}
	if cfg.PeerTimeout <= 0 {
		cfg.PeerTimeout = 5 * time.Second
	}
	if cfg.KeyBits == 0 {
		cfg.KeyBits = 2048
	}
	if cfg.OriginRetries < 0 {
		cfg.OriginRetries = 0
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = 100 * time.Millisecond
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.DiskMaxBytes <= 0 {
		cfg.DiskMaxBytes = cfg.CacheCapacity
	}
	if cfg.StateSaveEvery <= 0 {
		cfg.StateSaveEvery = 2 * time.Second
	}
	if cfg.RevalidateAfter > 0 && cfg.RevalidateEvery <= 0 {
		cfg.RevalidateEvery = cfg.RevalidateAfter / 4
		if cfg.RevalidateEvery < 25*time.Millisecond {
			cfg.RevalidateEvery = 25 * time.Millisecond
		}
	}
	if cfg.RevalidateRPS <= 0 {
		cfg.RevalidateRPS = 256
	}
	if cfg.PrefetchMinHits <= 0 {
		cfg.PrefetchMinHits = 3
	}
	if cfg.PrefetchFanout <= 0 {
		cfg.PrefetchFanout = 4
	}
	if cfg.PrefetchRPS <= 0 {
		cfg.PrefetchRPS = 64
	}
	if cfg.QueueJobTimeout <= 0 {
		cfg.QueueJobTimeout = cfg.PeerTimeout
	}
	signer, err := loadOrCreateSigner(cfg)
	if err != nil {
		return nil, err
	}
	pubPEM, err := integrity.MarshalPublicKey(signer.Public())
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:            cfg,
		signer:         signer,
		pubPEM:         pubPEM,
		bodies:         make(map[string][]byte),
		meta:           make(map[string]docMeta),
		peers:          make(map[int]peerInfo),
		peersByURL:     make(map[string]int),
		tokens:         make(map[string]int),
		idx:            index.NewSharded(cfg.Strategy, cfg.IndexShards),
		syms:           intern.NewSync(),
		tickets:        anonymity.NewTicketStore(cfg.PeerTimeout),
		health:         newHealthTracker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		batches:        newBatchState(),
		relays:         make(map[anonymity.Ticket]*relaySession),
		usedTickets:    make(map[string]int),
		maxUsedTickets: 4096,
		stopSweep:      make(chan struct{}),
		started:        time.Now(),
		spillStage:     make(map[string]stagedDoc),
		hits:           make(map[string]int),
		durable:        make(map[string]bool),
		spillq:         make(chan spillOp, 256),
		stopDisk:       make(chan struct{}),
		pop:            make(map[string]int64),
		pushed:         make(map[string]time.Time),
		stopPipeline:   make(chan struct{}),
	}
	if cfg.MaxFetchRPS > 0 {
		s.pacer = newFetchPacer(cfg.MaxFetchRPS)
	}
	// Outbound traffic splits by class so origin keep-alive pools (few
	// hosts, deep) and peer pools (many hosts, shallow) are tuned
	// separately. A Config.Transport override (the chaos harness's fault
	// injector) applies to both.
	peerRT := http.RoundTripper(NewTransport(PeerIdleConnsPerHost))
	originRT := http.RoundTripper(NewTransport(OriginIdleConnsPerHost))
	if cfg.Transport != nil {
		peerRT, originRT = cfg.Transport, cfg.Transport
	}
	s.peerClient = &http.Client{Timeout: cfg.PeerTimeout, Transport: peerRT}
	s.originClient = &http.Client{Timeout: cfg.PeerTimeout, Transport: originRT}
	copts := cache.Options{OnEvict: func(d cache.Doc) {
		delete(s.bodies, d.Key)
		delete(s.spillStage, d.Key)
		delete(s.hits, d.Key)
		delete(s.durable, d.Key)
		if s.ds != nil {
			// The disk copy dies with the accounting entry; best-effort —
			// a full queue leaves the orphan to the retention sweep.
			select {
			case s.spillq <- spillOp{key: d.Key, del: true}:
			default:
			}
		}
	}}
	if cfg.DataDir != "" {
		copts.OnDemote = s.onDemote
	}
	tc, err := cache.NewTwoTier(cfg.Policy, cfg.CacheCapacity,
		int64(float64(cfg.CacheCapacity)*cfg.MemFraction), copts)
	if err != nil {
		return nil, err
	}
	s.cache = tc
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s.m = newServerMetrics(reg, s)
	s.wq = s.newWorkqueue(reg)
	s.tracer = obs.NewTracer(cfg.TraceDepth)
	if cfg.TraceSample != nil {
		s.tracer.SetSample(cfg.TraceSample, cfg.TraceSampleEvery)
	}
	s.logger = cfg.Logger
	if cfg.DataDir != "" {
		if err := s.openDiskTier(); err != nil {
			return nil, fmt.Errorf("proxy: disk tier: %w", err)
		}
	}
	return s, nil
}

// Start listens on addr ("127.0.0.1:0" when empty) and serves in the
// background. BaseURL reports the bound address.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("proxy: listen: %w", err)
	}
	s.listener = ln
	s.baseURL = "http://" + ln.Addr().String()
	s.httpSrv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go s.httpSrv.Serve(ln)
	if s.cfg.HeartbeatTimeout > 0 {
		go s.heartbeatSweeper()
	}
	if s.restoredClients > 0 {
		// Warm restart with a restored client table: pull every peer's full
		// directory, since the in-memory browser index died with the old
		// process. Clients whose batch generation moved past the snapshot
		// are additionally caught by the generation-gap path.
		go s.ResyncAll()
	}
	s.startPipeline()
	return nil
}

// heartbeatSweeper periodically trips the breaker of peers that have been
// silent (no heartbeat, serve, or registration) past HeartbeatTimeout.
func (s *Server) heartbeatSweeper() {
	interval := s.cfg.HeartbeatTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopSweep:
			return
		case <-t.C:
			s.sweepSilentPeers()
		}
	}
}

// sweepSilentPeers quarantines every peer whose breaker the silence sweep
// trips, counting each as a heartbeat miss.
func (s *Server) sweepSilentPeers() {
	for _, id := range s.health.SweepSilent(s.cfg.HeartbeatTimeout) {
		s.m.heartbeatMisses.Inc()
		s.m.breakerOpened.Inc()
		s.idx.Quarantine(id)
		if s.logger != nil {
			s.logger.Warn("breaker opened by silence sweep", "client", id)
		}
	}
}

// Close shuts the proxy down gracefully: drain in-flight requests, spill
// every staged body, persist a final state snapshot, and flush the disk
// journal to stable storage.
func (s *Server) Close() error {
	s.sweepOnce.Do(func() { close(s.stopSweep) })
	// Stop the background producers first (no new jobs), then drain the
	// workqueue: every accepted revalidation/prefetch/invalidation job
	// completes or dead-letters before the server tears down the clients
	// those jobs use.
	s.pipeOnce.Do(func() { close(s.stopPipeline) })
	s.pipelineWG.Wait()
	s.wq.Close()
	if fed := s.fed.Load(); fed != nil {
		fed.Stop()
	}
	// Drop our own pooled keep-alive connections to siblings and browsers.
	// An idle (or raced-but-unused) outbound connection pins the remote
	// server's graceful Shutdown until it times out, so a departing proxy
	// hangs up before draining its own listeners.
	s.peerClient.CloseIdleConnections()
	var err error
	if s.httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		err = s.httpSrv.Shutdown(ctx)
		cancel()
	}
	if s.ds != nil {
		s.diskOnce.Do(func() { close(s.stopDisk) })
		s.diskWG.Wait()
		s.saveState()
		if cerr := s.ds.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// BaseURL reports the server's base URL after Start.
func (s *Server) BaseURL() string { return s.baseURL }

// Index exposes the sharded browser index (tests and diagnostics).
func (s *Server) Index() *index.Sharded { return s.idx }

// Syms exposes the proxy's URL interner (tests and diagnostics).
func (s *Server) Syms() *intern.Sync { return s.syms }

// Handler returns the HTTP handler (usable standalone with httptest, but
// direct-forward relays need Start so the proxy knows its own base URL).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/register", s.handleRegister)
	mux.HandleFunc("/unregister", s.handleUnregister)
	mux.HandleFunc("/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("/fetch", s.handleFetch)
	mux.HandleFunc("/index/add", s.handleIndexAdd)
	mux.HandleFunc("/index/remove", s.handleIndexRemove)
	mux.HandleFunc("/index/sync", s.handleIndexSync)
	mux.HandleFunc("/index/batch", s.handleIndexBatch)
	mux.HandleFunc("/index/multibatch", s.handleIndexMultiBatch)
	mux.HandleFunc("/queue/deadletter", s.handleQueueDeadLetter)
	mux.HandleFunc("/queue/replay", s.handleQueueReplay)
	mux.HandleFunc("/peer/digest", s.handlePeerDigest)
	mux.HandleFunc("/peer/locate", s.handlePeerLocate)
	mux.HandleFunc("/peer/invalidate", s.handlePeerInvalidate)
	mux.HandleFunc("/relay/", s.handleRelay)
	mux.HandleFunc("/report-bad", s.handleReportBad)
	mux.HandleFunc("/pubkey", s.handlePubkey)
	mux.HandleFunc("/stats", s.handleStats)
	mux.Handle("/metrics", s.m.reg.Handler())
	mux.Handle("/trace", s.tracer.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	return mux
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		http.Error(w, "proxy: bad register body", http.StatusBadRequest)
		return
	}
	if !strings.HasPrefix(req.PeerURL, "http://") && !strings.HasPrefix(req.PeerURL, "https://") {
		http.Error(w, "proxy: bad peer_url", http.StatusBadRequest)
		return
	}
	tok, err := anonymity.NewKey()
	if err != nil {
		http.Error(w, "proxy: token", http.StatusInternalServerError)
		return
	}
	relayKey, err := anonymity.NewKey()
	if err != nil {
		http.Error(w, "proxy: relay key", http.StatusInternalServerError)
		return
	}
	token := base64.RawURLEncoding.EncodeToString(tok[:16])
	peerURL := strings.TrimRight(req.PeerURL, "/")
	s.mu.Lock()
	// A browser re-registering its peer URL (crash-restart without a clean
	// /unregister) supersedes its previous identity. Dropping the old
	// registration here — not just shadowing it — keeps a quarantined old
	// id's stale index entries from resolving to a registration the sweep
	// can never clear (the new id heartbeats; the old one never will).
	oldID := -1
	if pid, ok := s.peersByURL[peerURL]; ok {
		oldID = pid
		delete(s.tokens, s.peers[pid].token)
		delete(s.peers, pid)
	}
	id := s.nextID
	s.nextID++
	s.peers[id] = peerInfo{id: id, baseURL: peerURL, token: token, relayKey: relayKey}
	s.peersByURL[peerURL] = id
	s.tokens[token] = id
	s.mu.Unlock()
	if oldID >= 0 {
		s.idx.DropClient(oldID)
		s.health.Forget(oldID)
		s.batches.forget(oldID)
		s.fedNote(1)
		if s.logger != nil {
			s.logger.Info("client re-registered; superseding old identity",
				"old_client", oldID, "client", id, "peer_url", peerURL)
		}
	}
	s.health.Track(id)
	s.m.registers.Inc()
	if s.logger != nil {
		s.logger.Info("client registered", "client", id, "peer_url", req.PeerURL)
	}
	writeJSON(w, RegisterResponse{
		ClientID:  id,
		Token:     token,
		PublicKey: string(s.pubPEM),
		RelayKey:  base64.StdEncoding.EncodeToString(relayKey),
	})
}

// handleUnregister is the graceful-departure path: a closing browser drops
// all its index entries immediately instead of lingering as a
// guaranteed-false peer until fetch failures prune it.
func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.authClient(r)
	if !ok {
		http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
		return
	}
	s.mu.Lock()
	p, exists := s.peers[id]
	if exists {
		delete(s.peers, id)
		delete(s.tokens, p.token)
		if s.peersByURL[p.baseURL] == id {
			delete(s.peersByURL, p.baseURL)
		}
	}
	s.mu.Unlock()
	if exists {
		s.idx.DropClient(id)
		s.health.Forget(id)
		s.batches.forget(id)
		s.fedNote(1)
		s.m.unregisters.Inc()
		s.m.idxDrop.Inc()
		if s.logger != nil {
			s.logger.Info("client unregistered", "client", id)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleHeartbeat records a browser liveness signal. Peers that stop
// heartbeating past HeartbeatTimeout are quarantined by the sweeper without
// waiting for a fetch against them to fail.
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.authClient(r)
	if !ok {
		http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
		return
	}
	s.m.heartbeats.Inc()
	s.health.Beat(id)
	w.WriteHeader(http.StatusNoContent)
}

// authClient validates the client id + token headers on index updates.
func (s *Server) authClient(r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.Header.Get(HeaderClient))
	if err != nil {
		return 0, false
	}
	token := r.Header.Get(HeaderToken)
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, ok := s.tokens[token]
	return id, ok && owner == id
}

func (s *Server) handleIndexAdd(w http.ResponseWriter, r *http.Request) {
	s.handleIndexUpdate(w, r, true)
}

func (s *Server) handleIndexRemove(w http.ResponseWriter, r *http.Request) {
	s.handleIndexUpdate(w, r, false)
}

func (s *Server) handleIndexUpdate(w http.ResponseWriter, r *http.Request, add bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.authClient(r)
	if !ok {
		http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
		return
	}
	var upd IndexUpdate
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&upd); err != nil || upd.Entry.URL == "" {
		http.Error(w, "proxy: bad index update", http.StatusBadRequest)
		return
	}
	if upd.ClientID != id {
		http.Error(w, "proxy: client mismatch", http.StatusForbidden)
		return
	}
	if add {
		s.m.idxAdd.Inc()
		s.idx.Add(index.Entry{
			Client:  id,
			Doc:     s.syms.Intern(upd.Entry.URL),
			Size:    upd.Entry.Size,
			Version: upd.Entry.Version,
			Stamp:   upd.Entry.Stamp,
		})
	} else if doc, known := s.syms.Lookup(upd.Entry.URL); known {
		s.m.idxRemove.Inc()
		// A URL the proxy never interned has no entries to remove; not
		// interning here keeps bogus invalidations from growing the table.
		s.idx.Remove(id, doc)
	}
	s.fedNote(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleIndexSync(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.authClient(r)
	if !ok {
		http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
		return
	}
	var sync IndexSync
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&sync); err != nil {
		http.Error(w, "proxy: bad sync body", http.StatusBadRequest)
		return
	}
	if sync.ClientID != id {
		http.Error(w, "proxy: client mismatch", http.StatusForbidden)
		return
	}
	entries := make([]index.Entry, 0, len(sync.Entries))
	for _, e := range sync.Entries {
		entries = append(entries, index.Entry{
			Client: id, Doc: s.syms.Intern(e.URL), Size: e.Size, Version: e.Version, Stamp: e.Stamp,
		})
	}
	s.idx.ResyncClient(id, entries)
	s.fedNote(len(entries) + 1)
	if sync.Gen > 0 {
		// A generation-stamped full sync re-seats the batch sequence, so
		// the sender's next /index/batch is judged against this point.
		s.batches.seed(id, sync.Gen)
	}
	s.m.idxResync.Inc()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePubkey(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-pem-file")
	w.Write(s.pubPEM)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Snapshot())
}

// ResyncAll asks every registered browser for a full directory re-sync —
// the index-recovery path after a proxy restart (the §2 periodic update,
// pulled on demand). It returns the number of peers that acknowledged.
func (s *Server) ResyncAll() int {
	s.mu.Lock()
	peers := make([]peerInfo, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	acked := 0
	for _, p := range peers {
		req, err := http.NewRequest(http.MethodPost, p.baseURL+"/peer/resync", nil)
		if err != nil {
			continue
		}
		req.Header.Set(HeaderToken, p.token)
		resp, err := s.peerClient.Do(req)
		if err != nil {
			continue
		}
		DrainClose(resp)
		if resp.StatusCode == http.StatusOK {
			acked++
		}
	}
	return acked
}

// Snapshot returns current metrics. The JSON wire shape predates the
// obs.Registry; every counter is now read back from the registry so /stats
// and /metrics can never disagree.
func (s *Server) Snapshot() Stats {
	s.mu.Lock()
	cacheDocs := s.cache.Len()
	cacheBytes := s.cache.Used()
	clients := len(s.peers)
	s.mu.Unlock()
	closed, open, halfOpen := s.health.Counts()
	var dsStats diskstore.Stats
	if s.ds != nil {
		dsStats = s.ds.StatsSnapshot()
	}
	var fedStats *federation.Stats
	if fed := s.fed.Load(); fed != nil {
		fs := fed.Snapshot()
		fedStats = &fs
	}
	wqStats := s.wq.Stats()
	m := s.m
	return Stats{
		Requests:  m.requests.Value(),
		ProxyHits: m.outProxyHit.Value() + m.outDiskHit.Value(),
		RemoteHits: m.outPeerFetch.Value() +
			m.outPeerDirect.Value() +
			m.outPeerOnion.Value(),
		OriginFetches:         m.outOrigin.Value() + m.outOriginHedged.Value(),
		FalsePeerHits:         m.falsePeer.Value(),
		TamperRejected:        m.watermarkRejected.Value(),
		RelayTimeouts:         m.relayTimeouts.Value(),
		Coalesced:             m.coalesced.Sum(),
		DocTooLarge:           m.docTooLarge.Value(),
		OriginRetries:         m.originRetries.Value(),
		HedgedWins:            m.outOriginHedged.Value(),
		Heartbeats:            m.heartbeats.Value(),
		HeartbeatMisses:       m.heartbeatMisses.Value(),
		BreakerTrips:          m.breakerOpened.Value(),
		BreakerReadmits:       m.breakerClosed.Value(),
		Unregisters:           m.unregisters.Value(),
		BreakerClosed:         closed,
		BreakerOpen:           open,
		BreakerHalfOpen:       halfOpen,
		QuarantinedEntries:    s.idx.QuarantinedEntries(),
		IndexBatches:          m.idxBatch.Value(),
		IndexBatchDeltas:      m.idxBatchDeltas.Value(),
		IndexGenGaps:          m.idxGenGaps.Value(),
		IndexDigestMismatches: m.idxDigestMismatch.Value(),
		IndexResyncPulls:      m.idxResyncPulls.Value(),
		DiskHits:              m.outDiskHit.Value(),
		DiskDocs:              dsStats.Docs,
		DiskBytes:             dsStats.LiveBytes,
		DiskWrites:            m.diskWrites.Value(),
		DiskReads:             m.diskReads.Value(),
		DiskCorrupt:           m.diskCorrupt.Value(),
		DiskEvictions:         m.diskEvictions.Value(),
		RestoredDocs:          s.restoredDocs,
		RestartToWarmSec:      s.restartToWarmSeconds(),
		ClusterFetches:        m.clusterFetches.Value(),
		ClusterServes:         m.clusterServes.Value(),
		ClusterServeHits:      m.clusterServeHits.Value(),
		ClusterLocateConfirms: m.clusterLocateConfirms.Value(),
		ClusterLocateFPs:      m.clusterLocateFPs.Value(),
		DigestsSent:           m.digestsSent.Value(),
		DigestsReceived:       m.digestsRecv.Value(),
		Federation:            fedStats,
		Revalidations:         m.revalFresh.Value() + m.revalChanged.Value(),
		RevalidationsChanged:  m.revalChanged.Value(),
		PrefetchPushes:        m.prefetchPushes.Value(),
		InvalidationsSent:     m.invalLocal.Value() + m.invalBrowser.Value() + m.invalSibling.Value(),
		InvalidationsReceived: m.invalRecv.Value(),
		Workqueue:             &wqStats,
		IndexEntries:          s.idx.Len(),
		CacheDocs:             cacheDocs,
		CacheBytes:            cacheBytes,
		Clients:               clients,
		UptimeSec:             time.Since(s.started).Seconds(),
		PeerHealth:            s.health.Snapshot(),
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
