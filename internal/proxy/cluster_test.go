package proxy

import (
	"bytes"
	"crypto/md5"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"baps/internal/bloom"
	"baps/internal/integrity"
	"baps/internal/origin"
)

// addIndexEntry posts an authenticated /index/add for one URL.
func addIndexEntry(t *testing.T, s *Server, reg RegisterResponse, url string, size int64) {
	t.Helper()
	body, _ := jsonBytes(IndexUpdate{ClientID: reg.ClientID, Entry: IndexEntry{URL: url, Size: size}})
	req, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/add", bytes.NewReader(body))
	req.Header.Set(HeaderClient, fmt.Sprint(reg.ClientID))
	req.Header.Set(HeaderToken, reg.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("index add status %d", resp.StatusCode)
	}
}

// federate builds n started proxies joined into one full-mesh cluster with a
// fast digest interval.
func federate(t *testing.T, n int, mutate func(*Config)) []*Server {
	t.Helper()
	proxies := make([]*Server, n)
	for i := range proxies {
		proxies[i] = testServer(t, func(c *Config) {
			c.DigestInterval = 50 * time.Millisecond
			if mutate != nil {
				mutate(c)
			}
		})
	}
	for i, s := range proxies {
		var peers []string
		for j, p := range proxies {
			if j != i {
				peers = append(peers, p.BaseURL())
			}
		}
		if err := s.JoinCluster(peers); err != nil {
			t.Fatalf("JoinCluster(%d): %v", i, err)
		}
	}
	return proxies
}

// waitCandidates polls until s's federation digests claim url at a sibling.
func waitCandidates(t *testing.T, s *Server, url string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if cands := s.Cluster().Candidates(url); len(cands) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no sibling digest ever claimed %s", url)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterRelayFromSiblingCache: a document cached at proxy A reaches a
// client of proxy B through the digest → locate → cluster-hop pipeline, with
// no second origin fetch and a watermark re-signed under B's own key.
func TestClusterRelayFromSiblingCache(t *testing.T) {
	o := origin.New(11)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	ps := federate(t, 2, nil)
	a, b := ps[0], ps[1]

	u := ots.URL + "/cluster/doc?size=4000"
	resp, err := http.Get(a.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(HeaderSource) != SourceOrigin {
		t.Fatalf("first fetch source = %q, want origin", resp.Header.Get(HeaderSource))
	}

	waitCandidates(t, b, u)
	resp, err = http.Get(b.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster fetch status %d", resp.StatusCode)
	}
	if src := resp.Header.Get(HeaderSource); src != SourceCluster {
		t.Fatalf("source = %q, want %q", src, SourceCluster)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("relayed body differs (%d vs %d bytes)", len(got), len(want))
	}
	if n := o.Fetches(); n != 1 {
		t.Fatalf("origin fetched %d times, want 1 (cluster should have absorbed the second)", n)
	}
	// The relayed body is re-signed by B: its watermark must verify under
	// B's key (A's signature would not).
	mark, err := base64.StdEncoding.DecodeString(resp.Header.Get(HeaderWatermark))
	if err != nil {
		t.Fatal(err)
	}
	sum := md5.Sum(got)
	if err := integrity.VerifyDigest(b.signer.Public(), sum[:], mark); err != nil {
		t.Fatalf("relayed watermark does not verify under B's key: %v", err)
	}

	// B cached the relay (CachePeerDocs): next fetch is a local hit.
	resp, err = http.Get(b.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if src := resp.Header.Get(HeaderSource); src != SourceProxy {
		t.Fatalf("post-relay source = %q, want proxy", src)
	}

	// Accounting: requester counted a cluster fetch, sibling a cluster
	// serve that did NOT inflate its client-facing request counter.
	bs, as := b.Snapshot(), a.Snapshot()
	if bs.ClusterFetches != 1 {
		t.Fatalf("B cluster_fetches = %d, want 1", bs.ClusterFetches)
	}
	if as.ClusterServes != 1 || as.ClusterServeHits != 1 {
		t.Fatalf("A cluster serves = %d/%d, want 1/1", as.ClusterServes, as.ClusterServeHits)
	}
	if as.Requests != 1 {
		t.Fatalf("A requests = %d, want 1 (cluster hops must not count)", as.Requests)
	}
	if bs.Federation == nil || len(bs.Federation.Siblings) != 1 || bs.Federation.Siblings[0].Fetches != 1 {
		t.Fatalf("B federation snapshot missing the sibling fetch: %+v", bs.Federation)
	}
}

// TestClusterHopDoesNotCascade: a cluster-hop request for a document nobody
// holds answers 404 without touching the receiver's own cluster tier or the
// origin — the loop/cascade guard.
func TestClusterHopDoesNotCascade(t *testing.T) {
	o := origin.New(3)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	ps := federate(t, 2, nil)

	req, _ := http.NewRequest(http.MethodGet, ps[0].BaseURL()+"/fetch?url="+urlQueryEscape(ots.URL+"/absent"), nil)
	req.Header.Set(HeaderClusterHop, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cluster-hop miss status %d, want 404", resp.StatusCode)
	}
	if o.Fetches() != 0 {
		t.Fatal("cluster-hop miss reached the origin")
	}
	st := ps[0].Snapshot()
	if st.ClusterServes != 1 || st.ClusterServeHits != 0 {
		t.Fatalf("serves = %d/%d, want 1/0", st.ClusterServes, st.ClusterServeHits)
	}
	if st.Requests != 0 {
		t.Fatalf("requests = %d, want 0", st.Requests)
	}
}

// TestClusterBloomFalsePositive: a digest that wrongly claims a URL costs one
// locate round trip, is accounted as a false positive on both sides, and the
// request falls through to the origin.
func TestClusterBloomFalsePositive(t *testing.T) {
	o := origin.New(5)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	// A slow interval keeps A's real (empty) digests from overwriting the
	// hand-fed one mid-test.
	ps := federate(t, 2, func(c *Config) { c.DigestInterval = time.Hour })
	a, b := ps[0], ps[1]

	u := ots.URL + "/fp/doc"
	// Hand-feed B a digest from A claiming u (A holds nothing).
	f, err := bloom.NewFilterForFPR(64, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f.Add(u)
	raw, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Cluster().ObserveDocs(a.BaseURL(), raw, 1); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(b.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if src := resp.Header.Get(HeaderSource); src != SourceOrigin {
		t.Fatalf("source = %q, want origin after FP", src)
	}
	if o.Fetches() != 1 {
		t.Fatalf("origin fetches = %d, want 1", o.Fetches())
	}
	fs := b.Cluster().Snapshot()
	if len(fs.Siblings) != 1 || fs.Siblings[0].FalsePositives != 1 {
		t.Fatalf("requester FP accounting missing: %+v", fs.Siblings)
	}
	if a.Snapshot().ClusterLocateFPs != 1 {
		t.Fatalf("sibling locate-FP counter = %d, want 1", a.Snapshot().ClusterLocateFPs)
	}
}

// TestClusterServesFromSiblingBrowser: a document held only by one of A's
// browsers still reaches B's clients — the cluster hop walks A's browser
// index under forced fetch-forward.
func TestClusterServesFromSiblingBrowser(t *testing.T) {
	ps := federate(t, 2, func(c *Config) { c.CachePeerDocs = false })
	a, b := ps[0], ps[1]

	const body = "browser-held document body"
	u := "http://origin.invalid/browser/only"
	sum := md5.Sum([]byte(body))
	mark, err := a.signer.WatermarkDigest(sum[:])
	if err != nil {
		t.Fatal(err)
	}
	browser := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/peer/doc" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(HeaderVersion, "0")
		w.Header().Set(HeaderWatermark, base64.StdEncoding.EncodeToString(mark))
		fmt.Fprint(w, body)
	}))
	defer browser.Close()

	reg := register(t, a, browser.URL)
	addIndexEntry(t, a, reg, u, int64(len(body)))

	waitCandidates(t, b, u)
	resp, err := http.Get(b.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if src := resp.Header.Get(HeaderSource); src != SourceCluster {
		t.Fatalf("source = %q, want cluster", src)
	}
	if string(got) != body {
		t.Fatalf("body = %q", got)
	}
	_ = reg
}

// TestPeerEndpointsRequireFederation: /peer/digest and /peer/locate answer
// 503 on an unfederated proxy.
func TestPeerEndpointsRequireFederation(t *testing.T) {
	s := testServer(t, nil)
	resp, err := http.Post(s.BaseURL()+"/peer/digest", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("digest status %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(s.BaseURL() + "/peer/locate?url=http://x/y")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("locate status %d, want 503", resp.StatusCode)
	}
}

// TestFetchPacerBoundsRate: MaxFetchRPS caps client-facing throughput.
func TestFetchPacerBoundsRate(t *testing.T) {
	o := origin.New(9)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	s := testServer(t, func(c *Config) { c.MaxFetchRPS = 50 })

	u := ots.URL + "/paced/doc"
	start := time.Now()
	const n = 20
	for i := 0; i < n; i++ {
		resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	elapsed := time.Since(start)
	// 20 requests at 50/s reserve slots spanning ≥ 19 × 20ms = 380ms.
	if elapsed < 300*time.Millisecond {
		t.Fatalf("%d paced requests finished in %v; pacer not limiting", n, elapsed)
	}
}
