package proxy

import (
	"encoding/base64"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"baps/internal/index"
)

// fakePeer registers a scripted peer server with the proxy: it accepts
// /peer/send instructions but never delivers to the relay — a crashed or
// malicious holder.
func fakePeer(t *testing.T, s *Server, behave func(w http.ResponseWriter, r *http.Request)) RegisterResponse {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/peer/send", behave)
	mux.HandleFunc("/peer/doc", behave)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return register(t, s, ts.URL)
}

func TestRelayTimeoutFallsThroughToUpstream(t *testing.T) {
	// Origin for the fallback.
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("authentic body"))
	}))
	defer origin.Close()

	s := testServer(t, func(c *Config) {
		c.Forward = DirectForward
		c.PeerTimeout = 300 * time.Millisecond
	})
	// A holder that ACKs the send instruction but never pushes.
	reg := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	})
	u := origin.URL + "/doc"
	s.Index().Add(indexEntryFor(s, reg.ClientID, u, 14))

	start := time.Now()
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(HeaderSource) != SourceOrigin {
		t.Fatalf("source = %q, want origin after relay timeout", resp.Header.Get(HeaderSource))
	}
	if string(body) != "authentic body" {
		t.Fatalf("body = %q", body)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("returned in %v — relay timeout not awaited", elapsed)
	}
	st := s.Snapshot()
	if st.RelayTimeouts != 1 || st.FalsePeerHits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// The dead holder was pruned.
	if s.Index().Has(reg.ClientID, s.syms.Intern(u)) {
		t.Fatal("dead holder still indexed")
	}
}

func TestPeerRefusalPrunesAndFallsThrough(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("origin copy"))
	}))
	defer origin.Close()

	s := testServer(t, func(c *Config) { c.Forward = FetchForward })
	// A holder that 404s every peer fetch (evicted the doc, stale index).
	reg := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "not cached", http.StatusNotFound)
	})
	u := origin.URL + "/doc2"
	s.Index().Add(indexEntryFor(s, reg.ClientID, u, 11))

	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get(HeaderSource) != SourceOrigin {
		t.Fatalf("source = %q", resp.Header.Get(HeaderSource))
	}
	if s.Snapshot().FalsePeerHits != 1 {
		t.Fatalf("false peer hits: %+v", s.Snapshot())
	}
	if s.Index().Has(reg.ClientID, s.syms.Intern(u)) {
		t.Fatal("refusing holder still indexed")
	}
}

func TestDepartedPeerPruned(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("x"))
	}))
	defer origin.Close()
	s := testServer(t, nil)
	u := origin.URL + "/gone"
	// Index entry for a client id that never registered.
	s.Index().Add(indexEntryFor(s, 999, u, 1))
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if s.Index().Has(999, s.syms.Intern(u)) {
		t.Fatal("unregistered holder still indexed")
	}
}

func indexEntryFor(s *Server, client int, url string, size int64) index.Entry {
	return index.Entry{Client: client, Doc: s.syms.Intern(url), Size: size}
}

// TestUpstreamCoalescing: concurrent misses for the same cold document cost
// one origin round trip.
func TestUpstreamCoalescing(t *testing.T) {
	var fetches int64
	var fetchMu sync.Mutex
	release := make(chan struct{})
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fetchMu.Lock()
		fetches++
		fetchMu.Unlock()
		<-release // hold all concurrent fetchers at the origin
		w.Write([]byte("slow body"))
	}))
	defer origin.Close()

	s := testServer(t, nil)
	u := origin.URL + "/cold"
	const n = 8
	var wg sync.WaitGroup
	results := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
			if err != nil {
				results <- "err"
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- string(body)
		}()
	}
	// Give the goroutines a moment to pile up, then release the origin.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()
	close(results)
	for r := range results {
		if r != "slow body" {
			t.Fatalf("bad result %q", r)
		}
	}
	fetchMu.Lock()
	defer fetchMu.Unlock()
	if fetches != 1 {
		t.Fatalf("origin fetched %d times for %d concurrent requests, want 1", fetches, n)
	}
}

// TestPeerBodyWithoutProxyRecord exercises the proxy-restart path of
// fetchFromPeer: the proxy has no digest record for the document, so it
// accepts the holder's stored watermark only if it verifies under the
// proxy's own key — which a forger cannot produce.
func TestPeerBodyWithoutProxyRecord(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Forward = FetchForward })

	goodBody := []byte("the authentic document body")
	mark, err := s.signer.Watermark(goodBody)
	if err != nil {
		t.Fatal(err)
	}
	markB64 := base64.StdEncoding.EncodeToString(mark)

	// Holder 1 serves the body with the valid watermark.
	regGood := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderWatermark, markB64)
		w.Header().Set(HeaderVersion, "0")
		w.Write(goodBody)
	})
	u := "http://origin.invalid/never-fetched"
	s.Index().Add(indexEntryFor(s, regGood.ClientID, u, int64(len(goodBody))))

	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(HeaderSource) != SourceRemote {
		t.Fatalf("source = %q, want remote (valid stored watermark)", resp.Header.Get(HeaderSource))
	}
	if string(body) != string(goodBody) {
		t.Fatalf("body = %q", body)
	}

	// Holder 2 serves a forged body with a bogus watermark for a second
	// URL; the origin is unreachable, so the fetch must fail outright —
	// never serve unverifiable peer content.
	regBad := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderWatermark, base64.StdEncoding.EncodeToString([]byte("forged")))
		w.Header().Set(HeaderVersion, "0")
		w.Write([]byte("malicious content"))
	})
	u2 := "http://127.0.0.1:1/unreachable"
	s.Index().Add(indexEntryFor(s, regBad.ClientID, u2, int64(len("malicious content"))))
	resp2, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u2))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadGateway {
		t.Fatalf("forged content served: status %d", resp2.StatusCode)
	}
	if s.Snapshot().TamperRejected == 0 {
		t.Fatal("tamper not recorded")
	}
	if s.Index().Has(regBad.ClientID, s.syms.Intern(u2)) {
		t.Fatal("forging holder still indexed")
	}
}
