package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"baps/internal/workqueue"
)

// TestQueueAdminEndpoints drives the dead-letter admin plane end to end:
// a retry-exhausted background job shows up on GET /queue/deadletter, POST
// /queue/replay pushes it back through the queue, and once it completes the
// ring is empty again.
func TestQueueAdminEndpoints(t *testing.T) {
	s := testServer(t, func(c *Config) {
		c.QueueJobTimeout = 250 * time.Millisecond
	})

	var calls atomic.Int64
	if err := s.wq.Submit(workqueue.Job{Kind: "admin_test", Key: "k", Run: func(context.Context) error {
		if calls.Add(1) <= 3 { // default MaxAttempts = 3: dead-letters once
			return errors.New("induced")
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, 5*time.Second, "job to dead-letter", func() bool {
		return s.wq.Stats().DeadLettered == 1
	})

	resp, err := http.Get(s.BaseURL() + "/queue/deadletter?n=8")
	if err != nil {
		t.Fatal(err)
	}
	var dl DeadLetterResponse
	if err := json.NewDecoder(resp.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(dl.DeadLetters) != 1 || dl.DeadLetters[0].Kind != "admin_test" || dl.DeadLetters[0].Err != "induced" {
		t.Fatalf("deadletter response = %+v", dl)
	}

	resp, err = http.Post(s.BaseURL()+"/queue/replay", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReplayResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rr.Replayed != 1 || rr.Skipped != 0 {
		t.Fatalf("replay response = %+v, want 1 replayed", rr)
	}
	pollUntil(t, 5*time.Second, "replayed job to complete", func() bool {
		return s.wq.Stats().Completed >= 1
	})
	if got := len(s.wq.DeadLetters()); got != 0 {
		t.Fatalf("ring still holds %d after successful replay", got)
	}
}
