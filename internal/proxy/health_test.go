package proxy

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a healthTracker deterministically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newTestTracker(threshold int, cooldown time.Duration) (*healthTracker, *fakeClock) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	h := newHealthTracker(threshold, cooldown)
	h.now = clk.Now
	return h, clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	h, _ := newTestTracker(3, time.Second)
	h.Track(1)
	if h.Failure(1) || h.Failure(1) {
		t.Fatal("tripped before threshold")
	}
	if !h.Failure(1) {
		t.Fatal("third consecutive failure must trip")
	}
	if h.Allow(1) {
		t.Fatal("open breaker admitted a request")
	}
	// A success between failures resets the count.
	h.Track(2)
	h.Failure(2)
	h.Failure(2)
	h.Success(2, time.Millisecond)
	if h.Failure(2) || h.Failure(2) {
		t.Fatal("count not reset by success")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	h, clk := newTestTracker(1, time.Second)
	h.Track(1)
	if !h.Failure(1) {
		t.Fatal("threshold 1 must trip on first failure")
	}
	if h.Allow(1) {
		t.Fatal("admitted during cooldown")
	}
	clk.Advance(time.Second + time.Millisecond)
	if !h.Allow(1) {
		t.Fatal("cooldown elapsed: probe must be admitted")
	}
	// Second caller while the probe is in flight is rejected.
	if h.Allow(1) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe success closes the breaker and reports re-admission.
	if !h.Success(1, 5*time.Millisecond) {
		t.Fatal("probe success did not report re-admission")
	}
	if !h.Allow(1) {
		t.Fatal("closed breaker must admit")
	}
	// Re-admission is not reported twice.
	if h.Success(1, time.Millisecond) {
		t.Fatal("second success reported re-admission again")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	h, clk := newTestTracker(1, time.Second)
	h.Track(1)
	h.Failure(1)
	clk.Advance(time.Second + time.Millisecond)
	if !h.Allow(1) {
		t.Fatal("probe not admitted")
	}
	// The failed probe reopens without reporting a fresh trip (entries
	// are already quarantined).
	if h.Failure(1) {
		t.Fatal("failed probe must not report a new trip")
	}
	if h.Allow(1) {
		t.Fatal("reopened breaker admitted a request")
	}
	clk.Advance(time.Second + time.Millisecond)
	if !h.Allow(1) {
		t.Fatal("second cooldown must admit another probe")
	}
}

func TestSweepSilentTripsOnlyQuietClosedPeers(t *testing.T) {
	h, clk := newTestTracker(3, time.Second)
	h.Track(1)
	h.Track(2)
	clk.Advance(10 * time.Second)
	h.Beat(2) // peer 2 keeps beating
	tripped := h.SweepSilent(5 * time.Second)
	if len(tripped) != 1 || tripped[0] != 1 {
		t.Fatalf("tripped = %v, want [1]", tripped)
	}
	if h.Allow(1) {
		t.Fatal("silent peer still admitted")
	}
	if !h.Allow(2) {
		t.Fatal("beating peer blocked")
	}
	// Already-open peers are not re-tripped.
	if again := h.SweepSilent(5 * time.Second); len(again) != 0 {
		t.Fatalf("re-tripped: %v", again)
	}
}

func TestHealthSnapshotOrderedAndTouch(t *testing.T) {
	h, clk := newTestTracker(3, time.Second)
	for _, id := range []int{5, 1, 3} {
		h.Track(id)
	}
	h.Success(3, 10*time.Millisecond)
	clk.Advance(2 * time.Second)
	h.Touch(1)
	snap := h.Snapshot()
	if len(snap) != 3 || snap[0].Client != 1 || snap[1].Client != 3 || snap[2].Client != 5 {
		t.Fatalf("snapshot order: %+v", snap)
	}
	if snap[0].LastSeenAgeSec != 0 {
		t.Fatalf("Touch did not refresh last-seen: %+v", snap[0])
	}
	if snap[1].EWMALatencyMs != 10 {
		t.Fatalf("ewma = %v, want 10ms", snap[1].EWMALatencyMs)
	}
}

func TestRememberTicketFIFOEviction(t *testing.T) {
	s := testServer(t, nil)
	s.maxUsedTickets = 4
	for i := 0; i < 7; i++ {
		s.rememberTicket(fmt.Sprintf("t%d", i), i)
	}
	// Oldest three evicted, newest four retained — never a full wipe.
	for i := 0; i < 3; i++ {
		if _, ok := s.ticketHolder(fmt.Sprintf("t%d", i)); ok {
			t.Errorf("t%d not evicted", i)
		}
	}
	for i := 3; i < 7; i++ {
		holder, ok := s.ticketHolder(fmt.Sprintf("t%d", i))
		if !ok || holder != i {
			t.Errorf("t%d: holder=%d ok=%v", i, holder, ok)
		}
	}
	// Re-recording an existing ticket must not grow the queue.
	s.rememberTicket("t6", 99)
	if holder, ok := s.ticketHolder("t6"); !ok || holder != 99 {
		t.Error("duplicate record lost")
	}
	if holder, ok := s.ticketHolder("t3"); !ok || holder != 3 {
		t.Errorf("t3 evicted by duplicate record: holder=%d ok=%v", holder, ok)
	}
}

func TestFetchAuthenticatesClientHeader(t *testing.T) {
	originTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("doc"))
	}))
	defer originTS.Close()
	s := testServer(t, nil)
	reg := register(t, s, "http://127.0.0.1:1")
	u := originTS.URL + "/auth/doc"

	get := func(client, token string) int {
		req, _ := http.NewRequest(http.MethodGet, s.BaseURL()+"/fetch?url="+urlQueryEscape(u), nil)
		if client != "" {
			req.Header.Set(HeaderClient, client)
		}
		if token != "" {
			req.Header.Set(HeaderToken, token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	// Claiming an identity without (or with a wrong) token is rejected.
	if code := get(strconv.Itoa(reg.ClientID), ""); code != http.StatusForbidden {
		t.Errorf("missing token: %d", code)
	}
	if code := get(strconv.Itoa(reg.ClientID), "forged"); code != http.StatusForbidden {
		t.Errorf("forged token: %d", code)
	}
	if code := get(strconv.Itoa(reg.ClientID+1), reg.Token); code != http.StatusForbidden {
		t.Errorf("mismatched id: %d", code)
	}
	// Authenticated and anonymous fetches both pass.
	if code := get(strconv.Itoa(reg.ClientID), reg.Token); code != http.StatusOK {
		t.Errorf("valid credentials: %d", code)
	}
	if code := get("", ""); code != http.StatusOK {
		t.Errorf("anonymous: %d", code)
	}
}

func TestHeartbeatAndUnregisterEndpoints(t *testing.T) {
	s := testServer(t, nil)
	reg := register(t, s, "http://127.0.0.1:1")

	post := func(path, client, token string) int {
		req, _ := http.NewRequest(http.MethodPost, s.BaseURL()+path, nil)
		req.Header.Set(HeaderClient, client)
		req.Header.Set(HeaderToken, token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	id := strconv.Itoa(reg.ClientID)
	if code := post("/heartbeat", id, "wrong"); code != http.StatusForbidden {
		t.Errorf("bad heartbeat token: %d", code)
	}
	if code := post("/heartbeat", id, reg.Token); code != http.StatusNoContent {
		t.Errorf("heartbeat: %d", code)
	}
	if st := s.Snapshot(); st.Heartbeats != 1 {
		t.Errorf("heartbeats = %d", st.Heartbeats)
	}

	s.Index().Add(indexEntryFor(s, reg.ClientID, "http://x/a", 10))
	if code := post("/unregister", id, reg.Token); code != http.StatusNoContent {
		t.Errorf("unregister: %d", code)
	}
	st := s.Snapshot()
	if st.Unregisters != 1 || st.Clients != 0 || st.IndexEntries != 0 {
		t.Errorf("after unregister: %+v", st)
	}
	// The departed client's token is dead.
	if code := post("/heartbeat", id, reg.Token); code != http.StatusForbidden {
		t.Errorf("post-unregister heartbeat: %d", code)
	}
}

// TestPeerCrashMidTransfer: a holder that dies while streaming the body
// (connection aborted mid-response) is detected; the request falls through
// to the origin and the failure counts toward the holder's breaker.
func TestPeerCrashMidTransfer(t *testing.T) {
	originTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("authentic body"))
	}))
	defer originTS.Close()

	s := testServer(t, func(c *Config) { c.Forward = FetchForward })
	reg := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", "100000")
		w.WriteHeader(http.StatusOK)
		w.Write(make([]byte, 1000))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // crash mid-transfer
	})
	u := originTS.URL + "/crash/doc"
	s.Index().Add(indexEntryFor(s, reg.ClientID, u, 14))

	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get(HeaderSource) != SourceOrigin || string(body) != "authentic body" {
		t.Fatalf("source=%q body=%q", resp.Header.Get(HeaderSource), body)
	}
	st := s.Snapshot()
	if st.FalsePeerHits != 1 {
		t.Fatalf("false peer hits: %+v", st)
	}
	if len(st.PeerHealth) != 1 || st.PeerHealth[0].Failures != 1 {
		t.Fatalf("crash not charged to the peer: %+v", st.PeerHealth)
	}
	if s.Index().Has(reg.ClientID, s.syms.Intern(u)) {
		t.Fatal("crashed holder's entry not pruned")
	}
}

// TestBreakerQuarantinesWholePeer: once a peer trips, its other entries are
// shelved in the same step and holder selection skips them — no
// one-failed-fetch-per-document discovery.
func TestBreakerQuarantinesWholePeer(t *testing.T) {
	originTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fallback"))
	}))
	defer originTS.Close()

	s := testServer(t, func(c *Config) {
		c.Forward = FetchForward
		c.BreakerThreshold = 1
	})
	reg := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler) // dead peer
	})
	u1 := originTS.URL + "/q/1"
	u2 := originTS.URL + "/q/2"
	u3 := originTS.URL + "/q/3"
	for _, u := range []string{u1, u2, u3} {
		s.Index().Add(indexEntryFor(s, reg.ClientID, u, 8))
	}

	fetch := func(u string) {
		t.Helper()
		resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	fetch(u1) // trips the breaker, quarantines u2+u3 in the same step
	st := s.Snapshot()
	if st.BreakerTrips != 1 || st.QuarantinedEntries != 2 || st.BreakerOpen != 1 {
		t.Fatalf("after trip: %+v", st)
	}
	// u2's fetch must not contact the dead peer (only one transport
	// failure ever recorded) — it goes straight to the origin.
	fetch(u2)
	st = s.Snapshot()
	if st.FalsePeerHits != 1 {
		t.Fatalf("open breaker was bypassed: %+v", st)
	}
	// The quarantined entries survive (shelved, not deleted).
	if !s.Index().Has(reg.ClientID, s.syms.Intern(u2)) || !s.Index().Has(reg.ClientID, s.syms.Intern(u3)) {
		t.Fatal("quarantined entries were deleted")
	}
}

// TestHedgedOriginWinsOverSlowPeer: when the peer path exceeds the soft
// deadline, the origin is raced in parallel and the client is served
// without waiting out PeerTimeout.
func TestHedgedOriginWinsOverSlowPeer(t *testing.T) {
	originTS := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fast origin"))
	}))
	defer originTS.Close()

	s := testServer(t, func(c *Config) {
		c.Forward = FetchForward
		c.PeerTimeout = 3 * time.Second
		c.PeerSoftDeadline = 100 * time.Millisecond
	})
	reg := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second) // grinding holder
	})
	u := originTS.URL + "/slow/doc"
	s.Index().Add(indexEntryFor(s, reg.ClientID, u, 11))

	start := time.Now()
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.Header.Get(HeaderSource) != SourceOrigin || string(body) != "fast origin" {
		t.Fatalf("source=%q body=%q", resp.Header.Get(HeaderSource), body)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged fetch took %v — peer path was awaited", elapsed)
	}
	if st := s.Snapshot(); st.HedgedWins != 1 {
		t.Fatalf("hedged win not recorded: %+v", st)
	}
}

// TestReRegisterSupersedesQuarantinedIdentity: a browser that crashed,
// was quarantined by the silence sweep, and came back on the same peer URL
// with a fresh /register must fully displace its old identity. The
// regression this guards: the old client id's index entries survived as
// quarantined holders of a registration that would never heartbeat again —
// unservable, unsweepable, and shadowing the live replacement.
func TestReRegisterSupersedesQuarantinedIdentity(t *testing.T) {
	s := testServer(t, nil)
	const peerURL = "http://127.0.0.1:45678"
	u := "http://example.com/super/doc"

	reg1 := register(t, s, peerURL)
	addIndexEntry(t, s, reg1, u, 11)
	// The silence sweep quarantined the crashed browser's id.
	s.Index().Quarantine(reg1.ClientID)
	if s.Index().QuarantinedEntries() != 1 {
		t.Fatalf("setup: quarantined entries = %d, want 1", s.Index().QuarantinedEntries())
	}

	// Crash-restart: same peer URL, new registration.
	reg2 := register(t, s, peerURL)
	if reg2.ClientID == reg1.ClientID {
		t.Fatalf("re-register reused client id %d", reg2.ClientID)
	}
	if reg2.Token == reg1.Token {
		t.Fatal("re-register reused token")
	}

	// The old identity is gone root and branch: no index entries (not even
	// quarantined ones), and the old token no longer authenticates.
	doc, ok := s.Syms().Lookup(u)
	if !ok {
		t.Fatal("doc not interned")
	}
	if s.Index().Has(reg1.ClientID, doc) {
		t.Fatal("old client id still holds an index entry after re-register")
	}
	if n := s.Index().QuarantinedEntries(); n != 0 {
		t.Fatalf("quarantined entries after re-register = %d, want 0", n)
	}
	body, _ := jsonBytes(IndexUpdate{ClientID: reg1.ClientID, Entry: IndexEntry{URL: u, Size: 11}})
	req, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/add", bytes.NewReader(body))
	req.Header.Set(HeaderClient, fmt.Sprint(reg1.ClientID))
	req.Header.Set(HeaderToken, reg1.Token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("stale token index add: status %d, want 403", resp.StatusCode)
	}

	// The replacement identity is fully live.
	addIndexEntry(t, s, reg2, u, 11)
	if !s.Index().Has(reg2.ClientID, doc) {
		t.Fatal("new client id's entry missing")
	}
	if got := len(s.Index().Ordered(doc, -1)); got != 1 {
		t.Fatalf("orderable holders = %d, want 1 (the new id)", got)
	}
}
