// Background work plane (DESIGN.md §14): the three producers that ride the
// workqueue, decoupling consistency upkeep and proactive placement from the
// request path.
//
//   - Origin revalidation: resident documents past RevalidateAfter are
//     conditionally re-fetched (If-None-Match + If-Modified-Since against
//     the origin's validators). A 304 just refreshes the freshness clock; a
//     200 with a new version replaces the local copy and fans the
//     invalidation out before a client ever sees the stale body.
//   - Popularity-driven prefetch: per-doc access accounting nominates hot
//     resident documents; the least-loaded registered browsers (fewest
//     indexed documents) receive them via authenticated POST /cache/push,
//     turning the browser index into a placement engine.
//   - Invalidation fan-out: any observed modification (revalidation,
//     refetch, or a sibling's /peer/invalidate) enqueues jobs that purge
//     the local tiers, notify indexed browser holders (POST
//     /cache/invalidate), and forward one hop to federation siblings whose
//     digests may cover the URL (POST /peer/invalidate).
package proxy

import (
	"bytes"
	"context"
	"crypto/md5"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"baps/internal/index"
	"baps/internal/obs"
	"baps/internal/workqueue"
)

// Job kinds on the workqueue (rate-limit and metric labels).
const (
	kindRevalidate   = "revalidate"
	kindPrefetch     = "prefetch"
	kindInvalLocal   = "invalidate_local"
	kindInvalBrowser = "invalidate_browser"
	kindInvalSibling = "invalidate_sibling"
)

const (
	// revalScanBatch bounds the revalidation nominations per scan round so
	// one huge cache cannot flood the queue (the next round picks up the
	// rest — the scan is cheap).
	revalScanBatch = 256
	// maxPopEntries bounds the popularity table; beyond it only already
	// tracked documents accrue hits until decay frees room.
	maxPopEntries = 65536
	// pushedTTL is how long a (url, client) push is remembered, so the
	// prefetcher does not re-push a hot document the target just evicted.
	pushedTTL = 30 * time.Second
)

// newWorkqueue builds the proxy's background queue from Config. The queue
// shares the server's metric registry, so baps_wq_* series appear on the
// same /metrics page as the proxy's own counters.
func (s *Server) newWorkqueue(reg *obs.Registry) *workqueue.Queue {
	limits := map[string]float64{}
	if s.cfg.RevalidateRPS > 0 {
		limits[kindRevalidate] = s.cfg.RevalidateRPS
	}
	if s.cfg.PrefetchRPS > 0 {
		limits[kindPrefetch] = s.cfg.PrefetchRPS
	}
	return workqueue.New(workqueue.Config{
		Workers:      s.cfg.QueueWorkers,
		Capacity:     s.cfg.QueueCapacity,
		MaxAttempts:  s.cfg.QueueMaxAttempts,
		RetryBackoff: s.cfg.QueueRetryBackoff,
		JobTimeout:   s.cfg.QueueJobTimeout,
		RateLimits:   limits,
		Metrics:      reg,
	})
}

// notePop records one client-facing access for prefetch popularity
// accounting (no-op with the prefetch producer disabled).
func (s *Server) notePop(url string) {
	if s.cfg.PrefetchInterval <= 0 {
		return
	}
	s.mu.Lock()
	if len(s.pop) < maxPopEntries {
		s.pop[url]++
	} else if s.pop[url] > 0 {
		s.pop[url]++
	}
	s.mu.Unlock()
}

// startPipeline launches the enabled scanning producers. The workqueue
// itself is always live (invalidation fan-out needs no scanner).
func (s *Server) startPipeline() {
	if s.cfg.RevalidateAfter > 0 {
		s.pipelineWG.Add(1)
		go s.scanLoop(s.cfg.RevalidateEvery, s.revalidateScan)
	}
	if s.cfg.PrefetchInterval > 0 {
		s.pipelineWG.Add(1)
		go s.scanLoop(s.cfg.PrefetchInterval, s.prefetchScan)
	}
}

// scanLoop ticks scan until the pipeline stops.
func (s *Server) scanLoop(every time.Duration, scan func()) {
	defer s.pipelineWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopPipeline:
			return
		case <-t.C:
			scan()
		}
	}
}

// revalidateScan nominates resident documents whose last acquisition or
// freshness check is older than RevalidateAfter.
func (s *Server) revalidateScan() {
	now := time.Now()
	s.mu.Lock()
	due := make([]string, 0, 64)
	for url, m := range s.meta {
		if _, resident := s.cache.Peek(url); !resident {
			continue
		}
		last := m.storedAt
		if m.checkedAt.After(last) {
			last = m.checkedAt
		}
		if now.Sub(last) >= s.cfg.RevalidateAfter {
			due = append(due, url)
			if len(due) == revalScanBatch {
				break
			}
		}
	}
	s.mu.Unlock()
	for _, url := range due {
		// ErrDuplicate/ErrFull are fine: the document stays due and the
		// next round renominates it.
		s.wq.Submit(workqueue.Job{
			Kind: kindRevalidate, Key: url, Priority: workqueue.Normal,
			Run: s.revalidateJob(url),
		})
	}
}

// revalidateJob performs one background conditional GET. 304 refreshes the
// freshness clock; 200 with a changed version stores the new body (which
// triggers the invalidation fan-out via storeDoc's modification detection).
func (s *Server) revalidateJob(url string) func(context.Context) error {
	return func(ctx context.Context) error {
		s.mu.Lock()
		prior, ok := s.meta[url]
		if ok {
			_, ok = s.cache.Peek(url)
		}
		s.mu.Unlock()
		if !ok {
			return nil // evicted since nomination
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("If-None-Match", fmt.Sprintf("%q", "v"+strconv.FormatInt(prior.version, 10)))
		if prior.lastMod != "" {
			req.Header.Set("If-Modified-Since", prior.lastMod)
		}
		resp, err := s.originClient.Do(req)
		if err != nil {
			s.m.revalErrors.Inc()
			return err
		}
		if resp.StatusCode == http.StatusNotModified {
			DrainClose(resp)
			s.mu.Lock()
			if cur, live := s.meta[url]; live && cur.version == prior.version {
				cur.checkedAt = time.Now()
				s.meta[url] = cur
			}
			s.mu.Unlock()
			s.m.revalFresh.Inc()
			return nil
		}
		if resp.StatusCode != http.StatusOK {
			DrainClose(resp)
			s.m.revalErrors.Inc()
			return &upstreamStatusError{code: resp.StatusCode, status: resp.Status}
		}
		defer resp.Body.Close()
		h := md5.New()
		body, err := readDoc(resp.Body, resp.ContentLength, h)
		if err != nil {
			s.m.revalErrors.Inc()
			return err
		}
		version, _ := strconv.ParseInt(resp.Header.Get("X-Origin-Version"), 10, 64)
		digest := h.Sum(nil)
		mark, err := s.signer.WatermarkDigest(digest)
		if err != nil {
			return err
		}
		now := time.Now()
		s.m.revalChanged.Inc()
		s.storeDoc(url, body, docMeta{
			version: version, size: int64(len(body)), digest: digest, watermark: mark,
			lastMod: resp.Header.Get("Last-Modified"), storedAt: now, checkedAt: now,
		})
		return nil
	}
}

// prefetchScan decays the popularity table, picks the hottest memory-
// resident documents, and pushes up to PrefetchFanout of them into the
// least-loaded registered browsers that do not already hold them.
func (s *Server) prefetchScan() {
	now := time.Now()
	type hotDoc struct {
		url string
		n   int64
	}
	s.mu.Lock()
	hots := make([]hotDoc, 0, 16)
	for url, n := range s.pop {
		if n >= int64(s.cfg.PrefetchMinHits) {
			if _, inMem := s.bodies[url]; inMem {
				hots = append(hots, hotDoc{url, n})
			}
		}
		// Exponential decay keeps the table bounded and biased to recent
		// popularity.
		if n >>= 1; n == 0 {
			delete(s.pop, url)
		} else {
			s.pop[url] = n
		}
	}
	for k, t := range s.pushed {
		if now.Sub(t) > pushedTTL {
			delete(s.pushed, k)
		}
	}
	peers := make([]peerInfo, 0, len(s.peers))
	for _, p := range s.peers {
		peers = append(peers, p)
	}
	s.mu.Unlock()
	if len(hots) == 0 || len(peers) == 0 {
		return
	}
	sort.Slice(hots, func(i, j int) bool { return hots[i].n > hots[j].n })
	// Load = how many documents the index believes each browser holds;
	// prefetch fills the emptiest caches first (ties broken by id for
	// determinism).
	loads := make(map[int]int, len(peers))
	for _, p := range peers {
		loads[p.id] = len(s.idx.ClientDocs(p.id))
	}
	sort.Slice(peers, func(i, j int) bool {
		if loads[peers[i].id] != loads[peers[j].id] {
			return loads[peers[i].id] < loads[peers[j].id]
		}
		return peers[i].id < peers[j].id
	})
	submitted := 0
	for _, h := range hots {
		if submitted >= s.cfg.PrefetchFanout {
			break
		}
		holders := make(map[int]bool)
		if doc, known := s.syms.Lookup(h.url); known {
			for _, e := range s.idx.Lookup(doc) {
				holders[e.Client] = true
			}
		}
		for _, p := range peers {
			if holders[p.id] {
				continue
			}
			key := h.url + "\x00" + strconv.Itoa(p.id)
			s.mu.Lock()
			_, recent := s.pushed[key]
			if !recent {
				s.pushed[key] = now
			}
			s.mu.Unlock()
			if recent {
				break // this doc was just pushed; move to the next one
			}
			s.wq.Submit(workqueue.Job{
				Kind: kindPrefetch, Key: key, Priority: workqueue.Low,
				Run: s.prefetchJob(p.id, h.url),
			})
			submitted++
			break
		}
	}
}

// prefetchJob pushes one hot document into one browser cache.
func (s *Server) prefetchJob(client int, url string) func(context.Context) error {
	return func(ctx context.Context) error {
		s.mu.Lock()
		peer, registered := s.peers[client]
		body, inMem := s.bodies[url]
		meta := s.meta[url]
		s.mu.Unlock()
		if !registered || !inMem {
			return nil // nomination went stale; nothing to push
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			peer.baseURL+"/cache/push?url="+urlQueryEscape(url), bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set(HeaderToken, peer.token)
		req.Header.Set(HeaderVersion, strconv.FormatInt(meta.version, 10))
		if meta.watermark != nil {
			req.Header.Set(HeaderWatermark, base64.StdEncoding.EncodeToString(meta.watermark))
		}
		resp, err := s.peerClient.Do(req)
		if err != nil {
			return err
		}
		DrainClose(resp)
		switch {
		case resp.StatusCode/100 == 2:
			s.m.prefetchPushes.Inc()
			// The agent publishes the add through its own index protocol
			// too (idempotent upsert); recording it here makes the
			// placement resolvable immediately.
			s.idx.Add(index.Entry{
				Client: client, Doc: s.syms.Intern(url),
				Size: int64(len(body)), Version: meta.version,
				Stamp: float64(time.Now().UnixNano()) / 1e9,
			})
			s.fedNote(1)
			return nil
		case resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusGone:
			// The agent declined (doc invalidated there, or closing).
			s.m.prefetchDeclined.Inc()
			return nil
		default:
			return fmt.Errorf("prefetch push status %s", resp.Status)
		}
	}
}

// onModified fans out invalidation work for url at version. fromSibling
// marks a /peer/invalidate ingest: the local tiers are purged too (this
// proxy did not just store the fresh body) and the fan-out stops here —
// one hop, never a cascade.
func (s *Server) onModified(url string, version int64, fromSibling bool) {
	if s.wq == nil {
		return
	}
	vkey := url + "\x00" + strconv.FormatInt(version, 10)
	if fromSibling {
		s.wq.Submit(workqueue.Job{
			Kind: kindInvalLocal, Key: vkey, Priority: workqueue.High,
			Run: func(context.Context) error {
				s.purgeStale(url, version)
				s.m.invalLocal.Inc()
				return nil
			},
		})
	}
	if doc, known := s.syms.Lookup(url); known {
		for _, e := range s.idx.Lookup(doc) {
			if e.Version >= version {
				continue // that copy is already current
			}
			client := e.Client
			s.wq.Submit(workqueue.Job{
				Kind: kindInvalBrowser, Key: vkey + "\x00" + strconv.Itoa(client),
				Priority: workqueue.High,
				Run:      s.invalidateBrowserJob(client, url, version),
			})
		}
	}
	if fromSibling {
		return
	}
	if fed := s.fed.Load(); fed != nil {
		for _, sib := range fed.Candidates(url) {
			s.wq.Submit(workqueue.Job{
				Kind: kindInvalSibling, Key: vkey + "\x00" + sib,
				Priority: workqueue.Normal,
				Run:      s.invalidateSiblingJob(sib, url, version),
			})
		}
	}
}

// purgeStale removes url's copies older than version from every local tier
// (memory, spill stage, disk). A copy already at or past version survives:
// the purge job may run after a refetch has landed the fresh body.
func (s *Server) purgeStale(url string, version int64) {
	s.mu.Lock()
	if m, ok := s.meta[url]; ok && m.version >= version {
		s.mu.Unlock()
		return
	}
	delete(s.meta, url)
	delete(s.bodies, url)
	delete(s.spillStage, url)
	delete(s.hits, url)
	delete(s.durable, url)
	delete(s.pop, url)
	s.cache.Remove(url)
	if s.ds != nil {
		select {
		case s.spillq <- spillOp{key: url, del: true}:
		default: // full queue: the orphan falls to the retention sweep
		}
	}
	s.fedNote(1)
	s.mu.Unlock()
}

// invalidateBrowserJob notifies one indexed holder that its copy is stale,
// then drops the index entry so no requester is routed there meanwhile.
func (s *Server) invalidateBrowserJob(client int, url string, version int64) func(context.Context) error {
	return func(ctx context.Context) error {
		s.mu.Lock()
		peer, registered := s.peers[client]
		s.mu.Unlock()
		if !registered {
			return nil // departed; its entries die with it
		}
		body, err := jsonBytes(InvalidateRequest{URL: url, Version: version})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			peer.baseURL+"/cache/invalidate", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set(HeaderToken, peer.token)
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.peerClient.Do(req)
		if err != nil {
			return err
		}
		DrainClose(resp)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("browser invalidate status %s", resp.Status)
		}
		if doc, known := s.syms.Lookup(url); known {
			s.idx.Remove(client, doc)
			s.fedNote(1)
		}
		s.m.invalBrowser.Inc()
		return nil
	}
}

// invalidateSiblingJob forwards the invalidation one hop to a federation
// sibling whose digest may cover the URL. A dead sibling costs MaxAttempts
// timed-out tries and a dead letter, never a wedged queue.
func (s *Server) invalidateSiblingJob(sib, url string, version int64) func(context.Context) error {
	return func(ctx context.Context) error {
		body, err := jsonBytes(InvalidateRequest{URL: url, Version: version, From: s.baseURL})
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			sib+"/peer/invalidate", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := s.peerClient.Do(req)
		if err != nil {
			return err
		}
		DrainClose(resp)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("sibling invalidate status %s", resp.Status)
		}
		s.m.invalSibling.Inc()
		return nil
	}
}

// handlePeerInvalidate ingests a sibling proxy's invalidation: purge the
// local tiers, notify this proxy's own browsers, and stop — the fan-out is
// one hop (the originator reaches every sibling directly), so clusters can
// never invalidate in a loop.
func (s *Server) handlePeerInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	fed := s.fed.Load()
	if fed == nil {
		http.Error(w, "proxy: not federated", http.StatusServiceUnavailable)
		return
	}
	var req InvalidateRequest
	if err := jsonDecode(io.LimitReader(r.Body, 1<<16), &req); err != nil || req.URL == "" {
		http.Error(w, "proxy: bad invalidate body", http.StatusBadRequest)
		return
	}
	known := false
	for _, n := range fed.Nodes() {
		if n == req.From && n != fed.Self() {
			known = true
			break
		}
	}
	if !known {
		http.Error(w, "proxy: unknown sibling", http.StatusForbidden)
		return
	}
	s.m.invalRecv.Inc()
	s.onModified(req.URL, req.Version, true)
	w.WriteHeader(http.StatusNoContent)
}
