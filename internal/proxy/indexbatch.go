package proxy

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"baps/internal/bloom"
	"baps/internal/index"
	"baps/internal/intern"
)

// batchState is the proxy-side bookkeeping of the batched index protocol:
// the last applied generation per client and the rate limiter for
// /peer/resync pulls, so a burst of gap/digest anomalies from one client
// collapses into a single recovery pull.
type batchState struct {
	mu         sync.Mutex
	gen        map[int]uint64
	lastResync map[int]time.Time
	// scratch pools one digest-comparison filter per client: senders keep a
	// stable filter geometry across batches, so the same bit array is
	// Reset and refilled instead of reallocated on every digest-bearing
	// batch. Checkout semantics (take, then stash back) keep two
	// concurrent batches from one client off the same buffer.
	scratch map[int]*bloom.Filter
}

func newBatchState() *batchState {
	return &batchState{
		gen:        make(map[int]uint64),
		lastResync: make(map[int]time.Time),
		scratch:    make(map[int]*bloom.Filter),
	}
}

// checkoutScratch hands out the client's pooled comparison filter, reset and
// ready, when its geometry matches; otherwise it allocates fresh. The caller
// must stash the filter back when done.
func (b *batchState) checkoutScratch(client int, bits uint64, k int) (*bloom.Filter, error) {
	b.mu.Lock()
	f := b.scratch[client]
	delete(b.scratch, client)
	b.mu.Unlock()
	if f != nil && f.Bits() == bits && f.K() == k {
		f.Reset()
		return f, nil
	}
	return bloom.NewFilter(bits, k)
}

// stashScratch returns a comparison filter to the client's pool slot.
func (b *batchState) stashScratch(client int, f *bloom.Filter) {
	b.mu.Lock()
	b.scratch[client] = f
	b.mu.Unlock()
}

// observe applies the generation rules for a received batch generation and
// reports whether a gap was detected. The new generation is adopted either
// way: after a gap the recovery pull re-fetches the full directory, so the
// proxy should track the sender's numbering from here on.
func (b *batchState) observe(client int, gen uint64) (gap bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	last := b.gen[client]
	gap = gen != last+1 && gen != last
	b.gen[client] = gen
	return gap
}

// seed re-seats a client's generation (after a full /index/sync).
func (b *batchState) seed(client int, gen uint64) {
	b.mu.Lock()
	b.gen[client] = gen
	b.mu.Unlock()
}

// snapshotGens copies the per-client generation table (state persistence).
func (b *batchState) snapshotGens() map[int]uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[int]uint64, len(b.gen))
	for id, gen := range b.gen {
		out[id] = gen
	}
	return out
}

// forget drops a departed client's state.
func (b *batchState) forget(client int) {
	b.mu.Lock()
	delete(b.gen, client)
	delete(b.lastResync, client)
	delete(b.scratch, client)
	b.mu.Unlock()
}

// shouldResync rate-limits recovery pulls to one per client per window.
func (b *batchState) shouldResync(client int, window time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if last, ok := b.lastResync[client]; ok && now.Sub(last) < window {
		return false
	}
	b.lastResync[client] = now
	return true
}

// resyncRateWindow bounds how often the proxy pulls a full re-sync from one
// client in response to batch anomalies.
const resyncRateWindow = 500 * time.Millisecond

// handleIndexBatch applies a batched delta update (POST /index/batch): the
// asynchronous replacement for per-change /index/add//index/remove traffic.
// All of a batch's deltas are grouped per index shard and applied under one
// lock acquisition per shard. A generation gap or Bloom-digest mismatch
// schedules an asynchronous /peer/resync pull — the existing §2 recovery
// path — instead of trusting a drifted view.
func (s *Server) handleIndexBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.authClient(r)
	if !ok {
		http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
		return
	}
	var batch IndexBatch
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&batch); err != nil {
		http.Error(w, "proxy: bad batch body", http.StatusBadRequest)
		return
	}
	if batch.ClientID != id {
		http.Error(w, "proxy: client mismatch", http.StatusForbidden)
		return
	}
	if batch.Gen == 0 {
		http.Error(w, "proxy: batch generation must be positive", http.StatusBadRequest)
		return
	}
	s.applyIndexBatch(id, batch)
	w.WriteHeader(http.StatusNoContent)
}

// applyIndexBatch is the authenticated core of the batched protocol, shared
// by /index/batch and each sub-batch of /index/multibatch: generation
// observation, shard-grouped delta application, and drift-triggered recovery
// pulls.
func (s *Server) applyIndexBatch(id int, batch IndexBatch) {
	gap := s.batches.observe(id, batch.Gen)

	deltas := make([]index.Delta, 0, len(batch.Deltas))
	for _, d := range batch.Deltas {
		if d.URL == "" {
			continue
		}
		if d.Remove {
			// A URL the proxy never interned has no entries to remove;
			// skipping keeps bogus invalidations from growing the table.
			doc, known := s.syms.Lookup(d.URL)
			if !known {
				continue
			}
			deltas = append(deltas, index.Delta{Entry: index.Entry{Doc: doc}, Remove: true})
			continue
		}
		deltas = append(deltas, index.Delta{Entry: index.Entry{
			Doc:     s.syms.Intern(d.URL),
			Size:    d.Size,
			Version: d.Version,
			Stamp:   d.Stamp,
		}})
	}
	s.idx.ApplyBatch(id, deltas)
	s.m.idxBatch.Inc()
	s.m.idxBatchDeltas.Add(int64(len(deltas)))
	s.fedNote(len(deltas))

	drift := gap
	if gap {
		s.m.idxGenGaps.Inc()
		if s.logger != nil {
			s.logger.Warn("index batch generation gap", "client", id, "gen", batch.Gen)
		}
	} else if batch.Digest != "" {
		if mismatch := s.digestMismatch(id, batch.Digest); mismatch {
			drift = true
			s.m.idxDigestMismatch.Inc()
			if s.logger != nil {
				s.logger.Warn("index digest mismatch", "client", id, "gen", batch.Gen)
			}
		}
	}
	if drift && s.batches.shouldResync(id, resyncRateWindow) {
		go s.pullResync(id)
	}
}

// handleIndexMultiBatch applies an agent host's multiplexed carrier (POST
// /index/multibatch): one HTTP request bearing one generation-numbered
// sub-batch per hosted agent. There is no carrier-level identity — each
// sub-batch authenticates with its own agent's token, exactly as if it had
// arrived on /index/batch — so a host can never speak for an agent the proxy
// did not register. Sub-batches that fail authentication (the agent
// unregistered or was superseded mid-flight) are reported back by client id
// in Rejected; valid siblings in the same carrier still apply.
func (s *Server) handleIndexMultiBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	var multi IndexMultiBatch
	if err := json.NewDecoder(io.LimitReader(r.Body, 32<<20)).Decode(&multi); err != nil {
		http.Error(w, "proxy: bad multibatch body", http.StatusBadRequest)
		return
	}
	var resp MultiBatchResponse
	for _, hb := range multi.Batches {
		if hb.Gen == 0 || !s.authToken(hb.Token, hb.ClientID) {
			resp.Rejected = append(resp.Rejected, hb.ClientID)
			continue
		}
		s.applyIndexBatch(hb.ClientID, hb.IndexBatch)
		resp.Accepted++
	}
	s.m.idxMultiBatch.Inc()
	writeJSON(w, resp)
}

// authToken validates one (token, client id) pair — the header-free variant
// of authClient for multiplexed sub-batches.
func (s *Server) authToken(token string, id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, ok := s.tokens[token]
	return ok && owner == id
}

// digestMismatch rebuilds the sender's Bloom filter geometry over the
// proxy's believed directory for the client and compares bit-for-bit.
// Filters over equal URL sets with equal (m, k) are identical, so any
// difference proves the two directories have drifted. (Two *different* sets
// can collide into the same bits at the filter's false-positive rate — such
// drift escapes one digest but is caught by a later one as the directories
// keep changing.)
func (s *Server) digestMismatch(client int, digestB64 string) bool {
	raw, err := base64.StdEncoding.DecodeString(digestB64)
	if err != nil {
		return true // unparseable digest: treat as drift, resync restores truth
	}
	theirs, err := bloom.UnmarshalFilter(raw)
	if err != nil {
		return true
	}
	ours, err := s.batches.checkoutScratch(client, theirs.Bits(), theirs.K())
	if err != nil {
		return true
	}
	defer s.batches.stashScratch(client, ours)
	s.idx.ForEachClientDoc(client, func(doc intern.ID) {
		ours.Add(s.syms.String(doc))
	})
	return !ours.Equal(theirs)
}

// pullResync asks one browser for a full directory re-sync (the same pull
// ResyncAll issues to every peer after a proxy restart).
func (s *Server) pullResync(client int) {
	s.mu.Lock()
	p, ok := s.peers[client]
	s.mu.Unlock()
	if !ok {
		return
	}
	s.m.idxResyncPulls.Inc()
	req, err := http.NewRequest(http.MethodPost, p.baseURL+"/peer/resync", nil)
	if err != nil {
		return
	}
	req.Header.Set(HeaderToken, p.token)
	resp, err := s.peerClient.Do(req)
	if err != nil {
		if s.logger != nil {
			s.logger.Warn("resync pull failed", "client", client, "err", err)
		}
		return
	}
	DrainClose(resp)
}
