package proxy

import (
	"encoding/base64"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"baps/internal/integrity"
	"baps/internal/origin"
)

// pollUntil spins until cond is true or the deadline lapses.
func pollUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// fetchVersion GETs url through s and returns the response version header.
func fetchVersion(t *testing.T, s *Server, url string) int64 {
	t.Helper()
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(url))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch status %d", resp.StatusCode)
	}
	v, _ := strconv.ParseInt(resp.Header.Get(HeaderVersion), 10, 64)
	return v
}

// TestRevalidationKeepsCacheFresh: a resident document past RevalidateAfter
// is conditionally re-checked in the background — unchanged content costs
// only 304s (never a refetch), and a modification is refetched and served
// from cache at the new version without any client-triggered origin trip.
func TestRevalidationKeepsCacheFresh(t *testing.T) {
	o := origin.New(21)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()

	s := testServer(t, func(c *Config) {
		c.RevalidateAfter = 60 * time.Millisecond
		c.RevalidateEvery = 20 * time.Millisecond
	})
	u := ots.URL + "/reval/doc?size=900"

	if v := fetchVersion(t, s, u); v != 0 {
		t.Fatalf("initial version = %d", v)
	}
	if o.Fetches() != 1 {
		t.Fatalf("origin fetches = %d, want 1", o.Fetches())
	}

	// Unchanged document: background checks arrive as 304s, never 200s.
	pollUntil(t, 3*time.Second, "first 304 revalidation", func() bool {
		return o.NotModified() >= 1
	})
	if o.Fetches() != 1 {
		t.Fatalf("revalidation of fresh doc refetched (fetches=%d)", o.Fetches())
	}
	if s.m.revalFresh.Value() < 1 {
		t.Fatal("revalidations{result=fresh} not counted")
	}

	// Modify at the origin: the pipeline must notice and replace the copy.
	newV := o.Modify("/reval/doc")
	pollUntil(t, 3*time.Second, "changed revalidation", func() bool {
		return s.m.revalChanged.Value() >= 1
	})
	// The fresh body is served from the proxy tier — no client-path origin
	// trip beyond the background refetch itself.
	fetchesAfter := o.Fetches()
	if v := fetchVersion(t, s, u); v != newV {
		t.Fatalf("served version %d after modify, want %d", v, newV)
	}
	if o.Fetches() != fetchesAfter {
		t.Fatal("client fetch hit the origin despite background refetch")
	}
	snap := s.Snapshot()
	if snap.Revalidations < 1 || snap.RevalidationsChanged < 1 {
		t.Fatalf("snapshot revalidations %d/%d", snap.Revalidations, snap.RevalidationsChanged)
	}
	if snap.Workqueue == nil || snap.Workqueue.Completed < 1 {
		t.Fatalf("snapshot workqueue stats missing or empty: %+v", snap.Workqueue)
	}
}

// browserStub is a minimal agent-side endpoint set for push/invalidate
// traffic: it records authenticated calls and answers with a fixed status.
type browserStub struct {
	mu          sync.Mutex
	token       string
	pushStatus  int
	pushes      []stubPush
	invalidates []InvalidateRequest
	srv         *httptest.Server
}

type stubPush struct {
	url     string
	version int64
	body    []byte
	mark    []byte
}

func newBrowserStub(t *testing.T) *browserStub {
	b := &browserStub{pushStatus: http.StatusNoContent}
	mux := http.NewServeMux()
	mux.HandleFunc("/cache/push", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		defer b.mu.Unlock()
		if r.Header.Get(HeaderToken) != b.token {
			http.Error(w, "bad token", http.StatusForbidden)
			return
		}
		body, _ := io.ReadAll(r.Body)
		v, _ := strconv.ParseInt(r.Header.Get(HeaderVersion), 10, 64)
		mark, _ := base64.StdEncoding.DecodeString(r.Header.Get(HeaderWatermark))
		b.pushes = append(b.pushes, stubPush{
			url: r.URL.Query().Get("url"), version: v, body: body, mark: mark,
		})
		w.WriteHeader(b.pushStatus)
	})
	mux.HandleFunc("/cache/invalidate", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		defer b.mu.Unlock()
		if r.Header.Get(HeaderToken) != b.token {
			http.Error(w, "bad token", http.StatusForbidden)
			return
		}
		var req InvalidateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b.invalidates = append(b.invalidates, req)
		w.WriteHeader(http.StatusNoContent)
	})
	b.srv = httptest.NewServer(mux)
	t.Cleanup(b.srv.Close)
	return b
}

// TestPrefetchPushesHotDocToIdleBrowser: repeated hits make a document hot;
// the prefetcher pushes it (authenticated, watermarked) into the registered
// browser with the emptiest cache and records the placement in the index.
func TestPrefetchPushesHotDocToIdleBrowser(t *testing.T) {
	o := origin.New(5)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()

	s := testServer(t, func(c *Config) {
		c.PrefetchInterval = 25 * time.Millisecond
		c.PrefetchMinHits = 2
	})
	stub := newBrowserStub(t)
	reg := register(t, s, stub.srv.URL)
	stub.mu.Lock()
	stub.token = reg.Token
	stub.mu.Unlock()

	u := ots.URL + "/hot/doc?size=700"
	for i := 0; i < 4; i++ {
		fetchVersion(t, s, u)
	}
	pollUntil(t, 3*time.Second, "prefetch push", func() bool {
		stub.mu.Lock()
		defer stub.mu.Unlock()
		return len(stub.pushes) >= 1
	})

	stub.mu.Lock()
	p := stub.pushes[0]
	stub.mu.Unlock()
	if p.url != u {
		t.Fatalf("pushed url %q, want %q", p.url, u)
	}
	if err := integrity.Verify(s.signer.Public(), p.body, p.mark); err != nil {
		t.Fatalf("pushed watermark does not verify: %v", err)
	}
	// The placement is immediately resolvable through the index.
	doc, known := s.syms.Lookup(u)
	if !known {
		t.Fatal("url not interned")
	}
	pollUntil(t, time.Second, "index placement", func() bool {
		return len(s.idx.Lookup(doc)) == 1
	})
	if s.Snapshot().PrefetchPushes < 1 {
		t.Fatal("prefetch_pushes not counted")
	}
}

// TestPrefetchDeclineCounted: an agent refusing a push (tombstoned or
// closing) is counted as declined, not retried into a dead letter.
func TestPrefetchDeclineCounted(t *testing.T) {
	o := origin.New(6)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()

	s := testServer(t, func(c *Config) {
		c.PrefetchInterval = 25 * time.Millisecond
		c.PrefetchMinHits = 2
	})
	stub := newBrowserStub(t)
	stub.pushStatus = http.StatusConflict
	reg := register(t, s, stub.srv.URL)
	stub.mu.Lock()
	stub.token = reg.Token
	stub.mu.Unlock()

	u := ots.URL + "/declined/doc?size=400"
	for i := 0; i < 4; i++ {
		fetchVersion(t, s, u)
	}
	pollUntil(t, 3*time.Second, "declined push", func() bool {
		return s.m.prefetchDeclined.Value() >= 1
	})
	if dl := s.wq.DeadLetters(); len(dl) != 0 {
		t.Fatalf("declined push dead-lettered: %+v", dl)
	}
}

// TestInvalidationReachesIndexedBrowser: when revalidation observes a
// modification, every indexed holder of the stale version gets an
// authenticated /cache/invalidate and its index entry is dropped.
func TestInvalidationReachesIndexedBrowser(t *testing.T) {
	o := origin.New(31)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()

	s := testServer(t, func(c *Config) {
		c.RevalidateAfter = 60 * time.Millisecond
		c.RevalidateEvery = 20 * time.Millisecond
	})
	stub := newBrowserStub(t)
	reg := register(t, s, stub.srv.URL)
	stub.mu.Lock()
	stub.token = reg.Token
	stub.mu.Unlock()

	u := ots.URL + "/inval/doc?size=600"
	fetchVersion(t, s, u)
	addIndexEntry(t, s, reg, u, 600) // the browser claims the v0 copy

	newV := o.Modify("/inval/doc")
	pollUntil(t, 3*time.Second, "browser invalidate", func() bool {
		stub.mu.Lock()
		defer stub.mu.Unlock()
		return len(stub.invalidates) >= 1
	})
	stub.mu.Lock()
	inv := stub.invalidates[0]
	stub.mu.Unlock()
	if inv.URL != u || inv.Version != newV {
		t.Fatalf("invalidate = %+v, want url=%s version=%d", inv, u, newV)
	}
	// The stale entry must be gone so no requester is routed there.
	doc, _ := s.syms.Lookup(u)
	pollUntil(t, time.Second, "index entry removal", func() bool {
		return len(s.idx.Lookup(doc)) == 0
	})
	if s.Snapshot().InvalidationsSent < 1 {
		t.Fatal("invalidations_sent not counted")
	}
}

// TestSiblingInvalidationFanout: proxy A observes a modification and
// forwards the invalidation one hop to sibling B, whose stale copy is
// purged; B then serves the new version (via cluster or origin), never the
// stale body, even though B itself runs no revalidation.
func TestSiblingInvalidationFanout(t *testing.T) {
	o := origin.New(41)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()

	mk := func(reval bool) *Server {
		return testServer(t, func(c *Config) {
			c.DigestInterval = 50 * time.Millisecond
			if reval {
				c.RevalidateAfter = 80 * time.Millisecond
				c.RevalidateEvery = 25 * time.Millisecond
			}
		})
	}
	a, b := mk(true), mk(false)
	if err := a.JoinCluster([]string{b.BaseURL()}); err != nil {
		t.Fatal(err)
	}
	if err := b.JoinCluster([]string{a.BaseURL()}); err != nil {
		t.Fatal(err)
	}

	u := ots.URL + "/sib/doc?size=1200"
	fetchVersion(t, a, u)
	waitCandidates(t, b, u)
	if v := fetchVersion(t, b, u); v != 0 {
		t.Fatalf("B initial version = %d", v)
	}
	// A must learn B holds the doc before the fan-out can target it.
	waitCandidates(t, a, u)

	newV := o.Modify("/sib/doc")
	pollUntil(t, 5*time.Second, "sibling invalidation received", func() bool {
		return b.Snapshot().InvalidationsReceived >= 1
	})
	// B's copy is purged; the next fetch resolves the fresh version.
	pollUntil(t, 5*time.Second, "B serving new version", func() bool {
		return fetchVersion(t, b, u) == newV
	})
	if a.Snapshot().InvalidationsSent < 1 {
		t.Fatal("A counted no invalidations sent")
	}
}

// TestPeerInvalidateValidation: the sibling endpoint refuses non-POSTs,
// unfederated servers, malformed bodies, and senders outside the cluster.
func TestPeerInvalidateValidation(t *testing.T) {
	lone := testServer(t, nil)
	resp, err := http.Post(lone.BaseURL()+"/peer/invalidate", "application/json",
		strings.NewReader(`{"url":"http://x/a","version":1,"from":"http://nobody"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unfederated: %d, want 503", resp.StatusCode)
	}

	ps := federate(t, 2, nil)
	s := ps[0]
	if resp, err = http.Get(s.BaseURL() + "/peer/invalidate"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: %d, want 405", resp.StatusCode)
	}
	if resp, err = http.Post(s.BaseURL()+"/peer/invalidate", "application/json",
		strings.NewReader(`{`)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d, want 400", resp.StatusCode)
	}
	if resp, err = http.Post(s.BaseURL()+"/peer/invalidate", "application/json",
		strings.NewReader(`{"url":"http://x/a","version":1,"from":"http://intruder:1"}`)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown sender: %d, want 403", resp.StatusCode)
	}
	if got := s.Snapshot().InvalidationsReceived; got != 0 {
		t.Fatalf("rejected requests counted as received: %d", got)
	}
}

// TestPurgeStaleVersionGuard: a purge job for version v must not delete a
// copy already at or past v (the refetch may have landed first).
func TestPurgeStaleVersionGuard(t *testing.T) {
	s := testServer(t, nil)
	s.storeDoc("http://x/guard", []byte("fresh"), docMeta{version: 3, size: 5})
	s.purgeStale("http://x/guard", 3) // same version: keep
	if _, ok := s.cache.Peek("http://x/guard"); !ok {
		t.Fatal("purge removed a copy already at the invalidation version")
	}
	s.purgeStale("http://x/guard", 4) // older than 4: purge
	if _, ok := s.cache.Peek("http://x/guard"); ok {
		t.Fatal("purge left a stale copy resident")
	}
}
