package proxy

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"baps/internal/obs"
	"baps/internal/origin"
)

// scrapeMetrics fetches GET /metrics and parses the exposition text into
// plain samples: unlabeled families map to their name, labeled children to
// name{label="value"}.
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// outcomeSum adds the named outcome children of the fetch-outcome vec.
func outcomeSum(m map[string]float64, outcomes ...string) float64 {
	var sum float64
	for _, o := range outcomes {
		sum += m[`baps_proxy_fetch_outcomes_total{outcome="`+o+`"}`]
	}
	return sum
}

// assertStatsMatchMetrics cross-checks every counter the /stats JSON wire
// shape carries against the /metrics exposition of the same server.
func assertStatsMatchMetrics(t *testing.T, s *Server) {
	t.Helper()
	resp, err := http.Get(s.BaseURL() + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	resp.Body.Close()
	m := scrapeMetrics(t, s.BaseURL())

	checks := []struct {
		name string
		json int64
		prom float64
	}{
		{"requests", st.Requests, m["baps_proxy_requests_total"]},
		{"proxy_hits", st.ProxyHits, outcomeSum(m, "proxy_hit")},
		{"remote_hits", st.RemoteHits, outcomeSum(m, "peer_fetch_forward", "peer_direct_forward", "peer_onion")},
		{"origin_fetches", st.OriginFetches, outcomeSum(m, "origin", "origin_hedged")},
		{"hedged_wins", st.HedgedWins, outcomeSum(m, "origin_hedged")},
		{"false_peer_hits", st.FalsePeerHits, m["baps_proxy_false_peer_total"]},
		{"tamper_rejected", st.TamperRejected, m["baps_proxy_watermark_rejected_total"]},
		{"relay_timeouts", st.RelayTimeouts, m["baps_proxy_relay_timeouts_total"]},
		{"origin_retries", st.OriginRetries, m["baps_proxy_origin_retries_total"]},
		{"heartbeats", st.Heartbeats, m["baps_proxy_heartbeats_total"]},
		{"heartbeat_misses", st.HeartbeatMisses, m["baps_proxy_heartbeat_misses_total"]},
		{"breaker_trips", st.BreakerTrips, m[`baps_proxy_breaker_transitions_total{to="open"}`]},
		{"breaker_readmits", st.BreakerReadmits, m[`baps_proxy_breaker_transitions_total{to="closed"}`]},
		{"unregisters", st.Unregisters, m["baps_proxy_unregisters_total"]},
		{"index_batches", st.IndexBatches, m[`baps_proxy_index_updates_total{op="batch"}`]},
		{"index_batch_deltas", st.IndexBatchDeltas, m["baps_proxy_index_batch_deltas_total"]},
		{"index_gen_gaps", st.IndexGenGaps, m["baps_proxy_index_gen_gaps_total"]},
		{"index_digest_mismatches", st.IndexDigestMismatches, m["baps_proxy_index_digest_mismatches_total"]},
		{"index_resync_pulls", st.IndexResyncPulls, m["baps_proxy_index_resync_pulls_total"]},
		{"index_entries", int64(st.IndexEntries), m["baps_proxy_index_entries"]},
		{"quarantined_entries", int64(st.QuarantinedEntries), m["baps_proxy_index_quarantined_entries"]},
		{"cache_docs", int64(st.CacheDocs), m["baps_proxy_cache_docs"]},
		{"cache_bytes", st.CacheBytes, m["baps_proxy_cache_bytes"]},
		{"clients", int64(st.Clients), m["baps_proxy_clients"]},
		{"breaker_closed", int64(st.BreakerClosed), m[`baps_proxy_breaker_peers{state="closed"}`]},
		{"breaker_open", int64(st.BreakerOpen), m[`baps_proxy_breaker_peers{state="open"}`]},
		{"breaker_half_open", int64(st.BreakerHalfOpen), m[`baps_proxy_breaker_peers{state="half_open"}`]},
	}
	for _, c := range checks {
		if float64(c.json) != c.prom {
			t.Errorf("/stats %s = %d but /metrics reports %g", c.name, c.json, c.prom)
		}
	}
}

// TestStatsMatchesMetrics scripts a request sequence covering origin
// fetches, proxy hits, heartbeats, index ops, and an unregister, then
// asserts /stats and /metrics report identical counts.
func TestStatsMatchesMetrics(t *testing.T) {
	o := origin.New(7)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	s := testServer(t, nil)

	u := ots.URL + "/obs/doc?size=2000"
	for i := 0; i < 3; i++ { // 1 origin fetch + 2 proxy hits
		resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// One failed upstream (dead origin): the error outcome.
	resp, _ := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape("http://127.0.0.1:1/nope"))
	resp.Body.Close()

	reg := register(t, s, "http://127.0.0.1:1")
	hb, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/heartbeat", nil)
	hb.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	hb.Header.Set(HeaderToken, reg.Token)
	if resp, err := http.DefaultClient.Do(hb); err == nil {
		resp.Body.Close()
	}
	upd, _ := json.Marshal(IndexUpdate{ClientID: reg.ClientID, Entry: IndexEntry{URL: "http://x/a", Size: 10}})
	add, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/add", bytes.NewReader(upd))
	add.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	add.Header.Set(HeaderToken, reg.Token)
	if resp, err := http.DefaultClient.Do(add); err == nil {
		resp.Body.Close()
	}
	unreg, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/unregister", nil)
	unreg.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	unreg.Header.Set(HeaderToken, reg.Token)
	if resp, err := http.DefaultClient.Do(unreg); err == nil {
		resp.Body.Close()
	}

	m := scrapeMetrics(t, s.BaseURL())
	if got := m["baps_proxy_requests_total"]; got != 4 {
		t.Errorf("requests_total = %g, want 4", got)
	}
	if got := outcomeSum(m, "proxy_hit"); got != 2 {
		t.Errorf("proxy_hit outcomes = %g, want 2", got)
	}
	if got := outcomeSum(m, "origin"); got != 1 {
		t.Errorf("origin outcomes = %g, want 1", got)
	}
	if got := outcomeSum(m, "error"); got != 1 {
		t.Errorf("error outcomes = %g, want 1", got)
	}
	if got := m[`baps_proxy_index_updates_total{op="add"}`]; got != 1 {
		t.Errorf("index add ops = %g, want 1", got)
	}
	if got := m[`baps_proxy_index_updates_total{op="drop"}`]; got != 1 {
		t.Errorf("index drop ops = %g, want 1", got)
	}
	// Every decision-path outcome is pre-registered, so the exposition
	// covers the full path even before traffic reaches it.
	for _, o := range []string{"proxy_hit", "peer_fetch_forward", "peer_direct_forward", "peer_onion", "origin", "origin_hedged", "error", "canceled"} {
		if _, ok := m[`baps_proxy_fetch_outcomes_total{outcome="`+o+`"}`]; !ok {
			t.Errorf("outcome %q missing from exposition", o)
		}
	}
	if m["baps_proxy_fetch_duration_seconds_count"] != 4 {
		t.Errorf("fetch duration count = %g, want 4", m["baps_proxy_fetch_duration_seconds_count"])
	}

	assertStatsMatchMetrics(t, s)
}

// TestPeerServeMetricsAndTrace drives a real peer-fetch-forward delivery
// through a fake holder and checks per-peer serve accounting, watermark
// verification counts, and the /trace ring.
func TestPeerServeMetricsAndTrace(t *testing.T) {
	o := origin.New(3)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	// Capacity 1: the proxy can never cache, so the second fetch must take
	// the peer path instead of a proxy hit.
	s := testServer(t, func(c *Config) {
		c.CacheCapacity = 1
		c.CachePeerDocs = false
	})

	u := ots.URL + "/peer/doc?size=1500"
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	version := resp.Header.Get(HeaderVersion)
	resp.Body.Close()
	if resp.Header.Get(HeaderSource) != SourceOrigin {
		t.Fatalf("first fetch source = %q", resp.Header.Get(HeaderSource))
	}

	// A fake holder that serves the exact origin body.
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/peer/doc" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(HeaderVersion, version)
		w.Write(body)
	}))
	defer peer.Close()
	reg := register(t, s, peer.URL)
	upd, _ := json.Marshal(IndexUpdate{ClientID: reg.ClientID, Entry: IndexEntry{URL: u, Size: int64(len(body))}})
	add, _ := http.NewRequest(http.MethodPost, s.BaseURL()+"/index/add", bytes.NewReader(upd))
	add.Header.Set(HeaderClient, strconv.Itoa(reg.ClientID))
	add.Header.Set(HeaderToken, reg.Token)
	if resp, err := http.DefaultClient.Do(add); err == nil {
		resp.Body.Close()
	} else {
		t.Fatal(err)
	}

	resp2, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get(HeaderSource) != SourceRemote {
		t.Fatalf("second fetch source = %q", resp2.Header.Get(HeaderSource))
	}

	m := scrapeMetrics(t, s.BaseURL())
	client := strconv.Itoa(reg.ClientID)
	if got := m[`baps_proxy_peer_serves_total{client="`+client+`"}`]; got != 1 {
		t.Errorf("peer serves for client %s = %g, want 1", client, got)
	}
	if got := m[`baps_proxy_peer_serve_bytes_total{client="`+client+`"}`]; got != float64(len(body)) {
		t.Errorf("peer serve bytes = %g, want %d", got, len(body))
	}
	if got := m["baps_proxy_watermark_verified_total"]; got != 1 {
		t.Errorf("watermark verified = %g, want 1", got)
	}
	if got := outcomeSum(m, "peer_fetch_forward"); got != 1 {
		t.Errorf("peer_fetch_forward outcomes = %g, want 1", got)
	}
	assertStatsMatchMetrics(t, s)

	// The trace ring holds both requests, newest first, with the peer
	// serve annotated.
	tresp, err := http.Get(s.BaseURL() + "/trace?n=10")
	if err != nil {
		t.Fatal(err)
	}
	var recs []obs.SpanRecord
	if err := json.NewDecoder(tresp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if len(recs) != 2 {
		t.Fatalf("trace returned %d spans, want 2", len(recs))
	}
	if recs[0].Outcome != outPeerFetch || recs[1].Outcome != outOrigin {
		t.Errorf("trace outcomes = %q, %q", recs[0].Outcome, recs[1].Outcome)
	}
	foundServe := false
	for _, ev := range recs[0].Events {
		if ev.Name == "peer_serve" {
			foundServe = true
		}
	}
	if !foundServe {
		t.Errorf("peer span missing peer_serve event: %+v", recs[0].Events)
	}
}
