package proxy

import (
	"bytes"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	neturl "net/url"
	"strconv"
	"time"

	"baps/internal/anonymity"
	"baps/internal/cache"
	"baps/internal/integrity"
	"baps/internal/obs"
)

// handleFetch is the client-facing resolution pipeline: proxy cache →
// browser index (remote browsers, hedged against the origin past the soft
// deadline) → origin with retry/backoff. The request's context is threaded
// through every downstream call, so a disconnecting client cancels its peer
// contacts and origin fetch.
func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "proxy: GET only", http.StatusMethodNotAllowed)
		return
	}
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "proxy: missing url", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	// A caller claiming a client identity must prove it with the
	// registration token, exactly like /index/* and /report-bad —
	// otherwise any caller could impersonate a requester and skew
	// holder-selection and serve accounting. Anonymous fetches (no
	// client header) remain allowed.
	requester := -1
	if r.Header.Get(HeaderClient) != "" {
		id, ok := s.authClient(r)
		if !ok {
			http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
			return
		}
		requester = id
	}
	s.m.requests.Inc()
	start := time.Now()
	sp := s.tracer.StartSpan("fetch")
	sp.SetClient(requester)
	sp.SetURL(url)
	ctx = obs.WithSpan(ctx, sp)

	outcome := s.resolveFetch(ctx, w, url, requester, r.Header.Get(HeaderNoPeer) == "1")

	dur := time.Since(start)
	s.m.outcomeCounter(outcome).Inc()
	s.m.fetchDur.Observe(dur.Seconds())
	sp.Finish(outcome, nil)
	if s.logger != nil {
		s.logger.Info("fetch",
			"url", url,
			"client", requester,
			"outcome", outcome,
			"duration_ms", float64(dur.Microseconds())/1e3)
	}
}

// resolveFetch runs the decision path — proxy cache, browser index with
// hedged origin, plain origin — writes the response, and reports which
// outcome was taken (one of the out* constants).
func (s *Server) resolveFetch(ctx context.Context, w http.ResponseWriter, url string, requester int, noPeer bool) string {
	// 1. Proxy cache.
	if body, meta, ok := s.cacheLookup(url); ok {
		s.serveDoc(w, SourceProxy, body, meta)
		return outProxyHit
	}

	// 2. Browser index → remote browser caches, hedged with the origin.
	if !s.cfg.DisablePeer && !noPeer {
		if handled, outcome := s.servePeerHedged(ctx, w, url, requester); handled {
			return outcome
		}
	}

	// 3. Origin (or upper-level proxy).
	body, meta, err := s.fetchUpstream(ctx, url)
	if err != nil {
		http.Error(w, fmt.Sprintf("proxy: upstream: %v", err), http.StatusBadGateway)
		return outError
	}
	s.serveDoc(w, SourceOrigin, body, meta)
	return outOrigin
}

// peerOutcome is the result of one resolveRemote walk.
type peerOutcome struct {
	body     []byte
	meta     docMeta
	ticket   string
	viaOnion bool
	ok       bool
}

// originOutcome is the result of one hedged upstream fetch.
type originOutcome struct {
	body []byte
	meta docMeta
	err  error
}

// servePeerHedged runs the remote-browser resolution, racing the origin once
// the peer path exceeds PeerSoftDeadline (a slow or dying holder must never
// make a request slower than a plain proxy miss). It reports whether the
// response has been written and, if so, which outcome was served; (false, "")
// means the caller should take the plain origin path.
func (s *Server) servePeerHedged(ctx context.Context, w http.ResponseWriter, url string, requester int) (bool, string) {
	peerCh := make(chan peerOutcome, 1)
	go func() {
		body, meta, ticket, viaOnion, ok := s.resolveRemote(ctx, url, requester)
		peerCh <- peerOutcome{body: body, meta: meta, ticket: ticket, viaOnion: viaOnion, ok: ok}
	}()

	var hedge <-chan time.Time
	if s.cfg.PeerSoftDeadline > 0 {
		t := time.NewTimer(s.cfg.PeerSoftDeadline)
		defer t.Stop()
		hedge = t.C
	}
	var originCh chan originOutcome
	var originFailed error
	for {
		select {
		case p := <-peerCh:
			if p.ok {
				return true, s.serveRemote(w, p)
			}
			// Peer path exhausted; fall back to whatever the hedge
			// has (or will have), else let the caller go upstream.
			if originCh != nil {
				select {
				case o := <-originCh:
					return true, s.serveHedgeResult(w, o)
				case <-ctx.Done():
					http.Error(w, "proxy: request canceled", http.StatusGatewayTimeout)
					return true, outCanceled
				}
			}
			if originFailed != nil {
				http.Error(w, fmt.Sprintf("proxy: upstream: %v", originFailed), http.StatusBadGateway)
				return true, outError
			}
			return false, ""
		case <-hedge:
			hedge = nil
			obs.SpanFrom(ctx).Event("hedge", "peer soft deadline exceeded; racing origin")
			originCh = make(chan originOutcome, 1)
			go func() {
				body, meta, err := s.fetchUpstream(ctx, url)
				originCh <- originOutcome{body: body, meta: meta, err: err}
			}()
		case o := <-originCh:
			if o.err == nil {
				// The origin answered while the peer path was still
				// grinding: hedged win.
				s.serveDoc(w, SourceOrigin, o.body, o.meta)
				return true, outOriginHedged
			}
			originFailed = o.err
			originCh = nil
		case <-ctx.Done():
			http.Error(w, "proxy: request canceled", http.StatusGatewayTimeout)
			return true, outCanceled
		}
	}
}

// serveRemote writes a successful remote-browser resolution and reports the
// delivery-mode outcome.
func (s *Server) serveRemote(w http.ResponseWriter, p peerOutcome) string {
	if p.viaOnion {
		// The document travels browser-to-browser over the covert
		// path; this response only announces it.
		w.Header().Set(HeaderOnion, "1")
		w.Header().Set(HeaderSource, SourceRemote)
		w.WriteHeader(http.StatusOK)
		return outPeerOnion
	}
	if p.ticket != "" {
		w.Header().Set("X-BAPS-Ticket", p.ticket)
	}
	s.serveDoc(w, SourceRemote, p.body, p.meta)
	if p.ticket != "" {
		return outPeerDirect
	}
	return outPeerFetch
}

// serveHedgeResult writes an awaited hedge outcome after the peer path died.
func (s *Server) serveHedgeResult(w http.ResponseWriter, o originOutcome) string {
	if o.err != nil {
		http.Error(w, fmt.Sprintf("proxy: upstream: %v", o.err), http.StatusBadGateway)
		return outError
	}
	s.serveDoc(w, SourceOrigin, o.body, o.meta)
	return outOrigin
}

func (s *Server) serveDoc(w http.ResponseWriter, source string, body []byte, meta docMeta) {
	w.Header().Set(HeaderSource, source)
	w.Header().Set(HeaderVersion, strconv.FormatInt(meta.version, 10))
	if meta.watermark != nil {
		w.Header().Set(HeaderWatermark, base64.StdEncoding.EncodeToString(meta.watermark))
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// cacheLookup serves from the proxy cache, promoting on hit.
func (s *Server) cacheLookup(url string) ([]byte, docMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, _, ok := s.cache.GetTier(url); !ok {
		return nil, docMeta{}, false
	}
	body, ok := s.bodies[url]
	if !ok {
		// Accounting and body store disagree; treat as miss.
		s.cache.Remove(url)
		return nil, docMeta{}, false
	}
	return body, s.meta[url], true
}

// storeDoc caches a document body at the proxy.
func (s *Server) storeDoc(url string, body []byte, meta docMeta) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.meta[url] = meta
	if _, admitted := s.cache.Put(cache.Doc{Key: url, Size: int64(len(body)), Version: meta.version}); admitted {
		s.bodies[url] = append([]byte(nil), body...)
	}
}

// inflightFetch coalesces concurrent upstream fetches of the same URL: one
// request goes to the origin, the rest wait for its result (classic
// singleflight, so a popular cold document costs one origin round trip).
type inflightFetch struct {
	done chan struct{}
	body []byte
	meta docMeta
	err  error
}

// fetchUpstream obtains the document from the origin, producing and
// recording its watermark (§6.1: the proxy signs on first acquisition).
// Concurrent fetches of one URL are coalesced; waiters still honor their
// own context.
func (s *Server) fetchUpstream(ctx context.Context, url string) ([]byte, docMeta, error) {
	s.inflightMu.Lock()
	if f, ok := s.inflight[url]; ok {
		s.inflightMu.Unlock()
		select {
		case <-f.done:
			return f.body, f.meta, f.err
		case <-ctx.Done():
			return nil, docMeta{}, ctx.Err()
		}
	}
	f := &inflightFetch{done: make(chan struct{})}
	s.inflight[url] = f
	s.inflightMu.Unlock()
	defer func() {
		s.inflightMu.Lock()
		delete(s.inflight, url)
		s.inflightMu.Unlock()
		close(f.done)
	}()
	f.body, f.meta, f.err = s.fetchUpstreamUncoalesced(ctx, url)
	return f.body, f.meta, f.err
}

// upstreamStatusError reports a non-200 origin response.
type upstreamStatusError struct {
	code   int
	status string
}

func (e *upstreamStatusError) Error() string { return "status " + e.status }

// transientUpstream classifies failures worth retrying: transport-level
// errors (refused, reset, timed out) and throttling/5xx statuses. Client
// errors (4xx) and local failures (signing, read) are terminal.
func transientUpstream(err error) bool {
	var se *upstreamStatusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	var ue *neturl.Error
	return errors.As(err, &ue)
}

// fetchUpstreamUncoalesced retries transient origin failures with
// exponential backoff and full jitter, bounded by OriginRetries and the
// request context.
func (s *Server) fetchUpstreamUncoalesced(ctx context.Context, url string) ([]byte, docMeta, error) {
	delay := s.cfg.RetryBaseDelay
	var lastErr error
	for attempt := 0; attempt <= s.cfg.OriginRetries; attempt++ {
		if attempt > 0 {
			s.m.originRetries.Inc()
			obs.SpanFrom(ctx).Event("origin_retry", "attempt "+strconv.Itoa(attempt))
			// Jittered sleep in [delay/2, delay] keeps synchronized
			// retry herds off a recovering origin.
			d := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, docMeta{}, lastErr
			}
			delay *= 2
		}
		body, meta, err := s.originAttempt(ctx, url)
		if err == nil {
			return body, meta, nil
		}
		lastErr = err
		if ctx.Err() != nil || !transientUpstream(err) {
			break
		}
	}
	return nil, docMeta{}, lastErr
}

// originAttempt performs one origin round trip.
func (s *Server) originAttempt(ctx context.Context, url string) ([]byte, docMeta, error) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, docMeta{}, err
	}
	resp, err := s.httpClient.Do(req)
	if err != nil {
		return nil, docMeta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, docMeta{}, &upstreamStatusError{code: resp.StatusCode, status: resp.Status}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 128<<20))
	if err != nil {
		return nil, docMeta{}, err
	}
	version, _ := strconv.ParseInt(resp.Header.Get("X-Origin-Version"), 10, 64)
	mark, err := s.signer.Watermark(body)
	if err != nil {
		return nil, docMeta{}, err
	}
	meta := docMeta{
		version:   version,
		size:      int64(len(body)),
		digest:    integrity.Digest(body),
		watermark: mark,
	}
	s.storeDoc(url, body, meta)
	s.m.originFetch.Observe(time.Since(start).Seconds())
	return body, meta, nil
}

// errPeerStale marks a peer response that proves the index entry stale (the
// peer answered but no longer caches the document). Stale responses prune
// the entry without counting against the peer's circuit breaker.
var errPeerStale = errors.New("stale index entry")

// resolveRemote walks the index's holders for url. In fetch-forward mode
// the proxy retrieves and verifies the body itself; in direct-forward mode
// it opens an anonymous relay drop and instructs the holder to push there;
// in onion-forward mode it launches the document onto a covert path of
// relay browsers and reports viaOnion (no body passes through). ticket is
// non-empty for direct-forward deliveries (requester-side watermark
// rejections reference it in /report-bad).
//
// Candidates are gated by the per-peer circuit breaker: a tripped peer is
// skipped entirely (all its entries sit in quarantine), except that once
// its cooldown elapses one request is admitted as a half-open probe — a
// success re-admits every quarantined entry in one step.
func (s *Server) resolveRemote(ctx context.Context, url string, requester int) (body []byte, meta docMeta, ticket string, viaOnion, ok bool) {
	doc, known := s.syms.Lookup(url)
	if !known {
		// Never indexed by any browser: no holders can exist.
		return nil, docMeta{}, "", false, false
	}
	candidates := s.idx.Ordered(doc, requester)
	// Quarantined holders come last, as half-open probe candidates.
	candidates = append(candidates, s.idx.OrderedQuarantined(doc, requester)...)
	if len(candidates) > 0 {
		obs.SpanFrom(ctx).Event("index_hit", strconv.Itoa(len(candidates))+" holders")
	}
	for _, e := range candidates {
		if ctx.Err() != nil {
			return nil, docMeta{}, "", false, false
		}
		if !s.health.Allow(e.Client) {
			continue // breaker open
		}
		s.mu.Lock()
		peer, registered := s.peers[e.Client]
		s.mu.Unlock()
		if !registered {
			s.idx.Remove(e.Client, doc)
			continue
		}
		start := time.Now()
		var err error
		switch s.cfg.Forward {
		case FetchForward:
			body, meta, err = s.fetchFromPeer(ctx, peer, url)
		case OnionForward:
			err = s.onionFromPeer(ctx, peer, url, requester)
			viaOnion = err == nil
		default:
			body, meta, ticket, err = s.relayFromPeer(ctx, peer, url)
		}
		if err != nil {
			if ctx.Err() != nil {
				// The requester canceled (or the hedge already won);
				// not the peer's fault — record nothing.
				return nil, docMeta{}, "", false, false
			}
			s.m.falsePeer.Inc()
			obs.SpanFrom(ctx).Event("peer_miss", err.Error())
			s.idx.Remove(e.Client, doc)
			if errors.Is(err, errPeerStale) {
				// The peer is alive, it just evicted the document.
				s.health.Touch(e.Client)
			} else if s.health.Failure(e.Client) {
				s.m.breakerOpened.Inc()
				s.idx.Quarantine(e.Client)
				if s.logger != nil {
					s.logger.Warn("breaker opened", "client", e.Client, "err", err)
				}
			}
			continue
		}
		elapsed := time.Since(start)
		if s.health.Success(e.Client, elapsed) {
			s.m.breakerClosed.Inc()
			s.idx.Unquarantine(e.Client)
			if s.logger != nil {
				s.logger.Info("breaker closed", "client", e.Client)
			}
		}
		s.idx.AccountServe(e.Client)
		s.m.peerFetchDur.Observe(elapsed.Seconds())
		s.m.peerServes.WithInt(e.Client).Inc()
		// Onion deliveries bypass the proxy, so the body size comes from
		// the index entry rather than the (empty) relayed payload.
		served := meta.size
		if viaOnion {
			served = e.Size
		}
		s.m.peerServeBytes.WithInt(e.Client).Add(served)
		obs.SpanFrom(ctx).Event("peer_serve", "client "+strconv.Itoa(e.Client))
		if s.cfg.Forward == FetchForward && s.cfg.CachePeerDocs {
			s.storeDoc(url, body, meta)
		}
		return body, meta, ticket, viaOnion, true
	}
	return nil, docMeta{}, "", false, false
}

// fetchFromPeer retrieves url from a holder's peer server and verifies the
// body against the proxy's recorded digest (§6.1 enforced proxy-side: a
// tampering holder is pruned and skipped).
func (s *Server) fetchFromPeer(ctx context.Context, peer peerInfo, url string) ([]byte, docMeta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.baseURL+"/peer/doc?url="+urlQueryEscape(url), nil)
	if err != nil {
		return nil, docMeta{}, err
	}
	req.Header.Set(HeaderToken, peer.token)
	resp, err := s.httpClient.Do(req)
	if err != nil {
		return nil, docMeta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, docMeta{}, fmt.Errorf("client %d: %w", peer.id, errPeerStale)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, docMeta{}, fmt.Errorf("peer status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 128<<20))
	if err != nil {
		return nil, docMeta{}, err
	}
	version, _ := strconv.ParseInt(resp.Header.Get(HeaderVersion), 10, 64)

	s.mu.Lock()
	known, haveMeta := s.meta[url]
	s.mu.Unlock()
	if haveMeta && known.version == version {
		if !bytes.Equal(integrity.Digest(body), known.digest) {
			s.m.watermarkRejected.Inc()
			return nil, docMeta{}, fmt.Errorf("digest mismatch from client %d", peer.id)
		}
		s.m.watermarkVerified.Inc()
		return body, known, nil
	}
	// The proxy has no record for this version (e.g. restarted): accept
	// the holder's stored watermark only if it verifies under our key.
	markB64 := resp.Header.Get(HeaderWatermark)
	mark, err := base64.StdEncoding.DecodeString(markB64)
	if err != nil || integrity.Verify(s.signer.Public(), body, mark) != nil {
		s.m.watermarkRejected.Inc()
		return nil, docMeta{}, fmt.Errorf("unverifiable peer content from client %d", peer.id)
	}
	s.m.watermarkVerified.Inc()
	meta := docMeta{version: version, size: int64(len(body)), digest: integrity.Digest(body), watermark: mark}
	return body, meta, nil
}

// relayFromPeer implements direct-forward: issue a one-time ticket, tell the
// holder to push the document to the relay drop, and wait for delivery. The
// holder learns only the relay URL; the requester never learns the holder.
func (s *Server) relayFromPeer(ctx context.Context, peer peerInfo, url string) ([]byte, docMeta, string, error) {
	ticket, err := s.tickets.Issue([]byte(url))
	if err != nil {
		return nil, docMeta{}, "", err
	}
	session := &relaySession{holder: peer.id, url: url, ch: make(chan relayDelivery, 1)}
	s.relayMu.Lock()
	s.relays[ticket] = session
	s.relayMu.Unlock()
	defer func() {
		s.relayMu.Lock()
		delete(s.relays, ticket)
		s.relayMu.Unlock()
	}()

	sendBody, _ := jsonBytes(PeerSend{URL: url, RelayURL: s.baseURL + "/relay/" + string(ticket)})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer.baseURL+"/peer/send", bytes.NewReader(sendBody))
	if err != nil {
		return nil, docMeta{}, "", err
	}
	req.Header.Set(HeaderToken, peer.token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.httpClient.Do(req)
	if err != nil {
		return nil, docMeta{}, "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, docMeta{}, "", fmt.Errorf("client %d: %w", peer.id, errPeerStale)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return nil, docMeta{}, "", fmt.Errorf("peer send status %s", resp.Status)
	}

	select {
	case d := <-session.ch:
		version, _ := strconv.ParseInt(d.version, 10, 64)
		mark, _ := base64.StdEncoding.DecodeString(d.watermark)
		meta := docMeta{version: version, size: int64(len(d.body)), watermark: mark}
		// Remember which holder served this ticket so a later
		// /report-bad can prune it without exposing its identity.
		s.rememberTicket(string(ticket), peer.id)
		// The proxy relays without inspecting the body (anonymizing
		// relay); the requester verifies the watermark end-to-end.
		return d.body, meta, string(ticket), nil
	case <-time.After(s.cfg.PeerTimeout):
		s.m.relayTimeouts.Inc()
		return nil, docMeta{}, "", fmt.Errorf("relay timeout waiting for client %d", peer.id)
	case <-ctx.Done():
		return nil, docMeta{}, "", ctx.Err()
	}
}

// rememberTicket records a completed relay ticket's holder, evicting only
// the oldest tickets once the bound is exceeded (FIFO — never a wholesale
// wipe, which would destroy holder accountability for every outstanding
// direct-forward ticket at once).
func (s *Server) rememberTicket(ticket string, holder int) {
	s.relayMu.Lock()
	defer s.relayMu.Unlock()
	if _, dup := s.usedTickets[ticket]; !dup {
		s.usedOrder = append(s.usedOrder, ticket)
	}
	s.usedTickets[ticket] = holder
	for len(s.usedTickets) > s.maxUsedTickets {
		oldest := s.usedOrder[s.usedHead]
		s.usedOrder[s.usedHead] = ""
		s.usedHead++
		delete(s.usedTickets, oldest)
	}
	// Compact the consumed prefix once it dominates the queue.
	if s.usedHead > s.maxUsedTickets {
		s.usedOrder = append([]string(nil), s.usedOrder[s.usedHead:]...)
		s.usedHead = 0
	}
}

// handleRelay accepts a holder's push at /relay/{ticket}.
func (s *Server) handleRelay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	tok := anonymity.Ticket(r.URL.Path[len("/relay/"):])
	if _, ok := s.tickets.Redeem(tok); !ok {
		http.Error(w, "proxy: bad or expired ticket", http.StatusForbidden)
		return
	}
	s.relayMu.Lock()
	session := s.relays[tok]
	s.relayMu.Unlock()
	if session == nil {
		http.Error(w, "proxy: no relay session", http.StatusGone)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 128<<20))
	if err != nil {
		http.Error(w, "proxy: relay read", http.StatusBadRequest)
		return
	}
	select {
	case session.ch <- relayDelivery{
		body:      body,
		watermark: r.Header.Get(HeaderWatermark),
		version:   r.Header.Get(HeaderVersion),
	}:
	default:
		// Duplicate push; the ticket store already prevents this.
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleReportBad processes a requester's watermark-rejection report for a
// direct-forward delivery: the proxy maps the ticket back to the holder it
// selected (identities stay hidden from the requester) and prunes the
// holder's index entry.
func (s *Server) handleReportBad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.authClient(r)
	if !ok {
		http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
		return
	}
	var rep BadContentReport
	if err := jsonDecode(r.Body, &rep); err != nil || rep.ClientID != id {
		http.Error(w, "proxy: bad report", http.StatusBadRequest)
		return
	}
	// The relay session is gone by now (fetch completed); recover the
	// holder from the recently-used sessions map is impossible, so we
	// record holder on ticket issue instead: the ticket payload was the
	// URL; prune every index entry for the URL as a conservative
	// fallback, or the specific holder when the session is still known.
	s.relayMu.Lock()
	session := s.relays[anonymity.Ticket(rep.Ticket)]
	s.relayMu.Unlock()
	s.m.watermarkRejected.Inc()
	doc, known := s.syms.Lookup(rep.URL)
	if session != nil {
		if known {
			s.idx.Remove(session.holder, doc)
		}
		s.health.Failure(session.holder)
	} else if holder, ok := s.ticketHolder(rep.Ticket); ok {
		if known {
			s.idx.Remove(holder, doc)
		}
		s.health.Failure(holder)
	} else if known {
		for _, e := range s.idx.Lookup(doc) {
			s.idx.Remove(e.Client, doc)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// ticketHolder resolves a recently used ticket to the holder that served it.
func (s *Server) ticketHolder(ticket string) (int, bool) {
	s.relayMu.Lock()
	defer s.relayMu.Unlock()
	h, ok := s.usedTickets[ticket]
	return h, ok
}

func jsonDecode(r io.Reader, v any) error {
	return jsonNewDecoder(r, v)
}
