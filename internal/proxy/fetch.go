package proxy

import (
	"bytes"
	"context"
	"crypto/md5"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	neturl "net/url"
	"strconv"
	"time"

	"baps/internal/anonymity"
	"baps/internal/bufpool"
	"baps/internal/cache"
	"baps/internal/integrity"
	"baps/internal/obs"
)

// handleFetch is the client-facing resolution pipeline: proxy cache →
// browser index (remote browsers, hedged against the origin past the soft
// deadline) → origin with retry/backoff. The request's context is threaded
// through every downstream call, so a disconnecting client cancels its peer
// contacts and origin fetch.
func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "proxy: GET only", http.StatusMethodNotAllowed)
		return
	}
	url := r.URL.Query().Get("url")
	if url == "" {
		http.Error(w, "proxy: missing url", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if r.Header.Get(HeaderClusterHop) == "1" {
		// A sibling proxy's one-hop relay: local tiers + own browsers
		// only, separate accounting, no admission pacing (see cluster.go).
		s.handleClusterFetch(w, r, url)
		return
	}
	// A caller claiming a client identity must prove it with the
	// registration token, exactly like /index/* and /report-bad —
	// otherwise any caller could impersonate a requester and skew
	// holder-selection and serve accounting. Anonymous fetches (no
	// client header) remain allowed.
	requester := -1
	if r.Header.Get(HeaderClient) != "" {
		id, ok := s.authClient(r)
		if !ok {
			http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
			return
		}
		requester = id
	}
	if s.pacer != nil {
		// Admission pacing: each client-facing fetch waits for its
		// capacity slot (MaxFetchRPS models per-instance capacity).
		if err := s.pacer.wait(ctx); err != nil {
			s.m.requests.Inc()
			s.m.outCanceled.Inc()
			http.Error(w, "proxy: request canceled", http.StatusGatewayTimeout)
			return
		}
	}
	s.m.requests.Inc()
	s.notePop(url)
	start := time.Now()
	sp := s.tracer.StartSpan("fetch")
	sp.SetClient(requester)
	sp.SetURL(url)
	ctx = obs.WithSpan(ctx, sp)

	outcome := s.resolveFetch(ctx, w, url, requester, r.Header.Get(HeaderNoPeer) == "1")

	dur := time.Since(start)
	s.m.outcomeCounter(outcome).Inc()
	s.m.fetchDur.Observe(dur.Seconds())
	sp.Finish(outcome, nil)
	if s.logger != nil {
		s.logger.Info("fetch",
			"url", url,
			"client", requester,
			"outcome", outcome,
			"duration_ms", float64(dur.Microseconds())/1e3)
	}
}

// fetchResult is one completed miss resolution: the document (buffered body
// or direct-forward stream) plus everything needed to write the response and
// account the outcome. Buffered results are immutable and safely shared
// across coalesced requests; streamed results are requester-specific and
// never enter the flight group.
type fetchResult struct {
	body     []byte
	stream   *relayStream
	meta     docMeta
	source   string
	ticket   string
	viaOnion bool
	outcome  string
}

// resolveFetch runs the decision path — proxy cache, coalesced miss
// resolution (browser index with hedged origin, then plain origin) — writes
// the response, and reports which outcome was taken (one of the out*
// constants).
func (s *Server) resolveFetch(ctx context.Context, w http.ResponseWriter, url string, requester int, noPeer bool) string {
	// 1. Proxy cache: memory tier, spill stage, then the disk store.
	if outcome, ok := s.serveLocal(w, url); ok {
		return outcome
	}

	peerEligible := !s.cfg.DisablePeer && !noPeer

	// 2+3. Miss resolution: remote browsers (hedged with the origin), then
	// the origin. Under fetch-forward (or with peers out of the picture)
	// the resolved document is requester-independent, so concurrent misses
	// for one URL coalesce: a single leader resolves, followers reuse its
	// result. Direct- and onion-forward deliveries are addressed to one
	// requester (one-time relay drop / covert path terminating at the
	// client), so those resolve per-request — their origin fallback still
	// coalesces inside fetchUpstream.
	if peerEligible && s.cfg.Forward != FetchForward {
		res, err := s.resolveMiss(ctx, url, requester, true)
		return s.writeResolution(ctx, w, res, err, false)
	}
	key := url
	if !peerEligible {
		// A no-peer resolution (client retrying after a watermark
		// rejection, or a peer-disabled proxy) must never attach to a
		// peer-path round; it keys separately.
		key = "\x00nopeer|" + url
	}
	res, shared, err := s.missFlight.Do(ctx, key, func() (fetchResult, error) {
		return s.resolveMiss(ctx, url, requester, peerEligible)
	})
	if shared {
		obs.SpanFrom(ctx).Event("coalesced", "attached to in-flight resolution")
	}
	return s.writeResolution(ctx, w, res, err, shared)
}

// resolveMiss resolves a proxy-cache miss to a document without touching the
// ResponseWriter (so the result can be shared across coalesced requests).
func (s *Server) resolveMiss(ctx context.Context, url string, requester int, peerEligible bool) (fetchResult, error) {
	if peerEligible {
		if res, handled, err := s.raceRemoteOrigin(ctx, url, requester); handled {
			return res, err
		}
		// Cluster tier: local browsers came up empty; check the sibling
		// proxies' digests before paying for an origin round trip.
		if res, ok := s.resolveCluster(ctx, url); ok {
			return res, nil
		}
	}
	body, meta, err := s.fetchUpstream(ctx, url)
	if err != nil {
		return fetchResult{}, err
	}
	return fetchResult{body: body, meta: meta, source: SourceOrigin, outcome: outOrigin}, nil
}

// writeResolution writes a completed (or failed) miss resolution and reports
// the outcome, bumping the coalesced counter when the result was shared from
// another request's round.
func (s *Server) writeResolution(ctx context.Context, w http.ResponseWriter, res fetchResult, err error, shared bool) string {
	outcome := res.outcome
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil):
		http.Error(w, "proxy: request canceled", http.StatusGatewayTimeout)
		outcome = outCanceled
	case err != nil:
		http.Error(w, fmt.Sprintf("proxy: upstream: %v", err), http.StatusBadGateway)
		outcome = outError
	case res.viaOnion:
		// The document travels browser-to-browser over the covert
		// path; this response only announces it.
		w.Header().Set(HeaderOnion, "1")
		w.Header().Set(HeaderSource, SourceRemote)
		w.WriteHeader(http.StatusOK)
	case res.stream != nil:
		s.serveStream(w, res)
	default:
		if res.ticket != "" {
			w.Header().Set("X-BAPS-Ticket", res.ticket)
		}
		s.serveDoc(w, res.source, res.body, res.meta)
	}
	if shared {
		s.m.coalesced.With(outcome).Inc()
	}
	return outcome
}

// peerOutcome is the result of one resolveRemote walk. Exactly one of body
// (fetch-forward), stream (direct-forward) or viaOnion (onion-forward) is
// set on success.
type peerOutcome struct {
	body     []byte
	stream   *relayStream
	meta     docMeta
	ticket   string
	viaOnion bool
	ok       bool
}

// result shapes a successful peer resolution for the response writer.
func (p peerOutcome) result() fetchResult {
	res := fetchResult{
		body:     p.body,
		stream:   p.stream,
		meta:     p.meta,
		source:   SourceRemote,
		ticket:   p.ticket,
		viaOnion: p.viaOnion,
	}
	switch {
	case p.viaOnion:
		res.outcome = outPeerOnion
	case p.ticket != "":
		res.outcome = outPeerDirect
	default:
		res.outcome = outPeerFetch
	}
	return res
}

// originOutcome is the result of one hedged upstream fetch.
type originOutcome struct {
	body []byte
	meta docMeta
	err  error
}

// raceRemoteOrigin runs the remote-browser resolution, racing the origin once
// the peer path exceeds PeerSoftDeadline (a slow or dying holder must never
// make a request slower than a plain proxy miss). handled=false means the
// peer path produced nothing and no hedge result is pending: the caller
// should take the plain origin path.
func (s *Server) raceRemoteOrigin(ctx context.Context, url string, requester int) (fetchResult, bool, error) {
	peerCh := make(chan peerOutcome, 1)
	go func() { peerCh <- s.resolveRemote(ctx, url, requester) }()

	var hedge <-chan time.Time
	if s.cfg.PeerSoftDeadline > 0 {
		t := time.NewTimer(s.cfg.PeerSoftDeadline)
		defer t.Stop()
		hedge = t.C
	}
	var originCh chan originOutcome
	var originFailed error
	for {
		select {
		case p := <-peerCh:
			if p.ok {
				return p.result(), true, nil
			}
			// Peer path exhausted; fall back to whatever the hedge
			// has (or will have), else let the caller go upstream.
			if originCh != nil {
				select {
				case o := <-originCh:
					if o.err != nil {
						return fetchResult{}, true, o.err
					}
					return fetchResult{body: o.body, meta: o.meta, source: SourceOrigin, outcome: outOrigin}, true, nil
				case <-ctx.Done():
					return fetchResult{}, true, ctx.Err()
				}
			}
			if originFailed != nil {
				return fetchResult{}, true, originFailed
			}
			return fetchResult{}, false, nil
		case <-hedge:
			hedge = nil
			obs.SpanFrom(ctx).Event("hedge", "peer soft deadline exceeded; racing origin")
			originCh = make(chan originOutcome, 1)
			go func() {
				body, meta, err := s.fetchUpstream(ctx, url)
				originCh <- originOutcome{body: body, meta: meta, err: err}
			}()
		case o := <-originCh:
			if o.err == nil {
				// The origin answered while the peer path was still
				// grinding: hedged win. The walk may still deliver a
				// direct-forward stream later; release it.
				go abandonPeer(peerCh)
				return fetchResult{body: o.body, meta: o.meta, source: SourceOrigin, outcome: outOriginHedged}, true, nil
			}
			originFailed = o.err
			originCh = nil
		case <-ctx.Done():
			go abandonPeer(peerCh)
			return fetchResult{}, true, ctx.Err()
		}
	}
}

// abandonPeer consumes a peer-walk result nobody will serve, releasing any
// direct-forward stream (and the holder blocked behind it). The walk itself
// winds down on its own once the request context dies.
func abandonPeer(peerCh <-chan peerOutcome) {
	if p := <-peerCh; p.stream != nil {
		p.stream.finish(errRelayAbandoned)
	}
}

// serveStream relays a direct-forward delivery straight from the holder's
// push to the requester through a pooled copy buffer — the document never
// lands in proxy memory. The requester verifies the watermark end-to-end,
// exactly as with the buffered relay this replaces.
func (s *Server) serveStream(w http.ResponseWriter, res fetchResult) {
	st := res.stream
	st.claim()
	if res.ticket != "" {
		w.Header().Set("X-BAPS-Ticket", res.ticket)
	}
	w.Header().Set(HeaderSource, res.source)
	w.Header().Set(HeaderVersion, strconv.FormatInt(res.meta.version, 10))
	if res.meta.watermark != nil {
		w.Header().Set(HeaderWatermark, base64.StdEncoding.EncodeToString(res.meta.watermark))
	}
	if st.length >= 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(st.length, 10))
	}
	w.WriteHeader(http.StatusOK)
	_, err := bufpool.CopySized(w, st.r, st.length)
	if err != nil {
		s.m.relayStreamErrors.Inc()
		if errors.Is(err, ErrDocTooLarge) {
			s.m.docTooLarge.Inc()
		}
	}
	st.finish(err)
}

// writeDocHeaders commits a document response's headers (meta.size is the
// Content-Length).
func writeDocHeaders(w http.ResponseWriter, source string, meta docMeta) {
	w.Header().Set(HeaderSource, source)
	w.Header().Set(HeaderVersion, strconv.FormatInt(meta.version, 10))
	if meta.watermark != nil {
		w.Header().Set(HeaderWatermark, base64.StdEncoding.EncodeToString(meta.watermark))
	}
	w.Header().Set("Content-Length", strconv.FormatInt(meta.size, 10))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) serveDoc(w http.ResponseWriter, source string, body []byte, meta docMeta) {
	meta.size = int64(len(body))
	writeDocHeaders(w, source, meta)
	w.Write(body)
}

// cacheLookup serves from the proxy's memory tier, promoting on hit (tests
// use it to probe residency; the request path goes through serveLocal).
func (s *Server) cacheLookup(url string) ([]byte, docMeta, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, _, ok := s.cache.GetTier(url); !ok {
		return nil, docMeta{}, false
	}
	body, ok := s.bodies[url]
	if !ok {
		if s.ds != nil {
			// Body lives in the spill stage or on disk; report non-resident
			// here without shedding the entry.
			s.drainSpillsLocked()
			return nil, docMeta{}, false
		}
		// Accounting and body store disagree; treat as miss.
		s.cache.Remove(url)
		return nil, docMeta{}, false
	}
	s.drainSpillsLocked()
	return body, s.meta[url], true
}

// storeDoc caches a document body at the proxy. The caller hands over
// ownership of body — every call site passes a buffer it freshly read off
// the wire and only ever reads afterwards, so no defensive copy is taken.
func (s *Server) storeDoc(url string, body []byte, meta docMeta) {
	if meta.storedAt.IsZero() {
		meta.storedAt = time.Now()
	}
	modified := false
	s.mu.Lock()
	if old, existed := s.meta[url]; existed && meta.version > old.version {
		// An observed origin-side modification: stale copies may still
		// live in browsers and sibling proxies (handled after unlock).
		modified = true
	}
	s.meta[url] = meta
	delete(s.durable, url) // any disk copy is now stale
	if _, admitted := s.cache.Put(cache.Doc{Key: url, Size: int64(len(body)), Version: meta.version}); admitted {
		s.bodies[url] = body
		if s.ds != nil {
			// The storing fetch is the document's first access.
			s.hits[url]++
		}
	}
	s.drainSpillsLocked()
	// Every cache store widens the local resolvable set the federation
	// digest advertises (no-op unfederated; lock order is s.mu → fed.mu,
	// and the digest builder's source snapshot never runs under fed.mu).
	s.fedNote(1)
	s.mu.Unlock()
	if modified {
		s.onModified(url, meta.version, false)
	}
}

// upstreamDoc is a completed origin acquisition, shared across coalesced
// upstream fetches.
type upstreamDoc struct {
	body []byte
	meta docMeta
}

// fetchUpstream obtains the document from the origin, producing and
// recording its watermark (§6.1: the proxy signs on first acquisition).
// Concurrent fetches of one URL are coalesced through the flight group: one
// leader pays the origin round trip, followers share its result, a failed
// leader's followers retry independently, and waiters still honor their own
// context.
func (s *Server) fetchUpstream(ctx context.Context, url string) ([]byte, docMeta, error) {
	d, _, err := s.originFlight.Do(ctx, url, func() (upstreamDoc, error) {
		body, meta, ferr := s.fetchUpstreamUncoalesced(ctx, url)
		if ferr != nil {
			return upstreamDoc{}, ferr
		}
		return upstreamDoc{body: body, meta: meta}, nil
	})
	if err != nil {
		return nil, docMeta{}, err
	}
	return d.body, d.meta, nil
}

// upstreamStatusError reports a non-200 origin response.
type upstreamStatusError struct {
	code   int
	status string
}

func (e *upstreamStatusError) Error() string { return "status " + e.status }

// transientUpstream classifies failures worth retrying: transport-level
// errors (refused, reset, timed out) and throttling/5xx statuses. Client
// errors (4xx) and local failures (signing, read, oversize) are terminal.
func transientUpstream(err error) bool {
	var se *upstreamStatusError
	if errors.As(err, &se) {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	var ue *neturl.Error
	return errors.As(err, &ue)
}

// fetchUpstreamUncoalesced retries transient origin failures with
// exponential backoff and full jitter, bounded by OriginRetries and the
// request context.
func (s *Server) fetchUpstreamUncoalesced(ctx context.Context, url string) ([]byte, docMeta, error) {
	delay := s.cfg.RetryBaseDelay
	var lastErr error
	for attempt := 0; attempt <= s.cfg.OriginRetries; attempt++ {
		if attempt > 0 {
			s.m.originRetries.Inc()
			obs.SpanFrom(ctx).Event("origin_retry", "attempt "+strconv.Itoa(attempt))
			// Jittered sleep in [delay/2, delay] keeps synchronized
			// retry herds off a recovering origin.
			d := delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, docMeta{}, lastErr
			}
			delay *= 2
		}
		body, meta, err := s.originAttempt(ctx, url)
		if err == nil {
			return body, meta, nil
		}
		lastErr = err
		if ctx.Err() != nil || !transientUpstream(err) {
			break
		}
	}
	return nil, docMeta{}, lastErr
}

// originAttempt performs one origin round trip: the body is read in a single
// pass (pre-sized from Content-Length, MD5 hashed as it streams in), the
// watermark is signed over that incremental digest, and the buffer moves
// into the cache without a defensive copy.
func (s *Server) originAttempt(ctx context.Context, url string) ([]byte, docMeta, error) {
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, docMeta{}, err
	}
	resp, err := s.originClient.Do(req)
	if err != nil {
		return nil, docMeta{}, err
	}
	if resp.StatusCode != http.StatusOK {
		DrainClose(resp)
		return nil, docMeta{}, &upstreamStatusError{code: resp.StatusCode, status: resp.Status}
	}
	defer resp.Body.Close()
	h := md5.New()
	body, err := readDoc(resp.Body, resp.ContentLength, h)
	if err != nil {
		if errors.Is(err, ErrDocTooLarge) {
			s.m.docTooLarge.Inc()
		}
		return nil, docMeta{}, err
	}
	version, _ := strconv.ParseInt(resp.Header.Get("X-Origin-Version"), 10, 64)
	digest := h.Sum(nil)
	mark, err := s.signer.WatermarkDigest(digest)
	if err != nil {
		return nil, docMeta{}, err
	}
	meta := docMeta{
		version:   version,
		size:      int64(len(body)),
		digest:    digest,
		watermark: mark,
		lastMod:   resp.Header.Get("Last-Modified"),
		storedAt:  time.Now(),
	}
	s.storeDoc(url, body, meta)
	s.m.originFetch.Observe(time.Since(start).Seconds())
	return body, meta, nil
}

// errPeerStale marks a peer response that proves the index entry stale (the
// peer answered but no longer caches the document). Stale responses prune
// the entry without counting against the peer's circuit breaker.
var errPeerStale = errors.New("stale index entry")

// resolveRemote walks the index's holders for url. In fetch-forward mode
// the proxy retrieves and verifies the body itself; in direct-forward mode
// it opens an anonymous relay drop and instructs the holder to push there,
// returning the push as a live stream; in onion-forward mode it launches the
// document onto a covert path of relay browsers and reports viaOnion (no
// body passes through). ticket is non-empty for direct-forward deliveries
// (requester-side watermark rejections reference it in /report-bad).
//
// Candidates are gated by the per-peer circuit breaker: a tripped peer is
// skipped entirely (all its entries sit in quarantine), except that once
// its cooldown elapses one request is admitted as a half-open probe — a
// success re-admits every quarantined entry in one step.
func (s *Server) resolveRemote(ctx context.Context, url string, requester int) peerOutcome {
	return s.resolveRemoteMode(ctx, url, requester, s.cfg.Forward)
}

// resolveRemoteMode is resolveRemote with an explicit delivery mode: the
// cluster-hop serve path forces FetchForward regardless of the configured
// mode, since a sibling proxy needs a buffered body, not a relay ticket.
func (s *Server) resolveRemoteMode(ctx context.Context, url string, requester int, mode ForwardMode) peerOutcome {
	doc, known := s.syms.Lookup(url)
	if !known {
		// Never indexed by any browser: no holders can exist.
		return peerOutcome{}
	}
	candidates := s.idx.Ordered(doc, requester)
	// Quarantined holders come last, as half-open probe candidates.
	candidates = append(candidates, s.idx.OrderedQuarantined(doc, requester)...)
	if len(candidates) > 0 {
		obs.SpanFrom(ctx).Event("index_hit", strconv.Itoa(len(candidates))+" holders")
	}
	for _, e := range candidates {
		if ctx.Err() != nil {
			return peerOutcome{}
		}
		if !s.health.Allow(e.Client) {
			continue // breaker open
		}
		s.mu.Lock()
		peer, registered := s.peers[e.Client]
		s.mu.Unlock()
		if !registered {
			s.idx.Remove(e.Client, doc)
			continue
		}
		start := time.Now()
		var p peerOutcome
		var err error
		switch mode {
		case FetchForward:
			p.body, p.meta, err = s.fetchFromPeer(ctx, peer, url)
		case OnionForward:
			err = s.onionFromPeer(ctx, peer, url, requester)
			p.viaOnion = err == nil
		default:
			p.stream, p.meta, p.ticket, err = s.relayFromPeer(ctx, peer, url)
		}
		if err != nil {
			if ctx.Err() != nil {
				// The requester canceled (or the hedge already won);
				// not the peer's fault — record nothing.
				return peerOutcome{}
			}
			s.m.falsePeer.Inc()
			obs.SpanFrom(ctx).Event("peer_miss", err.Error())
			s.idx.Remove(e.Client, doc)
			if errors.Is(err, errPeerStale) {
				// The peer is alive, it just evicted the document.
				s.health.Touch(e.Client)
			} else if s.health.Failure(e.Client) {
				s.m.breakerOpened.Inc()
				s.idx.Quarantine(e.Client)
				if s.logger != nil {
					s.logger.Warn("breaker opened", "client", e.Client, "err", err)
				}
			}
			continue
		}
		elapsed := time.Since(start)
		if s.health.Success(e.Client, elapsed) {
			s.m.breakerClosed.Inc()
			s.idx.Unquarantine(e.Client)
			if s.logger != nil {
				s.logger.Info("breaker closed", "client", e.Client)
			}
		}
		s.idx.AccountServe(e.Client)
		s.m.peerFetchDur.Observe(elapsed.Seconds())
		s.m.peerServes.WithInt(e.Client).Inc()
		// Onion deliveries bypass the proxy and streamed relays are still
		// in flight, so the served size comes from the index entry when
		// the relayed payload length is unknown.
		served := p.meta.size
		if p.viaOnion || served < 0 {
			served = e.Size
		}
		s.m.peerServeBytes.WithInt(e.Client).Add(served)
		obs.SpanFrom(ctx).Event("peer_serve", "client "+strconv.Itoa(e.Client))
		if mode == FetchForward && s.cfg.CachePeerDocs {
			s.storeDoc(url, p.body, p.meta)
		}
		p.ok = true
		return p
	}
	return peerOutcome{}
}

// fetchFromPeer retrieves url from a holder's peer server and verifies the
// body against the proxy's recorded digest (§6.1 enforced proxy-side: a
// tampering holder is pruned and skipped). The digest is computed
// incrementally while the body streams in — one pass, no re-hash.
func (s *Server) fetchFromPeer(ctx context.Context, peer peerInfo, url string) ([]byte, docMeta, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer.baseURL+"/peer/doc?url="+urlQueryEscape(url), nil)
	if err != nil {
		return nil, docMeta{}, err
	}
	req.Header.Set(HeaderToken, peer.token)
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return nil, docMeta{}, err
	}
	if resp.StatusCode == http.StatusNotFound {
		DrainClose(resp)
		return nil, docMeta{}, fmt.Errorf("client %d: %w", peer.id, errPeerStale)
	}
	if resp.StatusCode != http.StatusOK {
		DrainClose(resp)
		return nil, docMeta{}, fmt.Errorf("peer status %s", resp.Status)
	}
	defer resp.Body.Close()
	h := md5.New()
	body, err := readDoc(resp.Body, resp.ContentLength, h)
	if err != nil {
		if errors.Is(err, ErrDocTooLarge) {
			s.m.docTooLarge.Inc()
		}
		return nil, docMeta{}, err
	}
	digest := h.Sum(nil)
	version, _ := strconv.ParseInt(resp.Header.Get(HeaderVersion), 10, 64)

	s.mu.Lock()
	known, haveMeta := s.meta[url]
	s.mu.Unlock()
	if haveMeta && known.version == version {
		if !bytes.Equal(digest, known.digest) {
			s.m.watermarkRejected.Inc()
			return nil, docMeta{}, fmt.Errorf("digest mismatch from client %d", peer.id)
		}
		s.m.watermarkVerified.Inc()
		return body, known, nil
	}
	// The proxy has no record for this version (e.g. restarted): accept
	// the holder's stored watermark only if it verifies under our key.
	markB64 := resp.Header.Get(HeaderWatermark)
	mark, err := base64.StdEncoding.DecodeString(markB64)
	if err != nil || integrity.VerifyDigest(s.signer.Public(), digest, mark) != nil {
		s.m.watermarkRejected.Inc()
		return nil, docMeta{}, fmt.Errorf("unverifiable peer content from client %d", peer.id)
	}
	s.m.watermarkVerified.Inc()
	meta := docMeta{version: version, size: int64(len(body)), digest: digest, watermark: mark}
	return body, meta, nil
}

// relayFromPeer implements direct-forward: issue a one-time ticket, tell the
// holder to push the document to the relay drop, and hand the arriving push
// back as a live stream. The holder learns only the relay URL; the requester
// never learns the holder.
//
// The send instruction is dispatched asynchronously: with streamed relays
// the holder's push completes only after the requester consumes it, which in
// turn happens only after this function returns — awaiting the send's HTTP
// response first would deadlock the pipeline.
func (s *Server) relayFromPeer(ctx context.Context, peer peerInfo, url string) (*relayStream, docMeta, string, error) {
	ticket, err := s.tickets.Issue([]byte(url))
	if err != nil {
		return nil, docMeta{}, "", err
	}
	session := &relaySession{holder: peer.id, url: url, ch: make(chan relayDelivery, 1)}
	s.relayMu.Lock()
	s.relays[ticket] = session
	s.relayMu.Unlock()
	defer func() {
		s.relayMu.Lock()
		delete(s.relays, ticket)
		s.relayMu.Unlock()
	}()

	sendBody, _ := jsonBytes(PeerSend{URL: url, RelayURL: s.baseURL + "/relay/" + string(ticket)})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer.baseURL+"/peer/send", bytes.NewReader(sendBody))
	if err != nil {
		return nil, docMeta{}, "", err
	}
	req.Header.Set(HeaderToken, peer.token)
	req.Header.Set("Content-Type", "application/json")
	sendCh := make(chan error, 1)
	go func() {
		resp, serr := s.peerClient.Do(req)
		if serr != nil {
			sendCh <- serr
			return
		}
		defer DrainClose(resp)
		switch {
		case resp.StatusCode == http.StatusNotFound:
			sendCh <- fmt.Errorf("client %d: %w", peer.id, errPeerStale)
		case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent:
			sendCh <- fmt.Errorf("peer send status %s", resp.Status)
		default:
			sendCh <- nil
		}
	}()

	timeout := time.NewTimer(s.cfg.PeerTimeout)
	defer timeout.Stop()
	for {
		select {
		case d := <-session.ch:
			version, _ := strconv.ParseInt(d.version, 10, 64)
			mark, _ := base64.StdEncoding.DecodeString(d.watermark)
			meta := docMeta{version: version, size: d.stream.length, watermark: mark}
			// Remember which holder served this ticket so a later
			// /report-bad can prune it without exposing its identity.
			s.rememberTicket(string(ticket), peer.id)
			// The proxy relays without inspecting the body (anonymizing
			// relay); the requester verifies the watermark end-to-end.
			return d.stream, meta, string(ticket), nil
		case serr := <-sendCh:
			if serr != nil {
				return nil, docMeta{}, "", serr
			}
			sendCh = nil // send acknowledged; keep waiting for the push
		case <-timeout.C:
			s.m.relayTimeouts.Inc()
			return nil, docMeta{}, "", fmt.Errorf("relay timeout waiting for client %d", peer.id)
		case <-ctx.Done():
			return nil, docMeta{}, "", ctx.Err()
		}
	}
}

// rememberTicket records a completed relay ticket's holder, evicting only
// the oldest tickets once the bound is exceeded (FIFO — never a wholesale
// wipe, which would destroy holder accountability for every outstanding
// direct-forward ticket at once).
func (s *Server) rememberTicket(ticket string, holder int) {
	s.relayMu.Lock()
	defer s.relayMu.Unlock()
	if _, dup := s.usedTickets[ticket]; !dup {
		s.usedOrder = append(s.usedOrder, ticket)
	}
	s.usedTickets[ticket] = holder
	for len(s.usedTickets) > s.maxUsedTickets {
		oldest := s.usedOrder[s.usedHead]
		s.usedOrder[s.usedHead] = ""
		s.usedHead++
		delete(s.usedTickets, oldest)
	}
	// Compact the consumed prefix once it dominates the queue.
	if s.usedHead > s.maxUsedTickets {
		s.usedOrder = append([]string(nil), s.usedOrder[s.usedHead:]...)
		s.usedHead = 0
	}
}

// handleRelay accepts a holder's push at /relay/{ticket} and hands the
// request body to the waiting /fetch goroutine as a live stream, blocking
// the push until the requester has consumed it (or abandoned it). The
// document itself never enters proxy memory.
func (s *Server) handleRelay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	tok := anonymity.Ticket(r.URL.Path[len("/relay/"):])
	if _, ok := s.tickets.Redeem(tok); !ok {
		http.Error(w, "proxy: bad or expired ticket", http.StatusForbidden)
		return
	}
	s.relayMu.Lock()
	session := s.relays[tok]
	s.relayMu.Unlock()
	if session == nil {
		http.Error(w, "proxy: no relay session", http.StatusGone)
		return
	}
	if r.ContentLength > maxDocBytes {
		s.m.docTooLarge.Inc()
		http.Error(w, "proxy: document too large", http.StatusRequestEntityTooLarge)
		return
	}
	stream := newRelayStream(newCappedReader(r.Body, maxDocBytes), r.ContentLength)
	select {
	case session.ch <- relayDelivery{
		stream:    stream,
		watermark: r.Header.Get(HeaderWatermark),
		version:   r.Header.Get(HeaderVersion),
	}:
	default:
		// Duplicate push; the ticket store already prevents this.
		http.Error(w, "proxy: duplicate relay push", http.StatusConflict)
		return
	}
	// Phase 1: wait for a consumer to claim the stream (or for the
	// delivery to be abandoned / time out unclaimed).
	unclaimed := time.NewTimer(s.cfg.PeerTimeout)
	defer unclaimed.Stop()
	select {
	case <-stream.claimed:
	case err := <-stream.done:
		if err != nil {
			http.Error(w, "proxy: relay abandoned", http.StatusGone)
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	case <-unclaimed.C:
		s.m.relayStreamErrors.Inc()
		http.Error(w, "proxy: relay unclaimed", http.StatusGatewayTimeout)
		return
	case <-r.Context().Done():
		return
	}
	// Phase 2: a consumer is copying; hold the push open until it finishes.
	select {
	case err := <-stream.done:
		if err != nil {
			http.Error(w, "proxy: relay stream aborted", http.StatusBadGateway)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case <-r.Context().Done():
		// Holder gave up mid-push; the consumer sees the read error.
	}
}

// handleReportBad processes a requester's watermark-rejection report for a
// direct-forward delivery: the proxy maps the ticket back to the holder it
// selected (identities stay hidden from the requester) and prunes the
// holder's index entry.
func (s *Server) handleReportBad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	id, ok := s.authClient(r)
	if !ok {
		http.Error(w, "proxy: bad client credentials", http.StatusForbidden)
		return
	}
	var rep BadContentReport
	if err := jsonDecode(r.Body, &rep); err != nil || rep.ClientID != id {
		http.Error(w, "proxy: bad report", http.StatusBadRequest)
		return
	}
	// The relay session is gone by now (fetch completed); recover the
	// holder from the recently-used sessions map is impossible, so we
	// record holder on ticket issue instead: the ticket payload was the
	// URL; prune every index entry for the URL as a conservative
	// fallback, or the specific holder when the session is still known.
	s.relayMu.Lock()
	session := s.relays[anonymity.Ticket(rep.Ticket)]
	s.relayMu.Unlock()
	s.m.watermarkRejected.Inc()
	doc, known := s.syms.Lookup(rep.URL)
	if session != nil {
		if known {
			s.idx.Remove(session.holder, doc)
		}
		s.health.Failure(session.holder)
	} else if holder, ok := s.ticketHolder(rep.Ticket); ok {
		if known {
			s.idx.Remove(holder, doc)
		}
		s.health.Failure(holder)
	} else if known {
		for _, e := range s.idx.Lookup(doc) {
			s.idx.Remove(e.Client, doc)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// ticketHolder resolves a recently used ticket to the holder that served it.
func (s *Server) ticketHolder(ticket string) (int, bool) {
	s.relayMu.Lock()
	defer s.relayMu.Unlock()
	h, ok := s.usedTickets[ticket]
	return h, ok
}

func jsonDecode(r io.Reader, v any) error {
	return jsonNewDecoder(r, v)
}
