package proxy

import (
	"net/http"
	"strconv"
)

// Dead-letter admin plane (DESIGN.md §14 follow-on): the background queue
// retains its last few retry-exhausted jobs, and these endpoints let an
// operator inspect them and push them back through the queue after fixing
// whatever was failing — without restarting the proxy.

// handleQueueDeadLetter serves GET /queue/deadletter?n=K: the most recent K
// dead-lettered background jobs (newest last; all retained entries when n is
// absent or out of range).
func (s *Server) handleQueueDeadLetter(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "proxy: GET only", http.StatusMethodNotAllowed)
		return
	}
	dl := s.wq.DeadLetters()
	if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(dl) {
		dl = dl[len(dl)-n:]
	}
	writeJSON(w, DeadLetterResponse{DeadLetters: dl})
}

// handleQueueReplay serves POST /queue/replay?n=K: re-enqueues up to K
// retained dead letters (oldest first, fresh attempt budget; all of them
// when n is absent).
func (s *Server) handleQueueReplay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "proxy: POST only", http.StatusMethodNotAllowed)
		return
	}
	n := deadLetterRingMax
	if k, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && k >= 0 {
		n = k
	}
	replayed, skipped := s.wq.Replay(n)
	writeJSON(w, ReplayResponse{Replayed: replayed, Skipped: skipped})
}

// deadLetterRingMax is "replay everything" — comfortably above the queue's
// retention ring.
const deadLetterRingMax = 1 << 20
