package proxy

import (
	"net"
	"net/http"
	"time"
)

// Connection-pool sizing for the live system's three traffic classes. The
// stock http.DefaultTransport keeps only 2 idle connections per host, which
// collapses under a proxy pushing dozens of concurrent misses at one origin:
// every request past the second re-dials, pays connect latency, and leaves a
// TIME_WAIT corpse behind.
const (
	// OriginIdleConnsPerHost sizes the proxy→origin pool. Misses
	// concentrate on few origin hosts, so this is the deepest pool.
	OriginIdleConnsPerHost = 128
	// PeerIdleConnsPerHost sizes the proxy→browser pool. Peer traffic
	// fans out across many holder hosts, so each needs only a few warm
	// connections.
	PeerIdleConnsPerHost = 8
	// AgentIdleConnsPerHost sizes a browser agent's pool toward its one
	// proxy host.
	AgentIdleConnsPerHost = 16
)

// NewTransport returns a keep-alive-tuned *http.Transport for live BAPS
// traffic (proxy→origin, proxy→peer, and browser-agent→proxy clients all
// build on it). Compared to http.DefaultTransport it deepens the per-host
// idle pool, bounds dial and TLS-handshake time so a black-holed host fails
// fast, and widens the socket buffers to the document-copy tier.
func NewTransport(maxIdlePerHost int) *http.Transport {
	if maxIdlePerHost <= 0 {
		maxIdlePerHost = PeerIdleConnsPerHost
	}
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   2 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          1024,
		MaxIdleConnsPerHost:   maxIdlePerHost,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   3 * time.Second,
		ExpectContinueTimeout: time.Second,
		WriteBufferSize:       64 << 10,
		ReadBufferSize:        64 << 10,
	}
}
