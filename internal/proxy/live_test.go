package proxy

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"baps/internal/integrity"
	"baps/internal/origin"
)

// TestCoalescedFetchSingleOrigin: N concurrent /fetch misses for one cold
// URL cost exactly one origin request; every caller gets the correct body
// and a verifying watermark, and the followers are counted as coalesced.
func TestCoalescedFetchSingleOrigin(t *testing.T) {
	o := origin.New(7)
	release := make(chan struct{})
	gate := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the leader at the origin until all followers attach
		o.Handler().ServeHTTP(w, r)
	}))
	defer gate.Close()

	s := testServer(t, nil)
	u := gate.URL + "/coalesce/doc?size=5000"
	want := o.Body("/coalesce/doc", 0, 5000)

	const n = 12
	var wg sync.WaitGroup
	type reply struct {
		body []byte
		mark string
		code int
	}
	replies := make(chan reply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
			if err != nil {
				t.Errorf("fetch: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			replies <- reply{body: body, mark: resp.Header.Get(HeaderWatermark), code: resp.StatusCode}
		}()
	}
	// All n requests must be inside the proxy (one at the gated origin,
	// the rest attached to its flight) before the origin answers.
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()
	close(replies)

	for r := range replies {
		if r.code != http.StatusOK {
			t.Fatalf("status %d", r.code)
		}
		if !bytes.Equal(r.body, want) {
			t.Fatalf("wrong body (%d bytes)", len(r.body))
		}
		mark, err := base64.StdEncoding.DecodeString(r.mark)
		if err != nil {
			t.Fatal(err)
		}
		if err := integrity.Verify(s.signer.Public(), r.body, mark); err != nil {
			t.Fatalf("watermark: %v", err)
		}
	}
	if got := o.Fetches(); got != 1 {
		t.Fatalf("origin served %d requests for %d concurrent misses, want 1", got, n)
	}
	if got := s.m.coalesced.Sum(); got != n-1 {
		t.Fatalf("coalesced = %d, want %d", got, n-1)
	}
}

// TestCoalescedLeaderFailureDoesNotPoison: the leader's origin attempt fails
// terminally (500, zero retries), but attached followers re-resolve on their
// own instead of inheriting the error.
func TestCoalescedLeaderFailureDoesNotPoison(t *testing.T) {
	var fetches atomic.Int64
	release := make(chan struct{})
	o := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fetches.Add(1) == 1 {
			<-release // hold the doomed leader until followers attach
			http.Error(w, "transient origin failure", http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Origin-Version", "0")
		w.Write([]byte("recovered body"))
	}))
	defer o.Close()

	s := testServer(t, func(c *Config) { c.OriginRetries = 0 })
	u := o.URL + "/flaky"

	const n = 8
	var wg sync.WaitGroup
	var ok, failed atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
			if err != nil {
				t.Errorf("fetch: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK && string(body) == "recovered body":
				ok.Add(1)
			default:
				failed.Add(1)
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(release)
	wg.Wait()

	// Exactly one request (the leader that ran the failing attempt) may
	// surface the 502; every follower must recover.
	if ok.Load() != n-1 || failed.Load() != 1 {
		t.Fatalf("ok=%d failed=%d, want %d/1", ok.Load(), failed.Load(), n-1)
	}
	if f := fetches.Load(); f < 2 {
		t.Fatalf("origin saw %d requests, want the failed one plus at least one retry", f)
	}
}

// TestDocTooLargeRejected: bodies past the size cap are refused with a
// distinct error (and metric), never truncated — on both the known-length
// and the chunked (unknown-length) read paths.
func TestDocTooLargeRejected(t *testing.T) {
	old := maxDocBytes
	maxDocBytes = 4096
	defer func() { maxDocBytes = old }()

	o := origin.New(3)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	chunked := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Flushing before the handler returns forces chunked encoding:
		// the proxy sees ContentLength -1 and must cap while reading.
		f := w.(http.Flusher)
		chunk := bytes.Repeat([]byte("x"), 1024)
		for i := 0; i < 8; i++ {
			w.Write(chunk)
			f.Flush()
		}
	}))
	defer chunked.Close()

	s := testServer(t, nil)
	for name, u := range map[string]string{
		"content-length": ots.URL + "/big/doc?size=8192",
		"chunked":        chunked.URL + "/big-chunked",
	} {
		resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
		if err != nil {
			t.Fatal(err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("%s: status %d, want 502", name, resp.StatusCode)
		}
		if !strings.Contains(string(msg), "exceeds max size") {
			t.Fatalf("%s: error %q lacks size-cap cause", name, msg)
		}
	}
	if got := s.m.docTooLarge.Value(); got != 2 {
		t.Fatalf("doc_too_large = %d, want 2", got)
	}
	// An in-cap document still flows.
	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(ots.URL+"/small/doc?size=1000"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-cap doc: status %d", resp.StatusCode)
	}
}

// TestDirectForwardStreamedDelivery: a holder's relay push streams through
// the proxy to the requester — the full body arrives intact with the
// holder-supplied watermark, the push is acknowledged only after the
// requester consumed the stream, and the document never enters the proxy
// cache.
func TestDirectForwardStreamedDelivery(t *testing.T) {
	s := testServer(t, func(c *Config) { c.Forward = DirectForward })

	body := bytes.Repeat([]byte("streamed direct-forward payload "), 64<<10) // 2 MiB
	mark, err := s.signer.Watermark(body)
	if err != nil {
		t.Fatal(err)
	}
	pushStatus := make(chan int, 1)
	reg := fakePeer(t, s, func(w http.ResponseWriter, r *http.Request) {
		var ps PeerSend
		if err := json.NewDecoder(r.Body).Decode(&ps); err != nil {
			t.Errorf("decode send: %v", err)
			return
		}
		req, _ := http.NewRequest(http.MethodPost, ps.RelayURL, bytes.NewReader(body))
		req.Header.Set(HeaderVersion, "0")
		req.Header.Set(HeaderWatermark, base64.StdEncoding.EncodeToString(mark))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Errorf("push: %v", err)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		pushStatus <- resp.StatusCode
		w.WriteHeader(http.StatusOK)
	})
	u := "http://origin.invalid/streamed"
	s.Index().Add(indexEntryFor(s, reg.ClientID, u, int64(len(body))))

	resp, err := http.Get(s.BaseURL() + "/fetch?url=" + urlQueryEscape(u))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(HeaderSource) != SourceRemote {
		t.Fatalf("status %d source %q", resp.StatusCode, resp.Header.Get(HeaderSource))
	}
	if resp.Header.Get("X-BAPS-Ticket") == "" {
		t.Fatal("no ticket on direct-forward delivery")
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("body corrupted in streaming relay (%d bytes, want %d)", len(got), len(body))
	}
	wm, err := base64.StdEncoding.DecodeString(resp.Header.Get(HeaderWatermark))
	if err != nil {
		t.Fatal(err)
	}
	if err := integrity.Verify(s.signer.Public(), got, wm); err != nil {
		t.Fatalf("watermark: %v", err)
	}
	select {
	case code := <-pushStatus:
		if code != http.StatusNoContent {
			t.Fatalf("holder push acknowledged with %d, want 204", code)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("holder push never acknowledged")
	}
	// Direct-forward bodies bypass the proxy cache entirely.
	if _, _, cached := s.cacheLookup(u); cached {
		t.Fatal("streamed relay body leaked into the proxy cache")
	}
	if errs := s.m.relayStreamErrors.Value(); errs != 0 {
		t.Fatalf("relay stream errors = %d", errs)
	}
}

// BenchmarkLiveFetchHot drives the full HTTP path against a warm proxy
// cache: handler, auth-less fetch, cacheLookup, serveDoc.
func BenchmarkLiveFetchHot(b *testing.B) {
	cfg := DefaultConfig()
	cfg.KeyBits = 1024
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(""); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	o := origin.New(5)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()
	u := s.BaseURL() + "/fetch?url=" + urlQueryEscape(ots.URL+"/hot/doc?size=16384")
	// Prime the cache.
	resp, err := http.Get(u)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	client := &http.Client{Transport: NewTransport(OriginIdleConnsPerHost)}
	b.SetBytes(16384)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := client.Get(u)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}

// BenchmarkLiveFetchOriginMiss drives cold misses (unique URL per request)
// through the full acquisition pipeline: origin round trip, single-pass
// digest, watermark signing, cache insert.
func BenchmarkLiveFetchOriginMiss(b *testing.B) {
	cfg := DefaultConfig()
	cfg.KeyBits = 1024
	cfg.CacheCapacity = 1 << 30
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Start(""); err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	o := origin.New(6)
	ots := httptest.NewServer(o.Handler())
	defer ots.Close()

	client := &http.Client{Transport: NewTransport(OriginIdleConnsPerHost)}
	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			u := s.BaseURL() + "/fetch?url=" + urlQueryEscape(fmt.Sprintf("%s/miss/%d?size=8192", ots.URL, n))
			resp, err := client.Get(u)
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
}
