package proxy

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/base64"
	"encoding/gob"
	"fmt"
	"math/big"
	"net/http"

	"baps/internal/anonymity"
)

// onionFromPeer launches a document from holder onto an onion-routed covert
// path terminating at the requester (OnionForward mode, §6.2's
// decentralized variant):
//
//  1. The proxy picks OnionRelays intermediate relay browsers and builds a
//     route onion over [relays..., requester] from the relay keys it issued
//     at registration. The terminal layer carries the document URL and a
//     fresh ephemeral AES key, readable only by the requester.
//  2. The holder is told the first hop's address, the route onion, and the
//     ephemeral key; it seals {url, version, watermark, body} under the
//     ephemeral key and posts it to the first hop.
//  3. Each relay peels one route layer (learning only the next address) and
//     forwards the sealed payload untouched; the requester opens it and
//     verifies the watermark end-to-end.
//
// The proxy never touches the body; the holder never learns the requester;
// the requester never learns the holder.
func (s *Server) onionFromPeer(ctx context.Context, holder peerInfo, url string, requester int) error {
	s.mu.Lock()
	req, ok := s.peers[requester]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("onion: requester %d not registered", requester)
	}
	// Candidate relays: every other registered client.
	var candidates []peerInfo
	for id, p := range s.peers {
		if id != requester && id != holder.id {
			candidates = append(candidates, p)
		}
	}
	s.mu.Unlock()

	path := make([]anonymity.AddrHop, 0, s.cfg.OnionRelays+1)
	for i := 0; i < s.cfg.OnionRelays && len(candidates) > 0; i++ {
		j, err := randInt(len(candidates))
		if err != nil {
			return err
		}
		relay := candidates[j]
		candidates = append(candidates[:j], candidates[j+1:]...)
		path = append(path, anonymity.AddrHop{Addr: relay.baseURL, Key: relay.relayKey})
	}
	path = append(path, anonymity.AddrHop{Addr: req.baseURL, Key: req.relayKey})

	ephemeral, err := anonymity.NewKey()
	if err != nil {
		return err
	}
	var final bytes.Buffer
	if err := gob.NewEncoder(&final).Encode(OnionFinal{URL: url, Key: ephemeral}); err != nil {
		return fmt.Errorf("onion: encode final: %w", err)
	}
	route, err := anonymity.BuildRoute(path, final.Bytes())
	if err != nil {
		return err
	}

	send, err := jsonBytes(PeerOnionSend{
		URL:             url,
		FirstAddr:       path[0].Addr,
		RouteB64:        base64.StdEncoding.EncodeToString(route),
		EphemeralKeyB64: base64.StdEncoding.EncodeToString(ephemeral),
	})
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, holder.baseURL+"/peer/onion-send", bytes.NewReader(send))
	if err != nil {
		return err
	}
	httpReq.Header.Set(HeaderToken, holder.token)
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := s.peerClient.Do(httpReq)
	if err != nil {
		return err
	}
	DrainClose(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("onion: holder status %s", resp.Status)
	}
	return nil
}

// randInt returns a uniform int in [0, n) from crypto/rand (relay selection
// must not be predictable to peers).
func randInt(n int) (int, error) {
	v, err := rand.Int(rand.Reader, big.NewInt(int64(n)))
	if err != nil {
		return 0, fmt.Errorf("onion: rand: %w", err)
	}
	return int(v.Int64()), nil
}
