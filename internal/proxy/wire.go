package proxy

// Wire types shared between the browsers-aware proxy and the browser agents
// (internal/browser imports these; the dependency is one-way).

import (
	"baps/internal/federation"
	"baps/internal/workqueue"
)

// Header names of the BAPS protocol.
const (
	// HeaderClient carries the requesting client's id on /fetch and the
	// authenticated client id on index updates.
	HeaderClient = "X-BAPS-Client"
	// HeaderToken authenticates proxy↔browser calls: the proxy presents
	// the holder's registration token when fetching from its peer
	// server, and browsers present their own token on index updates.
	HeaderToken = "X-BAPS-Token"
	// HeaderSource reports where /fetch satisfied the request:
	// "proxy", "remote" or "origin".
	HeaderSource = "X-BAPS-Source"
	// HeaderWatermark carries the base64 RSA-MD5 watermark (§6.1).
	HeaderWatermark = "X-BAPS-Watermark"
	// HeaderVersion carries the origin document version.
	HeaderVersion = "X-BAPS-Version"
	// HeaderNoPeer, when set to "1" on /fetch, disables remote-browser
	// resolution (used after a client-side watermark rejection).
	HeaderNoPeer = "X-BAPS-No-Peer"
	// HeaderOnion, set to "1" on a /fetch response, announces that the
	// document will arrive out-of-band over an onion-routed covert path
	// (the response body is empty; the agent waits on its peer server).
	HeaderOnion = "X-BAPS-Onion"
	// HeaderOnionRoute carries the base64 route onion on browser-to-
	// browser /peer/onion deliveries; the body is the sealed payload.
	HeaderOnionRoute = "X-BAPS-Onion-Route"
	// HeaderClusterHop, set to "1" on a sibling proxy's /fetch, marks a
	// cross-proxy relay: the receiver resolves only its local tiers (cache
	// + its own browsers), never its own cluster tier or the origin, and
	// answers 404 when it does not hold the document. One hop, no loops.
	HeaderClusterHop = "X-BAPS-Cluster-Hop"
)

// Source values for HeaderSource.
const (
	SourceProxy  = "proxy"
	SourceRemote = "remote"
	SourceOrigin = "origin"
	// SourceCluster marks a document relayed from a sibling proxy in the
	// federation (its cache or one of its browsers).
	SourceCluster = "cluster"
)

// RegisterRequest is the body of POST /register.
type RegisterRequest struct {
	// PeerURL is the base URL of the client's peer server
	// (e.g. http://127.0.0.1:41234).
	PeerURL string `json:"peer_url"`
}

// RegisterResponse is the reply to POST /register.
type RegisterResponse struct {
	ClientID  int    `json:"client_id"`
	Token     string `json:"token"`
	PublicKey string `json:"public_key"` // PEM, for watermark verification
	// RelayKey is the client's base64 AES-256 covert-path key: the proxy
	// uses it to address route-onion layers at this client, making every
	// browser a potential relay (§6.2's decentralized variant).
	RelayKey string `json:"relay_key"`
}

// IndexEntry is one browser-index item on the wire.
type IndexEntry struct {
	URL     string  `json:"url"`
	Size    int64   `json:"size"`
	Version int64   `json:"version"`
	Stamp   float64 `json:"stamp"`
}

// IndexUpdate is the body of POST /index/add and /index/remove.
type IndexUpdate struct {
	ClientID int        `json:"client_id"`
	Entry    IndexEntry `json:"entry"`
}

// IndexSync is the body of POST /index/sync: a full replacement of the
// client's directory (the §2 periodic update).
type IndexSync struct {
	ClientID int          `json:"client_id"`
	Entries  []IndexEntry `json:"entries"`
	// Gen, when non-zero, re-seats the proxy's per-client batch generation
	// after a full sync, so the sender's next /index/batch (Gen+1) is not
	// misread as a generation gap. Zero (legacy Periodic-mode senders)
	// leaves the recorded generation untouched.
	Gen uint64 `json:"gen,omitempty"`
}

// IndexDelta is one incremental directory change inside an IndexBatch: an
// upsert of (URL, Size, Version, Stamp), or — when Remove is set — the
// withdrawal of URL. The batch sender has already coalesced per-URL churn
// (last write wins), so a batch carries at most one delta per URL.
type IndexDelta struct {
	URL     string  `json:"url"`
	Remove  bool    `json:"remove,omitempty"`
	Size    int64   `json:"size,omitempty"`
	Version int64   `json:"version,omitempty"`
	Stamp   float64 `json:"stamp,omitempty"`
}

// IndexBatch is the body of POST /index/batch — the batched delta protocol
// that replaces per-change Immediate messages: a generation-numbered set of
// net directory deltas, optionally carrying a Bloom digest of the sender's
// full directory for drift detection.
//
// Generation rules at the proxy, per client: Gen == last+1 is the normal
// successor; Gen == last is an idempotent retransmit (applied again — deltas
// are upserts/removals, so replay is harmless); anything else is a gap, and
// the proxy schedules a /peer/resync pull to re-fetch the full directory
// rather than trusting its drifted view.
type IndexBatch struct {
	ClientID int          `json:"client_id"`
	Gen      uint64       `json:"gen"`
	Deltas   []IndexDelta `json:"deltas"`
	// Digest, when non-empty, is the base64 encoding of a
	// bloom.Filter.MarshalBinary over every URL in the sender's cache
	// directory *after* this batch's deltas. The proxy rebuilds the same
	// filter geometry over its believed directory for the client and
	// compares bit-for-bit; a mismatch means drift (e.g. lost batch,
	// proxy restart) and triggers the /peer/resync pull.
	Digest string `json:"digest,omitempty"`
}

// HostBatch is one agent's sub-batch inside an IndexMultiBatch. The token is
// carried per sub-batch — not per carrier — because the multiplexing agent
// host has no identity of its own at the proxy: each hosted agent
// authenticates exactly as it would on /index/batch.
type HostBatch struct {
	IndexBatch
	Token string `json:"token"`
}

// IndexMultiBatch is the body of POST /index/multibatch: an agent host's
// single carrier for every hosted agent's pending index deltas. Per-client
// generation rules are unchanged — the carrier changes the transport cost
// (one request, one connection, one JSON envelope for N agents), not the
// protocol.
type IndexMultiBatch struct {
	Batches []HostBatch `json:"batches"`
}

// MultiBatchResponse reports per-sub-batch outcomes: Rejected lists the
// client ids whose sub-batch failed authentication (unregistered or
// superseded), so the host can drop their pending state instead of
// retransmitting forever. A transport-level failure returns no response at
// all and the host keeps everything (idempotent retransmit).
type MultiBatchResponse struct {
	Accepted int   `json:"accepted"`
	Rejected []int `json:"rejected,omitempty"`
}

// DeadLetterResponse is the body of GET /queue/deadletter: the background
// queue's retained retry-exhausted jobs, newest last.
type DeadLetterResponse struct {
	DeadLetters []workqueue.DeadLetter `json:"dead_letters"`
}

// ReplayResponse is the body of POST /queue/replay.
type ReplayResponse struct {
	Replayed int `json:"replayed"`
	Skipped  int `json:"skipped"`
}

// PeerSend is the body of POST <peer>/peer/send: the proxy instructs a
// holder to push a document to an anonymous relay drop (direct-forward
// mode). The holder learns only the relay URL, never the requester.
type PeerSend struct {
	URL      string `json:"url"`
	RelayURL string `json:"relay_url"`
}

// PeerOnionSend is the body of POST <peer>/peer/onion-send: the proxy
// instructs a holder to launch a document onto an onion-routed covert path.
// The holder learns only the first hop's address; the route onion (built by
// the proxy from the relay keys it holds) hides everything downstream, and
// the document itself is sealed end-to-end under the ephemeral key, which
// only the terminal hop recovers from its route layer.
type PeerOnionSend struct {
	URL             string `json:"url"`
	FirstAddr       string `json:"first_addr"`
	RouteB64        string `json:"route_b64"`
	EphemeralKeyB64 string `json:"ephemeral_key_b64"`
}

// OnionFinal is the terminal route-layer content: it tells the requester
// which document is arriving and the ephemeral key that opens the sealed
// payload. Encoded with encoding/gob.
type OnionFinal struct {
	URL string
	Key []byte
}

// OnionDelivery is the sealed payload of an onion transfer, browser to
// browser. Encoded with encoding/gob, then Seal()ed under the ephemeral key.
type OnionDelivery struct {
	URL       string
	Version   int64
	Watermark []byte
	Body      []byte
}

// LocateResponse is the reply to GET /peer/locate?url=U — a sibling proxy's
// membership-check confirmation step. A Bloom digest can only say "maybe";
// locate turns that into a committed yes (200 + this body) or no (404),
// charging the requester one tiny round trip instead of a relayed fetch that
// would 404 at the filter's false-positive rate.
type LocateResponse struct {
	Held bool `json:"held"`
	// Via reports which local tier backs the claim: "cache" (the sibling's
	// own proxy cache) or "browser" (at least one of its indexed browsers).
	Via string `json:"via,omitempty"`
}

// InvalidateRequest is the body of POST /cache/invalidate (proxy →
// browser) and POST /peer/invalidate (proxy → federation sibling): copies
// of URL older than Version are stale and must stop being served.
type InvalidateRequest struct {
	URL     string `json:"url"`
	Version int64  `json:"version"`
	// From is the sender proxy's cluster identity (its base URL) on
	// sibling fan-out; the receiver accepts the message only from known
	// cluster members and never re-forwards it (one hop, like cluster
	// fetches). Empty on proxy→browser invalidations, which authenticate
	// with the registration token instead.
	From string `json:"from,omitempty"`
}

// BadContentReport is the body of POST /report-bad: a requester whose
// watermark verification failed reports the document; the proxy, which knows
// which holder served the relay ticket, prunes that holder's index entry.
type BadContentReport struct {
	ClientID int    `json:"client_id"`
	URL      string `json:"url"`
	Ticket   string `json:"ticket"`
}

// Stats is the JSON served at GET /stats.
type Stats struct {
	Requests       int64 `json:"requests"`
	ProxyHits      int64 `json:"proxy_hits"`
	RemoteHits     int64 `json:"remote_hits"`
	OriginFetches  int64 `json:"origin_fetches"`
	FalsePeerHits  int64 `json:"false_peer_hits"`
	TamperRejected int64 `json:"tamper_rejected"`
	RelayTimeouts  int64 `json:"relay_timeouts"`
	// Coalesced counts requests that attached to another request's
	// in-flight miss resolution (summed over outcomes).
	Coalesced int64 `json:"coalesced"`
	// DocTooLarge counts bodies rejected for exceeding MaxDocBytes.
	DocTooLarge int64 `json:"doc_too_large"`
	// Churn-resilience counters.
	OriginRetries   int64 `json:"origin_retries"`   // backoff retries against the origin
	HedgedWins      int64 `json:"hedged_wins"`      // origin beat a slow peer path past the soft deadline
	Heartbeats      int64 `json:"heartbeats"`       // POST /heartbeat received
	HeartbeatMisses int64 `json:"heartbeat_misses"` // peers tripped by the silence sweep
	BreakerTrips    int64 `json:"breaker_trips"`    // breakers opened (failures or silence)
	BreakerReadmits int64 `json:"breaker_readmits"` // half-open probes that re-admitted a peer
	Unregisters     int64 `json:"unregisters"`      // graceful departures
	// Breaker-state gauges at snapshot time.
	BreakerClosed      int `json:"breaker_closed"`
	BreakerOpen        int `json:"breaker_open"`
	BreakerHalfOpen    int `json:"breaker_half_open"`
	QuarantinedEntries int `json:"quarantined_entries"`

	// Batched index-protocol counters.
	IndexBatches          int64 `json:"index_batches"`           // POST /index/batch applied
	IndexBatchDeltas      int64 `json:"index_batch_deltas"`      // deltas those batches carried
	IndexGenGaps          int64 `json:"index_gen_gaps"`          // batch generation gaps observed
	IndexDigestMismatches int64 `json:"index_digest_mismatches"` // Bloom digests that disagreed
	IndexResyncPulls      int64 `json:"index_resync_pulls"`      // /peer/resync pulls issued

	// Federation counters (zero on an unfederated proxy). ClusterServes
	// counts sibling-originated cluster-hop requests and is deliberately
	// kept out of Requests/ProxyHits, so per-proxy hit ratios still
	// describe this proxy's own client population.
	ClusterFetches        int64 `json:"cluster_fetches"`         // docs relayed in from sibling proxies
	ClusterServes         int64 `json:"cluster_serves"`          // cluster-hop requests received
	ClusterServeHits      int64 `json:"cluster_serve_hits"`      // cluster-hop requests answered with a body
	ClusterLocateConfirms int64 `json:"cluster_locate_confirms"` // /peer/locate probes answered "held"
	ClusterLocateFPs      int64 `json:"cluster_locate_fps"`      // digest claims locate denied (Bloom FPs)
	DigestsSent           int64 `json:"digests_sent"`            // /peer/digest pushes delivered
	DigestsReceived       int64 `json:"digests_received"`        // sibling digests ingested
	// Federation is the membership snapshot (per-sibling digest age,
	// breaker state, FP counts); nil on an unfederated proxy.
	Federation *federation.Stats `json:"federation,omitempty"`

	// Background pipeline counters (zero with the producers disabled;
	// invalidation fan-out can fire regardless — any observed
	// modification enqueues it).
	Revalidations         int64 `json:"revalidations"`          // background conditional GETs completed
	RevalidationsChanged  int64 `json:"revalidations_changed"`  // revalidations that found a new version
	PrefetchPushes        int64 `json:"prefetch_pushes"`        // hot docs pushed into browser caches
	InvalidationsSent     int64 `json:"invalidations_sent"`     // invalidation jobs completed (all targets)
	InvalidationsReceived int64 `json:"invalidations_received"` // sibling invalidations ingested
	// Workqueue is the background work plane's queue snapshot.
	Workqueue *workqueue.Stats `json:"workqueue,omitempty"`

	// Disk-tier counters (zero without -datadir). ProxyHits above includes
	// DiskHits: a disk-tier hit is still a proxy-cache hit.
	DiskHits         int64   `json:"disk_hits"`           // /fetch served from the disk tier
	DiskDocs         int     `json:"disk_docs"`           // documents live on disk
	DiskBytes        int64   `json:"disk_bytes"`          // live body bytes on disk
	DiskWrites       int64   `json:"disk_writes"`         // bodies spilled
	DiskReads        int64   `json:"disk_reads"`          // bodies read back
	DiskCorrupt      int64   `json:"disk_corrupt"`        // records dropped for CRC/framing damage
	DiskEvictions    int64   `json:"disk_evictions"`      // retention-sweep evictions
	RestoredDocs     int     `json:"restored_docs"`       // docs re-seated by the last startup
	RestartToWarmSec float64 `json:"restart_to_warm_sec"` // 0 until warm

	IndexEntries int     `json:"index_entries"`
	CacheDocs    int     `json:"cache_docs"`
	CacheBytes   int64   `json:"cache_bytes"`
	Clients      int     `json:"clients"`
	UptimeSec    float64 `json:"uptime_sec"`
	// PeerHealth lists the per-peer health records (breaker state,
	// consecutive failures, EWMA latency, last-seen age).
	PeerHealth []PeerHealthStat `json:"peer_health,omitempty"`
}
