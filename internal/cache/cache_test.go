package cache

import (
	"testing"
)

func doc(key string, size int64) Doc { return Doc{Key: key, Size: size} }

func mustPut(t *testing.T, c Cache, d Doc) []Doc {
	t.Helper()
	ev, admitted := c.Put(d)
	if !admitted {
		t.Fatalf("Put(%v) not admitted", d)
	}
	return ev
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{LRU: "LRU", FIFO: "FIFO", LFU: "LFU", SIZE: "SIZE", GDSF: "GDSF", Policy(42): "Policy(42)"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("ParsePolicy(nope) succeeded, want error")
	}
}

func TestNewRejectsNegativeCapacity(t *testing.T) {
	if _, err := New(LRU, -1); err != ErrCapacity {
		t.Fatalf("New(LRU, -1) err = %v, want ErrCapacity", err)
	}
}

func TestNewRejectsUnknownPolicy(t *testing.T) {
	if _, err := New(Policy(99), 10); err == nil {
		t.Fatal("New(Policy(99)) succeeded, want error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad capacity did not panic")
		}
	}()
	MustNew(LRU, -1)
}

func TestZeroCapacityAdmitsNothing(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		c := MustNew(p, 0)
		if ev, admitted := c.Put(doc("a", 1)); admitted || len(ev) != 0 {
			t.Errorf("%v: zero-capacity cache admitted a doc", p)
		}
		if c.Len() != 0 || c.Used() != 0 {
			t.Errorf("%v: zero-capacity cache non-empty", p)
		}
	}
}

func TestBasicGetPutAllPolicies(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		t.Run(p.String(), func(t *testing.T) {
			c := MustNew(p, 100)
			if _, ok := c.Get("a"); ok {
				t.Fatal("Get on empty cache reported a hit")
			}
			mustPut(t, c, doc("a", 10))
			mustPut(t, c, doc("b", 20))
			if d, ok := c.Get("a"); !ok || d.Size != 10 {
				t.Fatalf("Get(a) = %v, %v", d, ok)
			}
			if got := c.Used(); got != 30 {
				t.Fatalf("Used() = %d, want 30", got)
			}
			if got := c.Len(); got != 2 {
				t.Fatalf("Len() = %d, want 2", got)
			}
			if got := c.Capacity(); got != 100 {
				t.Fatalf("Capacity() = %d, want 100", got)
			}
			if got := c.Policy(); got != p {
				t.Fatalf("Policy() = %v, want %v", got, p)
			}
		})
	}
}

func TestOversizedDocRejectedAllPolicies(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		c := MustNew(p, 50)
		mustPut(t, c, doc("resident", 40))
		ev, admitted := c.Put(doc("huge", 51))
		if admitted {
			t.Errorf("%v: admitted doc larger than capacity", p)
		}
		if len(ev) != 0 {
			t.Errorf("%v: oversized Put evicted %v", p, ev)
		}
		if _, ok := c.Peek("resident"); !ok {
			t.Errorf("%v: oversized Put disturbed resident doc", p)
		}
	}
}

func TestReplaceUpdatesSizeAllPolicies(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		c := MustNew(p, 100)
		mustPut(t, c, doc("a", 10))
		mustPut(t, c, Doc{Key: "a", Size: 25, Version: 2})
		if c.Len() != 1 {
			t.Errorf("%v: Len = %d after replace, want 1", p, c.Len())
		}
		if c.Used() != 25 {
			t.Errorf("%v: Used = %d after replace, want 25", p, c.Used())
		}
		if d, _ := c.Peek("a"); d.Version != 2 {
			t.Errorf("%v: version not updated: %v", p, d)
		}
	}
}

func TestReplaceGrowthEvicts(t *testing.T) {
	c := MustNew(LRU, 30)
	mustPut(t, c, doc("a", 10))
	mustPut(t, c, doc("b", 10))
	mustPut(t, c, doc("c", 10))
	// Growing c to 25 must evict a and b but never c itself.
	ev := mustPut(t, c, doc("c", 25))
	if len(ev) != 2 {
		t.Fatalf("evicted %v, want 2 docs", ev)
	}
	for _, d := range ev {
		if d.Key == "c" {
			t.Fatal("replacement evicted the replaced key itself")
		}
	}
	if c.Used() != 25 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d, want 25/1", c.Used(), c.Len())
	}
}

func TestRemove(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		c := MustNew(p, 100)
		mustPut(t, c, doc("a", 10))
		if !c.Remove("a") {
			t.Errorf("%v: Remove(a) = false", p)
		}
		if c.Remove("a") {
			t.Errorf("%v: second Remove(a) = true", p)
		}
		if c.Len() != 0 || c.Used() != 0 {
			t.Errorf("%v: cache not empty after Remove", p)
		}
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := MustNew(LRU, 30)
	mustPut(t, c, doc("a", 10))
	mustPut(t, c, doc("b", 10))
	mustPut(t, c, doc("c", 10))
	c.Get("a") // a becomes most recent; b is now LRU
	ev := mustPut(t, c, doc("d", 10))
	if len(ev) != 1 || ev[0].Key != "b" {
		t.Fatalf("evicted %v, want [b]", ev)
	}
	// Order of next victims: c, a, d.
	want := []string{"c", "a", "d"}
	got := c.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestFIFOIgnoresGets(t *testing.T) {
	c := MustNew(FIFO, 30)
	mustPut(t, c, doc("a", 10))
	mustPut(t, c, doc("b", 10))
	mustPut(t, c, doc("c", 10))
	c.Get("a") // must not protect a under FIFO
	ev := mustPut(t, c, doc("d", 10))
	if len(ev) != 1 || ev[0].Key != "a" {
		t.Fatalf("evicted %v, want [a]", ev)
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := MustNew(LFU, 30)
	mustPut(t, c, doc("a", 10))
	mustPut(t, c, doc("b", 10))
	mustPut(t, c, doc("c", 10))
	c.Get("a")
	c.Get("a")
	c.Get("c")
	// Frequencies: a=3, b=1, c=2 → b is the victim.
	ev := mustPut(t, c, doc("d", 10))
	if len(ev) != 1 || ev[0].Key != "b" {
		t.Fatalf("evicted %v, want [b]", ev)
	}
}

func TestLFUTieBreaksByRecency(t *testing.T) {
	c := MustNew(LFU, 20)
	mustPut(t, c, doc("old", 10))
	mustPut(t, c, doc("new", 10))
	// Both freq=1; "old" has the older reference and must go first.
	ev := mustPut(t, c, doc("x", 10))
	if len(ev) != 1 || ev[0].Key != "old" {
		t.Fatalf("evicted %v, want [old]", ev)
	}
}

func TestSIZEEvictsLargestFirst(t *testing.T) {
	c := MustNew(SIZE, 100)
	mustPut(t, c, doc("small", 10))
	mustPut(t, c, doc("large", 60))
	mustPut(t, c, doc("mid", 30))
	ev := mustPut(t, c, doc("x", 20)) // over by 20 → evict "large"
	if len(ev) != 1 || ev[0].Key != "large" {
		t.Fatalf("evicted %v, want [large]", ev)
	}
}

func TestGDSFPrefersSmallFrequentDocs(t *testing.T) {
	c := MustNew(GDSF, 100)
	mustPut(t, c, doc("bigRare", 60))
	mustPut(t, c, doc("smallHot", 10))
	for i := 0; i < 5; i++ {
		c.Get("smallHot")
	}
	ev := mustPut(t, c, doc("x", 40))
	if len(ev) != 1 || ev[0].Key != "bigRare" {
		t.Fatalf("evicted %v, want [bigRare]", ev)
	}
}

func TestGDSFAgingAdmitsNewDocsEventually(t *testing.T) {
	// After many evictions the aging term L rises, so a fresh document can
	// outrank an old frequent one — the classic GDSF property.
	c := MustNew(GDSF, 100)
	mustPut(t, c, doc("ancient", 50))
	for i := 0; i < 50; i++ {
		c.Get("ancient")
	}
	// Churn through many one-shot docs to raise L.
	for i := 0; i < 2000; i++ {
		k := string(rune('a'+i%26)) + string(rune('0'+i%10)) + "churn"
		c.Put(Doc{Key: k, Size: 45})
	}
	if _, ok := c.Peek("ancient"); ok {
		t.Fatal("GDSF aging never displaced the ancient document")
	}
}

func TestOnEvictCallback(t *testing.T) {
	var evicted []string
	c := MustNew(LRU, 20, Options{OnEvict: func(d Doc) { evicted = append(evicted, d.Key) }})
	mustPut(t, c, doc("a", 10))
	mustPut(t, c, doc("b", 10))
	mustPut(t, c, doc("c", 10)) // evicts a
	c.Remove("b")               // must NOT fire the callback
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("OnEvict saw %v, want [a]", evicted)
	}
}

func TestKeysEvictionOrderHeap(t *testing.T) {
	c := MustNew(LFU, 100)
	mustPut(t, c, doc("a", 10))
	mustPut(t, c, doc("b", 10))
	mustPut(t, c, doc("c", 10))
	c.Get("b")
	c.Get("b")
	c.Get("c")
	got := c.Keys()
	want := []string{"a", "c", "b"} // freq 1, 2, 3
	if len(got) != len(want) {
		t.Fatalf("Keys() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
	// Keys must not disturb the live heap: evict and check victim.
	ev := mustPut(t, c, Doc{Key: "big", Size: 90})
	if len(ev) == 0 || ev[0].Key != "a" {
		t.Fatalf("after Keys(), eviction order broken: %v", ev)
	}
}

func TestGetPeekMissReturnsZeroDoc(t *testing.T) {
	c := MustNew(LRU, 10)
	if d, ok := c.Peek("x"); ok || d.Key != "" {
		t.Fatalf("Peek miss returned %v, %v", d, ok)
	}
}
