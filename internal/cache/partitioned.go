package cache

import "fmt"

// Classifier assigns a document to a partition in [0, n). The paper's §1
// describes the "browser cache switch" technique — multiple browser caches
// in one machine, switched between contents or time periods, so "different
// caches can be used for different contents". SizeClassifier below is the
// natural content-neutral instance; callers can provide their own (e.g. by
// content type).
type Classifier func(Doc) int

// SizeClassifier partitions documents by size: thresholds is an ascending
// list of size bounds; a document of size s lands in the first partition
// whose threshold exceeds s, or in the last partition. A document stream
// with heavy-tailed sizes then cannot let a few large bodies evict the
// many small hot ones.
func SizeClassifier(thresholds ...int64) Classifier {
	return func(d Doc) int {
		for i, t := range thresholds {
			if d.Size < t {
				return i
			}
		}
		return len(thresholds)
	}
}

// Partitioned composes several caches behind one Cache interface, directing
// each document to a partition chosen by the classifier — the "browser
// cache switch" of §1. Capacity is the sum of partition capacities; each
// partition runs its own replacement policy instance, so activity in one
// partition never evicts another's documents.
type Partitioned struct {
	parts    []Cache
	classify Classifier
	capacity int64
	// location remembers which partition holds each key, so lookups stay
	// O(1) even when the classifier depends on Size (unknown at Get
	// time).
	location map[string]int
}

// NewPartitioned builds a partitioned cache: capacities lists each
// partition's byte capacity, classify routes insertions (its result is
// clamped into range). The Options eviction callback observes every
// partition's capacity evictions.
func NewPartitioned(policy Policy, capacities []int64, classify Classifier, opts ...Options) (*Partitioned, error) {
	if len(capacities) == 0 {
		return nil, fmt.Errorf("cache: partitioned cache needs at least one partition")
	}
	if classify == nil {
		return nil, fmt.Errorf("cache: nil classifier")
	}
	p := &Partitioned{classify: classify, location: make(map[string]int)}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	for i, capBytes := range capacities {
		user := o.OnEvict
		part, err := New(policy, capBytes, Options{OnEvict: func(d Doc) {
			delete(p.location, d.Key)
			if user != nil {
				user(d)
			}
		}})
		if err != nil {
			return nil, fmt.Errorf("cache: partition %d: %w", i, err)
		}
		p.parts = append(p.parts, part)
		p.capacity += capBytes
	}
	return p, nil
}

func (p *Partitioned) clamp(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(p.parts) {
		return len(p.parts) - 1
	}
	return i
}

// Get implements Cache.
func (p *Partitioned) Get(key string) (Doc, bool) {
	i, ok := p.location[key]
	if !ok {
		return Doc{}, false
	}
	return p.parts[i].Get(key)
}

// Peek implements Cache.
func (p *Partitioned) Peek(key string) (Doc, bool) {
	i, ok := p.location[key]
	if !ok {
		return Doc{}, false
	}
	return p.parts[i].Peek(key)
}

// Put implements Cache. A document whose classification changed (e.g. a new
// version moved size classes) migrates partitions. A rejected insertion
// (document larger than its target partition) leaves the cache unchanged,
// including any previously resident version of the key.
func (p *Partitioned) Put(doc Doc) ([]Doc, bool) {
	target := p.clamp(p.classify(doc))
	cur, had := p.location[doc.Key]
	evicted, admitted := p.parts[target].Put(doc)
	if !admitted {
		return evicted, false
	}
	if had && cur != target {
		p.parts[cur].Remove(doc.Key)
	}
	p.location[doc.Key] = target
	return evicted, admitted
}

// Remove implements Cache.
func (p *Partitioned) Remove(key string) bool {
	i, ok := p.location[key]
	if !ok {
		return false
	}
	delete(p.location, key)
	return p.parts[i].Remove(key)
}

// Len implements Cache.
func (p *Partitioned) Len() int { return len(p.location) }

// Used implements Cache.
func (p *Partitioned) Used() int64 {
	var u int64
	for _, part := range p.parts {
		u += part.Used()
	}
	return u
}

// Capacity implements Cache.
func (p *Partitioned) Capacity() int64 { return p.capacity }

// Policy implements Cache (all partitions share one policy).
func (p *Partitioned) Policy() Policy { return p.parts[0].Policy() }

// Keys implements Cache: partition order, eviction order within each.
func (p *Partitioned) Keys() []string {
	var keys []string
	for _, part := range p.parts {
		keys = append(keys, part.Keys()...)
	}
	return keys
}

// Partition exposes one underlying partition (diagnostics and tests).
func (p *Partitioned) Partition(i int) Cache { return p.parts[p.clamp(i)] }

// NumPartitions reports the partition count.
func (p *Partitioned) NumPartitions() int { return len(p.parts) }
