package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTwoTier(t *testing.T, p Policy, capacity, mem int64, opts ...Options) *TwoTier {
	t.Helper()
	tt, err := NewTwoTier(p, capacity, mem, opts...)
	if err != nil {
		t.Fatalf("NewTwoTier: %v", err)
	}
	return tt
}

func TestTwoTierRejectsBadMemCapacity(t *testing.T) {
	if _, err := NewTwoTier(LRU, 100, -1); err != ErrCapacity {
		t.Errorf("mem=-1: err = %v, want ErrCapacity", err)
	}
	if _, err := NewTwoTier(LRU, 100, 101); err != ErrCapacity {
		t.Errorf("mem>capacity: err = %v, want ErrCapacity", err)
	}
}

func TestTwoTierFreshPutLandsInMemory(t *testing.T) {
	tt := mustTwoTier(t, LRU, 100, 20)
	tt.Put(doc("a", 10))
	if !tt.InMemory("a") {
		t.Fatal("fresh doc not in memory tier")
	}
	_, tier, ok := tt.GetTier("a")
	if !ok || tier != TierMemory {
		t.Fatalf("GetTier(a) = %v, %v; want memory hit", tier, ok)
	}
}

func TestTwoTierDemotionToDisk(t *testing.T) {
	tt := mustTwoTier(t, LRU, 100, 20)
	tt.Put(doc("a", 10))
	tt.Put(doc("b", 10))
	tt.Put(doc("c", 10)) // memory holds 20 bytes max → "a" demoted
	if tt.InMemory("a") {
		t.Fatal("a still in memory after demotion pressure")
	}
	if _, ok := tt.Peek("a"); !ok {
		t.Fatal("a evicted entirely; demotion must keep it resident")
	}
	_, tier, ok := tt.GetTier("a")
	if !ok || tier != TierDisk {
		t.Fatalf("GetTier(a) = %v, %v; want disk hit", tier, ok)
	}
	// The disk hit promotes a back to memory.
	if !tt.InMemory("a") {
		t.Fatal("disk hit did not promote a to memory")
	}
}

func TestTwoTierEvictionClearsMemory(t *testing.T) {
	var evicted []string
	tt := mustTwoTier(t, LRU, 20, 20, Options{OnEvict: func(d Doc) { evicted = append(evicted, d.Key) }})
	tt.Put(doc("a", 10))
	tt.Put(doc("b", 10))
	tt.Put(doc("c", 10)) // overall eviction of a
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("OnEvict saw %v, want [a]", evicted)
	}
	if tt.InMemory("a") {
		t.Fatal("evicted doc still counted in memory tier")
	}
	if tt.MemoryUsed() > tt.MemoryCapacity() {
		t.Fatalf("memory overflow: %d > %d", tt.MemoryUsed(), tt.MemoryCapacity())
	}
}

func TestTwoTierRemoveClearsBothTiers(t *testing.T) {
	tt := mustTwoTier(t, LRU, 100, 50)
	tt.Put(doc("a", 10))
	if !tt.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if tt.InMemory("a") {
		t.Fatal("removed doc still in memory tier")
	}
	if _, _, ok := tt.GetTier("a"); ok {
		t.Fatal("removed doc still resident")
	}
}

func TestTwoTierDocLargerThanMemoryIsDiskOnly(t *testing.T) {
	tt := mustTwoTier(t, LRU, 100, 10)
	tt.Put(doc("big", 50))
	if tt.InMemory("big") {
		t.Fatal("doc larger than memory tier admitted to memory")
	}
	_, tier, ok := tt.GetTier("big")
	if !ok || tier != TierDisk {
		t.Fatalf("GetTier(big) = %v, %v; want disk hit", tier, ok)
	}
}

func TestTwoTierImplementsCache(t *testing.T) {
	var _ Cache = (*TwoTier)(nil)
	tt := mustTwoTier(t, LRU, 30, 10)
	tt.Put(doc("a", 10))
	tt.Put(doc("b", 10))
	tt.Put(doc("c", 10))
	if tt.Len() != 3 || tt.Used() != 30 || tt.Capacity() != 30 || tt.Policy() != LRU {
		t.Fatalf("accessors wrong: Len=%d Used=%d Cap=%d Pol=%v", tt.Len(), tt.Used(), tt.Capacity(), tt.Policy())
	}
	if got := len(tt.Keys()); got != 3 {
		t.Fatalf("Keys() len = %d, want 3", got)
	}
}

// TestQuickTwoTierInvariants: memory residency is always a subset of overall
// residency, and memory bytes never exceed the memory capacity.
func TestQuickTwoTierInvariants(t *testing.T) {
	type script struct {
		capacity, mem int64
		ops           []scriptOp
	}
	gen := func(r *rand.Rand) script {
		cp := int64(r.Intn(400) + 50)
		s := script{capacity: cp, mem: cp / int64(r.Intn(9)+2)}
		for i := 0; i < 300; i++ {
			s.ops = append(s.ops, scriptOp{kind: r.Intn(3), key: fmt.Sprintf("k%d", r.Intn(30)), size: int64(r.Intn(60) + 1)})
		}
		return s
	}
	f := func(seed int64) bool {
		s := gen(rand.New(rand.NewSource(seed)))
		tt, err := NewTwoTier(LRU, s.capacity, s.mem)
		if err != nil {
			t.Fatalf("NewTwoTier: %v", err)
		}
		for i, op := range s.ops {
			switch op.kind {
			case 0:
				tt.Put(Doc{Key: op.key, Size: op.size})
			case 1:
				tt.GetTier(op.key)
			case 2:
				tt.Remove(op.key)
			}
			if tt.MemoryUsed() > tt.MemoryCapacity() {
				t.Errorf("op %d: memory %d > cap %d", i, tt.MemoryUsed(), tt.MemoryCapacity())
				return false
			}
			if tt.Used() > tt.Capacity() {
				t.Errorf("op %d: used %d > cap %d", i, tt.Used(), tt.Capacity())
				return false
			}
			for _, k := range tt.mem.Keys() {
				if _, ok := tt.Peek(k); !ok {
					t.Errorf("op %d: memory-resident %q not overall-resident", i, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
