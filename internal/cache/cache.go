// Package cache provides the replacement-policy cache substrate used by both
// the trace-driven simulator and the live browsers-aware proxy system.
//
// The paper ("On Reliable and Scalable Peer-to-Peer Web Document Sharing",
// IPDPS 2002, §3.2) simulates every browser cache and the proxy cache with an
// LRU replacement policy; this package implements LRU plus FIFO, LFU, SIZE and
// GDSF variants so the design choice can be ablated, and a two-tier
// memory/disk wrapper used by the §4.2 memory-byte-hit-ratio study.
//
// Caches are byte-capacity bounded: a Doc occupies Doc.Size bytes and the sum
// of resident sizes never exceeds Capacity. All caches in this package are
// safe for use by a single goroutine; wrap with a mutex (as internal/browser
// and internal/proxy do) for concurrent use. This keeps the simulator's inner
// loop free of synchronization cost.
package cache

import (
	"errors"
	"fmt"
)

// Doc describes one cached web document. Key is the canonical document
// identifier (normally the full URL; the live system also carries an MD5
// signature in the index). Size is the body size in bytes and participates in
// capacity accounting. Version identifies the document generation: the
// simulator bumps it when the origin modifies a document, so a stale cached
// copy can be recognized ("if a user request hits on a document whose size
// has been changed, we count it as a cache miss", §3.2).
type Doc struct {
	Key     string
	Size    int64
	Version int64
}

// Policy selects a replacement policy.
type Policy int

const (
	// LRU evicts the least recently used document (the paper's policy).
	LRU Policy = iota
	// FIFO evicts in insertion order; a Get does not promote.
	FIFO
	// LFU evicts the least frequently used document, ties broken by recency.
	LFU
	// SIZE evicts the largest document first.
	SIZE
	// GDSF is GreedyDual-Size-Frequency: priority = L + freq/size, where L
	// is an aging term set to the priority of the last eviction.
	GDSF
)

// String returns the conventional name of the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case LFU:
		return "LFU"
	case SIZE:
		return "SIZE"
	case GDSF:
		return "GDSF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name (case-sensitive, as produced by
// Policy.String) back to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "LRU":
		return LRU, nil
	case "FIFO":
		return FIFO, nil
	case "LFU":
		return LFU, nil
	case "SIZE":
		return SIZE, nil
	case "GDSF":
		return GDSF, nil
	}
	return 0, fmt.Errorf("cache: unknown policy %q", s)
}

// Cache is a byte-bounded document cache.
//
// Implementations returned by New report evictions through Put's return value
// and, additionally, through the optional eviction callback (see
// Options.OnEvict), which the browsers-aware index uses to generate
// invalidation messages.
type Cache interface {
	// Get looks up a document and applies the policy's reference update
	// (e.g. LRU promotion, LFU frequency increment). ok is false when the
	// key is not resident.
	Get(key string) (doc Doc, ok bool)

	// Peek looks up a document without updating replacement state.
	Peek(key string) (doc Doc, ok bool)

	// Put inserts or replaces a document, evicting as needed. It returns
	// the evicted documents (never including doc itself) and whether doc
	// was admitted. A document larger than the cache capacity is not
	// admitted and nothing is evicted for it.
	Put(doc Doc) (evicted []Doc, admitted bool)

	// Remove deletes a document if resident, reporting whether it was.
	// Removal does not invoke the eviction callback: it represents an
	// explicit invalidation, not a capacity eviction.
	Remove(key string) bool

	// Len reports the number of resident documents.
	Len() int

	// Used reports the resident bytes.
	Used() int64

	// Capacity reports the configured capacity in bytes.
	Capacity() int64

	// Policy reports the replacement policy.
	Policy() Policy

	// Keys returns the resident keys in eviction order (the first key is
	// the next eviction victim). It allocates; intended for tests, index
	// re-synchronization and diagnostics, not the hot path.
	Keys() []string
}

// EvictFunc observes capacity evictions. It must not call back into the
// cache.
type EvictFunc func(Doc)

// Options configures a cache constructed by New.
type Options struct {
	// OnEvict, if non-nil, is invoked for every document evicted to make
	// room (not for Remove or for replaced versions of the same key).
	OnEvict EvictFunc

	// OnDemote, if non-nil, observes memory-tier demotions of a TwoTier
	// cache: the document leaves the memory portion but stays resident
	// overall. The live proxy uses it to spill bodies to the disk store.
	// Like OnEvict, it must not call back into the cache. Ignored by
	// single-tier caches built with New.
	OnDemote EvictFunc
}

// ErrCapacity is returned by New for a negative capacity.
var ErrCapacity = errors.New("cache: capacity must be >= 0")

// New builds a cache with the given policy and capacity in bytes. A zero
// capacity yields a cache that admits nothing, which models the paper's
// organizations that lack a browser or proxy cache.
func New(policy Policy, capacity int64, opts ...Options) (Cache, error) {
	if capacity < 0 {
		return nil, ErrCapacity
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	switch policy {
	case LRU:
		return newListCache(capacity, true, o), nil
	case FIFO:
		return newListCache(capacity, false, o), nil
	case LFU, SIZE, GDSF:
		return newHeapCache(policy, capacity, o), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %v", policy)
	}
}

// MustNew is New, panicking on error. It is convenient for constructing
// caches from validated configuration.
func MustNew(policy Policy, capacity int64, opts ...Options) Cache {
	c, err := New(policy, capacity, opts...)
	if err != nil {
		panic(err)
	}
	return c
}
