package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"baps/internal/intern"
)

// TestIDCacheEquivalence drives the string-keyed and ID-keyed caches with an
// identical random operation stream for every policy and asserts identical
// observable behavior: hits, admissions, eviction sets and order, residency,
// byte accounting, and eviction-callback streams. This is the substrate-level
// guarantee behind the simulator's bit-identical golden results.
func TestIDCacheEquivalence(t *testing.T) {
	const (
		numDocs  = 96
		capacity = 40 << 10
		ops      = 6000
	)
	for _, pol := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		t.Run(pol.String(), func(t *testing.T) {
			var sEvicts, idEvicts []string
			sc := MustNew(pol, capacity, Options{OnEvict: func(d Doc) {
				sEvicts = append(sEvicts, fmt.Sprintf("%s/%d/%d", d.Key, d.Size, d.Version))
			}})
			syms := intern.NewTable(numDocs)
			ic := MustNewID(pol, capacity, IDOptions{OnEvict: func(d IDDoc) {
				idEvicts = append(idEvicts, fmt.Sprintf("%s/%d/%d", syms.String(d.ID), d.Size, d.Version))
			}})
			keys := make([]string, numDocs)
			sizes := make([]int64, numDocs)
			rng := rand.New(rand.NewSource(7))
			for i := range keys {
				keys[i] = fmt.Sprintf("http://eq/doc%d", i)
				sizes[i] = 512 + rng.Int63n(4096)
				syms.Intern(keys[i])
			}
			for op := 0; op < ops; op++ {
				k := rng.Intn(numDocs)
				id := intern.ID(k)
				switch rng.Intn(10) {
				case 0: // Remove
					if got, want := ic.Remove(id), sc.Remove(keys[k]); got != want {
						t.Fatalf("op %d: Remove(%s) = %v, string cache says %v", op, keys[k], got, want)
					}
				case 1, 2, 3: // Get
					sd, sok := sc.Get(keys[k])
					idd, iok := ic.Get(id)
					if sok != iok || (sok && (sd.Size != idd.Size || sd.Version != idd.Version)) {
						t.Fatalf("op %d: Get(%s) diverged: string (%+v,%v) id (%+v,%v)", op, keys[k], sd, sok, idd, iok)
					}
				case 4: // Peek
					sd, sok := sc.Peek(keys[k])
					idd, iok := ic.Peek(id)
					if sok != iok || (sok && sd.Size != idd.Size) {
						t.Fatalf("op %d: Peek(%s) diverged", op, keys[k])
					}
				default: // Put, occasionally as a new version with a new size
					ver := int64(0)
					if rng.Intn(20) == 0 {
						ver = rng.Int63n(4)
						sizes[k] = 512 + rng.Int63n(4096)
					}
					sEv, sAdm := sc.Put(Doc{Key: keys[k], Size: sizes[k], Version: ver})
					iEv, iAdm := ic.Put(IDDoc{ID: id, Size: sizes[k], Version: ver})
					if sAdm != iAdm {
						t.Fatalf("op %d: Put(%s) admitted %v vs %v", op, keys[k], sAdm, iAdm)
					}
					if len(sEv) != len(iEv) {
						t.Fatalf("op %d: Put(%s) evicted %d vs %d docs", op, keys[k], len(sEv), len(iEv))
					}
					for i := range sEv {
						if sEv[i].Key != syms.String(iEv[i].ID) || sEv[i].Size != iEv[i].Size {
							t.Fatalf("op %d: eviction %d diverged: %q/%d vs %q/%d",
								op, i, sEv[i].Key, sEv[i].Size, syms.String(iEv[i].ID), iEv[i].Size)
						}
					}
				}
				if sc.Len() != ic.Len() || sc.Used() != ic.Used() {
					t.Fatalf("op %d: accounting diverged: len %d/%d used %d/%d",
						op, sc.Len(), ic.Len(), sc.Used(), ic.Used())
				}
			}
			sKeys, iIDs := sc.Keys(), ic.IDs()
			if len(sKeys) != len(iIDs) {
				t.Fatalf("final eviction order length: %d vs %d", len(sKeys), len(iIDs))
			}
			for i := range sKeys {
				if sKeys[i] != syms.String(iIDs[i]) {
					t.Fatalf("eviction order diverged at %d: %q vs %q", i, sKeys[i], syms.String(iIDs[i]))
				}
			}
			if len(sEvicts) != len(idEvicts) {
				t.Fatalf("callback streams: %d vs %d evictions", len(sEvicts), len(idEvicts))
			}
			for i := range sEvicts {
				if sEvicts[i] != idEvicts[i] {
					t.Fatalf("callback %d diverged: %s vs %s", i, sEvicts[i], idEvicts[i])
				}
			}
		})
	}
}

// TestIDTwoTierEquivalence mirrors the two-tier wrapper against its
// string-keyed counterpart, including tier classification.
func TestIDTwoTierEquivalence(t *testing.T) {
	const (
		numDocs = 64
		cap     = 48 << 10
		memCap  = 8 << 10
		ops     = 4000
	)
	st, err := NewTwoTier(LRU, cap, memCap)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewIDTwoTier(LRU, cap, memCap)
	if err != nil {
		t.Fatal(err)
	}
	syms := intern.NewTable(numDocs)
	keys := make([]string, numDocs)
	rng := rand.New(rand.NewSource(11))
	sizes := make([]int64, numDocs)
	for i := range keys {
		keys[i] = fmt.Sprintf("http://tt/doc%d", i)
		sizes[i] = 512 + rng.Int63n(2048)
		syms.Intern(keys[i])
	}
	for op := 0; op < ops; op++ {
		k := rng.Intn(numDocs)
		id := intern.ID(k)
		if rng.Intn(3) == 0 {
			_, adm1 := st.Put(Doc{Key: keys[k], Size: sizes[k]})
			_, adm2 := it.Put(IDDoc{ID: id, Size: sizes[k]})
			if adm1 != adm2 {
				t.Fatalf("op %d: Put admitted %v vs %v", op, adm1, adm2)
			}
		} else {
			_, sTier, sok := st.GetTier(keys[k])
			_, iTier, iok := it.GetTier(id)
			if sok != iok || (sok && sTier != iTier) {
				t.Fatalf("op %d: GetTier(%s) = (%v,%v) vs (%v,%v)", op, keys[k], sTier, sok, iTier, iok)
			}
		}
		if st.MemoryUsed() != it.MemoryUsed() || st.Used() != it.Used() {
			t.Fatalf("op %d: usage diverged: mem %d/%d total %d/%d",
				op, st.MemoryUsed(), it.MemoryUsed(), st.Used(), it.Used())
		}
	}
}

// TestIDCacheReset verifies Reset yields a cache indistinguishable from a
// fresh one while retaining backing storage.
func TestIDCacheReset(t *testing.T) {
	for _, pol := range []Policy{LRU, FIFO, LFU, SIZE, GDSF} {
		t.Run(pol.String(), func(t *testing.T) {
			fill := func(c IDCache) {
				for i := 0; i < 200; i++ {
					c.Put(IDDoc{ID: intern.ID(i % 64), Size: int64(600 + i)})
					c.Get(intern.ID(i % 7))
				}
			}
			reused := MustNewID(pol, 16<<10)
			fill(reused)
			reused.Reset(16 << 10)
			if reused.Len() != 0 || reused.Used() != 0 {
				t.Fatalf("after Reset: Len=%d Used=%d", reused.Len(), reused.Used())
			}
			fresh := MustNewID(pol, 16<<10)
			fill(reused)
			fill(fresh)
			r, f := reused.IDs(), fresh.IDs()
			if len(r) != len(f) {
				t.Fatalf("reused has %d docs, fresh %d", len(r), len(f))
			}
			for i := range r {
				if r[i] != f[i] {
					t.Fatalf("eviction order diverged at %d: %d vs %d", i, r[i], f[i])
				}
			}
			if reused.Used() != fresh.Used() {
				t.Fatalf("used %d vs %d", reused.Used(), fresh.Used())
			}
		})
	}
}
