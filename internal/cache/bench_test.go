package cache

import (
	"testing"

	"baps/internal/intern"
)

// Hot-path micro-benchmarks of the cache substrate the simulator's inner
// loop runs on. Kept name-stable so checked-in BENCH_*.json baselines remain
// comparable across representation changes: the same names measured the
// string-keyed map caches before the interned-ID refactor.

const benchDocs = 4096

func BenchmarkCacheLRUGet(b *testing.B) {
	c := MustNewID(LRU, 1<<30)
	for i := 0; i < benchDocs; i++ {
		c.Put(IDDoc{ID: intern.ID(i), Size: 8192})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(intern.ID(i % benchDocs))
	}
}

func BenchmarkCacheLRUPutEvict(b *testing.B) {
	c := MustNewID(LRU, 1<<20) // steady eviction
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(IDDoc{ID: intern.ID(i % benchDocs), Size: 8192})
	}
}

func BenchmarkCacheGDSFPutEvict(b *testing.B) {
	c := MustNewID(GDSF, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(IDDoc{ID: intern.ID(i % benchDocs), Size: 8192})
	}
}

func BenchmarkCacheTwoTierGetTier(b *testing.B) {
	tt, err := NewIDTwoTier(LRU, 1<<30, 1<<26)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchDocs; i++ {
		tt.Put(IDDoc{ID: intern.ID(i), Size: 8192})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tt.GetTier(intern.ID(i % benchDocs))
	}
}
