package cache

import (
	"fmt"

	"baps/internal/intern"
)

// IDDoc is the interned-ID counterpart of Doc: the document is identified by
// a dense intern.ID instead of its URL string. The simulator's hot path uses
// IDDoc end-to-end so cache probes never hash a URL.
type IDDoc struct {
	ID      intern.ID
	Size    int64
	Version int64
}

// IDEvictFunc observes capacity evictions from an ID-keyed cache. It must
// not call back into the cache.
type IDEvictFunc func(IDDoc)

// IDOptions configures a cache constructed by NewID.
type IDOptions struct {
	// OnEvict, if non-nil, is invoked for every document evicted to make
	// room (not for Remove or for replaced versions of the same ID).
	OnEvict IDEvictFunc

	// Sparse selects a hash-based docID→slot table instead of the dense
	// per-instance slice, trading a few ns per probe for memory that
	// scales with resident documents rather than the document-ID space.
	// Replacement behavior is identical. Meant for deployments with very
	// many cache instances (one per simulated browser at 10^6-client
	// scale); LRU/FIFO only — heap-backed policies ignore it (their
	// footprint is already resident-bounded except for the shared slot
	// slice, and they are not used at that scale).
	Sparse bool
}

// IDCache is the interned-ID counterpart of Cache. Semantics match Cache
// method-for-method (same policies, same eviction order, same replacement
// behavior), with two deviations made for the allocation-free hot path:
//
//   - Put returns an eviction slice that is reused by the next Put on the
//     same cache; callers must consume (or copy) it before calling Put again.
//   - Reset empties the cache in place, retaining allocated capacity, so
//     sweep workers can replay many configurations without re-growing the
//     backing arrays.
type IDCache interface {
	// Get looks up a document and applies the policy's reference update.
	Get(id intern.ID) (doc IDDoc, ok bool)

	// Peek looks up a document without updating replacement state.
	Peek(id intern.ID) (doc IDDoc, ok bool)

	// Put inserts or replaces a document, evicting as needed. The returned
	// slice is valid only until the next Put call.
	Put(doc IDDoc) (evicted []IDDoc, admitted bool)

	// Remove deletes a document if resident, reporting whether it was.
	// Removal does not invoke the eviction callback.
	Remove(id intern.ID) bool

	// Len reports the number of resident documents.
	Len() int

	// Used reports the resident bytes.
	Used() int64

	// Capacity reports the configured capacity in bytes.
	Capacity() int64

	// Policy reports the replacement policy.
	Policy() Policy

	// IDs returns the resident document IDs in eviction order (the first
	// is the next victim). It allocates; for tests and diagnostics.
	IDs() []intern.ID

	// Reset empties the cache and sets a new capacity, keeping allocated
	// backing storage for reuse.
	Reset(capacity int64)
}

// NewID builds an ID-keyed cache with the given policy and capacity in
// bytes. Zero capacity admits nothing, as in New.
func NewID(policy Policy, capacity int64, opts ...IDOptions) (IDCache, error) {
	if capacity < 0 {
		return nil, ErrCapacity
	}
	var o IDOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	switch policy {
	case LRU:
		return newIDListCache(capacity, true, o), nil
	case FIFO:
		return newIDListCache(capacity, false, o), nil
	case LFU, SIZE, GDSF:
		return newIDHeapCache(policy, capacity, o), nil
	default:
		return nil, fmt.Errorf("cache: unknown policy %v", policy)
	}
}

// MustNewID is NewID, panicking on error.
func MustNewID(policy Policy, capacity int64, opts ...IDOptions) IDCache {
	c, err := NewID(policy, capacity, opts...)
	if err != nil {
		panic(err)
	}
	return c
}
