package cache

import "baps/internal/intern"

// memTier is the surface IDTwoTier needs from its memory portion.
// idListCache satisfies it directly; idVecCache is the compact variant.
type memTier interface {
	Put(IDDoc) ([]IDDoc, bool)
	Peek(intern.ID) (IDDoc, bool)
	Remove(intern.ID) bool
	Reset(capacity int64)
	Capacity() int64
	Used() int64
}

// idVecCache is an LRU over a bare IDDoc slice, for memory tiers that hold
// only a handful of documents. A sparse browser's memory portion is a few
// KB — one or two resident docs — so the list cache's fixed furniture
// (sentinel nodes, slot table, free list, eviction buffer: ~0.5 KB) costs
// more than the documents it tracks; across 10^6 browsers that furniture
// alone is half a GiB. Linear scans are cheaper than a hash probe at these
// lengths. Eviction order matches idListCache(promote=true) exactly:
// docs[0] is the victim, the back is most recently referenced.
type idVecCache struct {
	capacity int64
	used     int64
	docs     []IDDoc
}

func (c *idVecCache) find(id intern.ID) int {
	for i := range c.docs {
		if c.docs[i].ID == id {
			return i
		}
	}
	return -1
}

// Put admits or refreshes doc, promoting it to most-recent and silently
// evicting LRU victims; the signature matches idListCache but demoted
// documents are not reported (the memory tier never needs them).
func (c *idVecCache) Put(doc IDDoc) ([]IDDoc, bool) {
	if doc.Size > c.capacity {
		return nil, false
	}
	if i := c.find(doc.ID); i >= 0 {
		c.used += doc.Size - c.docs[i].Size
		copy(c.docs[i:], c.docs[i+1:])
		c.docs[len(c.docs)-1] = doc
	} else {
		c.docs = append(c.docs, doc)
		c.used += doc.Size
	}
	for i := 0; c.used > c.capacity && i < len(c.docs); {
		if c.docs[i].ID == doc.ID {
			i++ // never evict the document just referenced
			continue
		}
		c.used -= c.docs[i].Size
		copy(c.docs[i:], c.docs[i+1:])
		c.docs = c.docs[:len(c.docs)-1]
	}
	return nil, true
}

func (c *idVecCache) Peek(id intern.ID) (IDDoc, bool) {
	if i := c.find(id); i >= 0 {
		return c.docs[i], true
	}
	return IDDoc{}, false
}

func (c *idVecCache) Remove(id intern.ID) bool {
	i := c.find(id)
	if i < 0 {
		return false
	}
	c.used -= c.docs[i].Size
	copy(c.docs[i:], c.docs[i+1:])
	c.docs = c.docs[:len(c.docs)-1]
	return true
}

func (c *idVecCache) Reset(capacity int64) {
	c.docs = c.docs[:0]
	c.used = 0
	c.capacity = capacity
}

func (c *idVecCache) Capacity() int64 { return c.capacity }
func (c *idVecCache) Used() int64     { return c.used }
