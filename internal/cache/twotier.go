package cache

// Tier identifies where within a two-tier cache a hit was served from.
type Tier int

const (
	// TierMemory means the document was resident in the memory portion.
	TierMemory Tier = iota
	// TierDisk means the document was resident but only on disk.
	TierDisk
)

// String names the tier.
func (t Tier) String() string {
	if t == TierMemory {
		return "memory"
	}
	return "disk"
}

// TwoTier models the paper's §4.2 memory/disk cache split: a cache of total
// capacity C whose hottest documents live in a memory portion of capacity
// C/memFraction (the paper sets the memory cache to 1/10 of the cache size,
// following the Squid configuration study it cites). The memory portion is
// managed LRU over the resident set: every reference promotes the document to
// memory, demoting the least recently used memory documents to disk. Demotion
// never evicts from the cache as a whole; overall residency is governed by
// the wrapped policy.
//
// TwoTier implements Cache; GetTier additionally classifies each hit, which
// internal/sim uses to compute memory byte hit ratios and hit latencies.
type TwoTier struct {
	inner Cache
	mem   *listCache
}

// NewTwoTier builds a two-tier cache with the given overall policy, total
// byte capacity and memory-portion byte capacity. The Options eviction
// callback observes overall capacity evictions (not memory demotions).
func NewTwoTier(policy Policy, capacity, memCapacity int64, opts ...Options) (*TwoTier, error) {
	if memCapacity < 0 || memCapacity > capacity {
		return nil, ErrCapacity
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	t := &TwoTier{mem: newListCache(memCapacity, true, Options{OnEvict: o.OnDemote})}
	user := o.OnEvict
	inner, err := New(policy, capacity, Options{OnEvict: func(d Doc) {
		t.mem.Remove(d.Key)
		if user != nil {
			user(d)
		}
	}})
	if err != nil {
		return nil, err
	}
	t.inner = inner
	return t, nil
}

// GetTier looks up a document, reporting which tier served it. The document
// is promoted to the memory tier (demoting others as needed) and referenced
// in the underlying policy, exactly as a real proxy would fault a disk-held
// object into its hot-object memory.
func (t *TwoTier) GetTier(key string) (Doc, Tier, bool) {
	doc, ok := t.inner.Get(key)
	if !ok {
		return Doc{}, TierDisk, false
	}
	tier := TierDisk
	if _, inMem := t.mem.Peek(key); inMem {
		tier = TierMemory
	}
	t.mem.Put(doc) // promote; demotions are silent
	return doc, tier, true
}

// PeekTier looks up a document and reports its tier without updating any
// replacement state.
func (t *TwoTier) PeekTier(key string) (Doc, Tier, bool) {
	doc, ok := t.inner.Peek(key)
	if !ok {
		return Doc{}, TierDisk, false
	}
	tier := TierDisk
	if _, inMem := t.mem.Peek(key); inMem {
		tier = TierMemory
	}
	return doc, tier, true
}

// Seed admits a document into the overall cache without pulling it through
// the memory tier — used when re-seating residency from a disk-store replay,
// where the body stays on disk until its first post-restart access.
func (t *TwoTier) Seed(doc Doc) ([]Doc, bool) {
	return t.inner.Put(doc)
}

// InMemory reports whether a resident document currently occupies the memory
// tier, without updating any replacement state.
func (t *TwoTier) InMemory(key string) bool {
	_, ok := t.mem.Peek(key)
	return ok
}

// MemoryCapacity reports the memory-portion capacity in bytes.
func (t *TwoTier) MemoryCapacity() int64 { return t.mem.Capacity() }

// MemoryUsed reports the bytes resident in the memory portion.
func (t *TwoTier) MemoryUsed() int64 { return t.mem.Used() }

// Get implements Cache.
func (t *TwoTier) Get(key string) (Doc, bool) {
	doc, _, ok := t.GetTier(key)
	return doc, ok
}

// Peek implements Cache.
func (t *TwoTier) Peek(key string) (Doc, bool) { return t.inner.Peek(key) }

// Put implements Cache. A newly admitted document passes through memory
// first, as a freshly fetched body would.
func (t *TwoTier) Put(doc Doc) ([]Doc, bool) {
	evicted, admitted := t.inner.Put(doc)
	if admitted {
		t.mem.Put(doc)
	}
	return evicted, admitted
}

// Remove implements Cache.
func (t *TwoTier) Remove(key string) bool {
	t.mem.Remove(key)
	return t.inner.Remove(key)
}

// Len implements Cache.
func (t *TwoTier) Len() int { return t.inner.Len() }

// Used implements Cache.
func (t *TwoTier) Used() int64 { return t.inner.Used() }

// Capacity implements Cache.
func (t *TwoTier) Capacity() int64 { return t.inner.Capacity() }

// Policy implements Cache.
func (t *TwoTier) Policy() Policy { return t.inner.Policy() }

// Keys implements Cache.
func (t *TwoTier) Keys() []string { return t.inner.Keys() }
