package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"baps/internal/intern"
)

// Sparse and dense slot tables must be behaviorally indistinguishable:
// same hits, same eviction order, same resident sets, under both policies.
func TestIDListSparseEquivalence(t *testing.T) {
	for _, promote := range []bool{true, false} {
		rng := rand.New(rand.NewSource(11))
		dense := newIDListCache(5000, promote, IDOptions{})
		sparse := newIDListCache(5000, promote, IDOptions{Sparse: true})
		for op := 0; op < 100000; op++ {
			id := intern.ID(rng.Intn(3000)) // wide ID space, small cache
			switch rng.Intn(4) {
			case 0:
				gd, okd := dense.Get(id)
				gs, oks := sparse.Get(id)
				if okd != oks || gd != gs {
					t.Fatalf("op %d: Get(%d) diverged: %v/%v vs %v/%v", op, id, gd, okd, gs, oks)
				}
			case 1:
				doc := IDDoc{ID: id, Size: int64(rng.Intn(500) + 1), Version: int64(rng.Intn(3))}
				evd, okd := dense.Put(doc)
				evs, oks := sparse.Put(doc)
				if okd != oks || !reflect.DeepEqual(evd, evs) {
					t.Fatalf("op %d: Put(%v) diverged: %v/%v vs %v/%v", op, doc, evd, okd, evs, oks)
				}
			case 2:
				if dense.Remove(id) != sparse.Remove(id) {
					t.Fatalf("op %d: Remove(%d) diverged", op, id)
				}
			default:
				pd, okd := dense.Peek(id)
				ps, oks := sparse.Peek(id)
				if okd != oks || pd != ps {
					t.Fatalf("op %d: Peek(%d) diverged", op, id)
				}
			}
			if dense.Len() != sparse.Len() || dense.Used() != sparse.Used() {
				t.Fatalf("op %d: shape diverged: len %d/%d used %d/%d", op, dense.Len(), sparse.Len(), dense.Used(), sparse.Used())
			}
		}
		if !reflect.DeepEqual(dense.IDs(), sparse.IDs()) {
			t.Fatalf("final eviction order diverged")
		}
		// Reset must restore both to the same empty state.
		dense.Reset(100)
		sparse.Reset(100)
		if dense.Len() != 0 || sparse.Len() != 0 || len(sparse.IDs()) != 0 {
			t.Fatal("Reset left residents")
		}
		if _, ok := sparse.Get(1); ok {
			t.Fatal("sparse Get hit after Reset")
		}
	}
}

// docSlot against a reference map, hammering the backward-shift deletion.
func TestDocSlotAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var m docSlot
	ref := map[intern.ID]int32{}
	for op := 0; op < 300000; op++ {
		id := intern.ID(rng.Intn(500)) // small space forces dense probe chains
		switch rng.Intn(3) {
		case 0:
			v := int32(rng.Intn(1 << 20))
			if v == 0 {
				v = 1
			}
			m.set(id, v)
			ref[id] = v
		case 1:
			m.del(id)
			delete(ref, id)
		default:
			want := ref[id] // 0 when absent — matches docSlot's sentinel
			if got := m.get(id); got != want {
				t.Fatalf("op %d: get(%d) = %d want %d", op, id, got, want)
			}
		}
		if m.n != len(ref) {
			t.Fatalf("op %d: size %d want %d", op, m.n, len(ref))
		}
	}
	for id, want := range ref {
		if got := m.get(id); got != want {
			t.Fatalf("final get(%d) = %d want %d", id, got, want)
		}
	}
}

func BenchmarkIDListSparseGet(b *testing.B) {
	c := newIDListCache(1<<30, true, IDOptions{Sparse: true})
	for i := 0; i < 1024; i++ {
		c.Put(IDDoc{ID: intern.ID(i * 1000), Size: 100})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(intern.ID((i % 1024) * 1000))
	}
}
