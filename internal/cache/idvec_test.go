package cache

import (
	"math/rand"
	"testing"

	"baps/internal/intern"
)

// The vec-backed memory tier must behave exactly like the list cache it
// replaces (LRU promote, silent demotions): same membership, same used
// bytes, same Peek results after any operation sequence.
func TestIDVecCacheMatchesListCache(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		capacity := int64(rng.Intn(5000) + 500)
		vec := &idVecCache{capacity: capacity}
		list := newIDListCache(capacity, true, IDOptions{})
		ids := rng.Intn(30) + 5
		for op := 0; op < 3000; op++ {
			id := intern.ID(rng.Intn(ids))
			switch rng.Intn(4) {
			case 0, 1:
				doc := IDDoc{ID: id, Size: int64(rng.Intn(2000) + 1), Version: int64(op)}
				_, va := vec.Put(doc)
				_, la := list.Put(doc)
				if va != la {
					t.Fatalf("seed %d op %d: Put(%d) admitted vec=%v list=%v", seed, op, id, va, la)
				}
			case 2:
				if vec.Remove(id) != list.Remove(id) {
					t.Fatalf("seed %d op %d: Remove(%d) disagreed", seed, op, id)
				}
			case 3:
				vd, vok := vec.Peek(id)
				ld, lok := list.Peek(id)
				if vok != lok || vd != ld {
					t.Fatalf("seed %d op %d: Peek(%d) vec=(%v,%v) list=(%v,%v)", seed, op, id, vd, vok, ld, lok)
				}
			}
			if vec.Used() != list.Used() {
				t.Fatalf("seed %d op %d: used vec=%d list=%d", seed, op, vec.Used(), list.Used())
			}
			for probe := 0; probe < ids; probe++ {
				_, vok := vec.Peek(intern.ID(probe))
				_, lok := list.Peek(intern.ID(probe))
				if vok != lok {
					t.Fatalf("seed %d op %d: membership of %d vec=%v list=%v", seed, op, probe, vok, lok)
				}
			}
		}
		vec.Reset(capacity / 2)
		list.Reset(capacity / 2)
		if vec.Used() != 0 || vec.Capacity() != capacity/2 {
			t.Fatalf("seed %d: Reset left used=%d cap=%d", seed, vec.Used(), vec.Capacity())
		}
	}
}

// Eviction order must match too: fill past capacity and compare the exact
// eviction victims via a doomed-then-probed sequence through IDTwoTier,
// which is the only consumer of the memory tier.
func TestIDTwoTierSparseMatchesDenseMemoryTier(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		capacity := int64(rng.Intn(8000) + 2000)
		memCap := capacity / 2
		sparse, err := NewIDTwoTier(LRU, capacity, memCap, IDOptions{Sparse: true})
		if err != nil {
			t.Fatal(err)
		}
		dense, err := NewIDTwoTier(LRU, capacity, memCap)
		if err != nil {
			t.Fatal(err)
		}
		ids := rng.Intn(40) + 10
		for op := 0; op < 4000; op++ {
			id := intern.ID(rng.Intn(ids))
			switch rng.Intn(5) {
			case 0, 1:
				doc := IDDoc{ID: id, Size: int64(rng.Intn(1500) + 1), Version: int64(op)}
				sev, sad := sparse.Put(doc)
				dev, dad := dense.Put(doc)
				if sad != dad || len(sev) != len(dev) {
					t.Fatalf("seed %d op %d: Put(%d) sparse=(%d,%v) dense=(%d,%v)",
						seed, op, id, len(sev), sad, len(dev), dad)
				}
			case 2:
				sd, st, sok := sparse.GetTier(id)
				dd, dt, dok := dense.GetTier(id)
				if sok != dok || st != dt || sd != dd {
					t.Fatalf("seed %d op %d: GetTier(%d) sparse=(%v,%v,%v) dense=(%v,%v,%v)",
						seed, op, id, sd, st, sok, dd, dt, dok)
				}
			case 3:
				if sparse.Remove(id) != dense.Remove(id) {
					t.Fatalf("seed %d op %d: Remove(%d) disagreed", seed, op, id)
				}
			case 4:
				if sparse.InMemory(id) != dense.InMemory(id) {
					t.Fatalf("seed %d op %d: InMemory(%d) disagreed", seed, op, id)
				}
			}
			if sparse.MemoryUsed() != dense.MemoryUsed() || sparse.Used() != dense.Used() {
				t.Fatalf("seed %d op %d: used sparse=(%d,%d) dense=(%d,%d)", seed, op,
					sparse.Used(), sparse.MemoryUsed(), dense.Used(), dense.MemoryUsed())
			}
		}
	}
}
