package cache

import "baps/internal/intern"

// IDTwoTier is the interned-ID counterpart of TwoTier: the §4.2 memory/disk
// split over an IDCache, with the memory portion managed LRU by a
// slice-backed list. Hit classification and promotion semantics match
// TwoTier exactly.
type IDTwoTier struct {
	inner IDCache
	mem   memTier
}

// NewIDTwoTier builds a two-tier ID-keyed cache with the given overall
// policy, total byte capacity and memory-portion byte capacity.
func NewIDTwoTier(policy Policy, capacity, memCapacity int64, opts ...IDOptions) (*IDTwoTier, error) {
	if memCapacity < 0 || memCapacity > capacity {
		return nil, ErrCapacity
	}
	var o IDOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	t := &IDTwoTier{}
	if o.Sparse {
		// A sparse browser's memory portion holds a handful of docs; the
		// slice LRU costs ~40 B instead of the list cache's ~0.5 KB of
		// fixed furniture, which matters times 10^6 instances.
		t.mem = &idVecCache{capacity: memCapacity}
	} else {
		t.mem = newIDListCache(memCapacity, true, IDOptions{})
	}
	user := o.OnEvict
	// Sparse must reach the inner tier too: it is the tier that holds every
	// resident document, so a dense slot table here is the full 4 B ×
	// doc-ID-space cost per browser the option exists to avoid.
	inner, err := NewID(policy, capacity, IDOptions{Sparse: o.Sparse, OnEvict: func(d IDDoc) {
		t.mem.Remove(d.ID)
		if user != nil {
			user(d)
		}
	}})
	if err != nil {
		return nil, err
	}
	t.inner = inner
	return t, nil
}

// GetTier looks up a document, reporting which tier served it; the document
// is promoted to the memory tier and referenced in the underlying policy.
func (t *IDTwoTier) GetTier(id intern.ID) (IDDoc, Tier, bool) {
	doc, ok := t.inner.Get(id)
	if !ok {
		return IDDoc{}, TierDisk, false
	}
	tier := TierDisk
	if _, inMem := t.mem.Peek(id); inMem {
		tier = TierMemory
	}
	t.mem.Put(doc) // promote; demotions are silent
	return doc, tier, true
}

// InMemory reports whether a resident document currently occupies the memory
// tier, without updating any replacement state.
func (t *IDTwoTier) InMemory(id intern.ID) bool {
	_, ok := t.mem.Peek(id)
	return ok
}

// MemoryCapacity reports the memory-portion capacity in bytes.
func (t *IDTwoTier) MemoryCapacity() int64 { return t.mem.Capacity() }

// MemoryUsed reports the bytes resident in the memory portion.
func (t *IDTwoTier) MemoryUsed() int64 { return t.mem.Used() }

// Get implements IDCache.
func (t *IDTwoTier) Get(id intern.ID) (IDDoc, bool) {
	doc, _, ok := t.GetTier(id)
	return doc, ok
}

// Peek implements IDCache.
func (t *IDTwoTier) Peek(id intern.ID) (IDDoc, bool) { return t.inner.Peek(id) }

// Put implements IDCache. A newly admitted document passes through memory
// first, as a freshly fetched body would. The returned slice is valid only
// until the next Put.
func (t *IDTwoTier) Put(doc IDDoc) ([]IDDoc, bool) {
	evicted, admitted := t.inner.Put(doc)
	if admitted {
		t.mem.Put(doc)
	}
	return evicted, admitted
}

// Remove implements IDCache.
func (t *IDTwoTier) Remove(id intern.ID) bool {
	t.mem.Remove(id)
	return t.inner.Remove(id)
}

// Len implements IDCache.
func (t *IDTwoTier) Len() int { return t.inner.Len() }

// Used implements IDCache.
func (t *IDTwoTier) Used() int64 { return t.inner.Used() }

// Capacity implements IDCache.
func (t *IDTwoTier) Capacity() int64 { return t.inner.Capacity() }

// Policy implements IDCache.
func (t *IDTwoTier) Policy() Policy { return t.inner.Policy() }

// IDs implements IDCache.
func (t *IDTwoTier) IDs() []intern.ID { return t.inner.IDs() }

// Reset implements IDCache, emptying both tiers in place. The memory-tier
// capacity is left unchanged; use ResetTiers to change both.
func (t *IDTwoTier) Reset(capacity int64) {
	t.ResetTiers(capacity, t.mem.Capacity())
}

// ResetTiers empties the cache in place with explicit total and memory-tier
// capacities, retaining allocated storage.
func (t *IDTwoTier) ResetTiers(capacity, memCapacity int64) {
	t.inner.Reset(capacity)
	t.mem.Reset(memCapacity)
}
