package cache

import "baps/internal/intern"

// docSlot is a compact open-addressing map from document ID to list-node
// index, the sparse alternative to idListCache's dense slot slice. The dense
// slice costs 4 bytes per ID in [0, maxDocID-touched] per cache instance —
// fine for one proxy, ruinous for 10^6 browser caches over a multi-million
// document ID space. docSlot costs ~8 bytes per *resident* document plus
// load-factor slack, independent of the ID space.
//
// Keys are stored as docID+1 so the zero word means "empty"; values are node
// indices (always non-zero — node 0 is the list sentinel). Deletion uses
// backward-shift compaction, so no tombstones accumulate. The zero value is
// ready to use.
type docSlot struct {
	keys []int32 // docID+1; 0 = empty
	vals []int32 // node index
	n    int
}

func docSlotHash(k int32) uint32 {
	x := uint32(k)
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

// get returns the node index for id, or 0 when absent.
func (m *docSlot) get(id intern.ID) int32 {
	if len(m.keys) == 0 {
		return 0
	}
	k := int32(id) + 1
	mask := uint32(len(m.keys) - 1)
	i := docSlotHash(k) & mask
	for {
		kk := m.keys[i]
		if kk == k {
			return m.vals[i]
		}
		if kk == 0 {
			return 0
		}
		i = (i + 1) & mask
	}
}

// set stores node index n under id (n must be non-zero).
func (m *docSlot) set(id intern.ID, n int32) {
	if m.n >= len(m.keys)-len(m.keys)/4 { // load factor 0.75
		m.grow()
	}
	k := int32(id) + 1
	mask := uint32(len(m.keys) - 1)
	i := docSlotHash(k) & mask
	for {
		kk := m.keys[i]
		if kk == k {
			m.vals[i] = n
			return
		}
		if kk == 0 {
			m.keys[i] = k
			m.vals[i] = n
			m.n++
			return
		}
		i = (i + 1) & mask
	}
}

// del removes id, compacting the probe chain behind it.
func (m *docSlot) del(id intern.ID) {
	if len(m.keys) == 0 {
		return
	}
	k := int32(id) + 1
	mask := uint32(len(m.keys) - 1)
	i := docSlotHash(k) & mask
	for {
		kk := m.keys[i]
		if kk == 0 {
			return
		}
		if kk == k {
			break
		}
		i = (i + 1) & mask
	}
	m.n--
	// Backward-shift: walk the chain after i, moving back any entry whose
	// home position means it is reachable through slot i.
	j := i
	for {
		j = (j + 1) & mask
		kk := m.keys[j]
		if kk == 0 {
			break
		}
		home := docSlotHash(kk) & mask
		// Entry at j can move to i iff i is not "between" home and j in
		// circular probe order (standard backward-shift condition).
		if (j-home)&mask >= (j-i)&mask {
			m.keys[i] = kk
			m.vals[i] = m.vals[j]
			i = j
		}
	}
	m.keys[i] = 0
	m.vals[i] = 0
}

// reset drops all entries, keeping the slots for reuse.
func (m *docSlot) reset() {
	for i := range m.keys {
		m.keys[i] = 0
		m.vals[i] = 0
	}
	m.n = 0
}

func (m *docSlot) grow() {
	newSize := 16
	if len(m.keys) > 0 {
		newSize = len(m.keys) * 2
	}
	oldKeys, oldVals := m.keys, m.vals
	m.keys = make([]int32, newSize)
	m.vals = make([]int32, newSize)
	mask := uint32(newSize - 1)
	for idx, k := range oldKeys {
		if k == 0 {
			continue
		}
		i := docSlotHash(k) & mask
		for m.keys[i] != 0 {
			i = (i + 1) & mask
		}
		m.keys[i] = k
		m.vals[i] = oldVals[idx]
	}
}
