package cache

// listCache implements LRU and FIFO with an intrusive doubly-linked list and
// a map. The list runs from the eviction victim (front) to the most protected
// entry (back).
type listCache struct {
	capacity int64
	used     int64
	promote  bool // true for LRU: Get moves to back; false for FIFO
	onEvict  EvictFunc
	items    map[string]*listEntry
	head     *listEntry // sentinel
}

type listEntry struct {
	doc        Doc
	prev, next *listEntry
}

func newListCache(capacity int64, promote bool, o Options) *listCache {
	s := &listEntry{}
	s.prev, s.next = s, s
	return &listCache{
		capacity: capacity,
		promote:  promote,
		onEvict:  o.OnEvict,
		items:    make(map[string]*listEntry),
		head:     s,
	}
}

func (c *listCache) unlink(e *listEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

// pushBack places e in the most protected position.
func (c *listCache) pushBack(e *listEntry) {
	tail := c.head.prev
	tail.next = e
	e.prev = tail
	e.next = c.head
	c.head.prev = e
}

func (c *listCache) Get(key string) (Doc, bool) {
	e, ok := c.items[key]
	if !ok {
		return Doc{}, false
	}
	if c.promote {
		c.unlink(e)
		c.pushBack(e)
	}
	return e.doc, true
}

func (c *listCache) Peek(key string) (Doc, bool) {
	e, ok := c.items[key]
	if !ok {
		return Doc{}, false
	}
	return e.doc, true
}

func (c *listCache) Put(doc Doc) ([]Doc, bool) {
	if doc.Size > c.capacity {
		// Too large to ever fit; do not disturb resident documents.
		return nil, false
	}
	if e, ok := c.items[doc.Key]; ok {
		// Replacement of an existing key (e.g. a new document version):
		// update in place, then make room for any growth.
		c.used += doc.Size - e.doc.Size
		e.doc = doc
		if c.promote {
			c.unlink(e)
			c.pushBack(e)
		}
		return c.shrink(doc.Key), true
	}
	e := &listEntry{doc: doc}
	c.items[doc.Key] = e
	c.pushBack(e)
	c.used += doc.Size
	return c.shrink(doc.Key), true
}

// shrink evicts from the front until used <= capacity, never evicting keep.
func (c *listCache) shrink(keep string) []Doc {
	var evicted []Doc
	for c.used > c.capacity {
		victim := c.head.next
		if victim == c.head {
			break // nothing left to evict (cannot happen when keep fits)
		}
		if victim.doc.Key == keep {
			// keep is the only entry left but still over capacity;
			// guarded against by the size check in Put.
			victim = victim.next
			if victim == c.head {
				break
			}
		}
		c.removeEntry(victim)
		evicted = append(evicted, victim.doc)
		if c.onEvict != nil {
			c.onEvict(victim.doc)
		}
	}
	return evicted
}

func (c *listCache) removeEntry(e *listEntry) {
	c.unlink(e)
	delete(c.items, e.doc.Key)
	c.used -= e.doc.Size
}

func (c *listCache) Remove(key string) bool {
	e, ok := c.items[key]
	if !ok {
		return false
	}
	c.removeEntry(e)
	return true
}

func (c *listCache) Len() int        { return len(c.items) }
func (c *listCache) Used() int64     { return c.used }
func (c *listCache) Capacity() int64 { return c.capacity }

func (c *listCache) Policy() Policy {
	if c.promote {
		return LRU
	}
	return FIFO
}

func (c *listCache) Keys() []string {
	keys := make([]string, 0, len(c.items))
	for e := c.head.next; e != c.head; e = e.next {
		keys = append(keys, e.doc.Key)
	}
	return keys
}
