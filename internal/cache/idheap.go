package cache

import (
	"sort"

	"baps/internal/intern"
)

// idHeapCache implements the priority-ordered policies (LFU, SIZE, GDSF)
// with a hand-rolled binary min-heap of int32 entry indices over slice-backed
// entry storage, replacing the map + *heapEntry + container/heap
// representation of heapCache. The sift order and tie-breaking replicate
// container/heap exactly, so both representations evict identical victims in
// identical order.
type idHeapCache struct {
	policy   Policy
	capacity int64
	used     int64
	onEvict  IDEvictFunc

	slot    []int32       // docID -> entry index + 1; 0 when absent
	ents    []idHeapEntry // entry storage; index stable while resident
	free    []int32       // recycled entry indices
	pq      []int32       // heap of entry indices; root is the next victim
	seq     uint64        // monotonic reference clock for tie-breaking
	inflate float64       // GDSF aging term L
	evBuf   []IDDoc       // reused eviction buffer returned by Put
}

type idHeapEntry struct {
	doc  IDDoc
	freq int64
	pri  float64 // eviction priority; smaller evicts first
	seq  uint64  // last-reference sequence; older evicts first on ties
	idx  int32   // position in pq
}

func newIDHeapCache(policy Policy, capacity int64, o IDOptions) *idHeapCache {
	return &idHeapCache{
		policy:   policy,
		capacity: capacity,
		onEvict:  o.OnEvict,
	}
}

func (c *idHeapCache) lookup(id intern.ID) int32 {
	if id < 0 || int(id) >= len(c.slot) {
		return 0
	}
	return c.slot[id]
}

func (c *idHeapCache) ensureSlot(id intern.ID) {
	if int(id) < len(c.slot) {
		return
	}
	if int(id) < cap(c.slot) {
		c.slot = c.slot[:int(id)+1]
		return
	}
	grown := make([]int32, int(id)+1, max(2*cap(c.slot), int(id)+1))
	copy(grown, c.slot)
	c.slot = grown
}

// priority computes the eviction priority of an entry under the policy.
func (c *idHeapCache) priority(e *idHeapEntry) float64 {
	switch c.policy {
	case LFU:
		return float64(e.freq)
	case SIZE:
		// Largest documents evicted first: invert the size.
		return -float64(e.doc.Size)
	case GDSF:
		size := e.doc.Size
		if size < 1 {
			size = 1
		}
		return c.inflate + float64(e.freq)/float64(size)
	default:
		return 0
	}
}

// less orders heap positions i, j of pq: the next victim sorts first.
func (c *idHeapCache) less(i, j int) bool {
	a, b := &c.ents[c.pq[i]], &c.ents[c.pq[j]]
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq // older reference evicts first
}

func (c *idHeapCache) swap(i, j int) {
	c.pq[i], c.pq[j] = c.pq[j], c.pq[i]
	c.ents[c.pq[i]].idx = int32(i)
	c.ents[c.pq[j]].idx = int32(j)
}

// up and down replicate container/heap's sift procedures.
func (c *idHeapCache) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || !c.less(j, i) {
			break
		}
		c.swap(i, j)
		j = i
	}
}

func (c *idHeapCache) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && c.less(j2, j1) {
			j = j2
		}
		if !c.less(j, i) {
			break
		}
		c.swap(i, j)
		i = j
	}
	return i > i0
}

func (c *idHeapCache) heapPush(ent int32) {
	c.ents[ent].idx = int32(len(c.pq))
	c.pq = append(c.pq, ent)
	c.up(len(c.pq) - 1)
}

func (c *idHeapCache) heapRemove(i int) {
	n := len(c.pq) - 1
	if n != i {
		c.swap(i, n)
		c.pq = c.pq[:n]
		if !c.down(i, n) {
			c.up(i)
		}
	} else {
		c.pq = c.pq[:n]
	}
}

func (c *idHeapCache) heapFix(i int) {
	if !c.down(i, len(c.pq)) {
		c.up(i)
	}
}

func (c *idHeapCache) touch(e *idHeapEntry) {
	e.freq++
	c.seq++
	e.seq = c.seq
	e.pri = c.priority(e)
	c.heapFix(int(e.idx))
}

func (c *idHeapCache) Get(id intern.ID) (IDDoc, bool) {
	s := c.lookup(id)
	if s == 0 {
		return IDDoc{}, false
	}
	e := &c.ents[s-1]
	c.touch(e)
	return e.doc, true
}

func (c *idHeapCache) Peek(id intern.ID) (IDDoc, bool) {
	s := c.lookup(id)
	if s == 0 {
		return IDDoc{}, false
	}
	return c.ents[s-1].doc, true
}

func (c *idHeapCache) Put(doc IDDoc) ([]IDDoc, bool) {
	if doc.Size > c.capacity {
		return nil, false
	}
	if s := c.lookup(doc.ID); s != 0 {
		e := &c.ents[s-1]
		c.used += doc.Size - e.doc.Size
		e.doc = doc
		c.touch(e)
		return c.shrink(doc.ID), true
	}
	c.ensureSlot(doc.ID)
	c.seq++
	var ent int32
	if ln := len(c.free); ln > 0 {
		ent = c.free[ln-1]
		c.free = c.free[:ln-1]
	} else {
		c.ents = append(c.ents, idHeapEntry{})
		ent = int32(len(c.ents) - 1)
	}
	e := &c.ents[ent]
	*e = idHeapEntry{doc: doc, freq: 1, seq: c.seq}
	e.pri = c.priority(e)
	c.slot[doc.ID] = ent + 1
	c.heapPush(ent)
	c.used += doc.Size
	return c.shrink(doc.ID), true
}

func (c *idHeapCache) shrink(keep intern.ID) []IDDoc {
	if c.used <= c.capacity {
		return nil
	}
	c.evBuf = c.evBuf[:0]
	for c.used > c.capacity && len(c.pq) > 0 {
		victim := c.pq[0]
		if c.ents[victim].doc.ID == keep {
			// The just-inserted ID fits by construction, so it can be at
			// the root only alongside other entries; evict the better of
			// its children instead.
			alt := c.betterChild(0)
			if alt < 0 {
				break
			}
			victim = c.pq[alt]
		}
		if c.policy == GDSF {
			c.inflate = c.ents[victim].pri
		}
		doc := c.ents[victim].doc
		c.removeEntry(victim)
		c.evBuf = append(c.evBuf, doc)
		if c.onEvict != nil {
			c.onEvict(doc)
		}
	}
	return c.evBuf
}

// betterChild returns the heap position of the lower-priority child of the
// node at position i, or -1.
func (c *idHeapCache) betterChild(i int) int {
	l, r := 2*i+1, 2*i+2
	switch {
	case l >= len(c.pq):
		return -1
	case r >= len(c.pq):
		return l
	case c.less(l, r):
		return l
	default:
		return r
	}
}

func (c *idHeapCache) removeEntry(ent int32) {
	e := &c.ents[ent]
	c.heapRemove(int(e.idx))
	c.slot[e.doc.ID] = 0
	c.used -= e.doc.Size
	*e = idHeapEntry{}
	c.free = append(c.free, ent)
}

func (c *idHeapCache) Remove(id intern.ID) bool {
	s := c.lookup(id)
	if s == 0 {
		return false
	}
	c.removeEntry(s - 1)
	return true
}

func (c *idHeapCache) Len() int        { return len(c.pq) }
func (c *idHeapCache) Used() int64     { return c.used }
func (c *idHeapCache) Capacity() int64 { return c.capacity }
func (c *idHeapCache) Policy() Policy  { return c.policy }

func (c *idHeapCache) IDs() []intern.ID {
	// (pri, seq) is a total order (seq values are unique), so eviction
	// order is exactly the sorted order — no need to simulate heap pops.
	type view struct {
		id  intern.ID
		pri float64
		seq uint64
	}
	views := make([]view, 0, len(c.pq))
	for _, ent := range c.pq {
		e := &c.ents[ent]
		views = append(views, view{e.doc.ID, e.pri, e.seq})
	}
	sort.Slice(views, func(i, j int) bool {
		if views[i].pri != views[j].pri {
			return views[i].pri < views[j].pri
		}
		return views[i].seq < views[j].seq
	})
	ids := make([]intern.ID, len(views))
	for i, v := range views {
		ids[i] = v.id
	}
	return ids
}

// Reset empties the cache in place and adopts a new capacity, retaining the
// slot/entry/heap storage for reuse.
func (c *idHeapCache) Reset(capacity int64) {
	for i := range c.slot {
		c.slot[i] = 0
	}
	c.ents = c.ents[:0]
	c.free = c.free[:0]
	c.pq = c.pq[:0]
	c.used = 0
	c.seq = 0
	c.inflate = 0
	c.capacity = capacity
}
